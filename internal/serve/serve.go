// Package serve is the online stats serving layer: it keeps every chain's
// deterministic figures queryable over HTTP while ingestion is still
// running. Readers never take a lock — they load an immutable Snapshot
// through an atomic pointer — and writers publish by building a fresh
// snapshot per merge epoch and swapping the pointer. The copy-on-write
// boundary is core.SummarizeEOS and friends: each holds its aggregator's
// lock just long enough to deep-copy the figures state, so ingest workers
// and the publish loop contend only on that one short critical section and
// queries contend on nothing at all.
//
// Ownership rules (see DESIGN.md "Serving layer & snapshot epochs"):
//
//   - A *Snapshot obtained from Current is immutable forever. Holding one
//     across any number of later epochs is safe and cheap; its renders stay
//     byte-identical no matter what ingestion does next.
//   - The Publisher owns the sources map; Register/Publish serialize on the
//     publisher mutex. Summarize hooks are called only under that mutex.
//   - Staleness is explicit, never hidden: every snapshot carries its epoch
//     and publish time, and every HTTP response forwards both plus its age.
package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ChainStatus is one chain's state inside a snapshot: the deep-copied
// summary, its pre-rendered figures section (rendered once at publish so N
// readers don't re-render N times), and whether the chain's feed has
// drained — i.e. the figures are final, not mid-crawl.
type ChainStatus struct {
	Summary core.ChainSummary
	Figures string
	Drained bool
	// Window is the aggregation anchor (series origin + bucket size) the
	// feed registered with — the same contract shard blobs carry, so a
	// snapshot consumer can tell which figures are comparable.
	Window core.Window
}

// Snapshot is one epoch's immutable view over every registered chain.
// Nothing in it aliases live aggregator state; treat it as read-only.
type Snapshot struct {
	// Epoch counts publishes monotonically from 1 (0 is the empty snapshot
	// a fresh publisher serves before the first publish).
	Epoch uint64
	// PublishedAt is when this snapshot was built — the reader's staleness
	// anchor.
	PublishedAt time.Time
	// Drained reports that at least one chain is registered and every
	// registered chain's feed has drained: the figures are final.
	Drained bool
	Chains  map[string]ChainStatus
}

// Names returns the registered chain names in sorted order.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Chains))
	for name := range s.Chains {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RenderFigures concatenates every chain's figures section in sorted chain
// order — the same order cmd/report -replay prints per-chain archives
// discovered under one directory, so a drained snapshot's figures diff
// cleanly against a replay of the same blocks.
func (s *Snapshot) RenderFigures() string {
	var sb strings.Builder
	for _, name := range s.Names() {
		sb.WriteString(s.Chains[name].Figures)
	}
	return sb.String()
}

// Age reports how stale the snapshot is at the given instant.
func (s *Snapshot) Age(now time.Time) time.Duration { return now.Sub(s.PublishedAt) }

// source is one registered chain feed: a summarize hook (which must
// deep-copy under its own aggregator lock, as core.SummarizeEOS does) and
// the drained flag its release function flips.
type source struct {
	summarize func() core.ChainSummary
	window    core.Window
	drained   atomic.Bool
}

// Publisher owns the write side of the serving layer: feeds register
// summarize hooks, Publish folds them into a fresh immutable Snapshot, and
// Current hands the newest snapshot to readers without any locking.
type Publisher struct {
	// now is the staleness clock (time.Now outside tests).
	now func() time.Time

	mu      sync.Mutex
	sources map[string]*source

	cur atomic.Pointer[Snapshot]
}

// NewPublisher returns a publisher already serving an empty epoch-0
// snapshot, so readers never observe nil even before the first feed
// registers.
func NewPublisher() *Publisher {
	p := &Publisher{now: time.Now, sources: make(map[string]*source)}
	p.cur.Store(&Snapshot{PublishedAt: p.now(), Chains: map[string]ChainStatus{}})
	return p
}

// Register adds a chain feed. The summarize hook must be safe to call while
// the feed is ingesting and must return a summary that aliases no live
// state (core.SummarizeEOS/SummarizeTezos/SummarizeXRP via StatsKit qualify:
// they lock and deep-copy). The returned release function marks the feed
// drained and publishes a fresh epoch so the final figures become visible
// promptly; it is idempotent. Registering the same chain twice is an error
// — two feeds folding into one name would serve a meaningless mixture —
// and a duplicate with a different aggregation window is called out
// specifically: buckets anchored at different origins or sizes can never
// be merged or compared, so the snapshot would mix incomparable series.
// Different chain names may use different windows freely (the governance
// feed replays a different observation period than the 6h chains).
func (p *Publisher) Register(chain string, w core.Window, summarize func() core.ChainSummary) (release func(), err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, dup := p.sources[chain]; dup {
		if !prev.window.Equal(w) {
			return nil, fmt.Errorf("serve: chain %q already registered with window %s; refusing feed with window %s — mixed-origin snapshots are meaningless", chain, prev.window, w)
		}
		return nil, fmt.Errorf("serve: chain %q already registered", chain)
	}
	src := &source{summarize: summarize, window: w}
	p.sources[chain] = src
	var once sync.Once
	return func() {
		once.Do(func() {
			src.drained.Store(true)
			p.Publish()
		})
	}, nil
}

// Publish builds the next epoch's snapshot from every registered source and
// swaps it in. It returns the published snapshot. Concurrent publishers
// serialize on the mutex; each still produces a distinct, monotonically
// numbered epoch.
func (p *Publisher) Publish() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	chains := make(map[string]ChainStatus, len(p.sources))
	drained := len(p.sources) > 0
	for name, src := range p.sources {
		sum := src.summarize()
		d := src.drained.Load()
		chains[name] = ChainStatus{Summary: sum, Figures: sum.Render(), Drained: d, Window: src.window}
		drained = drained && d
	}
	snap := &Snapshot{
		Epoch:       p.cur.Load().Epoch + 1,
		PublishedAt: p.now(),
		Drained:     drained,
		Chains:      chains,
	}
	p.cur.Store(snap)
	return snap
}

// Current returns the newest snapshot. It is the whole read path: one
// atomic load, no locks, safe from any number of goroutines.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Drained reports whether the current snapshot's figures are final.
func (p *Publisher) Drained() bool { return p.Current().Drained }

// Run publishes on a fixed interval until ctx is cancelled, then publishes
// one final epoch — the drain barrier: callers cancel after their feeds
// return, so the last epoch is guaranteed to include everything ingested.
func (p *Publisher) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.Publish()
		case <-ctx.Done():
			p.Publish()
			return
		}
	}
}
