package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
)

// benchSetup builds a handler over a publisher pre-loaded with enough
// blocks that summaries and figures have realistic shape.
func benchSetup(b *testing.B) (http.Handler, *Publisher, *core.EOSAggregator, func()) {
	p, agg, release := newEOSPublisher(b)
	if err := agg.IngestBlocks(eosBlocks(2048, 1)); err != nil {
		b.Fatal(err)
	}
	p.Publish()
	return NewHandler(p), p, agg, release
}

func queryLoop(b *testing.B, h http.Handler) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/summary/eos", nil))
			if w.Code != http.StatusOK {
				b.Errorf("status %d", w.Code)
				return
			}
		}
	})
}

// BenchmarkServeQuery measures the lock-free read path: concurrent summary
// queries against a quiescent snapshot.
func BenchmarkServeQuery(b *testing.B) {
	h, _, _, release := benchSetup(b)
	defer release()
	b.ReportAllocs()
	b.ResetTimer()
	queryLoop(b, h)
}

// BenchmarkServeIngestWhileQuery measures the same query loop while a
// writer keeps ingesting batches and publishing epochs — the acceptance
// criterion that ingest load must not drag the read path. Readers only
// ever touch an immutable snapshot behind one atomic load, so this must
// stay within the benchgate budget of the quiescent profile.
func BenchmarkServeIngestWhileQuery(b *testing.B) {
	h, p, agg, release := benchSetup(b)
	defer release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := agg.IngestBlocks(eosBlocks(16, 10_000+i*16)); err != nil {
				b.Errorf("ingest: %v", err)
				return
			}
			p.Publish()
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	queryLoop(b, h)
	b.StopTimer()
	close(stop)
	wg.Wait()
}
