package serve

import (
	"context"
	"time"

	"repro/internal/archive"
	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
)

// FeedConfig parameterizes one chain's ingest feed into a publisher. Both
// feed shapes (live crawl and archive replay) ingest through
// core.PeriodicMerge, so each worker's private shard folds into the shared
// aggregator every MergeEvery batches — mid-crawl snapshots see the stream
// in epoch-sized increments instead of only at drain.
type FeedConfig struct {
	// Chain names the feed ("eos", "tezos", "xrp") and keys its snapshot
	// entry. For archive feeds, zero means the archive manifest's chain.
	Chain string
	// Origin and Bucket anchor the throughput series; zero selects the
	// paper's observation window (chain.ObservationStart, 6h buckets) —
	// the same anchoring cmd/crawl and cmd/report use, which keeps a
	// drained feed's figures byte-comparable with theirs.
	Origin time.Time
	Bucket time.Duration
	// MergeEvery is how many batches each ingest worker folds between
	// shard merges (0: core.PeriodicMerge's default).
	MergeEvery int
	// Ingest sizes the decode/ingest pool.
	Ingest core.IngestConfig
}

func (c FeedConfig) withDefaults() FeedConfig {
	if c.Origin.IsZero() {
		c.Origin = chain.ObservationStart
	}
	if c.Bucket <= 0 {
		c.Bucket = 6 * time.Hour
	}
	return c
}

// Feed crawls a live endpoint into the publisher: it registers cfg.Chain,
// streams blocks through the periodic-merge ingest path, and marks the
// chain drained when the crawl returns (the stream is fully folded in by
// then — IngestCrawl drains before returning, even on cancellation).
func (p *Publisher) Feed(ctx context.Context, f collect.BlockFetcher, ccfg collect.CrawlConfig, cfg FeedConfig) (collect.CrawlResult, error) {
	cfg = cfg.withDefaults()
	kit, err := core.NewStatsKit(cfg.Chain, cfg.Origin, cfg.Bucket)
	if err != nil {
		return collect.CrawlResult{}, err
	}
	release, err := p.Register(cfg.Chain, core.Window{Origin: cfg.Origin, Bucket: cfg.Bucket}, kit.Summarize)
	if err != nil {
		return collect.CrawlResult{}, err
	}
	defer release()
	dec := core.PeriodicMerge(kit.Decoder, cfg.MergeEvery)
	res, _, err := core.IngestCrawl(ctx, f, ccfg, dec, cfg.Ingest)
	return res, err
}

// FeedArchive replays an opened archive into the publisher: same
// registration and periodic-merge path as Feed, fed by the segment-parallel
// archive walker instead of the network. It returns the number of blocks
// ingested.
func (p *Publisher) FeedArchive(ctx context.Context, rd *archive.Reader, cfg FeedConfig) (int64, error) {
	cfg = cfg.withDefaults()
	if cfg.Chain == "" {
		cfg.Chain = rd.Chain()
	}
	kit, err := core.NewStatsKit(cfg.Chain, cfg.Origin, cfg.Bucket)
	if err != nil {
		return 0, err
	}
	release, err := p.Register(cfg.Chain, core.Window{Origin: cfg.Origin, Bucket: cfg.Bucket}, kit.Summarize)
	if err != nil {
		return 0, err
	}
	defer release()
	dec := core.PeriodicMerge(kit.Decoder, cfg.MergeEvery)
	return core.IngestArchive(ctx, rd, dec, cfg.Ingest)
}
