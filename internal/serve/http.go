package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
)

// NewHandler builds the serving API over a publisher. Every endpoint reads
// exactly one snapshot (a single atomic load) and answers entirely from it,
// so responses are internally consistent even while epochs keep landing,
// and every response carries the staleness contract in headers:
// X-Serve-Epoch, X-Serve-Published (RFC3339Nano) and X-Serve-Age-Ms.
//
//	GET /healthz                      liveness
//	GET /readyz                       readiness: 503 until the first epoch
//	GET /v1/status                    epoch, staleness, per-chain progress
//	GET /v1/chains                    registered chain names
//	GET /v1/summary/{chain}           one chain's summary as JSON
//	GET /v1/figures                   all chains' figures (text, sorted)
//	GET /v1/figures/{chain}           one chain's figures (text)
//	GET /v1/percentiles/{chain}?p=..  bucket-total percentiles
func NewHandler(p *Publisher) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		stamp(w, p)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})

	// Readiness is distinct from liveness: a server that accepted its
	// socket but has not published epoch 1 yet would answer /v1/* from the
	// empty placeholder snapshot — well-formed but vacuous. Load balancers
	// and smoke tests gate on /readyz so traffic only arrives once real
	// figures are behind it.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if snap.Epoch == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "no snapshot published yet")
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		chains := make(map[string]chainStatusJSON, len(snap.Chains))
		for name, st := range snap.Chains {
			chains[name] = chainStatusJSON{
				Blocks:       st.Summary.Blocks,
				Transactions: st.Summary.Transactions,
				Drained:      st.Drained,
			}
		}
		writeJSON(w, statusResponse{
			epochJSON: epochOf(snap, p.now()),
			Drained:   snap.Drained,
			Chains:    chains,
		})
	})

	mux.HandleFunc("GET /v1/chains", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		writeJSON(w, chainsResponse{epochJSON: epochOf(snap, p.now()), Chains: snap.Names()})
	})

	mux.HandleFunc("GET /v1/summary/{chain}", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		st, ok := snap.Chains[r.PathValue("chain")]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown chain %q", r.PathValue("chain"))
			return
		}
		resp := summaryResponse{
			epochJSON:    epochOf(snap, p.now()),
			Chain:        st.Summary.Chain,
			Blocks:       st.Summary.Blocks,
			Transactions: st.Summary.Transactions,
			TypeCounts:   st.Summary.TypeCounts,
			Buckets:      len(st.Summary.BucketTotals),
			Notes:        st.Summary.Notes,
			Drained:      st.Drained,
		}
		if !st.Summary.First.IsZero() {
			first, last := st.Summary.First.UTC(), st.Summary.Last.UTC()
			resp.First, resp.Last = &first, &last
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("GET /v1/figures", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.RenderFigures())
	})

	mux.HandleFunc("GET /v1/figures/{chain}", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		st, ok := snap.Chains[r.PathValue("chain")]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown chain %q", r.PathValue("chain"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, st.Figures)
	})

	mux.HandleFunc("GET /v1/percentiles/{chain}", func(w http.ResponseWriter, r *http.Request) {
		snap := stamp(w, p)
		st, ok := snap.Chains[r.PathValue("chain")]
		if !ok {
			writeError(w, http.StatusNotFound, "unknown chain %q", r.PathValue("chain"))
			return
		}
		ps, err := parsePercentiles(r.URL.Query().Get("p"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		vals := make([]float64, len(st.Summary.BucketTotals))
		for i, v := range st.Summary.BucketTotals {
			vals[i] = float64(v)
		}
		sel := stats.GetSelector()
		sel.Load(vals)
		out := make([]percentileJSON, len(ps))
		for i, q := range ps {
			out[i] = percentileJSON{P: q, Value: sel.Percentile(q)}
		}
		stats.PutSelector(sel)
		writeJSON(w, percentilesResponse{
			epochJSON:   epochOf(snap, p.now()),
			Chain:       st.Summary.Chain,
			Buckets:     len(vals),
			Percentiles: out,
		})
	})

	return mux
}

// stamp loads the one snapshot the whole request will answer from and
// writes the staleness headers.
func stamp(w http.ResponseWriter, p *Publisher) *Snapshot {
	snap := p.Current()
	h := w.Header()
	h.Set("X-Serve-Epoch", strconv.FormatUint(snap.Epoch, 10))
	h.Set("X-Serve-Published", snap.PublishedAt.UTC().Format(time.RFC3339Nano))
	h.Set("X-Serve-Age-Ms", strconv.FormatInt(snap.Age(p.now()).Milliseconds(), 10))
	return snap
}

// epochJSON is the staleness metadata embedded in every JSON body.
type epochJSON struct {
	Epoch       uint64    `json:"epoch"`
	PublishedAt time.Time `json:"published_at"`
	AgeMs       int64     `json:"age_ms"`
}

func epochOf(s *Snapshot, now time.Time) epochJSON {
	return epochJSON{Epoch: s.Epoch, PublishedAt: s.PublishedAt.UTC(), AgeMs: s.Age(now).Milliseconds()}
}

type chainStatusJSON struct {
	Blocks       int64 `json:"blocks"`
	Transactions int64 `json:"transactions"`
	Drained      bool  `json:"drained"`
}

type statusResponse struct {
	epochJSON
	Drained bool                       `json:"drained"`
	Chains  map[string]chainStatusJSON `json:"chains"`
}

type chainsResponse struct {
	epochJSON
	Chains []string `json:"chains"`
}

type summaryResponse struct {
	epochJSON
	Chain        string           `json:"chain"`
	Blocks       int64            `json:"blocks"`
	Transactions int64            `json:"transactions"`
	First        *time.Time       `json:"first,omitempty"`
	Last         *time.Time       `json:"last,omitempty"`
	TypeCounts   map[string]int64 `json:"type_counts,omitempty"`
	Buckets      int              `json:"buckets"`
	Notes        []string         `json:"notes,omitempty"`
	Drained      bool             `json:"drained"`
}

type percentileJSON struct {
	P     float64 `json:"p"`
	Value float64 `json:"value"`
}

type percentilesResponse struct {
	epochJSON
	Chain       string           `json:"chain"`
	Buckets     int              `json:"buckets"`
	Percentiles []percentileJSON `json:"percentiles"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// parsePercentiles parses the ?p= list ("50,90,99" by default). Values must
// be finite numbers in [0, 100].
func parsePercentiles(q string) ([]float64, error) {
	if q == "" {
		q = "50,90,99"
	}
	parts := strings.Split(q, ",")
	ps := make([]float64, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad percentile %q", part)
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("percentile %v out of range [0, 100]", v)
		}
		ps = append(ps, v)
	}
	return ps, nil
}
