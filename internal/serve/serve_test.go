package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/rpcserve"
	"repro/internal/wire"
)

// eosBlocks builds n synthetic EOS blocks numbered start..start+n-1, each
// carrying one token transfer, timestamped inside the paper's observation
// window so the series buckets normally.
func eosBlocks(n int, start int64) []*rpcserve.EOSBlockJSON {
	base := time.Date(2019, time.October, 2, 0, 0, 0, 0, time.UTC)
	blocks := make([]*rpcserve.EOSBlockJSON, n)
	for i := range blocks {
		num := start + int64(i)
		var trx rpcserve.EOSTrxJSON
		trx.Status = "executed"
		trx.Trx.ID = fmt.Sprintf("tx%08d", num)
		trx.Trx.Transaction.Actions = []rpcserve.EOSActionJSON{{
			Account:       "eosio.token",
			Name:          "transfer",
			Authorization: []map[string]string{{"actor": fmt.Sprintf("user%d", num%7)}},
			Data: map[string]string{
				"from":     fmt.Sprintf("user%d", num%7),
				"to":       fmt.Sprintf("user%d", (num+1)%7),
				"quantity": "1.0000 EOS",
			},
		}}
		blocks[i] = &rpcserve.EOSBlockJSON{
			BlockNum:     uint32(num),
			Timestamp:    base.Add(time.Duration(num) * time.Second).Format(wire.EOSTimestampLayout),
			Producer:     "prodnode",
			Transactions: []rpcserve.EOSTrxJSON{trx},
		}
	}
	return blocks
}

func newEOSPublisher(t testing.TB) (*Publisher, *core.EOSAggregator, func()) {
	p := NewPublisher()
	agg := core.NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	release, err := p.Register("eos", core.Window{Origin: chain.ObservationStart, Bucket: 6 * time.Hour}, func() core.ChainSummary { return core.SummarizeEOS(agg) })
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return p, agg, release
}

func TestPublisherEmptySnapshot(t *testing.T) {
	p := NewPublisher()
	snap := p.Current()
	if snap == nil {
		t.Fatal("fresh publisher served a nil snapshot")
	}
	if snap.Epoch != 0 || len(snap.Chains) != 0 || snap.Drained {
		t.Fatalf("unexpected empty snapshot: %+v", snap)
	}
	if got := p.Publish(); got.Epoch != 1 {
		t.Fatalf("first publish epoch = %d, want 1", got.Epoch)
	}
	// No chains registered: never "drained" — there is nothing final to serve.
	if p.Drained() {
		t.Fatal("empty publisher reports drained")
	}
}

func TestRegisterDuplicateChain(t *testing.T) {
	p, _, release := newEOSPublisher(t)
	defer release()
	w := core.Window{Origin: chain.ObservationStart, Bucket: 6 * time.Hour}
	if _, err := p.Register("eos", w, func() core.ChainSummary { return core.ChainSummary{} }); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
}

// TestRegisterWindowMismatch: a second feed for the same chain with a
// different bucket size (or origin) must be rejected with an error naming
// both windows — snapshots mixing differently-anchored series would be
// meaningless. A different chain NAME with a different window stays legal
// (the pipeline's governance feed relies on that).
func TestRegisterWindowMismatch(t *testing.T) {
	p, _, release := newEOSPublisher(t)
	defer release()
	w24 := core.Window{Origin: chain.ObservationStart, Bucket: 24 * time.Hour}
	_, err := p.Register("eos", w24, func() core.ChainSummary { return core.ChainSummary{} })
	if err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("window-mismatched duplicate not called out: %v", err)
	}
	relGov, err := p.Register("governance", w24, func() core.ChainSummary { return core.ChainSummary{} })
	if err != nil {
		t.Fatalf("distinct chain with its own window rejected: %v", err)
	}
	defer relGov()
	snap := p.Publish()
	if got := snap.Chains["governance"].Window; !got.Equal(w24) {
		t.Fatalf("snapshot window = %s, want %s", got, w24)
	}
	if got := snap.Chains["eos"].Window; got.Bucket != 6*time.Hour {
		t.Fatalf("eos snapshot window = %s, want 6h bucket", got)
	}
}

func TestReleaseMarksDrainedAndPublishes(t *testing.T) {
	p, agg, release := newEOSPublisher(t)
	if err := agg.IngestBlocks(eosBlocks(10, 1)); err != nil {
		t.Fatal(err)
	}
	before := p.Publish()
	if before.Drained || before.Chains["eos"].Drained {
		t.Fatalf("drained before release: %+v", before)
	}
	release()
	release() // idempotent
	snap := p.Current()
	if snap.Epoch <= before.Epoch {
		t.Fatalf("release did not publish: epoch %d -> %d", before.Epoch, snap.Epoch)
	}
	if !snap.Drained || !snap.Chains["eos"].Drained {
		t.Fatalf("release did not mark drained: %+v", snap)
	}
	if snap.Chains["eos"].Summary.Blocks != 10 {
		t.Fatalf("drained snapshot blocks = %d, want 10", snap.Chains["eos"].Summary.Blocks)
	}
}

func TestRunPublishesFinalEpochOnCancel(t *testing.T) {
	p, agg, release := newEOSPublisher(t)
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Run(ctx, time.Hour) // interval never fires; only the final publish
		close(done)
	}()
	if err := agg.IngestBlocks(eosBlocks(3, 1)); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-done
	snap := p.Current()
	if snap.Epoch == 0 {
		t.Fatal("Run exited without a final publish")
	}
	if got := snap.Chains["eos"].Summary.Blocks; got != 3 {
		t.Fatalf("final epoch blocks = %d, want 3", got)
	}
}

// TestSnapshotImmutableUnderConcurrentIngest is the serving layer's core
// property: a held snapshot's renders stay byte-identical no matter how
// many epochs writers publish past it. N writers hammer the aggregator and
// publish concurrently while M readers hold old snapshots and re-render
// them; any copy-on-write violation shows up as a byte diff here or as a
// data race under -race.
func TestSnapshotImmutableUnderConcurrentIngest(t *testing.T) {
	p, agg, release := newEOSPublisher(t)

	const (
		writers    = 4
		readers    = 4
		iterations = 40
		batch      = 8
	)
	var wg sync.WaitGroup
	writersDone := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				// Disjoint block ranges per writer per iteration.
				start := int64(w)*1_000_000 + int64(i)*batch + 1
				if err := agg.IngestBlocks(eosBlocks(batch, start)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				p.Publish()
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(writersDone)
	}()

	type held struct {
		snap    *Snapshot
		figures string
	}
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var holds []held
			var lastEpoch uint64
			check := func() bool {
				for _, h := range holds {
					if got := h.snap.RenderFigures(); got != h.figures {
						t.Errorf("held snapshot (epoch %d) render changed:\nwas:\n%s\nnow:\n%s",
							h.snap.Epoch, h.figures, got)
						return false
					}
					if st, ok := h.snap.Chains["eos"]; ok && st.Summary.Render() != st.Figures {
						t.Errorf("epoch %d: Summary.Render() diverged from pre-rendered Figures", h.snap.Epoch)
						return false
					}
				}
				return true
			}
			for {
				select {
				case <-writersDone:
					check()
					return
				default:
				}
				snap := p.Current()
				if snap.Epoch < lastEpoch {
					t.Errorf("epoch went backwards: %d after %d", snap.Epoch, lastEpoch)
					return
				}
				lastEpoch = snap.Epoch
				holds = append(holds, held{snap, snap.RenderFigures()})
				if len(holds) > 16 {
					holds = holds[1:]
				}
				if !check() {
					return
				}
			}
		}()
	}
	readerWG.Wait()

	release()
	final := p.Current()
	if !final.Drained {
		t.Fatal("not drained after release")
	}
	want := int64(writers * iterations * batch)
	if got := final.Chains["eos"].Summary.Blocks; got != want {
		t.Fatalf("final blocks = %d, want %d", got, want)
	}
	// The drained snapshot renders exactly what a fresh summarize renders:
	// publishing never perturbs the aggregate itself.
	if final.RenderFigures() != core.SummarizeEOS(agg).Render() {
		t.Fatal("drained snapshot render differs from a direct summarize")
	}
}
