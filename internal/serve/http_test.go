package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestHandlerReadyzBeforeFirstEpoch pins the liveness/readiness split: a
// freshly-listening server is alive (200 /healthz) but not ready (503
// /readyz) until its first snapshot publishes, so a load balancer never
// routes traffic to the empty placeholder snapshot.
func TestHandlerReadyzBeforeFirstEpoch(t *testing.T) {
	p := NewPublisher()
	h := NewHandler(p)
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz before first epoch: %d", w.Code)
	}
	w := get(t, h, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before first epoch: %d, want 503", w.Code)
	}
	if got := w.Header().Get("X-Serve-Epoch"); got != "0" {
		t.Fatalf("X-Serve-Epoch = %q, want 0", got)
	}
	p.Publish()
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("readyz after first epoch: %d %q", w.Code, w.Body.String())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	p, agg, release := newEOSPublisher(t)
	if err := agg.IngestBlocks(eosBlocks(20, 1)); err != nil {
		t.Fatal(err)
	}
	snap := p.Publish()
	h := NewHandler(p)

	t.Run("healthz", func(t *testing.T) {
		w := get(t, h, "/healthz")
		if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != "ok" {
			t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
		}
	})

	t.Run("readyz", func(t *testing.T) {
		w := get(t, h, "/readyz")
		if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != "ready" {
			t.Fatalf("readyz: %d %q", w.Code, w.Body.String())
		}
	})

	t.Run("staleness headers", func(t *testing.T) {
		w := get(t, h, "/v1/status")
		if got := w.Header().Get("X-Serve-Epoch"); got != strconv.FormatUint(snap.Epoch, 10) {
			t.Fatalf("X-Serve-Epoch = %q, want %d", got, snap.Epoch)
		}
		if w.Header().Get("X-Serve-Published") == "" {
			t.Fatal("missing X-Serve-Published")
		}
		if age := w.Header().Get("X-Serve-Age-Ms"); age == "" {
			t.Fatal("missing X-Serve-Age-Ms")
		} else if v, err := strconv.ParseInt(age, 10, 64); err != nil || v < 0 {
			t.Fatalf("bad X-Serve-Age-Ms %q", age)
		}
	})

	t.Run("status", func(t *testing.T) {
		w := get(t, h, "/v1/status")
		var resp statusResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Epoch != snap.Epoch {
			t.Fatalf("epoch = %d, want %d", resp.Epoch, snap.Epoch)
		}
		if resp.Drained {
			t.Fatal("drained while feed still registered")
		}
		if st := resp.Chains["eos"]; st.Blocks != 20 || st.Transactions != 20 {
			t.Fatalf("eos status = %+v", st)
		}
	})

	t.Run("chains", func(t *testing.T) {
		w := get(t, h, "/v1/chains")
		var resp chainsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Chains) != 1 || resp.Chains[0] != "eos" {
			t.Fatalf("chains = %v", resp.Chains)
		}
	})

	t.Run("summary", func(t *testing.T) {
		w := get(t, h, "/v1/summary/eos")
		var resp summaryResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Chain != "eos" || resp.Blocks != 20 || resp.First == nil {
			t.Fatalf("summary = %+v", resp)
		}
		if resp.TypeCounts["transfer"] != 20 {
			t.Fatalf("type_counts = %v", resp.TypeCounts)
		}
	})

	t.Run("summary unknown chain", func(t *testing.T) {
		if w := get(t, h, "/v1/summary/doge"); w.Code != http.StatusNotFound {
			t.Fatalf("code = %d, want 404", w.Code)
		}
	})

	t.Run("figures", func(t *testing.T) {
		w := get(t, h, "/v1/figures")
		if w.Body.String() != snap.RenderFigures() {
			t.Fatalf("figures mismatch:\n%s\nvs\n%s", w.Body.String(), snap.RenderFigures())
		}
		wc := get(t, h, "/v1/figures/eos")
		if wc.Body.String() != snap.Chains["eos"].Figures {
			t.Fatal("per-chain figures mismatch")
		}
		if !strings.HasPrefix(wc.Body.String(), "--- eos figures ---") {
			t.Fatalf("unexpected figures header: %q", wc.Body.String())
		}
	})

	t.Run("percentiles", func(t *testing.T) {
		w := get(t, h, "/v1/percentiles/eos?p=0,50,100")
		var resp percentilesResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Percentiles) != 3 {
			t.Fatalf("percentiles = %+v", resp.Percentiles)
		}
		// All 20 txs land in one 6h bucket a day past the origin, so the
		// grid runs from empty leading buckets (0) up to that bucket (20).
		if lo := resp.Percentiles[0]; lo.P != 0 || lo.Value != 0 {
			t.Fatalf("p0 = %+v, want 0", lo)
		}
		if hi := resp.Percentiles[2]; hi.P != 100 || hi.Value != 20 {
			t.Fatalf("p100 = %+v, want 20", hi)
		}
		if resp.Buckets == 0 {
			t.Fatal("buckets = 0")
		}
	})

	t.Run("percentiles default grid", func(t *testing.T) {
		w := get(t, h, "/v1/percentiles/eos")
		var resp percentilesResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Percentiles) != 3 || resp.Percentiles[0].P != 50 {
			t.Fatalf("default grid = %+v", resp.Percentiles)
		}
	})

	t.Run("percentiles bad input", func(t *testing.T) {
		for _, q := range []string{"?p=abc", "?p=101", "?p=-1", "?p=50,,99"} {
			if w := get(t, h, "/v1/percentiles/eos"+q); w.Code != http.StatusBadRequest {
				t.Fatalf("%s: code = %d, want 400", q, w.Code)
			}
		}
	})

	t.Run("drained visible after release", func(t *testing.T) {
		release()
		w := get(t, h, "/v1/status")
		var resp statusResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Drained || !resp.Chains["eos"].Drained {
			t.Fatalf("status after release = %+v", resp)
		}
	})
}
