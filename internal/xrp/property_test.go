package xrp

import (
	"testing"
	"testing/quick"
)

// TestOrderBookInvariantsProperty drives random offer/cancel/payment
// sequences and checks structural invariants after every ledger close:
// books stay price-sorted, balances never go negative, and owner counts
// never underflow.
func TestOrderBookInvariantsProperty(t *testing.T) {
	gw := NewAddress("prop-gw")
	traders := []Address{NewAddress("pt1"), NewAddress("pt2"), NewAddress("pt3")}

	check := func(ops []uint32) bool {
		s := New(DefaultConfig(1000))
		s.Fund(gw, 1<<45)
		for _, tr := range traders {
			s.Fund(tr, 1<<45)
			s.Submit(Transaction{Type: TxTrustSet, Account: tr, LimitAmount: IOU("USD", gw, 1<<30)})
		}
		s.CloseLedger()
		for _, tr := range traders {
			s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: tr, Amount: IOU("USD", gw, 1<<20)})
		}
		s.CloseLedger()

		for _, op := range ops {
			trader := traders[op%3]
			amount := int64(op%997) + 1
			price := int64(op%13) + 1
			switch (op >> 4) % 4 {
			case 0: // sell USD for XRP
				s.Submit(Transaction{Type: TxOfferCreate, Account: trader,
					TakerGets: IOU("USD", gw, amount), TakerPays: XRP(amount * price)})
			case 1: // buy USD with XRP
				s.Submit(Transaction{Type: TxOfferCreate, Account: trader,
					TakerGets: XRP(amount * price), TakerPays: IOU("USD", gw, amount)})
			case 2: // cancel something (maybe nonexistent)
				s.Submit(Transaction{Type: TxOfferCancel, Account: trader, OfferSequence: op % 50})
			default: // IOU payment
				s.Submit(Transaction{Type: TxPayment, Account: trader,
					Destination: traders[(op+1)%3], Amount: IOURaw("USD", gw, amount)})
			}
			if op%7 == 0 {
				s.CloseLedger()
			}
		}
		s.CloseLedger()

		// Invariant 1: every book is sorted by ascending price.
		for _, book := range s.books {
			for i := 1; i < len(book.offers); i++ {
				if book.offers[i-1].price() > book.offers[i].price() {
					return false
				}
			}
			// Invariant 2: no empty offers rest on a book.
			for _, o := range book.offers {
				if o.TakerGets.Value <= 0 || o.TakerPays.Value <= 0 {
					return false
				}
			}
		}
		// Invariant 3: balances and owner counts never go negative.
		for _, tr := range append(traders, gw) {
			acct := s.GetAccount(tr)
			if acct.Balance < 0 || acct.OwnerCount < 0 {
				return false
			}
		}
		for _, tr := range traders {
			if s.IOUBalance(tr, gw, "USD") < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossingConservesAssetsProperty verifies that DEX fills conserve both
// legs: XRP only moves between the two parties (minus fees) and the IOU
// total outstanding never changes.
func TestCrossingConservesAssetsProperty(t *testing.T) {
	check := func(fills []uint16) bool {
		s := New(DefaultConfig(1000))
		gw := NewAddress("cons-gw")
		maker := NewAddress("cons-maker")
		taker := NewAddress("cons-taker")
		s.Fund(gw, 1<<40)
		s.Fund(maker, 1<<40)
		s.Fund(taker, 1<<40)
		s.Submit(Transaction{Type: TxTrustSet, Account: maker, LimitAmount: IOU("USD", gw, 1<<30)})
		s.Submit(Transaction{Type: TxTrustSet, Account: taker, LimitAmount: IOU("USD", gw, 1<<30)})
		s.CloseLedger()
		s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: maker, Amount: IOU("USD", gw, 1<<20)})
		s.CloseLedger()

		issued := s.IOUBalance(maker, gw, "USD") + s.IOUBalance(taker, gw, "USD")
		xrpBefore := s.GetAccount(maker).Balance + s.GetAccount(taker).Balance
		feesBefore := s.BurnedFees // setup fees (incl. the issuer's) are out of scope

		for _, f := range fills {
			units := int64(f%200) + 1
			s.Submit(Transaction{Type: TxOfferCreate, Account: maker,
				TakerGets: IOU("USD", gw, units), TakerPays: XRP(units * 5)})
			s.Submit(Transaction{Type: TxOfferCreate, Account: taker,
				TakerGets: XRP(units * 5), TakerPays: IOU("USD", gw, units)})
			s.CloseLedger()
		}

		iouAfter := s.IOUBalance(maker, gw, "USD") + s.IOUBalance(taker, gw, "USD")
		xrpAfter := s.GetAccount(maker).Balance + s.GetAccount(taker).Balance
		// IOUs are conserved exactly; XRP shrinks only by burned fees.
		return iouAfter == issued && xrpBefore-xrpAfter == s.BurnedFees-feesBefore
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
