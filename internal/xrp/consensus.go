package xrp

import (
	"fmt"
	"sort"

	"repro/internal/chain"
)

// Validator is one XRP LCP participant with its Unique Node List: the set of
// validators it listens to during consensus (paper §2.2).
type Validator struct {
	ID  string
	UNL []string
}

// ConsensusNetwork models the XRP Ledger Consensus Protocol at the level the
// paper describes it: consensus converges when the validators' UNLs overlap
// by at least 90 %; below that threshold forks can arise.
type ConsensusNetwork struct {
	validators map[string]*Validator
	order      []string
}

// NewConsensusNetwork builds a network from validators.
func NewConsensusNetwork(vs ...*Validator) *ConsensusNetwork {
	n := &ConsensusNetwork{validators: make(map[string]*Validator)}
	for _, v := range vs {
		n.validators[v.ID] = v
		n.order = append(n.order, v.ID)
	}
	sort.Strings(n.order)
	return n
}

// MinPairwiseOverlap returns the minimum pairwise UNL overlap fraction,
// measured against the larger UNL of each pair.
func (n *ConsensusNetwork) MinPairwiseOverlap() float64 {
	minOverlap := 1.0
	for i, a := range n.order {
		for _, b := range n.order[i+1:] {
			o := overlap(n.validators[a].UNL, n.validators[b].UNL)
			if o < minOverlap {
				minOverlap = o
			}
		}
	}
	return minOverlap
}

func overlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	shared := 0
	for _, y := range b {
		if set[y] {
			shared++
		}
	}
	larger := len(a)
	if len(b) > larger {
		larger = len(b)
	}
	return float64(shared) / float64(larger)
}

// SafeAgainstForks reports whether the 90 % overlap condition holds.
func (n *ConsensusNetwork) SafeAgainstForks() bool {
	return n.MinPairwiseOverlap() >= 0.90
}

// RoundResult reports one consensus round.
type RoundResult struct {
	Converged bool
	Value     chain.Hash
	Rounds    int
}

// RunRound executes avalanche-style rounds: every validator repeatedly
// adopts the proposal supported by at least 80 % of its UNL until all agree
// or the iteration cap is hit. proposals maps validator ID to its initial
// candidate transaction-set hash.
func (n *ConsensusNetwork) RunRound(proposals map[string]chain.Hash) (RoundResult, error) {
	if len(proposals) == 0 {
		return RoundResult{}, fmt.Errorf("xrp: no proposals")
	}
	current := make(map[string]chain.Hash, len(n.order))
	for _, id := range n.order {
		p, ok := proposals[id]
		if !ok {
			return RoundResult{}, fmt.Errorf("xrp: validator %s has no proposal", id)
		}
		current[id] = p
	}
	const maxRounds = 32
	for round := 1; round <= maxRounds; round++ {
		next := make(map[string]chain.Hash, len(current))
		for _, id := range n.order {
			v := n.validators[id]
			counts := make(map[chain.Hash]int)
			for _, peer := range v.UNL {
				if h, ok := current[peer]; ok {
					counts[h]++
				}
			}
			adopted := current[id]
			// Deterministic iteration: sort candidate hashes.
			hashes := make([]chain.Hash, 0, len(counts))
			for h := range counts {
				hashes = append(hashes, h)
			}
			sort.Slice(hashes, func(i, j int) bool {
				return hashes[i].String() < hashes[j].String()
			})
			for _, h := range hashes {
				if float64(counts[h]) >= 0.80*float64(len(v.UNL)) {
					adopted = h
					break
				}
			}
			next[id] = adopted
		}
		current = next
		if h, ok := allAgree(current); ok {
			return RoundResult{Converged: true, Value: h, Rounds: round}, nil
		}
	}
	return RoundResult{Converged: false, Rounds: maxRounds}, nil
}

func allAgree(m map[string]chain.Hash) (chain.Hash, bool) {
	var first chain.Hash
	started := false
	for _, h := range m {
		if !started {
			first, started = h, true
			continue
		}
		if h != first {
			return chain.Hash{}, false
		}
	}
	return first, started
}
