package xrp

import (
	"testing"
	"time"
)

// dexFixture builds a gateway plus two traders holding BTC IOUs and XRP.
func dexFixture(t *testing.T) (*State, Address, Address, Address) {
	t.Helper()
	s := New(DefaultConfig(1000))
	gw := NewAddress("gateway")
	maker := NewAddress("maker")
	taker := NewAddress("taker")
	s.Fund(gw, 1_000_000*DropsPerXRP)
	s.Fund(maker, 1_000_000*DropsPerXRP)
	s.Fund(taker, 1_000_000*DropsPerXRP)
	submitAndClose(s,
		Transaction{Type: TxTrustSet, Account: maker, LimitAmount: IOU("BTC", gw, 1_000_000)},
		Transaction{Type: TxTrustSet, Account: taker, LimitAmount: IOU("BTC", gw, 1_000_000)},
	)
	submitAndClose(s, Transaction{
		Type: TxPayment, Account: gw, Destination: maker, Amount: IOU("BTC", gw, 100),
	})
	return s, gw, maker, taker
}

func TestOfferRestsOnBook(t *testing.T) {
	s, gw, maker, _ := dexFixture(t)
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("offer failed: %s", code)
	}
	offers := s.BookOffers(AssetKey{"BTC", gw}, AssetKey{Currency: "XRP"})
	if len(offers) != 1 {
		t.Fatalf("book has %d offers", len(offers))
	}
	if offers[0].Filled {
		t.Fatal("resting offer marked filled")
	}
	if got := s.GetAccount(maker).OwnerCount; got != 2 { // line + offer
		t.Fatalf("owner count = %d", got)
	}
}

func TestOfferCrossingExecutesTrade(t *testing.T) {
	s, gw, maker, taker := dexFixture(t)
	// Maker sells 1 BTC for 30,000 XRP.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000),
	})
	// Taker buys BTC, willing to pay up to 30,500 XRP — crosses at the
	// maker's 30,000 price.
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: XRP(30_500), TakerPays: IOU("BTC", gw, 1),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("crossing offer failed: %s", code)
	}
	if got := s.IOUBalance(taker, gw, "BTC"); got != 1*DropsPerXRP {
		t.Fatalf("taker BTC = %d", got)
	}
	if got := s.IOUBalance(maker, gw, "BTC"); got != 99*DropsPerXRP {
		t.Fatalf("maker BTC = %d", got)
	}
	ex := s.Exchanges()
	if len(ex) != 1 {
		t.Fatalf("%d exchanges recorded", len(ex))
	}
	// The rate: 30,000 XRP per BTC (maker's price).
	if r := ex[0].Rate(); r < 29_999 || r > 30_001 {
		t.Fatalf("exchange rate = %f", r)
	}
	if ex[0].Maker != maker || ex[0].Taker != taker {
		t.Fatal("exchange parties wrong")
	}
	// Maker received 30,000 XRP.
	makerAcct := s.GetAccount(maker)
	if makerAcct.Balance < 1_029_000*DropsPerXRP {
		t.Fatalf("maker XRP = %d", makerAcct.Balance)
	}
}

func TestOfferPartialFill(t *testing.T) {
	s, gw, maker, taker := dexFixture(t)
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 10), TakerPays: XRP(300_000),
	})
	// Taker only wants 4 BTC.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: XRP(120_000), TakerPays: IOU("BTC", gw, 4),
	})
	offers := s.BookOffers(AssetKey{"BTC", gw}, AssetKey{Currency: "XRP"})
	if len(offers) != 1 {
		t.Fatalf("book has %d offers", len(offers))
	}
	if got := offers[0].TakerGets.Value; got != 6*DropsPerXRP {
		t.Fatalf("residual maker offer = %d", got)
	}
	if !offers[0].Filled {
		t.Fatal("partially filled offer not marked Filled")
	}
	if got := s.IOUBalance(taker, gw, "BTC"); got != 4*DropsPerXRP {
		t.Fatalf("taker BTC = %d", got)
	}
}

func TestOfferPriceRespected(t *testing.T) {
	s, gw, maker, taker := dexFixture(t)
	// Maker demands 40,000 XRP per BTC.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(40_000),
	})
	// Taker only pays up to 30,000: no cross, both offers rest.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: XRP(30_000), TakerPays: IOU("BTC", gw, 1),
	})
	if len(s.Exchanges()) != 0 {
		t.Fatal("trade executed through the spread")
	}
	if len(s.BookOffers(AssetKey{"BTC", gw}, AssetKey{Currency: "XRP"})) != 1 {
		t.Fatal("maker offer vanished")
	}
	if len(s.BookOffers(AssetKey{Currency: "XRP"}, AssetKey{"BTC", gw})) != 1 {
		t.Fatal("taker offer did not rest")
	}
}

func TestBestPriceFirst(t *testing.T) {
	s, gw, maker, taker := dexFixture(t)
	second := NewAddress("maker2")
	s.Fund(second, 1_000_000*DropsPerXRP)
	submitAndClose(s, Transaction{Type: TxTrustSet, Account: second, LimitAmount: IOU("BTC", gw, 1_000_000)})
	submitAndClose(s, Transaction{Type: TxPayment, Account: gw, Destination: second, Amount: IOU("BTC", gw, 100)})

	// Two asks: 35,000 (maker) and 30,000 (second). The taker must hit the
	// 30,000 one.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(35_000),
	})
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: second,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000),
	})
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: XRP(31_000), TakerPays: IOU("BTC", gw, 1),
	})
	ex := s.Exchanges()
	if len(ex) != 1 || ex[0].Maker != second {
		t.Fatalf("trade did not hit best ask: %+v", ex)
	}
}

func TestUnfundedOfferRejected(t *testing.T) {
	s, gw, _, taker := dexFixture(t)
	// Taker owns no BTC and is not the issuer: selling BTC must fail with
	// tecUNFUNDED_OFFER (the second most common failure in the dataset).
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: IOU("BTC", gw, 5), TakerPays: XRP(100),
	})
	if code := led.Transactions[0].Result; code != TecUNFUNDED_OFFER {
		t.Fatalf("result = %s", code)
	}
}

func TestOfferCancel(t *testing.T) {
	s, gw, maker, _ := dexFixture(t)
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000),
	})
	seq := led.Transactions[0].RestingSequence
	if seq == 0 {
		t.Fatal("resting offer sequence not reported")
	}
	led = submitAndClose(s, Transaction{
		Type: TxOfferCancel, Account: maker, OfferSequence: seq,
	})
	if !led.Transactions[0].Result.Success() {
		t.Fatal("cancel failed")
	}
	if len(s.BookOffers(AssetKey{"BTC", gw}, AssetKey{Currency: "XRP"})) != 0 {
		t.Fatal("offer still on book")
	}
	// Cancelling a ghost offer still succeeds (main-net behaviour).
	led = submitAndClose(s, Transaction{Type: TxOfferCancel, Account: maker, OfferSequence: 9999})
	if !led.Transactions[0].Result.Success() {
		t.Fatal("ghost cancel failed")
	}
}

func TestExpiredOfferRejectedAndPurged(t *testing.T) {
	s, gw, maker, taker := dexFixture(t)
	past := s.Now().Add(-time.Hour)
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000), Expiration: past,
	})
	if code := led.Transactions[0].Result; code != TecEXPIRED {
		t.Fatalf("expired offer accepted: %s", code)
	}
	// An offer that expires while resting is purged when the book is hit.
	soon := s.Now().Add(2 * DefaultConfig(1000).CloseInterval)
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("BTC", gw, 1), TakerPays: XRP(30_000), Expiration: soon,
	})
	s.CloseLedger()
	s.CloseLedger() // clock passes the expiry
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: taker,
		TakerGets: XRP(31_000), TakerPays: IOU("BTC", gw, 1),
	})
	if len(s.Exchanges()) != 0 {
		t.Fatal("trade executed against expired offer")
	}
}

func TestSelfTradeSameAccountAllowed(t *testing.T) {
	// The Myrone Bagalay case (§4.3): an account trading with itself (or
	// its own cluster) at arbitrary prices is legitimate on-ledger. The
	// simulator must allow different accounts of the same operator to cross.
	s := New(DefaultConfig(1000))
	issuer := NewAddress("myrone-issuer")
	buyer := NewAddress("myrone-buyer")
	s.Fund(issuer, 100_000*DropsPerXRP)
	s.Fund(buyer, 12_000_000*DropsPerXRP)
	submitAndClose(s, Transaction{Type: TxTrustSet, Account: buyer, LimitAmount: IOU("BTC", issuer, 1_000_000)})
	// Issuer sells its own BTC IOU at an absurd 30,500 XRP rate.
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: issuer,
		TakerGets: IOU("BTC", issuer, 300), TakerPays: XRP(9_150_000),
	})
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: buyer,
		TakerGets: XRP(9_150_000), TakerPays: IOU("BTC", issuer, 300),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("self-cluster trade failed: %s", code)
	}
	ex := s.Exchanges()
	if len(ex) != 1 {
		t.Fatalf("%d exchanges", len(ex))
	}
	if r := ex[0].Rate(); r < 30_000 || r > 31_000 {
		t.Fatalf("manipulated rate = %f, want ~30,500", r)
	}
}
