package xrp

import (
	"sort"
	"time"
)

// AssetPair identifies an order book: offers selling Gets in exchange for
// Pays.
type AssetPair struct {
	Gets AssetKey
	Pays AssetKey
}

// Offer is a resting order on the DEX. TakerGets/TakerPays shrink as the
// offer fills. The paper's headline DEX statistic: only 0.2 % of
// successfully created offers are ever fulfilled to any extent.
type Offer struct {
	Owner      Address
	Sequence   uint32
	TakerGets  Amount // remaining amount the owner still offers
	TakerPays  Amount // remaining amount the owner still wants
	Expiration time.Time
	// Quality is the demanded TakerPays per TakerGets, fixed at placement.
	// rippled sorts and crosses by this original quality, so partial-fill
	// rounding can never reorder a book.
	Quality float64
	// Filled reports whether any part of the offer ever executed.
	Filled bool
}

// price returns the owner's demanded TakerPays per unit TakerGets (the
// placement-time quality).
func (o *Offer) price() float64 { return o.Quality }

type orderBook struct {
	offers []*Offer // sorted by ascending price (best for takers first)
}

func (b *orderBook) insert(o *Offer) {
	i := sort.Search(len(b.offers), func(i int) bool {
		pi, po := b.offers[i].price(), o.price()
		if pi != po {
			return pi > po
		}
		return b.offers[i].Sequence > o.Sequence // time priority on ties
	})
	b.offers = append(b.offers, nil)
	copy(b.offers[i+1:], b.offers[i:])
	b.offers[i] = o
}

func (b *orderBook) remove(o *Offer) {
	for i, x := range b.offers {
		if x == o {
			b.offers = append(b.offers[:i], b.offers[i+1:]...)
			return
		}
	}
}

// Exchange records one executed DEX fill. The explorer's exchange_rates API
// (used by the paper to value IOUs, Figure 11) aggregates these.
type Exchange struct {
	Time        time.Time
	LedgerIndex int64
	// Base is the asset the resting (maker) offer sold; Counter is what it
	// received. Rate() is Counter per Base.
	Base, Counter           AssetKey
	BaseValue, CounterValue int64 // 6-decimal fixed point
	Maker, Taker            Address
	// MakerSequence identifies the maker's offer so analysis can attribute
	// later fills to the OfferCreate that placed it.
	MakerSequence uint32
}

// Rate returns counter units per base unit.
func (e Exchange) Rate() float64 {
	if e.BaseValue == 0 {
		return 0
	}
	return float64(e.CounterValue) / float64(e.BaseValue)
}

// book returns (creating if needed) the book selling gets for pays.
func (s *State) book(gets, pays AssetKey) *orderBook {
	k := AssetPair{Gets: gets, Pays: pays}
	b := s.books[k]
	if b == nil {
		b = &orderBook{}
		s.books[k] = b
	}
	return b
}

// BookOffers returns the resting offers selling gets for pays, best first.
func (s *State) BookOffers(gets, pays AssetKey) []*Offer {
	return s.book(gets, pays).offers
}

// FindOffer locates a resting offer by owner and sequence.
func (s *State) FindOffer(owner Address, seq uint32) *Offer {
	for _, b := range s.books {
		for _, o := range b.offers {
			if o.Owner == owner && o.Sequence == seq {
				return o
			}
		}
	}
	return nil
}

// canFund reports whether owner could deliver amount right now.
func (s *State) canFund(owner Address, a Amount) bool {
	acct := s.accounts[owner]
	if acct == nil {
		return false
	}
	if a.IsNative() {
		return s.Spendable(acct) >= a.Value
	}
	return owner == a.Issuer || s.IOUBalance(owner, a.Issuer, a.Currency) >= a.Value
}

// deliver moves amount from one account to another as part of a DEX fill.
// IOU receivers get an implicit trust line sized to the delivery — a
// simplification of rippled's offer-crossing line creation.
func (s *State) deliver(from, to Address, a Amount) bool {
	if a.Value <= 0 {
		return false
	}
	if a.IsNative() {
		fa, ta := s.accounts[from], s.accounts[to]
		if fa == nil || ta == nil || s.Spendable(fa) < a.Value {
			return false
		}
		fa.Balance -= a.Value
		ta.Balance += a.Value
		return true
	}
	if !s.canDebitIOU(from, a) {
		return false
	}
	if to != a.Issuer {
		k := lineKey{to, a.Issuer, a.Currency}
		l := s.lines[k]
		if l == nil {
			l = &TrustLine{Holder: to, Issuer: a.Issuer, Currency: a.Currency}
			s.lines[k] = l
			if acct := s.accounts[to]; acct != nil {
				acct.OwnerCount++
			}
		}
		if l.Balance+a.Value > l.Limit {
			l.Limit = l.Balance + a.Value // implicit limit growth on fills
		}
	}
	if code := s.debitIOU(from, a); !code.Success() {
		return false
	}
	return s.creditIOU(to, a).Success()
}

// applyOfferCreate validates, crosses and possibly rests a new offer.
func (s *State) applyOfferCreate(tx *Transaction, acct *Account, now time.Time) ResultCode {
	if tx.TakerGets.Value <= 0 || tx.TakerPays.Value <= 0 {
		return TemBAD_AMOUNT
	}
	if tx.TakerGets.SameAsset(tx.TakerPays) {
		return TemBAD_AMOUNT
	}
	if !tx.Expiration.IsZero() && !tx.Expiration.After(now) {
		return TecEXPIRED
	}
	if !s.canFund(tx.Account, tx.TakerGets) {
		return TecUNFUNDED_OFFER
	}

	remainGets := tx.TakerGets // what we still offer
	remainPays := tx.TakerPays // what we still want
	counterBook := s.book(remainPays.Key(), remainGets.Key())

	for remainPays.Value > 0 && len(counterBook.offers) > 0 {
		counter := counterBook.offers[0]
		// Purge stale makers: expired or no longer funded.
		if (!counter.Expiration.IsZero() && !counter.Expiration.After(now)) ||
			!s.canFund(counter.Owner, counter.TakerGets.WithValue(min64(counter.TakerGets.Value, 1))) {
			counterBook.remove(counter)
			s.decOwner(counter.Owner)
			continue
		}
		// Counter demands counter.TakerPays (our Gets asset) per
		// counter.TakerGets (our Pays asset). Cross only while its price
		// does not exceed what we are willing to pay.
		ourPrice := float64(remainGets.Value) / float64(remainPays.Value)
		if counter.price() > ourPrice {
			break
		}
		fillPays := min64(counter.TakerGets.Value, remainPays.Value)
		fillGets := int64(float64(fillPays) * counter.price())
		if fillGets <= 0 {
			break
		}
		if fillGets > remainGets.Value {
			fillGets = remainGets.Value
			fillPays = int64(float64(fillGets) / counter.price())
			if fillPays <= 0 {
				break
			}
		}
		// Maker can only deliver what it can fund right now.
		if !s.canFund(counter.Owner, counter.TakerGets.WithValue(fillPays)) {
			counterBook.remove(counter)
			s.decOwner(counter.Owner)
			continue
		}
		if !s.canFund(tx.Account, remainGets.WithValue(fillGets)) {
			break // taker ran out mid-cross; rest whatever remains
		}
		if !s.deliver(counter.Owner, tx.Account, counter.TakerGets.WithValue(fillPays)) {
			counterBook.remove(counter)
			s.decOwner(counter.Owner)
			continue
		}
		if !s.deliver(tx.Account, counter.Owner, remainGets.WithValue(fillGets)) {
			// Roll the maker leg back to keep books balanced.
			s.deliver(tx.Account, counter.Owner, counter.TakerGets.WithValue(fillPays))
			break
		}

		s.exchanges = append(s.exchanges, Exchange{
			Time:          now,
			LedgerIndex:   int64(len(s.ledgers) + 1),
			Base:          counter.TakerGets.Key(),
			Counter:       counter.TakerPays.Key(),
			BaseValue:     fillPays,
			CounterValue:  fillGets,
			Maker:         counter.Owner,
			Taker:         tx.Account,
			MakerSequence: counter.Sequence,
		})
		counter.Filled = true
		tx.Executed = true

		counter.TakerGets.Value -= fillPays
		counter.TakerPays.Value -= fillGets
		remainPays.Value -= fillPays
		remainGets.Value -= fillGets
		if counter.TakerGets.Value <= 0 || counter.TakerPays.Value <= 0 {
			counterBook.remove(counter)
			s.decOwner(counter.Owner)
		}
	}

	if remainGets.Value > 0 && remainPays.Value > 0 {
		o := &Offer{
			Owner:      tx.Account,
			Sequence:   tx.Sequence,
			TakerGets:  remainGets,
			TakerPays:  remainPays,
			Expiration: tx.Expiration,
			Quality:    float64(tx.TakerPays.Value) / float64(tx.TakerGets.Value),
			Filled:     tx.Executed,
		}
		s.book(remainGets.Key(), remainPays.Key()).insert(o)
		acct.OwnerCount++
		tx.RestingSequence = tx.Sequence
	}
	return TesSUCCESS
}

// applyOfferCancel removes the referenced offer. Cancelling a missing offer
// still succeeds, as on main net.
func (s *State) applyOfferCancel(tx *Transaction, acct *Account) ResultCode {
	if o := s.FindOffer(tx.Account, tx.OfferSequence); o != nil {
		s.book(o.TakerGets.Key(), o.TakerPays.Key()).remove(o)
		if acct.OwnerCount > 0 {
			acct.OwnerCount--
		}
	}
	return TesSUCCESS
}

func (s *State) decOwner(addr Address) {
	if a := s.accounts[addr]; a != nil && a.OwnerCount > 0 {
		a.OwnerCount--
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
