package xrp

import "time"

// applyCrossCurrencyPayment bridges a payment through the order book: the
// sender spends SendMax-asset, the destination receives Amount-asset, and
// the conversion consumes resting offers that sell the target asset for the
// source asset. The whole Amount must be deliverable within SendMax or the
// payment fails with tecPATH_DRY — the "insufficient liquidity for
// specified payment path" failure dominating the paper's Payment errors.
//
// Planning runs before any mutation so a dry path leaves no partial state.
func (s *State) applyCrossCurrencyPayment(tx *Transaction, now time.Time) ResultCode {
	dest := s.accounts[tx.Destination]
	if dest == nil {
		return TecNO_DST
	}
	if dest.RequireDestTag && tx.DestinationTag == 0 {
		return TecDST_TAG_NEEDED
	}
	source := *tx.SendMax
	if source.Value <= 0 {
		return TemBAD_AMOUNT
	}
	// The destination must be able to hold the target asset.
	if !tx.Amount.IsNative() && tx.Destination != tx.Amount.Issuer {
		l := s.line(tx.Destination, tx.Amount.Issuer, tx.Amount.Currency)
		if l == nil || l.Balance+tx.Amount.Value > l.Limit {
			return TecPATH_DRY
		}
	}

	// Plan: walk the book selling Amount-asset for source-asset, best
	// price first, until the full Amount is covered.
	book := s.book(tx.Amount.Key(), source.Key())
	type fill struct {
		offer *Offer
		gets  int64 // target asset taken from the maker
		pays  int64 // source asset paid to the maker
	}
	var plan []fill
	needed := tx.Amount.Value
	budget := source.Value
	for _, offer := range book.offers {
		if needed <= 0 {
			break
		}
		if !offer.Expiration.IsZero() && !offer.Expiration.After(now) {
			continue
		}
		take := min64(offer.TakerGets.Value, needed)
		cost := int64(float64(take) * offer.price())
		if cost <= 0 {
			cost = 1
		}
		if cost > budget {
			// Partial consumption capped by the remaining budget.
			take = int64(float64(budget) / offer.price())
			cost = budget
			if take <= 0 {
				break
			}
		}
		if !s.canFund(offer.Owner, offer.TakerGets.WithValue(take)) {
			continue // stale maker; skip during planning
		}
		plan = append(plan, fill{offer: offer, gets: take, pays: cost})
		needed -= take
		budget -= cost
	}
	if needed > 0 {
		return TecPATH_DRY
	}
	// The sender must be able to fund the total source spend.
	var totalPays int64
	for _, f := range plan {
		totalPays += f.pays
	}
	if !s.canFund(tx.Account, source.WithValue(totalPays)) {
		if source.IsNative() {
			return TecUNFUNDED_PAYMENT
		}
		return TecPATH_DRY
	}

	// Execute the plan.
	for _, f := range plan {
		if !s.deliver(tx.Account, f.offer.Owner, source.WithValue(f.pays)) {
			return TecPATH_DRY // should not happen after planning
		}
		if !s.deliver(f.offer.Owner, tx.Destination, tx.Amount.WithValue(f.gets)) {
			return TecPATH_DRY
		}
		s.exchanges = append(s.exchanges, Exchange{
			Time:          now,
			LedgerIndex:   int64(len(s.ledgers) + 1),
			Base:          f.offer.TakerGets.Key(),
			Counter:       f.offer.TakerPays.Key(),
			BaseValue:     f.gets,
			CounterValue:  f.pays,
			Maker:         f.offer.Owner,
			Taker:         tx.Account,
			MakerSequence: f.offer.Sequence,
		})
		f.offer.Filled = true
		f.offer.TakerGets.Value -= f.gets
		f.offer.TakerPays.Value -= f.pays
	}
	// Purge consumed offers.
	for _, f := range plan {
		if f.offer.TakerGets.Value <= 0 || f.offer.TakerPays.Value <= 0 {
			book.remove(f.offer)
			s.decOwner(f.offer.Owner)
		}
	}
	tx.DeliveredAmount = tx.Amount
	return TesSUCCESS
}
