package xrp

import (
	"testing"
	"testing/quick"
)

// fixture builds a ledger with funded, activated accounts.
func fixture(t *testing.T, names ...string) (*State, map[string]Address) {
	t.Helper()
	s := New(DefaultConfig(1000))
	addrs := make(map[string]Address, len(names))
	for _, n := range names {
		a := NewAddress(n)
		addrs[n] = a
		s.Fund(a, 10_000*DropsPerXRP)
	}
	return s, addrs
}

func submitAndClose(s *State, txs ...Transaction) *Ledger {
	for _, tx := range txs {
		s.Submit(tx)
	}
	return s.CloseLedger()
}

func TestAddressValidation(t *testing.T) {
	a := NewAddress("genesis")
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Address("xnotanaddress").Validate(); err == nil {
		t.Fatal("junk address validated")
	}
	if NewAddress("x") == NewAddress("y") {
		t.Fatal("addresses collided")
	}
}

func TestXRPPayment(t *testing.T) {
	s, a := fixture(t, "alice", "bob")
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: XRP(100),
	})
	if len(led.Transactions) != 1 {
		t.Fatalf("ledger txs = %d", len(led.Transactions))
	}
	tx := led.Transactions[0]
	if !tx.Result.Success() {
		t.Fatalf("result = %s", tx.Result)
	}
	if got := s.GetAccount(a["bob"]).Balance; got != 10_100*DropsPerXRP {
		t.Fatalf("bob = %d", got)
	}
	// Sender paid amount + fee.
	if got := s.GetAccount(a["alice"]).Balance; got != 10_000*DropsPerXRP-100*DropsPerXRP-10 {
		t.Fatalf("alice = %d", got)
	}
	if tx.DeliveredAmount != XRP(100) {
		t.Fatalf("delivered = %v", tx.DeliveredAmount)
	}
}

func TestPaymentActivatesAccountAndRecordsParent(t *testing.T) {
	s, a := fixture(t, "exchange")
	child := NewAddress("fresh-account")
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["exchange"], Destination: child, Amount: XRP(25),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("activation failed: %s", code)
	}
	acct := s.GetAccount(child)
	if acct == nil || acct.Parent != a["exchange"] {
		t.Fatalf("parent not recorded: %+v", acct)
	}
	// Below the 20 XRP reserve, activation must fail with tecNO_DST.
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["exchange"], Destination: NewAddress("too-poor"), Amount: XRP(5),
	})
	if code := led.Transactions[0].Result; code != TecNO_DST {
		t.Fatalf("underfunded activation: %s", code)
	}
}

func TestFailedTxRecordedFeeBurned(t *testing.T) {
	s, a := fixture(t, "alice", "bob")
	// Overspend: 10k balance minus reserve cannot cover 50k.
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: XRP(50_000),
	})
	if len(led.Transactions) != 1 {
		t.Fatal("failed tx not recorded in ledger")
	}
	if code := led.Transactions[0].Result; code != TecUNFUNDED_PAYMENT {
		t.Fatalf("result = %s", code)
	}
	if s.BurnedFees != 10 {
		t.Fatalf("burned fees = %d", s.BurnedFees)
	}
	// Balance only lost the fee.
	if got := s.GetAccount(a["alice"]).Balance; got != 10_000*DropsPerXRP-10 {
		t.Fatalf("alice = %d", got)
	}
}

func TestReserveBlocksSpending(t *testing.T) {
	s, _ := fixture(t)
	poor := NewAddress("poor")
	s.Fund(poor, 21*DropsPerXRP)
	rich := NewAddress("rich2")
	s.Fund(rich, 1000*DropsPerXRP)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: poor, Destination: rich, Amount: XRP(5),
	})
	if code := led.Transactions[0].Result; code != TecUNFUNDED_PAYMENT {
		t.Fatalf("reserve not enforced: %s", code)
	}
}

func TestDestinationTagRequired(t *testing.T) {
	s, a := fixture(t, "user", "exchange")
	submitAndClose(s, Transaction{
		Type: TxAccountSet, Account: a["exchange"], DestinationTag: 1, // set RequireDest
	})
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["user"], Destination: a["exchange"], Amount: XRP(1),
	})
	if code := led.Transactions[0].Result; code != TecDST_TAG_NEEDED {
		t.Fatalf("missing tag accepted: %s", code)
	}
	// With the Huobi-style tag the payment succeeds.
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["user"], Destination: a["exchange"], Amount: XRP(1),
		DestinationTag: 104398,
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("tagged payment failed: %s", code)
	}
}

func TestUnknownAccountNotIncluded(t *testing.T) {
	s, _ := fixture(t)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: NewAddress("ghost"), Destination: NewAddress("x"), Amount: XRP(1),
	})
	if len(led.Transactions) != 0 {
		t.Fatal("tx from unknown account included")
	}
	if s.NotIncluded != 1 {
		t.Fatalf("NotIncluded = %d", s.NotIncluded)
	}
}

func TestTrustSetAndIOUPayment(t *testing.T) {
	s, a := fixture(t, "gateway", "alice", "bob")
	gw := a["gateway"]
	// Both users open USD trust lines to the gateway.
	led := submitAndClose(s,
		Transaction{Type: TxTrustSet, Account: a["alice"], LimitAmount: IOU("USD", gw, 1000)},
		Transaction{Type: TxTrustSet, Account: a["bob"], LimitAmount: IOU("USD", gw, 500)},
	)
	for _, tx := range led.Transactions {
		if !tx.Result.Success() {
			t.Fatalf("trustset failed: %s", tx.Result)
		}
	}
	// Gateway issues 200 USD to alice.
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: gw, Destination: a["alice"], Amount: IOU("USD", gw, 200),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("issue failed: %s", code)
	}
	if got := s.IOUBalance(a["alice"], gw, "USD"); got != 200*DropsPerXRP {
		t.Fatalf("alice USD = %d", got)
	}
	// Alice pays bob 50 USD (rippling through the issuer).
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: IOU("USD", gw, 50),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("IOU payment failed: %s", code)
	}
	if got := s.IOUBalance(a["bob"], gw, "USD"); got != 50*DropsPerXRP {
		t.Fatalf("bob USD = %d", got)
	}
	// Bob redeems 20 USD with the issuer: his balance shrinks, issuer holds
	// nothing (IOUs returning to the issuer vanish).
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["bob"], Destination: gw, Amount: IOU("USD", gw, 20),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("redeem failed: %s", code)
	}
	if got := s.IOUBalance(a["bob"], gw, "USD"); got != 30*DropsPerXRP {
		t.Fatalf("bob USD after redeem = %d", got)
	}
}

func TestIOUPaymentPathDry(t *testing.T) {
	s, a := fixture(t, "gateway", "alice", "bob")
	gw := a["gateway"]
	// Alice has no USD at all: payment must fail PATH_DRY.
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: IOU("USD", gw, 10),
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("expected PATH_DRY, got %s", code)
	}
	// Receiver without a trust line is also a dry path.
	submitAndClose(s, Transaction{Type: TxTrustSet, Account: a["alice"], LimitAmount: IOU("USD", gw, 1000)})
	submitAndClose(s, Transaction{Type: TxPayment, Account: gw, Destination: a["alice"], Amount: IOU("USD", gw, 100)})
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: IOU("USD", gw, 10),
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("expected PATH_DRY for missing receiver line, got %s", code)
	}
	// Exceeding the receiver's trust limit is dry too.
	submitAndClose(s, Transaction{Type: TxTrustSet, Account: a["bob"], LimitAmount: IOU("USD", gw, 5)})
	led = submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: IOU("USD", gw, 10),
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("expected PATH_DRY for limit overflow, got %s", code)
	}
}

func TestTrustSetValidation(t *testing.T) {
	s, a := fixture(t, "alice")
	led := submitAndClose(s,
		Transaction{Type: TxTrustSet, Account: a["alice"], LimitAmount: IOU("USD", a["alice"], 10)},
		Transaction{Type: TxTrustSet, Account: a["alice"], LimitAmount: Amount{Currency: "XRP", Value: 10}},
	)
	// tem-class codes (malformed transactions) never reach the ledger.
	if len(led.Transactions) != 0 {
		t.Fatalf("tem txs included: %d", len(led.Transactions))
	}
	if s.NotIncluded != 2 {
		t.Fatalf("NotIncluded = %d, want 2", s.NotIncluded)
	}
}

func TestSequenceIncrements(t *testing.T) {
	s, a := fixture(t, "alice", "bob")
	for i := 0; i < 3; i++ {
		submitAndClose(s, Transaction{
			Type: TxPayment, Account: a["alice"], Destination: a["bob"], Amount: XRP(1),
		})
	}
	if got := s.GetAccount(a["alice"]).Sequence; got != 3 {
		t.Fatalf("sequence = %d", got)
	}
}

func TestLedgerChainLinks(t *testing.T) {
	s, _ := fixture(t)
	l1 := s.CloseLedger()
	l2 := s.CloseLedger()
	if l2.ParentHash != l1.Hash {
		t.Fatal("ledger linkage broken")
	}
	if got := l2.CloseTime.Sub(l1.CloseTime); got != DefaultConfig(1000).CloseInterval {
		t.Fatalf("close interval %v", got)
	}
	if s.GetLedger(1) != l1 || s.GetLedger(3) != nil {
		t.Fatal("GetLedger bounds wrong")
	}
}

// TestXRPConservationProperty: XRP is only destroyed through fees; random
// payment storms must conserve balance + burned fees.
func TestXRPConservationProperty(t *testing.T) {
	f := func(moves []uint16) bool {
		s := New(DefaultConfig(1000))
		addrs := []Address{NewAddress("c1"), NewAddress("c2"), NewAddress("c3")}
		var initial int64
		for _, a := range addrs {
			s.Fund(a, 5000*DropsPerXRP)
			initial += 5000 * DropsPerXRP
		}
		for _, m := range moves {
			from := addrs[int(m)%3]
			to := addrs[int(m>>2)%3]
			if from == to {
				continue
			}
			s.Submit(Transaction{
				Type: TxPayment, Account: from, Destination: to,
				Amount: Drops(int64(m) * 1000),
			})
			if m%7 == 0 {
				s.CloseLedger()
			}
		}
		s.CloseLedger()
		var final int64
		for _, a := range addrs {
			final += s.GetAccount(a).Balance
		}
		return final+s.BurnedFees == initial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIOUConservationProperty: the issuer's total outstanding IOUs equal the
// sum of all holder balances after arbitrary payment attempts.
func TestIOUConservationProperty(t *testing.T) {
	f := func(moves []uint16) bool {
		s := New(DefaultConfig(1000))
		gw := NewAddress("gw")
		holders := []Address{NewAddress("h1"), NewAddress("h2"), NewAddress("h3")}
		s.Fund(gw, 10_000*DropsPerXRP)
		issued := int64(0)
		for _, h := range holders {
			s.Fund(h, 10_000*DropsPerXRP)
			s.Submit(Transaction{Type: TxTrustSet, Account: h, LimitAmount: IOU("EUR", gw, 1_000_000)})
		}
		s.CloseLedger()
		for i, h := range holders {
			amt := int64(100 * (i + 1))
			s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: h, Amount: IOU("EUR", gw, amt)})
			issued += amt * DropsPerXRP
		}
		s.CloseLedger()
		for _, m := range moves {
			from := holders[int(m)%3]
			to := holders[int(m>>2)%3]
			if from == to {
				continue
			}
			s.Submit(Transaction{
				Type: TxPayment, Account: from, Destination: to,
				Amount: IOURaw("EUR", gw, int64(m)*10_000),
			})
		}
		// Some payments redeem with the issuer, reducing supply.
		s.Submit(Transaction{Type: TxPayment, Account: holders[0], Destination: gw, Amount: IOU("EUR", gw, 1)})
		led := s.CloseLedger()
		redeemed := int64(0)
		for _, tx := range led.Transactions {
			if tx.Destination == gw && tx.Result.Success() && !tx.Amount.IsNative() {
				redeemed += tx.Amount.Value
			}
		}
		var held int64
		for _, h := range holders {
			held += s.IOUBalance(h, gw, "EUR")
		}
		return held == issued-redeemed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
