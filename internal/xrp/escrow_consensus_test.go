package xrp

import (
	"testing"

	"repro/internal/chain"
)

func TestEscrowLifecycle(t *testing.T) {
	s, a := fixture(t, "ripple", "market")
	cfg := DefaultConfig(1000)
	finish := s.Now().Add(2 * cfg.CloseInterval)

	led := submitAndClose(s, Transaction{
		Type: TxEscrowCreate, Account: a["ripple"], Destination: a["market"],
		Amount: XRP(1000), FinishAfter: finish,
	})
	tx := led.Transactions[0]
	if !tx.Result.Success() {
		t.Fatalf("escrow create: %s", tx.Result)
	}
	if got := s.GetAccount(a["ripple"]).Balance; got != 9000*DropsPerXRP-10 {
		t.Fatalf("funds not locked: %d", got)
	}
	// Finishing too early is refused.
	led = submitAndClose(s, Transaction{
		Type: TxEscrowFinish, Account: a["market"], Owner: a["ripple"], OfferSequence: tx.Sequence,
	})
	if code := led.Transactions[0].Result; code != TecNO_PERMISSION {
		t.Fatalf("early finish: %s", code)
	}
	s.CloseLedger() // time passes
	led = submitAndClose(s, Transaction{
		Type: TxEscrowFinish, Account: a["market"], Owner: a["ripple"], OfferSequence: tx.Sequence,
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("finish: %s", code)
	}
	if got := s.GetAccount(a["market"]).Balance; got != 11_000*DropsPerXRP-2*10 {
		t.Fatalf("market balance = %d", got)
	}
	// The entry is gone.
	if s.EscrowEntry(a["ripple"], tx.Sequence) != nil {
		t.Fatal("escrow entry persisted")
	}
}

func TestEscrowCancelReturnsFunds(t *testing.T) {
	s, a := fixture(t, "ripple", "market")
	cfg := DefaultConfig(1000)
	cancel := s.Now().Add(1 * cfg.CloseInterval)
	led := submitAndClose(s, Transaction{
		Type: TxEscrowCreate, Account: a["ripple"], Destination: a["market"],
		Amount: XRP(500), CancelAfter: cancel,
	})
	seq := led.Transactions[0].Sequence
	s.CloseLedger()
	led = submitAndClose(s, Transaction{
		Type: TxEscrowCancel, Account: a["ripple"], Owner: a["ripple"], OfferSequence: seq,
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("cancel: %s", code)
	}
	if got := s.GetAccount(a["ripple"]).Balance; got != 10_000*DropsPerXRP-2*10 {
		t.Fatalf("funds not returned: %d", got)
	}
}

func TestEscrowUnfunded(t *testing.T) {
	s, a := fixture(t, "poor")
	led := submitAndClose(s, Transaction{
		Type: TxEscrowCreate, Account: a["poor"], Destination: NewAddress("x"),
		Amount: XRP(50_000),
	})
	if code := led.Transactions[0].Result; code != TecUNFUNDED_PAYMENT {
		t.Fatalf("overdrawn escrow: %s", code)
	}
}

// --- consensus ---

func validators(n int, unlSize int, offsetPer int) []*Validator {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = string(rune('A' + i))
	}
	vs := make([]*Validator, n)
	for i := range vs {
		unl := make([]string, 0, unlSize)
		for j := 0; j < unlSize; j++ {
			unl = append(unl, ids[(i*offsetPer+j)%n])
		}
		vs[i] = &Validator{ID: ids[i], UNL: unl}
	}
	return vs
}

func TestUNLOverlapIdenticalIsSafe(t *testing.T) {
	// Everyone uses the same UNL: overlap 100%, safe.
	net := NewConsensusNetwork(validators(10, 10, 0)...)
	if got := net.MinPairwiseOverlap(); got != 1.0 {
		t.Fatalf("overlap = %f", got)
	}
	if !net.SafeAgainstForks() {
		t.Fatal("identical UNLs flagged unsafe")
	}
}

func TestUNLOverlapDisjointIsUnsafe(t *testing.T) {
	a := &Validator{ID: "A", UNL: []string{"A", "B"}}
	b := &Validator{ID: "B", UNL: []string{"C", "D"}}
	net := NewConsensusNetwork(a, b)
	if net.SafeAgainstForks() {
		t.Fatal("disjoint UNLs flagged safe")
	}
}

func TestConsensusConvergesWithSharedUNL(t *testing.T) {
	vs := validators(10, 10, 0)
	net := NewConsensusNetwork(vs...)
	proposals := make(map[string]chain.Hash)
	// 9 of 10 propose set X, one proposes Y: must converge on X.
	x := chain.HashBytes([]byte("set-x"))
	y := chain.HashBytes([]byte("set-y"))
	for i, v := range vs {
		if i == 0 {
			proposals[v.ID] = y
		} else {
			proposals[v.ID] = x
		}
	}
	res, err := net.RunRound(proposals)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Value != x {
		t.Fatalf("consensus: %+v", res)
	}
}

func TestConsensusForksWithLowOverlap(t *testing.T) {
	// Two cliques that don't listen to each other stay split.
	a1 := &Validator{ID: "A", UNL: []string{"A", "B"}}
	a2 := &Validator{ID: "B", UNL: []string{"A", "B"}}
	b1 := &Validator{ID: "C", UNL: []string{"C", "D"}}
	b2 := &Validator{ID: "D", UNL: []string{"C", "D"}}
	net := NewConsensusNetwork(a1, a2, b1, b2)
	x := chain.HashBytes([]byte("x"))
	y := chain.HashBytes([]byte("y"))
	res, err := net.RunRound(map[string]chain.Hash{"A": x, "B": x, "C": y, "D": y})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("disjoint cliques converged")
	}
}

func TestRunRoundValidation(t *testing.T) {
	net := NewConsensusNetwork(&Validator{ID: "A", UNL: []string{"A"}})
	if _, err := net.RunRound(nil); err == nil {
		t.Fatal("empty proposals accepted")
	}
	if _, err := net.RunRound(map[string]chain.Hash{"Z": {}}); err == nil {
		t.Fatal("missing validator proposal accepted")
	}
}
