package xrp

import "time"

// Escrow is a time-locked XRP hold. Ripple's treasury locks one billion XRP
// per month this way and re-escrows what it does not use — the mechanics
// behind the "Ripple 10 % of XRP volume" slice of the paper's Figure 12.
type Escrow struct {
	Owner       Address
	Sequence    uint32 // sequence of the creating transaction
	Destination Address
	Amount      int64 // drops
	FinishAfter time.Time
	CancelAfter time.Time
}

type escrowKey struct {
	Owner    Address
	Sequence uint32
}

// EscrowEntry returns a pending escrow, or nil.
func (s *State) EscrowEntry(owner Address, seq uint32) *Escrow {
	return s.escrows[escrowKey{owner, seq}]
}

func (s *State) applyEscrowCreate(tx *Transaction, acct *Account) ResultCode {
	if !tx.Amount.IsNative() || tx.Amount.Value <= 0 {
		return TemBAD_AMOUNT
	}
	if tx.Destination == "" {
		return TemBAD_ACCOUNT
	}
	if s.Spendable(acct) < tx.Amount.Value {
		return TecUNFUNDED_PAYMENT
	}
	acct.Balance -= tx.Amount.Value
	acct.OwnerCount++
	s.escrows[escrowKey{tx.Account, tx.Sequence}] = &Escrow{
		Owner:       tx.Account,
		Sequence:    tx.Sequence,
		Destination: tx.Destination,
		Amount:      tx.Amount.Value,
		FinishAfter: tx.FinishAfter,
		CancelAfter: tx.CancelAfter,
	}
	return TesSUCCESS
}

func (s *State) applyEscrowFinish(tx *Transaction, now time.Time) ResultCode {
	k := escrowKey{tx.Owner, tx.OfferSequence}
	e := s.escrows[k]
	if e == nil {
		return TecNO_ENTRY
	}
	if !e.FinishAfter.IsZero() && now.Before(e.FinishAfter) {
		return TecNO_PERMISSION
	}
	dest := s.accounts[e.Destination]
	if dest == nil {
		// Escrowed funds activate the destination if needed.
		dest = &Account{Address: e.Destination, Parent: e.Owner, Activated: now}
		s.accounts[e.Destination] = dest
	}
	dest.Balance += e.Amount
	s.decOwner(e.Owner)
	delete(s.escrows, k)
	return TesSUCCESS
}

func (s *State) applyEscrowCancel(tx *Transaction, now time.Time) ResultCode {
	k := escrowKey{tx.Owner, tx.OfferSequence}
	e := s.escrows[k]
	if e == nil {
		return TecNO_ENTRY
	}
	if e.CancelAfter.IsZero() || now.Before(e.CancelAfter) {
		return TecNO_PERMISSION
	}
	if owner := s.accounts[e.Owner]; owner != nil {
		owner.Balance += e.Amount
	}
	s.decOwner(e.Owner)
	delete(s.escrows, k)
	return TesSUCCESS
}
