package xrp

import (
	"fmt"
	"testing"

	"repro/internal/chain"
)

// benchState funds two accounts and a gateway outside the timer.
func benchState(b *testing.B) (*State, Address, Address, Address) {
	b.Helper()
	s := New(DefaultConfig(1000))
	a1, a2, gw := NewAddress("b1"), NewAddress("b2"), NewAddress("bgw")
	for _, a := range []Address{a1, a2, gw} {
		s.Fund(a, 1<<40)
	}
	return s, a1, a2, gw
}

// BenchmarkXRPPaymentLedger measures ledger close with 75 payments — the
// dataset's average per-ledger transaction count.
func BenchmarkXRPPaymentLedger(b *testing.B) {
	s, a1, a2, _ := benchState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 75; j++ {
			from, to := a1, a2
			if j%2 == 1 {
				from, to = to, from
			}
			s.Submit(Transaction{Type: TxPayment, Account: from, Destination: to, Amount: Drops(1000)})
		}
		led := s.CloseLedger()
		if len(led.Transactions) != 75 {
			b.Fatalf("ledger carried %d txs", len(led.Transactions))
		}
	}
}

// BenchmarkIOUPayment measures the trust-line rippling path.
func BenchmarkIOUPayment(b *testing.B) {
	s, a1, a2, gw := benchState(b)
	s.Submit(Transaction{Type: TxTrustSet, Account: a1, LimitAmount: IOU("USD", gw, 1<<30)})
	s.Submit(Transaction{Type: TxTrustSet, Account: a2, LimitAmount: IOU("USD", gw, 1<<30)})
	s.CloseLedger()
	s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: a1, Amount: IOU("USD", gw, 1<<20)})
	s.CloseLedger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := a1, a2
		if i%2 == 1 {
			from, to = to, from
		}
		s.Submit(Transaction{Type: TxPayment, Account: from, Destination: to, Amount: IOURaw("USD", gw, 1000)})
		if i%50 == 49 {
			s.CloseLedger()
		}
	}
	s.CloseLedger()
}

// BenchmarkOfferCrossing measures a full maker/taker cross per iteration.
// Funding is sized so even multi-million-iteration runs never drain either
// side (the maker sells tiny 1-USD clips against a deep XRP balance).
func BenchmarkOfferCrossing(b *testing.B) {
	s, maker, taker, gw := benchState(b)
	s.Fund(maker, 1<<55)
	s.Fund(taker, 1<<55)
	s.Submit(Transaction{Type: TxTrustSet, Account: maker, LimitAmount: IOURaw("USD", gw, 1<<60)})
	s.Submit(Transaction{Type: TxTrustSet, Account: taker, LimitAmount: IOURaw("USD", gw, 1<<60)})
	s.CloseLedger()
	s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: maker, Amount: IOURaw("USD", gw, 1<<58)})
	s.CloseLedger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(Transaction{Type: TxOfferCreate, Account: maker,
			TakerGets: IOU("USD", gw, 1), TakerPays: XRP(4)})
		s.Submit(Transaction{Type: TxOfferCreate, Account: taker,
			TakerGets: XRP(5), TakerPays: IOU("USD", gw, 1)})
		if i%20 == 19 {
			led := s.CloseLedger()
			for _, tx := range led.Transactions {
				if !tx.Result.Success() {
					b.Fatalf("cross failed: %s", tx.Result)
				}
			}
		}
	}
	s.CloseLedger()
}

// BenchmarkBookInsert measures resting-offer insertion into a deep book —
// the Huobi spam pattern that accumulated tens of thousands of offers.
func BenchmarkBookInsert(b *testing.B) {
	s, maker, _, gw := benchState(b)
	s.Submit(Transaction{Type: TxTrustSet, Account: maker, LimitAmount: IOU("CNY", gw, 1<<40)})
	s.CloseLedger()
	s.Submit(Transaction{Type: TxPayment, Account: gw, Destination: maker, Amount: IOURaw("CNY", gw, 1<<50)})
	s.CloseLedger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(Transaction{Type: TxOfferCreate, Account: maker,
			TakerGets: IOURaw("CNY", gw, int64(i%997)+1),
			TakerPays: XRP(int64(i%89_000) + 1_000)}) // off-market asks
		if i%100 == 99 {
			s.CloseLedger()
		}
	}
	s.CloseLedger()
}

// BenchmarkConsensusRound measures one UNL agreement round with 20
// validators sharing a UNL.
func BenchmarkConsensusRound(b *testing.B) {
	vs := make([]*Validator, 20)
	ids := make([]string, 20)
	for i := range vs {
		ids[i] = fmt.Sprintf("v%02d", i)
	}
	for i := range vs {
		vs[i] = &Validator{ID: ids[i], UNL: ids}
	}
	net := NewConsensusNetwork(vs...)
	minority := chain.HashBytes([]byte("minority"))
	majority := chain.HashBytes([]byte("majority"))
	proposals := make(map[string]chain.Hash, len(ids))
	for j, id := range ids {
		if j == 0 {
			proposals[id] = minority
		} else {
			proposals[id] = majority
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := net.RunRound(proposals)
		if err != nil || !res.Converged {
			b.Fatalf("round: %+v %v", res, err)
		}
	}
}
