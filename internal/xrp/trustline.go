package xrp

import "sort"

// TrustLine records that holder trusts issuer for up to Limit of Currency,
// and how much of the issuer's IOU the holder currently has. The paper's
// §2.4 explains the IOU mechanism: paying "10 BTC" on the XRP ledger merely
// moves an I-owe-you whose worth depends entirely on the issuer.
type TrustLine struct {
	Holder   Address
	Issuer   Address
	Currency string
	Balance  int64 // 6-decimal fixed point IOU the holder possesses
	Limit    int64 // maximum Balance the holder accepts
}

type lineKey struct {
	Holder   Address
	Issuer   Address
	Currency string
}

// line returns the trust line, or nil.
func (s *State) line(holder, issuer Address, currency string) *TrustLine {
	return s.lines[lineKey{holder, issuer, currency}]
}

// Line exposes trust-line lookup for analysis and tests.
func (s *State) Line(holder, issuer Address, currency string) *TrustLine {
	return s.line(holder, issuer, currency)
}

// IOUBalance returns how much of issuer's currency the holder has.
func (s *State) IOUBalance(holder, issuer Address, currency string) int64 {
	if l := s.line(holder, issuer, currency); l != nil {
		return l.Balance
	}
	return 0
}

// LinesOf returns every trust line held by holder, sorted for stable API
// output (issuer, then currency).
func (s *State) LinesOf(holder Address) []*TrustLine {
	var out []*TrustLine
	for k, l := range s.lines {
		if k.Holder == holder {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Issuer != out[j].Issuer {
			return out[i].Issuer < out[j].Issuer
		}
		return out[i].Currency < out[j].Currency
	})
	return out
}

// applyTrustSet creates or updates a trust line from the sender to the
// issuer named in LimitAmount.
func (s *State) applyTrustSet(tx *Transaction, acct *Account) ResultCode {
	la := tx.LimitAmount
	if la.Issuer == "" || la.Currency == XRPCurrency || la.Value < 0 {
		return TemBAD_AMOUNT
	}
	if la.Issuer == tx.Account {
		return TemBAD_ACCOUNT // cannot trust yourself
	}
	k := lineKey{tx.Account, la.Issuer, la.Currency}
	l := s.lines[k]
	if l == nil {
		// A new ledger object costs one owner reserve.
		if s.Spendable(acct) < 0 { // Spendable already clamps; check raw
			return TecUNFUNDED_PAYMENT
		}
		if acct.Balance < s.reserve(acct)+s.cfg.OwnerReserve {
			return TecUNFUNDED_PAYMENT
		}
		l = &TrustLine{Holder: tx.Account, Issuer: la.Issuer, Currency: la.Currency}
		s.lines[k] = l
		acct.OwnerCount++
	}
	l.Limit = la.Value
	return TesSUCCESS
}

// creditIOU gives holder amount of issuer's currency, respecting the trust
// limit. The issuer itself needs no line.
func (s *State) creditIOU(holder Address, a Amount) ResultCode {
	if holder == a.Issuer {
		return TesSUCCESS // IOU returning to its issuer disappears
	}
	l := s.line(holder, a.Issuer, a.Currency)
	if l == nil {
		return TecNO_LINE
	}
	if l.Balance+a.Value > l.Limit {
		return TecPATH_DRY
	}
	l.Balance += a.Value
	return TesSUCCESS
}

// debitIOU takes amount of issuer's currency from holder. Issuers create
// value out of thin air (that is the IOU model); everyone else needs
// sufficient line balance.
func (s *State) debitIOU(holder Address, a Amount) ResultCode {
	if holder == a.Issuer {
		return TesSUCCESS
	}
	l := s.line(holder, a.Issuer, a.Currency)
	if l == nil {
		return TecNO_LINE
	}
	if l.Balance < a.Value {
		return TecPATH_DRY
	}
	l.Balance -= a.Value
	return TesSUCCESS
}

// canDebitIOU reports whether debitIOU would succeed without mutating.
func (s *State) canDebitIOU(holder Address, a Amount) bool {
	if holder == a.Issuer {
		return true
	}
	l := s.line(holder, a.Issuer, a.Currency)
	return l != nil && l.Balance >= a.Value
}

// moveIOU transfers an IOU from one holder to another through its issuer:
// issue (from == issuer), redeem (to == issuer), or ripple (both hold
// lines). Any missing liquidity surfaces as PATH_DRY — the most common
// Payment failure in the dataset.
func (s *State) moveIOU(from, to Address, a Amount) ResultCode {
	// Validate the debit side first without mutating.
	if !s.canDebitIOU(from, a) {
		if s.line(from, a.Issuer, a.Currency) == nil && from != a.Issuer {
			return TecPATH_DRY
		}
		return TecPATH_DRY
	}
	// Validate the credit side.
	if to != a.Issuer {
		l := s.line(to, a.Issuer, a.Currency)
		if l == nil {
			return TecPATH_DRY
		}
		if l.Balance+a.Value > l.Limit {
			return TecPATH_DRY
		}
	}
	if code := s.debitIOU(from, a); !code.Success() {
		return code
	}
	return s.creditIOU(to, a)
}
