package xrp

import (
	"fmt"

	"repro/internal/chain"
)

// Address is an XRP Ledger classic address (r…). The paper's clustering
// leans on account metadata (usernames, parent accounts) layered on top of
// these addresses by the explorer.
type Address string

// NewAddress derives a deterministic address from a seed label, standing in
// for a real keypair-derived account ID.
func NewAddress(label string) Address {
	h := chain.HashOf("xrp-addr", label)
	return Address(chain.XRPBase58Check(h[:20]))
}

// Validate checks the base58check structure.
func (a Address) Validate() error {
	if len(a) == 0 || a[0] != 'r' {
		return fmt.Errorf("xrp: address %q must start with r", a)
	}
	_, err := chain.DecodeXRPBase58Check(string(a))
	return err
}

// SpecialAddresses are the handful of addresses not derived from key pairs;
// funds sent there are permanently lost (paper §2.3.3).
var SpecialAddresses = map[Address]string{
	"rrrrrrrrrrrrrrrrrrrrrhoLvTp": "ACCOUNT_ZERO",
	"rrrrrrrrrrrrrrrrrrrrBZbvji":  "ACCOUNT_ONE",
	"rrrrrrrrrrrrrrrrrNAMEtxvNvQ": "Ripple Name reservation",
	"rrrrrrrrrrrrrrrrrrrn5RM1rHd": "NaN address",
}

// XRPCurrency is the native currency code.
const XRPCurrency = "XRP"

// DropsPerXRP scales XRP display units to drops; IOU amounts reuse the same
// 6-decimal fixed point for uniform arithmetic.
const DropsPerXRP = 1_000_000

// Amount is an XRP Ledger amount: either native XRP (Issuer empty) in drops,
// or an issuer-specific IOU in 6-decimal fixed point. The issuer dependence
// is the crux of §4.3: a "BTC" from Bitstamp and a "BTC" from a random
// account are entirely different assets with wildly different XRP rates.
type Amount struct {
	Currency string  `json:"currency"`
	Issuer   Address `json:"issuer,omitempty"`
	Value    int64   `json:"value"` // 6-decimal fixed point (drops for XRP)
}

// XRP returns a native amount from whole-XRP units.
func XRP(units int64) Amount {
	return Amount{Currency: XRPCurrency, Value: units * DropsPerXRP}
}

// Drops returns a native amount from raw drops.
func Drops(d int64) Amount { return Amount{Currency: XRPCurrency, Value: d} }

// IOU returns an issuer-specific amount from whole units.
func IOU(currency string, issuer Address, units int64) Amount {
	return Amount{Currency: currency, Issuer: issuer, Value: units * DropsPerXRP}
}

// IOURaw returns an issuer-specific amount from 6-decimal fixed point.
func IOURaw(currency string, issuer Address, raw int64) Amount {
	return Amount{Currency: currency, Issuer: issuer, Value: raw}
}

// IsNative reports whether the amount is XRP.
func (a Amount) IsNative() bool { return a.Currency == XRPCurrency && a.Issuer == "" }

// IsZero reports whether the value is zero.
func (a Amount) IsZero() bool { return a.Value == 0 }

// SameAsset reports whether two amounts denominate the same asset
// (currency and issuer both match).
func (a Amount) SameAsset(b Amount) bool {
	return a.Currency == b.Currency && a.Issuer == b.Issuer
}

// Units returns the amount in display units.
func (a Amount) Units() float64 { return float64(a.Value) / DropsPerXRP }

// WithValue returns a copy carrying the given raw value.
func (a Amount) WithValue(v int64) Amount { a.Value = v; return a }

// Add returns a+b; the assets must match.
func (a Amount) Add(b Amount) Amount {
	a.mustMatch(b)
	a.Value += b.Value
	return a
}

// Sub returns a-b; the assets must match.
func (a Amount) Sub(b Amount) Amount {
	a.mustMatch(b)
	a.Value -= b.Value
	return a
}

func (a Amount) mustMatch(b Amount) {
	if !a.SameAsset(b) {
		panic(fmt.Sprintf("xrp: mixing assets %s and %s", a, b))
	}
}

// String renders "12.500000 USD/rIssuer…" or "3.000000 XRP".
func (a Amount) String() string {
	whole := a.Value / DropsPerXRP
	frac := a.Value % DropsPerXRP
	if frac < 0 {
		frac = -frac
	}
	s := fmt.Sprintf("%d.%06d %s", whole, frac, a.Currency)
	if a.Issuer != "" {
		short := string(a.Issuer)
		if len(short) > 9 {
			short = short[:9] + "…"
		}
		s += "/" + short
	}
	return s
}

// AssetKey identifies an asset (currency+issuer) for map keys.
type AssetKey struct {
	Currency string
	Issuer   Address
}

// Key returns the amount's asset key.
func (a Amount) Key() AssetKey { return AssetKey{Currency: a.Currency, Issuer: a.Issuer} }

// String renders "USD.rIssuer" or "XRP".
func (k AssetKey) String() string {
	if k.Issuer == "" {
		return k.Currency
	}
	return k.Currency + "." + string(k.Issuer)
}
