// Package xrp simulates the XRP Ledger at the fidelity the paper's
// measurements require: XRP and issuer-specific IOU amounts, trust lines,
// the on-ledger decentralized exchange with offer crossing, escrows,
// payments with failure codes (PATH_DRY, tecUNFUNDED_OFFER, …), account
// activation with parent tracking (the basis for the paper's clustering),
// and a UNL-based consensus round.
package xrp

import (
	"time"

	"repro/internal/chain"
)

// TxType enumerates the predefined transaction types the paper tabulates in
// Figure 1 for XRP.
type TxType string

// The transaction types observed in the dataset.
const (
	TxPayment              TxType = "Payment"
	TxOfferCreate          TxType = "OfferCreate"
	TxOfferCancel          TxType = "OfferCancel"
	TxTrustSet             TxType = "TrustSet"
	TxAccountSet           TxType = "AccountSet"
	TxSignerListSet        TxType = "SignerListSet"
	TxSetRegularKey        TxType = "SetRegularKey"
	TxEscrowCreate         TxType = "EscrowCreate"
	TxEscrowFinish         TxType = "EscrowFinish"
	TxEscrowCancel         TxType = "EscrowCancel"
	TxPaymentChannelCreate TxType = "PaymentChannelCreate"
	TxPaymentChannelClaim  TxType = "PaymentChannelClaim"
	TxEnableAmendment      TxType = "EnableAmendment"
)

// ResultCode is the engine result recorded with every transaction. Unlike
// EOS, the XRP ledger records failed transactions on-chain: their only
// effect is the fee deduction, which is why the paper can measure the 10.7 %
// failure share directly.
type ResultCode string

// Result codes used by the simulator (a subset of rippled's).
const (
	TesSUCCESS          ResultCode = "tesSUCCESS"
	TecPATH_DRY         ResultCode = "tecPATH_DRY"
	TecUNFUNDED_OFFER   ResultCode = "tecUNFUNDED_OFFER"
	TecUNFUNDED_PAYMENT ResultCode = "tecUNFUNDED_PAYMENT"
	TecNO_DST           ResultCode = "tecNO_DST"
	TecNO_LINE          ResultCode = "tecNO_LINE"
	TecNO_ENTRY         ResultCode = "tecNO_ENTRY"
	TecDST_TAG_NEEDED   ResultCode = "tecDST_TAG_NEEDED"
	TecNO_PERMISSION    ResultCode = "tecNO_PERMISSION"
	TecEXPIRED          ResultCode = "tecEXPIRED"
	TemBAD_AMOUNT       ResultCode = "temBAD_AMOUNT"
	TemBAD_ACCOUNT      ResultCode = "temBAD_ACCOUNT"
	TerNO_ACCOUNT       ResultCode = "terNO_ACCOUNT"
)

// Success reports whether the code is tesSUCCESS.
func (r ResultCode) Success() bool { return r == TesSUCCESS }

// Included reports whether a transaction with this code lands in the ledger
// (tes and tec classes do; tem/ter malformed ones do not).
func (r ResultCode) Included() bool {
	return r.Success() || (len(r) > 3 && r[:3] == "tec")
}

// Transaction is one XRP Ledger transaction. Fields are a union across
// types; unused fields stay zero.
type Transaction struct {
	ID       chain.Hash `json:"hash"`
	Type     TxType     `json:"TransactionType"`
	Account  Address    `json:"Account"`
	Fee      int64      `json:"Fee"` // drops
	Sequence uint32     `json:"Sequence"`

	// Payment fields.
	Destination    Address `json:"Destination,omitempty"`
	DestinationTag uint32  `json:"DestinationTag,omitempty"`
	Amount         Amount  `json:"Amount,omitempty"`
	// SendMax, when set to a different asset than Amount, requests a
	// cross-currency payment bridged through the DEX: the sender spends up
	// to SendMax of one asset so the destination receives Amount of
	// another. Insufficient book liquidity fails with tecPATH_DRY.
	SendMax *Amount `json:"SendMax,omitempty"`
	// DeliveredAmount is what actually arrived (set on success).
	DeliveredAmount Amount `json:"delivered_amount,omitempty"`

	// Offer fields.
	TakerGets     Amount    `json:"TakerGets,omitempty"`
	TakerPays     Amount    `json:"TakerPays,omitempty"`
	OfferSequence uint32    `json:"OfferSequence,omitempty"`
	Expiration    time.Time `json:"Expiration,omitempty"`

	// TrustSet field.
	LimitAmount Amount `json:"LimitAmount,omitempty"`

	// Escrow fields.
	FinishAfter time.Time `json:"FinishAfter,omitempty"`
	CancelAfter time.Time `json:"CancelAfter,omitempty"`
	Owner       Address   `json:"Owner,omitempty"`

	// Result is assigned when the transaction is applied.
	Result ResultCode `json:"meta_TransactionResult"`
	// Executed is set on OfferCreate results when any amount crossed at
	// placement time; fills that happen later (as maker) are visible
	// through the exchange records instead.
	Executed bool `json:"-"`
	// RestingSequence is the sequence under which the residual offer rests
	// on the book (0 when fully consumed or never rested).
	RestingSequence uint32 `json:"-"`
}

// Ledger is one closed XRP ledger version.
type Ledger struct {
	Index        int64         `json:"ledger_index"`
	Hash         chain.Hash    `json:"ledger_hash"`
	ParentHash   chain.Hash    `json:"parent_hash"`
	CloseTime    time.Time     `json:"close_time"`
	Transactions []Transaction `json:"transactions"`
}
