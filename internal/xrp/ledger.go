package xrp

import (
	"time"

	"repro/internal/chain"
)

// Config parameterizes the simulated XRP Ledger. TimeScale dilates the
// ~3.9-second close interval like the other chain simulators.
type Config struct {
	Seed          int64
	Start         time.Time
	CloseInterval time.Duration
	// BaseFee is the reference transaction cost in drops.
	BaseFee int64
	// BaseReserve and OwnerReserve are the account reserves in drops
	// (20 XRP and 5 XRP at the paper's observation time).
	BaseReserve  int64
	OwnerReserve int64
}

// DefaultConfig returns main-net-shaped parameters at the given time scale.
func DefaultConfig(timeScale int64) Config {
	if timeScale < 1 {
		timeScale = 1
	}
	return Config{
		Seed:          3,
		Start:         chain.ObservationStart,
		CloseInterval: time.Duration(timeScale) * 3900 * time.Millisecond,
		BaseFee:       10,
		BaseReserve:   20 * DropsPerXRP,
		OwnerReserve:  5 * DropsPerXRP,
	}
}

// Account is one ledger account entry.
type Account struct {
	Address   Address
	Balance   int64 // drops
	Sequence  uint32
	Parent    Address // account whose payment activated this one
	Activated time.Time
	// OwnerCount tracks reserve-charging objects (trust lines, offers,
	// escrows).
	OwnerCount int
	// RequireDestTag mirrors the asfRequireDest flag large exchanges set.
	RequireDestTag bool
	RegularKey     Address
	SignerQuorum   int
}

// State is the mutable XRP Ledger, accumulating closed ledger versions.
type State struct {
	cfg      Config
	clock    *chain.Clock
	accounts map[Address]*Account
	lines    map[lineKey]*TrustLine
	books    map[AssetPair]*orderBook
	escrows  map[escrowKey]*Escrow
	ledgers  []*Ledger
	pending  []*Transaction

	exchanges []Exchange

	// BurnedFees accumulates destroyed fee drops.
	BurnedFees int64
	// NotIncluded counts malformed transactions that never reached a ledger.
	NotIncluded int64
}

// New creates an empty ledger chain; Genesis accounts are created with Fund.
func New(cfg Config) *State {
	if cfg.CloseInterval <= 0 {
		cfg.CloseInterval = 3900 * time.Millisecond
	}
	if cfg.Start.IsZero() {
		cfg.Start = chain.ObservationStart
	}
	if cfg.BaseFee <= 0 {
		cfg.BaseFee = 10
	}
	if cfg.BaseReserve <= 0 {
		cfg.BaseReserve = 20 * DropsPerXRP
	}
	if cfg.OwnerReserve <= 0 {
		cfg.OwnerReserve = 5 * DropsPerXRP
	}
	return &State{
		cfg:      cfg,
		clock:    chain.NewClock(cfg.Start, cfg.CloseInterval),
		accounts: make(map[Address]*Account),
		lines:    make(map[lineKey]*TrustLine),
		books:    make(map[AssetPair]*orderBook),
		escrows:  make(map[escrowKey]*Escrow),
	}
}

// Fund creates (or tops up) an account with drops outside the transaction
// flow — the simulator's stand-in for pre-window history.
func (s *State) Fund(addr Address, drops int64) *Account {
	a := s.accounts[addr]
	if a == nil {
		a = &Account{Address: addr, Activated: s.clock.Now()}
		s.accounts[addr] = a
	}
	a.Balance += drops
	return a
}

// GetAccount returns the account entry, or nil.
func (s *State) GetAccount(addr Address) *Account { return s.accounts[addr] }

// Now returns the simulated time.
func (s *State) Now() time.Time { return s.clock.Now() }

// HeadIndex returns the latest closed ledger index (0 when none).
func (s *State) HeadIndex() int64 { return int64(len(s.ledgers)) }

// GetLedger returns ledger index i (1-based), or nil.
func (s *State) GetLedger(i int64) *Ledger {
	if i < 1 || i > int64(len(s.ledgers)) {
		return nil
	}
	return s.ledgers[i-1]
}

// Exchanges returns every DEX trade executed so far; the explorer's
// exchange-rates API and the paper's Figure 11 derive from these.
func (s *State) Exchanges() []Exchange { return s.exchanges }

// reserve returns the drops an account cannot spend.
func (s *State) reserve(a *Account) int64 {
	return s.cfg.BaseReserve + int64(a.OwnerCount)*s.cfg.OwnerReserve
}

// Spendable returns the drops available above the reserve.
func (s *State) Spendable(a *Account) int64 {
	sp := a.Balance - s.reserve(a)
	if sp < 0 {
		return 0
	}
	return sp
}

// Submit queues a transaction for the next ledger close. Fee and sequence
// defaults are filled in from the account when zero.
func (s *State) Submit(tx Transaction) {
	s.pending = append(s.pending, &tx)
}

// PendingCount returns the queue length.
func (s *State) PendingCount() int { return len(s.pending) }

// CloseLedger applies every pending transaction, closes a ledger version and
// advances the clock. Transactions with tec-class failures are recorded in
// the ledger (fee burned, nothing else) exactly as on main net.
func (s *State) CloseLedger() *Ledger {
	index := int64(len(s.ledgers) + 1)
	now := s.clock.Now()
	led := &Ledger{Index: index, CloseTime: now}
	if len(s.ledgers) > 0 {
		led.ParentHash = s.ledgers[len(s.ledgers)-1].Hash
	}
	for _, tx := range s.pending {
		code := s.apply(tx, now)
		tx.Result = code
		if !code.Included() {
			s.NotIncluded++
			continue
		}
		tx.ID = chain.HashOf("xrp-tx", uint64(index), len(led.Transactions),
			string(tx.Account), string(tx.Type), uint64(tx.Sequence))
		led.Transactions = append(led.Transactions, *tx)
	}
	s.pending = s.pending[:0]
	led.Hash = chain.HashOf("xrp-ledger", uint64(index), now.UnixNano(), len(led.Transactions))
	s.ledgers = append(s.ledgers, led)
	s.clock.Tick()
	return led
}

// apply executes one transaction and returns its engine result.
func (s *State) apply(tx *Transaction, now time.Time) ResultCode {
	acct := s.accounts[tx.Account]
	if acct == nil {
		return TerNO_ACCOUNT
	}
	if tx.Fee <= 0 {
		tx.Fee = s.cfg.BaseFee
	}
	// The fee is burned no matter what happens next.
	fee := tx.Fee
	if fee > acct.Balance {
		fee = acct.Balance
	}
	acct.Balance -= fee
	s.BurnedFees += fee
	acct.Sequence++
	if tx.Sequence == 0 {
		tx.Sequence = acct.Sequence
	}

	switch tx.Type {
	case TxPayment:
		return s.applyPayment(tx, acct, now)
	case TxOfferCreate:
		return s.applyOfferCreate(tx, acct, now)
	case TxOfferCancel:
		return s.applyOfferCancel(tx, acct)
	case TxTrustSet:
		return s.applyTrustSet(tx, acct)
	case TxAccountSet:
		// Only the RequireDest flag matters to the simulation; encode it
		// through the DestinationTag field (1 = set, 2 = clear).
		switch tx.DestinationTag {
		case 1:
			acct.RequireDestTag = true
		case 2:
			acct.RequireDestTag = false
		}
		return TesSUCCESS
	case TxSetRegularKey:
		acct.RegularKey = tx.Destination
		return TesSUCCESS
	case TxSignerListSet:
		acct.SignerQuorum = int(tx.DestinationTag)
		return TesSUCCESS
	case TxEscrowCreate:
		return s.applyEscrowCreate(tx, acct)
	case TxEscrowFinish:
		return s.applyEscrowFinish(tx, now)
	case TxEscrowCancel:
		return s.applyEscrowCancel(tx, now)
	case TxPaymentChannelCreate, TxPaymentChannelClaim:
		// Channels appear a handful of times in the dataset; accept them
		// without modelling channel state.
		return TesSUCCESS
	case TxEnableAmendment:
		return TesSUCCESS
	default:
		return TemBAD_AMOUNT
	}
}

// applyPayment handles XRP and IOU payments, including account activation
// and DEX-bridged cross-currency delivery.
func (s *State) applyPayment(tx *Transaction, sender *Account, now time.Time) ResultCode {
	if tx.Amount.Value <= 0 {
		return TemBAD_AMOUNT
	}
	if tx.Destination == "" || tx.Destination == tx.Account {
		return TemBAD_ACCOUNT
	}
	if tx.SendMax != nil && !tx.SendMax.SameAsset(tx.Amount) {
		return s.applyCrossCurrencyPayment(tx, now)
	}
	dest := s.accounts[tx.Destination]

	if tx.Amount.IsNative() {
		if dest == nil {
			// Activating payment: must fund at least the base reserve.
			if tx.Amount.Value < s.cfg.BaseReserve {
				return TecNO_DST
			}
			if s.Spendable(sender) < tx.Amount.Value {
				return TecUNFUNDED_PAYMENT
			}
			sender.Balance -= tx.Amount.Value
			s.accounts[tx.Destination] = &Account{
				Address:   tx.Destination,
				Balance:   tx.Amount.Value,
				Parent:    tx.Account,
				Activated: now,
			}
			tx.DeliveredAmount = tx.Amount
			return TesSUCCESS
		}
		if dest.RequireDestTag && tx.DestinationTag == 0 {
			return TecDST_TAG_NEEDED
		}
		if s.Spendable(sender) < tx.Amount.Value {
			return TecUNFUNDED_PAYMENT
		}
		sender.Balance -= tx.Amount.Value
		dest.Balance += tx.Amount.Value
		tx.DeliveredAmount = tx.Amount
		return TesSUCCESS
	}

	// IOU payment: issuing, redeeming, or rippling through the issuer.
	if dest == nil {
		return TecNO_DST
	}
	if dest.RequireDestTag && tx.DestinationTag == 0 {
		return TecDST_TAG_NEEDED
	}
	code := s.moveIOU(tx.Account, tx.Destination, tx.Amount)
	if code.Success() {
		tx.DeliveredAmount = tx.Amount
	}
	return code
}
