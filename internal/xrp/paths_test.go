package xrp

import "testing"

// pathFixture: a maker sells 100 USD at 5 XRP/USD; sender holds XRP only,
// receiver has a USD trust line.
func pathFixture(t *testing.T) (*State, Address, Address, Address, Address) {
	t.Helper()
	s := New(DefaultConfig(1000))
	gw := NewAddress("path-gw")
	maker := NewAddress("path-maker")
	sender := NewAddress("path-sender")
	receiver := NewAddress("path-receiver")
	for _, a := range []Address{gw, maker, sender, receiver} {
		s.Fund(a, 100_000*DropsPerXRP)
	}
	submitAndClose(s,
		Transaction{Type: TxTrustSet, Account: maker, LimitAmount: IOU("USD", gw, 1_000_000)},
		Transaction{Type: TxTrustSet, Account: receiver, LimitAmount: IOU("USD", gw, 1_000_000)},
	)
	submitAndClose(s, Transaction{Type: TxPayment, Account: gw, Destination: maker, Amount: IOU("USD", gw, 1000)})
	led := submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: maker,
		TakerGets: IOU("USD", gw, 100), TakerPays: XRP(500),
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("maker offer: %s", code)
	}
	return s, gw, maker, sender, receiver
}

func TestCrossCurrencyPaymentDelivers(t *testing.T) {
	s, gw, maker, sender, receiver := pathFixture(t)
	sendMax := XRP(300)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: sender, Destination: receiver,
		Amount: IOU("USD", gw, 40), SendMax: &sendMax,
	})
	tx := led.Transactions[0]
	if !tx.Result.Success() {
		t.Fatalf("cross-currency payment: %s", tx.Result)
	}
	if got := s.IOUBalance(receiver, gw, "USD"); got != 40*DropsPerXRP {
		t.Fatalf("receiver USD = %d", got)
	}
	// Sender paid 40 × 5 = 200 XRP plus the fee.
	wantBalance := 100_000*DropsPerXRP - 200*DropsPerXRP - 10
	if got := s.GetAccount(sender).Balance; got != int64(wantBalance) {
		t.Fatalf("sender XRP = %d, want %d", got, wantBalance)
	}
	// The maker's offer shrank and an exchange was recorded.
	offers := s.BookOffers(AssetKey{"USD", gw}, AssetKey{Currency: "XRP"})
	if len(offers) != 1 || offers[0].TakerGets.Value != 60*DropsPerXRP {
		t.Fatalf("residual offer: %+v", offers)
	}
	if len(s.Exchanges()) != 1 || s.Exchanges()[0].Maker != maker {
		t.Fatalf("exchanges: %+v", s.Exchanges())
	}
	if tx.DeliveredAmount != IOU("USD", gw, 40) {
		t.Fatalf("delivered: %+v", tx.DeliveredAmount)
	}
}

func TestCrossCurrencyPaymentDryBook(t *testing.T) {
	s, gw, _, sender, receiver := pathFixture(t)
	// More USD than the book holds: PATH_DRY without side effects.
	sendMax := XRP(10_000)
	before := s.GetAccount(sender).Balance
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: sender, Destination: receiver,
		Amount: IOU("USD", gw, 500), SendMax: &sendMax,
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("dry book: %s", code)
	}
	if got := s.GetAccount(sender).Balance; got != before-10 { // fee only
		t.Fatalf("partial state leaked: %d -> %d", before, got)
	}
	if got := s.IOUBalance(receiver, gw, "USD"); got != 0 {
		t.Fatalf("receiver got %d despite dry path", got)
	}
}

func TestCrossCurrencyPaymentSendMaxTooTight(t *testing.T) {
	s, gw, _, sender, receiver := pathFixture(t)
	// 40 USD costs 200 XRP; a 100 XRP cap cannot cover it.
	sendMax := XRP(100)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: sender, Destination: receiver,
		Amount: IOU("USD", gw, 40), SendMax: &sendMax,
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("tight SendMax: %s", code)
	}
}

func TestCrossCurrencyPaymentNeedsReceiverLine(t *testing.T) {
	s, gw, _, sender, _ := pathFixture(t)
	stranger := NewAddress("no-line")
	s.Fund(stranger, 1000*DropsPerXRP)
	sendMax := XRP(300)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: sender, Destination: stranger,
		Amount: IOU("USD", gw, 10), SendMax: &sendMax,
	})
	if code := led.Transactions[0].Result; code != TecPATH_DRY {
		t.Fatalf("missing receiver line: %s", code)
	}
}

func TestCrossCurrencyConsumesMultipleOffers(t *testing.T) {
	s, gw, maker, sender, receiver := pathFixture(t)
	// Add a second, cheaper maker with 20 USD at 4 XRP.
	second := NewAddress("path-maker2")
	s.Fund(second, 100_000*DropsPerXRP)
	submitAndClose(s, Transaction{Type: TxTrustSet, Account: second, LimitAmount: IOU("USD", gw, 1_000_000)})
	submitAndClose(s, Transaction{Type: TxPayment, Account: gw, Destination: second, Amount: IOU("USD", gw, 100)})
	submitAndClose(s, Transaction{
		Type: TxOfferCreate, Account: second,
		TakerGets: IOU("USD", gw, 20), TakerPays: XRP(80),
	})
	// 50 USD: 20 from the cheap maker (80 XRP), 30 from the first (150 XRP).
	sendMax := XRP(500)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: sender, Destination: receiver,
		Amount: IOU("USD", gw, 50), SendMax: &sendMax,
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("multi-offer path: %s", code)
	}
	if got := s.IOUBalance(receiver, gw, "USD"); got != 50*DropsPerXRP {
		t.Fatalf("receiver USD = %d", got)
	}
	ex := s.Exchanges()
	if len(ex) != 2 {
		t.Fatalf("%d exchanges", len(ex))
	}
	// Best price first: the 4 XRP/USD maker fills before the 5 XRP/USD one.
	if ex[0].Maker != second || ex[1].Maker != maker {
		t.Fatalf("fill order: %s then %s", ex[0].Maker, ex[1].Maker)
	}
	spent := ex[0].CounterValue + ex[1].CounterValue
	if spent != 230*DropsPerXRP {
		t.Fatalf("spent %d drops, want 230 XRP", spent)
	}
}

func TestSameAssetSendMaxStaysDirect(t *testing.T) {
	s, a := fixture(t, "x1", "x2")
	sendMax := XRP(50)
	led := submitAndClose(s, Transaction{
		Type: TxPayment, Account: a["x1"], Destination: a["x2"],
		Amount: XRP(10), SendMax: &sendMax,
	})
	if code := led.Transactions[0].Result; !code.Success() {
		t.Fatalf("direct payment with same-asset SendMax: %s", code)
	}
}
