package explorer

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/xrp"
)

// fixture builds a ledger with a registered exchange, a descendant, and a
// few BTC/XRP trades at known rates.
func fixture(t *testing.T) (*xrp.State, *Directory, *RateOracle, xrp.Address, xrp.Address) {
	t.Helper()
	st := xrp.New(xrp.DefaultConfig(1000))
	exchange := xrp.NewAddress("big-exchange")
	st.Fund(exchange, 1_000_000*xrp.DropsPerXRP)
	// The exchange activates a child account via an XRP payment.
	child := xrp.NewAddress("exchange-child")
	st.Submit(xrp.Transaction{
		Type: xrp.TxPayment, Account: exchange, Destination: child, Amount: xrp.XRP(100),
	})
	st.CloseLedger()

	// One BTC/XRP trade at 30,000.
	gw := xrp.NewAddress("btc-gateway")
	st.Fund(gw, 100_000*xrp.DropsPerXRP)
	taker := xrp.NewAddress("btc-taker")
	st.Fund(taker, 100_000*xrp.DropsPerXRP)
	st.Submit(xrp.Transaction{
		Type: xrp.TxOfferCreate, Account: gw,
		TakerGets: xrp.IOU("BTC", gw, 1), TakerPays: xrp.XRP(30_000),
	})
	st.Submit(xrp.Transaction{
		Type: xrp.TxOfferCreate, Account: taker,
		TakerGets: xrp.XRP(30_001), TakerPays: xrp.IOU("BTC", gw, 1),
	})
	st.CloseLedger()

	dir := NewDirectory(st)
	dir.Register(exchange, "BigExchange")
	return st, dir, NewRateOracle(st), exchange, child
}

func TestDirectoryClustering(t *testing.T) {
	_, dir, _, exchange, child := fixture(t)
	if got := dir.ClusterName(exchange); got != "BigExchange" {
		t.Fatalf("exchange cluster = %q", got)
	}
	// Descendant resolution via the ledger's parent pointer.
	if got := dir.ClusterName(child); got != "BigExchange -- descendant" {
		t.Fatalf("child cluster = %q", got)
	}
	// Unknown accounts fall back to the raw address.
	anon := xrp.NewAddress("anon")
	if got := dir.ClusterName(anon); got != string(anon) {
		t.Fatalf("anon cluster = %q", got)
	}
}

func TestDirectoryLookup(t *testing.T) {
	_, dir, _, exchange, child := fixture(t)
	info := dir.Lookup(child)
	if info.Parent != exchange || info.ParentUsername != "BigExchange" {
		t.Fatalf("lookup: %+v", info)
	}
	if dir.Username(child) != "" {
		t.Fatal("child should have no username of its own")
	}
}

func TestRateOracle(t *testing.T) {
	st, _, oracle, _, _ := fixture(t)
	btc := xrp.AssetKey{Currency: "BTC", Issuer: xrp.NewAddress("btc-gateway")}
	xrpKey := xrp.AssetKey{Currency: "XRP"}
	pts := oracle.Series(btc, xrpKey)
	if len(pts) != 1 {
		t.Fatalf("series: %d points", len(pts))
	}
	if pts[0].Rate < 29_999 || pts[0].Rate > 30_001 {
		t.Fatalf("rate = %f", pts[0].Rate)
	}
	from := st.Now().Add(-24 * time.Hour)
	to := st.Now().Add(24 * time.Hour)
	if avg := oracle.AverageRate(btc, xrpKey, from, to); avg < 29_999 || avg > 30_001 {
		t.Fatalf("avg = %f", avg)
	}
	if !oracle.HasPositiveRate(btc, xrpKey, from, to) {
		t.Fatal("positive rate not detected")
	}
	// An untraded asset has no rate.
	junk := xrp.AssetKey{Currency: "JNK", Issuer: xrp.NewAddress("nobody")}
	if oracle.AverageRate(junk, xrpKey, from, to) != 0 {
		t.Fatal("junk asset has a rate")
	}
	if oracle.HasPositiveRate(junk, xrpKey, from, to) {
		t.Fatal("junk asset claims positive rate")
	}
}

func TestServerEndpoints(t *testing.T) {
	_, dir, oracle, exchange, child := fixture(t)
	srv := httptest.NewServer(NewServer(dir, oracle))
	defer srv.Close()

	// Account metadata.
	resp, err := http.Get(srv.URL + "/v2/accounts/" + string(child))
	if err != nil {
		t.Fatal(err)
	}
	var info AccountInfo
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.Parent != exchange || info.ParentUsername != "BigExchange" {
		t.Fatalf("account info: %+v", info)
	}

	// Exchange rate, Data-API style.
	gw := xrp.NewAddress("btc-gateway")
	// The fixture trade executes around October 1; query a window that
	// covers it, the way the paper queried date=2020-01-01 for December.
	url := srv.URL + "/v2/exchange_rates/BTC+" + string(gw) + "/XRP?date=2019-10-05T00:00:00Z&period=30day"
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	var rate struct {
		Rate float64 `json:"rate"`
	}
	json.NewDecoder(resp.Body).Decode(&rate)
	resp.Body.Close()
	if rate.Rate < 29_999 || rate.Rate > 30_001 {
		t.Fatalf("rate endpoint: %f", rate.Rate)
	}

	// Bad asset spec.
	resp, _ = http.Get(srv.URL + "/v2/exchange_rates/NOPLUS/XRP")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad asset -> %d", resp.StatusCode)
	}

	// Exchange records round-trip through the wire format.
	exchanges, err := FetchExchanges(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(exchanges) != 1 {
		t.Fatalf("fetched %d exchanges", len(exchanges))
	}
	e := exchanges[0]
	if e.Base.Currency != "BTC" || e.Counter.Currency != "XRP" {
		t.Fatalf("exchange assets: %+v", e)
	}
	if e.Rate() < 29_999 || e.Rate() > 30_001 {
		t.Fatalf("exchange rate: %f", e.Rate())
	}
	if e.MakerSequence == 0 {
		t.Fatal("maker sequence lost in transit")
	}
}

func TestExchangeJSONRoundTrip(t *testing.T) {
	orig := xrp.Exchange{
		Time:          time.Date(2019, 12, 14, 10, 0, 0, 0, time.UTC),
		LedgerIndex:   42,
		Base:          xrp.AssetKey{Currency: "BTC", Issuer: xrp.NewAddress("i")},
		Counter:       xrp.AssetKey{Currency: "XRP"},
		BaseValue:     1 * xrp.DropsPerXRP,
		CounterValue:  30_500 * xrp.DropsPerXRP,
		Maker:         xrp.NewAddress("m"),
		Taker:         xrp.NewAddress("t"),
		MakerSequence: 7,
	}
	back, err := ExchangeToJSON(orig).ToExchange()
	if err != nil {
		t.Fatal(err)
	}
	if back != orig {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", back, orig)
	}
}
