// Package explorer reproduces the two auxiliary data services the paper
// leaned on for XRP: the XRP Scan ledger explorer (account usernames and
// parent accounts, used to cluster exchange-controlled addresses) and the
// Ripple Data API's exchange_rates endpoint (used to decide whether an IOU
// token carries any value, Figure 11).
package explorer

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/xrp"
)

// AccountInfo is the metadata XRP Scan exposes per account.
type AccountInfo struct {
	Address  xrp.Address `json:"account"`
	Username string      `json:"username,omitempty"`
	Parent   xrp.Address `json:"parent,omitempty"`
	// ParentUsername is resolved at query time for convenience.
	ParentUsername string `json:"parent_username,omitempty"`
}

// Directory maps addresses to registered usernames (Binance, Huobi, Ripple…)
// and resolves parent relationships from the ledger itself.
type Directory struct {
	mu        sync.RWMutex
	usernames map[xrp.Address]string
	state     *xrp.State
}

// NewDirectory builds a directory over ledger state.
func NewDirectory(state *xrp.State) *Directory {
	return &Directory{usernames: make(map[xrp.Address]string), state: state}
}

// Register assigns a username to an address, as exchanges do on XRP Scan.
func (d *Directory) Register(addr xrp.Address, username string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.usernames[addr] = username
}

// Username returns the registered username, or "".
func (d *Directory) Username(addr xrp.Address) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.usernames[addr]
}

// Lookup returns the full metadata for an address.
func (d *Directory) Lookup(addr xrp.Address) AccountInfo {
	info := AccountInfo{Address: addr, Username: d.Username(addr)}
	if acct := d.state.GetAccount(addr); acct != nil && acct.Parent != "" {
		info.Parent = acct.Parent
		info.ParentUsername = d.Username(acct.Parent)
	}
	return info
}

// ClusterName resolves the paper's clustering rule: use the account's own
// username; otherwise the parent's username plus a "-- descendant" suffix;
// otherwise the bare address.
func (d *Directory) ClusterName(addr xrp.Address) string {
	info := d.Lookup(addr)
	if info.Username != "" {
		return info.Username
	}
	if info.ParentUsername != "" {
		return info.ParentUsername + " -- descendant"
	}
	return string(addr)
}

// RatePoint is one observed trade price.
type RatePoint struct {
	Time time.Time
	Rate float64 // counter units per base unit
}

// RateOracle aggregates DEX fills into per-pair rate series — the simulated
// equivalent of https://data.ripple.com/v2/exchange_rates.
type RateOracle struct {
	state *xrp.State
}

// NewRateOracle builds an oracle over ledger state.
func NewRateOracle(state *xrp.State) *RateOracle { return &RateOracle{state: state} }

// Series returns the chronological rate points for base sold against
// counter.
func (o *RateOracle) Series(base, counter xrp.AssetKey) []RatePoint {
	var pts []RatePoint
	for _, e := range o.state.Exchanges() {
		switch {
		case e.Base == base && e.Counter == counter:
			pts = append(pts, RatePoint{Time: e.Time, Rate: e.Rate()})
		case e.Base == counter && e.Counter == base && e.CounterValue != 0:
			pts = append(pts, RatePoint{Time: e.Time, Rate: float64(e.BaseValue) / float64(e.CounterValue)})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Time.Before(pts[j].Time) })
	return pts
}

// AverageRate returns the mean traded rate of base against counter within
// [from, to). The paper valued every IOU by exactly this lookup: tokens with
// no positive XRP rate are classified as valueless.
func (o *RateOracle) AverageRate(base, counter xrp.AssetKey, from, to time.Time) float64 {
	var sum float64
	var n int
	for _, p := range o.Series(base, counter) {
		if p.Time.Before(from) || !p.Time.Before(to) {
			continue
		}
		sum += p.Rate
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HasPositiveRate reports whether base ever traded against counter at a
// positive rate within the window.
func (o *RateOracle) HasPositiveRate(base, counter xrp.AssetKey, from, to time.Time) bool {
	for _, p := range o.Series(base, counter) {
		if p.Time.Before(from) || !p.Time.Before(to) {
			continue
		}
		if p.Rate > 0 {
			return true
		}
	}
	return false
}

// Server exposes the directory and oracle over HTTP, mimicking the endpoint
// shapes of XRP Scan and the Ripple Data API.
type Server struct {
	Dir    *Directory
	Oracle *RateOracle
	mux    *http.ServeMux
}

// NewServer builds the HTTP facade.
func NewServer(dir *Directory, oracle *RateOracle) *Server {
	s := &Server{Dir: dir, Oracle: oracle, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v2/accounts/{address}", s.account)
	s.mux.HandleFunc("GET /v2/exchange_rates/{base}/{counter}", s.rate)
	s.mux.HandleFunc("GET /v2/exchanges", s.exchanges)
	return s
}

// ExchangeJSON is the wire shape of one DEX fill, close to the Ripple Data
// API's exchange records.
type ExchangeJSON struct {
	Time          string `json:"executed_time"`
	LedgerIndex   int64  `json:"ledger_index"`
	Base          string `json:"base"`
	Counter       string `json:"counter"`
	BaseValue     int64  `json:"base_value"`
	CounterValue  int64  `json:"counter_value"`
	Maker         string `json:"maker"`
	Taker         string `json:"taker"`
	MakerSequence uint32 `json:"maker_sequence"`
}

// ExchangeToJSON converts a ledger fill to its wire shape.
func ExchangeToJSON(e xrp.Exchange) ExchangeJSON {
	return ExchangeJSON{
		Time:          e.Time.UTC().Format(time.RFC3339),
		LedgerIndex:   e.LedgerIndex,
		Base:          assetToString(e.Base),
		Counter:       assetToString(e.Counter),
		BaseValue:     e.BaseValue,
		CounterValue:  e.CounterValue,
		Maker:         string(e.Maker),
		Taker:         string(e.Taker),
		MakerSequence: e.MakerSequence,
	}
}

// ToExchange converts back to the ledger type.
func (j ExchangeJSON) ToExchange() (xrp.Exchange, error) {
	ts, err := time.Parse(time.RFC3339, j.Time)
	if err != nil {
		return xrp.Exchange{}, fmt.Errorf("explorer: bad exchange time %q: %w", j.Time, err)
	}
	base, err := parseAssetKey(j.Base)
	if err != nil {
		return xrp.Exchange{}, err
	}
	counter, err := parseAssetKey(j.Counter)
	if err != nil {
		return xrp.Exchange{}, err
	}
	return xrp.Exchange{
		Time: ts, LedgerIndex: j.LedgerIndex,
		Base: base, Counter: counter,
		BaseValue: j.BaseValue, CounterValue: j.CounterValue,
		Maker: xrp.Address(j.Maker), Taker: xrp.Address(j.Taker),
		MakerSequence: j.MakerSequence,
	}, nil
}

func assetToString(k xrp.AssetKey) string {
	if k.Issuer == "" {
		return k.Currency
	}
	return k.Currency + "+" + string(k.Issuer)
}

func (s *Server) exchanges(w http.ResponseWriter, r *http.Request) {
	all := s.Oracle.state.Exchanges()
	out := make([]ExchangeJSON, 0, len(all))
	for _, e := range all {
		out = append(out, ExchangeToJSON(e))
	}
	writeJSON(w, out)
}

// FetchExchanges retrieves every exchange record from an explorer endpoint,
// the way the paper pulled trade data from data.ripple.com.
func FetchExchanges(baseURL string) ([]xrp.Exchange, error) {
	resp, err := http.Get(baseURL + "/v2/exchanges")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("explorer: exchanges endpoint returned %s", resp.Status)
	}
	var rows []ExchangeJSON
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, fmt.Errorf("explorer: decoding exchanges: %w", err)
	}
	out := make([]xrp.Exchange, 0, len(rows))
	for _, row := range rows {
		e, err := row.ToExchange()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) account(w http.ResponseWriter, r *http.Request) {
	addr := xrp.Address(r.PathValue("address"))
	writeJSON(w, s.Dir.Lookup(addr))
}

// rate handles /v2/exchange_rates/{base}/{counter}?period=30day&date=…
// Base and counter are "CUR+ISSUER" pairs, or "XRP".
func (s *Server) rate(w http.ResponseWriter, r *http.Request) {
	base, err := parseAssetKey(r.PathValue("base"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	counter, err := parseAssetKey(r.PathValue("counter"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to := time.Now().UTC()
	if d := r.URL.Query().Get("date"); d != "" {
		parsed, err := time.Parse(time.RFC3339, d)
		if err != nil {
			http.Error(w, "bad date", http.StatusBadRequest)
			return
		}
		to = parsed
	}
	window := 30 * 24 * time.Hour
	if p := r.URL.Query().Get("period"); p == "day" {
		window = 24 * time.Hour
	}
	rate := s.Oracle.AverageRate(base, counter, to.Add(-window), to)
	writeJSON(w, map[string]any{"rate": rate, "base": base.String(), "counter": counter.String()})
}

func parseAssetKey(s string) (xrp.AssetKey, error) {
	if s == "XRP" {
		return xrp.AssetKey{Currency: "XRP"}, nil
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '+' {
			return xrp.AssetKey{Currency: s[:i], Issuer: xrp.Address(s[i+1:])}, nil
		}
	}
	return xrp.AssetKey{}, fmt.Errorf("explorer: asset %q must be XRP or CUR+ISSUER", s)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
