// Live progress export: the active coordinator serves its run state over
// HTTP while the crawl runs, so a degraded week-long run is observable
// before it exits. Same copy-on-write idiom as internal/serve: the run
// loop publishes immutable Progress snapshots through an atomic pointer,
// and the read path is one atomic load — no locks, no contention with the
// crawl.
package coord

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Progress is one immutable snapshot of a running coordinator: the
// GapReport shape (so mid-run and final reports parse identically) plus
// per-task lease/attempt/fence status and the election epoch.
type Progress struct {
	// Report is the gap report as of this snapshot: Missing covers every
	// block range no validated shard covers yet, Failures the tasks that
	// already failed terminally. Complete stays false until the run ends.
	Report GapReport `json:"report"`
	// Owner and Epoch identify the active coordinator and its election
	// attempt.
	Owner string `json:"owner"`
	Epoch int    `json:"epoch"`
	// Tasks is the per-slice status, ascending by index.
	Tasks     []TaskProgress `json:"tasks"`
	UpdatedAt time.Time      `json:"updated_at"`
}

// TaskProgress is one task's row in a Progress snapshot.
type TaskProgress struct {
	Task     string `json:"task"`
	Index    int    `json:"index"`
	From     int64  `json:"from"`
	To       int64  `json:"to"`
	State    string `json:"state"`
	Fence    uint64 `json:"fence,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ProgressTracker publishes Progress snapshots to concurrent readers. The
// zero value is ready to use and reports "no snapshot yet" until the
// first Publish.
type ProgressTracker struct {
	cur atomic.Pointer[Progress]
}

// Publish makes p the current snapshot. The tracker owns p from here on;
// the caller must not mutate it.
func (t *ProgressTracker) Publish(p *Progress) { t.cur.Store(p) }

// Snapshot returns the current snapshot, or nil before the first Publish.
func (t *ProgressTracker) Snapshot() *Progress { return t.cur.Load() }

// progressFrom renders a RunState into a Progress snapshot: done tasks
// leave coverage, everything else lands in Missing, failed tasks also land
// in Failures — the same accounting the final report does, computed from
// checkpointed state instead of merged shards.
func progressFrom(s *RunState) *Progress {
	p := &Progress{
		Report: GapReport{Chain: s.Chain, From: s.From, To: s.To},
		Owner:  s.Owner,
		Epoch:  s.Epoch,
	}
	for name, rec := range s.Tasks {
		p.Tasks = append(p.Tasks, TaskProgress{
			Task: name, Index: rec.Index, From: rec.From, To: rec.To,
			State: rec.State, Fence: rec.Fence, Attempts: rec.Attempts, Error: rec.Error,
		})
	}
	sort.Slice(p.Tasks, func(i, j int) bool { return p.Tasks[i].Index < p.Tasks[j].Index })
	var missing []GapRange
	for _, tp := range p.Tasks {
		if tp.State != TaskDone {
			missing = append(missing, GapRange{From: tp.From, To: tp.To})
		}
		if tp.State == TaskFailed {
			p.Report.Failures = append(p.Report.Failures, GapFailure{
				Task: tp.Task, From: tp.From, To: tp.To, Error: tp.Error,
			})
		}
	}
	// Coalesce adjacent missing ranges so the mid-run report matches the
	// final report's "ascending and non-adjacent" contract.
	for _, g := range missing {
		if n := len(p.Report.Missing); n > 0 && p.Report.Missing[n-1].To+1 == g.From {
			p.Report.Missing[n-1].To = g.To
			continue
		}
		p.Report.Missing = append(p.Report.Missing, g)
	}
	return p
}

// NewProgressHandler serves the tracker over HTTP:
//
//	GET /v1/progress — current Progress snapshot as JSON
//	GET /healthz     — liveness, 200 once the server is up
//
// Every response carries X-Coord-Epoch (0 before the first snapshot), so
// a poller can detect a takeover — the epoch bumps — without parsing the
// body. /v1/progress returns 503 until the first snapshot publishes: an
// elected-but-not-yet-resumed coordinator has nothing truthful to report.
func NewProgressHandler(t *ProgressTracker) http.Handler {
	mux := http.NewServeMux()
	stamp := func(w http.ResponseWriter, p *Progress) {
		epoch := 0
		if p != nil {
			epoch = p.Epoch
		}
		w.Header().Set("X-Coord-Epoch", strconv.Itoa(epoch))
	}
	mux.HandleFunc("GET /v1/progress", func(w http.ResponseWriter, r *http.Request) {
		p := t.Snapshot()
		stamp(w, p)
		if p == nil {
			http.Error(w, "no progress snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		stamp(w, t.Snapshot())
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
