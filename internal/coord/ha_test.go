// High-availability tests: multi-coordinator lease contention, fence
// enforcement against zombie emissions, crash-recoverable run state, and
// the live progress export.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/retry"
)

// liveOwners reports which contenders hold a verifiably live lease on
// task: the store record exists, carries their nonce, and its deadline
// has not passed. Probes go to the base store so fault injection on the
// contenders' wrapped store cannot blind the invariant check.
func liveOwners(t *testing.T, base blobstore.Store, clk *fakeClock, task string, recs map[string]*LeaseRecord) []string {
	t.Helper()
	probe := newTestLeases(base, "probe", clk)
	cur, ok, err := probe.get(context.Background(), task)
	if err != nil || !ok {
		return nil
	}
	var live []string
	for owner, rec := range recs {
		if rec != nil && cur.Nonce == rec.Nonce && clk.now().Before(cur.Deadline) {
			live = append(live, owner)
		}
	}
	return live
}

// TestLeaseContentionTwoCoordinators walks two coordinators with distinct
// owners through every contention transition — claim vs claim, renew
// under contention, expiry reclaim, release race — asserting after every
// step that exactly one (or, where expected, zero) of them holds a
// verifiably live lease.
func TestLeaseContentionTwoCoordinators(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	clk := &fakeClock{t: time.Unix(5000, 0)}
	a := newTestLeases(store, "alpha", clk)
	b := newTestLeases(store, "beta", clk)
	const task = "eos-0000000001-0000000050"
	recs := map[string]*LeaseRecord{}

	expect := func(step string, want ...string) {
		t.Helper()
		got := liveOwners(t, store, clk, task, recs)
		if len(got) != len(want) || (len(want) == 1 && got[0] != want[0]) {
			t.Fatalf("%s: live owners %v, want %v", step, got, want)
		}
	}

	// alpha claims; beta is refused while the lease is live.
	rec, err := a.Claim(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	recs["alpha"] = &rec
	expect("after alpha claim", "alpha")
	var held *ErrHeld
	if _, err := b.Claim(ctx, task); !errors.As(err, &held) {
		t.Fatalf("beta claim on live lease: %v, want *ErrHeld", err)
	}
	expect("after beta refused", "alpha")

	// alpha renews mid-TTL; still exactly one owner.
	clk.t = clk.t.Add(30 * time.Second)
	if err := a.Renew(ctx, recs["alpha"]); err != nil {
		t.Fatal(err)
	}
	expect("after alpha renew", "alpha")

	// alpha goes silent past its deadline; beta reclaims with the attempt
	// lineage (the fence) bumped, and alpha's copy goes dead.
	clk.t = clk.t.Add(2 * time.Minute)
	expect("after alpha expiry") // zero live owners: record expired
	brec, err := b.Claim(ctx, task)
	if err != nil {
		t.Fatal(err)
	}
	if brec.Attempt != recs["alpha"].Attempt+1 {
		t.Fatalf("reclaim attempt %d, want %d", brec.Attempt, recs["alpha"].Attempt+1)
	}
	recs["beta"] = &brec
	expect("after beta reclaim", "beta")

	// The zombie's renew and release are both detected/no-ops, never a
	// second live owner.
	var lost *ErrLost
	if err := a.Renew(ctx, recs["alpha"]); !errors.As(err, &lost) {
		t.Fatalf("zombie renew: %v, want *ErrLost", err)
	}
	if err := a.Release(ctx, *recs["alpha"]); err != nil {
		t.Fatal(err)
	}
	recs["alpha"] = nil
	expect("after zombie release", "beta")

	if err := b.Release(ctx, *recs["beta"]); err != nil {
		t.Fatal(err)
	}
	recs["beta"] = nil
	expect("after beta release") // zero: lease retired
}

// TestLeaseContentionConcurrent hammers one lease per round with several
// contenders claiming simultaneously. The advisory protocol lets more than
// one racer believe it won within a single store round-trip; the invariant
// is that the race is always DETECTED: once the dust settles, exactly one
// contender's renew succeeds and every other apparent winner gets
// *ErrLost.
func TestLeaseContentionConcurrent(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	const contenders, rounds = 4, 25
	ls := make([]*Leases, contenders)
	for i := range ls {
		ls[i] = NewLeases(store, fmt.Sprintf("coord-%d", i), time.Minute)
	}
	for round := 0; round < rounds; round++ {
		task := fmt.Sprintf("race-%04d", round)
		wins := make([]*LeaseRecord, contenders)
		var wg sync.WaitGroup
		for i := range ls {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if rec, err := ls[i].Claim(ctx, task); err == nil {
					wins[i] = &rec
				} else if !errors.As(err, new(*ErrHeld)) {
					t.Errorf("round %d: contender %d: %v", round, i, err)
				}
			}(i)
		}
		wg.Wait()
		live, holder := 0, -1
		for i, rec := range wins {
			if rec == nil {
				continue
			}
			if err := ls[i].Renew(ctx, rec); err == nil {
				live, holder = live+1, i
			} else if !errors.As(err, new(*ErrLost)) {
				t.Fatalf("round %d: settle renew: %v", round, err)
			}
		}
		if live != 1 {
			t.Fatalf("round %d: %d live owners after settling, want exactly 1", round, live)
		}
		if err := ls[holder].Release(ctx, *wins[holder]); err != nil {
			t.Fatalf("round %d: release: %v", round, err)
		}
	}
}

// TestLeaseContentionChaos replays the two-coordinator contention walk
// with injected store faults: operations are retried through the shared
// policy, and the exactly-one-live-owner invariant (probed against the
// unwrapped base store) must hold after every settled step.
func TestLeaseContentionChaos(t *testing.T) {
	ctx := context.Background()
	base := blobstore.NewMemory()
	faulty := blobstore.NewFaulty(base)
	faulty.Chaos(11, 0.05)
	clk := &fakeClock{t: time.Unix(5000, 0)}
	a := newTestLeases(faulty, "alpha", clk)
	b := newTestLeases(faulty, "beta", clk)
	const task = "eos-0000000001-0000000050"
	recs := map[string]*LeaseRecord{}

	// claim retries transient injected faults; *ErrHeld surfaces.
	claim := func(l *Leases) (LeaseRecord, error) {
		var rec LeaseRecord
		pol := retry.Policy{Attempts: 10, Base: time.Microsecond}
		err := pol.Do(ctx, "claim", func(ctx context.Context) error {
			var cerr error
			rec, cerr = l.Claim(ctx, task)
			if cerr != nil && errors.As(cerr, new(*ErrHeld)) {
				return retry.Permanent(cerr)
			}
			return cerr
		})
		return rec, err
	}
	expect := func(step string, want ...string) {
		t.Helper()
		got := liveOwners(t, base, clk, task, recs)
		if len(got) != len(want) || (len(want) == 1 && got[0] != want[0]) {
			t.Fatalf("%s: live owners %v, want %v", step, got, want)
		}
	}

	rec, err := claim(a)
	if err != nil {
		t.Fatalf("alpha claim under chaos: %v", err)
	}
	recs["alpha"] = &rec
	expect("after alpha claim", "alpha")

	if _, err := claim(b); !errors.As(err, new(*ErrHeld)) {
		t.Fatalf("beta claim on live lease under chaos: %v, want *ErrHeld", err)
	}
	expect("after beta refused", "alpha")

	clk.t = clk.t.Add(2 * time.Minute)
	brec, err := claim(b)
	if err != nil {
		t.Fatalf("beta reclaim under chaos: %v", err)
	}
	recs["beta"] = &brec
	if brec.Attempt <= recs["alpha"].Attempt {
		t.Fatalf("reclaim did not advance the fence lineage: %d -> %d", recs["alpha"].Attempt, brec.Attempt)
	}
	recs["alpha"] = nil
	expect("after beta reclaim", "beta")
}

// TestValidateShardFence pins the two fence-mismatch verdicts: a blob
// with an OLDER fence than the task's lease is a retryable zombie clobber
// (relaunching rewrites it), a blob with a NEWER fence means this
// coordinator is the zombie and must stand down permanently.
func TestValidateShardFence(t *testing.T) {
	ctx := context.Background()
	fx := newEOSFixture(t, 10)
	head := fx.head(t)
	store := blobstore.NewMemory()

	task := Task{Index: 1, N: 1, Chain: "eos", From: 1, To: head, Fence: 2}
	emit := func(fence uint64) {
		t.Helper()
		kit := fx.kit(t)
		if _, _, err := core.IngestCrawl(ctx, fx.fetcher(),
			collect.CrawlConfig{From: 1, To: head, Workers: 2}, kit.Decoder, core.IngestConfig{}); err != nil {
			t.Fatal(err)
		}
		st := kit.State()
		st.SetCovered(core.BlockRange{From: 1, To: head})
		blob, err := core.EncodeShard(st, fence)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(ctx, task.Name()+".shard", blob); err != nil {
			t.Fatal(err)
		}
	}

	emit(1) // stale: a superseded worker's emission
	err := validateShard(ctx, store, task)
	if err == nil || !strings.Contains(err.Error(), "stale emission") {
		t.Fatalf("stale fence: %v, want a stale-emission refusal", err)
	}
	if retry.IsPermanent(err) {
		t.Fatal("stale fence must be retryable: relaunching rewrites the blob")
	}

	emit(2) // exact: ours
	if err := validateShard(ctx, store, task); err != nil {
		t.Fatalf("matching fence refused: %v", err)
	}

	emit(3) // newer: we are the zombie
	err = validateShard(ctx, store, task)
	if err == nil || !strings.Contains(err.Error(), "superseded") {
		t.Fatalf("newer fence: %v, want a superseded refusal", err)
	}
	if !retry.IsPermanent(err) {
		t.Fatal("newer fence must be permanent: retrying under a stale lease only wastes work")
	}
}

// TestCoordinatorZombieFenceRefused is the end-to-end zombie story: a
// partial run leaves its run state (and fence floors) behind; a zombie
// worker then overwrites a validated shard with an unfenced emission.
// The merge must refuse the stale blob by name, and a resumed coordinator
// must detect the clobber, relaunch the slice under a newer fence, and
// finish with figures byte-identical to the oracle.
func TestCoordinatorZombieFenceRefused(t *testing.T) {
	const blocks = 45
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()
	ctx := context.Background()

	run := inProcessWorker(fx, store, 0)
	cfg := Config{
		Chain: "eos", From: 1, To: head, Shards: 3,
		Store: store,
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run: func(ctx context.Context, task Task) error {
			if task.Index == 3 {
				return fmt.Errorf("endpoint dark for now")
			}
			return run(ctx, task)
		},
	}
	res, err := Run(ctx, cfg)
	if err == nil || len(res.Completed) != 2 {
		t.Fatalf("partial run: completed %d, err %v", len(res.Completed), err)
	}

	// Zombie: overwrite slice 1's validated shard with an unfenced
	// re-emission of the same content — what a superseded worker that
	// never heard of the reclaim would Put.
	victim := res.Completed[0]
	key := victim.Name() + ".shard"
	raw, err := store.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.DecodeShard(raw)
	if err != nil {
		t.Fatal(err)
	}
	unfenced, err := core.EncodeShard(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, key, unfenced); err != nil {
		t.Fatal(err)
	}

	// The store's surviving lineage (run state) still carries the floor:
	// a standalone merge refuses the zombie blob by name.
	floors, err := FenceIndex(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if floors[victim.Name()] == 0 {
		t.Fatalf("fence index lost the floor for %s: %v", victim.Name(), floors)
	}
	blobs, err := core.LoadShardBlobsFrom(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.MergeShardBlobsFenced(blobs, true, floors); err == nil ||
		!strings.Contains(err.Error(), key) || !strings.Contains(err.Error(), "stale emission") {
		t.Fatalf("merge of zombie blob: %v, want a refusal naming %s", err, key)
	}

	// A replacement coordinator resumes, detects the clobbered slice
	// (checkpoint says done, blob fails fence validation), relaunches it
	// under a fresh lease, and completes byte-identical to the oracle.
	cfg.Run = run // slice 3's endpoint is back
	res2, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !res2.Resumed {
		t.Fatal("second run did not resume from run state")
	}
	if got, want := res2.Merged.Summary().Render(), fx.oracle(t, head); got != want {
		t.Errorf("figures after zombie recovery differ from oracle:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if _, ok, _ := LoadRunState(ctx, store, "eos"); ok {
		t.Fatal("fully successful resume left run state behind")
	}
}

// TestCoordinatorResumeFromRunState: a run interrupted by failed slices
// leaves its checkpoint; a replacement coordinator adopts the pinned
// range (never re-pinning head), skips already-validated slices without
// refetching a single block of them, and re-attempts only the failures.
func TestCoordinatorResumeFromRunState(t *testing.T) {
	const blocks = 45
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()
	ctx := context.Background()

	run := inProcessWorker(fx, store, 0)
	res, err := Run(ctx, Config{
		Chain: "eos", From: 1, To: head, Shards: 3,
		Store: store,
		Owner: "coordinator-1",
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run: func(ctx context.Context, task Task) error {
			if task.Index == 2 {
				return fmt.Errorf("endpoint dark for now")
			}
			return run(ctx, task)
		},
	})
	if err == nil || len(res.Completed) != 2 || len(res.Failed) != 1 {
		t.Fatalf("first run: completed %d failed %d err %v", len(res.Completed), len(res.Failed), err)
	}
	prev, ok, err := LoadRunState(ctx, store, "eos")
	if err != nil || !ok {
		t.Fatalf("no run state after partial run: %v", err)
	}
	if prev.To != head || prev.Owner != "coordinator-1" {
		t.Fatalf("run state %+v", prev)
	}

	// Replacement coordinator: To is zero, so without the checkpoint it
	// would re-pin head — PinHead failing loudly proves the checkpointed
	// range won.
	fx.mu.Lock()
	fx.fetched = make(map[int64]int)
	fx.mu.Unlock()
	res2, err := Run(ctx, Config{
		Chain: "eos", From: 1, Shards: 0, // adopted from the checkpoint
		Store: store,
		Owner: "coordinator-2",
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run:   run,
		PinHead: func(ctx context.Context) (int64, error) {
			return 0, fmt.Errorf("head must not be re-pinned on resume")
		},
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !res2.Resumed || len(res2.Completed) != 3 {
		t.Fatalf("resumed run: resumed=%v completed=%d", res2.Resumed, len(res2.Completed))
	}
	// Only the failed slice's blocks were refetched: done slices were
	// skipped on re-validation alone.
	failed := res.Failed[0].Task
	fx.mu.Lock()
	for num, n := range fx.fetched {
		if n > 0 && (num < failed.From || num > failed.To) {
			fx.mu.Unlock()
			t.Fatalf("resume refetched block %d outside the failed slice [%d, %d]", num, failed.From, failed.To)
		}
	}
	fx.mu.Unlock()
	if got, want := res2.Merged.Summary().Render(), fx.oracle(t, head); got != want {
		t.Errorf("resumed figures differ from oracle:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if _, ok, _ := LoadRunState(ctx, store, "eos"); ok {
		t.Fatal("fully successful resume left run state behind")
	}
}

// TestCoordinatorRunStateConflictIsLoud: a checkpoint pinning one range
// refuses a coordinator explicitly configured for another, instead of
// silently adopting either.
func TestCoordinatorRunStateConflictIsLoud(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	if err := SaveRunState(ctx, store, &RunState{
		Chain: "eos", From: 1, To: 100, Shards: 4,
		Tasks: map[string]*TaskRecord{},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(ctx, Config{
		Chain: "eos", From: 1, To: 50, Shards: 2,
		Store: store,
		Retry: retry.Policy{Attempts: 1, Base: time.Millisecond},
		Run:   func(ctx context.Context, t Task) error { return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "delete "+RunStateKey("eos")) {
		t.Fatalf("conflicting pinned range: %v, want a loud conflict naming the run state key", err)
	}
}

// TestFenceIndex: floors fold from both surviving lease records and run
// states, max wins across sources, and corrupt records are loud.
func TestFenceIndex(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	clk := &fakeClock{t: time.Unix(5000, 0)}
	l := newTestLeases(store, "alpha", clk)
	if _, err := l.Claim(ctx, "eos-0000000001-0000000050"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Claim(ctx, "eos-0000000001-0000000050"); err != nil { // attempt 2
		t.Fatal(err)
	}
	if err := SaveRunState(ctx, store, &RunState{
		Chain: "eos", From: 1, To: 100, Shards: 2,
		Tasks: map[string]*TaskRecord{
			"eos-0000000001-0000000050": {Index: 1, From: 1, To: 50, State: TaskDone, Fence: 1},
			"eos-0000000051-0000000100": {Index: 2, From: 51, To: 100, State: TaskRunning, Fence: 5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	index, err := FenceIndex(ctx, store)
	if err != nil {
		t.Fatal(err)
	}
	if index["eos-0000000001-0000000050"] != 2 { // lease attempt 2 beats run-state fence 1
		t.Fatalf("index = %v, want lease lineage 2 for slice 1", index)
	}
	if index["eos-0000000051-0000000100"] != 5 { // run state survives lease release
		t.Fatalf("index = %v, want run-state fence 5 for slice 2", index)
	}
	if err := store.Put(ctx, leaseKey("torn-task"), []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	if _, err := FenceIndex(ctx, store); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("fence index over a corrupt lease: %v, want a loud refusal", err)
	}
}

// TestProgressExport drives the live progress endpoint through a real
// coordinated run: 503 with epoch 0 before election, parseable mid-run
// snapshots in the GapReport shape, and a final snapshot accounting for
// the degraded slice.
func TestProgressExport(t *testing.T) {
	const blocks = 30
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()

	tracker := &ProgressTracker{}
	h := NewProgressHandler(tracker)
	get := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/progress", nil))
		return w
	}

	// Before the first snapshot: alive but empty-handed.
	if w := get(); w.Code != http.StatusServiceUnavailable || w.Header().Get("X-Coord-Epoch") != "0" {
		t.Fatalf("before first snapshot: %d epoch %q, want 503 epoch 0", w.Code, w.Header().Get("X-Coord-Epoch"))
	}

	// Mid-run: after the first slice lands, the snapshot must parse as a
	// GapReport-shaped Progress with the remaining slices missing.
	run := inProcessWorker(fx, store, 0)
	var midChecked sync.Once
	res, err := Run(context.Background(), Config{
		Chain: "eos", From: 1, To: head, Shards: 3,
		Store:    store,
		Owner:    "progress-test",
		Progress: tracker,
		Retry:    retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run: func(ctx context.Context, task Task) error {
			if task.Index == 3 {
				return fmt.Errorf("endpoint permanently dark")
			}
			return run(ctx, task)
		},
		AfterTaskDone: func(task Task) {
			midChecked.Do(func() {
				w := get()
				if w.Code != http.StatusOK {
					t.Errorf("mid-run progress: %d", w.Code)
					return
				}
				var p Progress
				if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
					t.Errorf("mid-run progress does not parse: %v\n%s", err, w.Body.String())
					return
				}
				if p.Report.Chain != "eos" || p.Report.From != 1 || p.Report.To != head {
					t.Errorf("mid-run report header: %+v", p.Report)
				}
				if p.Report.Complete {
					t.Error("mid-run report claims completion")
				}
				if len(p.Tasks) != 3 {
					t.Errorf("mid-run tasks: %+v", p.Tasks)
				}
				if w.Header().Get("X-Coord-Epoch") == "0" {
					t.Error("mid-run epoch still 0")
				}
			})
		},
	})
	if err == nil {
		t.Fatal("run with a dead slice reported success")
	}

	// Final snapshot: the failed slice is missing and named in failures,
	// and the epoch header matches the run's election.
	w := get()
	var p Progress
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatalf("final progress: %v", err)
	}
	if p.Epoch != res.Epoch || w.Header().Get("X-Coord-Epoch") != fmt.Sprint(res.Epoch) {
		t.Fatalf("epoch %d header %q, want %d", p.Epoch, w.Header().Get("X-Coord-Epoch"), res.Epoch)
	}
	failed := res.Failed[0].Task
	if len(p.Report.Missing) != 1 || p.Report.Missing[0].From != failed.From || p.Report.Missing[0].To != failed.To {
		t.Fatalf("final missing %+v, want the failed slice [%d, %d]", p.Report.Missing, failed.From, failed.To)
	}
	if len(p.Report.Failures) != 1 || !strings.Contains(p.Report.Failures[0].Error, "permanently dark") {
		t.Fatalf("final failures %+v", p.Report.Failures)
	}
	for _, tp := range p.Tasks {
		want := TaskDone
		if tp.Index == failed.Index {
			want = TaskFailed
		}
		if tp.State != want {
			t.Errorf("task %s state %q, want %q", tp.Task, tp.State, want)
		}
		if want == TaskDone && tp.Fence == 0 {
			t.Errorf("done task %s carries no fence", tp.Task)
		}
	}
}
