package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"repro/internal/blobstore"
	"repro/internal/collect"
	"repro/internal/core"
)

// CheckpointKey names the crash-recovery blob a shard worker maintains
// for its slice. The suffix is deliberately not ".shard": LoadShards
// skips it, so a half-done slice's checkpoint can share the store with
// finished shards without ever being merged as one.
func CheckpointKey(chainName string, from, to int64) string {
	return fmt.Sprintf("ckpt/%s-%010d-%010d.state", chainName, from, to)
}

// CrawlerConfig parameterizes one shard worker run (RunShardCrawl).
type CrawlerConfig struct {
	// Kit is the chain's aggregator stack (core.NewStatsKit) the worker
	// ingests into.
	Kit core.StatsKit
	// Fetcher is the chain endpoint.
	Fetcher collect.BlockFetcher
	// From and To bound the slice, inclusive; both must be concrete — a
	// worker never resolves head itself, the coordinator pinned the range.
	From, To int64
	// Store receives the checkpoint blobs and the final shard blob.
	Store blobstore.Store
	// CheckpointEvery is the chunk size in blocks: after each chunk of the
	// reverse-chronological crawl completes, the whole aggregate state is
	// encoded and atomically Put at CheckpointKey. 0 disables
	// checkpointing (the slice is one chunk).
	CheckpointEvery int64
	// Workers, Ingest, Batch, Buffer tune the crawl/ingest pipeline as in
	// cmd/crawl.
	Workers, Ingest, Batch, Buffer int
	// MaxRetries and Backoff configure per-block fetch retries.
	MaxRetries int
	Backoff    time.Duration
	// Log, when set, receives progress lines.
	Log io.Writer
	// AfterCheckpoint, when set, runs after each successful checkpoint Put
	// with the range the checkpoint covers. Chaos harnesses use it to kill
	// the worker at a known-recoverable instant; it is never called for
	// the final shard emit.
	AfterCheckpoint func(covered core.BlockRange)
	// Fence, when non-zero, is the lease fence token (the claim Attempt
	// the coordinator crawls this slice under) stamped into the emitted
	// shard's envelope, so merge-time fence verification can refuse this
	// emission if the lease is reclaimed mid-crawl. Checkpoints are
	// deliberately NOT fenced: their content is deterministic for the
	// covered range, so a reclaimer resuming from a zombie's checkpoint
	// ingests identical data — fences protect the merged artifact, not the
	// scratch space.
	Fence uint64
}

// CrawlOutcome summarizes a finished shard worker run.
type CrawlOutcome struct {
	// ShardKey is the emitted shard blob's key.
	ShardKey string
	// Resumed is the block range a checkpoint let the worker skip
	// re-crawling (unknown when the run started fresh).
	Resumed core.BlockRange
	// Blocks and Retries aggregate the crawl results across chunks.
	Blocks, Retries int64
}

// RunShardCrawl crawls one slice with per-chunk crash-recoverable
// checkpoints, then emits the finished shard blob. The slice is crawled
// in reverse-chronological chunks of CheckpointEvery blocks; after each
// chunk the full aggregate (not just a frontier) is encoded with its
// covered sub-range and atomically Put to the store, so a worker killed
// at ANY point resumes by decoding the last checkpoint and continuing
// below it — blocks of the interrupted chunk are refetched in full,
// blocks of completed chunks are never refetched and never double-
// ingested (the covered ranges tile exactly). This is what lets
// -emit-shard accept resumed runs: the decoded checkpoint IS this run's
// aggregate, nothing was skipped past it.
//
// On success the checkpoint blob is deleted best-effort; a leftover one
// is harmless (its covered range matches the emitted shard and the next
// fresh run of the same slice overwrites it).
func RunShardCrawl(ctx context.Context, cfg CrawlerConfig) (CrawlOutcome, error) {
	if cfg.From < 1 || cfg.To < cfg.From {
		return CrawlOutcome{}, fmt.Errorf("coord: [%d, %d] is not a crawlable slice", cfg.From, cfg.To)
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	st := cfg.Kit.State()
	ckptKey := CheckpointKey(cfg.Kit.Chain, cfg.From, cfg.To)
	var out CrawlOutcome

	// Resume: decode the last checkpoint, if any, into the live aggregate.
	// A torn or corrupt checkpoint is a loud error, never a silent fresh
	// start — silently restarting would double-ingest every block the torn
	// checkpoint covered once the refetched chunks merge with an archive
	// or a later checkpoint of this very state.
	hi := cfg.To
	if raw, err := cfg.Store.Get(ctx, ckptKey); err == nil {
		if derr := st.DecodeFrom(bytes.NewReader(raw)); derr != nil {
			return CrawlOutcome{}, fmt.Errorf("coord: checkpoint %s at %s is corrupt: %w (delete it to restart the slice from scratch)",
				ckptKey, cfg.Store.URL(), derr)
		}
		cov := st.Covered()
		if !cov.Known() || cov.To != cfg.To || cov.From < cfg.From || cov.From > cfg.To {
			return CrawlOutcome{}, fmt.Errorf("coord: checkpoint %s at %s covers %s, outside this worker's slice [%d, %d] (delete it to restart the slice from scratch)",
				ckptKey, cfg.Store.URL(), cov, cfg.From, cfg.To)
		}
		out.Resumed = cov
		hi = cov.From - 1
		logf("resuming:    checkpoint covers %s, continuing below %d", cov, cov.From)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return CrawlOutcome{}, fmt.Errorf("coord: reading checkpoint %s: %w", ckptKey, err)
	}

	every := cfg.CheckpointEvery
	if every <= 0 {
		every = cfg.To - cfg.From + 1 // one chunk: no intermediate checkpoints
	}
	for hi >= cfg.From {
		lo := hi - every + 1
		if lo < cfg.From {
			lo = cfg.From
		}
		ccfg := collect.CrawlConfig{
			From: lo, To: hi,
			Workers: cfg.Workers, Buffer: cfg.Buffer,
			MaxRetries: cfg.MaxRetries, Backoff: cfg.Backoff,
		}
		res, _, err := core.IngestCrawl(ctx, cfg.Fetcher, ccfg, cfg.Kit.Decoder, core.IngestConfig{Workers: cfg.Ingest, Batch: cfg.Batch})
		out.Blocks += res.Blocks
		out.Retries += res.Retries
		if err != nil {
			return out, fmt.Errorf("coord: chunk [%d, %d]: %w", lo, hi, err)
		}
		// The chunk is fully ingested: the aggregate now covers [lo, To].
		st.SetCovered(core.BlockRange{From: lo, To: cfg.To})
		if cfg.CheckpointEvery > 0 && lo > cfg.From {
			var buf bytes.Buffer
			if err := st.EncodeTo(&buf); err != nil {
				return out, fmt.Errorf("coord: encoding checkpoint after chunk [%d, %d]: %w", lo, hi, err)
			}
			if err := cfg.Store.Put(ctx, ckptKey, buf.Bytes()); err != nil {
				return out, fmt.Errorf("coord: writing checkpoint %s: %w", ckptKey, err)
			}
			logf("checkpoint:  %s (covers [%d, %d])", ckptKey, lo, cfg.To)
			if cfg.AfterCheckpoint != nil {
				cfg.AfterCheckpoint(core.BlockRange{From: lo, To: cfg.To})
			}
		}
		hi = lo - 1
	}

	st.SetCovered(core.BlockRange{From: cfg.From, To: cfg.To})
	key, err := core.ShardKey(st)
	if err != nil {
		return out, err
	}
	blob, err := core.EncodeShard(st, cfg.Fence)
	if err != nil {
		return out, err
	}
	if err := cfg.Store.Put(ctx, key, blob); err != nil {
		return out, fmt.Errorf("coord: storing shard %s: %w", key, err)
	}
	out.ShardKey = key
	// The shard blob supersedes the checkpoint; losing this Delete only
	// leaves a stale-but-consistent object behind.
	_ = cfg.Store.Delete(ctx, ckptKey)
	logf("emitted:     %s @ %s", key, cfg.Store.URL())
	return out, nil
}
