package coord

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
)

// fakeClock is an injectable lease clock tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func newTestLeases(store blobstore.Store, owner string, clk *fakeClock) *Leases {
	l := NewLeases(store, owner, time.Minute)
	l.now = clk.now
	n := 0
	l.nonce = func() string { n++; return fmt.Sprintf("%s-nonce-%d", owner, n) }
	return l
}

func TestLeaseClaimRenewRelease(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newTestLeases(store, "alpha", clk)
	b := newTestLeases(store, "beta", clk)

	// Fresh claim.
	rec, err := a.Claim(ctx, "eos-1-50")
	if err != nil {
		t.Fatalf("fresh claim: %v", err)
	}
	if rec.Attempt != 1 || rec.Owner != "alpha" || !rec.Deadline.Equal(clk.t.Add(time.Minute)) {
		t.Fatalf("claimed record %+v", rec)
	}

	// A live lease refuses another owner.
	var held *ErrHeld
	if _, err := b.Claim(ctx, "eos-1-50"); !errors.As(err, &held) {
		t.Fatalf("claim of held lease: %v, want *ErrHeld", err)
	}
	if held.Owner != "alpha" {
		t.Fatalf("ErrHeld names %q, want alpha", held.Owner)
	}

	// The same owner reclaims its own live lease (crash restart) with the
	// attempt count bumped.
	rec2, err := a.Claim(ctx, "eos-1-50")
	if err != nil {
		t.Fatalf("self reclaim: %v", err)
	}
	if rec2.Attempt != 2 || rec2.Nonce == rec.Nonce {
		t.Fatalf("self reclaim record %+v (old nonce %s)", rec2, rec.Nonce)
	}

	// Renew extends the deadline.
	clk.t = clk.t.Add(30 * time.Second)
	if err := a.Renew(ctx, &rec2); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if !rec2.Deadline.Equal(clk.t.Add(time.Minute)) {
		t.Fatalf("renewed deadline %v, want %v", rec2.Deadline, clk.t.Add(time.Minute))
	}

	// After expiry another owner reclaims, attempt count preserved+bumped.
	clk.t = clk.t.Add(2 * time.Minute)
	rec3, err := b.Claim(ctx, "eos-1-50")
	if err != nil {
		t.Fatalf("stale reclaim: %v", err)
	}
	if rec3.Owner != "beta" || rec3.Attempt != 3 {
		t.Fatalf("reclaimed record %+v", rec3)
	}

	// The previous holder's renew now reports the loss.
	var lost *ErrLost
	if err := a.Renew(ctx, &rec2); !errors.As(err, &lost) {
		t.Fatalf("renew of lost lease: %v, want *ErrLost", err)
	}
	if lost.Owner != "beta" {
		t.Fatalf("ErrLost names %q, want beta", lost.Owner)
	}

	// Releasing a lost lease is a no-op; releasing a held one deletes it.
	if err := a.Release(ctx, rec2); err != nil {
		t.Fatalf("release of lost lease: %v", err)
	}
	if _, ok, _ := b.get(ctx, "eos-1-50"); !ok {
		t.Fatal("lost-lease release deleted the reclaimer's record")
	}
	if err := b.Release(ctx, rec3); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, ok, _ := b.get(ctx, "eos-1-50"); ok {
		t.Fatal("release left the record behind")
	}

	// A released lease claims fresh again.
	rec4, err := a.Claim(ctx, "eos-1-50")
	if err != nil || rec4.Attempt != 1 {
		t.Fatalf("claim after release: %+v, %v", rec4, err)
	}
}

func TestLeaseCorruptRecordIsLoud(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newTestLeases(store, "alpha", clk)
	if err := store.Put(ctx, leaseKey("eos-1-50"), []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	// A mangled record must not be silently reclaimed as stale: it could
	// shadow a live owner.
	if _, err := l.Claim(ctx, "eos-1-50"); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("claim over corrupt lease: %v, want a loud corrupt-record error", err)
	}
}

func TestLeaseLostRace(t *testing.T) {
	ctx := context.Background()
	store := blobstore.NewMemory()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := newTestLeases(store, "alpha", clk)
	b := newTestLeases(store, "beta", clk)

	rec, err := a.Claim(ctx, "task")
	if err != nil {
		t.Fatal(err)
	}
	// beta's write lands after alpha's (simulated by a direct overwrite);
	// alpha's next renew must detect the foreign nonce.
	clk.t = clk.t.Add(2 * time.Minute) // alpha expired
	if _, err := b.Claim(ctx, "task"); err != nil {
		t.Fatal(err)
	}
	var lost *ErrLost
	if err := a.Renew(ctx, &rec); !errors.As(err, &lost) {
		t.Fatalf("renew after overwrite: %v, want *ErrLost", err)
	}
}
