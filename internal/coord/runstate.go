// Run state: the coordinator's own crash-recovery checkpoint. Workers
// already checkpoint their aggregates (worker.go); this file gives the
// coordinator the same property — a `run/<chain>.state` record in the
// blob store, rewritten after every task transition, carrying everything a
// replacement coordinator needs to resume mid-run: the pinned block range
// (so a takeover never re-pins head and re-cuts different slices), each
// task's status and newest fence, and which shards already validated.
//
// The active coordinator is elected through a run-level lease
// (lease/run-<chain>.lease) on the ordinary Leases protocol; the election
// attempt count is the coordinator epoch, exported on /v1/progress as
// X-Coord-Epoch. Standbys poll the lease and take over on expiry by
// loading this state.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"time"

	"repro/internal/blobstore"
)

// runStatePrefix keeps run-state records out of the way of shard blobs,
// checkpoints and leases in a shared store.
const runStatePrefix = "run/"

// runStateVersion stamps the record format so a future coordinator can
// refuse records it does not understand instead of misreading them.
const runStateVersion = 1

// RunStateKey names the run-state record for a chain.
func RunStateKey(chain string) string { return runStatePrefix + chain + ".state" }

// RunLeaseTask is the lease identity of the run-level election for a
// chain — "run-eos", stored at lease/run-eos.lease. The "run-" prefix
// cannot collide with task leases, whose names embed a block range.
func RunLeaseTask(chain string) string { return "run-" + chain }

// Task lifecycle states recorded in run state.
const (
	// TaskPending: not yet claimed by the run.
	TaskPending = "pending"
	// TaskRunning: lease claimed, worker attempts in flight.
	TaskRunning = "running"
	// TaskDone: shard blob validated against the slice.
	TaskDone = "done"
	// TaskFailed: retries exhausted or a permanent refusal.
	TaskFailed = "failed"
)

// TaskRecord is one task's entry in the run state.
type TaskRecord struct {
	Index int    `json:"index"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	State string `json:"state"`
	// Fence is the newest lease attempt granted for this task — the fence
	// token its shard must carry at merge time. It only grows: a resumed
	// run inherits the old floor and raises it on reclaim.
	Fence uint64 `json:"fence,omitempty"`
	// Attempts counts worker launches across all coordinators of this run.
	Attempts int `json:"attempts,omitempty"`
	// ShardKey names the validated blob once State is done.
	ShardKey string `json:"shard_key,omitempty"`
	// Error carries the terminal error once State is failed.
	Error string `json:"error,omitempty"`
}

// RunState is the JSON record a coordinator checkpoints after every task
// transition. Tasks is keyed by task name (Task.Name).
type RunState struct {
	Version int    `json:"version"`
	Chain   string `json:"chain"`
	// From, To, Shards pin the partition. A takeover adopts them verbatim:
	// re-resolving head mid-run would cut different slices and orphan every
	// emitted shard.
	From   int64 `json:"from"`
	To     int64 `json:"to"`
	Shards int   `json:"shards"`
	// Owner and Epoch identify the coordinator that wrote the record and
	// which election attempt it ran under.
	Owner     string                 `json:"owner"`
	Epoch     int                    `json:"epoch"`
	UpdatedAt time.Time              `json:"updated_at"`
	Tasks     map[string]*TaskRecord `json:"tasks"`
}

// FenceFloors extracts the per-task fence floor for the final merge: the
// newest lease attempt each task was granted, keyed by task name.
func (s *RunState) FenceFloors() map[string]uint64 {
	floors := make(map[string]uint64, len(s.Tasks))
	for name, rec := range s.Tasks {
		if rec.Fence > 0 {
			floors[name] = rec.Fence
		}
	}
	return floors
}

// SaveRunState writes the record, stamping UpdatedAt. The write is a
// plain Put — last writer wins, which is safe because the run lease
// ensures one active coordinator per chain and a standby only writes
// after winning the election.
func SaveRunState(ctx context.Context, store blobstore.Store, s *RunState) error {
	s.Version = runStateVersion
	s.UpdatedAt = time.Now().UTC()
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("coord: encoding run state for %s: %v", s.Chain, err)
	}
	if err := store.Put(ctx, RunStateKey(s.Chain), raw); err != nil {
		return fmt.Errorf("coord: writing run state for %s: %w", s.Chain, err)
	}
	return nil
}

// LoadRunState fetches a chain's run state; ok=false means no record. A
// torn or garbage record is a loud error, not a fresh start: silently
// re-cutting the range could orphan every shard of the interrupted run.
func LoadRunState(ctx context.Context, store blobstore.Store, chain string) (*RunState, bool, error) {
	raw, err := store.Get(ctx, RunStateKey(chain))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("coord: reading run state for %s: %w", chain, err)
	}
	var s RunState
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, false, fmt.Errorf("coord: run state for %s is corrupt: %v", chain, err)
	}
	if s.Version > runStateVersion {
		return nil, false, fmt.Errorf("coord: run state for %s has version %d, newer than this binary understands (%d)", chain, s.Version, runStateVersion)
	}
	if s.Chain != chain {
		return nil, false, fmt.Errorf("coord: run state at %s names chain %q, want %q", RunStateKey(chain), s.Chain, chain)
	}
	return &s, true, nil
}

// DeleteRunState removes a chain's run-state record — the last act of a
// fully successful run. A missing record is a no-op: the active may have
// already deleted it before dying.
func DeleteRunState(ctx context.Context, store blobstore.Store, chain string) error {
	err := store.Delete(ctx, RunStateKey(chain))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("coord: deleting run state for %s: %w", chain, err)
	}
	return nil
}

// FenceIndex reconstructs the per-task fence floors a store's lease
// lineage implies, for merges that run outside a live coordinator
// (cmd/merge): every surviving lease record contributes its task's
// attempt count, and every run-state record contributes each task's
// recorded fence — whichever is newest wins. Released leases leave no
// record, which is why run state (kept until a run fully succeeds, and
// deleted only after its shards validated under their final fences)
// carries the floors that matter; a store holding neither is an
// uncoordinated crawl and yields an empty index, leaving unfenced shards
// unconstrained. Corrupt records are loud, never skipped: a mangled
// lease could be hiding the very floor that would expose a zombie shard.
func FenceIndex(ctx context.Context, store blobstore.Store) (map[string]uint64, error) {
	index := make(map[string]uint64)
	raise := func(task string, fence uint64) {
		if fence > index[task] {
			index[task] = fence
		}
	}
	leaseKeys, err := store.List(ctx, leasePrefix)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("coord: listing leases at %s: %w", store.URL(), err)
	}
	for _, key := range leaseKeys {
		if !strings.HasSuffix(key, ".lease") {
			continue
		}
		raw, err := store.Get(ctx, key)
		if err != nil {
			return nil, fmt.Errorf("coord: reading lease %s at %s: %w", key, store.URL(), err)
		}
		var rec LeaseRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("coord: lease %s at %s is corrupt: %v", key, store.URL(), err)
		}
		if rec.Attempt > 0 {
			raise(rec.Task, uint64(rec.Attempt))
		}
	}
	stateKeys, err := store.List(ctx, runStatePrefix)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("coord: listing run states at %s: %w", store.URL(), err)
	}
	for _, key := range stateKeys {
		if !strings.HasSuffix(key, ".state") {
			continue
		}
		chain := strings.TrimSuffix(strings.TrimPrefix(key, runStatePrefix), ".state")
		s, ok, err := LoadRunState(ctx, store, chain)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // deleted between List and Get: the run just finished
		}
		for task, fence := range s.FenceFloors() {
			raise(task, fence)
		}
	}
	return index, nil
}

// Await polls Claim until the lease is won or ctx ends. *ErrHeld sleeps
// one poll interval and tries again — the standby election loop; transient
// store errors are retried the same way, since a standby has nothing
// better to do than keep watching. The poll interval defaults to a third
// of the TTL, the same cadence holders renew at.
func (l *Leases) Await(ctx context.Context, task string, poll time.Duration) (LeaseRecord, error) {
	if poll <= 0 {
		poll = l.ttl / 3
	}
	for {
		rec, err := l.Claim(ctx, task)
		if err == nil {
			return rec, nil
		}
		if ctx.Err() != nil {
			return LeaseRecord{}, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return LeaseRecord{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}
