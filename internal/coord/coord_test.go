package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/retry"
	"repro/internal/rpcserve"
)

// eosFixture serves a deterministic EOS chainsim over HTTP and counts
// get_block requests, optionally cancelling a context after the limit-th
// one — the in-process stand-in for a worker killed mid-crawl.
type eosFixture struct {
	srv *httptest.Server

	mu        sync.Mutex
	fetched   map[int64]int
	served    int
	limit     int
	interrupt context.CancelFunc
}

func newEOSFixture(t *testing.T, nBlocks int) *eosFixture {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}

	f := &eosFixture{fetched: make(map[int64]int)}
	inner := rpcserve.NewEOSServer(c)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			body, _ := io.ReadAll(r.Body)
			var req struct {
				Num json.Number `json:"block_num_or_id"`
			}
			json.Unmarshal(body, &req)
			num, _ := req.Num.Int64()
			f.mu.Lock()
			f.fetched[num]++
			f.served++
			if f.limit > 0 && f.served == f.limit && f.interrupt != nil {
				f.interrupt()
			}
			f.mu.Unlock()
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *eosFixture) armInterrupt(after int, cancel context.CancelFunc) {
	f.mu.Lock()
	f.served, f.limit, f.interrupt = 0, after, cancel
	f.mu.Unlock()
}

func (f *eosFixture) kit(t *testing.T) core.StatsKit {
	t.Helper()
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return kit
}

func (f *eosFixture) fetcher() collect.BlockFetcher { return collect.NewEOSClient(f.srv.URL) }

// head resolves the chain head once, the way a coordinator pins ranges.
func (f *eosFixture) head(t *testing.T) int64 {
	t.Helper()
	h, err := f.fetcher().Head(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// oracle crawls [1, to] in one process and renders the figures — the
// byte-identity reference every distributed result is diffed against.
func (f *eosFixture) oracle(t *testing.T, to int64) string {
	t.Helper()
	kit := f.kit(t)
	_, _, err := core.IngestCrawl(context.Background(), f.fetcher(),
		collect.CrawlConfig{From: 1, To: to, Workers: 4},
		kit.Decoder, core.IngestConfig{})
	if err != nil {
		t.Fatalf("oracle crawl: %v", err)
	}
	return kit.Summarize().Render()
}

// TestRunShardCrawlKillResume: a worker killed mid-crawl (fresh process =
// fresh kit) resumes from its blob-store checkpoint, refetches only the
// interrupted chunk, and the finished shard is byte-identical to an
// uninterrupted worker's.
func TestRunShardCrawlKillResume(t *testing.T) {
	const blocks = 60
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()

	mkCfg := func(kit core.StatsKit) CrawlerConfig {
		return CrawlerConfig{
			Kit: kit, Fetcher: fx.fetcher(),
			From: 1, To: head, Store: store,
			CheckpointEvery: 10, Workers: 2,
		}
	}

	// First run: killed after ~25 fetches. The kit dies with the run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx.armInterrupt(25, cancel)
	if _, err := RunShardCrawl(ctx, mkCfg(fx.kit(t))); err == nil {
		t.Fatal("interrupted run reported success")
	}
	if _, err := store.Get(context.Background(), CheckpointKey("eos", 1, head)); err != nil {
		t.Fatalf("no checkpoint survived the kill: %v", err)
	}

	// Second run: fresh kit (the crash lost all memory), same store.
	fx.armInterrupt(0, nil)
	fx.mu.Lock()
	fx.fetched = make(map[int64]int)
	fx.mu.Unlock()
	out, err := RunShardCrawl(context.Background(), mkCfg(fx.kit(t)))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !out.Resumed.Known() {
		t.Fatal("second run did not resume from the checkpoint")
	}

	// Zero double-ingest: the resumed run must not have refetched any
	// block of a checkpointed chunk.
	fx.mu.Lock()
	for num := out.Resumed.From; num <= out.Resumed.To; num++ {
		if fx.fetched[num] > 0 {
			fx.mu.Unlock()
			t.Fatalf("resume refetched block %d, inside the checkpointed range %s", num, out.Resumed)
		}
	}
	fx.mu.Unlock()

	// The checkpoint is gone and the shard matches an uninterrupted run.
	if _, err := store.Get(context.Background(), CheckpointKey("eos", 1, head)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("finished run left its checkpoint behind (err %v)", err)
	}
	raw, err := store.Get(context.Background(), out.ShardKey)
	if err != nil {
		t.Fatalf("emitted shard missing: %v", err)
	}
	st, err := core.DecodeShard(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Summary().Render(), fx.oracle(t, head); got != want {
		t.Errorf("resumed shard figures differ from oracle:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunShardCrawlTornCheckpoint is the crash-window property test: a
// checkpoint blob truncated at EVERY byte boundary either refuses loudly
// or (at full length) loads intact. No truncation may silently start the
// slice over — that is how blocks get double-counted.
func TestRunShardCrawlTornCheckpoint(t *testing.T) {
	const blocks = 30
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()

	// Produce a real checkpoint by interrupting a chunked run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fx.armInterrupt(15, cancel)
	cfg := CrawlerConfig{
		Kit: fx.kit(t), Fetcher: fx.fetcher(),
		From: 1, To: head, Store: store,
		CheckpointEvery: 8, Workers: 2,
	}
	if _, err := RunShardCrawl(ctx, cfg); err == nil {
		t.Fatal("interrupted run reported success")
	}
	key := CheckpointKey("eos", 1, head)
	intact, err := store.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("no checkpoint to tear: %v", err)
	}

	for cut := 0; cut < len(intact); cut++ {
		if err := store.Put(context.Background(), key, intact[:cut]); err != nil {
			t.Fatal(err)
		}
		// The fetcher is never reached: the torn checkpoint must stop the
		// worker before any crawling.
		_, err := RunShardCrawl(context.Background(), CrawlerConfig{
			Kit: fx.kit(t), Fetcher: nil,
			From: 1, To: head, Store: store,
			CheckpointEvery: 8,
		})
		if err == nil {
			t.Fatalf("checkpoint torn at byte %d/%d loaded silently", cut, len(intact))
		}
		if !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("checkpoint torn at byte %d: error %v does not refuse loudly", cut, err)
		}
	}
}

// TestRunShardCrawlForeignCheckpointRefused: a checkpoint covering a
// range outside the worker's slice (operator error: two slices sharing a
// key) is refused, not merged.
func TestRunShardCrawlForeignCheckpoint(t *testing.T) {
	fx := newEOSFixture(t, 10)
	head := fx.head(t)
	store := blobstore.NewMemory()

	// Encode a state claiming a DIFFERENT slice under this slice's key.
	kit := fx.kit(t)
	st := kit.State()
	st.SetCovered(core.BlockRange{From: head + 5, To: head + 20})
	var buf bytes.Buffer
	if err := st.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(context.Background(), CheckpointKey("eos", 1, head), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, err := RunShardCrawl(context.Background(), CrawlerConfig{
		Kit: fx.kit(t), Fetcher: nil, From: 1, To: head, Store: store,
	})
	if err == nil || !strings.Contains(err.Error(), "outside this worker's slice") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// inProcessWorker adapts RunShardCrawl to the coordinator's Run hook.
func inProcessWorker(fx *eosFixture, store blobstore.Store, every int64) func(context.Context, Task) error {
	return func(ctx context.Context, task Task) error {
		kit, err := core.NewStatsKit(task.Chain, chain.ObservationStart, 6*time.Hour)
		if err != nil {
			return err
		}
		_, rerr := RunShardCrawl(ctx, CrawlerConfig{
			Kit: kit, Fetcher: fx.fetcher(),
			From: task.From, To: task.To, Store: store,
			CheckpointEvery: every, Workers: 2,
			Fence: task.Fence,
		})
		return rerr
	}
}

// TestCoordinatorChaos is the in-process chaos harness: store faults on
// every op class plus one worker that dies mid-crawl on its first
// attempt. The coordinator must retry/resume until every slice lands and
// the merged figures must be byte-identical to the single-process oracle.
func TestCoordinatorChaos(t *testing.T) {
	const blocks = 60
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)

	faulty := blobstore.NewFaulty(blobstore.NewMemory())
	faulty.Chaos(7, 0.03)

	// Slice 2's first attempt dies mid-crawl: its context is cut after a
	// handful of blocks, losing its in-memory aggregate. Later attempts
	// run clean and must resume from the checkpoint.
	var killOnce sync.Once
	run := inProcessWorker(fx, faulty, 5)
	chaosRun := func(ctx context.Context, task Task) error {
		if task.Index == 2 {
			var killed bool
			killOnce.Do(func() {
				killed = true
				kctx, cancel := context.WithCancel(ctx)
				defer cancel()
				fx.armInterrupt(5, cancel)
				if err := run(kctx, task); err == nil {
					t.Error("killed worker attempt reported success")
				}
				fx.armInterrupt(0, nil)
			})
			if killed {
				return fmt.Errorf("worker killed (simulated SIGKILL)")
			}
		}
		return run(ctx, task)
	}

	res, err := Run(context.Background(), Config{
		Chain: "eos", From: 1, To: head, Shards: 3,
		Store:    faulty,
		Owner:    "chaos-test",
		LeaseTTL: time.Minute,
		Retry:    retry.Policy{Attempts: 8, Base: time.Millisecond},
		Run:      chaosRun,
	})
	if err != nil {
		t.Fatalf("coordinator under chaos: %v", err)
	}
	if len(res.Completed) != 3 || len(res.Failed) != 0 {
		t.Fatalf("completed %d, failed %d, want 3/0", len(res.Completed), len(res.Failed))
	}
	if !res.Report.Complete || len(res.Report.Missing) != 0 {
		t.Fatalf("complete run's gap report: %+v", res.Report)
	}
	if got, want := res.Merged.Summary().Render(), fx.oracle(t, head); got != want {
		t.Errorf("chaos-merged figures differ from oracle:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Leases were all released (tolerate one injected fault on this List).
	if keys, lerr := faulty.List(context.Background(), leasePrefix); lerr == nil && len(keys) != 0 {
		t.Errorf("leases left behind: %v", keys)
	}
}

// TestCoordinatorGapReport: a slice whose worker fails every attempt
// exhausts its retries; the run errors but still merges the completed
// slices and reports exactly the missing range.
func TestCoordinatorGapReport(t *testing.T) {
	const blocks = 30
	fx := newEOSFixture(t, blocks)
	head := fx.head(t)
	store := blobstore.NewMemory()

	run := inProcessWorker(fx, store, 0)
	res, err := Run(context.Background(), Config{
		Chain: "eos", From: 1, To: head, Shards: 3,
		Store: store,
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run: func(ctx context.Context, task Task) error {
			if task.Index == 2 {
				return fmt.Errorf("endpoint permanently dark")
			}
			return run(ctx, task)
		},
	})
	if err == nil {
		t.Fatal("run with a dead slice reported success")
	}
	if len(res.Completed) != 2 || len(res.Failed) != 1 {
		t.Fatalf("completed %d, failed %d, want 2/1", len(res.Completed), len(res.Failed))
	}
	if res.Merged == nil {
		t.Fatal("no partial figures despite 2 completed slices")
	}
	failed := res.Failed[0].Task
	if res.Report.Complete || len(res.Report.Missing) != 1 {
		t.Fatalf("gap report: %+v", res.Report)
	}
	if g := res.Report.Missing[0]; g.From != failed.From || g.To != failed.To {
		t.Errorf("gap [%d, %d], want the failed slice [%d, %d]", g.From, g.To, failed.From, failed.To)
	}
	if len(res.Report.Failures) != 1 || !strings.Contains(res.Report.Failures[0].Error, "permanently dark") {
		t.Errorf("report failures: %+v", res.Report.Failures)
	}

	// The report is valid JSON with the documented shape.
	var buf bytes.Buffer
	if err := res.Report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round GapReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("gap report does not round-trip: %v\n%s", err, buf.String())
	}
	if round.Chain != "eos" || round.Complete || len(round.Missing) != 1 {
		t.Errorf("round-tripped report: %+v", round)
	}
}

// TestCoordinatorAllSlicesFail: nothing completes, the report covers the
// whole range, and no merged state is claimed.
func TestCoordinatorAllSlicesFail(t *testing.T) {
	store := blobstore.NewMemory()
	res, err := Run(context.Background(), Config{
		Chain: "eos", From: 1, To: 90, Shards: 3,
		Store: store,
		Retry: retry.Policy{Attempts: 2, Base: time.Millisecond},
		Run: func(ctx context.Context, task Task) error {
			return fmt.Errorf("no endpoint")
		},
	})
	if err == nil {
		t.Fatal("total failure reported success")
	}
	if res.Merged != nil || len(res.Completed) != 0 {
		t.Fatalf("result claims progress: %+v", res)
	}
	if len(res.Report.Missing) != 1 || res.Report.Missing[0].From != 1 || res.Report.Missing[0].To != 90 {
		t.Fatalf("gap report should cover the whole range: %+v", res.Report)
	}
}
