package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/blobstore"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/retry"
	"repro/internal/wire"
)

// Task is one shard slice of the pinned block range: slice Index of N
// covers [From, To]. Fence is the lease attempt the task currently runs
// under — the token its worker must stamp into the emitted shard.
type Task struct {
	Index, N int
	Chain    string
	From, To int64
	Fence    uint64
}

// Name is the task's lease identity and log label —
// "eos-0000000001-0000000050", matching the shard key minus suffix.
func (t Task) Name() string {
	return fmt.Sprintf("%s-%010d-%010d", t.Chain, t.From, t.To)
}

// TaskFailure records a slice that exhausted its retries (or hit a
// permanent error), with the terminal error.
type TaskFailure struct {
	Task Task
	Err  error
}

// Config parameterizes a coordinator run.
type Config struct {
	// Chain names the chain; From and To pin the full block range. To must
	// be concrete — the caller resolves head ONCE so every slice is cut
	// from the same span.
	Chain    string
	From, To int64
	// Shards is how many slices to cut the range into.
	Shards int
	// Store is the shared blob store: leases, worker checkpoints and shard
	// blobs all live in it.
	Store blobstore.Store
	// Owner names this coordinator in lease records (default
	// "coordinator").
	Owner string
	// LeaseTTL bounds how long a claimed slice may go without renewal
	// before another coordinator may reclaim it (default 2 minutes).
	LeaseTTL time.Duration
	// Retry is the per-slice relaunch policy: each attempt is one full
	// worker run. Its zero value means the retry package defaults
	// (4 attempts, 50 ms base backoff).
	Retry retry.Policy
	// Parallel bounds how many slices run workers concurrently (default:
	// all of them).
	Parallel int
	// Run launches one worker attempt for a task and blocks until it
	// exits. cmd/coordinate execs a subprocess (so chaos tests can SIGKILL
	// it); tests may run in-process. The attempt succeeded only if the
	// task's shard blob is then present and decodable — Run's nil error
	// alone is not believed.
	Run func(ctx context.Context, t Task) error
	// Log, when set, receives progress lines.
	Log io.Writer

	// PinHead, when set, resolves the chain head lazily: it is consulted
	// only when To is zero AND no run state exists — a takeover adopts the
	// interrupted run's pinned range instead of re-pinning, so every slice
	// is cut from the same span across coordinator generations.
	PinHead func(ctx context.Context) (int64, error)
	// RunLease, when set, is a run-level lease the caller already won
	// (a standby's Await) — Run adopts it instead of claiming its own.
	RunLease *LeaseRecord
	// Progress, when set, receives an immutable snapshot after every task
	// transition — the feed behind GET /v1/progress.
	Progress *ProgressTracker
	// AfterTaskDone, when set, runs after a task transitions to done and
	// the run state checkpoint for it is written. The chaos harness uses
	// it to SIGKILL the active coordinator at a known-recoverable instant.
	AfterTaskDone func(t Task)
}

// Result is a coordinator run's outcome. Merged/Summary are present
// whenever at least one shard blob validated — even when slices failed —
// so a degraded run still renders partial figures next to its gap report.
type Result struct {
	Tasks     []Task
	Completed []Task
	Failed    []TaskFailure
	Merged    core.ShardState
	Report    GapReport
	// Epoch is the run-level election attempt this coordinator ran under.
	Epoch int
	// Resumed reports whether the run picked up an interrupted
	// coordinator's checkpointed state instead of starting fresh.
	Resumed bool
}

// GapReport is the machine-readable account of what a degraded run is
// missing: the pinned range, the block ranges no validated shard covers,
// and per-failure detail. Complete runs carry an empty Missing list, so
// downstream tooling can always parse the same shape.
type GapReport struct {
	Chain string `json:"chain"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	// Complete is true when every slice's shard validated and Missing is
	// empty.
	Complete bool `json:"complete"`
	// Missing lists the block ranges not covered by any validated shard,
	// ascending and non-adjacent.
	Missing []GapRange `json:"missing,omitempty"`
	// Failures names each failed slice and its terminal error.
	Failures []GapFailure `json:"failures,omitempty"`
}

// GapRange is one missing block range, inclusive on both ends.
type GapRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// GapFailure names one failed slice.
type GapFailure struct {
	Task  string `json:"task"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	Error string `json:"error"`
}

// WriteJSON renders the report as indented JSON.
func (r GapReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Cut slices [cfg.From, cfg.To] into cfg.Shards tasks using the same
// tiling as cmd/crawl's -shard flag, so a coordinator-driven crawl and a
// hand-driven one partition identically.
func (cfg Config) Cut() ([]Task, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: %d shards is not a partition", cfg.Shards)
	}
	tasks := make([]Task, 0, cfg.Shards)
	for i := 1; i <= cfg.Shards; i++ {
		spec := cli.ShardSpec{I: i, N: cfg.Shards}
		lo, hi, err := spec.Cut(cfg.From, cfg.To)
		if err != nil {
			return nil, fmt.Errorf("coord: %v", err)
		}
		tasks = append(tasks, Task{Index: i, N: cfg.Shards, Chain: cfg.Chain, From: lo, To: hi})
	}
	return tasks, nil
}

// Run drives the whole coordinated crawl: elect, resume-or-cut, claim,
// launch/relaunch, validate-as-they-arrive, merge. It returns a non-nil
// Result whenever the run got far enough to cut tasks; err is non-nil
// when ANY slice failed terminally (the caller decides whether partial
// figures are acceptable) or when the final merge itself refused.
//
// High availability: Run first wins the chain's run-level lease (or
// adopts cfg.RunLease, a standby's already-won election), checkpoints a
// run-state record after every task transition, and on startup adopts an
// interrupted run's checkpoint — pinned range, validated shards, fence
// floors — instead of starting over. The run state is deleted only after
// a fully successful merge; a partial run leaves it behind so the next
// coordinator re-attempts exactly the failed slices.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Owner == "" {
		cfg.Owner = "coordinator"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	leases := NewLeases(cfg.Store, cfg.Owner, cfg.LeaseTTL)

	// Election: exactly one active coordinator per chain. A held lease is
	// retryable on the same schedule as everything else — the holder may
	// die and expire. The election attempt count is the coordinator epoch:
	// it grows monotonically across takeovers, so progress pollers can
	// detect a change of regime from the X-Coord-Epoch header alone.
	var runRec LeaseRecord
	if cfg.RunLease != nil {
		runRec = *cfg.RunLease
	} else {
		claim := cfg.Retry
		claim.Retryable = func(err error) bool {
			var held *ErrHeld
			if errors.As(err, &held) {
				return true
			}
			return retry.DefaultRetryable(err)
		}
		err := claim.Do(ctx, "claim "+RunLeaseTask(cfg.Chain), func(ctx context.Context) error {
			var cerr error
			runRec, cerr = leases.Claim(ctx, RunLeaseTask(cfg.Chain))
			return cerr
		})
		if err != nil {
			return nil, err
		}
	}
	epoch := runRec.Attempt
	logf("coordinator %s elected active for %s (epoch %d)", cfg.Owner, cfg.Chain, epoch)

	// Keep the run lease renewed. Losing it means a standby decided we
	// were dead and took over: every in-flight worker must stop, and —
	// crucially — we must stop writing run state, which the cancellation
	// enforces because every checkpoint Put runs under rctx.
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	runRenewDone := keepRenewed(rctx, leases, &runRec, cfg.LeaseTTL, cancel, RunLeaseTask(cfg.Chain), logf)
	defer func() {
		cancel(nil)
		<-runRenewDone
		_ = leases.Release(context.WithoutCancel(ctx), runRec)
	}()

	// Resume or pin: an interrupted run's checkpoint wins over fresh
	// configuration — re-resolving head mid-run would cut different slices
	// and orphan every emitted shard. A caller that explicitly pinned a
	// DIFFERENT range than the checkpoint gets a loud conflict, not a
	// silent adoption.
	prev, resumed, err := LoadRunState(rctx, cfg.Store, cfg.Chain)
	if err != nil {
		return nil, err
	}
	if resumed {
		if cfg.To != 0 && (prev.From != cfg.From || prev.To != cfg.To || prev.Shards != cfg.Shards) {
			return nil, fmt.Errorf("coord: run state for %s pins [%d, %d] in %d shards, but this run was configured for [%d, %d] in %d; delete %s to abandon the interrupted run",
				cfg.Chain, prev.From, prev.To, prev.Shards, cfg.From, cfg.To, cfg.Shards, RunStateKey(cfg.Chain))
		}
		cfg.From, cfg.To, cfg.Shards = prev.From, prev.To, prev.Shards
		logf("resuming interrupted run for %s: [%d, %d] in %d shards (previous coordinator %s, epoch %d)",
			cfg.Chain, cfg.From, cfg.To, cfg.Shards, prev.Owner, prev.Epoch)
	} else if cfg.To == 0 {
		if cfg.PinHead == nil {
			return nil, fmt.Errorf("coord: To is zero, no run state to resume and no PinHead resolver configured")
		}
		head, err := cfg.PinHead(rctx)
		if err != nil {
			return nil, fmt.Errorf("coord: pinning %s head: %w", cfg.Chain, err)
		}
		cfg.To = head
	}

	tasks, err := cfg.Cut()
	if err != nil {
		return nil, err
	}
	res := &Result{Tasks: tasks, Epoch: epoch, Resumed: resumed}

	state := prev
	if state == nil {
		state = &RunState{Chain: cfg.Chain, Tasks: make(map[string]*TaskRecord, len(tasks))}
	}
	state.From, state.To, state.Shards = cfg.From, cfg.To, cfg.Shards
	state.Owner, state.Epoch = cfg.Owner, epoch
	for _, t := range tasks {
		if state.Tasks[t.Name()] == nil {
			state.Tasks[t.Name()] = &TaskRecord{Index: t.Index, From: t.From, To: t.To, State: TaskPending}
		}
	}
	tr := &runTracker{store: cfg.Store, state: state, progress: cfg.Progress, logf: logf}
	// The first checkpoint pins the range durably before any lease is
	// claimed — it must land, or a takeover could re-pin a moved head.
	if err := cfg.Retry.Do(rctx, "checkpoint run state", tr.checkpoint); err != nil {
		return res, err
	}

	parallel := cfg.Parallel
	if parallel <= 0 || parallel > len(tasks) {
		parallel = len(tasks)
	}
	sem := make(chan struct{}, parallel)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, t := range tasks {
		wg.Add(1)
		go func(t Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			err := runTask(rctx, cfg, leases, t, tr, logf)
			if err != nil {
				tr.transition(rctx, t.Name(), func(r *TaskRecord) {
					r.State = TaskFailed
					r.Error = err.Error()
				})
			} else {
				tr.transition(rctx, t.Name(), func(r *TaskRecord) {
					r.State = TaskDone
					r.ShardKey = t.Name() + ".shard"
					r.Error = ""
				})
			}
			mu.Lock()
			if err != nil {
				logf("slice %d/%d [%d, %d]: FAILED: %v", t.Index, t.N, t.From, t.To, err)
				res.Failed = append(res.Failed, TaskFailure{Task: t, Err: err})
			} else {
				logf("slice %d/%d [%d, %d]: shard validated", t.Index, t.N, t.From, t.To)
				res.Completed = append(res.Completed, t)
			}
			mu.Unlock()
			if err == nil && cfg.AfterTaskDone != nil {
				// After the done-transition checkpoint is written: killing
				// the coordinator here is exactly the recoverable instant
				// the chaos harness wants to hit.
				cfg.AfterTaskDone(t)
			}
		}(t)
	}
	wg.Wait()
	sort.Slice(res.Completed, func(i, j int) bool { return res.Completed[i].Index < res.Completed[j].Index })
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Task.Index < res.Failed[j].Task.Index })

	// Final fold: load every emitted shard and merge, tolerating gaps —
	// failed slices left holes the report accounts for. Overlaps,
	// corruption and stale fences stay loud (figures would be WRONG, not
	// just partial), so merge refusals are marked Permanent; load failures
	// against a flaky store retry on the same policy as everything else.
	// The fence floors come from the run state, which outlives released
	// task leases — a zombie's stale emission is refused even after the
	// winning lease record is long deleted.
	var gaps []core.BlockRange
	if len(res.Completed) > 0 {
		floors := tr.fenceFloors()
		lerr := cfg.Retry.Do(rctx, "merge shards", func(ctx context.Context) error {
			blobs, err := core.LoadShardBlobsFrom(ctx, cfg.Store)
			if err != nil {
				return err
			}
			merged, interior, err := core.MergeShardBlobsFenced(blobs, true, floors)
			if err != nil {
				return retry.Permanent(err)
			}
			res.Merged, gaps = merged, interior
			return nil
		})
		if lerr != nil {
			return res, lerr
		}
		// Edge gaps: blocks of the pinned range before the first or after
		// the last validated shard.
		cov := res.Merged.Covered()
		if cov.From > cfg.From {
			gaps = append([]core.BlockRange{{From: cfg.From, To: cov.From - 1}}, gaps...)
		}
		if cov.To < cfg.To {
			gaps = append(gaps, core.BlockRange{From: cov.To + 1, To: cfg.To})
		}
	} else {
		// No slice completed — nothing to merge; the report still renders,
		// with the whole range missing.
		gaps = []core.BlockRange{{From: cfg.From, To: cfg.To}}
	}

	res.Report = GapReport{
		Chain:    cfg.Chain,
		From:     cfg.From,
		To:       cfg.To,
		Complete: len(res.Failed) == 0 && len(gaps) == 0,
	}
	for _, g := range gaps {
		res.Report.Missing = append(res.Report.Missing, GapRange{From: g.From, To: g.To})
	}
	for _, f := range res.Failed {
		res.Report.Failures = append(res.Report.Failures, GapFailure{
			Task: f.Task.Name(), From: f.Task.From, To: f.Task.To, Error: f.Err.Error(),
		})
	}
	if len(res.Failed) > 0 {
		return res, fmt.Errorf("coord: %d of %d slices failed; merged figures are partial (see gap report)", len(res.Failed), len(tasks))
	}
	if len(gaps) > 0 {
		return res, fmt.Errorf("coord: merged shards leave %d gap(s) in [%d, %d]; figures are partial (see gap report)", len(gaps), cfg.From, cfg.To)
	}
	// Fully successful: retire the run state so the next run of this chain
	// starts fresh. A partial run deliberately leaves it behind — the next
	// coordinator resumes and re-attempts exactly the failed slices.
	if err := cfg.Retry.Do(rctx, "retire run state", func(ctx context.Context) error {
		return DeleteRunState(ctx, cfg.Store, cfg.Chain)
	}); err != nil {
		return res, err
	}
	return res, nil
}

// keepRenewed renews rec at TTL/3 until ctx ends, from a goroutine whose
// done channel it returns. Losing the lease cancels the context with the
// loss as cause — the holder must abandon the work; transient renew
// failures are logged (a store brown-out during a long run must be
// visible) and absorbed by the TTL, which survives a few missed renewals.
func keepRenewed(ctx context.Context, leases *Leases, rec *LeaseRecord, ttl time.Duration, cancel context.CancelCauseFunc, name string, logf func(string, ...any)) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if err := leases.Renew(ctx, rec); err != nil {
					var lost *ErrLost
					if errors.As(err, &lost) {
						cancel(err)
						return
					}
					logf("lease %s: renew failed (transient): %v", name, err)
				}
			}
		}
	}()
	return done
}

// runTracker serializes run-state mutation, checkpointing and progress
// publication. Every transition rewrites the FULL state blob, so a
// checkpoint lost to a flaky store costs only takeover freshness — the
// next transition carries this one's changes too — and the tracker can
// log-and-continue instead of failing the run.
type runTracker struct {
	mu       sync.Mutex
	store    blobstore.Store
	state    *RunState
	progress *ProgressTracker
	logf     func(string, ...any)
}

// record returns a copy of a task's current record.
func (tr *runTracker) record(name string) (TaskRecord, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	r := tr.state.Tasks[name]
	if r == nil {
		return TaskRecord{}, false
	}
	return *r, true
}

// transition mutates one task's record, checkpoints and publishes.
func (tr *runTracker) transition(ctx context.Context, name string, mut func(*TaskRecord)) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if r := tr.state.Tasks[name]; r != nil {
		mut(r)
	}
	if err := SaveRunState(ctx, tr.store, tr.state); err != nil {
		tr.logf("run state checkpoint failed (transient): %v", err)
	}
	tr.publishLocked()
}

// checkpoint saves the current state, loudly — the initial pin-the-range
// write goes through here under the retry policy.
func (tr *runTracker) checkpoint(ctx context.Context) error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if err := SaveRunState(ctx, tr.store, tr.state); err != nil {
		return err
	}
	tr.publishLocked()
	return nil
}

func (tr *runTracker) publishLocked() {
	if tr.progress != nil {
		tr.progress.Publish(progressFrom(tr.state))
	}
}

// fenceFloors snapshots the per-task fence floors for the final merge.
func (tr *runTracker) fenceFloors() map[string]uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.state.FenceFloors()
}

// runTask claims a task's lease, keeps it renewed, and drives worker
// attempts under the retry policy until the task's shard blob validates
// or the budget runs out. On a resumed run, a slice the previous
// coordinator already validated is skipped — after re-validating against
// the store, because trusting a checkpoint over the store would merge a
// blob nobody checked.
func runTask(ctx context.Context, cfg Config, leases *Leases, t Task, tr *runTracker, logf func(string, ...any)) error {
	if prev, ok := tr.record(t.Name()); ok && prev.State == TaskDone {
		done := t
		done.Fence = prev.Fence
		if err := validateShard(ctx, cfg.Store, done); err == nil {
			logf("slice %d/%d [%d, %d]: validated by a previous coordinator (fence %d), skipping", t.Index, t.N, t.From, t.To, prev.Fence)
			return nil
		} else if retry.IsPermanent(err) {
			return err
		} else {
			logf("slice %d/%d [%d, %d]: checkpoint says done but shard no longer validates (%v); relaunching", t.Index, t.N, t.From, t.To, err)
		}
	}

	// Claiming itself retries: a flaky store or a stale lease from a dead
	// coordinator should not fail the slice outright. A lease held live by
	// someone else is permanent for THIS coordinator right now — but held
	// leases expire, so the claim is retried on the same schedule as
	// worker attempts, converting "held" into "reclaimable" once the
	// holder misses renewals.
	var rec LeaseRecord
	claim := cfg.Retry
	claim.Retryable = func(err error) bool {
		var held *ErrHeld
		if errors.As(err, &held) {
			return true // the holder may expire; keep polling
		}
		return retry.DefaultRetryable(err)
	}
	err := claim.Do(ctx, "claim "+t.Name(), func(ctx context.Context) error {
		var cerr error
		rec, cerr = leases.Claim(ctx, t.Name())
		return cerr
	})
	if err != nil {
		return err
	}
	// The claim's attempt count is the task's fence token: it grows on
	// every reclaim, so the shard a worker emits under this lease outranks
	// anything a superseded worker may still write.
	t.Fence = uint64(rec.Attempt)
	tr.transition(ctx, t.Name(), func(r *TaskRecord) {
		r.State = TaskRunning
		if t.Fence > r.Fence {
			r.Fence = t.Fence
		}
	})
	logf("slice %d/%d [%d, %d]: lease claimed (attempt %d, fence %d)", t.Index, t.N, t.From, t.To, rec.Attempt, t.Fence)

	// Renew the lease at TTL/3 while attempts run. Losing the lease
	// cancels the worker: a reclaimer owns the slice now.
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	renewDone := keepRenewed(rctx, leases, &rec, cfg.LeaseTTL, cancel, t.Name(), logf)
	defer func() {
		cancel(nil)
		<-renewDone
		_ = leases.Release(context.WithoutCancel(ctx), rec)
	}()

	policy := cfg.Retry
	policy.OnRetry = func(attempt int, err error, delay time.Duration) {
		logf("slice %d/%d [%d, %d]: attempt %d failed (%v), relaunching in %v", t.Index, t.N, t.From, t.To, attempt, err, delay)
	}
	if policy.Retryable == nil {
		// Worker attempts retry on everything but an explicit Permanent
		// mark. In particular a MISSING shard blob after a clean-looking
		// exit (fs.ErrNotExist, permanent under the default classification)
		// is transient here: relaunching the worker is precisely what
		// rewrites it.
		policy.Retryable = func(err error) bool { return !retry.IsPermanent(err) }
	}
	return policy.Do(rctx, "shard "+t.Name(), func(ctx context.Context) error {
		tr.transition(ctx, t.Name(), func(r *TaskRecord) { r.Attempts++ })
		if err := cfg.Run(ctx, t); err != nil {
			return err
		}
		// Believe the store, not the worker's exit status: the attempt
		// counts only if the shard blob landed, decodes, and carries our
		// fence.
		return validateShard(ctx, cfg.Store, t)
	})
}

// validateShard fetches and decodes the shard blob a completed task must
// have emitted, checking it covers exactly the task's slice and — when
// t.Fence is set — carries exactly the task's fence token. Every refusal
// names store URL and blob key, so a coordinator log points straight at
// the object to inspect.
func validateShard(ctx context.Context, store blobstore.Store, t Task) error {
	key := t.Name() + ".shard"
	raw, err := store.Get(ctx, key)
	if err != nil {
		return fmt.Errorf("coord: worker exited clean but shard %s is unreadable: %w", key, err)
	}
	fence, err := wire.ShardFence(raw)
	if err != nil {
		return fmt.Errorf("coord: shard %s at %s: %w", key, store.URL(), err)
	}
	if t.Fence != 0 {
		if fence < t.Fence {
			// A superseded worker's stale emission overwrote (or preempted)
			// our worker's blob. Retryable: relaunching under the current
			// lease rewrites the blob with the current fence.
			return fmt.Errorf("coord: shard %s at %s carries fence %d, want %d: stale emission from a superseded worker", key, store.URL(), fence, t.Fence)
		}
		if fence > t.Fence {
			// The blob outranks OUR lease lineage: someone reclaimed past us
			// and already finished the slice. We are the zombie here —
			// retrying under a stale fence could only waste work, so this
			// coordinator stands down on the slice permanently.
			return retry.Permanent(fmt.Errorf("coord: shard %s at %s carries fence %d, newer than our lease attempt %d: this coordinator was superseded on the slice", key, store.URL(), fence, t.Fence))
		}
	}
	st, err := core.DecodeShard(raw)
	if err != nil {
		return fmt.Errorf("coord: shard %s at %s: %w", key, store.URL(), err)
	}
	if cov := st.Covered(); cov.From != t.From || cov.To != t.To {
		return fmt.Errorf("coord: shard %s at %s covers %s, want [%d, %d]", key, store.URL(), cov, t.From, t.To)
	}
	return nil
}
