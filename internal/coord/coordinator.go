package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/blobstore"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/retry"
)

// Task is one shard slice of the pinned block range: slice Index of N
// covers [From, To].
type Task struct {
	Index, N int
	Chain    string
	From, To int64
}

// Name is the task's lease identity and log label —
// "eos-0000000001-0000000050", matching the shard key minus suffix.
func (t Task) Name() string {
	return fmt.Sprintf("%s-%010d-%010d", t.Chain, t.From, t.To)
}

// TaskFailure records a slice that exhausted its retries (or hit a
// permanent error), with the terminal error.
type TaskFailure struct {
	Task Task
	Err  error
}

// Config parameterizes a coordinator run.
type Config struct {
	// Chain names the chain; From and To pin the full block range. To must
	// be concrete — the caller resolves head ONCE so every slice is cut
	// from the same span.
	Chain    string
	From, To int64
	// Shards is how many slices to cut the range into.
	Shards int
	// Store is the shared blob store: leases, worker checkpoints and shard
	// blobs all live in it.
	Store blobstore.Store
	// Owner names this coordinator in lease records (default
	// "coordinator").
	Owner string
	// LeaseTTL bounds how long a claimed slice may go without renewal
	// before another coordinator may reclaim it (default 2 minutes).
	LeaseTTL time.Duration
	// Retry is the per-slice relaunch policy: each attempt is one full
	// worker run. Its zero value means the retry package defaults
	// (4 attempts, 50 ms base backoff).
	Retry retry.Policy
	// Parallel bounds how many slices run workers concurrently (default:
	// all of them).
	Parallel int
	// Run launches one worker attempt for a task and blocks until it
	// exits. cmd/coordinate execs a subprocess (so chaos tests can SIGKILL
	// it); tests may run in-process. The attempt succeeded only if the
	// task's shard blob is then present and decodable — Run's nil error
	// alone is not believed.
	Run func(ctx context.Context, t Task) error
	// Log, when set, receives progress lines.
	Log io.Writer
}

// Result is a coordinator run's outcome. Merged/Summary are present
// whenever at least one shard blob validated — even when slices failed —
// so a degraded run still renders partial figures next to its gap report.
type Result struct {
	Tasks     []Task
	Completed []Task
	Failed    []TaskFailure
	Merged    core.ShardState
	Report    GapReport
}

// GapReport is the machine-readable account of what a degraded run is
// missing: the pinned range, the block ranges no validated shard covers,
// and per-failure detail. Complete runs carry an empty Missing list, so
// downstream tooling can always parse the same shape.
type GapReport struct {
	Chain string `json:"chain"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	// Complete is true when every slice's shard validated and Missing is
	// empty.
	Complete bool `json:"complete"`
	// Missing lists the block ranges not covered by any validated shard,
	// ascending and non-adjacent.
	Missing []GapRange `json:"missing,omitempty"`
	// Failures names each failed slice and its terminal error.
	Failures []GapFailure `json:"failures,omitempty"`
}

// GapRange is one missing block range, inclusive on both ends.
type GapRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// GapFailure names one failed slice.
type GapFailure struct {
	Task  string `json:"task"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	Error string `json:"error"`
}

// WriteJSON renders the report as indented JSON.
func (r GapReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Cut slices [cfg.From, cfg.To] into cfg.Shards tasks using the same
// tiling as cmd/crawl's -shard flag, so a coordinator-driven crawl and a
// hand-driven one partition identically.
func (cfg Config) Cut() ([]Task, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coord: %d shards is not a partition", cfg.Shards)
	}
	tasks := make([]Task, 0, cfg.Shards)
	for i := 1; i <= cfg.Shards; i++ {
		spec := cli.ShardSpec{I: i, N: cfg.Shards}
		lo, hi, err := spec.Cut(cfg.From, cfg.To)
		if err != nil {
			return nil, fmt.Errorf("coord: %v", err)
		}
		tasks = append(tasks, Task{Index: i, N: cfg.Shards, Chain: cfg.Chain, From: lo, To: hi})
	}
	return tasks, nil
}

// Run drives the whole coordinated crawl: cut, claim, launch/relaunch,
// validate-as-they-arrive, merge. It returns a non-nil Result whenever
// the run got far enough to cut tasks; err is non-nil when ANY slice
// failed terminally (the caller decides whether partial figures are
// acceptable) or when the final merge itself refused.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Owner == "" {
		cfg.Owner = "coordinator"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	tasks, err := cfg.Cut()
	if err != nil {
		return nil, err
	}
	res := &Result{Tasks: tasks}
	leases := NewLeases(cfg.Store, cfg.Owner, cfg.LeaseTTL)

	parallel := cfg.Parallel
	if parallel <= 0 || parallel > len(tasks) {
		parallel = len(tasks)
	}
	sem := make(chan struct{}, parallel)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, t := range tasks {
		wg.Add(1)
		go func(t Task) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			err := runTask(ctx, cfg, leases, t, logf)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				logf("slice %d/%d [%d, %d]: FAILED: %v", t.Index, t.N, t.From, t.To, err)
				res.Failed = append(res.Failed, TaskFailure{Task: t, Err: err})
				return
			}
			logf("slice %d/%d [%d, %d]: shard validated", t.Index, t.N, t.From, t.To)
			res.Completed = append(res.Completed, t)
		}(t)
	}
	wg.Wait()
	sort.Slice(res.Completed, func(i, j int) bool { return res.Completed[i].Index < res.Completed[j].Index })
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i].Task.Index < res.Failed[j].Task.Index })

	// Final fold: load every emitted shard and merge, tolerating gaps —
	// failed slices left holes the report accounts for. Overlaps and
	// corruption stay loud (figures would be WRONG, not just partial), so
	// merge refusals are marked Permanent; load failures against a flaky
	// store retry on the same policy as everything else.
	var gaps []core.BlockRange
	if len(res.Completed) > 0 {
		lerr := cfg.Retry.Do(ctx, "merge shards", func(ctx context.Context) error {
			blobs, err := core.LoadShardBlobsFrom(ctx, cfg.Store)
			if err != nil {
				return err
			}
			merged, interior, err := core.MergeShardBlobs(blobs, true)
			if err != nil {
				return retry.Permanent(err)
			}
			res.Merged, gaps = merged, interior
			return nil
		})
		if lerr != nil {
			return res, lerr
		}
		// Edge gaps: blocks of the pinned range before the first or after
		// the last validated shard.
		cov := res.Merged.Covered()
		if cov.From > cfg.From {
			gaps = append([]core.BlockRange{{From: cfg.From, To: cov.From - 1}}, gaps...)
		}
		if cov.To < cfg.To {
			gaps = append(gaps, core.BlockRange{From: cov.To + 1, To: cfg.To})
		}
	} else {
		// No slice completed — nothing to merge; the report still renders,
		// with the whole range missing.
		gaps = []core.BlockRange{{From: cfg.From, To: cfg.To}}
	}

	res.Report = GapReport{
		Chain:    cfg.Chain,
		From:     cfg.From,
		To:       cfg.To,
		Complete: len(res.Failed) == 0 && len(gaps) == 0,
	}
	for _, g := range gaps {
		res.Report.Missing = append(res.Report.Missing, GapRange{From: g.From, To: g.To})
	}
	for _, f := range res.Failed {
		res.Report.Failures = append(res.Report.Failures, GapFailure{
			Task: f.Task.Name(), From: f.Task.From, To: f.Task.To, Error: f.Err.Error(),
		})
	}
	if len(res.Failed) > 0 {
		return res, fmt.Errorf("coord: %d of %d slices failed; merged figures are partial (see gap report)", len(res.Failed), len(tasks))
	}
	if len(gaps) > 0 {
		return res, fmt.Errorf("coord: merged shards leave %d gap(s) in [%d, %d]; figures are partial (see gap report)", len(gaps), cfg.From, cfg.To)
	}
	return res, nil
}

// runTask claims a task's lease, keeps it renewed, and drives worker
// attempts under the retry policy until the task's shard blob validates
// or the budget runs out.
func runTask(ctx context.Context, cfg Config, leases *Leases, t Task, logf func(string, ...any)) error {
	// Claiming itself retries: a flaky store or a stale lease from a dead
	// coordinator should not fail the slice outright. A lease held live by
	// someone else is permanent for THIS coordinator right now — but held
	// leases expire, so the claim is retried on the same schedule as
	// worker attempts, converting "held" into "reclaimable" once the
	// holder misses renewals.
	var rec LeaseRecord
	claim := cfg.Retry
	claim.Retryable = func(err error) bool {
		var held *ErrHeld
		if errors.As(err, &held) {
			return true // the holder may expire; keep polling
		}
		return retry.DefaultRetryable(err)
	}
	err := claim.Do(ctx, "claim "+t.Name(), func(ctx context.Context) error {
		var cerr error
		rec, cerr = leases.Claim(ctx, t.Name())
		return cerr
	})
	if err != nil {
		return err
	}
	logf("slice %d/%d [%d, %d]: lease claimed (attempt %d)", t.Index, t.N, t.From, t.To, rec.Attempt)

	// Renew the lease at TTL/3 while attempts run. Losing the lease
	// cancels the worker: a reclaimer owns the slice now.
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		tick := time.NewTicker(cfg.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-tick.C:
				if err := leases.Renew(rctx, &rec); err != nil {
					var lost *ErrLost
					if errors.As(err, &lost) {
						cancel(err)
						return
					}
					// Transient store trouble: the next tick tries again;
					// the TTL absorbs a few missed renewals.
				}
			}
		}
	}()
	defer func() {
		cancel(nil)
		<-renewDone
		_ = leases.Release(context.WithoutCancel(ctx), rec)
	}()

	policy := cfg.Retry
	policy.OnRetry = func(attempt int, err error, delay time.Duration) {
		logf("slice %d/%d [%d, %d]: attempt %d failed (%v), relaunching in %v", t.Index, t.N, t.From, t.To, attempt, err, delay)
	}
	if policy.Retryable == nil {
		// Worker attempts retry on everything but an explicit Permanent
		// mark. In particular a MISSING shard blob after a clean-looking
		// exit (fs.ErrNotExist, permanent under the default classification)
		// is transient here: relaunching the worker is precisely what
		// rewrites it.
		policy.Retryable = func(err error) bool { return !retry.IsPermanent(err) }
	}
	return policy.Do(rctx, "shard "+t.Name(), func(ctx context.Context) error {
		if err := cfg.Run(ctx, t); err != nil {
			return err
		}
		// Believe the store, not the worker's exit status: the attempt
		// counts only if the shard blob landed and decodes.
		return validateShard(ctx, cfg.Store, t)
	})
}

// validateShard fetches and decodes the shard blob a completed task must
// have emitted, checking it covers exactly the task's slice.
func validateShard(ctx context.Context, store blobstore.Store, t Task) error {
	key := t.Name() + ".shard"
	raw, err := store.Get(ctx, key)
	if err != nil {
		return fmt.Errorf("coord: worker exited clean but shard %s is unreadable: %w", key, err)
	}
	st, err := core.DecodeShard(raw)
	if err != nil {
		return fmt.Errorf("coord: shard %s at %s: %w", key, store.URL(), err)
	}
	if cov := st.Covered(); cov.From != t.From || cov.To != t.To {
		return fmt.Errorf("coord: shard %s covers %s, want [%d, %d]", key, cov, t.From, t.To)
	}
	return nil
}
