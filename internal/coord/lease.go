// Package coord is the fault-tolerant half of a distributed crawl: a
// supervisor (Coordinator) that cuts a pinned block range into shard
// slices, claims each slice through lease objects in the blob store,
// launches and relaunches shard workers under the shared retry policy,
// and folds the emitted shard blobs into final figures — degrading to
// partial figures plus a machine-readable gap report when a slice
// exhausts its retries, instead of refusing outright.
//
// The paper's measurement runs are week-long crawls across machines
// (Perez et al., IMC 2020); a coordinator that loses the whole figure set
// to one killed worker cannot drive them. Everything here is built to be
// killed: workers checkpoint their aggregate to the blob store after
// every chunk (see RunShardCrawl) and resume from it, leases expire and
// are reclaimed, and the chaos tests SIGKILL live workers mid-crawl and
// assert the merged figures stay byte-identical to a single-process run.
package coord

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"time"

	"repro/internal/blobstore"
)

// leasePrefix keeps lease objects out of the way of shard blobs and
// checkpoints in a shared store.
const leasePrefix = "lease/"

// leaseVersion stamps the record format so a future coordinator can
// refuse records it does not understand instead of misreading them.
const leaseVersion = 1

// LeaseRecord is the JSON object a claim writes to the blob store: who
// owns the slice, until when, and how many claims (first or reclaimed)
// the slice has seen. The nonce is fresh per claim and is how a claimant
// detects losing a race on stores without compare-and-swap: write, read
// back, and whoever's nonce survived owns the lease.
type LeaseRecord struct {
	Version  int       `json:"version"`
	Task     string    `json:"task"`
	Owner    string    `json:"owner"`
	Nonce    string    `json:"nonce"`
	Attempt  int       `json:"attempt"`
	Deadline time.Time `json:"deadline"`
}

// ErrHeld reports a claim attempt on a lease another owner holds live.
type ErrHeld struct {
	Task     string
	Owner    string
	Deadline time.Time
}

func (e *ErrHeld) Error() string {
	return fmt.Sprintf("coord: lease %s held by %s until %s", e.Task, e.Owner, e.Deadline.UTC().Format(time.RFC3339))
}

// ErrLost reports that a renew or release found the lease no longer ours
// — another coordinator reclaimed it after our deadline passed. The
// holder must stop working on the slice: its result may race the
// reclaimer's.
type ErrLost struct {
	Task  string
	Owner string // who holds it now ("" = record gone)
}

func (e *ErrLost) Error() string {
	if e.Owner == "" {
		return fmt.Sprintf("coord: lease %s vanished (released or deleted)", e.Task)
	}
	return fmt.Sprintf("coord: lease %s lost to %s", e.Task, e.Owner)
}

// Leases claims, renews and releases per-task lease records in a blob
// store. The store is the only shared medium — no lock service — so
// claims are advisory and race-detected rather than atomic: Put the
// record, Get it back, and the nonce that survived owns the lease. Two
// coordinators racing the same stale lease within one store round-trip
// can both think they won for that window; the race wastes work but
// never corrupts figures — and since the Attempt lineage doubles as a
// fence token stamped into every coordinated shard and verified at
// validate and merge time (see coordinator.go and
// core.MergeShardBlobsFenced), that is an enforced invariant, not an
// assumption: the loser's emission carries an older fence and is
// refused.
type Leases struct {
	store blobstore.Store
	owner string
	ttl   time.Duration

	// now and nonce are injectable for tests; nil means the real clock
	// and crypto/rand.
	now   func() time.Time
	nonce func() string
}

// NewLeases scopes lease management to a store, an owner name (unique per
// coordinator process), and a time-to-live for claims.
func NewLeases(store blobstore.Store, owner string, ttl time.Duration) *Leases {
	return &Leases{store: store, owner: owner, ttl: ttl}
}

func (l *Leases) clock() time.Time {
	if l.now != nil {
		return l.now()
	}
	return time.Now()
}

func (l *Leases) newNonce() string {
	if l.nonce != nil {
		return l.nonce()
	}
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("coord: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

func leaseKey(task string) string { return leasePrefix + task + ".lease" }

// get fetches and decodes a lease record; ok=false means no record.
func (l *Leases) get(ctx context.Context, task string) (LeaseRecord, bool, error) {
	raw, err := l.store.Get(ctx, leaseKey(task))
	if errors.Is(err, fs.ErrNotExist) {
		return LeaseRecord{}, false, nil
	}
	if err != nil {
		return LeaseRecord{}, false, fmt.Errorf("coord: reading lease %s: %w", task, err)
	}
	var rec LeaseRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		// A torn or garbage lease record is treated as loud, not stale:
		// silently reclaiming over it could shadow a live owner whose
		// record a flaky store mangled.
		return LeaseRecord{}, false, fmt.Errorf("coord: lease %s is corrupt: %v", task, err)
	}
	if rec.Version > leaseVersion {
		return LeaseRecord{}, false, fmt.Errorf("coord: lease %s has version %d, newer than this binary understands (%d)", task, rec.Version, leaseVersion)
	}
	return rec, true, nil
}

// put writes a record and reads it back; the returned record is whatever
// actually survived in the store.
func (l *Leases) put(ctx context.Context, task string, rec LeaseRecord) (LeaseRecord, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return LeaseRecord{}, fmt.Errorf("coord: encoding lease %s: %v", task, err)
	}
	if err := l.store.Put(ctx, leaseKey(task), raw); err != nil {
		return LeaseRecord{}, fmt.Errorf("coord: writing lease %s: %w", task, err)
	}
	got, ok, err := l.get(ctx, task)
	if err != nil {
		return LeaseRecord{}, err
	}
	if !ok {
		return LeaseRecord{}, &ErrLost{Task: task}
	}
	return got, nil
}

// Holder returns the current lease record for task, live or expired;
// ok=false means no record exists at all. Standbys use it to distinguish
// "a run exists to watch" from "nothing has started" without the side
// effect a Claim on a free lease would have: a standby only ever
// continues a run, never initiates one.
func (l *Leases) Holder(ctx context.Context, task string) (LeaseRecord, bool, error) {
	return l.get(ctx, task)
}

// Claim takes the lease for task: fresh when no record exists, reclaimed
// (attempt count bumped) when the existing record's deadline has passed,
// and *ErrHeld when a live record belongs to someone else. A live record
// already carrying our owner name is re-claimed with a fresh nonce — the
// restart-after-crash path, where the previous process of this owner is
// guaranteed dead.
func (l *Leases) Claim(ctx context.Context, task string) (LeaseRecord, error) {
	prev, ok, err := l.get(ctx, task)
	if err != nil {
		return LeaseRecord{}, err
	}
	attempt := 1
	if ok {
		if l.clock().Before(prev.Deadline) && prev.Owner != l.owner {
			return LeaseRecord{}, &ErrHeld{Task: task, Owner: prev.Owner, Deadline: prev.Deadline}
		}
		attempt = prev.Attempt + 1
	}
	rec := LeaseRecord{
		Version:  leaseVersion,
		Task:     task,
		Owner:    l.owner,
		Nonce:    l.newNonce(),
		Attempt:  attempt,
		Deadline: l.clock().Add(l.ttl),
	}
	got, err := l.put(ctx, task, rec)
	if err != nil {
		return LeaseRecord{}, err
	}
	if got.Nonce != rec.Nonce {
		// Someone else's write landed after ours: they own it.
		return LeaseRecord{}, &ErrHeld{Task: task, Owner: got.Owner, Deadline: got.Deadline}
	}
	return rec, nil
}

// Renew extends a held lease's deadline by the TTL. It verifies the store
// still carries our nonce first; *ErrLost means a reclaimer took over and
// the caller must abandon the slice.
func (l *Leases) Renew(ctx context.Context, rec *LeaseRecord) error {
	cur, ok, err := l.get(ctx, rec.Task)
	if err != nil {
		return err
	}
	if !ok || cur.Nonce != rec.Nonce {
		return &ErrLost{Task: rec.Task, Owner: cur.Owner}
	}
	next := *rec
	next.Deadline = l.clock().Add(l.ttl)
	got, err := l.put(ctx, rec.Task, next)
	if err != nil {
		return err
	}
	if got.Nonce != rec.Nonce {
		return &ErrLost{Task: rec.Task, Owner: got.Owner}
	}
	rec.Deadline = next.Deadline
	return nil
}

// Release deletes a held lease. Releasing a lease we lost is a no-op —
// the reclaimer's record stays.
func (l *Leases) Release(ctx context.Context, rec LeaseRecord) error {
	cur, ok, err := l.get(ctx, rec.Task)
	if err != nil {
		return err
	}
	if !ok || cur.Nonce != rec.Nonce {
		return nil
	}
	if err := l.store.Delete(ctx, leaseKey(rec.Task)); err != nil {
		return fmt.Errorf("coord: releasing lease %s: %w", rec.Task, err)
	}
	return nil
}
