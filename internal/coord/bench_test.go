package coord

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/rpcserve"
	"repro/internal/wire"
)

// BenchmarkLeaseClaim measures one full lease cycle — claim (Get, Put,
// read-back verify) and release — against the in-memory store: the
// coordination overhead a slice pays before any crawling starts.
func BenchmarkLeaseClaim(b *testing.B) {
	store := blobstore.NewMemory()
	leases := NewLeases(store, "bench", time.Minute)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := leases.Claim(ctx, "bench-task")
		if err != nil {
			b.Fatal(err)
		}
		if err := leases.Release(ctx, rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunStateCheckpoint measures one coordinator run-state
// checkpoint — marshal the full task map and Put it — the cost the
// coordinator pays on EVERY task transition, so it bounds how fine-
// grained the transitions can afford to be.
func BenchmarkRunStateCheckpoint(b *testing.B) {
	state := &RunState{
		Chain: "eos", From: 1, To: 1_000_000, Shards: 16,
		Owner: "bench", Epoch: 3,
		Tasks: make(map[string]*TaskRecord, 16),
	}
	span := int64(1_000_000 / 16)
	for i := 1; i <= 16; i++ {
		from := int64(i-1)*span + 1
		t := Task{Index: i, N: 16, Chain: "eos", From: from, To: from + span - 1}
		state.Tasks[t.Name()] = &TaskRecord{
			Index: i, From: t.From, To: t.To,
			State: TaskRunning, Fence: uint64(i), Attempts: 2,
		}
	}
	store := blobstore.NewMemory()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SaveRunState(ctx, store, state); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFenceStamp measures stamping a fence into an already-encoded
// shard blob (the wire re-seal EncodeShard performs) plus reading it back
// — the per-emission overhead fencing adds to a worker.
func BenchmarkFenceStamp(b *testing.B) {
	st, err := core.NewShardState("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	st.SetCovered(core.BlockRange{From: 1, To: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := core.EncodeShard(st, uint64(i%7)+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.ShardFence(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardCheckpoint measures one crash-recovery checkpoint: encode
// the full aggregate state and Put it to the store — the cost a worker
// pays per completed chunk.
func BenchmarkShardCheckpoint(b *testing.B) {
	st, err := core.NewShardState("tezos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]any, 0, 256)
	for num := int64(1); num <= 256; num++ {
		batch = append(batch, &rpcserve.TezosBlockJSON{
			Level:     num,
			Timestamp: chain.ObservationStart.Add(time.Duration(num) * time.Minute).Format(time.RFC3339),
			Baker:     "tz1baker",
			Operations: []rpcserve.TezosOperationJSON{
				{Kind: "endorsement", Source: "tz1alice", Level: num - 1, SlotCount: 2},
			},
		})
	}
	if err := st.IngestBatch(batch); err != nil {
		b.Fatal(err)
	}
	st.SetCovered(core.BlockRange{From: 1, To: 256})

	store := blobstore.NewMemory()
	key := CheckpointKey("tezos", 1, 256)
	ctx := context.Background()
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := st.EncodeTo(&buf); err != nil {
			b.Fatal(err)
		}
		if err := store.Put(ctx, key, buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
}
