// Package stats provides the small statistical toolkit the measurement
// pipeline relies on: time-bucketed counters (the paper plots throughput per
// six hours), streaming moments, percentiles and gzip storage accounting.
package stats

import (
	"fmt"
	"sort"
	"time"
)

// TimeSeries accumulates counts into fixed-width time buckets aligned to the
// series origin. The paper's Figure 3 uses 6-hour buckets over the three
// month observation window.
type TimeSeries struct {
	origin time.Time
	width  time.Duration
	// buckets maps bucket index -> label -> count, so one series can carry
	// several stacked categories (e.g. Payment / OfferCreate / Others).
	buckets map[int]map[string]int64
	labels  map[string]struct{}
}

// NewTimeSeries creates a series with buckets of the given width starting at
// origin. Width must be positive.
func NewTimeSeries(origin time.Time, width time.Duration) *TimeSeries {
	if width <= 0 {
		panic(fmt.Sprintf("stats: non-positive bucket width %v", width))
	}
	return &TimeSeries{
		origin:  origin,
		width:   width,
		buckets: make(map[int]map[string]int64),
		labels:  make(map[string]struct{}),
	}
}

// Add increments label's counter in the bucket containing ts by n.
// Timestamps before the origin land in bucket 0.
func (s *TimeSeries) Add(ts time.Time, label string, n int64) {
	i := s.BucketIndex(ts)
	b := s.buckets[i]
	if b == nil {
		b = make(map[string]int64)
		s.buckets[i] = b
	}
	b[label] += n
	s.labels[label] = struct{}{}
}

// Origin returns the series anchor time.
func (s *TimeSeries) Origin() time.Time { return s.origin }

// Width returns the bucket width.
func (s *TimeSeries) Width() time.Duration { return s.width }

// Merge folds other's buckets into s. Both series must share the same
// origin and bucket width — bucket indexes are only comparable relative to
// a common anchor — and Merge panics otherwise, like NewTimeSeries panics
// on a non-positive width: a mismatch is a programming error, not a data
// condition. Addition is commutative, so merging shards in any order
// yields the same counts (the property the sharded aggregators rely on).
func (s *TimeSeries) Merge(other *TimeSeries) {
	if other == nil {
		return
	}
	if !s.origin.Equal(other.origin) || s.width != other.width {
		panic(fmt.Sprintf("stats: merging misaligned series (origin %v/%v, width %v/%v)",
			s.origin, other.origin, s.width, other.width))
	}
	for i, ob := range other.buckets {
		b := s.buckets[i]
		if b == nil {
			b = make(map[string]int64, len(ob))
			s.buckets[i] = b
		}
		for label, n := range ob {
			b[label] += n
		}
	}
	for l := range other.labels {
		s.labels[l] = struct{}{}
	}
}

// BucketIndex returns the bucket index for ts (clamped at zero).
func (s *TimeSeries) BucketIndex(ts time.Time) int {
	d := ts.Sub(s.origin)
	if d < 0 {
		return 0
	}
	return int(d / s.width)
}

// BucketStart returns the start time of bucket i.
func (s *TimeSeries) BucketStart(i int) time.Time {
	return s.origin.Add(time.Duration(i) * s.width)
}

// Labels returns the sorted set of labels seen by the series.
func (s *TimeSeries) Labels() []string {
	out := make([]string, 0, len(s.labels))
	for l := range s.labels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// MaxBucket returns the highest populated bucket index, or -1 when empty.
func (s *TimeSeries) MaxBucket() int {
	max := -1
	for i := range s.buckets {
		if i > max {
			max = i
		}
	}
	return max
}

// Value returns label's count in bucket i.
func (s *TimeSeries) Value(i int, label string) int64 {
	return s.buckets[i][label]
}

// Total returns the sum of label across all buckets.
func (s *TimeSeries) Total(label string) int64 {
	var t int64
	for _, b := range s.buckets {
		t += b[label]
	}
	return t
}

// TotalAll returns the sum of every label across all buckets.
func (s *TimeSeries) TotalAll() int64 {
	var t int64
	for _, b := range s.buckets {
		for _, v := range b {
			t += v
		}
	}
	return t
}

// AddBucket increments label's counter in bucket i directly, bypassing the
// time-to-bucket mapping — the entry point for decoding a serialized
// series, where the bucket index itself was transferred. Negative indexes
// clamp to 0 like pre-origin timestamps in Add.
func (s *TimeSeries) AddBucket(i int, label string, n int64) {
	if i < 0 {
		i = 0
	}
	b := s.buckets[i]
	if b == nil {
		b = make(map[string]int64)
		s.buckets[i] = b
	}
	b[label] += n
	s.labels[label] = struct{}{}
}

// Entry is one populated (bucket, label) cell of a series.
type Entry struct {
	Bucket int
	Label  string
	Count  int64
}

// Entries materializes the populated cells sorted by bucket then label —
// the deterministic flat form the shard codec serializes. Zero-count cells
// are skipped; they are indistinguishable from absent ones after a merge.
func (s *TimeSeries) Entries() []Entry {
	var out []Entry
	for i, b := range s.buckets {
		for label, n := range b {
			if n != 0 {
				out = append(out, Entry{Bucket: i, Label: label, Count: n})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bucket != out[j].Bucket {
			return out[i].Bucket < out[j].Bucket
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Row is one rendered bucket of a time series.
type Row struct {
	Start  time.Time
	Counts map[string]int64
}

// Rows materializes the series in chronological order, including empty
// buckets between populated ones so plots have a continuous x-axis.
func (s *TimeSeries) Rows() []Row {
	max := s.MaxBucket()
	if max < 0 {
		return nil
	}
	rows := make([]Row, max+1)
	for i := 0; i <= max; i++ {
		counts := make(map[string]int64, len(s.labels))
		for l := range s.labels {
			counts[l] = s.buckets[i][l]
		}
		rows[i] = Row{Start: s.BucketStart(i), Counts: counts}
	}
	return rows
}

// PeakBucket returns the index of the bucket with the highest total count.
func (s *TimeSeries) PeakBucket() int {
	best, bestTotal := -1, int64(-1)
	for i, b := range s.buckets {
		var t int64
		for _, v := range b {
			t += v
		}
		if t > bestTotal || (t == bestTotal && i < best) {
			best, bestTotal = i, t
		}
	}
	return best
}
