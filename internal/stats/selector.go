package stats

import (
	"math"
	"slices"
	"sync"
)

// Selector answers order statistics over one data set from a single shared
// sort. core.ChainSummary renders a whole quantile grid plus concentration
// statistics per chain; before Selector each call (Percentile ×3, Gini,
// TopShare) copied and re-sorted the same input. Load once, query freely.
//
// The zero value is ready to Load. A Selector holds its sorted scratch
// across Loads, so steady-state use allocates nothing; recycle through
// GetSelector/PutSelector to share scratch between call sites.
type Selector struct {
	sorted []float64
	total  float64
}

// NewSelector builds a selector over xs (copied, then sorted ascending).
func NewSelector(xs []float64) *Selector {
	var s Selector
	s.Load(xs)
	return &s
}

// Load replaces the data set, reusing the scratch buffer.
func (s *Selector) Load(xs []float64) {
	s.sorted = append(s.sorted[:0], xs...)
	slices.Sort(s.sorted)
	s.total = 0
	for _, x := range s.sorted {
		s.total += x
	}
}

// N reports the data set size.
func (s *Selector) N() int { return len(s.sorted) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It returns 0 for empty input.
func (s *Selector) Percentile(p float64) float64 {
	if len(s.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return s.sorted[0]
	}
	if p >= 100 {
		return s.sorted[len(s.sorted)-1]
	}
	rank := p / 100 * float64(len(s.sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := rank - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// Gini returns the Gini coefficient of the non-negative values, a measure
// of concentration in [0,1]. The related work the paper builds on (Kondor
// et al.) tracks wealth concentration with this statistic; here it
// quantifies how concentrated per-account traffic is.
func (s *Selector) Gini() float64 {
	n := len(s.sorted)
	if n == 0 {
		return 0
	}
	var cum, total float64
	for i, x := range s.sorted {
		if x < 0 {
			x = 0
		}
		cum += x * float64(2*(i+1)-n-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(n) * total)
}

// TopShare returns the fraction of the total contributed by the k largest
// values. The paper reports e.g. "the 18 most active accounts are
// responsible for half of the total traffic".
func (s *Selector) TopShare(k int) float64 {
	n := len(s.sorted)
	if n == 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	if s.total == 0 {
		return 0
	}
	var top float64
	for _, x := range s.sorted[n-k:] {
		top += x
	}
	return top / s.total
}

var selectorPool = sync.Pool{New: func() any { return new(Selector) }}

// GetSelector takes a selector (with recycled scratch) from the pool.
func GetSelector() *Selector { return selectorPool.Get().(*Selector) }

// PutSelector returns a selector to the pool.
func PutSelector(s *Selector) {
	if cap(s.sorted) <= 1<<20 {
		selectorPool.Put(s)
	}
}
