package stats

import (
	"math"
	"testing"
)

func TestPercentileEmptyAndClamped(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, -10); got != 1 {
		t.Fatalf("p<=0 must clamp to min, got %v", got)
	}
	if got := Percentile(xs, 200); got != 3 {
		t.Fatalf("p>=100 must clamp to max, got %v", got)
	}
}

// TestPercentileNonFinite pins where NaN and ±Inf land in the sorted order
// (slices.Sort places NaN first and +Inf last), so a poisoned input yields
// deterministic — if meaningless — percentiles rather than flaky ones.
func TestPercentileNonFinite(t *testing.T) {
	xs := []float64{1, math.NaN(), 3, math.Inf(1), 2}
	s := NewSelector(xs)
	if got := s.Percentile(0); !math.IsNaN(got) {
		t.Fatalf("p0 over NaN-poisoned input = %v, want NaN (sorts first)", got)
	}
	if got := s.Percentile(100); !math.IsInf(got, 1) {
		t.Fatalf("p100 over +Inf-poisoned input = %v, want +Inf (sorts last)", got)
	}
	// The middle of [NaN 1 2 3 +Inf] is finite; interpolation between the
	// finite neighbours must stay finite.
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	// Same data loaded twice gives byte-identical answers.
	s2 := NewSelector([]float64{math.Inf(1), 2, math.NaN(), 1, 3})
	for _, p := range []float64{0, 25, 50, 75, 100} {
		a, b := s.Percentile(p), s2.Percentile(p)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("p%v unstable across input orderings: %v vs %v", p, a, b)
		}
	}
}

func TestSelectorReload(t *testing.T) {
	s := GetSelector()
	defer PutSelector(s)
	s.Load([]float64{10, 20})
	if got := s.Percentile(100); got != 20 {
		t.Fatalf("first load p100 = %v", got)
	}
	// Reload with fewer values must not leak the old tail through the
	// recycled scratch buffer.
	s.Load([]float64{5})
	if got, n := s.Percentile(100), s.N(); got != 5 || n != 1 {
		t.Fatalf("after reload: p100 = %v, N = %d, want 5 and 1", got, n)
	}
	s.Load(nil)
	if got, n := s.Percentile(50), s.N(); got != 0 || n != 0 {
		t.Fatalf("after empty reload: p50 = %v, N = %d, want 0 and 0", got, n)
	}
}
