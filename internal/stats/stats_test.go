package stats

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var origin = time.Date(2019, time.October, 1, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesBucketing(t *testing.T) {
	s := NewTimeSeries(origin, 6*time.Hour)
	s.Add(origin, "tx", 1)
	s.Add(origin.Add(5*time.Hour+59*time.Minute), "tx", 1)
	s.Add(origin.Add(6*time.Hour), "tx", 1)
	s.Add(origin.Add(30*time.Hour), "endorsement", 4)

	if got := s.Value(0, "tx"); got != 2 {
		t.Fatalf("bucket 0 tx = %d, want 2", got)
	}
	if got := s.Value(1, "tx"); got != 1 {
		t.Fatalf("bucket 1 tx = %d, want 1", got)
	}
	if got := s.Value(5, "endorsement"); got != 4 {
		t.Fatalf("bucket 5 endorsement = %d, want 4", got)
	}
	if got := s.Total("tx"); got != 3 {
		t.Fatalf("total tx = %d", got)
	}
	if got := s.TotalAll(); got != 7 {
		t.Fatalf("total all = %d", got)
	}
}

func TestTimeSeriesRowsContinuous(t *testing.T) {
	s := NewTimeSeries(origin, time.Hour)
	s.Add(origin, "a", 1)
	s.Add(origin.Add(4*time.Hour), "a", 1)
	rows := s.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (continuous axis)", len(rows))
	}
	if rows[2].Counts["a"] != 0 {
		t.Fatal("gap bucket should be zero")
	}
	if !rows[4].Start.Equal(origin.Add(4 * time.Hour)) {
		t.Fatalf("row 4 start %v", rows[4].Start)
	}
}

func TestTimeSeriesPeakAndClamping(t *testing.T) {
	s := NewTimeSeries(origin, time.Hour)
	if s.MaxBucket() != -1 || s.PeakBucket() != -1 {
		t.Fatal("empty series should report -1")
	}
	s.Add(origin.Add(-time.Hour), "early", 1) // clamped to bucket 0
	s.Add(origin.Add(2*time.Hour), "spike", 10)
	if s.BucketIndex(origin.Add(-time.Hour)) != 0 {
		t.Fatal("pre-origin timestamps must clamp to bucket 0")
	}
	if s.PeakBucket() != 2 {
		t.Fatalf("peak bucket = %d, want 2", s.PeakBucket())
	}
}

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{28.58, 1.00, 46.35, 33.32, 15.35} // Figure 6 avg column
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("mean %f vs %f", w.Mean(), mean)
	}
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(w.Variance()-v) > 1e-9 {
		t.Fatalf("variance %f vs %f", w.Variance(), v)
	}
}

func TestWelfordMerge(t *testing.T) {
	var a, b, all Welford
	for i := 0; i < 100; i++ {
		x := float64(i * i % 37)
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merge mismatch: mean %f/%f var %f/%f", a.Mean(), all.Mean(), a.Variance(), all.Variance())
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Keep magnitudes sane to avoid float blowup dominating.
			xs[i] = math.Mod(xs[i], 1e6)
		}
		var whole Welford
		for _, x := range xs {
			whole.Add(x)
		}
		k := 0
		if len(xs) > 0 {
			k = int(split) % (len(xs) + 1)
		}
		var left, right Welford
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(left.Variance()-whole.Variance()) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %f, want %f", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); math.Abs(g) > 1e-9 {
		t.Fatalf("equal distribution Gini = %f, want 0", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated distribution Gini = %f, want high", g)
	}
	if Gini(nil) != 0 {
		t.Fatal("empty Gini should be 0")
	}
}

func TestTopShare(t *testing.T) {
	// 18 accounts responsible for half the traffic: top-1 of this toy set
	// holds 50 of 100.
	xs := []float64{50, 10, 10, 10, 10, 10}
	if got := TopShare(xs, 1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("TopShare = %f", got)
	}
	if got := TopShare(xs, 100); math.Abs(got-1) > 1e-9 {
		t.Fatalf("TopShare with k>len = %f", got)
	}
	if TopShare(nil, 3) != 0 {
		t.Fatal("empty TopShare should be 0")
	}
}

func TestGzipSizerCompresses(t *testing.T) {
	s := NewGzipSizer()
	block := bytes.Repeat([]byte(`{"type":"transfer","from":"alice","to":"bob"}`), 1000)
	if _, err := s.Write(block); err != nil {
		t.Fatal(err)
	}
	if s.RawBytes() != int64(len(block)) {
		t.Fatalf("raw bytes = %d", s.RawBytes())
	}
	compressed, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if compressed <= 0 || compressed >= int64(len(block)) {
		t.Fatalf("compressed %d of %d raw bytes: repetitive JSON should shrink", compressed, len(block))
	}
}

func TestGzipSizerIncrementalRead(t *testing.T) {
	s := NewGzipSizer()
	s.Write(bytes.Repeat([]byte("abc"), 100))
	first := s.CompressedBytes()
	if first <= 0 {
		t.Fatal("flush reported zero bytes")
	}
	s.Write(bytes.Repeat([]byte("xyz"), 10000))
	second := s.CompressedBytes()
	if second <= first {
		t.Fatalf("compressed size did not grow: %d then %d", first, second)
	}
}

func TestDetectRegimeShift(t *testing.T) {
	// 30 quiet buckets at ~100, then 60 at ~1100: a clean 11x shift.
	var vals []int64
	for i := 0; i < 30; i++ {
		vals = append(vals, 100+int64(i%7))
	}
	for i := 0; i < 60; i++ {
		vals = append(vals, 1100+int64(i%13))
	}
	shift, ok := DetectRegimeShift(vals, 5)
	if !ok {
		t.Fatal("no shift detected")
	}
	if shift.Bucket < 28 || shift.Bucket > 32 {
		t.Fatalf("shift at bucket %d, want ~30", shift.Bucket)
	}
	if shift.Ratio < 9 || shift.Ratio > 13 {
		t.Fatalf("ratio = %f, want ~11", shift.Ratio)
	}
}

func TestDetectRegimeShiftDegenerate(t *testing.T) {
	if _, ok := DetectRegimeShift([]int64{1, 2}, 5); ok {
		t.Fatal("too-short series produced a shift")
	}
	if _, ok := DetectRegimeShift([]int64{5, 5, 5, 5, 5, 5}, 2); ok {
		t.Fatal("flat series produced a shift")
	}
	// Zero-to-something: ratio clamps to the new level.
	shift, ok := DetectRegimeShift([]int64{0, 0, 0, 40, 40, 40}, 2)
	if !ok || shift.Ratio != 40 {
		t.Fatalf("zero baseline: %+v ok=%v", shift, ok)
	}
}

func TestSeriesValueExtraction(t *testing.T) {
	s := NewTimeSeries(origin, time.Hour)
	s.Add(origin, "a", 3)
	s.Add(origin.Add(time.Hour), "b", 4)
	if got := SeriesValues(s, "a"); len(got) != 2 || got[0] != 3 || got[1] != 0 {
		t.Fatalf("series values: %v", got)
	}
	if got := TotalValues(s); got[0] != 3 || got[1] != 4 {
		t.Fatalf("total values: %v", got)
	}
}

func TestTimeSeriesMerge(t *testing.T) {
	a := NewTimeSeries(origin, time.Hour)
	a.Add(origin, "tx", 3)
	a.Add(origin.Add(2*time.Hour), "tx", 1)
	b := NewTimeSeries(origin, time.Hour)
	b.Add(origin, "tx", 2)
	b.Add(origin.Add(time.Hour), "other", 5)

	a.Merge(b)
	if got := a.Value(0, "tx"); got != 5 {
		t.Fatalf("bucket 0 tx = %d, want 5", got)
	}
	if got := a.Value(1, "other"); got != 5 {
		t.Fatalf("bucket 1 other = %d, want 5", got)
	}
	if got := a.Value(2, "tx"); got != 1 {
		t.Fatalf("bucket 2 tx = %d, want 1", got)
	}
	if labels := a.Labels(); len(labels) != 2 || labels[0] != "other" || labels[1] != "tx" {
		t.Fatalf("merged labels: %v", labels)
	}
	// Merge must be commutative: the reverse order gives the same totals.
	c := NewTimeSeries(origin, time.Hour)
	c.Add(origin, "tx", 2)
	c.Add(origin.Add(time.Hour), "other", 5)
	d := NewTimeSeries(origin, time.Hour)
	d.Add(origin, "tx", 3)
	d.Add(origin.Add(2*time.Hour), "tx", 1)
	c.Merge(d)
	if c.TotalAll() != a.TotalAll() || c.Total("tx") != a.Total("tx") {
		t.Fatalf("merge order changed totals: %d/%d vs %d/%d",
			c.TotalAll(), c.Total("tx"), a.TotalAll(), a.Total("tx"))
	}
}

func TestTimeSeriesMergeMisalignedPanics(t *testing.T) {
	a := NewTimeSeries(origin, time.Hour)
	for _, other := range []*TimeSeries{
		NewTimeSeries(origin, 2*time.Hour),
		NewTimeSeries(origin.Add(time.Minute), time.Hour),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("misaligned merge did not panic")
				}
			}()
			a.Merge(other)
		}()
	}
	// A nil other is a harmless no-op, not a panic.
	a.Merge(nil)
}
