package stats

import (
	"bytes"
	"testing"
	"time"
)

func BenchmarkTimeSeriesAdd(b *testing.B) {
	s := NewTimeSeries(origin, 6*time.Hour)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(origin.Add(time.Duration(i%368)*6*time.Hour), "tx", 1)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
	_ = w.Stdev()
}

func BenchmarkGini(b *testing.B) {
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = float64(i * i % 7919)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Gini(xs)
	}
}

func BenchmarkGzipSizer(b *testing.B) {
	block := bytes.Repeat([]byte(`{"kind":"endorsement","slots":3}`), 32)
	s := NewGzipSizer()
	b.SetBytes(int64(len(block)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(block)
	}
}
