package stats

import "math"

// Welford accumulates streaming mean and variance without retaining samples.
// The paper's Figure 6 reports avg and stdev of transactions per receiver
// for the top Tezos senders; the pipeline computes those with this type.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (zero when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stdev returns the population standard deviation.
func (w *Welford) Stdev() float64 { return math.Sqrt(w.Variance()) }

// SampleStdev returns the sample standard deviation.
func (w *Welford) SampleStdev() float64 { return math.Sqrt(w.SampleVariance()) }

// Merge combines another accumulator into w (parallel aggregation).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}
