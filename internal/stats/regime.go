package stats

// RegimeShift describes the strongest level change found in a series: the
// bucket index where the mean of everything after diverges most from the
// mean of everything before. The paper's Figure 3a shows exactly one such
// shift — the November 1 EIDOS launch multiplying EOS throughput by more
// than 10×.
type RegimeShift struct {
	// Bucket is the first index of the new regime.
	Bucket int
	// Before and After are the mean per-bucket counts on each side.
	Before, After float64
	// Ratio is After/Before (∞ is clamped to After when Before is 0).
	Ratio float64
}

// DetectRegimeShift scans a per-bucket series for the split point
// maximizing the change in mean level. minSegment buckets are required on
// both sides; it returns ok=false when the series is too short or flat.
func DetectRegimeShift(values []int64, minSegment int) (RegimeShift, bool) {
	if minSegment < 1 {
		minSegment = 1
	}
	n := len(values)
	if n < 2*minSegment {
		return RegimeShift{}, false
	}
	prefix := make([]int64, n+1)
	for i, v := range values {
		prefix[i+1] = prefix[i] + v
	}
	best := RegimeShift{}
	bestScore := -1.0
	for split := minSegment; split <= n-minSegment; split++ {
		before := float64(prefix[split]) / float64(split)
		after := float64(prefix[n]-prefix[split]) / float64(n-split)
		diff := after - before
		if diff < 0 {
			diff = -diff
		}
		if diff > bestScore {
			bestScore = diff
			best = RegimeShift{Bucket: split, Before: before, After: after}
		}
	}
	if bestScore <= 0 {
		return RegimeShift{}, false
	}
	if best.Before > 0 {
		best.Ratio = best.After / best.Before
	} else {
		best.Ratio = best.After
	}
	return best, true
}

// SeriesValues extracts one label's per-bucket counts in order.
func SeriesValues(ts *TimeSeries, label string) []int64 {
	rows := ts.Rows()
	out := make([]int64, len(rows))
	for i, row := range rows {
		out[i] = row.Counts[label]
	}
	return out
}

// TotalValues extracts per-bucket totals across all labels.
func TotalValues(ts *TimeSeries) []int64 {
	rows := ts.Rows()
	out := make([]int64, len(rows))
	for i, row := range rows {
		var t int64
		for _, v := range row.Counts {
			t += v
		}
		out[i] = t
	}
	return out
}
