package stats

// The standalone order-statistic functions are thin wrappers over a pooled
// Selector, so each call still costs one sort but no longer a fresh copy
// allocation in steady state. Call sites that need several statistics over
// the same data (the summary quantile grid, Gini + top-k concentration)
// should hold one Selector and amortize the sort itself.

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	s := GetSelector()
	s.Load(xs)
	v := s.Percentile(p)
	PutSelector(s)
	return v
}

// Gini returns the Gini coefficient of the non-negative values xs, a measure
// of concentration in [0,1]. The related work the paper builds on (Kondor et
// al.) tracks wealth concentration with this statistic; here it quantifies
// how concentrated per-account traffic is.
func Gini(xs []float64) float64 {
	s := GetSelector()
	s.Load(xs)
	v := s.Gini()
	PutSelector(s)
	return v
}

// TopShare returns the fraction of sum(xs) contributed by the k largest
// values. The paper reports e.g. "the 18 most active accounts are
// responsible for half of the total traffic".
func TopShare(xs []float64, k int) float64 {
	s := GetSelector()
	s.Load(xs)
	v := s.TopShare(k)
	PutSelector(s)
	return v
}
