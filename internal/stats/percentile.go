package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Gini returns the Gini coefficient of the non-negative values xs, a measure
// of concentration in [0,1]. The related work the paper builds on (Kondor et
// al.) tracks wealth concentration with this statistic; here it quantifies
// how concentrated per-account traffic is.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, x := range sorted {
		if x < 0 {
			x = 0
		}
		cum += x * float64(2*(i+1)-len(sorted)-1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return cum / (float64(len(sorted)) * total)
}

// TopShare returns the fraction of sum(xs) contributed by the k largest
// values. The paper reports e.g. "the 18 most active accounts are
// responsible for half of the total traffic".
func TopShare(xs []float64, k int) float64 {
	if len(xs) == 0 || k <= 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if k > len(sorted) {
		k = len(sorted)
	}
	var top, total float64
	for i, x := range sorted {
		if i < k {
			top += x
		}
		total += x
	}
	if total == 0 {
		return 0
	}
	return top / total
}
