package stats

import (
	"compress/gzip"
	"sync"
)

// GzipSizer measures the gzip-compressed size of a byte stream without
// retaining it. The paper characterizes each dataset by its compressed
// on-disk footprint (Figure 2: 121 GB EOS, 0.56 GB Tezos, 76.4 GB XRP);
// the collector feeds every fetched block through a sizer to report the
// same statistic.
type GzipSizer struct {
	mu      sync.Mutex
	counter countingWriter
	zw      *gzip.Writer
	raw     int64
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// NewGzipSizer returns a sizer using the default compression level.
func NewGzipSizer() *GzipSizer {
	s := &GzipSizer{}
	s.zw = gzip.NewWriter(&s.counter)
	return s
}

// Write feeds data through the compressor. It never fails.
func (s *GzipSizer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.raw += int64(len(p))
	return s.zw.Write(p)
}

// RawBytes returns the number of uncompressed bytes written so far.
func (s *GzipSizer) RawBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raw
}

// CompressedBytes flushes the compressor and returns the compressed size so
// far. The sizer remains usable after the call.
func (s *GzipSizer) CompressedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zw.Flush()
	return s.counter.n
}

// Close finalizes the stream and returns the total compressed size.
func (s *GzipSizer) Close() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.zw.Close(); err != nil {
		return 0, err
	}
	return s.counter.n, nil
}
