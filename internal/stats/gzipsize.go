package stats

import (
	"compress/gzip"
	"io"
	"sync"
)

// GzipSizer measures the gzip-compressed size of a byte stream without
// retaining it. The paper characterizes each dataset by its compressed
// on-disk footprint (Figure 2: 121 GB EOS, 0.56 GB Tezos, 76.4 GB XRP);
// the collector feeds every fetched block through a sizer to report the
// same statistic.
type GzipSizer struct {
	mu      sync.Mutex
	counter countingWriter
	zw      *gzip.Writer
	raw     int64
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// sizerGzipPool recycles the deflate state behind sizers: every crawl
// stream builds one, and the compressor's window plus hash chains dominate
// its footprint.
var sizerGzipPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// NewGzipSizer returns a sizer using the default compression level. Call
// Close when done with it to recycle the compressor state.
func NewGzipSizer() *GzipSizer {
	s := &GzipSizer{}
	s.zw = sizerGzipPool.Get().(*gzip.Writer)
	s.zw.Reset(&s.counter)
	return s
}

// Write feeds data through the compressor. It never fails; writes after
// Close are counted raw but not compressed.
func (s *GzipSizer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.raw += int64(len(p))
	if s.zw == nil {
		return len(p), nil
	}
	return s.zw.Write(p)
}

// RawBytes returns the number of uncompressed bytes written so far.
func (s *GzipSizer) RawBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.raw
}

// CompressedBytes flushes the compressor and returns the compressed size so
// far. The sizer remains usable after the call.
func (s *GzipSizer) CompressedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.zw != nil {
		s.zw.Flush()
	}
	return s.counter.n
}

// Close finalizes the stream, recycles the compressor and returns the
// total compressed size. The sizer must not be used afterwards.
func (s *GzipSizer) Close() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.zw == nil {
		return s.counter.n, nil
	}
	err := s.zw.Close()
	s.zw.Reset(io.Discard)
	sizerGzipPool.Put(s.zw)
	s.zw = nil
	if err != nil {
		return 0, err
	}
	return s.counter.n, nil
}
