package archive

import (
	"compress/gzip"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// WriterConfig parameterizes an archive writer.
type WriterConfig struct {
	// Dir is the archive directory; it is created if missing. A directory
	// holding an existing manifest is appended to (the chain must match),
	// so a resumed crawl extends its archive instead of clobbering it.
	Dir string
	// Chain names the archived chain ("eos", "tezos", "xrp"); recorded in
	// the manifest and validated on replay.
	Chain string
	// SegmentBlocks rotates the open segment after this many records
	// (default 4096).
	SegmentBlocks int
	// SegmentBytes rotates the open segment after this many raw payload
	// bytes (default 8 MiB). Rotation happens when either bound is hit.
	SegmentBytes int64
}

func (c WriterConfig) withDefaults() WriterConfig {
	if c.SegmentBlocks <= 0 {
		c.SegmentBlocks = 4096
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	return c
}

// Writer tees a crawl's raw block stream into segment files. Append is the
// collect.CrawlConfig.Tee shape and is safe for concurrent use — crawl
// workers deliver from many goroutines. Close finalizes the open segment
// and the manifest; until a segment is finalized (fsync + rename into
// place) it lives under a .tmp name that replay ignores, so an interrupt
// racing a rotation can tear nothing.
type Writer struct {
	mu     sync.Mutex
	cfg    WriterConfig
	man    Manifest
	next   int // next segment file number
	cur    *openSegment
	blocks int64 // records across finalized + open segments this session
	closed bool
}

// openSegment is the in-progress segment: a gzip stream over a .tmp file,
// hashed as compressed bytes reach the file.
type openSegment struct {
	tmpPath string
	file    *os.File
	sha     hash.Hash
	gz      *gzip.Writer
	info    SegmentInfo
	// hdr is the record length-prefix scratch, reused across Appends so
	// the 12-byte header never escapes to the heap per record.
	hdr [12]byte
	// poisoned is set when a record write failed partway: the stream may
	// hold a torn record, so the segment must be discarded, never
	// finalized into the manifest (a checksummed torn segment would fail
	// the record walk on every later Open and brick the whole archive).
	poisoned bool
}

// gzWriterPool recycles gzip compressors across segment rotations; a
// gzip.Writer carries hundreds of kilobytes of deflate state that was
// re-allocated on every segment before this pool existed.
var gzWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// getGzipWriter takes a pooled compressor reset onto w.
func getGzipWriter(w io.Writer) *gzip.Writer {
	gz := gzWriterPool.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// putGzipWriter returns a closed (or abandoned) compressor to the pool.
func putGzipWriter(gz *gzip.Writer) {
	gz.Reset(io.Discard)
	gzWriterPool.Put(gz)
}

// NewWriter opens dir for archiving. Stray .tmp files from a previous
// crash are swept; an existing manifest is loaded and extended.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	cfg = cfg.withDefaults()
	if cfg.Chain == "" {
		return nil, errors.New("archive: writer needs a chain name")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &Writer{cfg: cfg, next: 1, man: Manifest{Version: 1, Chain: cfg.Chain}}
	man, err := loadManifest(cfg.Dir)
	switch {
	case err == nil:
		if man.Chain != cfg.Chain {
			return nil, fmt.Errorf("archive: %s already archives chain %q, not %q", cfg.Dir, man.Chain, cfg.Chain)
		}
		w.man = man
		for _, s := range man.Segments {
			var n int
			if _, serr := fmt.Sscanf(s.File, "segment-%06d.gz", &n); serr == nil && n >= w.next {
				w.next = n + 1
			}
		}
	case errors.Is(err, fs.ErrNotExist):
		// Fresh archive.
	default:
		return nil, err
	}
	// A crashed writer leaves its open segment as *.tmp; it was never
	// referenced by the manifest, so it is garbage.
	strays, err := filepath.Glob(filepath.Join(cfg.Dir, "segment-*.gz.tmp"))
	if err != nil {
		return nil, err
	}
	for _, s := range strays {
		if err := os.Remove(s); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Append archives one raw block. It matches collect.CrawlConfig.Tee.
func (w *Writer) Append(num int64, raw []byte) error {
	if num <= 0 {
		return fmt.Errorf("archive: invalid block number %d", num)
	}
	if len(raw) > maxRecordBytes {
		return fmt.Errorf("archive: block %d payload %d bytes exceeds record limit", num, len(raw))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("archive: append to closed writer")
	}
	if w.cur != nil && w.cur.poisoned {
		return errors.New("archive: a previous write failed; the open segment is poisoned")
	}
	if w.cur == nil {
		if err := w.openSegmentLocked(); err != nil {
			return err
		}
	}
	hdr := w.cur.hdr[:]
	binary.BigEndian.PutUint64(hdr[:8], uint64(num))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(raw)))
	if _, err := w.cur.gz.Write(hdr); err != nil {
		w.cur.poisoned = true
		return fmt.Errorf("archive: writing block %d: %w", num, err)
	}
	if _, err := w.cur.gz.Write(raw); err != nil {
		w.cur.poisoned = true
		return fmt.Errorf("archive: writing block %d: %w", num, err)
	}
	info := &w.cur.info
	info.Blocks++
	info.RawBytes += int64(len(raw))
	if info.Min == 0 || num < info.Min {
		info.Min = num
	}
	if num > info.Max {
		info.Max = num
	}
	w.blocks++
	if info.Blocks >= int64(w.cfg.SegmentBlocks) || info.RawBytes >= w.cfg.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// openSegmentLocked starts the next segment under its .tmp name.
func (w *Writer) openSegmentLocked() error {
	name := segmentName(w.next)
	tmp := filepath.Join(w.cfg.Dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	seg := &openSegment{tmpPath: tmp, file: f, sha: sha256.New(), info: SegmentInfo{File: name}}
	seg.gz = getGzipWriter(io.MultiWriter(f, seg.sha))
	if _, err := seg.gz.Write([]byte(segmentMagic)); err != nil {
		putGzipWriter(seg.gz)
		f.Close()
		return err
	}
	w.cur = seg
	w.next++
	return nil
}

// rotateLocked finalizes the open segment — flush, fsync, rename into
// place, directory fsync — and commits it to the manifest atomically. Only
// after the manifest rewrite does replay see the segment, so a crash at
// any point in this sequence leaves the archive exactly as it was before
// the segment opened.
func (w *Writer) rotateLocked() error {
	seg := w.cur
	w.cur = nil
	err := seg.gz.Close()
	putGzipWriter(seg.gz)
	if err != nil {
		return fmt.Errorf("archive: finalizing %s: %w", seg.info.File, err)
	}
	if err := seg.file.Sync(); err != nil {
		seg.file.Close()
		return fmt.Errorf("archive: syncing %s: %w", seg.info.File, err)
	}
	if err := seg.file.Close(); err != nil {
		return fmt.Errorf("archive: closing %s: %w", seg.info.File, err)
	}
	seg.info.SHA256 = fmt.Sprintf("%x", seg.sha.Sum(nil))
	final := filepath.Join(w.cfg.Dir, seg.info.File)
	if err := os.Rename(seg.tmpPath, final); err != nil {
		return err
	}
	if err := syncDir(w.cfg.Dir); err != nil {
		return err
	}
	w.man.Segments = append(w.man.Segments, seg.info)
	return saveManifest(w.cfg.Dir, w.man)
}

// Close finalizes the open segment (if it holds any records) and writes
// the manifest. A Writer whose crawl archived nothing still manifests the
// empty archive, so a later Open distinguishes "archived zero blocks" from
// "never archived".
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		if w.cur.info.Blocks > 0 && !w.cur.poisoned {
			return w.rotateLocked()
		}
		// Empty or poisoned open segment: discard the tmp file. A
		// poisoned segment's blocks were reported as Append errors, so
		// the crawl never marked them done and a resume refetches them.
		seg := w.cur
		w.cur = nil
		seg.gz.Close()
		putGzipWriter(seg.gz)
		seg.file.Close()
		if err := os.Remove(seg.tmpPath); err != nil {
			return err
		}
	}
	return saveManifest(w.cfg.Dir, w.man)
}

// Blocks reports how many records this writer appended (duplicates
// included), not counting segments inherited from an earlier session.
func (w *Writer) Blocks() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.blocks
}

// Segments reports how many finalized segments the manifest holds.
func (w *Writer) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.man.Segments)
	if w.cur != nil && w.cur.info.Blocks > 0 && !w.cur.poisoned {
		n++ // the open segment will be finalized by Close
	}
	return n
}

// Dir returns the archive directory.
func (w *Writer) Dir() string { return w.cfg.Dir }

// Chain returns the archived chain name.
func (w *Writer) Chain() string { return w.cfg.Chain }
