package archive

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"

	"repro/internal/blobstore"
)

// WriterConfig parameterizes an archive writer.
type WriterConfig struct {
	// Dir is the archive location: a blob-store URL (file://, mem://,
	// s3://, null://) or a bare directory path. A location holding an
	// existing manifest is appended to (the chain must match), so a
	// resumed crawl extends its archive instead of clobbering it.
	Dir string
	// Store overrides URL resolution with an explicit backend (tests
	// inject Faulty-wrapped stores here). Dir is then only a label.
	Store blobstore.Store
	// Chain names the archived chain ("eos", "tezos", "xrp"); recorded in
	// the manifest and validated on replay.
	Chain string
	// SegmentBlocks rotates the open segment after this many records
	// (default 4096).
	SegmentBlocks int
	// SegmentBytes rotates the open segment after this many raw payload
	// bytes (default 8 MiB). Rotation happens when either bound is hit.
	SegmentBytes int64
}

func (c WriterConfig) withDefaults() WriterConfig {
	if c.SegmentBlocks <= 0 {
		c.SegmentBlocks = 4096
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	return c
}

// Writer tees a crawl's raw block stream into segment objects. Append is
// the collect.CrawlConfig.Tee shape and is safe for concurrent use —
// crawl workers deliver from many goroutines. A segment buffers in memory
// (bounded by SegmentBytes) until complete, then publishes through the
// store's atomic Put and commits to the manifest; an interrupt racing a
// rotation can tear nothing because nothing partial is ever visible.
//
// A failed publish poisons the writer: the failing segment is discarded
// (its blocks were reported as Append errors, so the crawl never marked
// them done and a resume refetches them) and every later Append and Close
// returns the original failure — the archive never silently drops a
// segment from its middle.
type Writer struct {
	mu     sync.Mutex
	cfg    WriterConfig
	store  blobstore.Store
	man    Manifest
	next   int // next segment file number
	cur    *openSegment
	blocks int64 // records across finalized + open segments this session
	fail   error // sticky: first store failure, poisons the writer
	closed bool
}

// openSegment is the in-progress segment: a gzip stream into a memory
// buffer, published as one object on rotation.
type openSegment struct {
	buf  bytes.Buffer
	gz   *gzip.Writer
	info SegmentInfo
	// hdr is the record length-prefix scratch, reused across Appends so
	// the 12-byte header never escapes to the heap per record.
	hdr [12]byte
}

// gzWriterPool recycles gzip compressors across segment rotations; a
// gzip.Writer carries hundreds of kilobytes of deflate state that was
// re-allocated on every segment before this pool existed.
var gzWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// getGzipWriter takes a pooled compressor reset onto w.
func getGzipWriter(w io.Writer) *gzip.Writer {
	gz := gzWriterPool.Get().(*gzip.Writer)
	gz.Reset(w)
	return gz
}

// putGzipWriter returns a closed (or abandoned) compressor to the pool.
func putGzipWriter(gz *gzip.Writer) {
	gz.Reset(io.Discard)
	gzWriterPool.Put(gz)
}

// NewWriter opens cfg.Dir for archiving. An existing manifest is loaded
// and extended; on a filesystem store, stray .tmp files from a previous
// crash are swept.
func NewWriter(cfg WriterConfig) (*Writer, error) {
	cfg = cfg.withDefaults()
	if cfg.Chain == "" {
		return nil, errors.New("archive: writer needs a chain name")
	}
	st := cfg.Store
	if st == nil {
		var err error
		if st, err = blobstore.Resolve(cfg.Dir); err != nil {
			return nil, err
		}
	} else if cfg.Dir == "" {
		cfg.Dir = st.URL()
	}
	// A crashed writer on a filesystem may leave unpublished scratch
	// files; they were never referenced by the manifest, so they are
	// garbage. Other backends have no partial-put residue to sweep.
	if sweeper, ok := st.(interface{ Sweep() error }); ok {
		if err := sweeper.Sweep(); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
	}
	w := &Writer{cfg: cfg, store: st, next: 1, man: Manifest{Version: manifestVersion, Chain: cfg.Chain}}
	man, err := loadManifest(context.Background(), st)
	switch {
	case err == nil:
		if man.Chain != cfg.Chain {
			return nil, fmt.Errorf("archive: %s already archives chain %q, not %q", st.URL(), man.Chain, cfg.Chain)
		}
		man.Version = manifestVersion // rewritten as v2 on the next save
		w.man = man
		for _, s := range man.Segments {
			var n int
			if _, serr := fmt.Sscanf(s.File, "segment-%06d.gz", &n); serr == nil && n >= w.next {
				w.next = n + 1
			}
		}
	case errors.Is(err, fs.ErrNotExist):
		// Fresh archive.
	default:
		return nil, err
	}
	return w, nil
}

// Append archives one raw block. It matches collect.CrawlConfig.Tee.
func (w *Writer) Append(num int64, raw []byte) error {
	if num <= 0 {
		return fmt.Errorf("archive: invalid block number %d", num)
	}
	if len(raw) > maxRecordBytes {
		return fmt.Errorf("archive: block %d payload %d bytes exceeds record limit", num, len(raw))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("archive: append to closed writer")
	}
	if w.fail != nil {
		return fmt.Errorf("archive: writer poisoned by earlier failure: %w", w.fail)
	}
	if w.cur == nil {
		w.openSegmentLocked()
	}
	hdr := w.cur.hdr[:]
	binary.BigEndian.PutUint64(hdr[:8], uint64(num))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(raw)))
	if _, err := w.cur.gz.Write(hdr); err != nil {
		w.poisonLocked(err)
		return fmt.Errorf("archive: writing block %d: %w", num, err)
	}
	if _, err := w.cur.gz.Write(raw); err != nil {
		w.poisonLocked(err)
		return fmt.Errorf("archive: writing block %d: %w", num, err)
	}
	info := &w.cur.info
	info.Blocks++
	info.RawBytes += int64(len(raw))
	if info.Min == 0 || num < info.Min {
		info.Min = num
	}
	if num > info.Max {
		info.Max = num
	}
	w.blocks++
	if info.Blocks >= int64(w.cfg.SegmentBlocks) || info.RawBytes >= w.cfg.SegmentBytes {
		return w.rotateLocked()
	}
	return nil
}

// openSegmentLocked starts the next segment's in-memory stream.
func (w *Writer) openSegmentLocked() {
	seg := &openSegment{info: SegmentInfo{File: segmentName(w.next)}}
	seg.buf.Grow(64 << 10)
	seg.gz = getGzipWriter(&seg.buf)
	seg.gz.Write([]byte(segmentMagic)) // buffer writes cannot fail
	w.cur = seg
	w.next++
}

// poisonLocked discards the open segment and marks the writer failed.
func (w *Writer) poisonLocked(err error) {
	w.fail = err
	if w.cur != nil {
		w.cur.gz.Close()
		putGzipWriter(w.cur.gz)
		w.cur = nil
	}
}

// rotateLocked finalizes the open segment — flush the compressor, hash,
// publish atomically — and commits it to the manifest. Only after the
// manifest rewrite does replay see the segment, so a failure at any point
// leaves the archive exactly as it was before the segment opened (and
// poisons the writer: see Writer).
func (w *Writer) rotateLocked() error {
	seg := w.cur
	w.cur = nil
	err := seg.gz.Close()
	putGzipWriter(seg.gz)
	if err != nil {
		w.fail = err
		return fmt.Errorf("archive: finalizing %s: %w", seg.info.File, err)
	}
	data := seg.buf.Bytes()
	seg.info.SHA256 = sha256Hex(data)
	seg.info.CompBytes = int64(len(data))
	ctx := context.Background()
	if err := w.store.Put(ctx, seg.info.File, data); err != nil {
		w.fail = err
		return fmt.Errorf("archive: publishing %s to %s: %w", seg.info.File, w.store.URL(), err)
	}
	w.man.Segments = append(w.man.Segments, seg.info)
	if err := saveManifest(ctx, w.store, w.man); err != nil {
		// The segment object exists but is unreferenced; a resumed crawl
		// overwrites it under the same name. Poison so nothing after this
		// hole gets archived.
		w.fail = err
		return err
	}
	return nil
}

// Close finalizes the open segment (if it holds any records) and writes
// the manifest. A Writer whose crawl archived nothing still manifests the
// empty archive, so a later Open distinguishes "archived zero blocks"
// from "never archived". A poisoned writer returns its original failure
// and touches nothing.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.fail != nil {
		return fmt.Errorf("archive: writer poisoned by earlier failure: %w", w.fail)
	}
	if w.cur != nil {
		if w.cur.info.Blocks > 0 {
			return w.rotateLocked()
		}
		// Empty open segment: just drop the buffer.
		seg := w.cur
		w.cur = nil
		seg.gz.Close()
		putGzipWriter(seg.gz)
	}
	return saveManifest(context.Background(), w.store, w.man)
}

// Blocks reports how many records this writer appended (duplicates
// included), not counting segments inherited from an earlier session.
func (w *Writer) Blocks() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.blocks
}

// Segments reports how many finalized segments the manifest holds.
func (w *Writer) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.man.Segments)
	if w.cur != nil && w.cur.info.Blocks > 0 {
		n++ // the open segment will be finalized by Close
	}
	return n
}

// Dir returns the archive location as configured.
func (w *Writer) Dir() string { return w.cfg.Dir }

// Chain returns the archived chain name.
func (w *Writer) Chain() string { return w.cfg.Chain }
