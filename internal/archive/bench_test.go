package archive

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/blobstore/s3stub"
	"repro/internal/wire"
)

// BenchmarkArchiveWrite measures the tee-side cost per archived block:
// what a live crawl pays to make its stream durable.
func BenchmarkArchiveWrite(b *testing.B) {
	raw := payloadN(1, 4096)
	dir := b.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(int64(i+1), raw); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkArchiveReplay measures the fetch side: open + full replay of a
// thousand-block archive, the path cmd/report -replay runs per chain.
func BenchmarkArchiveReplay(b *testing.B) {
	const blocks = 1000
	dir := b.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for num := int64(blocks); num >= 1; num-- {
		raw := payloadN(num, 2048)
		bytes += int64(len(raw))
		if err := w.Append(num, raw); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for num := int64(blocks); num >= 1; num-- {
			raw, err := r.FetchBlock(context.Background(), num)
			if err != nil {
				b.Fatal(err)
			}
			// The consumer owns the buffer (Reader.OwnsRaw) and recycles it
			// exactly as collect.Block.Release does in the live replay path.
			wire.PutRaw(raw)
		}
	}
}

// benchStore builds one store per backend for the per-backend benches;
// the returned cleanup tears down anything external (the s3 stub).
func benchStore(b *testing.B, backend string) blobstore.Store {
	b.Helper()
	switch backend {
	case "file":
		return blobstore.NewFile(b.TempDir())
	case "mem":
		return blobstore.NewMemory()
	case "s3":
		stub := s3stub.New()
		b.Cleanup(stub.Close)
		st, err := blobstore.Resolve(stub.URL("bench", ""))
		if err != nil {
			b.Fatal(err)
		}
		return st
	case "null":
		return blobstore.NewNull()
	}
	b.Fatalf("unknown backend %q", backend)
	return nil
}

// BenchmarkArchiveWriteFile and friends split the tee-side cost per
// backend: file shows the fsync+rename tax, mem the pure format cost, s3
// the HTTP round-trip (against a loopback stub), null the compression
// floor with storage subtracted.
func BenchmarkArchiveWriteFile(b *testing.B) { benchArchiveWrite(b, "file") }
func BenchmarkArchiveWriteMem(b *testing.B)  { benchArchiveWrite(b, "mem") }
func BenchmarkArchiveWriteS3(b *testing.B)   { benchArchiveWrite(b, "s3") }
func BenchmarkArchiveWriteNull(b *testing.B) { benchArchiveWrite(b, "null") }

func benchArchiveWrite(b *testing.B, backend string) {
	raw := payloadN(1, 4096)
	w, err := NewWriter(WriterConfig{Store: benchStore(b, backend), Chain: "eos"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(int64(i+1), raw); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplayFile and friends time open + parallel replay per
// backend, the path cmd/report -replay runs per chain.
func BenchmarkReplayFile(b *testing.B) { benchReplay(b, "file") }
func BenchmarkReplayMem(b *testing.B)  { benchReplay(b, "mem") }
func BenchmarkReplayS3(b *testing.B)   { benchReplay(b, "s3") }

func benchReplay(b *testing.B, backend string) {
	const blocks = 1000
	st := benchStore(b, backend)
	w, err := NewWriter(WriterConfig{Store: st, Chain: "eos", SegmentBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for num := int64(blocks); num >= 1; num-- {
		raw := payloadN(num, 2048)
		total += int64(len(raw))
		if err := w.Append(num, raw); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenWith("", OpenOptions{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		err = r.Replay(context.Background(), 0, func(worker int, num int64, raw []byte) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenRange times a sub-range open of a large archive — the
// per-segment range index at work: only the covering segment is fetched
// and verified.
func BenchmarkOpenRange(b *testing.B) {
	st := blobstore.NewMemory()
	w, err := NewWriter(WriterConfig{Store: st, Chain: "eos", SegmentBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	for num := int64(1); num <= 4096; num++ {
		if err := w.Append(num, payloadN(num, 2048)); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenWith("", OpenOptions{Store: st, From: 1024, To: 1200})
		if err != nil {
			b.Fatal(err)
		}
		if r.Blocks() != 177 {
			b.Fatalf("range open indexed %d blocks", r.Blocks())
		}
	}
}

// payloadN fabricates a raw block body of roughly n bytes.
func payloadN(num int64, n int) []byte {
	body := make([]byte, n)
	copy(body, fmt.Sprintf(`{"block_num":%d,"body":"`, num))
	for i := range body {
		if body[i] == 0 {
			body[i] = byte('a' + (num+int64(i))%23)
		}
	}
	body[n-2], body[n-1] = '"', '}'
	return body
}
