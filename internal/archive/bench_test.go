package archive

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/wire"
)

// BenchmarkArchiveWrite measures the tee-side cost per archived block:
// what a live crawl pays to make its stream durable.
func BenchmarkArchiveWrite(b *testing.B) {
	raw := payloadN(1, 4096)
	dir := b.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(int64(i+1), raw); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkArchiveReplay measures the fetch side: open + full replay of a
// thousand-block archive, the path cmd/report -replay runs per chain.
func BenchmarkArchiveReplay(b *testing.B) {
	const blocks = 1000
	dir := b.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 256})
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for num := int64(blocks); num >= 1; num-- {
		raw := payloadN(num, 2048)
		bytes += int64(len(raw))
		if err := w.Append(num, raw); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		for num := int64(blocks); num >= 1; num-- {
			raw, err := r.FetchBlock(context.Background(), num)
			if err != nil {
				b.Fatal(err)
			}
			// The consumer owns the buffer (Reader.OwnsRaw) and recycles it
			// exactly as collect.Block.Release does in the live replay path.
			wire.PutRaw(raw)
		}
	}
}

// payloadN fabricates a raw block body of roughly n bytes.
func payloadN(num int64, n int) []byte {
	body := make([]byte, n)
	copy(body, fmt.Sprintf(`{"block_num":%d,"body":"`, num))
	for i := range body {
		if body[i] == 0 {
			body[i] = byte('a' + (num+int64(i))%23)
		}
	}
	body[n-2], body[n-1] = '"', '}'
	return body
}
