package archive

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDiscoverSingleArchive(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 10, 4)
	dirs, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != dir {
		t.Fatalf("dirs = %v, want [%s]", dirs, dir)
	}
}

func TestDiscoverParentDirectory(t *testing.T) {
	parent := t.TempDir()
	// Out-of-order creation; Discover must return sorted paths.
	for _, chain := range []string{"xrp", "eos", "tezos"} {
		writeArchive(t, filepath.Join(parent, chain), chain, 5, 4)
	}
	// Noise that must be ignored: a plain file and a dir with no manifest.
	if err := os.WriteFile(filepath.Join(parent, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(parent, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirs, err := Discover(parent)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(parent, "eos"),
		filepath.Join(parent, "tezos"),
		filepath.Join(parent, "xrp"),
	}
	if len(dirs) != len(want) {
		t.Fatalf("dirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
}

func TestDiscoverNothing(t *testing.T) {
	if _, err := Discover(t.TempDir()); err == nil {
		t.Fatal("Discover of an empty dir succeeded")
	}
	if _, err := Discover(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Discover of a missing dir succeeded")
	}
}
