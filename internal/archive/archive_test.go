package archive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/blobstore"
)

// payload fabricates a deterministic raw block body.
func payload(num int64) []byte {
	return []byte(fmt.Sprintf(`{"block_num":%d,"body":"%032d"}`, num, num))
}

// writeArchive archives blocks [1, n] (in an interleaved order, like a
// stride-sharded crawl delivers) and closes the writer.
func writeArchive(t *testing.T, dir string, chain string, n int64, segBlocks int) {
	t.Helper()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: chain, SegmentBlocks: segBlocks})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave evens-descending then odds-descending: archives record
	// arrival order, not height order.
	for num := n; num >= 1; num -= 2 {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	for num := n - 1; num >= 1; num -= 2 {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 50, 7) // several rotations
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chain() != "eos" {
		t.Fatalf("chain = %q", r.Chain())
	}
	if r.Blocks() != 50 || r.From() != 1 || r.To() != 50 {
		t.Fatalf("blocks=%d from=%d to=%d", r.Blocks(), r.From(), r.To())
	}
	if !r.Covers(1, 50) {
		t.Fatal("archive should cover [1,50]")
	}
	if r.Covers(1, 51) || r.Covers(0, 50) {
		t.Fatal("Covers accepted an uncovered range")
	}
	head, err := r.Head(context.Background())
	if err != nil || head != 50 {
		t.Fatalf("head = %d, %v", head, err)
	}
	for num := int64(1); num <= 50; num++ {
		raw, err := r.FetchBlock(context.Background(), num)
		if err != nil {
			t.Fatalf("fetch %d: %v", num, err)
		}
		if !bytes.Equal(raw, payload(num)) {
			t.Fatalf("block %d replayed wrong bytes: %s", num, raw)
		}
	}
	if _, err := r.FetchBlock(context.Background(), 51); err == nil {
		t.Fatal("fetching an unarchived block succeeded")
	}
}

// TestFetchBlockConcurrent exercises the segment cache under the same
// parallel access pattern stream workers produce.
func TestFetchBlockConcurrent(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 64, 5)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(offset int64) {
			defer wg.Done()
			for num := int64(64) - offset; num >= 1; num -= 8 {
				raw, err := r.FetchBlock(context.Background(), num)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(raw, payload(num)) {
					errs <- fmt.Errorf("block %d: wrong bytes", num)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWriterAppendsAcrossSessions: a resumed crawl reopens the archive and
// extends it; the union replays, and the chains must match.
func TestWriterAppendsAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	w1, err := NewWriter(WriterConfig{Dir: dir, Chain: "tezos", SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(10); num > 5; num-- {
		if err := w1.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWriter(WriterConfig{Dir: dir, Chain: "tezos", SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(5); num >= 1; num-- {
		if err := w2.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Covers(1, 10) {
		t.Fatalf("union archive covers [%d,%d], blocks %d", r.From(), r.To(), r.Blocks())
	}

	if _, err := NewWriter(WriterConfig{Dir: dir, Chain: "xrp"}); err == nil {
		t.Fatal("writer accepted a chain mismatch against an existing manifest")
	}
}

// TestDuplicateRecordsDedupe: a crawl cancelled between the tee and the
// stream delivery re-archives the block on resume; replay keeps the first
// copy and still counts it once.
func TestDuplicateRecordsDedupe(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range []int64{5, 4, 3, 4, 2, 1, 4} {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 5 {
		t.Fatalf("deduped block count = %d, want 5", r.Blocks())
	}
	if !r.Covers(1, 5) {
		t.Fatal("archive with duplicates should still cover [1,5]")
	}
	raw, err := r.FetchBlock(context.Background(), 4)
	if err != nil || !bytes.Equal(raw, payload(4)) {
		t.Fatalf("duplicated block replayed wrong: %s, %v", raw, err)
	}
}

// TestOpenMissingManifest: a directory that was never archived reports
// fs.ErrNotExist, not corruption.
func TestOpenMissingManifest(t *testing.T) {
	if _, err := Open(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
}

// TestEmptyArchiveManifests: a crawl that archived nothing still writes a
// manifest, and replay reports the emptiness clearly.
func TestEmptyArchiveManifests(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 0 || r.Covers(1, 1) {
		t.Fatal("empty archive claims coverage")
	}
	if _, err := r.Head(context.Background()); err == nil {
		t.Fatal("empty archive returned a head")
	}
}

// TestCrashMidSegmentLeavesNoTorn: abandoning a writer without Close (a
// crash, or SIGKILL racing a rotation) must leave the manifest pointing
// only at fully finalized segments — the open segment buffers in memory
// and simply evaporates, publishing nothing partial.
func TestCrashMidSegmentLeavesNoTorn(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4 appends finalize segment 1 (atomic publish + manifest commit);
	// 2 more sit in the open segment's buffer when the "crash" lands.
	for num := int64(6); num >= 1; num-- {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the writer is simply abandoned.

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("archive after crash failed to open: %v", err)
	}
	if r.Blocks() != 4 {
		t.Fatalf("crashed archive replays %d blocks, want the 4 finalized ones", r.Blocks())
	}
	if !r.Covers(3, 6) || r.Covers(1, 6) {
		t.Fatalf("crashed archive coverage wrong: [%d,%d]", r.From(), r.To())
	}

	// The next session re-archives what was lost.
	w2, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(2); num >= 1; num-- {
		if err := w2.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Covers(1, 6) {
		t.Fatalf("recovered archive covers [%d,%d] with %d blocks", r2.From(), r2.To(), r2.Blocks())
	}
}

// TestFailedPutPoisonsWriter: when publishing a segment fails (disk full,
// endpoint outage), the writer must report the failure on that Append,
// refuse everything after it, and never manifest the lost segment — while
// the segments finalized before the failure stay replayable. (The lost
// blocks' crawl-side fate is handled by collect.ErrTee — the checkpoint is
// not saved, so a resume refetches them.)
func TestFailedPutPoisonsWriter(t *testing.T) {
	for _, backend := range []string{"file", "mem"} {
		t.Run(backend, func(t *testing.T) {
			var base blobstore.Store
			if backend == "file" {
				base = blobstore.NewFile(t.TempDir())
			} else {
				base = blobstore.NewMemory()
			}
			faulty := blobstore.NewFaulty(base)
			w, err := NewWriter(WriterConfig{Store: faulty, Chain: "eos", SegmentBlocks: 3})
			if err != nil {
				t.Fatal(err)
			}
			// Segment 1 ({6,5,4}) publishes cleanly: one segment put + one
			// manifest put. The next segment's put fails.
			boom := errors.New("endpoint on fire")
			faulty.BreakAfter(blobstore.OpPut, 2, -1, boom)
			for num := int64(6); num >= 2; num-- {
				if err := w.Append(num, payload(num)); err != nil {
					t.Fatal(err)
				}
			}
			// This append completes segment 2 ({3,2,1}) and triggers the
			// failing publish.
			if err := w.Append(1, payload(1)); !errors.Is(err, boom) {
				t.Fatalf("rotating append did not surface the put failure: %v", err)
			}
			if err := w.Append(7, payload(7)); err == nil {
				t.Fatal("append after a failed publish succeeded on a poisoned writer")
			}
			if err := w.Close(); !errors.Is(err, boom) {
				t.Fatalf("closing a poisoned writer: %v (want the original failure)", err)
			}

			faulty.Clear()
			r, err := OpenWith("", OpenOptions{Store: base})
			if err != nil {
				t.Fatalf("archive after a discarded poisoned segment failed to open: %v", err)
			}
			if !r.Covers(4, 6) {
				t.Fatalf("finalized pre-failure segment lost: covers [%d, %d]", r.From(), r.To())
			}
			if r.Covers(3, 3) || r.Covers(2, 2) || r.Covers(1, 1) {
				t.Fatal("poisoned segment's blocks leaked into the manifest")
			}
		})
	}
}

// corruptCase mutates a valid archive and says what Open must report.
func TestCorruptionFailsLoudly(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"truncated segment", func(t *testing.T, dir string) {
			seg := firstSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped byte", func(t *testing.T, dir string) {
			seg := firstSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xff
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing segment", func(t *testing.T, dir string) {
			if err := os.Remove(firstSegment(t, dir)); err != nil {
				t.Fatal(err)
			}
		}},
		{"manifest block count mismatch", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m *Manifest) { m.Segments[0].Blocks++ })
		}},
		{"manifest height range mismatch", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m *Manifest) { m.Segments[0].Max++ })
		}},
		{"manifest raw byte mismatch", func(t *testing.T, dir string) {
			editManifest(t, dir, func(m *Manifest) { m.Segments[0].RawBytes-- })
		}},
		{"truncated gzip stream with recomputed checksum", func(t *testing.T, dir string) {
			// Defeats the checksum so the record walk itself must catch it.
			seg := firstSegment(t, dir)
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			trunc := data[:len(data)-4]
			if err := os.WriteFile(seg, trunc, 0o644); err != nil {
				t.Fatal(err)
			}
			// Also fix up the size so the record walk itself is what trips.
			editManifest(t, dir, func(m *Manifest) {
				m.Segments[0].SHA256 = sha256Hex(trunc)
				m.Segments[0].CompBytes = int64(len(trunc))
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeArchive(t, dir, "eos", 20, 6)
			tc.corrupt(t, dir)
			_, err := Open(dir)
			if err == nil {
				t.Fatal("corrupted archive opened cleanly")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("corruption not reported as ErrCorrupt: %v", err)
			}
		})
	}
}

func firstSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "segment-*.gz"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return segs[0]
}

func editManifest(t *testing.T, dir string, edit func(*Manifest)) {
	t.Helper()
	ctx := context.Background()
	st := blobstore.NewFile(dir)
	m, err := loadManifest(ctx, st)
	if err != nil {
		t.Fatal(err)
	}
	edit(&m)
	if err := saveManifest(ctx, st, m); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRotationBySize: the byte bound rotates segments independently
// of the record-count bound.
func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(6); num >= 1; num-- {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Segments() < 2 {
		t.Fatalf("size bound never rotated: %d segments", w.Segments())
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Covers(1, 6) {
		t.Fatal("size-rotated archive incomplete")
	}
}

// TestReplayDeliversEachBlockOnce: the parallel replay must visit every
// distinct block exactly once with the same bytes FetchBlock serves,
// duplicates (re-archived blocks) included, at every worker count.
func TestReplayDeliversEachBlockOnce(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(40); num >= 1; num-- {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-archive a few blocks, as a resumed crawl does; the duplicates
	// land in later segments and must not be delivered.
	for _, num := range []int64{40, 17, 3} {
		if err := w.Append(num, append(payload(num), []byte("-stale")...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 16} {
		var mu sync.Mutex
		seen := make(map[int64]int)
		err := r.Replay(context.Background(), workers, func(worker int, num int64, raw []byte) error {
			if worker < 0 || worker >= workers {
				return fmt.Errorf("worker index %d out of range", worker)
			}
			if !bytes.Equal(raw, payload(num)) {
				return fmt.Errorf("block %d: replay delivered wrong bytes %q", num, raw)
			}
			mu.Lock()
			seen[num]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if int64(len(seen)) != r.Blocks() {
			t.Fatalf("workers=%d: visited %d blocks, want %d", workers, len(seen), r.Blocks())
		}
		for num, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: block %d visited %d times", workers, num, n)
			}
		}
	}
}

// TestReplayStopsOnVisitError: the first visit error surfaces and stops
// the fan-out promptly.
func TestReplayStopsOnVisitError(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 30, 4)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err = r.Replay(context.Background(), 3, func(worker int, num int64, raw []byte) error {
		if num == 13 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("visit error not surfaced: %v", err)
	}
}

// TestReplayCancelled: a cancelled context surfaces as its error.
func TestReplayCancelled(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 30, 4)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = r.Replay(ctx, 2, func(worker int, num int64, raw []byte) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay returned %v", err)
	}
}

// TestReplayDetectsPostOpenTamper: a segment modified after Open fails the
// replay walk's re-verification on a cache miss instead of feeding stale
// or corrupt bytes to visitors.
func TestReplayDetectsPostOpenTamper(t *testing.T) {
	dir := t.TempDir()
	writeArchive(t, dir, "eos", 60, 4) // 15 segments, far beyond the cache
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the Open-seeded cache so every segment takes the miss path.
	r.mu.Lock()
	r.cache = make(map[int][]byte)
	r.order = nil
	r.mu.Unlock()

	seg := firstSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = r.Replay(context.Background(), 2, func(worker int, num int64, raw []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered segment replayed without ErrCorrupt: %v", err)
	}
}

// TestOpenParallelMatchesSerial: any verification fan-out produces the
// same reader state — index size, bounds, duplicate resolution — as the
// serial walk.
func TestOpenParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 3})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(25); num >= 1; num-- {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicates whose first-written copy must win under any fan-out.
	for _, num := range []int64{25, 9} {
		if err := w.Append(num, append(payload(num), []byte("-dup")...)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	serial, err := OpenParallel(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 9} {
		par, err := OpenParallel(dir, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Blocks() != serial.Blocks() || par.From() != serial.From() || par.To() != serial.To() {
			t.Fatalf("workers=%d: blocks/from/to %d/%d/%d vs serial %d/%d/%d",
				workers, par.Blocks(), par.From(), par.To(), serial.Blocks(), serial.From(), serial.To())
		}
		for num, ref := range serial.index {
			if par.index[num] != ref {
				t.Fatalf("workers=%d: block %d indexed at %+v, serial at %+v", workers, num, par.index[num], ref)
			}
		}
	}
}
