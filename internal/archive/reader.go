package archive

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/wire"
)

// recordRef locates one block's payload inside a segment's uncompressed
// stream.
type recordRef struct {
	seg int // index into manifest.Segments
	off int64
	n   int32
}

// Reader replays an archived crawl. It implements the collect.BlockFetcher
// contract (Head + FetchBlock), so collect.Stream and core.IngestCrawl
// drive it exactly like a live endpoint — except every fetch is a local
// read. Open verifies the whole archive up front; FetchBlock is safe for
// concurrent use (stream workers fetch in parallel).
type Reader struct {
	dir   string
	man   Manifest
	index map[int64]recordRef
	min   int64
	max   int64

	// Segment payloads decompress lazily and stay cached; the crawl's
	// stride-sharded reverse walk revisits each segment many times, so the
	// cache keeps the most recently touched few decompressed.
	mu       sync.Mutex
	cache    map[int][]byte
	order    []int // cache keys, least recently used first
	maxCache int
}

// Open loads dir's manifest and verifies every referenced segment:
// checksum over the compressed bytes, magic, record walk, and agreement
// with the manifest's block count, bounds and byte totals. Any mismatch
// fails with an error wrapping ErrCorrupt. A directory without a manifest
// fails with fs.ErrNotExist.
func Open(dir string) (*Reader, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		dir:      dir,
		man:      man,
		index:    make(map[int64]recordRef),
		cache:    make(map[int][]byte),
		maxCache: 4,
	}
	for i, seg := range man.Segments {
		if err := r.verifySegment(i, seg); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// verifySegment checks one segment against its manifest entry and indexes
// its records.
func (r *Reader) verifySegment(i int, seg SegmentInfo) error {
	path := filepath.Join(r.dir, seg.File)
	compressed, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("archive: manifest references missing segment %s: %w", seg.File, ErrCorrupt)
		}
		return err
	}
	if got := sha256Hex(compressed); got != seg.SHA256 {
		return fmt.Errorf("archive: segment %s checksum mismatch (manifest %s, file %s — truncated or modified): %w",
			seg.File, short(seg.SHA256), short(got), ErrCorrupt)
	}
	payload, err := decompressSegment(compressed)
	if err != nil {
		return fmt.Errorf("archive: segment %s: %v: %w", seg.File, err, ErrCorrupt)
	}
	var (
		blocks   int64
		rawBytes int64
		min, max int64
	)
	for off := int64(0); off < int64(len(payload)); {
		if int64(len(payload))-off < 12 {
			return fmt.Errorf("archive: segment %s ends mid-record header: %w", seg.File, ErrCorrupt)
		}
		num := int64(binary.BigEndian.Uint64(payload[off : off+8]))
		n := int64(binary.BigEndian.Uint32(payload[off+8 : off+12]))
		off += 12
		if num <= 0 || n > maxRecordBytes || off+n > int64(len(payload)) {
			return fmt.Errorf("archive: segment %s has a malformed record for block %d: %w", seg.File, num, ErrCorrupt)
		}
		// First occurrence wins: a duplicate is the same block re-archived
		// by a resumed crawl (the tee lands before stream delivery, so a
		// cancellation between the two re-fetches the block).
		if _, dup := r.index[num]; !dup {
			r.index[num] = recordRef{seg: i, off: off, n: int32(n)}
		}
		blocks++
		rawBytes += n
		if min == 0 || num < min {
			min = num
		}
		if num > max {
			max = num
		}
		off += n
	}
	if blocks != seg.Blocks || rawBytes != seg.RawBytes || min != seg.Min || max != seg.Max {
		return fmt.Errorf("archive: segment %s disagrees with manifest (blocks %d/%d, bytes %d/%d, range [%d,%d]/[%d,%d]): %w",
			seg.File, blocks, seg.Blocks, rawBytes, seg.RawBytes, min, max, seg.Min, seg.Max, ErrCorrupt)
	}
	if r.min == 0 || min < r.min {
		r.min = min
	}
	if max > r.max {
		r.max = max
	}
	return nil
}

// gzReaderPool recycles gzip decompressors across segment reads: Open
// verifies every segment and replay re-reads them on cache misses, so one
// crawl inflates the same few hundred kilobytes of inflate state many
// times without the pool.
var gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// decompressSegment gunzips a segment and strips its magic.
func decompressSegment(compressed []byte) ([]byte, error) {
	gz := gzReaderPool.Get().(*gzip.Reader)
	if err := gz.Reset(bytes.NewReader(compressed)); err != nil {
		gzReaderPool.Put(gz)
		return nil, fmt.Errorf("opening gzip stream: %v", err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		gzReaderPool.Put(gz)
		return nil, fmt.Errorf("decompressing: %v", err)
	}
	err = gz.Close()
	gzReaderPool.Put(gz)
	if err != nil {
		return nil, fmt.Errorf("closing gzip stream: %v", err)
	}
	if len(payload) < len(segmentMagic) || string(payload[:len(segmentMagic)]) != segmentMagic {
		return nil, fmt.Errorf("bad segment magic")
	}
	return payload[len(segmentMagic):], nil
}

// short abbreviates a hex digest for error messages.
func short(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}

// Chain returns the archived chain name.
func (r *Reader) Chain() string { return r.man.Chain }

// Segments reports how many segment files the archive holds.
func (r *Reader) Segments() int { return len(r.man.Segments) }

// Blocks counts the distinct archived block numbers.
func (r *Reader) Blocks() int64 { return int64(len(r.index)) }

// From returns the lowest archived block number (0 when empty).
func (r *Reader) From() int64 { return r.min }

// To returns the highest archived block number (0 when empty).
func (r *Reader) To() int64 { return r.max }

// Covers reports whether every block in [from, to] is archived.
func (r *Reader) Covers(from, to int64) bool {
	if from <= 0 || to < from {
		return false
	}
	for num := from; num <= to; num++ {
		if _, ok := r.index[num]; !ok {
			return false
		}
	}
	return true
}

// Head implements collect.BlockFetcher: the archive's newest block stands
// in for the live chain head.
func (r *Reader) Head(ctx context.Context) (int64, error) {
	if r.max == 0 {
		return 0, fmt.Errorf("archive: %s is empty", r.dir)
	}
	return r.max, nil
}

// FetchBlock implements collect.BlockFetcher from disk. The returned slice
// is a copy in a recycled buffer — exclusively the caller's (see OwnsRaw).
func (r *Reader) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	ref, ok := r.index[num]
	if !ok {
		return nil, fmt.Errorf("archive: block %d is not archived in %s", num, r.dir)
	}
	payload, err := r.segmentPayload(ref.seg)
	if err != nil {
		return nil, err
	}
	raw := wire.GetRaw()
	if cap(raw) < int(ref.n) {
		// Too small for this record: return it rather than letting append
		// strand it, so the pool converges on record-sized buffers.
		wire.PutRaw(raw)
		raw = make([]byte, 0, ref.n)
	}
	raw = append(raw, payload[ref.off:ref.off+int64(ref.n)]...)
	return raw, nil
}

// OwnsRaw marks FetchBlock results as exclusively caller-owned, so replay
// streams recycle payload buffers exactly like live crawls (the
// collect.RawRecycler contract).
func (r *Reader) OwnsRaw() bool { return true }

// segmentPayload returns a segment's uncompressed stream, from cache or by
// re-reading the file. Open already verified the bytes; a file that fails
// to re-read here was modified after Open.
func (r *Reader) segmentPayload(i int) ([]byte, error) {
	r.mu.Lock()
	if payload, ok := r.cache[i]; ok {
		r.touchLocked(i)
		r.mu.Unlock()
		return payload, nil
	}
	r.mu.Unlock()

	seg := r.man.Segments[i]
	compressed, err := os.ReadFile(filepath.Join(r.dir, seg.File))
	if err != nil {
		return nil, err
	}
	if got := sha256Hex(compressed); got != seg.SHA256 {
		return nil, fmt.Errorf("archive: segment %s changed after open (checksum %s, expected %s): %w",
			seg.File, short(got), short(seg.SHA256), ErrCorrupt)
	}
	payload, err := decompressSegment(compressed)
	if err != nil {
		return nil, fmt.Errorf("archive: segment %s: %v: %w", seg.File, err, ErrCorrupt)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.cache[i]; ok {
		// Another fetcher decompressed it concurrently; keep theirs.
		r.touchLocked(i)
		return cached, nil
	}
	r.cache[i] = payload
	r.order = append(r.order, i)
	for len(r.order) > r.maxCache {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.cache, evict)
	}
	return payload, nil
}

// touchLocked moves segment i to the back of the eviction order.
func (r *Reader) touchLocked(i int) {
	for k, v := range r.order {
		if v == i {
			r.order = append(append(r.order[:k:k], r.order[k+1:]...), i)
			return
		}
	}
}
