package archive

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/blobstore"
	"repro/internal/wire"
)

// recordRef locates one block's payload inside a segment's uncompressed
// stream.
type recordRef struct {
	seg int // index into manifest.Segments
	off int64
	n   int32
}

// OpenOptions parameterizes OpenWith.
type OpenOptions struct {
	// Workers bounds segment verification fan-out (0 or less = one per
	// CPU).
	Workers int
	// From and To restrict the open to blocks in [From, To]. Both zero
	// means the whole archive. A ranged open verifies, fetches and indexes
	// only the covering segments — the ones whose manifest [min, max]
	// intersects the range — which is the point of the per-segment range
	// index: replaying a slice of a huge remote archive moves only the
	// bytes that slice lives in.
	From, To int64
	// Store overrides URL resolution with an explicit backend (tests
	// inject Faulty-wrapped or counted stores here).
	Store blobstore.Store
}

// Reader replays an archived crawl. It implements the collect.BlockFetcher
// contract (Head + FetchBlock), so collect.Stream and core.IngestCrawl
// drive it exactly like a live endpoint — except every fetch is a blob
// read. Open verifies everything it will read up front; FetchBlock is
// safe for concurrent use (stream workers fetch in parallel).
type Reader struct {
	url      string
	store    blobstore.Store
	man      Manifest
	covering []int // manifest indices this open reads, in manifest order
	index    map[int64]recordRef
	min      int64
	max      int64

	// Segment payloads decompress lazily and stay cached; the crawl's
	// stride-sharded reverse walk revisits each segment many times, so the
	// cache keeps the most recently touched few decompressed.
	mu       sync.Mutex
	cache    map[int][]byte
	order    []int // cache keys, least recently used first
	maxCache int
}

// Open loads the manifest at location (a store URL or bare path) and
// verifies every referenced segment: compressed size, checksum, magic,
// record walk, and agreement with the manifest's block count, bounds and
// byte totals. Any mismatch fails with an error wrapping ErrCorrupt. A
// location without a manifest fails with fs.ErrNotExist. Segments verify
// concurrently (one worker per CPU).
func Open(location string) (*Reader, error) { return OpenWith(location, OpenOptions{}) }

// OpenParallel is Open with an explicit verification fan-out.
func OpenParallel(location string, workers int) (*Reader, error) {
	return OpenWith(location, OpenOptions{Workers: workers})
}

// OpenRange opens only the slice of the archive covering [from, to]:
// segments whose manifest range misses the interval are neither fetched
// nor verified, and blocks outside it are not indexed or replayed.
func OpenRange(location string, from, to int64) (*Reader, error) {
	return OpenWith(location, OpenOptions{From: from, To: to})
}

// OpenWith is Open with every knob exposed. The result is identical to a
// serial open — per-segment verdicts merge in manifest order, so duplicate
// resolution ("first occurrence wins") and error selection do not depend
// on worker scheduling — and each verified payload is kept in the
// reader's segment cache, so replay does not decompress recently verified
// segments a second time.
func OpenWith(location string, opts OpenOptions) (*Reader, error) {
	st := opts.Store
	if st == nil {
		var err error
		if st, err = blobstore.Resolve(location); err != nil {
			return nil, err
		}
	} else if location == "" {
		location = st.URL()
	}
	if opts.From != 0 || opts.To != 0 {
		if opts.From <= 0 || opts.To < opts.From {
			return nil, fmt.Errorf("archive: invalid block range [%d, %d]", opts.From, opts.To)
		}
	}
	man, err := loadManifest(context.Background(), st)
	if err != nil {
		return nil, err
	}
	r := &Reader{
		url:      location,
		store:    st,
		man:      man,
		index:    make(map[int64]recordRef),
		cache:    make(map[int][]byte),
		maxCache: 4,
	}
	// The covering set: every segment for a full open, only the ones whose
	// [Min, Max] intersects [From, To] for a ranged one. Any in-range
	// block necessarily lives in an intersecting segment, so skipping the
	// rest loses nothing.
	for i, seg := range man.Segments {
		if opts.From > 0 && (seg.Max < opts.From || seg.Min > opts.To) {
			continue
		}
		r.covering = append(r.covering, i)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.covering) {
		workers = len(r.covering)
	}
	type verdict struct {
		records []segRecord
		payload []byte
		err     error
	}
	verdicts := make([]verdict, len(r.covering))
	next := int64(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= len(r.covering) {
					return
				}
				i := r.covering[k]
				records, payload, err := r.verifySegment(man.Segments[i])
				// Only the newest maxCache payloads are kept for the
				// cache below; dropping the rest here keeps Open's peak
				// memory at O(workers + maxCache) segments instead of
				// the whole uncompressed archive.
				if k < len(r.covering)-r.maxCache {
					payload = nil
				}
				verdicts[k] = verdict{records, payload, err}
			}
		}()
	}
	wg.Wait()
	// Merge in manifest order: the first error by segment position wins,
	// and a duplicate block number resolves to its earliest-written record
	// exactly as the old serial walk resolved it.
	for k := range verdicts {
		if err := verdicts[k].err; err != nil {
			return nil, err
		}
	}
	for k, v := range verdicts {
		i := r.covering[k]
		for _, rec := range v.records {
			if opts.From > 0 && (rec.num < opts.From || rec.num > opts.To) {
				continue
			}
			if _, dup := r.index[rec.num]; !dup {
				r.index[rec.num] = recordRef{seg: i, off: rec.off, n: rec.n}
			}
			if r.min == 0 || rec.num < r.min {
				r.min = rec.num
			}
			if rec.num > r.max {
				r.max = rec.num
			}
		}
	}
	// Seed the payload cache with the newest verified segments: the
	// reverse-chronological crawl replays them first, and re-reading what
	// Open just decompressed was the old path's wasted second pass.
	for k := len(verdicts) - r.maxCache; k < len(verdicts); k++ {
		if k < 0 {
			continue
		}
		r.cache[r.covering[k]] = verdicts[k].payload
		r.order = append(r.order, r.covering[k])
	}
	return r, nil
}

// segRecord is one verified record's location inside its segment.
type segRecord struct {
	num int64
	off int64
	n   int32
}

// verifySegment checks one segment against its manifest entry, returning
// the records it holds (in write order) and the decompressed payload for
// the reader's cache. It touches no shared Reader state, so segments
// verify concurrently. A store failure that is not absence propagates
// as-is — a flaky backend is not corruption.
func (r *Reader) verifySegment(seg SegmentInfo) ([]segRecord, []byte, error) {
	compressed, err := r.store.Get(context.Background(), seg.File)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, fmt.Errorf("archive: manifest references missing segment %s: %w", seg.File, ErrCorrupt)
		}
		return nil, nil, err
	}
	if seg.CompBytes > 0 && int64(len(compressed)) != seg.CompBytes {
		return nil, nil, fmt.Errorf("archive: segment %s is %d bytes, manifest says %d (truncated or modified): %w",
			seg.File, len(compressed), seg.CompBytes, ErrCorrupt)
	}
	if got := sha256Hex(compressed); got != seg.SHA256 {
		return nil, nil, fmt.Errorf("archive: segment %s checksum mismatch (manifest %s, object %s — truncated or modified): %w",
			seg.File, short(seg.SHA256), short(got), ErrCorrupt)
	}
	payload, err := decompressSegment(compressed)
	if err != nil {
		return nil, nil, fmt.Errorf("archive: segment %s: %v: %w", seg.File, err, ErrCorrupt)
	}
	var (
		records  []segRecord
		rawBytes int64
		min, max int64
	)
	for off := int64(0); off < int64(len(payload)); {
		if int64(len(payload))-off < 12 {
			return nil, nil, fmt.Errorf("archive: segment %s ends mid-record header: %w", seg.File, ErrCorrupt)
		}
		num := int64(binary.BigEndian.Uint64(payload[off : off+8]))
		n := int64(binary.BigEndian.Uint32(payload[off+8 : off+12]))
		off += 12
		if num <= 0 || n > maxRecordBytes || off+n > int64(len(payload)) {
			return nil, nil, fmt.Errorf("archive: segment %s has a malformed record for block %d: %w", seg.File, num, ErrCorrupt)
		}
		records = append(records, segRecord{num: num, off: off, n: int32(n)})
		rawBytes += n
		if min == 0 || num < min {
			min = num
		}
		if num > max {
			max = num
		}
		off += n
	}
	if int64(len(records)) != seg.Blocks || rawBytes != seg.RawBytes || min != seg.Min || max != seg.Max {
		return nil, nil, fmt.Errorf("archive: segment %s disagrees with manifest (blocks %d/%d, bytes %d/%d, range [%d,%d]/[%d,%d]): %w",
			seg.File, len(records), seg.Blocks, rawBytes, seg.RawBytes, min, max, seg.Min, seg.Max, ErrCorrupt)
	}
	return records, payload, nil
}

// gzReaderPool recycles gzip decompressors across segment reads: Open
// verifies every segment and replay re-reads them on cache misses, so one
// crawl inflates the same few hundred kilobytes of inflate state many
// times without the pool.
var gzReaderPool = sync.Pool{New: func() any { return new(gzip.Reader) }}

// decompressSegment gunzips a segment and strips its magic.
func decompressSegment(compressed []byte) ([]byte, error) {
	gz := gzReaderPool.Get().(*gzip.Reader)
	if err := gz.Reset(bytes.NewReader(compressed)); err != nil {
		gzReaderPool.Put(gz)
		return nil, fmt.Errorf("opening gzip stream: %v", err)
	}
	payload, err := io.ReadAll(gz)
	if err != nil {
		gzReaderPool.Put(gz)
		return nil, fmt.Errorf("decompressing: %v", err)
	}
	err = gz.Close()
	gzReaderPool.Put(gz)
	if err != nil {
		return nil, fmt.Errorf("closing gzip stream: %v", err)
	}
	if len(payload) < len(segmentMagic) || string(payload[:len(segmentMagic)]) != segmentMagic {
		return nil, fmt.Errorf("bad segment magic")
	}
	return payload[len(segmentMagic):], nil
}

// short abbreviates a hex digest for error messages.
func short(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}

// Chain returns the archived chain name.
func (r *Reader) Chain() string { return r.man.Chain }

// Segments reports how many segments this open reads (all of them for a
// full open, the covering subset for a ranged one).
func (r *Reader) Segments() int { return len(r.covering) }

// Blocks counts the distinct archived block numbers in this open's range.
func (r *Reader) Blocks() int64 { return int64(len(r.index)) }

// From returns the lowest archived block number in range (0 when empty).
func (r *Reader) From() int64 { return r.min }

// To returns the highest archived block number in range (0 when empty).
func (r *Reader) To() int64 { return r.max }

// Covers reports whether every block in [from, to] is archived (and in
// this open's range).
func (r *Reader) Covers(from, to int64) bool {
	if from <= 0 || to < from {
		return false
	}
	for num := from; num <= to; num++ {
		if _, ok := r.index[num]; !ok {
			return false
		}
	}
	return true
}

// Head implements collect.BlockFetcher: the archive's newest in-range
// block stands in for the live chain head.
func (r *Reader) Head(ctx context.Context) (int64, error) {
	if r.max == 0 {
		return 0, fmt.Errorf("archive: %s is empty", r.url)
	}
	return r.max, nil
}

// FetchBlock implements collect.BlockFetcher from the store. The returned
// slice is a copy in a recycled buffer — exclusively the caller's (see
// OwnsRaw).
func (r *Reader) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	ref, ok := r.index[num]
	if !ok {
		return nil, fmt.Errorf("archive: block %d is not archived in %s", num, r.url)
	}
	payload, err := r.segmentPayload(ref.seg)
	if err != nil {
		return nil, err
	}
	raw := wire.GetRaw()
	if cap(raw) < int(ref.n) {
		// Too small for this record: return it rather than letting append
		// strand it, so the pool converges on record-sized buffers.
		wire.PutRaw(raw)
		raw = make([]byte, 0, ref.n)
	}
	raw = append(raw, payload[ref.off:ref.off+int64(ref.n)]...)
	return raw, nil
}

// OwnsRaw marks FetchBlock results as exclusively caller-owned, so replay
// streams recycle payload buffers exactly like live crawls (the
// collect.RawRecycler contract).
func (r *Reader) OwnsRaw() bool { return true }

// loadSegment re-fetches and re-verifies segment i from the store. Open
// already verified the bytes; an object that fails the checksum here was
// modified after Open.
func (r *Reader) loadSegment(i int) ([]byte, error) {
	seg := r.man.Segments[i]
	compressed, err := r.store.Get(context.Background(), seg.File)
	if err != nil {
		return nil, err
	}
	if seg.CompBytes > 0 && int64(len(compressed)) != seg.CompBytes {
		return nil, fmt.Errorf("archive: segment %s is %d bytes after open, manifest says %d: %w",
			seg.File, len(compressed), seg.CompBytes, ErrCorrupt)
	}
	if got := sha256Hex(compressed); got != seg.SHA256 {
		return nil, fmt.Errorf("archive: segment %s changed after open (checksum %s, expected %s): %w",
			seg.File, short(got), short(seg.SHA256), ErrCorrupt)
	}
	payload, err := decompressSegment(compressed)
	if err != nil {
		return nil, fmt.Errorf("archive: segment %s: %v: %w", seg.File, err, ErrCorrupt)
	}
	return payload, nil
}

// segmentPayload returns a segment's uncompressed stream, from cache or by
// re-fetching the object, keeping the result cached for the stride-sharded
// FetchBlock walk that revisits segments many times.
func (r *Reader) segmentPayload(i int) ([]byte, error) {
	r.mu.Lock()
	if payload, ok := r.cache[i]; ok {
		r.touchLocked(i)
		r.mu.Unlock()
		return payload, nil
	}
	r.mu.Unlock()

	payload, err := r.loadSegment(i)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if cached, ok := r.cache[i]; ok {
		// Another fetcher decompressed it concurrently; keep theirs.
		r.touchLocked(i)
		return cached, nil
	}
	r.cache[i] = payload
	r.order = append(r.order, i)
	for len(r.order) > r.maxCache {
		evict := r.order[0]
		r.order = r.order[1:]
		delete(r.cache, evict)
	}
	return payload, nil
}

// Replay walks every distinct archived block in this open's range exactly
// once, fanning out at segment granularity: up to `workers` goroutines (0
// or less means one per CPU) each claim a covering segment, materialize
// its payload — from the cache Open seeded, or by one checksum-verified
// fetch through the pooled gzip readers — and walk its records in place.
// Segments outside a ranged open are never touched. visit runs
// concurrently from all workers; the worker index (0 ≤ worker < returned
// worker count) lets visitors keep per-worker state, e.g. core shards,
// without locks.
//
// raw aliases the segment's decompressed payload and is only valid for the
// duration of the call — visitors must copy (or decode, the wire codecs
// copy every string they keep) before returning. Duplicate records (a
// block re-archived by a resumed crawl) are delivered exactly once, from
// the same earliest-written record FetchBlock would serve, so a Replay and
// a FetchBlock walk see byte-identical payload sets. The first visit error
// stops the replay; a cancelled ctx surfaces as its error.
func (r *Reader) Replay(ctx context.Context, workers int, visit func(worker int, num int64, raw []byte) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.covering) {
		workers = len(r.covering)
	}
	var (
		wg       sync.WaitGroup
		next     int64
		failed   atomic.Bool
		firstErr onceReplayError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k >= len(r.covering) {
					return
				}
				if err := r.replaySegment(ctx, worker, r.covering[k], visit); err != nil {
					firstErr.set(err)
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return err
	}
	return ctx.Err()
}

// replaySegment walks one segment's records, delivering each block this
// segment owns (per the duplicate-resolved, range-filtered index) to
// visit.
func (r *Reader) replaySegment(ctx context.Context, worker, i int, visit func(worker int, num int64, raw []byte) error) error {
	payload, err := r.replayPayload(i)
	if err != nil {
		return err
	}
	for off := int64(0); off < int64(len(payload)); {
		if ctx.Err() != nil {
			return nil // surfaced by Replay
		}
		// Headers were verified by Open; the walk only re-derives offsets.
		num := int64(binary.BigEndian.Uint64(payload[off : off+8]))
		n := int64(binary.BigEndian.Uint32(payload[off+8 : off+12]))
		off += 12
		// Deliver only the record the duplicate-resolved index owns: a
		// block re-archived by a resumed crawl replays exactly once, and an
		// out-of-range block in a covering segment not at all.
		if ref, ok := r.index[num]; ok && ref.seg == i && ref.off == off {
			if err := visit(worker, num, payload[off:off+n]); err != nil {
				return err
			}
		}
		off += n
	}
	return nil
}

// replayPayload returns segment i's uncompressed stream for a one-shot
// replay walk: a cache hit is served as-is, but a miss fetches without
// inserting — each segment is walked exactly once per Replay, so caching
// it would only evict the segments the FetchBlock path still revisits.
func (r *Reader) replayPayload(i int) ([]byte, error) {
	r.mu.Lock()
	if payload, ok := r.cache[i]; ok {
		r.touchLocked(i)
		r.mu.Unlock()
		return payload, nil
	}
	r.mu.Unlock()
	return r.loadSegment(i)
}

// onceReplayError keeps the first replay error (visit errors race from
// several workers).
type onceReplayError struct {
	mu  sync.Mutex
	err error
}

func (o *onceReplayError) set(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

func (o *onceReplayError) get() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

// touchLocked moves segment i to the back of the eviction order.
func (r *Reader) touchLocked(i int) {
	for k, v := range r.order {
		if v == i {
			r.order = append(append(r.order[:k:k], r.order[k+1:]...), i)
			return
		}
	}
}
