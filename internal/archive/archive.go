// Package archive makes the producer side of the measurement pipeline
// durable: a Writer tees the raw block stream a crawl delivers into
// segmented, gzip-compressed, length-prefixed segment files on disk, and a
// Reader replays an archived crawl through the exact collect.BlockFetcher
// contract the live clients implement — so every re-analysis (different
// throughput definitions, wash-trade filters, new aggregators) runs at
// local I/O speed with zero network calls and no rate limits.
//
// On-disk layout (one directory per archived chain):
//
//	manifest.json      index of finalized segments + integrity metadata
//	segment-000001.gz  gzip stream: magic, then length-prefixed records
//	segment-000002.gz  …
//
// Each segment's uncompressed stream starts with the 8-byte magic
// "RBARCH1\n" followed by records of the form
//
//	[8-byte big-endian block number][4-byte big-endian payload length][payload]
//
// The manifest records, per segment, the block count, the minimum and
// maximum block number, the raw payload byte total and the SHA-256 of the
// compressed file bytes. Open verifies all of it before replay begins:
// a truncated file, a flipped bit or a manifest/segment mismatch fails the
// whole replay with an error wrapping ErrCorrupt instead of silently
// short-counting blocks.
//
// Durability: segments are written to a .tmp path and fsync'd + renamed
// into place only when complete, and the manifest is rewritten atomically
// after every rotation. A crash (or SIGINT racing a rotation) therefore
// loses at most the open segment; everything the manifest references is
// intact, and stray .tmp files are ignored by Open and swept by the next
// Writer.
package archive

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// segmentMagic opens every segment's uncompressed stream.
const segmentMagic = "RBARCH1\n"

// manifestName is the archive's index file.
const manifestName = "manifest.json"

// maxRecordBytes caps a single record's payload so a corrupted length
// prefix fails immediately instead of attempting a multi-gigabyte read.
const maxRecordBytes = 1 << 30

// ErrCorrupt marks integrity failures: checksum mismatches, truncated or
// malformed segments, and manifest/segment disagreements. Callers can
// errors.Is against it to distinguish corruption from absence.
var ErrCorrupt = errors.New("archive: corrupt archive")

// Manifest indexes an archive directory: which chain it holds and which
// finalized segments make it up, in write order.
type Manifest struct {
	Version  int           `json:"version"`
	Chain    string        `json:"chain"`
	Segments []SegmentInfo `json:"segments"`
}

// SegmentInfo is one finalized segment's integrity metadata.
type SegmentInfo struct {
	File string `json:"file"`
	// Blocks is the record count (duplicates included — a crawl cancelled
	// between the tee and the stream delivery re-archives the block on
	// resume).
	Blocks int64 `json:"blocks"`
	// Min and Max bound the block numbers inside the segment.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// RawBytes totals the uncompressed payload bytes.
	RawBytes int64 `json:"raw_bytes"`
	// SHA256 is the hex digest of the compressed file bytes.
	SHA256 string `json:"sha256"`
}

// manifestPath returns dir's manifest location.
func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// segmentName formats the n-th segment's file name.
func segmentName(n int) string { return fmt.Sprintf("segment-%06d.gz", n) }

// loadManifest reads and validates dir's manifest. A missing manifest is
// reported via fs.ErrNotExist so callers can treat the directory as a
// fresh archive.
func loadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("archive: decoding %s: %v: %w", manifestPath(dir), err, ErrCorrupt)
	}
	if m.Version != 1 {
		return Manifest{}, fmt.Errorf("archive: %s has unsupported version %d: %w", manifestPath(dir), m.Version, ErrCorrupt)
	}
	if m.Chain == "" {
		return Manifest{}, fmt.Errorf("archive: %s names no chain: %w", manifestPath(dir), ErrCorrupt)
	}
	for _, s := range m.Segments {
		if s.File != filepath.Base(s.File) || s.File == "" {
			return Manifest{}, fmt.Errorf("archive: %s references invalid segment name %q: %w", manifestPath(dir), s.File, ErrCorrupt)
		}
		if s.Blocks <= 0 || s.Min <= 0 || s.Max < s.Min {
			return Manifest{}, fmt.Errorf("archive: %s has inconsistent metadata for %s: %w", manifestPath(dir), s.File, ErrCorrupt)
		}
	}
	return m, nil
}

// saveManifest writes the manifest atomically: temp file, fsync, rename,
// directory fsync. A crash mid-save never corrupts an existing manifest.
func saveManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: encoding manifest: %w", err)
	}
	tmp := manifestPath(dir) + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, manifestPath(dir)); err != nil {
		return err
	}
	return syncDir(dir)
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames into it are durable. Directory
// fsync support varies by platform and the rename is atomic regardless, so
// a failed sync on an opened directory is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// sha256Hex returns the hex digest of b.
func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
