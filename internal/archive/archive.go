// Package archive makes the producer side of the measurement pipeline
// durable: a Writer tees the raw block stream a crawl delivers into
// segmented, gzip-compressed, length-prefixed segment objects in a blob
// store, and a Reader replays an archived crawl through the exact
// collect.BlockFetcher contract the live clients implement — so every
// re-analysis (different throughput definitions, wash-trade filters, new
// aggregators) runs at storage speed with zero endpoint calls and no rate
// limits.
//
// Storage is a blobstore.Store resolved from a URL — file://PATH (or a
// bare path), mem://NAME, s3://BUCKET/PREFIX, null:// — so the same
// archive rides a local disk, an in-process test store, or an
// S3-compatible service without the format knowing the difference.
// Layout (one store root, or one key prefix, per archived chain):
//
//	manifest.json      index of finalized segments + integrity metadata
//	segment-000001.gz  gzip stream: magic, then length-prefixed records
//	segment-000002.gz  …
//
// Each segment's uncompressed stream starts with the 8-byte magic
// "RBARCH1\n" followed by records of the form
//
//	[8-byte big-endian block number][4-byte big-endian payload length][payload]
//
// The manifest records, per segment, the block count, the [min, max]
// block-number range, the raw payload byte total, the compressed object
// size and the SHA-256 of the compressed bytes. The range doubles as the
// archive's index: a ranged open (OpenRange) selects the covering
// segments straight from the manifest and never fetches the rest. Open
// verifies everything it will read before replay begins: a truncated
// object, a flipped bit or a manifest/segment mismatch fails the whole
// replay with an error wrapping ErrCorrupt instead of silently
// short-counting blocks.
//
// Durability: a segment is buffered in memory until complete, published
// with the store's atomic Put (tmp + fsync + rename on a filesystem), and
// only then committed to the manifest, which itself rewrites atomically
// after every rotation. A crash therefore loses at most the open segment;
// everything the manifest references is intact.
//
// Manifest versions: v1 (written through PR 6) lacks per-segment
// comp_bytes; v2 adds it. Readers accept both — a v1 archive opens,
// range-opens and replays identically, it just skips the compressed-size
// precheck.
package archive

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/blobstore"
)

// segmentMagic opens every segment's uncompressed stream.
const segmentMagic = "RBARCH1\n"

// manifestName is the archive's index object.
const manifestName = "manifest.json"

// manifestVersion is what new manifests are written as.
const manifestVersion = 2

// maxRecordBytes caps a single record's payload so a corrupted length
// prefix fails immediately instead of attempting a multi-gigabyte read.
const maxRecordBytes = 1 << 30

// ErrCorrupt marks integrity failures: checksum mismatches, truncated or
// malformed segments, and manifest/segment disagreements. Callers can
// errors.Is against it to distinguish corruption from absence.
var ErrCorrupt = errors.New("archive: corrupt archive")

// Manifest indexes an archive: which chain it holds and which finalized
// segments make it up, in write order.
type Manifest struct {
	Version  int           `json:"version"`
	Chain    string        `json:"chain"`
	Segments []SegmentInfo `json:"segments"`
}

// SegmentInfo is one finalized segment's integrity metadata.
type SegmentInfo struct {
	File string `json:"file"`
	// Blocks is the record count (duplicates included — a crawl cancelled
	// between the tee and the stream delivery re-archives the block on
	// resume).
	Blocks int64 `json:"blocks"`
	// Min and Max bound the block numbers inside the segment. Together
	// they are the archive's block-range index: a ranged open fetches only
	// segments whose [Min, Max] intersects the requested range.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// RawBytes totals the uncompressed payload bytes.
	RawBytes int64 `json:"raw_bytes"`
	// CompBytes is the compressed object's size (v2 manifests; 0 in v1).
	// Checked against the fetched length before hashing, so a truncated
	// remote object fails fast with a size, not just a digest.
	CompBytes int64 `json:"comp_bytes,omitempty"`
	// SHA256 is the hex digest of the compressed object bytes.
	SHA256 string `json:"sha256"`
}

// segmentName formats the n-th segment's object key.
func segmentName(n int) string { return fmt.Sprintf("segment-%06d.gz", n) }

// loadManifest reads and validates the store's manifest. A missing
// manifest surfaces the store's fs.ErrNotExist so callers can treat the
// location as a fresh archive.
func loadManifest(ctx context.Context, st blobstore.Store) (Manifest, error) {
	data, err := st.Get(ctx, manifestName)
	if err != nil {
		return Manifest{}, err
	}
	where := blobstore.Join(st.URL(), manifestName)
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("archive: decoding %s: %v: %w", where, err, ErrCorrupt)
	}
	if m.Version != 1 && m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("archive: %s has unsupported version %d: %w", where, m.Version, ErrCorrupt)
	}
	if m.Chain == "" {
		return Manifest{}, fmt.Errorf("archive: %s names no chain: %w", where, ErrCorrupt)
	}
	for _, s := range m.Segments {
		if err := validSegmentName(s.File); err != nil {
			return Manifest{}, fmt.Errorf("archive: %s references invalid segment name %q: %w", where, s.File, ErrCorrupt)
		}
		if s.Blocks <= 0 || s.Min <= 0 || s.Max < s.Min || s.CompBytes < 0 {
			return Manifest{}, fmt.Errorf("archive: %s has inconsistent metadata for %s: %w", where, s.File, ErrCorrupt)
		}
	}
	return m, nil
}

// validSegmentName accepts only flat object keys — a manifest must not be
// able to point reads outside its own archive.
func validSegmentName(name string) error {
	if name == "" {
		return errors.New("empty")
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == '\\' {
			return errors.New("not flat")
		}
	}
	if name == "." || name == ".." {
		return errors.New("relative")
	}
	return nil
}

// saveManifest publishes the manifest through the store's atomic Put; a
// crash mid-save never corrupts an existing manifest.
func saveManifest(ctx context.Context, st blobstore.Store, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("archive: encoding manifest: %w", err)
	}
	return st.Put(ctx, manifestName, append(data, '\n'))
}

// sha256Hex returns the hex digest of b.
func sha256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
