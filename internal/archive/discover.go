package archive

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"repro/internal/blobstore"
)

// Discover resolves a store location to the archives it holds: the
// location itself when it is an archive (manifest.json directly at its
// root), otherwise every immediate sub-prefix that is one — the layout
// cmd/crawl -archive and the pipeline's ArchiveDir produce. The result is
// sorted so consumers (cmd/report -replay, cmd/serve -replay) emit chains
// in a deterministic order. It is an error for the location to hold no
// archive at all, and an unexpected store failure (anything beyond plain
// absence) propagates instead of being mistaken for "not an archive".
func Discover(location string) ([]string, error) {
	st, err := blobstore.Resolve(location)
	if err != nil {
		return nil, err
	}
	return discoverIn(st, location)
}

// discoverIn is Discover over an already-resolved store (tests inject
// Faulty-wrapped stores to drive the failure paths).
func discoverIn(st blobstore.Store, location string) ([]string, error) {
	ctx := context.Background()
	switch _, err := st.Stat(ctx, manifestName); {
	case err == nil:
		return []string{location}, nil
	case !errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("archive: checking %s for a manifest: %w", location, err)
	}
	keys, err := st.List(ctx, "")
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("archive: %s does not exist (supported locations: %s): %w",
				location, blobstore.Schemes, err)
		}
		return nil, fmt.Errorf("archive: listing %s: %w", location, err)
	}
	var subs []string
	for _, k := range keys {
		if sub, rest, ok := strings.Cut(k, "/"); ok && rest == manifestName {
			subs = append(subs, blobstore.Join(location, sub))
		}
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("no archives at %s (no %s at it or its immediate sub-prefixes; supported locations: %s)",
			location, manifestName, blobstore.Schemes)
	}
	sort.Strings(subs)
	return subs, nil
}
