package archive

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Discover resolves dir to the archive directories it holds: dir itself
// when it is an archive (manifest.json directly inside), otherwise every
// immediate subdirectory that is one — the layout cmd/crawl -archive and
// the pipeline's ArchiveDir produce. The result is sorted so consumers
// (cmd/report -replay, cmd/serve -replay) emit chains in a deterministic
// order. It is an error for dir to contain no archive at all.
func Discover(dir string) ([]string, error) {
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return []string{dir}, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sub, "manifest.json")); err == nil {
			dirs = append(dirs, sub)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no archives under %s (no manifest.json in it or its subdirectories)", dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}
