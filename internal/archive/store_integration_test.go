package archive

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/blobstore/s3stub"
)

// ascendingArchive archives blocks [1, n] in height order so segment
// ranges tile cleanly ([1,segBlocks], [segBlocks+1, 2*segBlocks], …).
func ascendingArchive(t *testing.T, location string, st blobstore.Store, n int64, segBlocks int) {
	t.Helper()
	w, err := NewWriter(WriterConfig{Dir: location, Store: st, Chain: "eos", SegmentBlocks: segBlocks})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(1); num <= n; num++ {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRangeFetchesOnlyCoveringSegments is the range index's proof: a
// sub-range open against the counted memory backend must fetch the
// manifest plus exactly the segments whose [min, max] covers the range —
// never the rest of the archive.
func TestOpenRangeFetchesOnlyCoveringSegments(t *testing.T) {
	const url = "mem://range-counter"
	ascendingArchive(t, url, nil, 64, 8) // 8 segments: [1,8], [9,16], …, [57,64]
	mem := blobstore.OpenMemory("range-counter")

	// [17, 24] sits inside exactly one segment.
	mem.ResetOps()
	r, err := OpenRange(url, 17, 24)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Ops(blobstore.OpGet); got != 2 {
		t.Fatalf("ranged open issued %d gets, want 2 (manifest + 1 covering segment)", got)
	}
	if r.Segments() != 1 || r.Blocks() != 8 || r.From() != 17 || r.To() != 24 {
		t.Fatalf("ranged reader: segments=%d blocks=%d range=[%d,%d]", r.Segments(), r.Blocks(), r.From(), r.To())
	}
	if !r.Covers(17, 24) || r.Covers(16, 17) || r.Covers(24, 25) {
		t.Fatal("ranged coverage wrong")
	}
	if _, err := r.FetchBlock(context.Background(), 30); err == nil {
		t.Fatal("fetched a block outside the open range")
	}

	// Replay delivers exactly the in-range blocks, from the cache Open
	// seeded — zero further fetches.
	var mu sync.Mutex
	seen := make(map[int64]bool)
	err = r.Replay(context.Background(), 4, func(worker int, num int64, raw []byte) error {
		if !bytes.Equal(raw, payload(num)) {
			return fmt.Errorf("block %d: wrong bytes", num)
		}
		mu.Lock()
		seen[num] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Fatalf("range replay visited %d blocks, want 8", len(seen))
	}
	for num := int64(17); num <= 24; num++ {
		if !seen[num] {
			t.Fatalf("range replay missed block %d", num)
		}
	}
	if got := mem.Ops(blobstore.OpGet); got != 2 {
		t.Fatalf("replay re-fetched: %d total gets, want still 2", got)
	}

	// [7, 10] straddles a segment boundary: exactly two covering segments.
	mem.ResetOps()
	r2, err := OpenRange(url, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := mem.Ops(blobstore.OpGet); got != 3 {
		t.Fatalf("boundary-straddling open issued %d gets, want 3 (manifest + 2 segments)", got)
	}
	if r2.Segments() != 2 || r2.Blocks() != 4 {
		t.Fatalf("straddling reader: segments=%d blocks=%d", r2.Segments(), r2.Blocks())
	}

	// Degenerate ranges are rejected up front.
	for _, bad := range [][2]int64{{0, 5}, {5, 4}, {-1, 3}} {
		if _, err := OpenRange(url, bad[0], bad[1]); err == nil {
			t.Errorf("OpenRange(%d, %d) succeeded", bad[0], bad[1])
		}
	}
}

// TestV1ManifestBackCompat: archives written before the manifest gained
// comp_bytes (PR 3–6) must keep opening, range-opening and replaying —
// min/max were always present, so the range index works retroactively.
func TestV1ManifestBackCompat(t *testing.T) {
	dir := t.TempDir()
	ascendingArchive(t, dir, nil, 20, 5)
	// Rewrite the manifest exactly as the old writer laid it down: version
	// 1, no comp_bytes.
	editManifest(t, dir, func(m *Manifest) {
		m.Version = 1
		for i := range m.Segments {
			m.Segments[i].CompBytes = 0
		}
	})

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("v1 manifest failed to open: %v", err)
	}
	if r.Blocks() != 20 || !r.Covers(1, 20) {
		t.Fatalf("v1 archive coverage: blocks=%d [%d,%d]", r.Blocks(), r.From(), r.To())
	}
	rr, err := OpenRange(dir, 6, 10)
	if err != nil {
		t.Fatalf("v1 manifest failed to range-open: %v", err)
	}
	if rr.Segments() != 1 || rr.Blocks() != 5 {
		t.Fatalf("v1 ranged open: segments=%d blocks=%d", rr.Segments(), rr.Blocks())
	}

	// A writer extending a v1 archive upgrades the manifest to v2.
	w, err := NewWriter(WriterConfig{Dir: dir, Chain: "eos", SegmentBlocks: 5})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(21); num <= 25; num++ {
		if err := w.Append(num, payload(num)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := loadManifest(context.Background(), blobstore.NewFile(dir))
	if err != nil {
		t.Fatal(err)
	}
	if m.Version != manifestVersion {
		t.Fatalf("extended manifest version = %d, want %d", m.Version, manifestVersion)
	}
	if last := m.Segments[len(m.Segments)-1]; last.CompBytes <= 0 {
		t.Fatalf("new segment lacks comp_bytes: %+v", last)
	}
	if r3, err := Open(dir); err != nil || !r3.Covers(1, 25) {
		t.Fatalf("upgraded archive: %v", err)
	}
}

// TestCrossBackendIdenticalSegments: the same append sequence archived to
// file, memory and the S3 stub must produce byte-identical segment
// objects (same SHA-256 chain in the manifest) and replay the same
// payloads — the archive format is backend-invariant.
func TestCrossBackendIdenticalSegments(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	locations := map[string]string{
		"file": t.TempDir(),
		"mem":  "mem://cross-backend",
		"s3":   stub.URL("bkt", "cross"),
	}
	manifests := make(map[string]Manifest)
	replays := make(map[string]map[int64]string)
	for name, loc := range locations {
		ascendingArchive(t, loc, nil, 30, 7)
		st, err := blobstore.Resolve(loc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := loadManifest(context.Background(), st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		manifests[name] = m

		r, err := Open(loc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var mu sync.Mutex
		got := make(map[int64]string)
		err = r.Replay(context.Background(), 3, func(worker int, num int64, raw []byte) error {
			mu.Lock()
			got[num] = string(raw)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		replays[name] = got
	}
	ref := manifests["file"]
	for name, m := range manifests {
		if len(m.Segments) != len(ref.Segments) {
			t.Fatalf("%s: %d segments, file has %d", name, len(m.Segments), len(ref.Segments))
		}
		for i := range m.Segments {
			if m.Segments[i].SHA256 != ref.Segments[i].SHA256 || m.Segments[i].CompBytes != ref.Segments[i].CompBytes {
				t.Errorf("%s segment %d differs from file backend: %+v vs %+v", name, i, m.Segments[i], ref.Segments[i])
			}
		}
	}
	for name, got := range replays {
		if len(got) != 30 {
			t.Fatalf("%s replayed %d blocks", name, len(got))
		}
		for num, raw := range replays["file"] {
			if got[num] != raw {
				t.Errorf("%s block %d replayed different bytes", name, num)
			}
		}
	}
}

// TestReaderFaultsPerBackend: under injected faults on any backend, a
// transient store failure propagates as itself (never dressed up as
// corruption), while a genuinely missing segment is ErrCorrupt.
func TestReaderFaultsPerBackend(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	builders := map[string]func(t *testing.T) blobstore.Store{
		"file": func(t *testing.T) blobstore.Store { return blobstore.NewFile(t.TempDir()) },
		"mem":  func(t *testing.T) blobstore.Store { return blobstore.NewMemory() },
		"s3": func(t *testing.T) blobstore.Store {
			st, err := blobstore.Resolve(stub.URL("bkt", "faults-"+t.Name()))
			if err != nil {
				t.Fatal(err)
			}
			return st
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			base := build(t)
			ascendingArchive(t, base.URL(), base, 20, 5)

			// Transient fetch failure during open: the error is the
			// injected one, not ErrCorrupt.
			boom := errors.New("transient backend failure")
			faulty := blobstore.NewFaulty(base)
			faulty.BreakAfter(blobstore.OpGet, 1, -1, boom) // manifest loads, segments fail
			_, err := OpenWith(base.URL(), OpenOptions{Store: faulty, Workers: 1})
			if !errors.Is(err, boom) {
				t.Fatalf("injected fault surfaced as %v", err)
			}
			if errors.Is(err, ErrCorrupt) {
				t.Fatal("transient store failure misreported as corruption")
			}

			// Replay-time transient failure: open cleanly, then fail every
			// later fetch; the replay error is the fault, not corruption.
			faulty.Clear()
			r, err := OpenWith(base.URL(), OpenOptions{Store: faulty})
			if err != nil {
				t.Fatal(err)
			}
			r.mu.Lock()
			r.cache = make(map[int][]byte) // force every segment down the fetch path
			r.order = nil
			r.mu.Unlock()
			faulty.Break(blobstore.OpGet, boom)
			err = r.Replay(context.Background(), 2, func(worker int, num int64, raw []byte) error { return nil })
			if !errors.Is(err, boom) || errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay under faults: %v", err)
			}
			faulty.Clear()

			// A missing segment is corruption.
			if err := base.Delete(context.Background(), segmentName(1)); err != nil {
				t.Fatal(err)
			}
			_, err = OpenWith(base.URL(), OpenOptions{Store: base})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("missing segment: %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestDiscoverPropagatesStatErrors: a store failure while probing for a
// manifest must surface, not silently degrade into "no archives" (the old
// os.Stat path swallowed every error class).
func TestDiscoverPropagatesStatErrors(t *testing.T) {
	boom := errors.New("auth expired")
	faulty := blobstore.NewFaulty(blobstore.NewMemory())
	faulty.Break(blobstore.OpStat, boom)
	_, err := discoverIn(faulty, "mem://faulty-discover")
	if !errors.Is(err, boom) {
		t.Fatalf("stat failure swallowed: %v", err)
	}

	// Same for the listing pass.
	faulty.Clear()
	faulty.Break(blobstore.OpList, boom)
	_, err = discoverIn(faulty, "mem://faulty-discover")
	if !errors.Is(err, boom) {
		t.Fatalf("list failure swallowed: %v", err)
	}
}

// TestDiscoverOverStoreURLs: discovery works on blob-store URLs, finds
// per-chain sub-archives, and names the supported schemes when nothing is
// found.
func TestDiscoverOverStoreURLs(t *testing.T) {
	base := "mem://disc-url"
	for _, chain := range []string{"tezos", "eos"} {
		ascendingArchive(t, blobstore.Join(base, chain), nil, 5, 5)
	}
	got, err := Discover(base)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mem://disc-url/eos", "mem://disc-url/tezos"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Discover = %v, want %v", got, want)
	}
	for _, loc := range got {
		if _, err := Open(loc); err != nil {
			t.Fatalf("discovered archive %s failed to open: %v", loc, err)
		}
	}

	_, err = Discover("mem://disc-empty")
	if err == nil {
		t.Fatal("empty store discovered archives")
	}
	for _, fragment := range []string{"no archives", "s3://BUCKET", "mem://NAME"} {
		if !containsStr(err.Error(), fragment) {
			t.Errorf("no-archives error %q lacks %q", err, fragment)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && bytes.Contains([]byte(s), []byte(sub))
}
