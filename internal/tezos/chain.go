package tezos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chain"
)

// Protocol constants mirroring main net at the paper's observation window.
const (
	// EndorsementSlots is the number of endorsement slots per block; a block
	// requires at least 32 of them to be endorsed (the paper cites this
	// minimum as the root cause of endorsements being 82 % of all
	// operations on a quiet network).
	EndorsementSlots = 32
)

// rollMutez is 10,000 XTZ in mutez (XTZ has 6 decimals).
const rollMutez = int64(10_000) * 1_000_000

// Config parameterizes the simulated chain. TimeScale dilates the 60-second
// block interval the same way the EOS simulator dilates its 500 ms one.
type Config struct {
	Seed          int64
	Start         time.Time
	BlockInterval time.Duration
	// EndorsementParticipation is the probability an assigned slot is
	// actually endorsed; main net hovered around 0.72 in late 2019, which
	// yields the paper's ~23 endorsement operations per block.
	EndorsementParticipation float64
	// Governance holds the amendment process parameters.
	Governance GovernanceConfig
}

// DefaultConfig returns main-net-shaped parameters at the given time scale.
func DefaultConfig(timeScale int64) Config {
	if timeScale < 1 {
		timeScale = 1
	}
	return Config{
		Seed:                     2,
		Start:                    chain.ObservationStart,
		BlockInterval:            time.Duration(timeScale) * 60 * time.Second,
		EndorsementParticipation: 0.72,
		Governance:               DefaultGovernanceConfig(),
	}
}

// Errors returned when operations are rejected.
var (
	ErrUnknownSource = errors.New("tezos: unknown source account")
	ErrNotRevealed   = errors.New("tezos: manager key not revealed")
	ErrInsufficient  = errors.New("tezos: insufficient balance")
	ErrNotActivated  = errors.New("tezos: account not activated")
	ErrBadOperation  = errors.New("tezos: malformed operation")
	ErrNotBaker      = errors.New("tezos: source is not a registered baker")
)

// Baker is a stake-weighted block producer ("delegate").
type Baker struct {
	Address Address
	Stake   int64 // mutez, own + delegated
}

// Rolls returns the whole rolls behind the baker's stake.
func (b Baker) Rolls() int64 { return b.Stake / rollMutez }

// Chain is the simulated Tezos blockchain.
type Chain struct {
	cfg      Config
	clock    *chain.Clock
	rng      *chain.RNG
	accounts map[Address]*Account
	bakers   []Baker
	blocks   []*Block
	pending  []Operation
	gov      *Governance

	// Rejected counts operations refused during block production.
	Rejected int64
}

// New creates a chain with the given config; RegisterBaker must be called
// before blocks can be produced.
func New(cfg Config) *Chain {
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = time.Minute
	}
	if cfg.Start.IsZero() {
		cfg.Start = chain.ObservationStart
	}
	if cfg.EndorsementParticipation <= 0 || cfg.EndorsementParticipation > 1 {
		cfg.EndorsementParticipation = 0.72
	}
	c := &Chain{
		cfg:      cfg,
		clock:    chain.NewClock(cfg.Start, cfg.BlockInterval),
		rng:      chain.NewRNG(cfg.Seed),
		accounts: make(map[Address]*Account),
	}
	c.gov = NewGovernance(cfg.Governance)
	return c
}

// RegisterBaker creates (or tops up) a baker with the given stake. LPoS lets
// the baker set grow and shrink dynamically; any account whose stake covers
// at least one roll may bake.
func (c *Chain) RegisterBaker(addr Address, stakeMutez int64) error {
	if !addr.IsImplicit() {
		return fmt.Errorf("tezos: baker %s must be an implicit account", addr)
	}
	if stakeMutez < rollMutez {
		return fmt.Errorf("tezos: stake %d below one roll (%d mutez)", stakeMutez, rollMutez)
	}
	acct := c.ensureAccount(addr)
	acct.Revealed = true
	acct.Activated = true
	acct.Balance += stakeMutez
	for i := range c.bakers {
		if c.bakers[i].Address == addr {
			c.bakers[i].Stake += stakeMutez
			return nil
		}
	}
	c.bakers = append(c.bakers, Baker{Address: addr, Stake: stakeMutez})
	return nil
}

// Bakers returns the current baker set.
func (c *Chain) Bakers() []Baker { return c.bakers }

// Governance exposes the amendment state machine.
func (c *Chain) Governance() *Governance { return c.gov }

// Now returns simulated time.
func (c *Chain) Now() time.Time { return c.clock.Now() }

// HeadLevel returns the latest block level (0 when empty).
func (c *Chain) HeadLevel() int64 { return int64(len(c.blocks)) }

// GetBlock returns the block at level (1-based), or nil.
func (c *Chain) GetBlock(level int64) *Block {
	if level < 1 || level > int64(len(c.blocks)) {
		return nil
	}
	return c.blocks[level-1]
}

// GetAccount returns the account record, or nil.
func (c *Chain) GetAccount(addr Address) *Account { return c.accounts[addr] }

// FundAccount credits mutez to an account, creating it if needed (the
// simulator's stand-in for genesis balances).
func (c *Chain) FundAccount(addr Address, mutez int64) *Account {
	a := c.ensureAccount(addr)
	a.Balance += mutez
	return a
}

func (c *Chain) ensureAccount(addr Address) *Account {
	if a, ok := c.accounts[addr]; ok {
		return a
	}
	a := &Account{Address: addr, Activated: true}
	c.accounts[addr] = a
	return a
}

// Inject queues a manager or governance operation for the next block.
func (c *Chain) Inject(op Operation) { c.pending = append(c.pending, op) }

// PendingCount returns the number of queued operations.
func (c *Chain) PendingCount() int { return len(c.pending) }

// selectBaker draws the block baker weighted by stake, deterministic in the
// chain's RNG. Priority-0 baking only; missed priorities are not simulated.
func (c *Chain) selectBaker() Baker {
	weights := make([]float64, len(c.bakers))
	for i, b := range c.bakers {
		weights[i] = float64(b.Rolls())
	}
	return c.bakers[c.rng.WeightedPick(weights)]
}

// endorsementsFor assigns the previous block's 32 slots to bakers weighted
// by stake and merges each baker's slots into a single endorsement
// operation, as the protocol does. Participation draws decide whether a
// baker actually endorsed; main-net's ~72 % participation yields the ~23
// endorsement operations per block the paper's totals imply.
func (c *Chain) endorsementsFor(level int64) []Operation {
	if level < 1 || len(c.bakers) == 0 {
		return nil
	}
	weights := make([]float64, len(c.bakers))
	for i, b := range c.bakers {
		weights[i] = float64(b.Rolls())
	}
	slotsByBaker := make(map[int][]int)
	for slot := 0; slot < EndorsementSlots; slot++ {
		idx := c.rng.WeightedPick(weights)
		slotsByBaker[idx] = append(slotsByBaker[idx], slot)
	}
	var ops []Operation
	for idx := range c.bakers { // index order keeps runs deterministic
		slots, ok := slotsByBaker[idx]
		if !ok || !c.rng.Bool(c.cfg.EndorsementParticipation) {
			continue
		}
		ops = append(ops, Operation{
			Kind:   KindEndorsement,
			Source: c.bakers[idx].Address,
			Slots:  slots,
			Level:  level,
		})
	}
	return ops
}

// ProduceBlock bakes the next block: endorsements for the previous block
// first, then every pending operation that validates. Invalid operations are
// dropped and counted in Rejected.
func (c *Chain) ProduceBlock() (*Block, error) {
	if len(c.bakers) == 0 {
		return nil, fmt.Errorf("tezos: no bakers registered")
	}
	level := int64(len(c.blocks) + 1)
	baker := c.selectBaker()
	blk := &Block{
		Level:     level,
		Timestamp: c.clock.Now(),
		Baker:     baker.Address,
	}
	if len(c.blocks) > 0 {
		blk.Predecessor = c.blocks[len(c.blocks)-1].Hash
	}

	blk.Operations = append(blk.Operations, c.endorsementsFor(level-1)...)

	for _, op := range c.pending {
		if err := c.applyOperation(&op, blk); err != nil {
			c.Rejected++
			continue
		}
		blk.Operations = append(blk.Operations, op)
	}
	c.pending = c.pending[:0]

	blk.Hash = chain.HashOf("tezos-block", uint64(level), string(baker.Address), blk.Timestamp.UnixNano())
	c.blocks = append(c.blocks, blk)
	c.gov.ObserveBlock(c, blk)
	c.clock.Tick()
	return blk, nil
}

// applyOperation validates and applies a single operation against state.
func (c *Chain) applyOperation(op *Operation, blk *Block) error {
	switch op.Kind {
	case KindTransaction:
		src, ok := c.accounts[op.Source]
		if !ok {
			return ErrUnknownSource
		}
		if !src.Activated {
			return ErrNotActivated
		}
		if src.Address.IsImplicit() && !src.Revealed {
			return ErrNotRevealed
		}
		total := op.Amount + op.Fee
		if op.Amount < 0 || op.Fee < 0 || src.Balance < total {
			return ErrInsufficient
		}
		src.Balance -= total
		src.Counter++
		c.ensureAccount(op.Destination).Balance += op.Amount
		return nil
	case KindReveal:
		src, ok := c.accounts[op.Source]
		if !ok {
			return ErrUnknownSource
		}
		if src.Revealed {
			return fmt.Errorf("tezos: %s already revealed", op.Source)
		}
		src.Revealed = true
		return nil
	case KindActivation:
		if existing, ok := c.accounts[op.Source]; ok && existing.Activated {
			return fmt.Errorf("tezos: %s already activated", op.Source)
		}
		acct := c.ensureAccount(op.Source)
		acct.Activated = true
		acct.Balance += op.Amount // fundraiser allocation
		return nil
	case KindOrigination:
		src, ok := c.accounts[op.Source]
		if !ok {
			return ErrUnknownSource
		}
		if op.Destination == "" || !op.Destination.IsOriginated() {
			return fmt.Errorf("%w: origination needs a KT1 destination", ErrBadOperation)
		}
		if _, dup := c.accounts[op.Destination]; dup {
			return fmt.Errorf("tezos: contract %s already originated", op.Destination)
		}
		if src.Balance < op.Amount+op.Fee {
			return ErrInsufficient
		}
		src.Balance -= op.Amount + op.Fee
		kt := c.ensureAccount(op.Destination)
		kt.Balance = op.Amount
		kt.Manager = op.Source
		kt.Revealed = true
		return nil
	case KindDelegation:
		src, ok := c.accounts[op.Source]
		if !ok {
			return ErrUnknownSource
		}
		src.Delegate = op.Delegate
		return nil
	case KindProposals:
		return c.gov.ApplyProposals(c, op, blk)
	case KindBallot:
		return c.gov.ApplyBallot(c, op, blk)
	case KindSeedNonce, KindDoubleBaking:
		// Consensus bookkeeping carried by bakers; no balance effects that
		// the measurements depend on.
		return nil
	case KindEndorsement:
		return fmt.Errorf("%w: endorsements are produced by the baker, not injected", ErrBadOperation)
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrBadOperation, op.Kind)
	}
}

// IsBaker reports whether addr is in the current baker set.
func (c *Chain) IsBaker(addr Address) bool {
	for _, b := range c.bakers {
		if b.Address == addr {
			return true
		}
	}
	return false
}

// BakerRolls returns the rolls of addr, or 0 when it is not a baker.
func (c *Chain) BakerRolls(addr Address) int64 {
	for _, b := range c.bakers {
		if b.Address == addr {
			return b.Rolls()
		}
	}
	return 0
}
