package tezos

import (
	"fmt"
	"testing"
)

// benchChain registers n bakers and a funded sender outside the timer.
func benchChain(b *testing.B, bakers int) (*Chain, Address, Address) {
	b.Helper()
	c := New(DefaultConfig(1000))
	for i := 0; i < bakers; i++ {
		if err := c.RegisterBaker(NewImplicitAddress(fmt.Sprintf("bb-%03d", i)), 50_000*1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	from := NewImplicitAddress("bench-from")
	to := NewImplicitAddress("bench-to")
	acct := c.FundAccount(from, 1<<50)
	acct.Revealed = true
	c.FundAccount(to, 0)
	return c, from, to
}

// BenchmarkBlockWithEndorsements measures block production including the
// stake-weighted endorsement assignment over a main-net-sized baker set.
func BenchmarkBlockWithEndorsements(b *testing.B) {
	c, _, _ := benchChain(b, 150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ProduceBlock(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransactionApplication measures manager-operation application
// at the dataset's ~5 transactions per block.
func BenchmarkTransactionApplication(b *testing.B) {
	c, from, to := benchChain(b, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 5; j++ {
			c.Inject(Operation{Kind: KindTransaction, Source: from, Destination: to, Amount: 1, Fee: 1420})
		}
		blk, err := c.ProduceBlock()
		if err != nil {
			b.Fatal(err)
		}
		_ = blk
	}
	if c.Rejected != 0 {
		b.Fatalf("%d operations rejected", c.Rejected)
	}
}

// BenchmarkAddressDerivation measures base58check address generation.
func BenchmarkAddressDerivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewImplicitAddress("bench-address")
	}
}

// BenchmarkGovernanceBallot measures ballot application during a voting
// period.
func BenchmarkGovernanceBallot(b *testing.B) {
	cfg := DefaultConfig(1000)
	cfg.Governance.BlocksPerPeriod = 1 << 40 // never transition mid-bench
	c := New(cfg)
	for i := 0; i < 50; i++ {
		if err := c.RegisterBaker(NewImplicitAddress(fmt.Sprintf("gb-%03d", i)), 50_000*1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	// Reach exploration: everyone upvotes, then force the transition by
	// driving the machine directly.
	gov := c.Governance()
	blk := &Block{Level: 1}
	for _, baker := range c.Bakers() {
		op := Operation{Kind: KindProposals, Source: baker.Address, Proposal: "P"}
		if err := gov.ApplyProposals(c, &op, blk); err != nil {
			b.Fatal(err)
		}
	}
	gov.period = PeriodExploration
	gov.current = "P"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reset ballots so each iteration applies a full voter set.
		gov.ballots = make(map[Address]BallotVote)
		for _, baker := range c.Bakers() {
			op := Operation{Kind: KindBallot, Source: baker.Address, Proposal: "P", Ballot: VoteYay}
			if err := gov.ApplyBallot(c, &op, blk); err != nil {
				b.Fatal(err)
			}
		}
	}
}
