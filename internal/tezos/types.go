// Package tezos simulates the Tezos blockchain: Liquid Proof-of-Stake baking
// with 32 endorsement slots per block, implicit (tz1) and originated (KT1)
// accounts, manager operations, and the four-period on-chain governance
// process whose Babylon 2.0 run the paper analyzes in §4.2.
package tezos

import (
	"time"

	"repro/internal/chain"
)

// OperationKind enumerates the operation types the paper tabulates in
// Figure 1 for Tezos.
type OperationKind string

// The operation kinds, grouped as the paper groups them: consensus related,
// governance related, and manager operations.
const (
	KindEndorsement  OperationKind = "endorsement"
	KindSeedNonce    OperationKind = "seed_nonce_revelation"
	KindDoubleBaking OperationKind = "double_baking_evidence"
	KindProposals    OperationKind = "proposals"
	KindBallot       OperationKind = "ballot"
	KindTransaction  OperationKind = "transaction"
	KindOrigination  OperationKind = "origination"
	KindReveal       OperationKind = "reveal"
	KindActivation   OperationKind = "activate_account"
	KindDelegation   OperationKind = "delegation"
)

// IsConsensus reports whether the kind maintains consensus (the 82 % slice
// of Tezos throughput in the paper).
func (k OperationKind) IsConsensus() bool {
	return k == KindEndorsement || k == KindSeedNonce || k == KindDoubleBaking
}

// IsGovernance reports whether the kind belongs to the amendment process.
func (k OperationKind) IsGovernance() bool {
	return k == KindProposals || k == KindBallot
}

// BallotVote is a governance ballot choice.
type BallotVote string

// Ballot choices. The Tezos Foundation's policy of always explicitly
// abstaining is why "pass" exists in the Figure 9 plots.
const (
	VoteYay  BallotVote = "yay"
	VoteNay  BallotVote = "nay"
	VotePass BallotVote = "pass"
)

// Operation is one Tezos operation. Fields are a union across kinds; unused
// fields stay zero. Amounts and fees are mutez.
type Operation struct {
	Kind        OperationKind `json:"kind"`
	Source      Address       `json:"source,omitempty"`
	Destination Address       `json:"destination,omitempty"`
	Amount      int64         `json:"amount,omitempty"`
	Fee         int64         `json:"fee,omitempty"`

	// Endorsement fields.
	Slots []int `json:"slots,omitempty"`
	Level int64 `json:"level,omitempty"` // endorsed level

	// Governance fields.
	Proposal string     `json:"proposal,omitempty"`
	Ballot   BallotVote `json:"ballot,omitempty"`
	// Rolls is the voting weight snapshot at inclusion time; real Tezos
	// derives it from the stake listings, the simulator records it inline.
	Rolls int64 `json:"rolls,omitempty"`

	// Delegation field.
	Delegate Address `json:"delegate,omitempty"`
}

// Block is one baked Tezos block.
type Block struct {
	Level       int64       `json:"level"`
	Hash        chain.Hash  `json:"hash"`
	Predecessor chain.Hash  `json:"predecessor"`
	Timestamp   time.Time   `json:"timestamp"`
	Baker       Address     `json:"baker"`
	Priority    int         `json:"priority"`
	Operations  []Operation `json:"operations"`
}

// EndorsementOps returns the block's endorsement operations.
func (b *Block) EndorsementOps() []Operation {
	var out []Operation
	for _, op := range b.Operations {
		if op.Kind == KindEndorsement {
			out = append(out, op)
		}
	}
	return out
}

// EndorsedSlots sums the slots covered by the block's endorsements. A block
// needs at least MinEndorsements slots endorsed to be valid.
func (b *Block) EndorsedSlots() int {
	n := 0
	for _, op := range b.Operations {
		if op.Kind == KindEndorsement {
			n += len(op.Slots)
		}
	}
	return n
}
