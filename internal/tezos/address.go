package tezos

import (
	"fmt"
	"strings"

	"repro/internal/chain"
)

// Address is a Tezos address: implicit accounts start with tz1 (derived from
// a key pair) and originated accounts with KT1 (created and managed by
// implicit accounts; they can act as smart contracts but cannot bake).
type Address string

// Base58check prefixes used by Tezos.
var (
	tz1Prefix = []byte{6, 161, 159}
	kt1Prefix = []byte{2, 90, 121}
)

// NewImplicitAddress derives a deterministic tz1 address from a seed label.
// The simulator uses labels like "baker-7" or "spammer-3" in place of key
// material; the hash plays the role of the public key hash.
func NewImplicitAddress(label string) Address {
	h := chain.HashOf("tz1", label)
	return Address(chain.Base58Check(tz1Prefix, h[:20]))
}

// NewOriginatedAddress derives a deterministic KT1 address.
func NewOriginatedAddress(label string) Address {
	h := chain.HashOf("kt1", label)
	return Address(chain.Base58Check(kt1Prefix, h[:20]))
}

// IsImplicit reports whether the address is a tz1 account.
func (a Address) IsImplicit() bool { return strings.HasPrefix(string(a), "tz1") }

// IsOriginated reports whether the address is a KT1 contract.
func (a Address) IsOriginated() bool { return strings.HasPrefix(string(a), "KT1") }

// Validate checks the base58check structure.
func (a Address) Validate() error {
	switch {
	case a.IsImplicit():
		_, err := chain.DecodeBase58Check(string(a), tz1Prefix)
		return err
	case a.IsOriginated():
		_, err := chain.DecodeBase58Check(string(a), kt1Prefix)
		return err
	default:
		return fmt.Errorf("tezos: address %q has unknown prefix", a)
	}
}

// Account is the ledger record behind an address.
type Account struct {
	Address   Address
	Balance   int64 // mutez
	Revealed  bool  // manager key revealed (required before most operations)
	Activated bool  // fundraiser accounts must be activated first
	Delegate  Address
	Manager   Address // for originated accounts
	Counter   int64   // anti-replay counter
}
