package tezos

import (
	"fmt"
	"sort"
	"time"
)

// PeriodKind is one of the four governance periods the paper's §4.2 walks
// through: proposal → exploration → testing → promotion.
type PeriodKind string

// The voting periods in protocol order.
const (
	PeriodProposal    PeriodKind = "proposal"
	PeriodExploration PeriodKind = "exploration"
	PeriodTesting     PeriodKind = "testing"
	PeriodPromotion   PeriodKind = "promotion"
)

// GovernanceConfig holds the amendment process parameters.
type GovernanceConfig struct {
	// BlocksPerPeriod is the length of each voting period in blocks
	// (main net: 8 cycles = 32,768 blocks ≈ 23 days; scaled runs shrink it
	// with the same factor as the block interval).
	BlocksPerPeriod int64
	// InitialQuorum is the starting participation quorum (fraction of total
	// rolls); main net launched at 80 % and adjusts it dynamically.
	InitialQuorum float64
	// Supermajority is the yay/(yay+nay) fraction required to pass (80 %).
	Supermajority float64
}

// DefaultGovernanceConfig returns main-net parameters sized for scaled runs.
func DefaultGovernanceConfig() GovernanceConfig {
	return GovernanceConfig{
		BlocksPerPeriod: 33, // 32,768 at TimeScale 1000, rounded
		InitialQuorum:   0.75,
		Supermajority:   0.80,
	}
}

// VoteEvent records one governance action for the Figure 9 time series.
type VoteEvent struct {
	Time     time.Time
	Level    int64
	Period   PeriodKind
	Proposal string
	Ballot   BallotVote // empty for proposal upvotes
	Rolls    int64
	Source   Address
}

// PeriodRecord summarizes one completed period.
type PeriodRecord struct {
	Kind                 PeriodKind
	StartLevel, EndLevel int64
	Proposal             string
	Yay, Nay, Pass       int64 // rolls (ballot periods only)
	Participation        float64
	Outcome              string // "advanced", "rejected", "no-proposal", "tested", "promoted"
}

// Governance is the on-chain amendment state machine. Only bakers may
// participate, and — as the paper notes — governance traffic is a rounding
// error next to endorsements: 245 operations in three months.
type Governance struct {
	cfg GovernanceConfig

	period      PeriodKind
	periodStart int64

	// Proposal-period state: upvoted rolls per proposal hash, and which
	// bakers upvoted which proposal (one upvote per baker per proposal).
	upvotes  map[string]int64
	upvoters map[string]map[Address]bool

	// Ballot-period state.
	current        string
	ballots        map[Address]BallotVote
	yay, nay, pass int64

	quorum   float64
	history  []VoteEvent
	periods  []PeriodRecord
	promoted []string
}

// NewGovernance builds the state machine starting in a proposal period.
func NewGovernance(cfg GovernanceConfig) *Governance {
	if cfg.BlocksPerPeriod <= 0 {
		cfg.BlocksPerPeriod = 33
	}
	if cfg.InitialQuorum <= 0 || cfg.InitialQuorum > 1 {
		cfg.InitialQuorum = 0.75
	}
	if cfg.Supermajority <= 0 || cfg.Supermajority > 1 {
		cfg.Supermajority = 0.80
	}
	return &Governance{
		cfg:      cfg,
		period:   PeriodProposal,
		upvotes:  make(map[string]int64),
		upvoters: make(map[string]map[Address]bool),
		ballots:  make(map[Address]BallotVote),
		quorum:   cfg.InitialQuorum,
	}
}

// Period returns the active period kind.
func (g *Governance) Period() PeriodKind { return g.period }

// CurrentProposal returns the proposal under vote (or being tested).
func (g *Governance) CurrentProposal() string { return g.current }

// Quorum returns the current participation quorum.
func (g *Governance) Quorum() float64 { return g.quorum }

// History returns every recorded vote event in order.
func (g *Governance) History() []VoteEvent { return g.history }

// Periods returns the completed period records.
func (g *Governance) Periods() []PeriodRecord { return g.periods }

// Promoted returns the protocols activated so far.
func (g *Governance) Promoted() []string { return g.promoted }

// Tallies returns current ballot tallies in rolls.
func (g *Governance) Tallies() (yay, nay, pass int64) { return g.yay, g.nay, g.pass }

// ApplyProposals processes a proposals operation: a baker upvoting one or
// more proposals (the simulator carries one per operation). Votes can be
// placed on multiple proposals, which is why Babylon kept its votes when
// Babylon 2.0 appeared.
func (g *Governance) ApplyProposals(c *Chain, op *Operation, blk *Block) error {
	if g.period != PeriodProposal {
		return fmt.Errorf("tezos: proposals operation outside proposal period (%s)", g.period)
	}
	if !c.IsBaker(op.Source) {
		return ErrNotBaker
	}
	if op.Proposal == "" {
		return fmt.Errorf("%w: empty proposal hash", ErrBadOperation)
	}
	voters := g.upvoters[op.Proposal]
	if voters == nil {
		voters = make(map[Address]bool)
		g.upvoters[op.Proposal] = voters
	}
	if voters[op.Source] {
		return fmt.Errorf("tezos: %s already upvoted %s", op.Source, op.Proposal)
	}
	voters[op.Source] = true
	rolls := c.BakerRolls(op.Source)
	g.upvotes[op.Proposal] += rolls
	op.Rolls = rolls
	g.history = append(g.history, VoteEvent{
		Time: blk.Timestamp, Level: blk.Level, Period: PeriodProposal,
		Proposal: op.Proposal, Rolls: rolls, Source: op.Source,
	})
	return nil
}

// ApplyBallot processes a ballot during exploration or promotion.
func (g *Governance) ApplyBallot(c *Chain, op *Operation, blk *Block) error {
	if g.period != PeriodExploration && g.period != PeriodPromotion {
		return fmt.Errorf("tezos: ballot outside voting period (%s)", g.period)
	}
	if !c.IsBaker(op.Source) {
		return ErrNotBaker
	}
	if op.Proposal != g.current {
		return fmt.Errorf("tezos: ballot for %q but %q is under vote", op.Proposal, g.current)
	}
	if _, voted := g.ballots[op.Source]; voted {
		return fmt.Errorf("tezos: %s already voted this period", op.Source)
	}
	rolls := c.BakerRolls(op.Source)
	g.ballots[op.Source] = op.Ballot
	switch op.Ballot {
	case VoteYay:
		g.yay += rolls
	case VoteNay:
		g.nay += rolls
	case VotePass:
		g.pass += rolls
	default:
		return fmt.Errorf("%w: ballot %q", ErrBadOperation, op.Ballot)
	}
	op.Rolls = rolls
	g.history = append(g.history, VoteEvent{
		Time: blk.Timestamp, Level: blk.Level, Period: g.period,
		Proposal: op.Proposal, Ballot: op.Ballot, Rolls: rolls, Source: op.Source,
	})
	return nil
}

// ObserveBlock advances the period state machine at period boundaries.
func (g *Governance) ObserveBlock(c *Chain, blk *Block) {
	if blk.Level-g.periodStart < g.cfg.BlocksPerPeriod {
		return
	}
	totalRolls := int64(0)
	for _, b := range c.Bakers() {
		totalRolls += b.Rolls()
	}
	switch g.period {
	case PeriodProposal:
		winner, votes := g.leadingProposal()
		rec := PeriodRecord{Kind: PeriodProposal, StartLevel: g.periodStart, EndLevel: blk.Level, Proposal: winner}
		if totalRolls > 0 {
			rec.Participation = float64(g.participatingRolls(c)) / float64(totalRolls)
		}
		if winner == "" || votes == 0 {
			rec.Outcome = "no-proposal"
			g.periods = append(g.periods, rec)
			g.resetProposalPeriod(blk.Level)
			return
		}
		rec.Outcome = "advanced"
		g.periods = append(g.periods, rec)
		g.current = winner
		g.enterBallotPeriod(PeriodExploration, blk.Level)
	case PeriodExploration:
		if g.closeBallotPeriod(c, blk, totalRolls, PeriodExploration) {
			g.period = PeriodTesting
			g.periodStart = blk.Level
		} else {
			g.resetProposalPeriod(blk.Level)
		}
	case PeriodTesting:
		g.periods = append(g.periods, PeriodRecord{
			Kind: PeriodTesting, StartLevel: g.periodStart, EndLevel: blk.Level,
			Proposal: g.current, Outcome: "tested",
		})
		g.enterBallotPeriod(PeriodPromotion, blk.Level)
	case PeriodPromotion:
		if g.closeBallotPeriod(c, blk, totalRolls, PeriodPromotion) {
			g.promoted = append(g.promoted, g.current)
		}
		g.resetProposalPeriod(blk.Level)
	}
}

// leadingProposal returns the proposal with the most upvoted rolls,
// tie-broken lexicographically for determinism.
func (g *Governance) leadingProposal() (string, int64) {
	keys := make([]string, 0, len(g.upvotes))
	for k := range g.upvotes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, bestVotes := "", int64(0)
	for _, k := range keys {
		if g.upvotes[k] > bestVotes {
			best, bestVotes = k, g.upvotes[k]
		}
	}
	return best, bestVotes
}

func (g *Governance) participatingRolls(c *Chain) int64 {
	seen := make(map[Address]bool)
	for _, voters := range g.upvoters {
		for v := range voters {
			seen[v] = true
		}
	}
	var rolls int64
	for v := range seen {
		rolls += c.BakerRolls(v)
	}
	return rolls
}

func (g *Governance) enterBallotPeriod(kind PeriodKind, level int64) {
	g.period = kind
	g.periodStart = level
	g.ballots = make(map[Address]BallotVote)
	g.yay, g.nay, g.pass = 0, 0, 0
}

func (g *Governance) resetProposalPeriod(level int64) {
	g.period = PeriodProposal
	g.periodStart = level
	g.upvotes = make(map[string]int64)
	g.upvoters = make(map[string]map[Address]bool)
	g.current = ""
}

// closeBallotPeriod evaluates quorum and supermajority, records the period,
// updates the dynamic quorum, and reports whether the vote passed.
func (g *Governance) closeBallotPeriod(c *Chain, blk *Block, totalRolls int64, kind PeriodKind) bool {
	participation := 0.0
	if totalRolls > 0 {
		participation = float64(g.yay+g.nay+g.pass) / float64(totalRolls)
	}
	passed := false
	// The epsilon keeps the dynamically adjusted quorum (an EMA converging
	// toward observed participation) from exceeding participation through
	// float rounding alone.
	if participation >= g.quorum-1e-9 {
		if g.yay+g.nay > 0 && float64(g.yay)/float64(g.yay+g.nay) >= g.cfg.Supermajority {
			passed = true
		}
	}
	outcome := "rejected"
	if passed {
		if kind == PeriodPromotion {
			outcome = "promoted"
		} else {
			outcome = "advanced"
		}
	}
	g.periods = append(g.periods, PeriodRecord{
		Kind: kind, StartLevel: g.periodStart, EndLevel: blk.Level,
		Proposal: g.current, Yay: g.yay, Nay: g.nay, Pass: g.pass,
		Participation: participation, Outcome: outcome,
	})
	// Dynamic quorum: main net nudges the quorum toward observed
	// participation (80/20 EMA).
	g.quorum = 0.8*g.quorum + 0.2*participation
	if g.quorum < 0.3 {
		g.quorum = 0.3
	}
	return passed
}
