package tezos

import (
	"testing"
)

// govChain builds a chain with nBakers equally staked bakers and short
// governance periods so tests can drive full amendment cycles.
func govChain(t *testing.T, nBakers int, blocksPerPeriod int64) *Chain {
	t.Helper()
	cfg := DefaultConfig(1000)
	cfg.Governance.BlocksPerPeriod = blocksPerPeriod
	c := New(cfg)
	for i := 0; i < nBakers; i++ {
		addr := NewImplicitAddress("gov-baker-" + string(rune('a'+i)))
		if err := c.RegisterBaker(addr, 50_000*xtz); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func produce(t *testing.T, c *Chain, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.ProduceBlock(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestProposalPeriodAdvancesWithVotes(t *testing.T) {
	c := govChain(t, 10, 5)
	for _, b := range c.Bakers()[:8] {
		c.Inject(Operation{Kind: KindProposals, Source: b.Address, Proposal: "PsBabyM1"})
	}
	produce(t, c, 6)
	if got := c.Governance().Period(); got != PeriodExploration {
		t.Fatalf("period = %s, want exploration", got)
	}
	if got := c.Governance().CurrentProposal(); got != "PsBabyM1" {
		t.Fatalf("current proposal = %q", got)
	}
}

func TestProposalPeriodRestartsWithoutVotes(t *testing.T) {
	c := govChain(t, 5, 4)
	produce(t, c, 5)
	if got := c.Governance().Period(); got != PeriodProposal {
		t.Fatalf("period = %s, want proposal restart", got)
	}
	recs := c.Governance().Periods()
	if len(recs) == 0 || recs[0].Outcome != "no-proposal" {
		t.Fatalf("period records: %+v", recs)
	}
}

func TestMultipleProposalsHighestWins(t *testing.T) {
	// Babylon vs Babylon 2.0: votes placed on the first proposal persist,
	// but the updated proposal gathering more rolls is selected.
	c := govChain(t, 10, 6)
	bakers := c.Bakers()
	for _, b := range bakers[:3] {
		c.Inject(Operation{Kind: KindProposals, Source: b.Address, Proposal: "PsBabylon"})
	}
	for _, b := range bakers[:8] {
		c.Inject(Operation{Kind: KindProposals, Source: b.Address, Proposal: "PsBabyM2"})
	}
	produce(t, c, 7)
	if got := c.Governance().CurrentProposal(); got != "PsBabyM2" {
		t.Fatalf("winner = %q, want PsBabyM2", got)
	}
}

func TestDuplicateUpvoteRejected(t *testing.T) {
	c := govChain(t, 5, 50)
	b := c.Bakers()[0].Address
	c.Inject(Operation{Kind: KindProposals, Source: b, Proposal: "P"})
	c.Inject(Operation{Kind: KindProposals, Source: b, Proposal: "P"})
	produce(t, c, 1)
	if c.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (duplicate upvote)", c.Rejected)
	}
}

func TestNonBakerCannotVote(t *testing.T) {
	c := govChain(t, 5, 50)
	outsider := NewImplicitAddress("not-a-baker")
	c.FundAccount(outsider, 100*xtz).Revealed = true
	c.Inject(Operation{Kind: KindProposals, Source: outsider, Proposal: "P"})
	produce(t, c, 1)
	if c.Rejected != 1 {
		t.Fatal("non-baker proposal accepted")
	}
}

// driveFullCycle pushes an amendment through all four periods, with
// explorationNay bakers voting nay during exploration and promotionNay
// during promotion. It returns the chain.
func driveFullCycle(t *testing.T, explorationNay, promotionNay int) *Chain {
	t.Helper()
	const period = 5
	c := govChain(t, 10, period)
	bakers := c.Bakers()

	// Proposal period: everyone upvotes.
	for _, b := range bakers {
		c.Inject(Operation{Kind: KindProposals, Source: b.Address, Proposal: "PsBabyM2"})
	}
	produce(t, c, period+1)
	if c.Governance().Period() != PeriodExploration {
		t.Fatalf("expected exploration, got %s", c.Governance().Period())
	}

	// Exploration: nay voters first, the rest yay (foundation-style pass
	// for the last baker).
	for i, b := range bakers {
		vote := VoteYay
		if i < explorationNay {
			vote = VoteNay
		} else if i == len(bakers)-1 {
			vote = VotePass
		}
		c.Inject(Operation{Kind: KindBallot, Source: b.Address, Proposal: "PsBabyM2", Ballot: vote})
	}
	produce(t, c, period+1)
	return c
}

func TestAmendmentFullCyclePromoted(t *testing.T) {
	c := driveFullCycle(t, 0, 0)
	if got := c.Governance().Period(); got != PeriodTesting {
		t.Fatalf("after exploration: %s", got)
	}
	produce(t, c, 6) // testing period runs with no votes
	if got := c.Governance().Period(); got != PeriodPromotion {
		t.Fatalf("after testing: %s", got)
	}
	// Promotion: 15% nay as the paper observed for Babylon (Ledger breakage).
	bakers := c.Bakers()
	for i, b := range bakers {
		vote := VoteYay
		if i < 1 { // 1 of 10 bakers ≈ the paper's 15% nay share
			vote = VoteNay
		}
		c.Inject(Operation{Kind: KindBallot, Source: b.Address, Proposal: "PsBabyM2", Ballot: vote})
	}
	produce(t, c, 6)
	if got := c.Governance().Promoted(); len(got) != 1 || got[0] != "PsBabyM2" {
		t.Fatalf("promoted = %v", got)
	}
	if got := c.Governance().Period(); got != PeriodProposal {
		t.Fatalf("cycle did not reset: %s", got)
	}
}

func TestExplorationRejectionReturnsToProposal(t *testing.T) {
	// 5 of 10 nay votes breaks the 80% supermajority.
	c := driveFullCycle(t, 5, 0)
	if got := c.Governance().Period(); got != PeriodProposal {
		t.Fatalf("rejected exploration should reset to proposal, got %s", got)
	}
	recs := c.Governance().Periods()
	last := recs[len(recs)-1]
	if last.Kind != PeriodExploration || last.Outcome != "rejected" {
		t.Fatalf("last period record: %+v", last)
	}
}

func TestQuorumFailureRejects(t *testing.T) {
	const period = 5
	c := govChain(t, 10, period)
	for _, b := range c.Bakers() {
		c.Inject(Operation{Kind: KindProposals, Source: b.Address, Proposal: "P"})
	}
	produce(t, c, period+1)
	// Only one baker votes: participation 10% < quorum 75%.
	c.Inject(Operation{Kind: KindBallot, Source: c.Bakers()[0].Address, Proposal: "P", Ballot: VoteYay})
	produce(t, c, period+1)
	if got := c.Governance().Period(); got != PeriodProposal {
		t.Fatalf("quorum failure should reset, got %s", got)
	}
	// Dynamic quorum must have dropped toward observed participation.
	if q := c.Governance().Quorum(); q >= 0.75 {
		t.Fatalf("quorum did not adjust: %f", q)
	}
}

func TestBallotOutsideVotingPeriodRejected(t *testing.T) {
	c := govChain(t, 5, 50)
	c.Inject(Operation{Kind: KindBallot, Source: c.Bakers()[0].Address, Proposal: "P", Ballot: VoteYay})
	produce(t, c, 1)
	if c.Rejected != 1 {
		t.Fatal("ballot accepted during proposal period")
	}
}

func TestHistoryRecordsVoteEvents(t *testing.T) {
	c := driveFullCycle(t, 0, 0)
	hist := c.Governance().History()
	if len(hist) == 0 {
		t.Fatal("no history recorded")
	}
	var proposals, ballots int
	for _, ev := range hist {
		switch ev.Period {
		case PeriodProposal:
			proposals++
			if ev.Ballot != "" {
				t.Fatal("proposal event carries a ballot")
			}
		case PeriodExploration:
			ballots++
			if ev.Rolls <= 0 {
				t.Fatal("ballot event without rolls")
			}
		}
	}
	if proposals != 10 || ballots != 10 {
		t.Fatalf("history: %d proposals, %d ballots", proposals, ballots)
	}
}
