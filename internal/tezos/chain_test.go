package tezos

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
)

const xtz = int64(1_000_000) // one XTZ in mutez

// newTestChain builds a chain with n equally staked bakers.
func newTestChain(t *testing.T, n int) *Chain {
	t.Helper()
	c := New(DefaultConfig(1000))
	for i := 0; i < n; i++ {
		addr := NewImplicitAddress("baker-" + string(rune('a'+i)))
		if err := c.RegisterBaker(addr, 50_000*xtz); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddressShapes(t *testing.T) {
	impl := NewImplicitAddress("alice")
	if !impl.IsImplicit() || impl.IsOriginated() {
		t.Fatalf("implicit address misclassified: %s", impl)
	}
	if err := impl.Validate(); err != nil {
		t.Fatal(err)
	}
	orig := NewOriginatedAddress("contract-1")
	if !orig.IsOriginated() || orig.IsImplicit() {
		t.Fatalf("originated address misclassified: %s", orig)
	}
	if err := orig.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Address("xyz123").Validate(); err == nil {
		t.Fatal("junk address validated")
	}
}

func TestAddressDeterminism(t *testing.T) {
	if NewImplicitAddress("x") != NewImplicitAddress("x") {
		t.Fatal("address derivation not deterministic")
	}
	if NewImplicitAddress("x") == NewImplicitAddress("y") {
		t.Fatal("distinct labels collided")
	}
}

func TestRegisterBakerRules(t *testing.T) {
	c := New(DefaultConfig(1000))
	if err := c.RegisterBaker(NewOriginatedAddress("kt"), 50_000*xtz); err == nil {
		t.Fatal("originated account registered as baker")
	}
	// Below the one-roll (10,000 XTZ) threshold.
	if err := c.RegisterBaker(NewImplicitAddress("poor"), 9_999*xtz); err == nil {
		t.Fatal("sub-roll stake registered as baker")
	}
	addr := NewImplicitAddress("rich")
	if err := c.RegisterBaker(addr, 20_000*xtz); err != nil {
		t.Fatal(err)
	}
	if got := c.BakerRolls(addr); got != 2 {
		t.Fatalf("rolls = %d, want 2", got)
	}
	// Topping up merges stake rather than duplicating the baker.
	if err := c.RegisterBaker(addr, 10_000*xtz); err != nil {
		t.Fatal(err)
	}
	if len(c.Bakers()) != 1 || c.BakerRolls(addr) != 3 {
		t.Fatalf("baker top-up broken: %d bakers, %d rolls", len(c.Bakers()), c.BakerRolls(addr))
	}
}

func TestBlocksCarryEndorsementsForPredecessor(t *testing.T) {
	c := newTestChain(t, 40)
	b1, err := c.ProduceBlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.EndorsementOps()) != 0 {
		t.Fatal("genesis block cannot endorse a predecessor")
	}
	b2, err := c.ProduceBlock()
	if err != nil {
		t.Fatal(err)
	}
	ops := b2.EndorsementOps()
	if len(ops) == 0 {
		t.Fatal("no endorsements for block 1")
	}
	for _, op := range ops {
		if op.Level != 1 {
			t.Fatalf("endorsement for level %d, want 1", op.Level)
		}
	}
	if b2.EndorsedSlots() > EndorsementSlots {
		t.Fatalf("%d slots endorsed, max %d", b2.EndorsedSlots(), EndorsementSlots)
	}
}

func TestEndorsementOpsPerBlockNearPaperAverage(t *testing.T) {
	// The paper's totals imply ~23 endorsement operations per block
	// (3,021,296 endorsements / 131,801 blocks). With 40 bakers at 72 %
	// participation the simulator should land in that neighbourhood.
	c := newTestChain(t, 40)
	total := 0
	const blocks = 300
	for i := 0; i < blocks; i++ {
		b, err := c.ProduceBlock()
		if err != nil {
			t.Fatal(err)
		}
		total += len(b.EndorsementOps())
	}
	avg := float64(total) / float64(blocks-1) // first block endorses nothing
	if avg < 15 || avg > 28 {
		t.Fatalf("avg endorsement ops per block = %.1f, want ~23", avg)
	}
}

func TestTransactionLifecycle(t *testing.T) {
	c := newTestChain(t, 5)
	alice := NewImplicitAddress("alice")
	bob := NewImplicitAddress("bob")
	acct := c.FundAccount(alice, 100*xtz)
	acct.Revealed = true

	c.Inject(Operation{Kind: KindTransaction, Source: alice, Destination: bob, Amount: 10 * xtz, Fee: 1000})
	b, err := c.ProduceBlock()
	if err != nil {
		t.Fatal(err)
	}
	var txs int
	for _, op := range b.Operations {
		if op.Kind == KindTransaction {
			txs++
		}
	}
	if txs != 1 {
		t.Fatalf("block carries %d transactions", txs)
	}
	if got := c.GetAccount(bob).Balance; got != 10*xtz {
		t.Fatalf("bob = %d", got)
	}
	if got := c.GetAccount(alice).Balance; got != 90*xtz-1000 {
		t.Fatalf("alice = %d", got)
	}
	if got := c.GetAccount(alice).Counter; got != 1 {
		t.Fatalf("counter = %d", got)
	}
}

func TestTransactionRequiresReveal(t *testing.T) {
	c := newTestChain(t, 5)
	alice := NewImplicitAddress("alice2")
	c.FundAccount(alice, 100*xtz) // not revealed
	c.Inject(Operation{Kind: KindTransaction, Source: alice, Destination: NewImplicitAddress("bob2"), Amount: xtz})
	if _, err := c.ProduceBlock(); err != nil {
		t.Fatal(err)
	}
	if c.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Rejected)
	}
	// After a reveal operation the transfer goes through.
	c.Inject(Operation{Kind: KindReveal, Source: alice})
	c.Inject(Operation{Kind: KindTransaction, Source: alice, Destination: NewImplicitAddress("bob2"), Amount: xtz})
	if _, err := c.ProduceBlock(); err != nil {
		t.Fatal(err)
	}
	if c.Rejected != 1 {
		t.Fatalf("rejected after reveal = %d", c.Rejected)
	}
}

func TestTransactionInsufficientBalance(t *testing.T) {
	c := newTestChain(t, 5)
	alice := NewImplicitAddress("alice3")
	c.FundAccount(alice, xtz).Revealed = true
	c.Inject(Operation{Kind: KindTransaction, Source: alice, Destination: NewImplicitAddress("bob3"), Amount: 2 * xtz})
	c.ProduceBlock()
	if c.Rejected != 1 {
		t.Fatalf("rejected = %d", c.Rejected)
	}
}

func TestOrigination(t *testing.T) {
	c := newTestChain(t, 5)
	alice := NewImplicitAddress("alice4")
	c.FundAccount(alice, 100*xtz).Revealed = true
	kt := NewOriginatedAddress("alice4-contract")
	c.Inject(Operation{Kind: KindOrigination, Source: alice, Destination: kt, Amount: 5 * xtz, Fee: 500})
	c.ProduceBlock()
	contract := c.GetAccount(kt)
	if contract == nil {
		t.Fatal("contract not originated")
	}
	if contract.Manager != alice || contract.Balance != 5*xtz {
		t.Fatalf("contract state: %+v", contract)
	}
	// Duplicate origination must fail.
	c.Inject(Operation{Kind: KindOrigination, Source: alice, Destination: kt, Amount: xtz})
	c.ProduceBlock()
	if c.Rejected != 1 {
		t.Fatalf("duplicate origination not rejected")
	}
}

func TestActivationAndDelegation(t *testing.T) {
	c := newTestChain(t, 5)
	fundraiser := NewImplicitAddress("fundraiser-1")
	c.Inject(Operation{Kind: KindActivation, Source: fundraiser, Amount: 1000 * xtz})
	c.ProduceBlock()
	acct := c.GetAccount(fundraiser)
	if acct == nil || !acct.Activated || acct.Balance != 1000*xtz {
		t.Fatalf("activation failed: %+v", acct)
	}
	baker := c.Bakers()[0].Address
	c.Inject(Operation{Kind: KindDelegation, Source: fundraiser, Delegate: baker})
	c.ProduceBlock()
	if got := c.GetAccount(fundraiser).Delegate; got != baker {
		t.Fatalf("delegate = %s", got)
	}
}

func TestInjectedEndorsementRejected(t *testing.T) {
	c := newTestChain(t, 5)
	c.Inject(Operation{Kind: KindEndorsement, Source: c.Bakers()[0].Address})
	c.ProduceBlock()
	if c.Rejected != 1 {
		t.Fatal("injected endorsement accepted")
	}
}

func TestProduceBlockWithoutBakers(t *testing.T) {
	c := New(DefaultConfig(1000))
	if _, err := c.ProduceBlock(); err == nil {
		t.Fatal("bakerless chain produced a block")
	}
}

func TestBalanceConservationProperty(t *testing.T) {
	// Transfers (with zero fees) conserve total supply no matter the order
	// or validity of the injected operations.
	addrs := []Address{
		NewImplicitAddress("p1"), NewImplicitAddress("p2"),
		NewImplicitAddress("p3"), NewImplicitAddress("p4"),
	}
	f := func(moves []uint16) bool {
		c := newTestChainQuick()
		var initial int64
		for _, a := range addrs {
			acct := c.FundAccount(a, 1000*xtz)
			acct.Revealed = true
			initial += acct.Balance
		}
		for _, b := range c.Bakers() {
			initial += c.GetAccount(b.Address).Balance
		}
		for _, m := range moves {
			from := addrs[int(m)%len(addrs)]
			to := addrs[int(m>>2)%len(addrs)]
			c.Inject(Operation{Kind: KindTransaction, Source: from, Destination: to, Amount: int64(m%9999) * 100})
			if m%5 == 0 {
				if _, err := c.ProduceBlock(); err != nil {
					return false
				}
			}
		}
		if _, err := c.ProduceBlock(); err != nil {
			return false
		}
		var final int64
		for addr := range c.accounts {
			final += c.accounts[addr].Balance
		}
		return final == initial
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func newTestChainQuick() *Chain {
	c := New(DefaultConfig(1000))
	for i := 0; i < 3; i++ {
		_ = c.RegisterBaker(NewImplicitAddress("qb-"+string(rune('a'+i))), 50_000*xtz)
	}
	return c
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 30}
}

func TestTimestampsUseScaledInterval(t *testing.T) {
	c := newTestChain(t, 3)
	b1, _ := c.ProduceBlock()
	b2, _ := c.ProduceBlock()
	if got := b2.Timestamp.Sub(b1.Timestamp); got != DefaultConfig(1000).BlockInterval {
		t.Fatalf("interval %v", got)
	}
	_ = chain.ObservationStart // keep import for clarity of window origin
}
