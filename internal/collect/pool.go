package collect

import "context"

// Pool bounds in-flight block fetches across concurrent crawls. The
// pipeline runs its chain stages in parallel; sharing one pool keeps the
// total fetch concurrency at the configured worker count no matter how
// many crawls are active, the way one machine's crawler budget was shared
// across the paper's three chains. Retry backoff sleeps do not hold a
// slot, so a rate-limited endpoint never starves the other chains.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting n concurrent fetches (n <= 0 selects 4,
// matching the crawler's default worker count).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 4
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size reports the pool's admission bound.
func (p *Pool) Size() int { return cap(p.sem) }

// acquire blocks until a slot frees or ctx is done.
func (p *Pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *Pool) release() { <-p.sem }
