// Package collect reproduces the paper's data-collection methodology:
// probing advertised RPC endpoints and short-listing the ones with generous
// rate limits and stable latency (6 of 32 for EOS), then crawling block
// history in reverse chronological order over HTTP and WebSocket while
// accounting for the gzip-compressed footprint of everything fetched
// (Figure 2's storage column).
package collect

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/rpcserve"
	"repro/internal/wire"
	"repro/internal/wsrpc"
)

// readAllRecycled drains r into a buffer recycled through wire.GetRaw, so a
// steady-state crawl reads block payloads without allocating. The returned
// slice is exclusively the caller's; Block.Release sends it back to the
// pool.
func readAllRecycled(r io.Reader) ([]byte, error) {
	buf := wire.GetRaw()
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			wire.PutRaw(buf)
			return nil, err
		}
	}
}

// ErrRateLimited signals an HTTP 429; the crawler backs off and retries.
type rateLimitError struct{ retryAfter time.Duration }

func (e rateLimitError) Error() string {
	return fmt.Sprintf("collect: rate limited (retry after %v)", e.retryAfter)
}

// RetryAfter surfaces the server's pacing hint to retry.Policy, which
// stretches its next backoff to at least this long.
func (e rateLimitError) RetryAfter() time.Duration { return e.retryAfter }

// EOSClient talks to one nodeos-style endpoint.
type EOSClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewEOSClient wraps an endpoint URL.
func NewEOSClient(baseURL string) *EOSClient {
	return &EOSClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *EOSClient) post(ctx context.Context, path string, body any) ([]byte, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("collect: marshaling request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := readAllRecycled(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusTooManyRequests:
		wire.PutRaw(raw)
		return nil, rateLimitError{retryAfter: time.Second}
	default:
		err := fmt.Errorf("collect: %s%s returned %s", c.BaseURL, path, resp.Status)
		wire.PutRaw(raw)
		return nil, err
	}
}

// OwnsRaw marks FetchBlock results as exclusively caller-owned, letting the
// stream recycle released payload buffers (see RawRecycler).
func (c *EOSClient) OwnsRaw() bool { return true }

// Head returns the endpoint's current head block number.
func (c *EOSClient) Head(ctx context.Context) (int64, error) {
	raw, err := c.post(ctx, "/v1/chain/get_info", map[string]any{})
	if err != nil {
		return 0, err
	}
	defer wire.PutRaw(raw)
	var info struct {
		HeadBlockNum int64 `json:"head_block_num"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		return 0, fmt.Errorf("collect: decoding get_info: %w", err)
	}
	return info.HeadBlockNum, nil
}

// FetchBlock retrieves one block as raw JSON.
func (c *EOSClient) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	return c.post(ctx, "/v1/chain/get_block", map[string]any{"block_num_or_id": num})
}

// DecodeEOSBlock parses the raw JSON the server produced into a fresh,
// caller-owned struct through the pooled wire codec. Hot-path consumers
// that can honor the arena contract should decode into wire.GetEOSBlock
// instead (see core.EOSDecoder).
func DecodeEOSBlock(raw []byte) (*rpcserve.EOSBlockJSON, error) {
	var b rpcserve.EOSBlockJSON
	c := wire.GetCodec()
	err := c.DecodeEOSBlock(raw, &b)
	wire.PutCodec(c)
	if err != nil {
		return nil, fmt.Errorf("collect: decoding EOS block: %w", err)
	}
	return &b, nil
}

// TezosClient talks to an octez-style endpoint.
type TezosClient struct {
	BaseURL string
	HTTP    *http.Client
}

// NewTezosClient wraps an endpoint URL.
func NewTezosClient(baseURL string) *TezosClient {
	return &TezosClient{BaseURL: baseURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *TezosClient) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := readAllRecycled(resp.Body)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusTooManyRequests:
		wire.PutRaw(raw)
		return nil, rateLimitError{retryAfter: time.Second}
	default:
		err := fmt.Errorf("collect: %s%s returned %s", c.BaseURL, path, resp.Status)
		wire.PutRaw(raw)
		return nil, err
	}
}

// OwnsRaw marks FetchBlock results as exclusively caller-owned.
func (c *TezosClient) OwnsRaw() bool { return true }

// Head returns the current head level.
func (c *TezosClient) Head(ctx context.Context) (int64, error) {
	raw, err := c.get(ctx, "/chains/main/blocks/head")
	if err != nil {
		return 0, err
	}
	defer wire.PutRaw(raw)
	var b struct {
		Level int64 `json:"level"`
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return 0, fmt.Errorf("collect: decoding head: %w", err)
	}
	return b.Level, nil
}

// FetchBlock retrieves one block as raw JSON.
func (c *TezosClient) FetchBlock(ctx context.Context, level int64) ([]byte, error) {
	return c.get(ctx, fmt.Sprintf("/chains/main/blocks/%d", level))
}

// DecodeTezosBlock parses the raw JSON the server produced into a fresh,
// caller-owned struct through the pooled wire codec.
func DecodeTezosBlock(raw []byte) (*rpcserve.TezosBlockJSON, error) {
	var b rpcserve.TezosBlockJSON
	c := wire.GetCodec()
	err := c.DecodeTezosBlock(raw, &b)
	wire.PutCodec(c)
	if err != nil {
		return nil, fmt.Errorf("collect: decoding Tezos block: %w", err)
	}
	return &b, nil
}

// XRPClient speaks the rippled WebSocket protocol over a pooled connection.
type XRPClient struct {
	URL string

	mu   sync.Mutex
	conn *wsrpc.Conn
	next int
}

// NewXRPClient wraps a ws:// endpoint.
func NewXRPClient(url string) *XRPClient { return &XRPClient{URL: url} }

// OwnsRaw marks FetchBlock results as exclusively caller-owned: each call
// returns a freshly decoded result envelope no one else references.
func (c *XRPClient) OwnsRaw() bool { return true }

func (c *XRPClient) ensure() (*wsrpc.Conn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	conn, err := wsrpc.Dial(c.URL)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return conn, nil
}

// Close releases the underlying connection.
func (c *XRPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// call performs one command round trip. The WebSocket protocol is
// sequential per connection, so calls are serialized.
func (c *XRPClient) call(req map[string]any) (json.RawMessage, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.ensure()
	if err != nil {
		return nil, err
	}
	c.next++
	req["id"] = c.next
	if err := conn.WriteJSON(req); err != nil {
		c.conn = nil
		return nil, err
	}
	var resp struct {
		ID     any             `json:"id"`
		Status string          `json:"status"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	if err := conn.ReadJSON(&resp); err != nil {
		c.conn = nil
		return nil, err
	}
	if resp.Status != "success" {
		return nil, fmt.Errorf("collect: xrp command failed: %s", resp.Error)
	}
	return resp.Result, nil
}

// Head returns the latest validated ledger index.
func (c *XRPClient) Head(ctx context.Context) (int64, error) {
	raw, err := c.call(map[string]any{"command": "server_info"})
	if err != nil {
		return 0, err
	}
	var res struct {
		Info struct {
			ValidatedLedger struct {
				Seq int64 `json:"seq"`
			} `json:"validated_ledger"`
		} `json:"info"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		return 0, fmt.Errorf("collect: decoding server_info: %w", err)
	}
	return res.Info.ValidatedLedger.Seq, nil
}

// FetchBlock retrieves one ledger (with expanded transactions) as raw JSON.
func (c *XRPClient) FetchBlock(ctx context.Context, index int64) ([]byte, error) {
	raw, err := c.call(map[string]any{
		"command":      "ledger",
		"ledger_index": index,
		"transactions": true,
		"expand":       true,
	})
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// DecodeXRPLedger parses the ledger result envelope into a fresh,
// caller-owned struct through the pooled wire codec.
func DecodeXRPLedger(raw []byte) (*rpcserve.XRPLedgerJSON, error) {
	var l rpcserve.XRPLedgerJSON
	c := wire.GetCodec()
	err := c.DecodeXRPLedgerResult(raw, &l)
	wire.PutCodec(c)
	if err != nil {
		return nil, fmt.Errorf("collect: decoding XRP ledger: %w", err)
	}
	return &l, nil
}
