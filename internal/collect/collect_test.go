package collect

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/rpcserve"
	"repro/internal/tezos"
	"repro/internal/wsrpc"
	"repro/internal/xrp"
)

// eosTestServer produces an EOS chain with nBlocks blocks (one transfer per
// block) and serves it.
func eosTestServer(t *testing.T, nBlocks int, profile rpcserve.EndpointProfile) *httptest.Server {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}
	return httptest.NewServer(profile.Middleware(rpcserve.NewEOSServer(c)))
}

func TestCrawlEOSReverseChronological(t *testing.T) {
	srv := eosTestServer(t, 20, rpcserve.EndpointProfile{})
	defer srv.Close()

	client := NewEOSClient(srv.URL)
	var mu sync.Mutex
	var order []int64
	res, err := Crawl(context.Background(), client, CrawlConfig{Workers: 1}, func(num int64, raw []byte) error {
		mu.Lock()
		order = append(order, num)
		mu.Unlock()
		if _, err := DecodeEOSBlock(raw); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 20 || res.Failed != 0 {
		t.Fatalf("crawl result: %+v", res)
	}
	if res.GzipBytes <= 0 || res.RawBytes <= res.GzipBytes {
		t.Fatalf("gzip accounting wrong: raw=%d gzip=%d", res.RawBytes, res.GzipBytes)
	}
	// Single worker must deliver newest-first.
	if order[0] != 20 || order[len(order)-1] != 1 {
		t.Fatalf("order: %v", order)
	}
}

func TestCrawlConcurrentWorkersComplete(t *testing.T) {
	srv := eosTestServer(t, 50, rpcserve.EndpointProfile{})
	defer srv.Close()
	client := NewEOSClient(srv.URL)
	var seen sync.Map
	res, err := Crawl(context.Background(), client, CrawlConfig{Workers: 8}, func(num int64, raw []byte) error {
		seen.Store(num, true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 50 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	for i := int64(1); i <= 50; i++ {
		if _, ok := seen.Load(i); !ok {
			t.Fatalf("block %d never delivered", i)
		}
	}
}

func TestCrawlSurvivesRateLimiting(t *testing.T) {
	// Each 429 costs a full Retry-After sleep, so the block count sets
	// this test's wall-clock; -short keeps just enough to trip the limit.
	nBlocks := 15
	if testing.Short() {
		nBlocks = 5
	}
	srv := eosTestServer(t, nBlocks, rpcserve.EndpointProfile{RatePerSec: 200, Burst: 3})
	defer srv.Close()
	client := NewEOSClient(srv.URL)
	res, err := Crawl(context.Background(), client, CrawlConfig{
		Workers: 4, MaxRetries: 10, Backoff: 5 * time.Millisecond,
	}, func(int64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != int64(nBlocks) {
		t.Fatalf("blocks = %d (failed %d)", res.Blocks, res.Failed)
	}
	if res.Retries == 0 {
		t.Fatal("rate limit never triggered a retry — bucket too generous for the test")
	}
}

func TestCrawlRangeValidation(t *testing.T) {
	srv := eosTestServer(t, 3, rpcserve.EndpointProfile{})
	defer srv.Close()
	client := NewEOSClient(srv.URL)
	if _, err := Crawl(context.Background(), client, CrawlConfig{From: 10, To: 5}, func(int64, []byte) error { return nil }); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestCrawlContextCancellation(t *testing.T) {
	srv := eosTestServer(t, 30, rpcserve.EndpointProfile{Latency: 20 * time.Millisecond})
	defer srv.Close()
	client := NewEOSClient(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := Crawl(ctx, client, CrawlConfig{Workers: 1}, func(int64, []byte) error { return nil })
	if err == nil {
		t.Fatal("cancelled crawl reported success")
	}
}

func TestCrawlTezos(t *testing.T) {
	c := tezos.New(tezos.DefaultConfig(1000))
	for i := 0; i < 5; i++ {
		addr := tezos.NewImplicitAddress(fmt.Sprintf("baker-%d", i))
		if err := c.RegisterBaker(addr, 50_000*1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := c.ProduceBlock(); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(rpcserve.NewTezosServer(c))
	defer srv.Close()

	client := NewTezosClient(srv.URL)
	var endorsements int64
	res, err := Crawl(context.Background(), client, CrawlConfig{Workers: 3}, func(num int64, raw []byte) error {
		blk, err := DecodeTezosBlock(raw)
		if err != nil {
			return err
		}
		for _, op := range blk.Operations {
			if op.Kind == string(tezos.KindEndorsement) {
				atomic.AddInt64(&endorsements, 1)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 12 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
	if endorsements == 0 {
		t.Fatal("no endorsements crawled")
	}
}

func TestCrawlXRPOverWebSocket(t *testing.T) {
	s := xrp.New(xrp.DefaultConfig(1000))
	a1, a2 := xrp.NewAddress("w1"), xrp.NewAddress("w2")
	s.Fund(a1, 10_000*xrp.DropsPerXRP)
	s.Fund(a2, 10_000*xrp.DropsPerXRP)
	for i := 0; i < 8; i++ {
		s.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: a1, Destination: a2, Amount: xrp.XRP(1)})
		s.CloseLedger()
	}
	srv := httptest.NewServer(rpcserve.NewXRPServer(s))
	defer srv.Close()

	client := NewXRPClient("ws" + strings.TrimPrefix(srv.URL, "http"))
	defer client.Close()
	head, err := client.Head(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if head != 8 {
		t.Fatalf("head = %d", head)
	}
	var txs int64
	res, err := Crawl(context.Background(), client, CrawlConfig{Workers: 1}, func(num int64, raw []byte) error {
		led, err := DecodeXRPLedger(raw)
		if err != nil {
			return err
		}
		atomic.AddInt64(&txs, int64(len(led.Transactions)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 8 || txs != 8 {
		t.Fatalf("blocks=%d txs=%d", res.Blocks, txs)
	}
}

func TestProbeAndShortlist(t *testing.T) {
	fast := eosTestServer(t, 2, rpcserve.EndpointProfile{})
	defer fast.Close()
	slow := eosTestServer(t, 2, rpcserve.EndpointProfile{Latency: 30 * time.Millisecond})
	defer slow.Close()
	limited := eosTestServer(t, 2, rpcserve.EndpointProfile{RatePerSec: 1, Burst: 1})
	defer limited.Close()

	ctx := context.Background()
	scores := []EndpointScore{
		ProbeEndpoint(ctx, fast.URL, NewEOSClient(fast.URL), 8),
		ProbeEndpoint(ctx, slow.URL, NewEOSClient(slow.URL), 8),
		ProbeEndpoint(ctx, limited.URL, NewEOSClient(limited.URL), 8),
		ProbeEndpoint(ctx, "http://127.0.0.1:1", NewEOSClient("http://127.0.0.1:1"), 2),
	}
	if scores[3].Reachable {
		t.Fatal("dead endpoint reported reachable")
	}
	if scores[2].SuccessRate >= scores[0].SuccessRate {
		t.Fatalf("rate-limited endpoint not penalized: %f vs %f",
			scores[2].SuccessRate, scores[0].SuccessRate)
	}
	short := Shortlist(scores, 2)
	if len(short) != 2 {
		t.Fatalf("shortlist size %d", len(short))
	}
	if short[0].URL != fast.URL {
		t.Fatalf("best endpoint = %s, want the fast one", short[0].URL)
	}
}

func TestMultiFetcherRotates(t *testing.T) {
	a := eosTestServer(t, 10, rpcserve.EndpointProfile{})
	defer a.Close()
	b := eosTestServer(t, 10, rpcserve.EndpointProfile{})
	defer b.Close()
	m := &MultiFetcher{Fetchers: []BlockFetcher{NewEOSClient(a.URL), NewEOSClient(b.URL)}}
	res, err := Crawl(context.Background(), m, CrawlConfig{Workers: 4}, func(int64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 10 {
		t.Fatalf("blocks = %d", res.Blocks)
	}
}

func TestFetchWithRetryGivesUp(t *testing.T) {
	client := NewEOSClient("http://127.0.0.1:1") // nothing listens
	_, err := Crawl(context.Background(), client, CrawlConfig{
		From: 1, To: 2, Workers: 1, MaxRetries: 1, Backoff: time.Millisecond,
	}, func(int64, []byte) error { return nil })
	if err == nil {
		t.Fatal("crawl against dead endpoint succeeded")
	}
	var rl rateLimitError
	if errors.As(err, &rl) {
		t.Fatal("unexpected rate limit error type")
	}
}

// flakyHandler fails every other request with a 500 to exercise retry.
func TestCrawlSurvivesFlakyServer(t *testing.T) {
	inner := eosTestServer(t, 10, rpcserve.EndpointProfile{})
	defer inner.Close()
	var calls int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt64(&calls, 1)%3 == 0 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		resp, err := http.Post(inner.URL+r.URL.Path, "application/json", r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer flaky.Close()

	client := NewEOSClient(flaky.URL)
	res, err := Crawl(context.Background(), client, CrawlConfig{
		Workers: 2, MaxRetries: 6, Backoff: time.Millisecond,
	}, func(int64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 10 {
		t.Fatalf("blocks = %d (failed %d)", res.Blocks, res.Failed)
	}
	if res.Retries == 0 {
		t.Fatal("flaky server never triggered retries")
	}
}

// TestCrawlSinkErrorPropagates: a failing sink must surface as the crawl
// error rather than being swallowed.
func TestCrawlSinkErrorPropagates(t *testing.T) {
	srv := eosTestServer(t, 5, rpcserve.EndpointProfile{})
	defer srv.Close()
	sinkErr := errors.New("sink exploded")
	_, err := Crawl(context.Background(), NewEOSClient(srv.URL), CrawlConfig{Workers: 2},
		func(int64, []byte) error { return sinkErr })
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

func BenchmarkCrawlThroughput(b *testing.B) {
	srv := eosTestServer(&testing.T{}, 50, rpcserve.EndpointProfile{})
	defer srv.Close()
	client := NewEOSClient(srv.URL)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Crawl(context.Background(), client, CrawlConfig{Workers: 8},
			func(int64, []byte) error { return nil })
		if err != nil || res.Blocks != 50 {
			b.Fatalf("crawl: %+v %v", res, err)
		}
	}
}

// TestXRPClientReconnects: the client must survive a server that drops the
// connection mid-crawl by redialing on the next call.
func TestXRPClientReconnects(t *testing.T) {
	s := xrp.New(xrp.DefaultConfig(1000))
	a1, a2 := xrp.NewAddress("rc1"), xrp.NewAddress("rc2")
	s.Fund(a1, 10_000*xrp.DropsPerXRP)
	s.Fund(a2, 10_000*xrp.DropsPerXRP)
	for i := 0; i < 6; i++ {
		s.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: a1, Destination: a2, Amount: xrp.XRP(1)})
		s.CloseLedger()
	}
	inner := rpcserve.NewXRPServer(s)
	// A wrapper that kills every connection after 2 requests.
	var served int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := wsrpc.Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; i < 2; i++ {
			var req map[string]any
			if err := conn.ReadJSON(&req); err != nil {
				return
			}
			atomic.AddInt64(&served, 1)
			// Proxy through a real handler by re-marshaling: simplest is
			// to answer ledger/server_info from state directly via the
			// inner server's logic — reuse by dialing it is overkill, so
			// answer server_info inline and ledger via the state.
			id := req["id"]
			switch req["command"] {
			case "server_info":
				conn.WriteJSON(map[string]any{"id": id, "status": "success", "type": "response",
					"result": map[string]any{"info": map[string]any{
						"validated_ledger": map[string]any{"seq": s.HeadIndex()},
					}}})
			case "ledger":
				idx := int64(req["ledger_index"].(float64))
				led := s.GetLedger(idx)
				if led == nil {
					conn.WriteJSON(map[string]any{"id": id, "status": "error", "error": "lgrNotFound"})
					continue
				}
				conn.WriteJSON(map[string]any{"id": id, "status": "success", "type": "response",
					"result": map[string]any{"ledger": rpcserve.XRPLedgerToJSON(led, true)}})
			}
		}
		// Connection drops here; the client must redial.
	}))
	defer srv.Close()
	_ = inner

	client := NewXRPClient("ws" + strings.TrimPrefix(srv.URL, "http"))
	defer client.Close()
	res, err := Crawl(context.Background(), client, CrawlConfig{
		Workers: 1, MaxRetries: 6, Backoff: time.Millisecond,
	}, func(num int64, raw []byte) error {
		_, err := DecodeXRPLedger(raw)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 6 {
		t.Fatalf("blocks = %d (failed %d, retries %d)", res.Blocks, res.Failed, res.Retries)
	}
	if res.Retries == 0 {
		t.Fatal("disconnections never triggered retries")
	}
}
