package collect

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memFetcher serves synthetic blocks from memory and records every fetch so
// tests can assert exactly which blocks were requested. Block numbers in
// fail always error, simulating a permanently broken block.
type memFetcher struct {
	blocks  int64
	latency time.Duration
	fail    map[int64]bool

	mu      sync.Mutex
	fetched map[int64]int
	total   int64
}

func newMemFetcher(blocks int64, latency time.Duration) *memFetcher {
	return &memFetcher{blocks: blocks, latency: latency, fetched: make(map[int64]int)}
}

func (f *memFetcher) Head(ctx context.Context) (int64, error) { return f.blocks, nil }

func (f *memFetcher) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	if num < 1 || num > f.blocks {
		return nil, fmt.Errorf("memFetcher: no block %d", num)
	}
	if f.latency > 0 {
		select {
		case <-time.After(f.latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f.mu.Lock()
	f.fetched[num]++
	f.total++
	f.mu.Unlock()
	if f.fail[num] {
		return nil, fmt.Errorf("memFetcher: block %d is broken", num)
	}
	return []byte(fmt.Sprintf(`{"num":%d}`, num)), nil
}

func (f *memFetcher) totalFetches() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

func (f *memFetcher) fetchedNums() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	nums := make([]int64, 0, len(f.fetched))
	for n := range f.fetched {
		nums = append(nums, n)
	}
	return nums
}

// TestStreamBackpressure: a stalled consumer must stop the fetch side after
// at most Buffer buffered blocks plus one in-hand block per worker.
func TestStreamBackpressure(t *testing.T) {
	const workers, buffer, total = 4, 8, 100
	f := newMemFetcher(total, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, h := Stream(ctx, f, CrawlConfig{Workers: workers, Buffer: buffer})
	if cap(blocks) != buffer {
		t.Fatalf("stream buffer = %d, want %d", cap(blocks), buffer)
	}

	// Consume nothing; wait for the fetch count to go quiescent.
	last, stableFor := int64(-1), 0
	for i := 0; i < 200 && stableFor < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := f.totalFetches()
		if cur == last {
			stableFor++
		} else {
			stableFor = 0
		}
		last = cur
	}
	if stableFor < 5 {
		t.Fatal("fetch count never went quiescent against a stalled consumer")
	}
	if last > buffer+workers {
		t.Fatalf("stalled consumer let %d fetches through, want <= %d (buffer %d + workers %d)",
			last, buffer+workers, buffer, workers)
	}
	if last < buffer {
		t.Fatalf("only %d fetches before stall, want at least the buffer (%d)", last, buffer)
	}

	// Unstall: the crawl must finish and deliver everything exactly once.
	seen := make(map[int64]bool)
	for blk := range blocks {
		if seen[blk.Num] {
			t.Fatalf("block %d delivered twice", blk.Num)
		}
		seen[blk.Num] = true
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != total || len(seen) != total {
		t.Fatalf("blocks = %d, delivered %d, want %d", res.Blocks, len(seen), total)
	}
}

// TestStreamCancellationDrains: cancelling mid-stream must close the
// channel, surface ctx's error from Wait, and leak no goroutines.
func TestStreamCancellationDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	f := newMemFetcher(500, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	blocks, h := Stream(ctx, f, CrawlConfig{Workers: 4, Buffer: 4})
	received := 0
	for range blocks {
		received++
		if received == 20 {
			cancel()
		}
	}
	res, err := h.Wait()
	if err == nil {
		t.Fatal("cancelled stream reported success")
	}
	if res.Blocks < 20 {
		t.Fatalf("res.Blocks = %d, want >= 20 delivered before cancel", res.Blocks)
	}

	// All crawl goroutines must unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before stream, %d after drain", before, runtime.NumGoroutine())
}

// TestStreamCheckpointResume: an interrupted crawl's checkpoint must let a
// resumed crawl skip every delivered block and fetch each remaining block
// exactly once.
func TestStreamCheckpointResume(t *testing.T) {
	const total = 30
	f1 := newMemFetcher(total, 0)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	blocks1, h1 := Stream(ctx1, f1, CrawlConfig{Workers: 2, Buffer: 4})
	received := 0
	for range blocks1 {
		received++
		if received == 10 {
			cancel1()
		}
		// Keep draining after cancel: delivered blocks count as done, so
		// the checkpoint is only resume-safe once the stream is drained.
	}
	if _, err := h1.Wait(); err == nil {
		t.Fatal("interrupted crawl reported success")
	}
	cp := h1.Checkpoint()
	if cp.From != 1 || cp.To != total {
		t.Fatalf("checkpoint range [%d, %d], want [1, %d]", cp.From, cp.To, total)
	}
	done := int64(0)
	for n := int64(1); n <= total; n++ {
		if cp.Done(n) {
			done++
		}
	}
	if done != int64(received) {
		t.Fatalf("checkpoint records %d done, but %d blocks were delivered", done, received)
	}
	if cp.Remaining() != total-done {
		t.Fatalf("Remaining() = %d, want %d", cp.Remaining(), total-done)
	}

	// Resume against a fresh fetch log.
	f2 := newMemFetcher(total, 0)
	blocks2, h2 := Stream(context.Background(), f2, CrawlConfig{Workers: 2, Resume: &cp})
	delivered2 := make(map[int64]bool)
	for blk := range blocks2 {
		delivered2[blk.Num] = true
	}
	res2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range f2.fetchedNums() {
		if cp.Done(num) {
			t.Fatalf("resume refetched block %d, which the checkpoint records as done", num)
		}
	}
	if res2.Skipped != done {
		t.Fatalf("resume skipped %d, want %d", res2.Skipped, done)
	}
	if res2.Blocks+res2.Skipped != total {
		t.Fatalf("resume blocks %d + skipped %d != %d", res2.Blocks, res2.Skipped, total)
	}
	for n := int64(1); n <= total; n++ {
		if !cp.Done(n) && !delivered2[n] {
			t.Fatalf("block %d neither checkpointed nor delivered by the resume", n)
		}
	}

	// A checkpoint taken after a completed crawl leaves nothing to do.
	cpDone := h2.Checkpoint()
	if cpDone.Frontier != 1 || cpDone.Remaining() != 0 {
		t.Fatalf("completed checkpoint: frontier %d remaining %d", cpDone.Frontier, cpDone.Remaining())
	}
}

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crawl.ckpt")
	cp := Checkpoint{From: 5, To: 90, Frontier: 42, Extra: [][2]int64{{7, 9}, {19, 19}}}
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != cp.From || got.To != cp.To || got.Frontier != cp.Frontier || len(got.Extra) != 2 {
		t.Fatalf("round trip mangled checkpoint: %+v", got)
	}
	if !got.Done(42) || !got.Done(90) || !got.Done(7) || !got.Done(8) || !got.Done(9) || !got.Done(19) {
		t.Fatal("Done() misses delivered blocks after round trip")
	}
	if got.Done(6) || got.Done(10) || got.Done(41) {
		t.Fatal("Done() claims undelivered blocks after round trip")
	}
	if got.Remaining() != (42-5)-3-1 {
		t.Fatalf("Remaining() = %d", got.Remaining())
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.ckpt")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint: err = %v, want IsNotExist", err)
	}
	for name, content := range map[string]string{
		"inverted-range.ckpt": `{"from":9,"to":3}`,
		"inverted-extra.ckpt": `{"from":1,"to":9,"frontier":8,"extra":[[5,2]]}`,
		"unsorted-extra.ckpt": `{"from":1,"to":99,"frontier":90,"extra":[[5,8],[2,3]]}`,
	} {
		bad := filepath.Join(dir, name)
		os.WriteFile(bad, []byte(content), 0o644)
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestCheckpointStaysCompactPastFailedBlock: a block that exhausts its
// retries pins the frontier, but the delivered blocks beyond it must
// coalesce into O(gaps) ranges — not one entry per block — or checkpoints
// of paper-scale crawls (hundreds of millions of blocks) blow up.
func TestCheckpointStaysCompactPastFailedBlock(t *testing.T) {
	const total = 200
	f := newMemFetcher(total, 0)
	f.fail = map[int64]bool{150: true}
	blocks, h := Stream(context.Background(), f, CrawlConfig{
		Workers: 4, Buffer: 8, MaxRetries: 1, Backoff: time.Microsecond,
	})
	for range blocks {
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("crawl with a broken block reported success")
	}
	cp := h.Checkpoint()
	if cp.Frontier != 151 {
		t.Fatalf("frontier = %d, want 151 (block 150 never delivered)", cp.Frontier)
	}
	if len(cp.Extra) != 1 || cp.Extra[0] != [2]int64{1, 149} {
		t.Fatalf("extra ranges not coalesced: %v", cp.Extra)
	}
	if cp.Remaining() != 1 {
		t.Fatalf("Remaining() = %d, want 1 (just the broken block)", cp.Remaining())
	}

	// Resume with the block fixed: exactly one fetch, nothing else.
	f2 := newMemFetcher(total, 0)
	blocks2, h2 := Stream(context.Background(), f2, CrawlConfig{Workers: 4, Resume: &cp})
	for range blocks2 {
	}
	res2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if nums := f2.fetchedNums(); len(nums) != 1 || nums[0] != 150 {
		t.Fatalf("resume fetched %v, want just block 150", nums)
	}
	if res2.Blocks != 1 || res2.Skipped != total-1 {
		t.Fatalf("resume blocks=%d skipped=%d", res2.Blocks, res2.Skipped)
	}
}

// TestStreamResumePinsRange: a resumed crawl must crawl the checkpoint's
// range even when the endpoint's head has advanced past it.
func TestStreamResumePinsRange(t *testing.T) {
	cp := Checkpoint{From: 1, To: 10, Frontier: 6}
	f := newMemFetcher(50, 0) // head is now 50
	blocks, h := Stream(context.Background(), f, CrawlConfig{Workers: 2, Resume: &cp})
	var max int64
	for blk := range blocks {
		if blk.Num > max {
			max = blk.Num
		}
	}
	res, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if max > 5 {
		t.Fatalf("resume fetched block %d beyond the checkpoint frontier", max)
	}
	if res.Blocks != 5 || res.Skipped != 5 {
		t.Fatalf("resume fetched %d skipped %d, want 5/5", res.Blocks, res.Skipped)
	}
}

// TestStreamTeeSeesEveryDeliveredBlock: the tee must observe exactly the
// delivered set — no gaps (the archive would silently short-count) and
// nothing the resume skip-list suppressed.
func TestStreamTeeSeesEveryDeliveredBlock(t *testing.T) {
	const total = 60
	f := newMemFetcher(total, 0)
	var mu sync.Mutex
	teed := make(map[int64]int)
	blocks, h := Stream(context.Background(), f, CrawlConfig{
		Workers: 4, Buffer: 8,
		Tee: func(num int64, raw []byte) error {
			mu.Lock()
			teed[num]++
			mu.Unlock()
			if want := fmt.Sprintf(`{"num":%d}`, num); string(raw) != want {
				return fmt.Errorf("tee got %s for block %d", raw, num)
			}
			return nil
		},
	})
	delivered := 0
	for range blocks {
		delivered++
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if delivered != total || len(teed) != total {
		t.Fatalf("delivered %d, teed %d distinct, want %d", delivered, len(teed), total)
	}
	for num, n := range teed {
		if n != 1 {
			t.Fatalf("block %d teed %d times in an uninterrupted crawl", num, n)
		}
	}

	// A resumed crawl must not re-tee checkpointed blocks.
	cp := h.Checkpoint()
	cp.Frontier = 31 // pretend only [31, 60] was delivered
	cp.Extra = nil
	f2 := newMemFetcher(total, 0)
	var teed2 []int64
	blocks2, h2 := Stream(context.Background(), f2, CrawlConfig{
		Workers: 2, Resume: &cp,
		Tee: func(num int64, raw []byte) error {
			mu.Lock()
			teed2 = append(teed2, num)
			mu.Unlock()
			return nil
		},
	})
	for range blocks2 {
	}
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, num := range teed2 {
		if num > 30 {
			t.Fatalf("resume teed checkpointed block %d", num)
		}
	}
	if len(teed2) != 30 {
		t.Fatalf("resume teed %d blocks, want the 30 below the frontier", len(teed2))
	}
}

// TestStreamTeeErrorAbortsCrawl: a failing tee (disk full, torn archive)
// must stop the whole crawl with its error, and the failing block must not
// be marked done — a resume has to refetch it so the archive can catch up.
func TestStreamTeeErrorAbortsCrawl(t *testing.T) {
	const total = 200
	f := newMemFetcher(total, 0)
	var calls int64
	blocks, h := Stream(context.Background(), f, CrawlConfig{
		Workers: 4, Buffer: 8,
		Tee: func(num int64, raw []byte) error {
			if atomic.AddInt64(&calls, 1) == 10 {
				return fmt.Errorf("disk full")
			}
			return nil
		},
	})
	for range blocks {
	}
	_, err := h.Wait()
	if err == nil {
		t.Fatal("crawl with a failing tee reported success")
	}
	if !errors.Is(err, ErrTee) {
		t.Fatalf("tee failure not marked ErrTee: %v", err)
	}
	if !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("tee failure cause not surfaced: %v", err)
	}
	if got := atomic.LoadInt64(&calls); got > total/2 {
		t.Fatalf("crawl kept fetching long after the tee failed (%d tee calls)", got)
	}
	cp := h.Checkpoint()
	if cp.Remaining() == 0 {
		t.Fatal("checkpoint claims completion although the tee aborted the crawl")
	}
}

// TestStreamTeeErrorAfterFetchError: a fetch error and a tee error racing
// to report must coexist — the error capture has to accept error values of
// different concrete types without panicking (atomic.Value would not).
func TestStreamTeeErrorAfterFetchError(t *testing.T) {
	const total = 100
	f := newMemFetcher(total, 0)
	f.fail = map[int64]bool{total: true} // newest block fails first
	var calls int64
	blocks, h := Stream(context.Background(), f, CrawlConfig{
		Workers: 2, Buffer: 4, MaxRetries: 1, Backoff: time.Microsecond,
		Tee: func(num int64, raw []byte) error {
			if atomic.AddInt64(&calls, 1) >= 20 {
				return fmt.Errorf("disk full")
			}
			return nil
		},
	})
	for range blocks {
	}
	if _, err := h.Wait(); err == nil {
		t.Fatal("crawl with fetch and tee failures reported success")
	}
}

// TestCrawlAdapterMatchesStream: the callback adapter must report the same
// accounting as the stream it wraps.
func TestCrawlAdapterMatchesStream(t *testing.T) {
	f := newMemFetcher(40, 0)
	var delivered int64
	res, err := Crawl(context.Background(), f, CrawlConfig{Workers: 3}, func(num int64, raw []byte) error {
		atomic.AddInt64(&delivered, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 40 || delivered != 40 {
		t.Fatalf("blocks=%d delivered=%d, want 40/40", res.Blocks, delivered)
	}
}
