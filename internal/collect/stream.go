package collect

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

// Block is one fetched payload flowing through a crawl stream: the raw wire
// bytes, still undecoded, so crawl workers never pay decode or aggregation
// cost. Decoding happens downstream (see core.IngestStream, whose workers
// fold decoded blocks into private mergeable shards — any stream consumer
// may therefore take blocks from this channel concurrently without
// coordinating beyond the channel itself).
//
// Release recycles the payload buffer once the consumer has extracted
// everything it needs. After Release, Raw is nil and the consumer must hold
// no view into the old bytes (decoded structs are safe: the wire codecs
// copy every string they keep). Release is a no-op for blocks whose fetcher
// did not declare raw ownership, so legacy sinks and test fetchers that
// share buffers stay correct.
type Block struct {
	Num int64
	Raw []byte
	// pooled marks Raw as exclusively owned and recyclable (set by Stream
	// when the fetcher implements RawRecycler).
	pooled bool
}

// Release returns the payload buffer to the recycling pool. Safe to call
// multiple times; only the first has effect.
func (b *Block) Release() {
	if b.pooled && b.Raw != nil {
		wire.PutRaw(b.Raw)
	}
	b.Raw = nil
	b.pooled = false
}

// RawRecycler is implemented by BlockFetchers whose FetchBlock results are
// exclusively owned by the caller — each returned slice has no other
// holder, so the stream may recycle it through wire.PutRaw after the
// consumer calls Block.Release. The repo's chain clients and the archive
// reader all qualify; fetchers that replay shared buffers must not.
type RawRecycler interface {
	OwnsRaw() bool
}

// ErrTee marks a crawl failure that came from the CrawlConfig.Tee hook
// rather than fetching. Callers persisting checkpoints must not do so when
// errors.Is(err, ErrTee): blocks delivered earlier in the run may share a
// discarded archive segment with the failed write, so recording them as
// done would let a resume skip blocks the archive never kept.
var ErrTee = errors.New("collect: tee failed")

// Checkpoint records how far a crawl got, durably enough to resume it. The
// crawler walks the range in reverse chronological order, so completion
// grows downward from To: Frontier is the lowest block number such that
// every block in [Frontier, To] has been delivered (Frontier = To+1 means
// none yet). Stride sharding (and blocks that exhaust their retries) lets
// workers complete blocks below the contiguous frontier; those are kept as
// inclusive [lo, hi] ranges in Extra so a resumed crawl refetches nothing,
// and so the checkpoint stays a handful of ranges — not a per-block list —
// even when one stubborn block pins the frontier for a hundred-million-block
// crawl.
type Checkpoint struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
	// Frontier: all of [Frontier, To] is done.
	Frontier int64 `json:"frontier"`
	// Extra lists inclusive [lo, hi] ranges of delivered blocks below the
	// frontier, ascending and disjoint.
	Extra [][2]int64 `json:"extra,omitempty"`
}

// Done reports whether num was already delivered when the checkpoint was
// taken.
func (c Checkpoint) Done(num int64) bool {
	if num >= c.Frontier && num <= c.To {
		return true
	}
	i := sort.Search(len(c.Extra), func(i int) bool { return c.Extra[i][1] >= num })
	return i < len(c.Extra) && c.Extra[i][0] <= num
}

// Remaining counts the blocks a resumed crawl still has to fetch.
func (c Checkpoint) Remaining() int64 {
	if c.To == 0 || c.Frontier <= c.From {
		return 0
	}
	rem := c.Frontier - c.From
	for _, r := range c.Extra {
		rem -= r[1] - r[0] + 1
	}
	return rem
}

// Save writes the checkpoint atomically (temp file + rename) so a crash
// mid-write never corrupts an existing checkpoint.
func (c Checkpoint) Save(path string) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("collect: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint written by Save. A missing file is
// reported via os.IsNotExist so callers can treat it as a fresh crawl.
func LoadCheckpoint(path string) (Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, fmt.Errorf("collect: decoding checkpoint %s: %w", path, err)
	}
	if c.To <= 0 || c.From <= 0 || c.From > c.To {
		return Checkpoint{}, fmt.Errorf("collect: checkpoint %s has invalid range [%d, %d]", path, c.From, c.To)
	}
	if c.Frontier <= 0 || c.Frontier > c.To+1 {
		c.Frontier = c.To + 1
	}
	for i, r := range c.Extra {
		if r[0] > r[1] {
			return Checkpoint{}, fmt.Errorf("collect: checkpoint %s has inverted extra range %v", path, r)
		}
		if i > 0 && c.Extra[i-1][1] >= r[0] {
			return Checkpoint{}, fmt.Errorf("collect: checkpoint %s has unsorted extra ranges", path)
		}
	}
	return c, nil
}

// CrawlHandle tracks a streaming crawl: progress for checkpointing while it
// runs, and the final CrawlResult once the stream closes. All methods are
// safe for concurrent use.
//
// Delivered blocks are tracked as the contiguous frontier plus an interval
// set of completions below it, so memory stays proportional to the number
// of gaps (at most the worker count plus permanently failed blocks), not
// the crawl length.
type CrawlHandle struct {
	mu       sync.Mutex
	from, to int64
	frontier int64
	ivs      [][2]int64 // delivered ranges below frontier-1: ascending, disjoint, non-adjacent

	res      CrawlResult
	err      error
	finished chan struct{}
}

// markDone records a delivered block, merging it into the interval set and
// advancing the contiguous frontier through it.
func (h *CrawlHandle) markDone(num int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if num >= h.frontier {
		return // already covered
	}
	if num == h.frontier-1 {
		h.frontier = num
		// Absorb intervals that just became adjacent to the frontier.
		for n := len(h.ivs); n > 0 && h.ivs[n-1][1] == h.frontier-1; n = len(h.ivs) {
			h.frontier = h.ivs[n-1][0]
			h.ivs = h.ivs[:n-1]
		}
		return
	}
	// First interval whose end reaches num-1: the only candidate num can
	// touch or fall into.
	i := sort.Search(len(h.ivs), func(i int) bool { return h.ivs[i][1] >= num-1 })
	switch {
	case i == len(h.ivs) || h.ivs[i][0] > num+1:
		// Disjoint from every neighbour: insert a fresh point interval.
		h.ivs = append(h.ivs, [2]int64{})
		copy(h.ivs[i+1:], h.ivs[i:])
		h.ivs[i] = [2]int64{num, num}
	case h.ivs[i][0] <= num && num <= h.ivs[i][1]:
		// Duplicate delivery; nothing to do.
	default:
		// Extend the touching interval by one.
		if num < h.ivs[i][0] {
			h.ivs[i][0] = num
		} else {
			h.ivs[i][1] = num
		}
		// The extension may have bridged the gap to the next interval.
		if i+1 < len(h.ivs) && h.ivs[i][1] == h.ivs[i+1][0]-1 {
			h.ivs[i][1] = h.ivs[i+1][1]
			h.ivs = append(h.ivs[:i+1], h.ivs[i+2:]...)
		}
	}
}

// Checkpoint snapshots the crawl's progress. It may be called at any time,
// including concurrently with the crawl; for a checkpoint that is safe to
// resume from, drain the stream (process every received Block) before
// persisting it, because a block counts as done once it is handed to the
// stream, not once the consumer finished with it.
func (h *CrawlHandle) Checkpoint() Checkpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := Checkpoint{From: h.from, To: h.to, Frontier: h.frontier}
	c.Extra = append(c.Extra, h.ivs...)
	return c
}

// Wait blocks until the crawl finishes (the stream channel is closed first)
// and returns its result. A cancelled crawl reports ctx's error alongside
// the partial result.
func (h *CrawlHandle) Wait() (CrawlResult, error) {
	<-h.finished
	return h.res, h.err
}

// Stream starts a crawl whose fetched blocks flow through the returned
// bounded channel (capacity CrawlConfig.Buffer). Crawl workers block once
// the buffer fills, so a slow consumer exerts real backpressure on the
// fetch side instead of stalling inside a callback. The channel is closed
// when the crawl finishes, fails, or ctx is cancelled; after it closes,
// CrawlHandle.Wait returns the CrawlResult. CrawlConfig.Resume skips
// blocks a previous crawl already delivered (counted in CrawlResult.Skipped).
func Stream(ctx context.Context, f BlockFetcher, cfg CrawlConfig) (<-chan Block, *CrawlHandle) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	out := make(chan Block, cfg.Buffer)
	h := &CrawlHandle{finished: make(chan struct{})}
	go h.run(ctx, f, cfg, out)
	return out, h
}

func (h *CrawlHandle) run(ctx context.Context, f BlockFetcher, cfg CrawlConfig, out chan<- Block) {
	start := time.Now()
	finish := func(err error) {
		h.res.Elapsed = time.Since(start)
		h.err = err
		close(out)
		close(h.finished)
	}

	// Resolve the range. A resumed crawl is pinned to the checkpoint's
	// range: the frontier is only meaningful relative to the To it was
	// recorded against.
	if cfg.Resume != nil {
		cfg.From, cfg.To = cfg.Resume.From, cfg.Resume.To
	}
	if cfg.To == 0 {
		head, err := resolveHead(ctx, f, cfg)
		if err != nil {
			finish(fmt.Errorf("collect: resolving head: %w", err))
			return
		}
		cfg.To = head
	}
	if cfg.From <= 0 {
		cfg.From = 1
	}
	if cfg.From > cfg.To {
		finish(fmt.Errorf("collect: empty range [%d, %d]", cfg.From, cfg.To))
		return
	}

	h.mu.Lock()
	h.from, h.to = cfg.From, cfg.To
	h.frontier = cfg.To + 1
	if cfg.Resume != nil {
		if fr := cfg.Resume.Frontier; fr >= cfg.From && fr <= cfg.To+1 {
			h.frontier = fr
		}
		// Seed the interval set from the checkpoint's extra ranges
		// (ascending and disjoint per the Checkpoint contract), clipped to
		// the live range, then fold ranges adjacent to the frontier in.
		for _, r := range cfg.Resume.Extra {
			lo, hi := r[0], r[1]
			if lo < cfg.From {
				lo = cfg.From
			}
			if hi >= h.frontier {
				hi = h.frontier - 1
			}
			if lo <= hi {
				h.ivs = append(h.ivs, [2]int64{lo, hi})
			}
		}
		for n := len(h.ivs); n > 0 && h.ivs[n-1][1] == h.frontier-1; n = len(h.ivs) {
			h.frontier = h.ivs[n-1][0]
			h.ivs = h.ivs[:n-1]
		}
	}
	// Snapshot the sanitized resume state; Done over it is the skip
	// predicate for the workers (the snapshot never mutates, so no lock).
	resumed := Checkpoint{From: cfg.From, To: cfg.To, Frontier: h.frontier}
	resumed.Extra = append(resumed.Extra, h.ivs...)
	h.mu.Unlock()

	sizer := stats.NewGzipSizer()
	defer sizer.Close() // recycle the pooled compressor
	// Payload buffers recycle only when the fetcher guarantees exclusive
	// ownership of what FetchBlock returns.
	var recycle bool
	if rr, ok := f.(RawRecycler); ok {
		recycle = rr.OwnsRaw()
	}
	var wg sync.WaitGroup
	// firstErr must not be an atomic.Value: the error concrete types vary
	// (wrapped fetch errors vs. ErrTee-joined tee errors), and
	// atomic.Value.CompareAndSwap panics on inconsistently typed values.
	var firstErr onceError
	// A failed tee (disk full, torn archive directory) is not a per-block
	// condition like a fetch error: every later block would fail the same
	// way, so the whole crawl stops.
	var teeFailed atomic.Bool

	// Reverse chronological order, sharded by stride: worker k owns
	// To-k, To-k-Workers, … down to From.
	stride := int64(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(offset int64) {
			defer wg.Done()
			for num := cfg.To - offset; num >= cfg.From; num -= stride {
				if ctx.Err() != nil || teeFailed.Load() {
					return
				}
				if resumed.Done(num) {
					atomic.AddInt64(&h.res.Skipped, 1)
					continue
				}
				raw, err := fetchWithRetry(ctx, f, num, cfg, &h.res.Retries)
				if err != nil {
					atomic.AddInt64(&h.res.Failed, 1)
					firstErr.set(err)
					continue
				}
				if cfg.Tee != nil {
					if err := cfg.Tee(num, raw); err != nil {
						firstErr.set(fmt.Errorf("%w: block %d: %w", ErrTee, num, err))
						teeFailed.Store(true)
						return
					}
				}
				// The sizer must see the payload before delivery: once the
				// consumer has the Block it may Release the buffer back to
				// the pool at any moment. A cancellation between here and
				// the send can therefore leave GzipBytes counting a block
				// Blocks/RawBytes do not — progress-line accounting only;
				// the deterministic figures never read GzipBytes.
				sizer.Write(raw)
				select {
				case out <- Block{Num: num, Raw: raw, pooled: recycle}:
					atomic.AddInt64(&h.res.Blocks, 1)
					atomic.AddInt64(&h.res.RawBytes, int64(len(raw)))
					h.markDone(num)
				case <-ctx.Done():
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	h.res.GzipBytes = sizer.CompressedBytes()
	err := firstErr.get()
	if err == nil {
		err = ctx.Err()
	}
	finish(err)
}

// onceError keeps the first error set, under a mutex so error values of
// any concrete type can race to report.
type onceError struct {
	mu  sync.Mutex
	err error
}

func (o *onceError) set(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

func (o *onceError) get() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}
