package collect

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"time"
)

// EndpointScore is the probe verdict for one advertised endpoint.
type EndpointScore struct {
	URL string
	// Latency is the median observed round-trip for a head request.
	Latency time.Duration
	// SuccessRate is the fraction of probe requests answered 200 within
	// the burst (rate-limited endpoints drop this sharply).
	SuccessRate float64
	// Reachable is false when the endpoint never answered.
	Reachable bool
}

// Throughput is a comparable goodness metric: successful requests per
// second of latency — generous rate limits and stable latency score high.
func (s EndpointScore) Throughput() float64 {
	if !s.Reachable || s.Latency <= 0 {
		return 0
	}
	return s.SuccessRate / s.Latency.Seconds()
}

// HeadProber is the minimal interface probes need (satisfied by the chain
// clients).
type HeadProber interface {
	Head(ctx context.Context) (int64, error)
}

// ProbeEndpoint issues burst sequential head requests and measures latency
// and success rate.
func ProbeEndpoint(ctx context.Context, url string, p HeadProber, burst int) EndpointScore {
	if burst <= 0 {
		burst = 10
	}
	score := EndpointScore{URL: url}
	var latencies []time.Duration
	succeeded := 0
	for i := 0; i < burst; i++ {
		start := time.Now()
		_, err := p.Head(ctx)
		if err == nil {
			succeeded++
			latencies = append(latencies, time.Since(start))
		}
		if ctx.Err() != nil {
			break
		}
	}
	if succeeded == 0 {
		return score
	}
	score.Reachable = true
	score.SuccessRate = float64(succeeded) / float64(burst)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	score.Latency = latencies[len(latencies)/2]
	return score
}

// Shortlist returns the k highest-throughput reachable endpoints, mirroring
// the paper's "out of 32 officially advertized endpoints, we shortlist 6 of
// them who have a generous rate limit with stable latency and throughput".
func Shortlist(scores []EndpointScore, k int) []EndpointScore {
	reachable := make([]EndpointScore, 0, len(scores))
	for _, s := range scores {
		if s.Reachable {
			reachable = append(reachable, s)
		}
	}
	sort.Slice(reachable, func(i, j int) bool {
		ti, tj := reachable[i].Throughput(), reachable[j].Throughput()
		if ti != tj {
			return ti > tj
		}
		return reachable[i].URL < reachable[j].URL
	})
	if k > len(reachable) {
		k = len(reachable)
	}
	return reachable[:k]
}

// MultiFetcher fans fetches out over several short-listed endpoints
// round-robin, the way the paper spread its EOS crawl over 6 endpoints.
type MultiFetcher struct {
	Fetchers []BlockFetcher
	next     int64
}

// OwnsRaw reports whether every underlying fetcher guarantees exclusive
// ownership of its FetchBlock results; the stream recycles payload buffers
// only when all of them do.
func (m *MultiFetcher) OwnsRaw() bool {
	for _, f := range m.Fetchers {
		rr, ok := f.(RawRecycler)
		if !ok || !rr.OwnsRaw() {
			return false
		}
	}
	return len(m.Fetchers) > 0
}

// Head asks each endpoint in turn until one answers (heads agree across
// honest endpoints; some may be momentarily rate limited).
func (m *MultiFetcher) Head(ctx context.Context) (int64, error) {
	var lastErr error
	for _, f := range m.Fetchers {
		head, err := f.Head(ctx)
		if err == nil {
			return head, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

// FetchBlock rotates across endpoints per call and fails over to the next
// endpoint on error: a block that lands on a momentarily rate-limited
// endpoint is answered by a healthy one immediately instead of sleeping
// out the throttle's Retry-After. Only when every endpoint refuses does
// the error reach the crawler's backoff loop.
func (m *MultiFetcher) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	if len(m.Fetchers) == 0 {
		return nil, errors.New("collect: MultiFetcher has no endpoints")
	}
	turn := atomic.AddInt64(&m.next, 1)
	var lastErr error
	for k := 0; k < len(m.Fetchers); k++ {
		i := int((num + turn + int64(k)) % int64(len(m.Fetchers)))
		if i < 0 {
			i += len(m.Fetchers)
		}
		raw, err := m.Fetchers[i].FetchBlock(ctx, num)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}
