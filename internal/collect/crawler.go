package collect

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
)

// BlockFetcher abstracts one chain endpoint for the crawler.
type BlockFetcher interface {
	// Head returns the newest block identifier.
	Head(ctx context.Context) (int64, error)
	// FetchBlock returns one block's raw JSON by number.
	FetchBlock(ctx context.Context, num int64) ([]byte, error)
}

// CrawlConfig parameterizes a crawl.
type CrawlConfig struct {
	// From and To bound the inclusive block range. When To is zero the
	// crawler starts at the endpoint's head — the paper began "from the
	// most recent block" and walked backwards.
	From, To int64
	// Workers is the number of concurrent fetchers.
	Workers int
	// MaxRetries bounds per-block retry attempts.
	MaxRetries int
	// Backoff is the base retry delay (doubled per attempt).
	Backoff time.Duration
	// Pool, when set, bounds this crawl's in-flight fetches together with
	// every other crawl sharing the pool. Workers still sets the shard
	// count; the pool gates the actual fetch attempts.
	Pool *Pool
	// Buffer is the stream channel capacity (default 64): how many fetched
	// blocks may sit between the crawl workers and the consumer before the
	// workers block. This is the backpressure bound — a stalled consumer
	// stops the fetch side after at most Buffer buffered blocks.
	Buffer int
	// Ingest is how many consumer goroutines the Crawl adapter drains the
	// stream with (default: Workers). Stream ignores it — callers of
	// Stream bring their own consumers.
	Ingest int
	// Resume, when set, pins the crawl to the checkpoint's range and skips
	// every block the checkpoint records as delivered.
	Resume *Checkpoint
	// Tee, when set, receives every fetched block immediately before it is
	// handed to the stream — the hook archive sinks attach to. It is called
	// concurrently from crawl workers, so implementations must be safe for
	// concurrent use. A Tee error aborts the whole crawl (surfaced wrapped
	// in ErrTee), and the failing block is neither delivered nor marked
	// done, so a resume refetches it.
	// Because the tee lands before delivery, a crawl cancelled between the
	// two may tee a block it never delivers; a resume then fetches and tees
	// that block again, so Tee consumers must tolerate duplicates (the
	// archive replayer dedupes by block number).
	Tee func(num int64, raw []byte) error
}

// CrawlResult summarizes a finished crawl.
type CrawlResult struct {
	Blocks    int64
	Failed    int64
	RawBytes  int64
	GzipBytes int64
	Elapsed   time.Duration
	Retries   int64
	// Skipped counts blocks a resume checkpoint let the crawl avoid
	// refetching.
	Skipped int64
}

// Sink receives each fetched block. Implementations must be safe for
// concurrent use; the crawler delivers blocks from many workers.
type Sink func(num int64, raw []byte) error

// Crawl walks the range in reverse chronological order, retrying transient
// failures with exponential backoff and honouring rate limits, and delivers
// every fetched block to sink. It is a thin adapter over Stream kept for
// callers that want the old callback shape: fetched blocks flow through the
// bounded stream and a pool of cfg.Ingest consumer goroutines (default:
// cfg.Workers) invokes sink, so sink stalls exert backpressure on the fetch
// side instead of blocking crawl workers directly. With one worker delivery
// is exactly newest-first.
func Crawl(ctx context.Context, f BlockFetcher, cfg CrawlConfig, sink Sink) (CrawlResult, error) {
	consumers := cfg.Ingest
	if consumers <= 0 {
		consumers = cfg.Workers
	}
	if consumers <= 0 {
		consumers = 4
	}

	blocks, handle := Stream(ctx, f, cfg)
	var wg sync.WaitGroup
	var sinkErr atomic.Value
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for blk := range blocks {
				if err := sink(blk.Num, blk.Raw); err != nil {
					sinkErr.CompareAndSwap(nil, err)
				}
			}
		}()
	}
	wg.Wait()
	res, err := handle.Wait()
	if serr, ok := sinkErr.Load().(error); ok && serr != nil {
		return res, serr
	}
	return res, err
}

// retryPolicy maps a CrawlConfig onto the shared retry policy: MaxRetries
// extra attempts after the first, doubling backoff with full jitter, and a
// keep-trying classifier — a crawl retries every fetch error (endpoints
// misbehave in ways no static list predicts; Do itself stops when the
// caller's context ends). Rate-limit errors carry a RetryAfter hint the
// policy honours over its own schedule.
func (cfg CrawlConfig) retryPolicy() retry.Policy {
	attempts := cfg.MaxRetries + 1
	if attempts < 1 {
		attempts = 1
	}
	return retry.Policy{
		Attempts:  attempts,
		Base:      cfg.Backoff,
		Retryable: func(error) bool { return true },
	}
}

// resolveHead retries the head request with backoff: probe bursts may have
// momentarily drained an endpoint's rate-limit bucket.
func resolveHead(ctx context.Context, f BlockFetcher, cfg CrawlConfig) (int64, error) {
	var head int64
	err := cfg.retryPolicy().Do(ctx, "", func(ctx context.Context) error {
		h, err := f.Head(ctx)
		if err == nil {
			head = h
		}
		return err
	})
	var ex *retry.ExhaustedError
	if errors.As(err, &ex) {
		err = ex.Err
	}
	return head, err
}

func fetchWithRetry(ctx context.Context, f BlockFetcher, num int64, cfg CrawlConfig, retries *int64) ([]byte, error) {
	var raw []byte
	p := cfg.retryPolicy()
	p.OnRetry = func(int, error, time.Duration) { atomic.AddInt64(retries, 1) }
	err := p.Do(ctx, "", func(ctx context.Context) error {
		b, err := fetchOnce(ctx, f, num, cfg.Pool)
		if err == nil {
			raw = b
		}
		return err
	})
	if err != nil {
		var ex *retry.ExhaustedError
		if errors.As(err, &ex) {
			return nil, fmt.Errorf("collect: block %d failed after %d retries: %w", num, cfg.MaxRetries, ex.Err)
		}
		return nil, err
	}
	return raw, nil
}

// fetchOnce performs a single fetch attempt, holding a shared pool slot
// (when configured) only for the duration of the request so backoff sleeps
// between attempts never block other crawls.
func fetchOnce(ctx context.Context, f BlockFetcher, num int64, pool *Pool) ([]byte, error) {
	if pool != nil {
		if err := pool.acquire(ctx); err != nil {
			return nil, err
		}
		defer pool.release()
	}
	return f.FetchBlock(ctx, num)
}
