package collect

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// BlockFetcher abstracts one chain endpoint for the crawler.
type BlockFetcher interface {
	// Head returns the newest block identifier.
	Head(ctx context.Context) (int64, error)
	// FetchBlock returns one block's raw JSON by number.
	FetchBlock(ctx context.Context, num int64) ([]byte, error)
}

// CrawlConfig parameterizes a crawl.
type CrawlConfig struct {
	// From and To bound the inclusive block range. When To is zero the
	// crawler starts at the endpoint's head — the paper began "from the
	// most recent block" and walked backwards.
	From, To int64
	// Workers is the number of concurrent fetchers.
	Workers int
	// MaxRetries bounds per-block retry attempts.
	MaxRetries int
	// Backoff is the base retry delay (doubled per attempt).
	Backoff time.Duration
	// Pool, when set, bounds this crawl's in-flight fetches together with
	// every other crawl sharing the pool. Workers still sets the shard
	// count; the pool gates the actual fetch attempts.
	Pool *Pool
}

// CrawlResult summarizes a finished crawl.
type CrawlResult struct {
	Blocks    int64
	Failed    int64
	RawBytes  int64
	GzipBytes int64
	Elapsed   time.Duration
	Retries   int64
}

// Sink receives each fetched block. Implementations must be safe for
// concurrent use; the crawler delivers blocks from many workers.
type Sink func(num int64, raw []byte) error

// Crawl walks the range in reverse chronological order with a worker pool,
// retrying transient failures with exponential backoff and honouring rate
// limits. The range is sharded by stride: worker k fetches To-k,
// To-k-Workers, … so the crawl stays approximately newest-first overall
// (and exactly newest-first with one worker). Every fetched payload is
// also fed through a gzip sizer so the dataset's compressed footprint is
// measured exactly as in Figure 2.
func Crawl(ctx context.Context, f BlockFetcher, cfg CrawlConfig, sink Sink) (CrawlResult, error) {
	start := time.Now()
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 10 * time.Millisecond
	}
	if cfg.To == 0 {
		head, err := resolveHead(ctx, f, cfg)
		if err != nil {
			return CrawlResult{}, fmt.Errorf("collect: resolving head: %w", err)
		}
		cfg.To = head
	}
	if cfg.From <= 0 {
		cfg.From = 1
	}
	if cfg.From > cfg.To {
		return CrawlResult{}, fmt.Errorf("collect: empty range [%d, %d]", cfg.From, cfg.To)
	}

	sizer := stats.NewGzipSizer()
	var res CrawlResult
	var wg sync.WaitGroup
	var firstErr atomic.Value

	// Reverse chronological order, sharded by stride: worker k owns
	// To-k, To-k-Workers, … down to From.
	stride := int64(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(offset int64) {
			defer wg.Done()
			for num := cfg.To - offset; num >= cfg.From; num -= stride {
				if ctx.Err() != nil {
					return
				}
				raw, err := fetchWithRetry(ctx, f, num, cfg, &res.Retries)
				if err != nil {
					atomic.AddInt64(&res.Failed, 1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				atomic.AddInt64(&res.Blocks, 1)
				atomic.AddInt64(&res.RawBytes, int64(len(raw)))
				sizer.Write(raw)
				if err := sink(num, raw); err != nil {
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	res.GzipBytes = sizer.CompressedBytes()
	res.Elapsed = time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return res, err
	}
	if ctx.Err() != nil {
		return res, ctx.Err()
	}
	return res, nil
}

// resolveHead retries the head request with backoff: probe bursts may have
// momentarily drained an endpoint's rate-limit bucket.
func resolveHead(ctx context.Context, f BlockFetcher, cfg CrawlConfig) (int64, error) {
	delay := cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			delay *= 2
		}
		head, err := f.Head(ctx)
		if err == nil {
			return head, nil
		}
		lastErr = err
	}
	return 0, lastErr
}

func fetchWithRetry(ctx context.Context, f BlockFetcher, num int64, cfg CrawlConfig, retries *int64) ([]byte, error) {
	delay := cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			atomic.AddInt64(retries, 1)
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			delay *= 2
		}
		raw, err := fetchOnce(ctx, f, num, cfg.Pool)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		var rl rateLimitError
		if errors.As(err, &rl) && rl.retryAfter > delay {
			delay = rl.retryAfter
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("collect: block %d failed after %d retries: %w", num, cfg.MaxRetries, lastErr)
}

// fetchOnce performs a single fetch attempt, holding a shared pool slot
// (when configured) only for the duration of the request so backoff sleeps
// between attempts never block other crawls.
func fetchOnce(ctx context.Context, f BlockFetcher, num int64, pool *Pool) ([]byte, error) {
	if pool != nil {
		if err := pool.acquire(ctx); err != nil {
			return nil, err
		}
		defer pool.release()
	}
	return f.FetchBlock(ctx, num)
}
