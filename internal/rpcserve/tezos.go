package rpcserve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/tezos"
)

// TezosServer serves a Tezos chain over the octez-style REST RPC:
// GET /chains/main/blocks/head and GET /chains/main/blocks/{level}.
// The paper ran its own full node for Tezos because no public endpoint list
// exists; the simulator plays that node.
type TezosServer struct {
	Chain *tezos.Chain
	mux   *http.ServeMux
}

// NewTezosServer builds the handler for a chain. Beyond block fetching it
// exposes the octez voting endpoints the paper's §4.2 analysis used:
// current_period_kind, current_proposal and ballots.
func NewTezosServer(c *tezos.Chain) *TezosServer {
	s := &TezosServer{Chain: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /chains/main/blocks/head", s.head)
	s.mux.HandleFunc("GET /chains/main/blocks/{level}", s.block)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/current_period_kind", s.periodKind)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/current_proposal", s.currentProposal)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/ballots", s.ballots)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/periods", s.periods)
	return s
}

func (s *TezosServer) periodKind(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, string(s.Chain.Governance().Period()))
}

func (s *TezosServer) currentProposal(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Chain.Governance().CurrentProposal())
}

func (s *TezosServer) ballots(w http.ResponseWriter, r *http.Request) {
	yay, nay, pass := s.Chain.Governance().Tallies()
	writeJSON(w, map[string]int64{"yay": yay, "nay": nay, "pass": pass})
}

// periods returns the completed period records (a simulator convenience the
// paper assembled from historical snapshots).
func (s *TezosServer) periods(w http.ResponseWriter, r *http.Request) {
	recs := s.Chain.Governance().Periods()
	out := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		out = append(out, map[string]any{
			"kind":          string(rec.Kind),
			"start_level":   rec.StartLevel,
			"end_level":     rec.EndLevel,
			"proposal":      rec.Proposal,
			"yay":           rec.Yay,
			"nay":           rec.Nay,
			"pass":          rec.Pass,
			"participation": rec.Participation,
			"outcome":       rec.Outcome,
		})
	}
	writeJSON(w, out)
}

// ServeHTTP implements http.Handler.
func (s *TezosServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TezosBlockJSON is the wire shape of one block: a header plus operations.
type TezosBlockJSON struct {
	Level       int64                `json:"level"`
	Hash        string               `json:"hash"`
	Predecessor string               `json:"predecessor"`
	Timestamp   string               `json:"timestamp"`
	Baker       string               `json:"baker"`
	Operations  []TezosOperationJSON `json:"operations"`
}

// TezosOperationJSON is one operation.
type TezosOperationJSON struct {
	Kind        string `json:"kind"`
	Source      string `json:"source,omitempty"`
	Destination string `json:"destination,omitempty"`
	Amount      int64  `json:"amount,omitempty"`
	Fee         int64  `json:"fee,omitempty"`
	Level       int64  `json:"level,omitempty"`
	SlotCount   int    `json:"slot_count,omitempty"`
	Proposal    string `json:"proposal,omitempty"`
	Ballot      string `json:"ballot,omitempty"`
	Rolls       int64  `json:"rolls,omitempty"`
	Delegate    string `json:"delegate,omitempty"`
}

// TezosBlockToJSON converts a simulator block to its wire shape.
func TezosBlockToJSON(b *tezos.Block) TezosBlockJSON {
	out := TezosBlockJSON{
		Level:       b.Level,
		Hash:        b.Hash.String(),
		Predecessor: b.Predecessor.String(),
		Timestamp:   b.Timestamp.UTC().Format(time.RFC3339),
		Baker:       string(b.Baker),
	}
	for _, op := range b.Operations {
		out.Operations = append(out.Operations, TezosOperationJSON{
			Kind:        string(op.Kind),
			Source:      string(op.Source),
			Destination: string(op.Destination),
			Amount:      op.Amount,
			Fee:         op.Fee,
			Level:       op.Level,
			SlotCount:   len(op.Slots),
			Proposal:    op.Proposal,
			Ballot:      string(op.Ballot),
			Rolls:       op.Rolls,
			Delegate:    string(op.Delegate),
		})
	}
	return out
}

func (s *TezosServer) head(w http.ResponseWriter, r *http.Request) {
	level := s.Chain.HeadLevel()
	blk := s.Chain.GetBlock(level)
	if blk == nil {
		httpError(w, http.StatusNotFound, "chain is empty")
		return
	}
	writeJSON(w, TezosBlockToJSON(blk))
}

func (s *TezosServer) block(w http.ResponseWriter, r *http.Request) {
	level, err := strconv.ParseInt(r.PathValue("level"), 10, 64)
	if err != nil || level < 1 {
		httpError(w, http.StatusBadRequest, "level must be a positive integer")
		return
	}
	blk := s.Chain.GetBlock(level)
	if blk == nil {
		httpError(w, http.StatusNotFound, "block not found")
		return
	}
	writeJSON(w, TezosBlockToJSON(blk))
}
