package rpcserve

import (
	"net/http"
	"strconv"

	"repro/internal/tezos"
	"repro/internal/wire"
)

// TezosServer serves a Tezos chain over the octez-style REST RPC:
// GET /chains/main/blocks/head and GET /chains/main/blocks/{level}.
// The paper ran its own full node for Tezos because no public endpoint list
// exists; the simulator plays that node.
type TezosServer struct {
	Chain *tezos.Chain
	mux   *http.ServeMux
}

// NewTezosServer builds the handler for a chain. Beyond block fetching it
// exposes the octez voting endpoints the paper's §4.2 analysis used:
// current_period_kind, current_proposal and ballots.
func NewTezosServer(c *tezos.Chain) *TezosServer {
	s := &TezosServer{Chain: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /chains/main/blocks/head", s.head)
	s.mux.HandleFunc("GET /chains/main/blocks/{level}", s.block)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/current_period_kind", s.periodKind)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/current_proposal", s.currentProposal)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/ballots", s.ballots)
	s.mux.HandleFunc("GET /chains/main/blocks/head/votes/periods", s.periods)
	return s
}

func (s *TezosServer) periodKind(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, string(s.Chain.Governance().Period()))
}

func (s *TezosServer) currentProposal(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Chain.Governance().CurrentProposal())
}

func (s *TezosServer) ballots(w http.ResponseWriter, r *http.Request) {
	yay, nay, pass := s.Chain.Governance().Tallies()
	writeJSON(w, map[string]int64{"yay": yay, "nay": nay, "pass": pass})
}

// periods returns the completed period records (a simulator convenience the
// paper assembled from historical snapshots).
func (s *TezosServer) periods(w http.ResponseWriter, r *http.Request) {
	recs := s.Chain.Governance().Periods()
	out := make([]map[string]any, 0, len(recs))
	for _, rec := range recs {
		out = append(out, map[string]any{
			"kind":          string(rec.Kind),
			"start_level":   rec.StartLevel,
			"end_level":     rec.EndLevel,
			"proposal":      rec.Proposal,
			"yay":           rec.Yay,
			"nay":           rec.Nay,
			"pass":          rec.Pass,
			"participation": rec.Participation,
			"outcome":       rec.Outcome,
		})
	}
	writeJSON(w, out)
}

// ServeHTTP implements http.Handler.
func (s *TezosServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TezosBlockJSON is the wire shape of one block: a header plus operations.
// The shape and its pooled codec live in internal/wire.
type TezosBlockJSON = wire.TezosBlockJSON

// TezosOperationJSON is one operation.
type TezosOperationJSON = wire.TezosOperationJSON

// TezosBlockToJSON converts a simulator block to its wire shape.
func TezosBlockToJSON(b *tezos.Block) TezosBlockJSON {
	var out TezosBlockJSON
	wire.TezosWireBlock(b, &out)
	return out
}

func (s *TezosServer) head(w http.ResponseWriter, r *http.Request) {
	s.writeBlock(w, s.Chain.HeadLevel(), "chain is empty")
}

func (s *TezosServer) block(w http.ResponseWriter, r *http.Request) {
	level, err := strconv.ParseInt(r.PathValue("level"), 10, 64)
	if err != nil || level < 1 {
		httpError(w, http.StatusBadRequest, "level must be a positive integer")
		return
	}
	s.writeBlock(w, level, "block not found")
}

// writeBlock renders one block through the pooled wire codec — the block
// fetch hot path, free of reflection and per-request garbage.
func (s *TezosServer) writeBlock(w http.ResponseWriter, level int64, missing string) {
	blk := s.Chain.GetBlock(level)
	if blk == nil {
		httpError(w, http.StatusNotFound, missing)
		return
	}
	jb := wire.GetTezosBlock()
	wire.TezosWireBlock(blk, jb)
	c := wire.GetCodec()
	buf := wire.GetBuffer()
	buf.B = c.AppendTezosBlock(buf.B, jb)
	writeRaw(w, buf)
	wire.PutBuffer(buf)
	wire.PutCodec(c)
	wire.PutTezosBlock(jb)
}
