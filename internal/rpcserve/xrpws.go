package rpcserve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/wire"
	"repro/internal/wsrpc"
	"repro/internal/xrp"
)

// XRPServer serves an XRP ledger over a rippled-style WebSocket API. The
// paper collected XRP data through the community full-history WebSocket
// cluster using the "ledger" command; this server speaks the same protocol
// over the repo's own RFC 6455 implementation.
type XRPServer struct {
	State *xrp.State
}

// NewXRPServer builds the handler.
func NewXRPServer(s *xrp.State) *XRPServer { return &XRPServer{State: s} }

// xrpRequest is one WebSocket API command.
type xrpRequest struct {
	ID           any    `json:"id"`
	Command      string `json:"command"`
	LedgerIndex  any    `json:"ledger_index,omitempty"`
	Transactions bool   `json:"transactions,omitempty"`
	Expand       bool   `json:"expand,omitempty"`
	// Account is used by account_info and account_lines.
	Account string `json:"account,omitempty"`
	// TakerGets/TakerPays identify a book for book_offers, as
	// "CUR" or "CUR+ISSUER" strings.
	TakerGets string `json:"taker_gets,omitempty"`
	TakerPays string `json:"taker_pays,omitempty"`
	Limit     int    `json:"limit,omitempty"`
}

// xrpResponse is the envelope rippled wraps results in.
type xrpResponse struct {
	ID     any    `json:"id"`
	Status string `json:"status"`
	Type   string `json:"type"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// XRPLedgerJSON is the wire shape of one closed ledger. The shapes and
// their pooled codecs live in internal/wire.
type XRPLedgerJSON = wire.XRPLedgerJSON

// XRPTxJSON is one transaction with its metadata result.
type XRPTxJSON = wire.XRPTxJSON

// XRPAmountJSON carries either drops (native) or an IOU triple.
type XRPAmountJSON = wire.XRPAmountJSON

func amountJSON(a xrp.Amount) *XRPAmountJSON {
	if a.Value == 0 && a.Currency == "" {
		return nil
	}
	return &XRPAmountJSON{Currency: a.Currency, Issuer: string(a.Issuer), Value: a.Value}
}

// XRPLedgerToJSON converts a ledger (with transactions when expand is set).
func XRPLedgerToJSON(l *xrp.Ledger, expand bool) XRPLedgerJSON {
	var out XRPLedgerJSON
	c := wire.GetCodec()
	c.XRPWireLedger(l, expand, &out)
	wire.PutCodec(c)
	return out
}

// ServeHTTP upgrades to WebSocket and answers commands until the peer
// disconnects.
func (s *XRPServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	conn, err := wsrpc.Upgrade(w, r)
	if err != nil {
		return
	}
	defer conn.Close()
	for {
		var req xrpRequest
		if err := conn.ReadJSON(&req); err != nil {
			return
		}
		// The ledger command is the crawl hot path: render it through the
		// pooled wire codec instead of reflect-marshalling the envelope.
		if req.Command == "ledger" {
			handled, err := s.writeLedger(conn, req)
			if err != nil {
				return
			}
			if handled {
				continue
			}
		}
		resp := s.handle(req)
		if err := conn.WriteJSON(resp); err != nil {
			return
		}
	}
}

// writeLedger answers one ledger command allocation-free: arena ledger
// struct, pooled codec, pooled buffer, single frame write. It reports
// handled=false (and no error) when the request needs the reflect path —
// error envelopes or an id shape the fast encoder does not render.
func (s *XRPServer) writeLedger(conn *wsrpc.Conn, req xrpRequest) (handled bool, err error) {
	index, ok := s.resolveLedgerIndex(req.LedgerIndex)
	if !ok {
		return false, nil
	}
	led := s.State.GetLedger(index)
	if led == nil {
		return false, nil
	}
	lj := wire.GetXRPLedger()
	c := wire.GetCodec()
	buf := wire.GetBuffer()
	c.XRPWireLedger(led, req.Transactions && req.Expand, lj)
	out, ok := c.AppendXRPLedgerResponse(buf.B, req.ID, lj, led.Index)
	buf.B = out
	if ok {
		handled = true
		err = conn.WriteMessage(wsrpc.OpText, buf.B)
	}
	wire.PutBuffer(buf)
	wire.PutCodec(c)
	wire.PutXRPLedger(lj)
	return handled, err
}

func (s *XRPServer) handle(req xrpRequest) xrpResponse {
	resp := xrpResponse{ID: req.ID, Type: "response", Status: "success"}
	switch req.Command {
	case "ledger":
		index, ok := s.resolveLedgerIndex(req.LedgerIndex)
		if !ok {
			return s.fail(req, "invalidParams")
		}
		led := s.State.GetLedger(index)
		if led == nil {
			return s.fail(req, "lgrNotFound")
		}
		resp.Result = map[string]any{
			"ledger":       XRPLedgerToJSON(led, req.Transactions && req.Expand),
			"ledger_index": led.Index,
			"validated":    true,
		}
	case "server_info":
		resp.Result = map[string]any{
			"info": map[string]any{
				"build_version":    "repro-rippled-1.4",
				"complete_ledgers": completeRange(s.State.HeadIndex()),
				"validated_ledger": map[string]any{"seq": s.State.HeadIndex()},
				"server_state":     "full",
			},
		}
	case "account_info":
		acct := s.State.GetAccount(xrp.Address(req.Account))
		if acct == nil {
			return s.fail(req, "actNotFound")
		}
		resp.Result = map[string]any{
			"account_data": map[string]any{
				"Account":     string(acct.Address),
				"Balance":     acct.Balance,
				"Sequence":    acct.Sequence,
				"OwnerCount":  acct.OwnerCount,
				"Parent":      string(acct.Parent),
				"RequireDest": acct.RequireDestTag,
			},
			"ledger_index": s.State.HeadIndex(),
			"validated":    true,
		}
	case "account_lines":
		acct := s.State.GetAccount(xrp.Address(req.Account))
		if acct == nil {
			return s.fail(req, "actNotFound")
		}
		lines := s.State.LinesOf(xrp.Address(req.Account))
		rows := make([]map[string]any, 0, len(lines))
		for _, l := range lines {
			rows = append(rows, map[string]any{
				"account":  string(l.Issuer),
				"currency": l.Currency,
				"balance":  l.Balance,
				"limit":    l.Limit,
			})
		}
		resp.Result = map[string]any{"account": req.Account, "lines": rows}
	case "book_offers":
		gets, err := parseBookAsset(req.TakerGets)
		if err != nil {
			return s.fail(req, "invalidParams")
		}
		pays, err := parseBookAsset(req.TakerPays)
		if err != nil {
			return s.fail(req, "invalidParams")
		}
		offers := s.State.BookOffers(gets, pays)
		limit := req.Limit
		if limit <= 0 || limit > len(offers) {
			limit = len(offers)
		}
		rows := make([]map[string]any, 0, limit)
		for _, o := range offers[:limit] {
			rows = append(rows, map[string]any{
				"Account":    string(o.Owner),
				"Sequence":   o.Sequence,
				"TakerGets":  amountJSON(o.TakerGets),
				"TakerPays":  amountJSON(o.TakerPays),
				"quality":    o.Quality,
				"filled_any": o.Filled,
			})
		}
		resp.Result = map[string]any{"offers": rows}
	default:
		return s.fail(req, "unknownCmd")
	}
	return resp
}

// parseBookAsset parses "XRP" or "CUR+ISSUER".
func parseBookAsset(sv string) (xrp.AssetKey, error) {
	if sv == "" {
		return xrp.AssetKey{}, fmt.Errorf("rpcserve: empty asset")
	}
	if sv == "XRP" {
		return xrp.AssetKey{Currency: "XRP"}, nil
	}
	for i := 0; i < len(sv); i++ {
		if sv[i] == '+' {
			return xrp.AssetKey{Currency: sv[:i], Issuer: xrp.Address(sv[i+1:])}, nil
		}
	}
	return xrp.AssetKey{}, fmt.Errorf("rpcserve: asset %q must be XRP or CUR+ISSUER", sv)
}

func completeRange(head int64) string {
	if head == 0 {
		return "empty"
	}
	return "1-" + json.Number(itoa(head)).String()
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (s *XRPServer) fail(req xrpRequest, code string) xrpResponse {
	return xrpResponse{ID: req.ID, Type: "response", Status: "error", Error: code}
}

// resolveLedgerIndex accepts a number or the string "validated".
func (s *XRPServer) resolveLedgerIndex(v any) (int64, bool) {
	switch x := v.(type) {
	case nil:
		return s.State.HeadIndex(), true
	case string:
		if x == "validated" || x == "closed" || x == "current" {
			return s.State.HeadIndex(), true
		}
		return 0, false
	case float64:
		return int64(x), true
	case json.Number:
		n, err := x.Int64()
		return n, err == nil
	default:
		return 0, false
	}
}
