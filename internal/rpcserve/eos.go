package rpcserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/eos"
)

// EOSServer serves an EOS chain over the nodeos-style RPC the paper's
// collector used: POST /v1/chain/get_info and POST /v1/chain/get_block.
type EOSServer struct {
	Chain *eos.Chain
	mux   *http.ServeMux
}

// NewEOSServer builds the handler for a chain. get_account and
// get_currency_balance mirror the nodeos endpoints the paper's RPC guide
// references for account-level lookups.
func NewEOSServer(c *eos.Chain) *EOSServer {
	s := &EOSServer{Chain: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/chain/get_info", s.getInfo)
	s.mux.HandleFunc("POST /v1/chain/get_block", s.getBlock)
	s.mux.HandleFunc("POST /v1/chain/get_account", s.getAccount)
	s.mux.HandleFunc("POST /v1/chain/get_currency_balance", s.getCurrencyBalance)
	return s
}

type eosGetAccountRequest struct {
	AccountName string `json:"account_name"`
}

func (s *EOSServer) getAccount(w http.ResponseWriter, r *http.Request) {
	var req eosGetAccountRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body")
		return
	}
	name, err := eos.ParseName(req.AccountName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	acct := s.Chain.GetAccount(name)
	if acct == nil {
		httpError(w, http.StatusNotFound, "unknown account")
		return
	}
	writeJSON(w, map[string]any{
		"account_name": acct.Name.String(),
		"created":      acct.Created.UTC().Format(time.RFC3339),
		"privileged":   acct.Privileged,
		"creator":      acct.Creator.String(),
		"cpu_weight":   acct.Resources.CPUStaked,
		"net_weight":   acct.Resources.NETStaked,
		"ram_quota":    acct.Resources.RAMBytes,
		"ram_usage":    acct.Resources.RAMUsed,
	})
}

type eosGetBalanceRequest struct {
	Code    string `json:"code"`
	Account string `json:"account"`
	Symbol  string `json:"symbol"`
}

func (s *EOSServer) getCurrencyBalance(w http.ResponseWriter, r *http.Request) {
	var req eosGetBalanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body")
		return
	}
	code, err := eos.ParseName(req.Code)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad code")
		return
	}
	holder, err := eos.ParseName(req.Account)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad account")
		return
	}
	bal := s.Chain.Tokens().Balance(code, holder, req.Symbol)
	writeJSON(w, []string{bal.String()})
}

// ServeHTTP implements http.Handler.
func (s *EOSServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// eosInfoResponse mirrors the subset of get_info the collector needs.
type eosInfoResponse struct {
	ChainID          string `json:"chain_id"`
	HeadBlockNum     uint32 `json:"head_block_num"`
	HeadBlockTime    string `json:"head_block_time"`
	ServerVersion    string `json:"server_version_string"`
	BlockCPULimit    int64  `json:"block_cpu_limit"`
	CongestionStatus bool   `json:"network_congested"` // simulator extension
}

func (s *EOSServer) getInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, eosInfoResponse{
		ChainID:          "repro-eos-simnet",
		HeadBlockNum:     s.Chain.HeadNum(),
		HeadBlockTime:    s.Chain.Now().UTC().Format(time.RFC3339),
		ServerVersion:    "repro-nodeos-2.0",
		BlockCPULimit:    200_000,
		CongestionStatus: s.Chain.Resources().Congested(),
	})
}

type eosGetBlockRequest struct {
	BlockNumOrID json.Number `json:"block_num_or_id"`
}

// EOSBlockJSON is the wire shape of one block, structurally close to nodeos
// (transactions wrap a trx object carrying actions).
type EOSBlockJSON struct {
	BlockNum     uint32       `json:"block_num"`
	ID           string       `json:"id"`
	Previous     string       `json:"previous"`
	Timestamp    string       `json:"timestamp"`
	Producer     string       `json:"producer"`
	Transactions []EOSTrxJSON `json:"transactions"`
}

// EOSTrxJSON is one transaction receipt.
type EOSTrxJSON struct {
	Status string `json:"status"`
	Trx    struct {
		ID          string `json:"id"`
		Transaction struct {
			Actions []EOSActionJSON `json:"actions"`
		} `json:"transaction"`
	} `json:"trx"`
}

// EOSActionJSON is one action.
type EOSActionJSON struct {
	Account       string              `json:"account"`
	Name          string              `json:"name"`
	Authorization []map[string]string `json:"authorization"`
	Data          map[string]string   `json:"data"`
	Inline        bool                `json:"inline,omitempty"`
}

// BlockToJSON converts a simulator block to its wire shape.
func BlockToJSON(b *eos.Block) EOSBlockJSON {
	out := EOSBlockJSON{
		BlockNum:  b.Num,
		ID:        b.ID.String(),
		Previous:  b.Previous.String(),
		Timestamp: b.Timestamp.UTC().Format("2006-01-02T15:04:05.000"),
		Producer:  b.Producer.String(),
	}
	for _, tx := range b.Transactions {
		var tj EOSTrxJSON
		tj.Status = "executed"
		tj.Trx.ID = tx.ID.String()
		for _, act := range tx.Actions {
			aj := EOSActionJSON{
				Account: act.Account.String(),
				Name:    act.ActionName.String(),
				Data:    act.Data,
				Inline:  act.Inline,
			}
			for _, auth := range act.Authorization {
				aj.Authorization = append(aj.Authorization, map[string]string{
					"actor": auth.Actor.String(), "permission": auth.Permission,
				})
			}
			tj.Trx.Transaction.Actions = append(tj.Trx.Transaction.Actions, aj)
		}
		out.Transactions = append(out.Transactions, tj)
	}
	return out
}

func (s *EOSServer) getBlock(w http.ResponseWriter, r *http.Request) {
	var req eosGetBlockRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	num, err := req.BlockNumOrID.Int64()
	if err != nil || num < 1 {
		httpError(w, http.StatusBadRequest, "block_num_or_id must be a positive block number")
		return
	}
	blk := s.Chain.GetBlock(uint32(num))
	if blk == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("block %d not found", num))
		return
	}
	writeJSON(w, BlockToJSON(blk))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; headers are already gone.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"code": code, "error": msg})
}
