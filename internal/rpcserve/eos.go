package rpcserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/eos"
	"repro/internal/wire"
)

// EOSServer serves an EOS chain over the nodeos-style RPC the paper's
// collector used: POST /v1/chain/get_info and POST /v1/chain/get_block.
type EOSServer struct {
	Chain *eos.Chain
	mux   *http.ServeMux
}

// NewEOSServer builds the handler for a chain. get_account and
// get_currency_balance mirror the nodeos endpoints the paper's RPC guide
// references for account-level lookups.
func NewEOSServer(c *eos.Chain) *EOSServer {
	s := &EOSServer{Chain: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/chain/get_info", s.getInfo)
	s.mux.HandleFunc("POST /v1/chain/get_block", s.getBlock)
	s.mux.HandleFunc("POST /v1/chain/get_account", s.getAccount)
	s.mux.HandleFunc("POST /v1/chain/get_currency_balance", s.getCurrencyBalance)
	return s
}

type eosGetAccountRequest struct {
	AccountName string `json:"account_name"`
}

func (s *EOSServer) getAccount(w http.ResponseWriter, r *http.Request) {
	var req eosGetAccountRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body")
		return
	}
	name, err := eos.ParseName(req.AccountName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	acct := s.Chain.GetAccount(name)
	if acct == nil {
		httpError(w, http.StatusNotFound, "unknown account")
		return
	}
	writeJSON(w, map[string]any{
		"account_name": acct.Name.String(),
		"created":      acct.Created.UTC().Format(time.RFC3339),
		"privileged":   acct.Privileged,
		"creator":      acct.Creator.String(),
		"cpu_weight":   acct.Resources.CPUStaked,
		"net_weight":   acct.Resources.NETStaked,
		"ram_quota":    acct.Resources.RAMBytes,
		"ram_usage":    acct.Resources.RAMUsed,
	})
}

type eosGetBalanceRequest struct {
	Code    string `json:"code"`
	Account string `json:"account"`
	Symbol  string `json:"symbol"`
}

func (s *EOSServer) getCurrencyBalance(w http.ResponseWriter, r *http.Request) {
	var req eosGetBalanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body")
		return
	}
	code, err := eos.ParseName(req.Code)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad code")
		return
	}
	holder, err := eos.ParseName(req.Account)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad account")
		return
	}
	bal := s.Chain.Tokens().Balance(code, holder, req.Symbol)
	writeJSON(w, []string{bal.String()})
}

// ServeHTTP implements http.Handler.
func (s *EOSServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// eosInfoResponse mirrors the subset of get_info the collector needs.
type eosInfoResponse struct {
	ChainID          string `json:"chain_id"`
	HeadBlockNum     uint32 `json:"head_block_num"`
	HeadBlockTime    string `json:"head_block_time"`
	ServerVersion    string `json:"server_version_string"`
	BlockCPULimit    int64  `json:"block_cpu_limit"`
	CongestionStatus bool   `json:"network_congested"` // simulator extension
}

func (s *EOSServer) getInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, eosInfoResponse{
		ChainID:          "repro-eos-simnet",
		HeadBlockNum:     s.Chain.HeadNum(),
		HeadBlockTime:    s.Chain.Now().UTC().Format(time.RFC3339),
		ServerVersion:    "repro-nodeos-2.0",
		BlockCPULimit:    200_000,
		CongestionStatus: s.Chain.Resources().Congested(),
	})
}

type eosGetBlockRequest struct {
	BlockNumOrID json.Number `json:"block_num_or_id"`
}

// EOSBlockJSON is the wire shape of one block, structurally close to nodeos
// (transactions wrap a trx object carrying actions). The shapes and their
// pooled codecs live in internal/wire; the aliases keep this package the
// public face of the RPC surface.
type EOSBlockJSON = wire.EOSBlockJSON

// EOSTrxJSON is one transaction receipt.
type EOSTrxJSON = wire.EOSTrxJSON

// EOSActionJSON is one action.
type EOSActionJSON = wire.EOSActionJSON

// BlockToJSON converts a simulator block to its wire shape.
func BlockToJSON(b *eos.Block) EOSBlockJSON {
	var out EOSBlockJSON
	wire.EOSWireBlock(b, &out)
	return out
}

func (s *EOSServer) getBlock(w http.ResponseWriter, r *http.Request) {
	var req eosGetBlockRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	num, err := req.BlockNumOrID.Int64()
	if err != nil || num < 1 {
		httpError(w, http.StatusBadRequest, "block_num_or_id must be a positive block number")
		return
	}
	blk := s.Chain.GetBlock(uint32(num))
	if blk == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("block %d not found", num))
		return
	}
	// The get_block hot path: convert into an arena block and hand-encode
	// from pooled buffers — no reflection, no per-request garbage.
	jb := wire.GetEOSBlock()
	wire.EOSWireBlock(blk, jb)
	c := wire.GetCodec()
	buf := wire.GetBuffer()
	buf.B = c.AppendEOSBlock(buf.B, jb)
	writeRaw(w, buf)
	wire.PutBuffer(buf)
	wire.PutCodec(c)
	wire.PutEOSBlock(jb)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Connection-level failure; headers are already gone.
		return
	}
}

// writeRaw sends a pooled buffer of pre-encoded JSON with the trailing
// newline writeJSON's json.Encoder always appended, so both paths stay
// byte-compatible. The buffer remains caller-owned.
func writeRaw(w http.ResponseWriter, buf *wire.Buffer) {
	buf.B = append(buf.B, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.B)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"code": code, "error": msg})
}
