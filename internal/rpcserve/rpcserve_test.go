package rpcserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/tezos"
	"repro/internal/wsrpc"
	"repro/internal/xrp"
)

func TestEOSServerErrors(t *testing.T) {
	c := eos.New(eos.DefaultConfig(1000))
	c.ProduceBlock()
	srv := httptest.NewServer(NewEOSServer(c))
	defer srv.Close()

	// get_info works and reports head 1.
	resp, err := http.Post(srv.URL+"/v1/chain/get_info", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		HeadBlockNum uint32 `json:"head_block_num"`
	}
	json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if info.HeadBlockNum != 1 {
		t.Fatalf("head = %d", info.HeadBlockNum)
	}

	cases := []struct {
		body string
		want int
	}{
		{`{"block_num_or_id": 99}`, http.StatusNotFound},
		{`{"block_num_or_id": -1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+"/v1/chain/get_block", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q -> %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}

	// GET on a POST route is rejected by the mux.
	resp, err = http.Get(srv.URL + "/v1/chain/get_block")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET get_block -> %d", resp.StatusCode)
	}
}

func TestTezosServerErrors(t *testing.T) {
	c := tezos.New(tezos.DefaultConfig(1000))
	srv := httptest.NewServer(NewTezosServer(c))
	defer srv.Close()

	// Empty chain: head is a 404.
	resp, err := http.Get(srv.URL + "/chains/main/blocks/head")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty head -> %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/chains/main/blocks/abc")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level -> %d", resp.StatusCode)
	}
}

func TestRateLimitMiddleware(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(EndpointProfile{RatePerSec: 5, Burst: 2}.Middleware(handler))
	defer srv.Close()

	var limited int
	for i := 0; i < 10; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			limited++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		}
	}
	if limited == 0 {
		t.Fatal("burst of 10 never hit the limit")
	}
}

func TestTokenBucketRefills(t *testing.T) {
	b := NewTokenBucket(100, 1)
	if !b.Allow() {
		t.Fatal("first request denied")
	}
	if b.Allow() {
		t.Fatal("second immediate request allowed with burst 1")
	}
	time.Sleep(25 * time.Millisecond) // 100/s refills one token in 10ms
	if !b.Allow() {
		t.Fatal("bucket did not refill")
	}
	var nilBucket *TokenBucket
	if !nilBucket.Allow() {
		t.Fatal("nil bucket must be unlimited")
	}
}

func TestXRPServerCommands(t *testing.T) {
	s := xrp.New(xrp.DefaultConfig(1000))
	a := xrp.NewAddress("a")
	b := xrp.NewAddress("b")
	s.Fund(a, 1000*xrp.DropsPerXRP)
	s.Fund(b, 1000*xrp.DropsPerXRP)
	s.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: a, Destination: b, Amount: xrp.XRP(1)})
	s.CloseLedger()
	srv := httptest.NewServer(NewXRPServer(s))
	defer srv.Close()

	conn, err := wsrpc.Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Unknown command errors but keeps the connection alive.
	conn.WriteJSON(map[string]any{"id": 1, "command": "bogus"})
	var resp map[string]any
	conn.ReadJSON(&resp)
	if resp["status"] != "error" {
		t.Fatalf("bogus command: %+v", resp)
	}

	// Missing ledger.
	conn.WriteJSON(map[string]any{"id": 2, "command": "ledger", "ledger_index": 99})
	conn.ReadJSON(&resp)
	if resp["error"] != "lgrNotFound" {
		t.Fatalf("missing ledger: %+v", resp)
	}

	// "validated" resolves to the head; expanded transactions decode.
	conn.WriteJSON(map[string]any{
		"id": 3, "command": "ledger", "ledger_index": "validated",
		"transactions": true, "expand": true,
	})
	var full struct {
		Result struct {
			Ledger XRPLedgerJSON `json:"ledger"`
		} `json:"result"`
	}
	if err := conn.ReadJSON(&full); err != nil {
		t.Fatal(err)
	}
	led := full.Result.Ledger
	if led.LedgerIndex != 1 || led.TxCount != 1 || len(led.Transactions) != 1 {
		t.Fatalf("ledger: %+v", led)
	}
	tx := led.Transactions[0]
	if tx.TransactionType != "Payment" || tx.Result != "tesSUCCESS" {
		t.Fatalf("tx: %+v", tx)
	}
	if tx.Amount.ToAmount() != xrp.XRP(1) {
		t.Fatalf("amount: %+v", tx.Amount)
	}
}

func TestBlockToJSONShapes(t *testing.T) {
	c := eos.New(eos.DefaultConfig(1000))
	blk := c.ProduceBlock()
	j := BlockToJSON(blk)
	if j.BlockNum != 1 || j.Producer == "" || j.ID == "" {
		t.Fatalf("json: %+v", j)
	}
	if _, err := time.Parse("2006-01-02T15:04:05.000", j.Timestamp); err != nil {
		t.Fatalf("timestamp format: %v", err)
	}
}

func TestEOSAccountEndpoints(t *testing.T) {
	c := eos.New(eos.DefaultConfig(1000))
	if err := c.CreateAccount(eos.MustName("carol"), eos.SystemAccount); err != nil {
		t.Fatal(err)
	}
	if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, eos.MustName("carol"),
		mustAsset(t, "12.5000 EOS")); err != nil {
		t.Fatal(err)
	}
	c.Resources().Stake(&c.GetAccount(eos.MustName("carol")).Resources, 42, 7)
	srv := httptest.NewServer(NewEOSServer(c))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/chain/get_account", "application/json",
		strings.NewReader(`{"account_name":"carol"}`))
	if err != nil {
		t.Fatal(err)
	}
	var acct struct {
		AccountName string `json:"account_name"`
		CPUWeight   int64  `json:"cpu_weight"`
		Creator     string `json:"creator"`
	}
	json.NewDecoder(resp.Body).Decode(&acct)
	resp.Body.Close()
	if acct.AccountName != "carol" || acct.CPUWeight != 42 || acct.Creator != "eosio" {
		t.Fatalf("account: %+v", acct)
	}

	resp, _ = http.Post(srv.URL+"/v1/chain/get_account", "application/json",
		strings.NewReader(`{"account_name":"ghost"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost account -> %d", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/chain/get_currency_balance", "application/json",
		strings.NewReader(`{"code":"eosio.token","account":"carol","symbol":"EOS"}`))
	if err != nil {
		t.Fatal(err)
	}
	var balances []string
	json.NewDecoder(resp.Body).Decode(&balances)
	resp.Body.Close()
	if len(balances) != 1 || balances[0] != "12.5000 EOS" {
		t.Fatalf("balances: %v", balances)
	}
}

func mustAsset(t *testing.T, s string) chain.Asset {
	t.Helper()
	a, err := chain.ParseAsset(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestTezosVotesEndpoints(t *testing.T) {
	cfg := tezos.DefaultConfig(1000)
	cfg.Governance.BlocksPerPeriod = 4
	c := tezos.New(cfg)
	for i := 0; i < 5; i++ {
		addr := tezos.NewImplicitAddress(fmt.Sprintf("vb-%d", i))
		if err := c.RegisterBaker(addr, 50_000*1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range c.Bakers() {
		c.Inject(tezos.Operation{Kind: tezos.KindProposals, Source: b.Address, Proposal: "PsTest"})
	}
	for i := 0; i < 5; i++ {
		if _, err := c.ProduceBlock(); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(NewTezosServer(c))
	defer srv.Close()

	var kind string
	getJSON(t, srv.URL+"/chains/main/blocks/head/votes/current_period_kind", &kind)
	if kind != "exploration" {
		t.Fatalf("period kind = %q", kind)
	}
	var proposal string
	getJSON(t, srv.URL+"/chains/main/blocks/head/votes/current_proposal", &proposal)
	if proposal != "PsTest" {
		t.Fatalf("proposal = %q", proposal)
	}
	// Cast one ballot, then read the tallies.
	c.Inject(tezos.Operation{Kind: tezos.KindBallot, Source: c.Bakers()[0].Address,
		Proposal: "PsTest", Ballot: tezos.VoteYay})
	c.ProduceBlock()
	var tallies map[string]int64
	getJSON(t, srv.URL+"/chains/main/blocks/head/votes/ballots", &tallies)
	if tallies["yay"] <= 0 {
		t.Fatalf("tallies: %v", tallies)
	}
	var periods []map[string]any
	getJSON(t, srv.URL+"/chains/main/blocks/head/votes/periods", &periods)
	if len(periods) == 0 || periods[0]["outcome"] != "advanced" {
		t.Fatalf("periods: %v", periods)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestXRPAccountAndBookCommands(t *testing.T) {
	s := xrp.New(xrp.DefaultConfig(1000))
	gw := xrp.NewAddress("cmd-gw")
	maker := xrp.NewAddress("cmd-maker")
	s.Fund(gw, 100_000*xrp.DropsPerXRP)
	s.Fund(maker, 100_000*xrp.DropsPerXRP)
	s.Submit(xrp.Transaction{Type: xrp.TxTrustSet, Account: maker, LimitAmount: xrp.IOU("USD", gw, 1000)})
	s.CloseLedger()
	s.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: gw, Destination: maker, Amount: xrp.IOU("USD", gw, 500)})
	s.Submit(xrp.Transaction{Type: xrp.TxOfferCreate, Account: maker,
		TakerGets: xrp.IOU("USD", gw, 100), TakerPays: xrp.XRP(490)})
	s.CloseLedger()

	srv := httptest.NewServer(NewXRPServer(s))
	defer srv.Close()
	conn, err := wsrpc.Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// account_info.
	conn.WriteJSON(map[string]any{"id": 1, "command": "account_info", "account": string(maker)})
	var infoResp struct {
		Result struct {
			AccountData struct {
				Balance    int64 `json:"Balance"`
				OwnerCount int   `json:"OwnerCount"`
			} `json:"account_data"`
		} `json:"result"`
	}
	if err := conn.ReadJSON(&infoResp); err != nil {
		t.Fatal(err)
	}
	if infoResp.Result.AccountData.OwnerCount != 2 { // line + offer
		t.Fatalf("owner count = %d", infoResp.Result.AccountData.OwnerCount)
	}

	// account_lines.
	conn.WriteJSON(map[string]any{"id": 2, "command": "account_lines", "account": string(maker)})
	var linesResp struct {
		Result struct {
			Lines []struct {
				Currency string `json:"currency"`
				Balance  int64  `json:"balance"`
			} `json:"lines"`
		} `json:"result"`
	}
	if err := conn.ReadJSON(&linesResp); err != nil {
		t.Fatal(err)
	}
	if len(linesResp.Result.Lines) != 1 || linesResp.Result.Lines[0].Currency != "USD" {
		t.Fatalf("lines: %+v", linesResp.Result)
	}
	if linesResp.Result.Lines[0].Balance != 500*xrp.DropsPerXRP {
		t.Fatalf("line balance: %d", linesResp.Result.Lines[0].Balance)
	}

	// book_offers.
	conn.WriteJSON(map[string]any{
		"id": 3, "command": "book_offers",
		"taker_gets": "USD+" + string(gw), "taker_pays": "XRP",
	})
	var bookResp struct {
		Result struct {
			Offers []struct {
				Account string  `json:"Account"`
				Quality float64 `json:"quality"`
			} `json:"offers"`
		} `json:"result"`
	}
	if err := conn.ReadJSON(&bookResp); err != nil {
		t.Fatal(err)
	}
	if len(bookResp.Result.Offers) != 1 || bookResp.Result.Offers[0].Account != string(maker) {
		t.Fatalf("book: %+v", bookResp.Result)
	}
	if q := bookResp.Result.Offers[0].Quality; q < 4.89 || q > 4.91 {
		t.Fatalf("quality = %f", q)
	}

	// Unknown account.
	conn.WriteJSON(map[string]any{"id": 4, "command": "account_info", "account": "rGhost"})
	var errResp map[string]any
	conn.ReadJSON(&errResp)
	if errResp["error"] != "actNotFound" {
		t.Fatalf("ghost: %v", errResp)
	}
}
