// Package rpcserve exposes the three chain simulators over the same network
// interfaces the paper crawled: an EOS-style HTTP JSON RPC (get_block), a
// Tezos-style REST RPC, and an XRP-style WebSocket API, each with
// configurable token-bucket rate limits and artificial latency so the
// collector's endpoint short-listing logic (6 good endpoints out of 32) has
// something real to measure.
package rpcserve

import (
	"net/http"
	"sync"
	"time"
)

// TokenBucket is a thread-safe token-bucket rate limiter.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket allows rate requests per second with the given burst.
// A nil bucket (or rate <= 0) means unlimited.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// Allow consumes one token if available.
func (b *TokenBucket) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// EndpointProfile shapes one served endpoint: its rate limit and synthetic
// latency. The paper found block-producer endpoints varying wildly in both,
// keeping only the 6 most generous of 32.
type EndpointProfile struct {
	// RatePerSec limits requests per second (0 = unlimited).
	RatePerSec float64
	// Burst is the bucket depth.
	Burst float64
	// Latency is added to every response.
	Latency time.Duration
}

// Middleware wraps h with the profile's rate limit and latency.
func (p EndpointProfile) Middleware(h http.Handler) http.Handler {
	bucket := NewTokenBucket(p.RatePerSec, p.Burst)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !bucket.Allow() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		if p.Latency > 0 {
			time.Sleep(p.Latency)
		}
		h.ServeHTTP(w, r)
	})
}
