package eos

import (
	"fmt"
	"strconv"

	"repro/internal/chain"
)

// SystemContract implements the eosio system account's actions: account
// creation, name bidding, bandwidth delegation, RAM purchases, REX rentals
// and producer voting. These appear in Figure 1 under "Account actions" and
// "Other actions" and each one is tiny next to token transfers.
type SystemContract struct{}

// Apply dispatches the system actions.
func (s *SystemContract) Apply(ctx *Context, act Action) error {
	c := ctx.Chain
	switch act.ActionName {
	case ActNewAccount:
		name, err := ParseName(act.Data["name"])
		if err != nil {
			return fmt.Errorf("eos: newaccount: %w", err)
		}
		return c.CreateAccount(name, act.Actor())
	case ActBidName:
		if _, err := ParseName(act.Data["newname"]); err != nil {
			return fmt.Errorf("eos: bidname: %w", err)
		}
		bid, err := chain.ParseAsset(act.Data["bid"])
		if err != nil {
			return fmt.Errorf("eos: bidname bid: %w", err)
		}
		// Bids escrow EOS with eosio.names.
		return c.Tokens().Transfer(TokenAccount, act.Actor(), NamesAccount, bid)
	case ActDelegateBW:
		return s.delegate(c, act, true)
	case ActUndelegateBW:
		return s.delegate(c, act, false)
	case ActBuyRAM:
		qty, err := chain.ParseAsset(act.Data["quant"])
		if err != nil {
			return fmt.Errorf("eos: buyram: %w", err)
		}
		if err := c.Tokens().Transfer(TokenAccount, act.Actor(), RAMAccount, qty); err != nil {
			return err
		}
		bytes := c.RAM().BuyForEOS(qty.Amount)
		receiver := c.account(act, "receiver")
		if receiver == nil {
			return fmt.Errorf("eos: buyram: unknown receiver")
		}
		receiver.Resources.RAMBytes += bytes
		return nil
	case ActBuyRAMBytes:
		bytes, err := strconv.ParseInt(act.Data["bytes"], 10, 64)
		if err != nil || bytes <= 0 {
			return fmt.Errorf("eos: buyrambytes: bad byte count %q", act.Data["bytes"])
		}
		cost := c.RAM().BuyBytes(bytes)
		if err := c.Tokens().Transfer(TokenAccount, act.Actor(), RAMAccount, chain.EOSAsset(cost)); err != nil {
			return err
		}
		receiver := c.account(act, "receiver")
		if receiver == nil {
			return fmt.Errorf("eos: buyrambytes: unknown receiver")
		}
		receiver.Resources.RAMBytes += bytes
		return nil
	case ActRentCPU:
		payment, err := chain.ParseAsset(act.Data["payment"])
		if err != nil {
			return fmt.Errorf("eos: rentcpu: %w", err)
		}
		if err := c.Tokens().Transfer(TokenAccount, act.Actor(), RexAccount, payment); err != nil {
			return err
		}
		receiver := c.account(act, "receiver")
		if receiver == nil {
			return fmt.Errorf("eos: rentcpu: unknown receiver")
		}
		// Rented CPU weight scales inversely with the price index, so
		// rentals during congestion buy far less capacity.
		weight := float64(payment.Amount) * 30 / c.Resources().RentPriceIndex()
		c.Resources().Rent(&receiver.Resources, int64(weight))
		return nil
	case ActVoteProducer, ActUpdateAuth, ActLinkAuth:
		// Governance and permission bookkeeping: state effects are not
		// needed by any measurement, only the action record is.
		return nil
	case ActDeposit:
		qty, err := chain.ParseAsset(act.Data["quantity"])
		if err != nil {
			return fmt.Errorf("eos: deposit: %w", err)
		}
		return c.Tokens().Transfer(TokenAccount, act.Actor(), RexAccount, qty)
	default:
		return fmt.Errorf("eos: system contract has no action %s", act.ActionName)
	}
}

func (s *SystemContract) delegate(c *Chain, act Action, add bool) error {
	receiver := c.account(act, "receiver")
	if receiver == nil {
		return fmt.Errorf("eos: %s: unknown receiver %q", act.ActionName, act.Data["receiver"])
	}
	cpu, err := chain.ParseAsset(act.Data["stake_cpu_quantity"])
	if err != nil {
		return fmt.Errorf("eos: %s cpu quantity: %w", act.ActionName, err)
	}
	net, err := chain.ParseAsset(act.Data["stake_net_quantity"])
	if err != nil {
		return fmt.Errorf("eos: %s net quantity: %w", act.ActionName, err)
	}
	if add {
		if err := c.Tokens().Transfer(TokenAccount, act.Actor(), StakeAccount, cpu.Add(net)); err != nil {
			return err
		}
		c.Resources().Stake(&receiver.Resources, cpu.Amount, net.Amount)
		return nil
	}
	c.Resources().Unstake(&receiver.Resources, cpu.Amount, net.Amount)
	// Real EOS returns stake after a 3-day delay; the refund leg is not
	// needed by any measurement, so stake returns immediately.
	return c.Tokens().Transfer(TokenAccount, StakeAccount, act.Actor(), cpu.Add(net))
}
