package eos

import (
	"testing"
	"time"

	"repro/internal/chain"
)

// newTestChain builds a chain with two funded, staked user accounts.
func newTestChain(t *testing.T) *Chain {
	t.Helper()
	c := New(DefaultConfig(1000))
	for _, name := range []string{"alice", "bob"} {
		n := MustName(name)
		if err := c.CreateAccount(n, SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(TokenAccount, SystemAccount, n, chain.EOSAsset(10_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	return c
}

func transferAction(from, to string, amount int64) Action {
	return NewAction(TokenAccount, ActTransfer, MustName(from), map[string]string{
		"from":     from,
		"to":       to,
		"quantity": chain.EOSAsset(amount).String(),
	})
}

func TestProduceBlockExecutesTransfer(t *testing.T) {
	c := newTestChain(t)
	c.PushTransaction(transferAction("alice", "bob", 5_0000))
	blk := c.ProduceBlock()
	if len(blk.Transactions) != 1 {
		t.Fatalf("block has %d txs", len(blk.Transactions))
	}
	if blk.Transactions[0].ID.IsZero() {
		t.Fatal("transaction not assigned an ID")
	}
	if got := c.Tokens().Balance(TokenAccount, MustName("bob"), "EOS").Amount; got != 10_005_0000 {
		t.Fatalf("bob = %d", got)
	}
}

func TestFailedTransactionExcludedAndRolledBack(t *testing.T) {
	c := newTestChain(t)
	// Two actions: the first succeeds, the second overdraws. The whole
	// transaction must vanish and the first action's effect roll back.
	c.PushTransaction(
		transferAction("alice", "bob", 1_0000),
		transferAction("alice", "bob", 999_999_0000),
	)
	blk := c.ProduceBlock()
	if len(blk.Transactions) != 0 {
		t.Fatalf("failed tx included in block")
	}
	if c.RejectedOther != 1 {
		t.Fatalf("RejectedOther = %d", c.RejectedOther)
	}
	if got := c.Tokens().Balance(TokenAccount, MustName("bob"), "EOS").Amount; got != 10_000_0000 {
		t.Fatalf("partial effect leaked: bob = %d", got)
	}
}

func TestProducerScheduleRounds(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.NumProducers = 3
	cfg.BlocksPerProducer = 2
	c := New(cfg)
	var producers []Name
	for i := 0; i < 8; i++ {
		producers = append(producers, c.ProduceBlock().Producer)
	}
	// Expect pattern AABBCCAA with 3 producers × 2 blocks each.
	if producers[0] != producers[1] || producers[2] != producers[3] {
		t.Fatalf("producers not batched: %v", producers)
	}
	if producers[0] == producers[2] {
		t.Fatal("schedule did not rotate")
	}
	if producers[6] != producers[0] {
		t.Fatalf("round did not wrap: %v", producers)
	}
}

func TestBlockTimestampsAdvance(t *testing.T) {
	c := New(DefaultConfig(1000))
	b1 := c.ProduceBlock()
	b2 := c.ProduceBlock()
	want := DefaultConfig(1000).BlockInterval
	if got := b2.Timestamp.Sub(b1.Timestamp); got != want {
		t.Fatalf("block interval %v, want %v", got, want)
	}
	if b2.Previous != b1.ID {
		t.Fatal("chain linkage broken")
	}
}

func TestGetBlockBounds(t *testing.T) {
	c := New(DefaultConfig(1000))
	c.ProduceBlock()
	if c.GetBlock(0) != nil || c.GetBlock(2) != nil {
		t.Fatal("out-of-range blocks returned")
	}
	if c.GetBlock(1) == nil {
		t.Fatal("block 1 missing")
	}
}

func TestUnstakedAccountRejectedDuringCongestion(t *testing.T) {
	c := newTestChain(t)
	// Force congestion directly: the market flag flips once utilization
	// crosses the threshold.
	for i := 0; i < 200; i++ {
		c.Resources().ObserveBlock(1_000_000, 1_000_000)
	}
	if !c.Resources().Congested() {
		t.Fatal("network did not congest")
	}
	// A freshly created account with zero stake cannot act in congestion.
	if err := c.CreateAccount(MustName("pauper"), SystemAccount); err != nil {
		t.Fatal(err)
	}
	if err := c.Tokens().Transfer(TokenAccount, SystemAccount, MustName("pauper"), chain.EOSAsset(1_0000)); err != nil {
		t.Fatal(err)
	}
	c.PushTransaction(transferAction("pauper", "alice", 1))
	c.ProduceBlock()
	if c.RejectedCPU != 1 {
		t.Fatalf("RejectedCPU = %d, want 1", c.RejectedCPU)
	}
}

func TestRentPriceSpikesUnderLoad(t *testing.T) {
	rs := NewResourceState()
	base := rs.RentPriceIndex()
	for i := 0; i < 300; i++ {
		rs.ObserveBlock(1_000_000, 1_000_000)
	}
	spike := rs.RentPriceIndex()
	// The paper reports a 10,000% (=100×) CPU price spike.
	if spike < base*50 {
		t.Fatalf("rent index only rose from %.2f to %.2f", base, spike)
	}
}

func TestCongestionHysteresis(t *testing.T) {
	rs := NewResourceState()
	for i := 0; i < 300; i++ {
		rs.ObserveBlock(1_000_000, 1_000_000)
	}
	if !rs.Congested() {
		t.Fatal("did not congest")
	}
	// Dropping marginally below the threshold must NOT immediately clear.
	for i := 0; i < 3; i++ {
		rs.ObserveBlock(750_000, 1_000_000)
	}
	if !rs.Congested() {
		t.Fatal("congestion cleared too eagerly")
	}
	for i := 0; i < 500; i++ {
		rs.ObserveBlock(0, 1_000_000)
	}
	if rs.Congested() {
		t.Fatal("congestion never cleared")
	}
}

func TestSystemNewAccountAndDelegate(t *testing.T) {
	c := newTestChain(t)
	c.PushTransaction(NewAction(SystemAccount, ActNewAccount, MustName("alice"), map[string]string{
		"name": "carol",
	}))
	c.ProduceBlock()
	if !c.HasAccount(MustName("carol")) {
		t.Fatal("carol not created")
	}
	// Delegate bandwidth to carol; stake should move and be recorded.
	c.PushTransaction(NewAction(SystemAccount, ActDelegateBW, MustName("alice"), map[string]string{
		"receiver":           "carol",
		"stake_cpu_quantity": "10.0000 EOS",
		"stake_net_quantity": "5.0000 EOS",
	}))
	c.ProduceBlock()
	carol := c.GetAccount(MustName("carol"))
	if carol.Resources.CPUStaked != 10_0000 || carol.Resources.NETStaked != 5_0000 {
		t.Fatalf("carol stake = %+v", carol.Resources)
	}
	if got := c.Tokens().Balance(TokenAccount, StakeAccount, "EOS").Amount; got != 15_0000 {
		t.Fatalf("stake escrow = %d", got)
	}
}

func TestSystemBuyRAMBytes(t *testing.T) {
	c := newTestChain(t)
	before := c.RAM().PricePerKB()
	c.PushTransaction(NewAction(SystemAccount, ActBuyRAMBytes, MustName("alice"), map[string]string{
		"receiver": "alice",
		"bytes":    "1048576",
	}))
	blk := c.ProduceBlock()
	if len(blk.Transactions) != 1 {
		t.Fatalf("buyrambytes rejected (rejected=%d other=%d)", c.RejectedCPU, c.RejectedOther)
	}
	if got := c.GetAccount(MustName("alice")).Resources.RAMBytes; got != 1048576 {
		t.Fatalf("alice RAM = %d", got)
	}
	if after := c.RAM().PricePerKB(); after <= before {
		t.Fatalf("RAM price did not rise: %f -> %f", before, after)
	}
}

func TestEIDOSBoomerang(t *testing.T) {
	c := newTestChain(t)
	eidos := NewEIDOSContract()
	if err := c.SetContract(EIDOSContract, eidos); err != nil {
		t.Fatal(err)
	}
	if err := c.Tokens().Create(EIDOSContract, EIDOSToken, 4, 1_000_000_000_0000); err != nil {
		t.Fatal(err)
	}
	if err := c.Tokens().Issue(EIDOSContract, EIDOSContract, chain.NewAsset(100_000_000, 0, 4, EIDOSToken)); err != nil {
		t.Fatal(err)
	}

	aliceEOSBefore := c.Tokens().Balance(TokenAccount, MustName("alice"), "EOS").Amount
	c.PushTransaction(transferAction("alice", EIDOSContract.String(), 1_0000))
	blk := c.ProduceBlock()

	if len(blk.Transactions) != 1 {
		t.Fatalf("mining tx rejected (other=%d)", c.RejectedOther)
	}
	// One user action + two inline legs (EOS refund, EIDOS payout).
	if got := len(blk.Transactions[0].Actions); got != 3 {
		t.Fatalf("boomerang recorded %d actions, want 3", got)
	}
	if !blk.Transactions[0].Actions[1].Inline || !blk.Transactions[0].Actions[2].Inline {
		t.Fatal("contract legs not marked inline")
	}
	// EOS boomeranged back: alice's balance is unchanged.
	if got := c.Tokens().Balance(TokenAccount, MustName("alice"), "EOS").Amount; got != aliceEOSBefore {
		t.Fatalf("alice EOS changed: %d -> %d", aliceEOSBefore, got)
	}
	// And she now holds 0.01% of the contract's pre-payout EIDOS.
	gotEIDOS := c.Tokens().Balance(EIDOSContract, MustName("alice"), EIDOSToken).Amount
	if gotEIDOS != 100_000_000_0000/10_000 {
		t.Fatalf("alice EIDOS = %d", gotEIDOS)
	}
	if eidos.Mines != 1 {
		t.Fatalf("mines = %d", eidos.Mines)
	}
}

func TestAppContractRestrictsActions(t *testing.T) {
	c := newTestChain(t)
	app := NewAppContract(BetDiceTasks, "removetask", "log")
	if err := c.SetContract(BetDiceTasks, app); err != nil {
		t.Fatal(err)
	}
	c.PushTransaction(NewAction(BetDiceTasks, MustName("removetask"), MustName("alice"), nil))
	c.PushTransaction(NewAction(BetDiceTasks, MustName("hackattempt"), MustName("alice"), nil))
	blk := c.ProduceBlock()
	if len(blk.Transactions) != 1 {
		t.Fatalf("block txs = %d, want 1", len(blk.Transactions))
	}
	if app.Calls[MustName("removetask")] != 1 {
		t.Fatal("removetask not recorded")
	}
}

func TestDefaultConfigScale(t *testing.T) {
	cfg := DefaultConfig(1000)
	if cfg.BlockInterval != 500*time.Second {
		t.Fatalf("scaled interval = %v", cfg.BlockInterval)
	}
	if DefaultConfig(0).BlockInterval != 500*time.Millisecond {
		t.Fatal("scale floor broken")
	}
}
