package eos

import (
	"testing"

	"repro/internal/chain"
)

func BenchmarkParseName(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseName("eidosonecoin"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNameString(b *testing.B) {
	n := MustName("eidosonecoin")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = n.String()
	}
}

// benchChain builds a funded two-account chain outside the timer.
func benchChain(b *testing.B) *Chain {
	b.Helper()
	c := New(DefaultConfig(1000))
	for _, name := range []string{"alice", "bob"} {
		n := MustName(name)
		if err := c.CreateAccount(n, SystemAccount); err != nil {
			b.Fatal(err)
		}
		if err := c.Tokens().Transfer(TokenAccount, SystemAccount, n, chain.EOSAsset(100_000_000_0000)); err != nil {
			b.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 1_000_000_0000, 100_0000)
	}
	return c
}

// BenchmarkBlockProduction measures end-to-end block production with 100
// token transfers per block — roughly the EIDOS-era per-block load.
func BenchmarkBlockProduction(b *testing.B) {
	c := benchChain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			from, to := "alice", "bob"
			if j%2 == 1 {
				from, to = to, from
			}
			c.PushTransaction(NewAction(TokenAccount, ActTransfer, MustName(from), map[string]string{
				"from": from, "to": to, "quantity": "0.0001 EOS",
			}))
		}
		blk := c.ProduceBlock()
		if len(blk.Transactions) != 100 {
			b.Fatalf("block carried %d txs", len(blk.Transactions))
		}
	}
}

// BenchmarkEIDOSMining measures the boomerang path: one user transfer
// triggering two inline legs through the notification hook.
func BenchmarkEIDOSMining(b *testing.B) {
	c := benchChain(b)
	eidos := NewEIDOSContract()
	if err := c.SetContract(EIDOSContract, eidos); err != nil {
		b.Fatal(err)
	}
	if err := c.Tokens().Create(EIDOSContract, EIDOSToken, 4, 1<<60); err != nil {
		b.Fatal(err)
	}
	if err := c.Tokens().Issue(EIDOSContract, EIDOSContract, chain.NewAsset(1_000_000_000, 0, 4, EIDOSToken)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PushTransaction(NewAction(TokenAccount, ActTransfer, MustName("alice"), map[string]string{
			"from": "alice", "to": EIDOSContract.String(), "quantity": "0.0001 EOS",
		}))
		blk := c.ProduceBlock()
		if len(blk.Transactions) != 1 || len(blk.Transactions[0].Actions) != 3 {
			b.Fatalf("boomerang shape wrong: %+v", blk.Transactions)
		}
	}
}

// BenchmarkTokenTransfer measures raw token-state mutation.
func BenchmarkTokenTransfer(b *testing.B) {
	ts := NewTokenState()
	if err := ts.Create(TokenAccount, "EOS", 4, 1<<60); err != nil {
		b.Fatal(err)
	}
	if err := ts.Issue(TokenAccount, MustName("alice"), chain.EOSAsset(1<<40)); err != nil {
		b.Fatal(err)
	}
	alice, bob := MustName("alice"), MustName("bob")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := alice, bob
		if i%2 == 1 {
			from, to = to, from
		}
		if err := ts.Transfer(TokenAccount, from, to, chain.EOSAsset(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRAMMarket measures the Bancor connector updates.
func BenchmarkRAMMarket(b *testing.B) {
	m := NewRAMMarket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.BuyBytes(1024)
	}
}
