package eos

import (
	"time"
)

// Resources is the per-account slice of the EOS resource model. EOS has no
// per-transaction fees; instead accounts stake EOS for CPU and NET bandwidth
// and buy RAM outright. This design is what made the zero-cost EIDOS
// boomerang spam possible (§4.1 of the paper).
type Resources struct {
	CPUStaked int64 // EOS (raw, 4 decimals) staked for CPU
	NETStaked int64 // EOS staked for network bandwidth
	RAMBytes  int64 // bytes of RAM owned
	RAMUsed   int64 // bytes of RAM consumed by table rows
	CPURented int64 // EOS-equivalent CPU rented through REX (rentcpu)

	// cpuUsedMicros is the usage accumulated in the current decay window.
	cpuUsedMicros int64
	windowStart   time.Time
}

// cpuWeight is the account's effective CPU stake including rentals.
func (r *Resources) cpuWeight() int64 { return r.CPUStaked + r.CPURented }

// ResourceState models the chain-wide CPU market: total capacity, elastic
// expansion in normal times, the hard stake-proportional quota once the
// network enters congestion mode, and a rental price index that spikes with
// utilization (the paper reports a 10,000 % CPU price spike after the EIDOS
// launch).
type ResourceState struct {
	// CPUMicrosPerSecond is the chain's virtual CPU budget per wall second.
	CPUMicrosPerSecond int64
	// ElasticMultiplier is how far usage may exceed the guaranteed quota
	// while the network is uncongested (eosio defaults to 1000×).
	ElasticMultiplier int64
	// CongestionThreshold is the utilization fraction (0..1) above which
	// the network flips into congestion mode.
	CongestionThreshold float64
	// Window is the usage decay window for per-account accounting.
	Window time.Duration

	totalStaked int64
	congested   bool
	// utilEMA is an exponential moving average of per-block utilization.
	utilEMA float64
	// baseRentPrice is the uncongested price (EOS per CPU-ms-per-day).
	baseRentPrice float64
}

// NewResourceState returns the market with eosio-flavoured defaults.
func NewResourceState() *ResourceState {
	return &ResourceState{
		CPUMicrosPerSecond:  400_000, // 200ms per 0.5s block
		ElasticMultiplier:   1000,
		CongestionThreshold: 0.80,
		Window:              24 * time.Hour,
		baseRentPrice:       0.0001,
	}
}

// Congested reports whether the network is in congestion mode, during which
// accounts are limited to their stake-proportional CPU quota.
func (rs *ResourceState) Congested() bool { return rs.congested }

// Utilization returns the smoothed CPU utilization fraction.
func (rs *ResourceState) Utilization() float64 { return rs.utilEMA }

// RentPriceIndex returns the current CPU rental price relative to the
// uncongested baseline (1.0 = baseline). The price follows an exponential
// curve in utilization so a saturated network produces the multi-hundred-fold
// spike observed in the paper.
func (rs *ResourceState) RentPriceIndex() float64 {
	u := rs.utilEMA
	if u <= rs.CongestionThreshold {
		return 1 + u
	}
	// Above the threshold the multiplier grows super-linearly; at u=1.0 the
	// index reaches ~101 (a 10,000% increase over baseline).
	over := (u - rs.CongestionThreshold) / (1 - rs.CongestionThreshold)
	return 1 + u + 100*over*over
}

// ObserveBlock folds one block's usage into the utilization average and
// updates the congestion flag. capacityMicros is the block's CPU budget.
func (rs *ResourceState) ObserveBlock(usedMicros, capacityMicros int64) {
	if capacityMicros <= 0 {
		return
	}
	u := float64(usedMicros) / float64(capacityMicros)
	if u > 1 {
		u = 1
	}
	const alpha = 0.05
	rs.utilEMA = rs.utilEMA*(1-alpha) + u*alpha
	if rs.utilEMA >= rs.CongestionThreshold {
		rs.congested = true
	} else if rs.utilEMA < rs.CongestionThreshold*0.75 {
		// Hysteresis: leave congestion only after utilization has dropped
		// well below the trigger, as eosio's greylist behaviour does.
		rs.congested = false
	}
}

// chargeCPU attempts to bill micros of CPU to the account at time now.
// It returns false when the account has exhausted its allowance, which is
// exactly the failure EIDOS miners hit once the chain congested.
func (rs *ResourceState) chargeCPU(r *Resources, now time.Time, micros int64) bool {
	if now.Sub(r.windowStart) >= rs.Window {
		r.windowStart = now
		r.cpuUsedMicros = 0
	}
	limit := rs.accountLimitMicros(r)
	if r.cpuUsedMicros+micros > limit {
		return false
	}
	r.cpuUsedMicros += micros
	return true
}

// accountLimitMicros computes the account's CPU allowance for one window.
// In normal mode accounts may consume far more than their stake guarantees
// (the elastic multiplier, plus a small free allowance that lets unstaked
// casual users play); once the network congests, only the stake-
// proportional guarantee remains — the exact mechanism that locked casual
// gamers out during the EIDOS flood (§4.1).
func (rs *ResourceState) accountLimitMicros(r *Resources) int64 {
	if rs.totalStaked <= 0 {
		return 0
	}
	windowBudget := rs.CPUMicrosPerSecond * int64(rs.Window/time.Second)
	guaranteed := float64(windowBudget) * float64(r.cpuWeight()) / float64(rs.totalStaked)
	if rs.congested {
		if guaranteed < 1 {
			return 0
		}
		return int64(guaranteed)
	}
	elastic := guaranteed * float64(rs.ElasticMultiplier)
	if free := float64(windowBudget) / 10_000; elastic < free {
		elastic = free
	}
	if elastic > float64(windowBudget) {
		elastic = float64(windowBudget)
	}
	return int64(elastic)
}

// Stake adds amount to the account's CPU stake and the global total.
func (rs *ResourceState) Stake(r *Resources, cpu, net int64) {
	r.CPUStaked += cpu
	r.NETStaked += net
	rs.totalStaked += cpu
}

// Unstake removes stake; amounts are clamped to the current stake.
func (rs *ResourceState) Unstake(r *Resources, cpu, net int64) {
	if cpu > r.CPUStaked {
		cpu = r.CPUStaked
	}
	if net > r.NETStaked {
		net = r.NETStaked
	}
	r.CPUStaked -= cpu
	r.NETStaked -= net
	rs.totalStaked -= cpu
}

// Rent adds REX-rented CPU weight to the account (30-day rental in eosio;
// the simulation does not expire rentals inside the 3-month window).
func (rs *ResourceState) Rent(r *Resources, cpuWeight int64) {
	r.CPURented += cpuWeight
	rs.totalStaked += cpuWeight
}

// RAMMarket is the Bancor-style connector eosio uses to price RAM. Buying
// RAM removes bytes from the connector and deposits EOS, moving the price.
type RAMMarket struct {
	BaseBytes  int64 // RAM remaining in the connector
	QuoteFunds int64 // EOS (raw) in the connector
}

// NewRAMMarket seeds the market; defaults sized so early buys are cheap.
func NewRAMMarket() *RAMMarket {
	return &RAMMarket{BaseBytes: 64 << 30, QuoteFunds: 10_000_000_0000}
}

// BuyBytes purchases bytes for the EOS cost returned; it implements the
// constant-product update. Returns the cost in raw EOS.
func (m *RAMMarket) BuyBytes(bytes int64) int64 {
	if bytes <= 0 || bytes >= m.BaseBytes {
		return 0
	}
	// cost = quote * bytes / (base - bytes) (Bancor with CW=1/2 simplified
	// to constant product, which preserves the price-impact property).
	cost := m.QuoteFunds * bytes / (m.BaseBytes - bytes)
	if cost < 1 {
		cost = 1
	}
	m.BaseBytes -= bytes
	m.QuoteFunds += cost
	return cost
}

// BuyForEOS spends raw EOS and returns the bytes received.
func (m *RAMMarket) BuyForEOS(eosRaw int64) int64 {
	if eosRaw <= 0 {
		return 0
	}
	bytes := m.BaseBytes * eosRaw / (m.QuoteFunds + eosRaw)
	m.BaseBytes -= bytes
	m.QuoteFunds += eosRaw
	return bytes
}

// PricePerKB returns the current marginal RAM price in raw EOS per KiB.
func (m *RAMMarket) PricePerKB() float64 {
	if m.BaseBytes == 0 {
		return 0
	}
	return float64(m.QuoteFunds) / float64(m.BaseBytes) * 1024
}
