package eos

import (
	"fmt"

	"repro/internal/chain"
)

// TokenState tracks balances for every token standard contract on the chain
// (eosio.token for EOS itself, eidosonecoin for EIDOS, lynxtoken123, …).
// Balances are keyed by (contract, symbol, holder), matching how eosio.token
// scopes its tables.
type TokenState struct {
	balances map[tokenKey]int64
	supply   map[supplyKey]int64
	maxIssue map[supplyKey]int64
	// precision per (contract, symbol); EOS uses 4, EIDOS 4.
	precision map[supplyKey]uint8

	// journal records pre-images while a transaction executes so the chain
	// can roll back a partially applied multi-action transaction.
	journalBal map[tokenKey]int64
	journalSup map[supplyKey]int64
}

// Begin starts recording pre-images for rollback. Nested Begins are not
// supported; the chain serializes transaction execution.
func (t *TokenState) Begin() {
	t.journalBal = make(map[tokenKey]int64)
	t.journalSup = make(map[supplyKey]int64)
}

// Commit discards the journal, making the transaction's effects permanent.
func (t *TokenState) Commit() {
	t.journalBal, t.journalSup = nil, nil
}

// Rollback restores every balance and supply touched since Begin.
func (t *TokenState) Rollback() {
	for k, v := range t.journalBal {
		if v == 0 {
			delete(t.balances, k)
		} else {
			t.balances[k] = v
		}
	}
	for k, v := range t.journalSup {
		if v == 0 {
			delete(t.supply, k)
		} else {
			t.supply[k] = v
		}
	}
	t.journalBal, t.journalSup = nil, nil
}

func (t *TokenState) setBalance(k tokenKey, v int64) {
	if t.journalBal != nil {
		if _, seen := t.journalBal[k]; !seen {
			t.journalBal[k] = t.balances[k]
		}
	}
	t.balances[k] = v
}

func (t *TokenState) setSupply(k supplyKey, v int64) {
	if t.journalSup != nil {
		if _, seen := t.journalSup[k]; !seen {
			t.journalSup[k] = t.supply[k]
		}
	}
	t.supply[k] = v
}

type tokenKey struct {
	Contract Name
	Symbol   string
	Holder   Name
}

type supplyKey struct {
	Contract Name
	Symbol   string
}

// NewTokenState returns an empty token universe.
func NewTokenState() *TokenState {
	return &TokenState{
		balances:  make(map[tokenKey]int64),
		supply:    make(map[supplyKey]int64),
		maxIssue:  make(map[supplyKey]int64),
		precision: make(map[supplyKey]uint8),
	}
}

// Create registers a new token under contract with a maximum supply,
// mirroring eosio.token::create.
func (t *TokenState) Create(contract Name, symbol string, precision uint8, maxSupply int64) error {
	k := supplyKey{contract, symbol}
	if _, ok := t.precision[k]; ok {
		return fmt.Errorf("eos: token %s on %s already exists", symbol, contract)
	}
	t.precision[k] = precision
	t.maxIssue[k] = maxSupply
	return nil
}

// Issue mints quantity to holder, mirroring eosio.token::issue.
func (t *TokenState) Issue(contract Name, holder Name, quantity chain.Asset) error {
	k := supplyKey{contract, quantity.Symbol}
	prec, ok := t.precision[k]
	if !ok {
		return fmt.Errorf("eos: token %s on %s not created", quantity.Symbol, contract)
	}
	if prec != quantity.Precision {
		return fmt.Errorf("eos: precision mismatch issuing %s", quantity)
	}
	if quantity.Amount <= 0 {
		return fmt.Errorf("eos: must issue positive quantity")
	}
	if t.supply[k]+quantity.Amount > t.maxIssue[k] {
		return fmt.Errorf("eos: issue would exceed max supply of %s", quantity.Symbol)
	}
	t.setSupply(k, t.supply[k]+quantity.Amount)
	hk := tokenKey{contract, quantity.Symbol, holder}
	t.setBalance(hk, t.balances[hk]+quantity.Amount)
	return nil
}

// Transfer moves quantity from one holder to another. It enforces the
// overdraw rule that makes EOS transfers meaningful value movements.
func (t *TokenState) Transfer(contract Name, from, to Name, quantity chain.Asset) error {
	if quantity.Amount <= 0 {
		return fmt.Errorf("eos: must transfer positive quantity, got %s", quantity)
	}
	if from == to {
		return fmt.Errorf("eos: cannot transfer to self")
	}
	k := supplyKey{contract, quantity.Symbol}
	if _, ok := t.precision[k]; !ok {
		return fmt.Errorf("eos: token %s on %s not created", quantity.Symbol, contract)
	}
	fk := tokenKey{contract, quantity.Symbol, from}
	if t.balances[fk] < quantity.Amount {
		return fmt.Errorf("eos: overdrawn balance: %s has %d, needs %d %s",
			from, t.balances[fk], quantity.Amount, quantity.Symbol)
	}
	tk := tokenKey{contract, quantity.Symbol, to}
	t.setBalance(fk, t.balances[fk]-quantity.Amount)
	t.setBalance(tk, t.balances[tk]+quantity.Amount)
	return nil
}

// Balance returns holder's balance of symbol under contract.
func (t *TokenState) Balance(contract, holder Name, symbol string) chain.Asset {
	k := supplyKey{contract, symbol}
	return chain.Asset{
		Amount:    t.balances[tokenKey{contract, symbol, holder}],
		Precision: t.precision[k],
		Symbol:    symbol,
	}
}

// Supply returns the circulating supply of symbol under contract.
func (t *TokenState) Supply(contract Name, symbol string) int64 {
	return t.supply[supplyKey{contract, symbol}]
}

// TotalHeld sums all balances of symbol under contract; used by conservation
// tests (supply is conserved by transfers).
func (t *TokenState) TotalHeld(contract Name, symbol string) int64 {
	var total int64
	for k, v := range t.balances {
		if k.Contract == contract && k.Symbol == symbol {
			total += v
		}
	}
	return total
}
