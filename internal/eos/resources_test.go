package eos

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
)

func TestCPUWindowDecay(t *testing.T) {
	rs := NewResourceState()
	r := &Resources{}
	rs.Stake(r, 1_000_000, 0)
	now := chain.ObservationStart

	// Exhaust most of the allowance.
	limit := rs.accountLimitMicros(r)
	if limit <= 0 {
		t.Fatal("staked account has no allowance")
	}
	if !rs.chargeCPU(r, now, limit-1) {
		t.Fatal("charge within limit refused")
	}
	if rs.chargeCPU(r, now, 2) {
		t.Fatal("charge beyond limit accepted")
	}
	// After the decay window passes, usage resets.
	later := now.Add(rs.Window + time.Second)
	if !rs.chargeCPU(r, later, limit-1) {
		t.Fatal("window did not reset usage")
	}
}

func TestFreeQuotaOnlyWhenUncongested(t *testing.T) {
	rs := NewResourceState()
	staked := &Resources{}
	rs.Stake(staked, 1_000_000, 0) // someone must hold stake for quotas to exist
	pauper := &Resources{}

	// Normal mode: the free allowance lets zero-stake accounts act.
	if limit := rs.accountLimitMicros(pauper); limit <= 0 {
		t.Fatalf("uncongested free quota = %d", limit)
	}
	for i := 0; i < 300; i++ {
		rs.ObserveBlock(1_000_000, 1_000_000)
	}
	if !rs.Congested() {
		t.Fatal("did not congest")
	}
	// Congestion strips the free allowance: stake-proportional only.
	if limit := rs.accountLimitMicros(pauper); limit != 0 {
		t.Fatalf("congested zero-stake quota = %d, want 0", limit)
	}
	if limit := rs.accountLimitMicros(staked); limit <= 0 {
		t.Fatal("staked account lost its guarantee during congestion")
	}
}

func TestUnstakeClamps(t *testing.T) {
	rs := NewResourceState()
	r := &Resources{}
	rs.Stake(r, 100, 50)
	rs.Unstake(r, 1000, 1000) // more than staked
	if r.CPUStaked != 0 || r.NETStaked != 0 {
		t.Fatalf("negative stake: %+v", r)
	}
}

func TestRentIncreasesWeight(t *testing.T) {
	rs := NewResourceState()
	whale := &Resources{}
	rs.Stake(whale, 1_000_000_000, 0) // dominant staker so shares are small
	r := &Resources{}
	rs.Stake(r, 100, 0)
	// Evaluate under congestion, where quotas are strictly proportional.
	for i := 0; i < 300; i++ {
		rs.ObserveBlock(1_000_000, 1_000_000)
	}
	before := rs.accountLimitMicros(r)
	rs.Rent(r, 1_000_000)
	if after := rs.accountLimitMicros(r); after <= before {
		t.Fatalf("rental did not raise the quota: %d -> %d", before, after)
	}
}

func TestRAMMarketMonotonicPriceProperty(t *testing.T) {
	f := func(buys []uint16) bool {
		m := NewRAMMarket()
		prev := m.PricePerKB()
		for _, b := range buys {
			bytes := int64(b)%65536 + 1
			cost := m.BuyBytes(bytes)
			if cost < 0 {
				return false
			}
			p := m.PricePerKB()
			if p < prev { // buying RAM can only raise the price
				return false
			}
			prev = p
		}
		return m.BaseBytes > 0 && m.QuoteFunds > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRAMBuyForEOSRoundTrip(t *testing.T) {
	m := NewRAMMarket()
	bytes := m.BuyForEOS(1_000_0000)
	if bytes <= 0 {
		t.Fatal("no bytes for 100 EOS")
	}
	// A later identical purchase yields fewer bytes (price impact).
	if again := m.BuyForEOS(1_000_0000); again > bytes {
		t.Fatalf("price impact missing: %d then %d bytes", bytes, again)
	}
}

// TestProducerScheduleFairnessProperty: over full rounds, every producer
// bakes exactly BlocksPerProducer blocks per round.
func TestProducerScheduleFairnessProperty(t *testing.T) {
	f := func(seed uint8) bool {
		producers := int(seed%5) + 2
		perProducer := int(seed%3) + 1
		cfg := DefaultConfig(1000)
		cfg.NumProducers = producers
		cfg.BlocksPerProducer = perProducer
		c := New(cfg)
		counts := map[Name]int{}
		rounds := 3
		for i := 0; i < producers*perProducer*rounds; i++ {
			counts[c.ProduceBlock().Producer]++
		}
		for _, n := range counts {
			if n != perProducer*rounds {
				return false
			}
		}
		return len(counts) == producers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
