package eos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/chain"
)

// Config parameterizes a simulated EOS chain. TimeScale compresses the
// simulation: a TimeScale of 1000 makes blocks 1000× rarer (and workloads
// generate 1000× fewer transactions) while preserving every reported share
// and ranking — see DESIGN.md's substitution table.
type Config struct {
	Seed          int64
	Start         time.Time
	BlockInterval time.Duration
	// CPUMicrosPerAction is the billed cost of one user action.
	CPUMicrosPerAction int64
	// BlockCPUCapacityMicros is the chain's CPU budget per block in real
	// (undilated) terms: 200 ms per 0.5 s block on main net. Per-block
	// action counts are scale-invariant under time dilation, so utilization
	// fractions stay comparable at any scale.
	BlockCPUCapacityMicros int64
	// NumProducers is the size of the active producer schedule (21 on EOS).
	NumProducers int
	// BlocksPerProducer is the consecutive blocks each producer bakes per
	// round (6 on EOS, giving the 126-block round the whitepaper defines).
	BlocksPerProducer int
}

// DefaultConfig returns main-net-shaped parameters at the given time scale.
func DefaultConfig(timeScale int64) Config {
	if timeScale < 1 {
		timeScale = 1
	}
	return Config{
		Seed:                   1,
		Start:                  chain.ObservationStart,
		BlockInterval:          time.Duration(timeScale) * 500 * time.Millisecond,
		CPUMicrosPerAction:     300,
		BlockCPUCapacityMicros: 200_000,
		NumProducers:           21,
		BlocksPerProducer:      6,
	}
}

// ErrInsufficientCPU is returned when the payer account has exhausted its
// CPU allowance — the paper's §4.1 describes exactly this failure mode for
// unstaked gamers once EIDOS pushed the network into congestion mode.
var ErrInsufficientCPU = errors.New("eos: insufficient CPU allowance")

// Chain is the simulated EOS blockchain.
type Chain struct {
	cfg       Config
	clock     *chain.Clock
	producers []Name
	accounts  map[Name]*Account
	tokens    *TokenState
	res       *ResourceState
	ram       *RAMMarket
	contracts map[Name]Contract
	blocks    []*Block
	pending   []*Transaction

	// RejectedCPU counts transactions refused for CPU exhaustion; the
	// congestion case study asserts this spikes after the EIDOS launch.
	RejectedCPU int64
	// RejectedOther counts transactions refused for any other reason.
	RejectedOther int64
}

// New creates a chain with system accounts, the EOS token, an active
// producer schedule and the system/token contracts installed.
func New(cfg Config) *Chain {
	if cfg.NumProducers <= 0 {
		cfg.NumProducers = 21
	}
	if cfg.BlocksPerProducer <= 0 {
		cfg.BlocksPerProducer = 6
	}
	if cfg.BlockInterval <= 0 {
		cfg.BlockInterval = 500 * time.Millisecond
	}
	if cfg.CPUMicrosPerAction <= 0 {
		cfg.CPUMicrosPerAction = 300
	}
	if cfg.BlockCPUCapacityMicros <= 0 {
		cfg.BlockCPUCapacityMicros = 200_000
	}
	if cfg.Start.IsZero() {
		cfg.Start = chain.ObservationStart
	}
	c := &Chain{
		cfg:       cfg,
		clock:     chain.NewClock(cfg.Start, cfg.BlockInterval),
		accounts:  make(map[Name]*Account),
		tokens:    NewTokenState(),
		res:       NewResourceState(),
		ram:       NewRAMMarket(),
		contracts: make(map[Name]Contract),
	}
	// CPU budget must track the (possibly dilated) block interval so that
	// utilization fractions are scale-invariant.
	c.res.CPUMicrosPerSecond = 400_000

	c.genesis()
	return c
}

func (c *Chain) genesis() {
	for _, sys := range []Name{SystemAccount, TokenAccount, MsigAccount, WrapAccount,
		RexAccount, RAMAccount, StakeAccount, NamesAccount} {
		c.accounts[sys] = &Account{Name: sys, Created: c.cfg.Start, System: true,
			Privileged: sys == SystemAccount || sys == MsigAccount || sys == WrapAccount}
	}
	c.contracts[SystemAccount] = &SystemContract{}
	c.contracts[TokenAccount] = &TokenContract{Account: TokenAccount}

	// The EOS core token with a main-net-like supply held by eosio.
	const maxSupply = 10_000_000_000_0000 // 10B EOS at 4 decimals
	if err := c.tokens.Create(TokenAccount, "EOS", 4, maxSupply); err != nil {
		panic(err)
	}
	if err := c.tokens.Issue(TokenAccount, SystemAccount, chain.EOSAsset(1_000_000_000_0000)); err != nil {
		panic(err)
	}

	// Active producer schedule: prodname11111 … prodname1121-like names.
	alphabet := "12345abcdefghijklmnopqrstu"
	for i := 0; i < c.cfg.NumProducers; i++ {
		name := MustName("prod" + string(alphabet[i%len(alphabet)]) + "block")
		if _, dup := c.accounts[name]; dup {
			name = MustName("prod" + string(alphabet[i%len(alphabet)]) + "chain")
		}
		c.accounts[name] = &Account{Name: name, Created: c.cfg.Start}
		c.producers = append(c.producers, name)
	}
}

// Tokens exposes the token universe (contracts use it during execution).
func (c *Chain) Tokens() *TokenState { return c.tokens }

// Resources exposes the CPU market.
func (c *Chain) Resources() *ResourceState { return c.res }

// RAM exposes the RAM market.
func (c *Chain) RAM() *RAMMarket { return c.ram }

// Now returns the chain's simulated time.
func (c *Chain) Now() time.Time { return c.clock.Now() }

// HeadNum returns the most recent block number (0 when no block exists).
func (c *Chain) HeadNum() uint32 { return uint32(len(c.blocks)) }

// GetBlock returns block num (1-based), or nil when out of range.
func (c *Chain) GetBlock(num uint32) *Block {
	if num < 1 || int(num) > len(c.blocks) {
		return nil
	}
	return c.blocks[num-1]
}

// HasAccount reports whether name exists.
func (c *Chain) HasAccount(name Name) bool {
	_, ok := c.accounts[name]
	return ok
}

// GetAccount returns the account record, or nil.
func (c *Chain) GetAccount(name Name) *Account { return c.accounts[name] }

// Producers returns the active producer schedule.
func (c *Chain) Producers() []Name { return c.producers }

// CreateAccount registers a fresh account created by creator.
func (c *Chain) CreateAccount(name, creator Name) error {
	if !name.Valid() || name == 0 {
		return fmt.Errorf("eos: invalid account name %q", name.String())
	}
	if _, dup := c.accounts[name]; dup {
		return fmt.Errorf("eos: account %s already exists", name)
	}
	c.accounts[name] = &Account{Name: name, Created: c.clock.Now(), Creator: creator}
	return nil
}

// SetContract installs code on an account, replacing any previous handler.
func (c *Chain) SetContract(account Name, contract Contract) error {
	if !c.HasAccount(account) {
		if err := c.CreateAccount(account, SystemAccount); err != nil {
			return err
		}
	}
	c.contracts[account] = contract
	return nil
}

func (c *Chain) account(act Action, key string) *Account {
	n, err := ParseName(act.Data[key])
	if err != nil {
		return nil
	}
	return c.accounts[n]
}

// PushTransaction queues a transaction for the next block.
func (c *Chain) PushTransaction(actions ...Action) {
	c.pending = append(c.pending, &Transaction{Actions: actions})
}

// PendingCount returns the number of queued transactions.
func (c *Chain) PendingCount() int { return len(c.pending) }

// ProduceBlock executes all pending transactions under resource accounting,
// assembles the block, advances the clock and returns the block. Rejected
// transactions are counted but never included — matching EOS, where failed
// transactions leave no on-chain trace.
func (c *Chain) ProduceBlock() *Block {
	num := uint32(len(c.blocks) + 1)
	round := int(num-1) / c.cfg.BlocksPerProducer
	producer := c.producers[round%len(c.producers)]
	now := c.clock.Now()

	blk := &Block{
		Num:       num,
		Timestamp: now,
		Producer:  producer,
	}
	if len(c.blocks) > 0 {
		blk.Previous = c.blocks[len(c.blocks)-1].ID
	}

	var cpuUsed int64
	for _, tx := range c.pending {
		if err := c.applyTransaction(tx, now, &cpuUsed); err != nil {
			if errors.Is(err, ErrInsufficientCPU) {
				c.RejectedCPU++
			} else {
				c.RejectedOther++
			}
			continue
		}
		tx.ID = chain.HashOf("eos-tx", uint64(num), len(blk.Transactions),
			tx.Actions[0].Account.String(), tx.Actions[0].ActionName.String())
		blk.Transactions = append(blk.Transactions, *tx)
	}
	c.pending = c.pending[:0]

	c.res.ObserveBlock(cpuUsed, c.cfg.BlockCPUCapacityMicros)

	blk.ID = chain.HashOf("eos-block", uint64(num), producer.String(), now.UnixNano())
	c.blocks = append(c.blocks, blk)
	c.clock.Tick()
	return blk
}

// applyTransaction bills CPU, then executes the action queue (which may grow
// through inline emissions) atomically against token state.
func (c *Chain) applyTransaction(tx *Transaction, now time.Time, cpuUsed *int64) error {
	if len(tx.Actions) == 0 {
		return fmt.Errorf("eos: empty transaction")
	}
	payerName := tx.Actions[0].Actor()
	payer := c.accounts[payerName]
	if payer == nil {
		return fmt.Errorf("eos: unknown payer %s", payerName)
	}
	cost := c.cfg.CPUMicrosPerAction * int64(len(tx.Actions))
	if !payer.System && !payer.Privileged {
		if !c.res.chargeCPU(&payer.Resources, now, cost) {
			return ErrInsufficientCPU
		}
	}
	*cpuUsed += cost
	userActions := len(tx.Actions)

	c.tokens.Begin()
	queue := append([]Action(nil), tx.Actions...)
	executed := make([]Action, 0, len(queue)+2)
	ctx := &Context{Chain: c}
	ctx.emit = func(a Action) error {
		queue = append(queue, a)
		return nil
	}
	for i := 0; i < len(queue); i++ {
		act := queue[i]
		contract, ok := c.contracts[act.Account]
		if !ok {
			c.tokens.Rollback()
			return fmt.Errorf("eos: account %s has no contract", act.Account)
		}
		ctx.depth = 0
		if act.Inline {
			ctx.depth = 1
		}
		if err := contract.Apply(ctx, act); err != nil {
			c.tokens.Rollback()
			return err
		}
		executed = append(executed, act)
	}
	c.tokens.Commit()
	// Inline actions emitted during execution are billed to the payer at
	// actual usage, as eosio does; they are never grounds for rejection of
	// an already-executed transaction.
	if extra := len(executed) - userActions; extra > 0 {
		extraCost := c.cfg.CPUMicrosPerAction * int64(extra)
		if !payer.System && !payer.Privileged {
			payer.Resources.cpuUsedMicros += extraCost
		}
		*cpuUsed += extraCost
	}
	tx.Actions = executed
	return nil
}
