package eos

import (
	"time"

	"repro/internal/chain"
)

// PermissionLevel identifies the actor authorizing an action, mirroring
// eosio's {actor, permission} pairs.
type PermissionLevel struct {
	Actor      Name   `json:"actor"`
	Permission string `json:"permission"`
}

// Action is one contract invocation. Account is the contract that defines
// the action, ActionName the method, and Data its decoded payload. Because
// non-system contracts define arbitrary actions (the paper stresses how this
// complicates classification), Data is a free-form string map with
// conventional keys ("from", "to", "quantity", "memo", "buyer", "seller").
type Action struct {
	Account       Name              `json:"account"`
	ActionName    Name              `json:"name"`
	Authorization []PermissionLevel `json:"authorization"`
	Data          map[string]string `json:"data"`
	// Inline marks actions emitted by contracts during execution rather
	// than signed by users (e.g. the EIDOS refund leg of a boomerang).
	Inline bool `json:"inline,omitempty"`
}

// Actor returns the first authorizer, or 0 when the action carries none.
func (a Action) Actor() Name {
	if len(a.Authorization) == 0 {
		return 0
	}
	return a.Authorization[0].Actor
}

// NewAction builds a user-signed action authorized by actor.
func NewAction(contract, name, actor Name, data map[string]string) Action {
	if data == nil {
		data = map[string]string{}
	}
	return Action{
		Account:       contract,
		ActionName:    name,
		Authorization: []PermissionLevel{{Actor: actor, Permission: "active"}},
		Data:          data,
	}
}

// Transaction groups actions executed atomically. ID is assigned when the
// transaction is accepted into a block.
type Transaction struct {
	ID      chain.Hash `json:"id"`
	Actions []Action   `json:"actions"`
}

// Block is a produced EOS block.
type Block struct {
	Num          uint32        `json:"block_num"`
	ID           chain.Hash    `json:"id"`
	Previous     chain.Hash    `json:"previous"`
	Timestamp    time.Time     `json:"timestamp"`
	Producer     Name          `json:"producer"`
	Transactions []Transaction `json:"transactions"`
}

// ActionCount returns the number of actions (user plus inline) in the block;
// the paper's Figure 1 tabulates actions, not transactions.
func (b *Block) ActionCount() int {
	n := 0
	for _, tx := range b.Transactions {
		n += len(tx.Actions)
	}
	return n
}

// Account is the on-chain account record.
type Account struct {
	Name       Name
	Created    time.Time
	Privileged bool      // eosio, eosio.msig, eosio.wrap bypass authorization
	System     bool      // created at chain instantiation, managed by BPs
	Creator    Name      // account that ran newaccount
	Resources  Resources // CPU/NET stake and RAM holdings
}

// Common action names, parsed once.
var (
	ActTransfer     = MustName("transfer")
	ActOpen         = MustName("open")
	ActClose        = MustName("close")
	ActIssue        = MustName("issue")
	ActCreate       = MustName("create")
	ActRetire       = MustName("retire")
	ActNewAccount   = MustName("newaccount")
	ActBidName      = MustName("bidname")
	ActDeposit      = MustName("deposit")
	ActUpdateAuth   = MustName("updateauth")
	ActLinkAuth     = MustName("linkauth")
	ActDelegateBW   = MustName("delegatebw")
	ActUndelegateBW = MustName("undelegatebw")
	ActBuyRAM       = MustName("buyram")
	ActBuyRAMBytes  = MustName("buyrambytes")
	ActSellRAM      = MustName("sellram")
	ActRentCPU      = MustName("rentcpu")
	ActVoteProducer = MustName("voteproducer")
)
