// Package eos simulates the EOS blockchain at the fidelity the paper's
// measurements require: named accounts, action-based transactions executed
// by contracts, the eosio.token standard, the CPU/NET/RAM resource market
// with congestion mode, a 21-producer DPoS schedule, and the EIDOS airdrop
// contract whose "boomerang" transactions dominated the chain after
// November 1, 2019.
package eos

import (
	"fmt"
	"strings"
)

// Name is EOS's base32-packed account and action identifier: up to 12
// characters from ".12345abcdefghijklmnopqrstuvwxyz", packed into a uint64
// exactly as eosio does (5 bits per character, 4 bits for the 13th).
type Name uint64

const nameAlphabet = ".12345abcdefghijklmnopqrstuvwxyz"

func charToSymbol(c byte) (uint64, error) {
	switch {
	case c >= 'a' && c <= 'z':
		return uint64(c-'a') + 6, nil
	case c >= '1' && c <= '5':
		return uint64(c-'1') + 1, nil
	case c == '.':
		return 0, nil
	}
	return 0, fmt.Errorf("eos: invalid name character %q", c)
}

// ParseName converts a string into a packed Name. Names longer than 13
// characters or containing invalid characters are rejected.
func ParseName(s string) (Name, error) {
	if len(s) > 13 {
		return 0, fmt.Errorf("eos: name %q longer than 13 chars", s)
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c, err := charToSymbol(s[i])
		if err != nil {
			return 0, fmt.Errorf("eos: name %q: %w", s, err)
		}
		if i < 12 {
			n |= (c & 0x1f) << uint(64-5*(i+1))
		} else {
			if c > 0x0f {
				return 0, fmt.Errorf("eos: 13th char of %q out of range", s)
			}
			n |= c & 0x0f
		}
	}
	return Name(n), nil
}

// MustName is ParseName for compile-time-known names; it panics on error.
func MustName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String unpacks the name back into its textual form, trimming the trailing
// dots that padding introduces.
func (n Name) String() string {
	if n == 0 {
		return ""
	}
	var sb strings.Builder
	v := uint64(n)
	for i := 0; i < 13; i++ {
		var idx uint64
		if i < 12 {
			idx = (v >> uint(64-5*(i+1))) & 0x1f
		} else {
			idx = v & 0x0f
		}
		sb.WriteByte(nameAlphabet[idx])
	}
	return strings.TrimRight(sb.String(), ".")
}

// Valid reports whether the packed representation round-trips, i.e. the name
// obeys the suffix-padding rules.
func (n Name) Valid() bool {
	p, err := ParseName(n.String())
	return err == nil && p == n
}

// Well-known system and application accounts used throughout the simulation.
// The application accounts are the top-traffic contracts from the paper's
// Figures 4 and 5.
var (
	SystemAccount   = MustName("eosio")
	TokenAccount    = MustName("eosio.token")
	MsigAccount     = MustName("eosio.msig")
	WrapAccount     = MustName("eosio.wrap")
	RexAccount      = MustName("eosio.rex")
	RAMAccount      = MustName("eosio.ram")
	StakeAccount    = MustName("eosio.stake")
	NamesAccount    = MustName("eosio.names")
	EIDOSContract   = MustName("eidosonecoin")
	PornSite        = MustName("pornhashbaby")
	BetDiceGroup    = MustName("betdicegroup")
	BetDiceTasks    = MustName("betdicetasks")
	BetDiceAdmin    = MustName("betdiceadmin")
	BetDiceBacca    = MustName("betdicebacca")
	BetDiceSicbo    = MustName("betdicesicbo")
	WhaleExTrust    = MustName("whaleextrust")
	SanguoGame      = MustName("eossanguoone")
	MyKeyPostman    = MustName("mykeypostman")
	MyKeyLogic      = MustName("mykeylogica1")
	BlueBetProxy    = MustName("bluebetproxy")
	BlueBetTexas    = MustName("bluebettexas")
	BlueBetJacks    = MustName("bluebetjacks")
	BlueBetBcrat    = MustName("bluebetbcrat")
	BlueBetUser     = MustName("bluebet2user")
	LynxToken       = MustName("lynxtoken123")
	ClearSettlement = MustName("clearsettres")
)
