package eos

import (
	"testing"
	"testing/quick"

	"repro/internal/chain"
)

func newTokenFixture(t *testing.T) *TokenState {
	t.Helper()
	ts := NewTokenState()
	if err := ts.Create(TokenAccount, "EOS", 4, 1_000_000_0000); err != nil {
		t.Fatal(err)
	}
	if err := ts.Issue(TokenAccount, MustName("alice"), chain.EOSAsset(100_0000)); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTokenTransfer(t *testing.T) {
	ts := newTokenFixture(t)
	alice, bob := MustName("alice"), MustName("bob")
	if err := ts.Transfer(TokenAccount, alice, bob, chain.EOSAsset(30_0000)); err != nil {
		t.Fatal(err)
	}
	if got := ts.Balance(TokenAccount, alice, "EOS").Amount; got != 70_0000 {
		t.Fatalf("alice = %d", got)
	}
	if got := ts.Balance(TokenAccount, bob, "EOS").Amount; got != 30_0000 {
		t.Fatalf("bob = %d", got)
	}
}

func TestTokenOverdraw(t *testing.T) {
	ts := newTokenFixture(t)
	err := ts.Transfer(TokenAccount, MustName("alice"), MustName("bob"), chain.EOSAsset(200_0000))
	if err == nil {
		t.Fatal("overdraw succeeded")
	}
}

func TestTokenRejectsSelfAndNonPositive(t *testing.T) {
	ts := newTokenFixture(t)
	alice := MustName("alice")
	if err := ts.Transfer(TokenAccount, alice, alice, chain.EOSAsset(1)); err == nil {
		t.Fatal("self transfer succeeded")
	}
	if err := ts.Transfer(TokenAccount, alice, MustName("bob"), chain.EOSAsset(0)); err == nil {
		t.Fatal("zero transfer succeeded")
	}
	if err := ts.Transfer(TokenAccount, alice, MustName("bob"), chain.EOSAsset(-5)); err == nil {
		t.Fatal("negative transfer succeeded")
	}
}

func TestTokenMaxSupply(t *testing.T) {
	ts := newTokenFixture(t)
	err := ts.Issue(TokenAccount, MustName("alice"), chain.EOSAsset(1_000_000_0000))
	if err == nil {
		t.Fatal("issue beyond max supply succeeded")
	}
}

func TestTokenDuplicateCreate(t *testing.T) {
	ts := newTokenFixture(t)
	if err := ts.Create(TokenAccount, "EOS", 4, 1); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	// Same symbol under a different contract is a different token (the IOU
	// ambiguity the paper highlights for XRP exists on EOS too).
	if err := ts.Create(EIDOSContract, "EOS", 4, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestTokenJournalRollback(t *testing.T) {
	ts := newTokenFixture(t)
	alice, bob := MustName("alice"), MustName("bob")
	ts.Begin()
	if err := ts.Transfer(TokenAccount, alice, bob, chain.EOSAsset(10_0000)); err != nil {
		t.Fatal(err)
	}
	if err := ts.Issue(TokenAccount, bob, chain.EOSAsset(5_0000)); err != nil {
		t.Fatal(err)
	}
	ts.Rollback()
	if got := ts.Balance(TokenAccount, alice, "EOS").Amount; got != 100_0000 {
		t.Fatalf("alice after rollback = %d", got)
	}
	if got := ts.Balance(TokenAccount, bob, "EOS").Amount; got != 0 {
		t.Fatalf("bob after rollback = %d", got)
	}
	if got := ts.Supply(TokenAccount, "EOS"); got != 100_0000 {
		t.Fatalf("supply after rollback = %d", got)
	}
}

func TestTokenJournalCommit(t *testing.T) {
	ts := newTokenFixture(t)
	alice, bob := MustName("alice"), MustName("bob")
	ts.Begin()
	if err := ts.Transfer(TokenAccount, alice, bob, chain.EOSAsset(10_0000)); err != nil {
		t.Fatal(err)
	}
	ts.Commit()
	if got := ts.Balance(TokenAccount, bob, "EOS").Amount; got != 10_0000 {
		t.Fatalf("bob after commit = %d", got)
	}
}

// TestTokenConservationProperty checks that arbitrary transfer sequences
// conserve total supply — the invariant that makes "balance change" a valid
// wash-trading signal in §4.1.
func TestTokenConservationProperty(t *testing.T) {
	holders := []Name{MustName("h1"), MustName("h2"), MustName("h3"), MustName("h4")}
	f := func(moves []uint16) bool {
		ts := NewTokenState()
		if err := ts.Create(TokenAccount, "EOS", 4, 1_000_000); err != nil {
			return false
		}
		if err := ts.Issue(TokenAccount, holders[0], chain.EOSAsset(500_000)); err != nil {
			return false
		}
		for _, m := range moves {
			from := holders[int(m)%len(holders)]
			to := holders[int(m>>2)%len(holders)]
			amt := int64(m%997) + 1
			_ = ts.Transfer(TokenAccount, from, to, chain.EOSAsset(amt)) // failures fine
		}
		return ts.TotalHeld(TokenAccount, "EOS") == 500_000 &&
			ts.Supply(TokenAccount, "EOS") == 500_000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
