package eos

import (
	"fmt"

	"repro/internal/chain"
)

// Context is passed to contracts while they execute an action. Contracts may
// emit inline actions (Emit) which execute within the same transaction —
// the mechanism behind EIDOS's refund-plus-payout boomerang.
type Context struct {
	Chain *Chain
	TxID  chain.Hash
	depth int
	emit  func(Action) error
}

// Emit schedules an inline action for execution inside the current
// transaction. Recursion is bounded to prevent notification loops.
func (c *Context) Emit(a Action) error {
	if c.depth >= 4 {
		return fmt.Errorf("eos: inline action depth exceeded")
	}
	a.Inline = true
	return c.emit(a)
}

// Contract executes actions addressed to its account.
type Contract interface {
	Apply(ctx *Context, act Action) error
}

// TransferObserver is implemented by contracts that react to incoming token
// transfers (eosio.token notifies the recipient account). EIDOS mining works
// entirely through this hook.
type TransferObserver interface {
	OnTransfer(ctx *Context, tokenContract Name, from, to Name, quantity chain.Asset, memo string) error
}

// TokenContract implements the standard eosio.token interface for any token
// account. The paper classifies all actions on token contracts by this
// standardized interface, which is why the simulation routes both EOS and
// user tokens (EIDOS, LYNX, …) through the same code.
type TokenContract struct {
	Account Name
}

// Apply dispatches the standard token actions.
func (t *TokenContract) Apply(ctx *Context, act Action) error {
	tokens := ctx.Chain.Tokens()
	switch act.ActionName {
	case ActTransfer:
		from, err := ParseName(act.Data["from"])
		if err != nil {
			return fmt.Errorf("eos: transfer from: %w", err)
		}
		to, err := ParseName(act.Data["to"])
		if err != nil {
			return fmt.Errorf("eos: transfer to: %w", err)
		}
		qty, err := chain.ParseAsset(act.Data["quantity"])
		if err != nil {
			return fmt.Errorf("eos: transfer quantity: %w", err)
		}
		if !ctx.Chain.HasAccount(to) {
			return fmt.Errorf("eos: transfer to unknown account %s", to)
		}
		if err := tokens.Transfer(t.Account, from, to, qty); err != nil {
			return err
		}
		// Notify the recipient's contract, if it listens.
		if obs, ok := ctx.Chain.contracts[to].(TransferObserver); ok {
			return obs.OnTransfer(ctx, t.Account, from, to, qty, act.Data["memo"])
		}
		return nil
	case ActIssue:
		to, err := ParseName(act.Data["to"])
		if err != nil {
			return err
		}
		qty, err := chain.ParseAsset(act.Data["quantity"])
		if err != nil {
			return err
		}
		return tokens.Issue(t.Account, to, qty)
	case ActOpen, ActClose:
		// Row management only; balances are created lazily here.
		return nil
	case ActRetire:
		return nil
	default:
		return fmt.Errorf("eos: token contract %s has no action %s", t.Account, act.ActionName)
	}
}

// AppContract models the long tail of user-defined contracts — betting
// games, the porn site's bookkeeping, the role-playing game — whose actions
// the paper can only classify by manual labeling. It accepts any action
// (optionally restricted to a known set) and simply records invocation
// counts; the measurement pipeline never relies on their internal state.
type AppContract struct {
	Account Name
	// Known restricts accepted actions when non-empty.
	Known map[Name]bool
	// Calls counts invocations per action for test assertions.
	Calls map[Name]int64
}

// NewAppContract returns an application contract accepting the given
// actions, or any action when none are listed.
func NewAppContract(account Name, actions ...string) *AppContract {
	known := make(map[Name]bool, len(actions))
	for _, a := range actions {
		known[MustName(a)] = true
	}
	return &AppContract{Account: account, Known: known, Calls: make(map[Name]int64)}
}

// Apply accepts and records the action.
func (a *AppContract) Apply(_ *Context, act Action) error {
	if len(a.Known) > 0 && !a.Known[act.ActionName] {
		return fmt.Errorf("eos: contract %s has no action %s", a.Account, act.ActionName)
	}
	a.Calls[act.ActionName]++
	return nil
}

// OnTransfer lets application contracts receive tokens silently (games take
// deposits; the porn site takes payments).
func (a *AppContract) OnTransfer(*Context, Name, Name, Name, chain.Asset, string) error {
	return nil
}
