package eos

import (
	"testing"
	"testing/quick"
)

func TestNameRoundTrip(t *testing.T) {
	cases := []string{
		"eosio", "eosio.token", "eidosonecoin", "pornhashbaby",
		"betdicetasks", "a", "zzzzzzzzzzzz", "111", "a.b.c",
	}
	for _, s := range cases {
		n, err := ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		if got := n.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if !n.Valid() {
			t.Errorf("%q reported invalid", s)
		}
	}
}

func TestParseNameRejects(t *testing.T) {
	for _, s := range []string{"UPPER", "has space", "0zero", "6six", "waytoolongname"} {
		if _, err := ParseName(s); err == nil {
			t.Errorf("ParseName(%q) unexpectedly succeeded", s)
		}
	}
}

func TestNameOrderingMatchesEosio(t *testing.T) {
	// eosio sorts names by their packed uint64; later alphabet characters
	// pack higher. A few spot checks against known eosio behaviour.
	a := MustName("a")
	z := MustName("z")
	if a >= z {
		t.Fatal("'a' should pack below 'z'")
	}
	if MustName("eosio") == MustName("eosio.token") {
		t.Fatal("distinct names collided")
	}
}

func TestEmptyName(t *testing.T) {
	n, err := ParseName("")
	if err != nil || n != 0 {
		t.Fatalf("empty name: %v %v", n, err)
	}
	if n.String() != "" {
		t.Fatalf("zero name renders %q", n.String())
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	alphabet := "12345abcdefghijklmnopqrstuvwxyz" // no dots: dots only valid interior
	f := func(seed uint64, length uint8) bool {
		l := int(length)%12 + 1
		buf := make([]byte, l)
		for i := range buf {
			buf[i] = alphabet[seed%uint64(len(alphabet))]
			seed = seed*6364136223846793005 + 1442695040888963407
		}
		s := string(buf)
		n, err := ParseName(s)
		return err == nil && n.String() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
