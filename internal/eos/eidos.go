package eos

import (
	"fmt"

	"repro/internal/chain"
)

// EIDOSToken is the symbol airdropped by the eidosonecoin contract.
const EIDOSToken = "EIDOS"

// EIDOSPayoutBP is the payout rate in basis points of the contract's current
// EIDOS holdings per mining transfer: the paper documents 0.01 %.
const EIDOSPayoutBP = 1 // 1/10000

// EIDOSContractImpl reproduces the airdrop mechanics from §4.1: any EOS
// transfer to the contract is bounced straight back ("boomerang") together
// with 0.01 % of the EIDOS the contract still holds. Because EOS has no
// transaction fees, this turned idle CPU into free tokens and multiplied
// chain throughput by more than 10×.
type EIDOSContractImpl struct {
	TokenContract // the contract is itself a standard token (EIDOS)
	// Mines counts mining transfers for test assertions.
	Mines int64
}

// NewEIDOSContract returns the contract bound to the eidosonecoin account.
func NewEIDOSContract() *EIDOSContractImpl {
	return &EIDOSContractImpl{TokenContract: TokenContract{Account: EIDOSContract}}
}

// OnTransfer implements the boomerang: refund the EOS, pay out EIDOS.
func (e *EIDOSContractImpl) OnTransfer(ctx *Context, tokenContract Name, from, to Name, qty chain.Asset, memo string) error {
	// Only react to EOS arriving at the contract through eosio.token;
	// ignore the contract's own outbound legs and EIDOS transfers.
	if tokenContract != TokenAccount || to != EIDOSContract || from == EIDOSContract {
		return nil
	}
	e.Mines++
	// Leg 1: bounce the exact EOS amount back to the miner.
	refund := NewAction(TokenAccount, ActTransfer, EIDOSContract, map[string]string{
		"from":     EIDOSContract.String(),
		"to":       from.String(),
		"quantity": qty.String(),
		"memo":     "refund",
	})
	if err := ctx.Emit(refund); err != nil {
		return err
	}
	// Leg 2: pay 0.01% of the contract's current EIDOS balance.
	held := ctx.Chain.Tokens().Balance(EIDOSContract, EIDOSContract, EIDOSToken)
	payout := held.MulRat(EIDOSPayoutBP, 10_000)
	if payout.Amount <= 0 {
		return fmt.Errorf("eos: eidos reserves exhausted")
	}
	drop := NewAction(EIDOSContract, ActTransfer, EIDOSContract, map[string]string{
		"from":     EIDOSContract.String(),
		"to":       from.String(),
		"quantity": payout.String(),
		"memo":     "mined EIDOS",
	})
	return ctx.Emit(drop)
}
