// Shard codec primitives: the versioned, length-prefixed binary envelope
// distributed crawls serialize their drained shard state through, plus the
// bounds-checked primitive encoder/decoder the per-chain field schemas in
// internal/core are written against.
//
// Layout of a sealed shard blob:
//
//	magic   "SHRD"                      4 bytes
//	version uvarint                     1 (unfenced) or 2 (fenced)
//	fence   uvarint                     version 2 only: lease fence token
//	chain   uvarint length + bytes      archive-manifest chain name
//	body    uvarint length + bytes      chain-specific field schema
//	crc32   IEEE, 4 bytes little-endian over everything before it
//
// The envelope owns everything a coordinator needs before it understands
// the body: a newer producer is rejected by version, a truncated or
// bit-flipped transfer is rejected by length/checksum, and the chain name
// routes the body to the right decoder. The body schema itself is
// versioned implicitly through the envelope version: any field change
// bumps it. Version 2 carries the SAME body schema as version 1 plus one
// header field — the fence token a coordinated worker stamps from its
// lease lineage, so a zombie worker's stale shard is detectable before
// merge (see internal/coord). Version-1 blobs decode unchanged with fence
// 0 ("unfenced"), and unfenced emits keep producing version 1 so the
// canonical re-encode property is undisturbed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// ShardMagic prefixes every sealed shard blob.
const ShardMagic = "SHRD"

// ShardVersion is the newest shard envelope version this build reads and
// writes. Decoders refuse anything newer: a shard produced by a newer
// build may carry fields this build would silently drop from the merge.
const ShardVersion = 2

// shardVersionUnfenced is the version-1 envelope: no fence header. It is
// still what SealShard emits, so unfenced blobs stay byte-identical to
// what earlier builds produced.
const shardVersionUnfenced = 1

// ErrShardCorrupt marks blobs that fail structural validation (bad magic,
// truncation, checksum mismatch, trailing junk). Use errors.Is to detect.
var ErrShardCorrupt = errors.New("wire: corrupt shard blob")

// ShardEnc builds a shard body by appending primitives. The zero value is
// ready to use; Bytes returns the accumulated body for SealShard.
type ShardEnc struct {
	buf []byte
}

// Bytes returns the encoded body. The slice aliases the encoder's buffer.
func (e *ShardEnc) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *ShardEnc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zigzag) varint.
func (e *ShardEnc) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// String appends a length-prefixed string.
func (e *ShardEnc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bool appends one byte: 1 for true, 0 for false.
func (e *ShardEnc) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float appends a float64 as its IEEE 754 bits, fixed 8 bytes little-endian
// — bit-exact round-trips, no formatting loss.
func (e *ShardEnc) Float(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// Time appends a timestamp as a zero flag plus unix seconds and
// nanoseconds. The explicit flag matters: time.Unix of a zero time's
// components is not IsZero, and aggregate window bounds rely on zero
// meaning "never observed".
func (e *ShardEnc) Time(t time.Time) {
	if t.IsZero() {
		e.Bool(true)
		return
	}
	e.Bool(false)
	e.Varint(t.Unix())
	e.Varint(int64(t.Nanosecond()))
}

// ShardDec reads a shard body sealed by ShardEnc. It is sticky-error and
// bounds-checked: after the first malformed read every method returns the
// zero value, and no input — truncated, bit-flipped, hostile — can make it
// panic or allocate beyond the blob it was given.
type ShardDec struct {
	data []byte
	off  int
	err  error
}

// NewShardDec wraps a shard body for decoding.
func NewShardDec(data []byte) *ShardDec { return &ShardDec{data: data} }

// Err returns the first decode error, or nil.
func (d *ShardDec) Err() error { return d.err }

// Remaining returns how many bytes are left unread.
func (d *ShardDec) Remaining() int { return len(d.data) - d.off }

func (d *ShardDec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrShardCorrupt, fmt.Sprintf(format, args...))
	}
}

// Uvarint reads an unsigned varint.
func (d *ShardDec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *ShardDec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// String reads a length-prefixed string. The length is bounds-checked
// against the remaining input before anything is copied.
func (d *ShardDec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bool reads one byte as a boolean; any value other than 0 or 1 is corrupt.
func (d *ShardDec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.data[d.off]
	d.off++
	if b > 1 {
		d.fail("bool byte 0x%02x at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

// Float reads a fixed 8-byte float64.
func (d *ShardDec) Float() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v
}

// Time reads a timestamp written by ShardEnc.Time. Non-zero times decode
// in UTC, the location every deterministic render formats in.
func (d *ShardDec) Time() time.Time {
	if d.Bool() {
		return time.Time{}
	}
	sec := d.Varint()
	nsec := d.Varint()
	if d.err != nil {
		return time.Time{}
	}
	return time.Unix(sec, nsec).UTC()
}

// Count reads a collection length and bounds it against the remaining
// input: every element costs at least one encoded byte, so a corrupted
// length can never drive a decode loop or allocation past the blob itself.
func (d *ShardDec) Count() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail("collection length %d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// SealShard wraps an encoded body in the versioned, checksummed envelope.
// The blob is unfenced (version 1) — SealShardFenced adds a fence token.
func SealShard(chain string, body []byte) []byte {
	return SealShardFenced(chain, 0, body)
}

// SealShardFenced wraps an encoded body in the envelope, stamping the
// lease fence token when non-zero. Fence 0 means "unfenced" and produces
// the version-1 envelope byte-for-byte, so unfenced blobs stay canonical
// across builds; any other fence produces the version-2 envelope with the
// fence header.
func SealShardFenced(chain string, fence uint64, body []byte) []byte {
	blob := make([]byte, 0, len(ShardMagic)+len(chain)+len(body)+32)
	blob = append(blob, ShardMagic...)
	if fence == 0 {
		blob = binary.AppendUvarint(blob, shardVersionUnfenced)
	} else {
		blob = binary.AppendUvarint(blob, ShardVersion)
		blob = binary.AppendUvarint(blob, fence)
	}
	blob = binary.AppendUvarint(blob, uint64(len(chain)))
	blob = append(blob, chain...)
	blob = binary.AppendUvarint(blob, uint64(len(body)))
	blob = append(blob, body...)
	return binary.LittleEndian.AppendUint32(blob, crc32.ChecksumIEEE(blob))
}

// OpenShard validates a sealed blob's magic, version, lengths and checksum
// and returns the chain name and body, ignoring any fence header. The body
// aliases blob.
func OpenShard(blob []byte) (chain string, body []byte, err error) {
	chain, _, body, err = OpenShardFenced(blob)
	return chain, body, err
}

// OpenShardFenced validates a sealed blob's magic, version, lengths and
// checksum and returns the chain name, fence token (0 for version-1
// unfenced blobs) and body. The body aliases blob. Every failure mode —
// truncation anywhere, a flipped bit, trailing junk, a version from the
// future — is an error, never a panic.
func OpenShardFenced(blob []byte) (chain string, fence uint64, body []byte, err error) {
	if len(blob) < len(ShardMagic)+4 {
		return "", 0, nil, fmt.Errorf("%w: %d bytes is shorter than any sealed shard", ErrShardCorrupt, len(blob))
	}
	if string(blob[:len(ShardMagic)]) != ShardMagic {
		return "", 0, nil, fmt.Errorf("%w: bad magic %q", ErrShardCorrupt, blob[:len(ShardMagic)])
	}
	sum := binary.LittleEndian.Uint32(blob[len(blob)-4:])
	if got := crc32.ChecksumIEEE(blob[:len(blob)-4]); got != sum {
		return "", 0, nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrShardCorrupt, sum, got)
	}
	d := NewShardDec(blob[len(ShardMagic) : len(blob)-4])
	version := d.Uvarint()
	if d.Err() == nil && (version == 0 || version > ShardVersion) {
		return "", 0, nil, fmt.Errorf("wire: shard version %d not supported (this build reads up to %d)", version, ShardVersion)
	}
	if version >= ShardVersion {
		fence = d.Uvarint()
	}
	chain = d.String()
	n := d.Count()
	if err := d.Err(); err != nil {
		return "", 0, nil, err
	}
	body = d.data[d.off : d.off+n]
	d.off += n
	if d.Remaining() != 0 {
		return "", 0, nil, fmt.Errorf("%w: %d trailing bytes after body", ErrShardCorrupt, d.Remaining())
	}
	return chain, fence, body, nil
}

// ShardFence reads just the fence token of a sealed blob (0 = unfenced).
// The whole envelope is validated first: a fence read off a corrupt blob
// would be evidence of nothing.
func ShardFence(blob []byte) (uint64, error) {
	_, fence, _, err := OpenShardFenced(blob)
	return fence, err
}

// SetShardFence re-seals a sealed blob with the given fence token,
// preserving chain and body bytes exactly. It is how a worker stamps its
// lease fence onto a shard its chain-specific encoder produced unfenced —
// the encoder owns the body schema, the fence is transport metadata.
func SetShardFence(blob []byte, fence uint64) ([]byte, error) {
	chain, _, body, err := OpenShardFenced(blob)
	if err != nil {
		return nil, err
	}
	return SealShardFenced(chain, fence, body), nil
}
