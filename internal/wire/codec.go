package wire

import (
	"sync"
)

// maxInternEntries caps a codec's intern table. Hot strings (account and
// action names, producers, statuses, operation kinds) recur from the first
// blocks onward and stay interned; once unique strings (block hashes,
// transaction IDs) have filled the table, further unique strings simply
// allocate instead of growing it.
const maxInternEntries = 1 << 16

// Codec holds the reusable state for one encode/decode stream: the JSON
// lexer with its unescape scratch, an intern table that makes repeated
// strings allocation-free to decode, and the sorted-key scratch the
// encoders need to render maps exactly as encoding/json does. A Codec is
// not safe for concurrent use; recycle through GetCodec/PutCodec.
type Codec struct {
	lex    lexer
	intern map[string]string
	keys   []string
	// amounts is a free list of XRP amount structs recycled between the
	// transactions of successive ledger decodes.
	amounts []*XRPAmountJSON
}

// NewCodec returns a fresh codec with an empty intern table.
func NewCodec() *Codec {
	return &Codec{intern: make(map[string]string)}
}

var codecPool = sync.Pool{New: func() any { return NewCodec() }}

// GetCodec takes a codec from the pool. Codecs keep their intern tables
// across uses, so a recycled codec decodes recurring strings without
// allocating.
func GetCodec() *Codec { return codecPool.Get().(*Codec) }

// PutCodec returns a codec to the pool.
func PutCodec(c *Codec) {
	c.lex.data = nil
	codecPool.Put(c)
}

// str copies b into an owned string, interning it so the next occurrence
// costs a map hit instead of an allocation.
func (c *Codec) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := c.intern[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(c.intern) < maxInternEntries {
		c.intern[s] = s
	}
	return s
}

// Struct arenas: one pool per chain block shape. Get hands out a struct
// whose slices and maps keep the capacity earlier uses grew; the decoders
// and converters reset lengths and clear maps as they fill, so a recycled
// struct is indistinguishable from a fresh one field-wise while the
// steady-state decode path allocates nothing.

var (
	eosBlockPool   = sync.Pool{New: func() any { return new(EOSBlockJSON) }}
	tezosBlockPool = sync.Pool{New: func() any { return new(TezosBlockJSON) }}
	xrpLedgerPool  = sync.Pool{New: func() any { return new(XRPLedgerJSON) }}
)

// GetEOSBlock takes a reusable block struct from the arena.
func GetEOSBlock() *EOSBlockJSON { return eosBlockPool.Get().(*EOSBlockJSON) }

// PutEOSBlock returns a block to the arena. The caller must hold no
// references to the struct, its slices or its maps afterwards; strings
// extracted from it remain valid.
func PutEOSBlock(b *EOSBlockJSON) {
	if b != nil {
		eosBlockPool.Put(b)
	}
}

// GetTezosBlock takes a reusable block struct from the arena.
func GetTezosBlock() *TezosBlockJSON { return tezosBlockPool.Get().(*TezosBlockJSON) }

// PutTezosBlock returns a block to the arena.
func PutTezosBlock(b *TezosBlockJSON) {
	if b != nil {
		tezosBlockPool.Put(b)
	}
}

// GetXRPLedger takes a reusable ledger struct from the arena.
func GetXRPLedger() *XRPLedgerJSON { return xrpLedgerPool.Get().(*XRPLedgerJSON) }

// PutXRPLedger returns a ledger to the arena.
func PutXRPLedger(l *XRPLedgerJSON) {
	if l != nil {
		xrpLedgerPool.Put(l)
	}
}

// Buffer is a pooled byte buffer for encoders and response writers.
type Buffer struct{ B []byte }

var bufferPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 8192)} }}

// maxPooledBuffer drops oversized buffers instead of pinning their memory
// in the pool.
const maxPooledBuffer = 4 << 20

// GetBuffer takes an empty buffer from the pool.
func GetBuffer() *Buffer {
	buf := bufferPool.Get().(*Buffer)
	buf.B = buf.B[:0]
	return buf
}

// PutBuffer returns a buffer to the pool.
func PutBuffer(buf *Buffer) {
	if buf == nil || cap(buf.B) > maxPooledBuffer {
		return
	}
	bufferPool.Put(buf)
}

// Raw payload recycling: fetch clients read block payloads into these
// buffers, the stream hands them to the consumer inside a collect.Block,
// and Block.Release returns them here once decoding extracted everything —
// the zero-copy transport loop of the hot path.

var rawPool sync.Pool

const (
	minPooledRaw = 256
	maxPooledRaw = 4 << 20
)

// GetRaw returns an empty byte slice with recycled capacity.
func GetRaw() []byte {
	if p, ok := rawPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, 16<<10)
}

// PutRaw recycles a payload buffer. The caller must be its only holder.
// The boxed slice header it costs is ~500x smaller than the payload
// allocation it saves.
func PutRaw(b []byte) {
	if cap(b) < minPooledRaw || cap(b) > maxPooledRaw {
		return
	}
	rawPool.Put(&b)
}
