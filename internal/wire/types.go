// Package wire owns the three chains' wire JSON shapes and hand-rolled,
// pooled codecs for them. The measurement pipeline's throughput ceiling at
// paper scale (billions of EOS/Tezos/XRP transactions) is not the network
// but CPU spent reflect-marshalling blocks in rpcserve and
// reflect-unmarshalling them again in collect; this package replaces both
// directions with allocation-free encoders/decoders over reused []byte
// buffers and struct arenas (sync.Pool of block structs plus their
// transaction slices), with encoding/json kept as a cross-checked
// equivalence oracle in tests.
//
// Ownership rules (the "allocation budget" contract, see DESIGN.md):
//
//   - A struct obtained from GetEOSBlock/GetTezosBlock/GetXRPLedger is
//     exclusively owned by the caller until it is returned with the
//     matching Put. After Put, the caller must not touch the struct, its
//     slices or its maps — only the strings extracted from it, which are
//     immutable and safe to retain forever.
//   - A Codec is exclusively owned between GetCodec and PutCodec. Byte
//     views produced while decoding never escape the codec; every string
//     stored into a decoded struct is an owned copy (usually interned).
//   - Raw payload buffers recycle through GetRaw/PutRaw; a buffer handed
//     to PutRaw must have no other holders.
package wire

import (
	"repro/internal/xrp"
)

// EOSBlockJSON is the wire shape of one EOS block, structurally close to
// nodeos (transactions wrap a trx object carrying actions).
type EOSBlockJSON struct {
	BlockNum     uint32       `json:"block_num"`
	ID           string       `json:"id"`
	Previous     string       `json:"previous"`
	Timestamp    string       `json:"timestamp"`
	Producer     string       `json:"producer"`
	Transactions []EOSTrxJSON `json:"transactions"`
}

// EOSTrxJSON is one transaction receipt.
type EOSTrxJSON struct {
	Status string `json:"status"`
	Trx    struct {
		ID          string `json:"id"`
		Transaction struct {
			Actions []EOSActionJSON `json:"actions"`
		} `json:"transaction"`
	} `json:"trx"`
}

// EOSActionJSON is one action.
type EOSActionJSON struct {
	Account       string              `json:"account"`
	Name          string              `json:"name"`
	Authorization []map[string]string `json:"authorization"`
	Data          map[string]string   `json:"data"`
	Inline        bool                `json:"inline,omitempty"`
}

// TezosBlockJSON is the wire shape of one Tezos block: a header plus
// operations.
type TezosBlockJSON struct {
	Level       int64                `json:"level"`
	Hash        string               `json:"hash"`
	Predecessor string               `json:"predecessor"`
	Timestamp   string               `json:"timestamp"`
	Baker       string               `json:"baker"`
	Operations  []TezosOperationJSON `json:"operations"`
}

// TezosOperationJSON is one operation.
type TezosOperationJSON struct {
	Kind        string `json:"kind"`
	Source      string `json:"source,omitempty"`
	Destination string `json:"destination,omitempty"`
	Amount      int64  `json:"amount,omitempty"`
	Fee         int64  `json:"fee,omitempty"`
	Level       int64  `json:"level,omitempty"`
	SlotCount   int    `json:"slot_count,omitempty"`
	Proposal    string `json:"proposal,omitempty"`
	Ballot      string `json:"ballot,omitempty"`
	Rolls       int64  `json:"rolls,omitempty"`
	Delegate    string `json:"delegate,omitempty"`
}

// XRPLedgerJSON is the wire shape of one closed XRP ledger.
type XRPLedgerJSON struct {
	LedgerIndex  int64       `json:"ledger_index"`
	LedgerHash   string      `json:"ledger_hash"`
	ParentHash   string      `json:"parent_hash"`
	CloseTime    string      `json:"close_time_human"`
	TxCount      int         `json:"transaction_count"`
	Transactions []XRPTxJSON `json:"transactions,omitempty"`
}

// XRPTxJSON is one transaction with its metadata result.
type XRPTxJSON struct {
	Hash            string         `json:"hash"`
	TransactionType string         `json:"TransactionType"`
	Account         string         `json:"Account"`
	Destination     string         `json:"Destination,omitempty"`
	DestinationTag  uint32         `json:"DestinationTag,omitempty"`
	Fee             int64          `json:"Fee"`
	Sequence        uint32         `json:"Sequence"`
	Amount          *XRPAmountJSON `json:"Amount,omitempty"`
	TakerGets       *XRPAmountJSON `json:"TakerGets,omitempty"`
	TakerPays       *XRPAmountJSON `json:"TakerPays,omitempty"`
	LimitAmount     *XRPAmountJSON `json:"LimitAmount,omitempty"`
	DeliveredAmount *XRPAmountJSON `json:"delivered_amount,omitempty"`
	OfferSequence   uint32         `json:"OfferSequence,omitempty"`
	Result          string         `json:"meta_TransactionResult"`
	// Executed and RestingSequence mirror the simulator's offer metadata;
	// rippled exposes the same information through tx metadata nodes.
	Executed        bool   `json:"executed,omitempty"`
	RestingSequence uint32 `json:"resting_sequence,omitempty"`
}

// XRPAmountJSON carries either drops (native) or an IOU triple.
type XRPAmountJSON struct {
	Currency string `json:"currency"`
	Issuer   string `json:"issuer,omitempty"`
	Value    int64  `json:"value"`
}

// ToAmount converts back to the simulator type.
func (j *XRPAmountJSON) ToAmount() xrp.Amount {
	if j == nil {
		return xrp.Amount{}
	}
	return xrp.Amount{Currency: j.Currency, Issuer: xrp.Address(j.Issuer), Value: j.Value}
}

// EOSTimestampLayout is the nodeos block timestamp format.
const EOSTimestampLayout = "2006-01-02T15:04:05.000"
