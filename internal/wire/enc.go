package wire

import (
	"slices"
	"strconv"
	"unicode/utf8"
)

// appendJSONString renders s exactly as encoding/json does with its default
// HTML escaping: ", \ and control characters escaped (\b, \f, \n, \r, \t
// short forms), <, > and & as \u00XX, invalid UTF-8 as �, and
// U+2028/U+2029 escaped for JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control characters and the HTML trio <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

const hexDigits = "0123456789abcdef"

// jsonSafe marks ASCII bytes encoding/json emits verbatim inside strings.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		t[b] = b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
	}
	return
}()

// appendKey renders `,"key":` — keys here are compile-time literals that
// never need escaping (every struct's first key is emitted inline by its
// encoder, so the comma is unconditional).
func appendKey(dst []byte, key string) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, key...)
	return append(dst, '"', ':')
}

// appendStringMap renders a map[string]string with sorted keys, matching
// encoding/json's canonical map ordering. A nil map renders as null.
func (c *Codec) appendStringMap(dst []byte, m map[string]string) []byte {
	if m == nil {
		return append(dst, "null"...)
	}
	c.keys = c.keys[:0]
	for k := range m {
		c.keys = append(c.keys, k)
	}
	slices.Sort(c.keys)
	dst = append(dst, '{')
	for i, k := range c.keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst = appendJSONString(dst, m[k])
	}
	return append(dst, '}')
}

func appendInt(dst []byte, n int64) []byte   { return strconv.AppendInt(dst, n, 10) }
func appendUint(dst []byte, n uint64) []byte { return strconv.AppendUint(dst, n, 10) }
