package wire

import (
	"time"

	"repro/internal/eos"
	"repro/internal/tezos"
	"repro/internal/xrp"
)

// EOSWireBlock fills out with b's wire shape, reusing out's transaction,
// action and map capacity. It renders exactly what rpcserve.BlockToJSON
// always produced, but into a caller-owned (typically pooled) struct.
func EOSWireBlock(b *eos.Block, out *EOSBlockJSON) {
	out.BlockNum = b.Num
	out.ID = b.ID.String()
	out.Previous = b.Previous.String()
	out.Timestamp = b.Timestamp.UTC().Format(EOSTimestampLayout)
	out.Producer = b.Producer.String()
	if len(b.Transactions) == 0 {
		// Keep the nil → "transactions":null rendering of the original
		// reflect path for empty blocks.
		out.Transactions = nil
		return
	}
	out.Transactions = out.Transactions[:0]
	for i := range b.Transactions {
		tx := &b.Transactions[i]
		var tj *EOSTrxJSON
		out.Transactions, tj = growEOSTrx(out.Transactions)
		tj.Status = "executed"
		tj.Trx.ID = tx.ID.String()
		for j := range tx.Actions {
			act := &tx.Actions[j]
			var aj *EOSActionJSON
			tj.Trx.Transaction.Actions, aj = growEOSAction(tj.Trx.Transaction.Actions)
			aj.Account = act.Account.String()
			aj.Name = act.ActionName.String()
			aj.Inline = act.Inline
			// Own the data map: the pooled struct outlives this request and
			// must never alias simulator state. A nil source map stays nil
			// so the rendering matches the original reflect path.
			if act.Data == nil {
				aj.Data = nil
			} else {
				if aj.Data == nil {
					aj.Data = make(map[string]string, len(act.Data))
				} else {
					clear(aj.Data)
				}
				for k, v := range act.Data {
					aj.Data[k] = v
				}
			}
			if len(act.Authorization) == 0 {
				aj.Authorization = nil
			}
			for _, auth := range act.Authorization {
				// Revive a map left by an earlier use when capacity allows.
				var m map[string]string
				n := len(aj.Authorization)
				if cap(aj.Authorization) > n {
					aj.Authorization = aj.Authorization[:n+1]
					m = aj.Authorization[n]
				}
				if m == nil {
					m = make(map[string]string, 2)
					if len(aj.Authorization) > n {
						aj.Authorization[n] = m
					} else {
						aj.Authorization = append(aj.Authorization, m)
					}
				} else {
					clear(m)
				}
				m["actor"] = auth.Actor.String()
				m["permission"] = auth.Permission
			}
		}
		if len(tx.Actions) == 0 {
			tj.Trx.Transaction.Actions = nil
		}
	}
}

// TezosWireBlock fills out with b's wire shape, reusing out's operation
// capacity; the octez-style rendering rpcserve.TezosBlockToJSON produces.
func TezosWireBlock(b *tezos.Block, out *TezosBlockJSON) {
	out.Level = b.Level
	out.Hash = b.Hash.String()
	out.Predecessor = b.Predecessor.String()
	out.Timestamp = b.Timestamp.UTC().Format(time.RFC3339)
	out.Baker = string(b.Baker)
	if len(b.Operations) == 0 {
		out.Operations = nil
		return
	}
	out.Operations = out.Operations[:0]
	for i := range b.Operations {
		op := &b.Operations[i]
		var oj *TezosOperationJSON
		out.Operations, oj = growTezosOp(out.Operations)
		oj.Kind = string(op.Kind)
		oj.Source = string(op.Source)
		oj.Destination = string(op.Destination)
		oj.Amount = op.Amount
		oj.Fee = op.Fee
		oj.Level = op.Level
		oj.SlotCount = len(op.Slots)
		oj.Proposal = op.Proposal
		oj.Ballot = string(op.Ballot)
		oj.Rolls = op.Rolls
		oj.Delegate = string(op.Delegate)
	}
}

// XRPWireLedger fills out with l's wire shape (transactions included when
// expand is set), reusing out's transaction and amount capacity; the
// rippled-style rendering rpcserve.XRPLedgerToJSON produces.
func (c *Codec) XRPWireLedger(l *xrp.Ledger, expand bool, out *XRPLedgerJSON) {
	c.resetXRPLedger(out)
	out.LedgerIndex = l.Index
	out.LedgerHash = l.Hash.String()
	out.ParentHash = l.ParentHash.String()
	out.CloseTime = l.CloseTime.UTC().Format(time.RFC3339)
	out.TxCount = len(l.Transactions)
	if !expand {
		return
	}
	for i := range l.Transactions {
		tx := &l.Transactions[i]
		var tj *XRPTxJSON
		out.Transactions, tj = c.growXRPTx(out.Transactions)
		tj.Hash = tx.ID.String()
		tj.TransactionType = string(tx.Type)
		tj.Account = string(tx.Account)
		tj.Destination = string(tx.Destination)
		tj.DestinationTag = tx.DestinationTag
		tj.Fee = tx.Fee
		tj.Sequence = tx.Sequence
		c.setAmount(&tj.Amount, tx.Amount)
		c.setAmount(&tj.TakerGets, tx.TakerGets)
		c.setAmount(&tj.TakerPays, tx.TakerPays)
		c.setAmount(&tj.LimitAmount, tx.LimitAmount)
		c.setAmount(&tj.DeliveredAmount, tx.DeliveredAmount)
		tj.OfferSequence = tx.OfferSequence
		tj.Result = string(tx.Result)
		tj.Executed = tx.Executed
		tj.RestingSequence = tx.RestingSequence
	}
}

// setAmount mirrors the nil-for-zero convention of the original
// rpcserve.amountJSON helper, recycling amount structs through the codec.
func (c *Codec) setAmount(dst **XRPAmountJSON, a xrp.Amount) {
	if a.Value == 0 && a.Currency == "" {
		c.freeAmount(*dst)
		*dst = nil
		return
	}
	j := *dst
	if j == nil {
		j = c.getAmount()
		*dst = j
	}
	j.Currency = a.Currency
	j.Issuer = string(a.Issuer)
	j.Value = a.Value
}
