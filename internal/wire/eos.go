package wire

import "encoding/json"

// AppendEOSBlock renders b as nodeos-style block JSON, byte-identical to
// encoding/json.Marshal of the same struct, appending to dst.
func (c *Codec) AppendEOSBlock(dst []byte, b *EOSBlockJSON) []byte {
	dst = append(dst, `{"block_num":`...)
	dst = appendUint(dst, uint64(b.BlockNum))
	dst = appendKey(dst, "id")
	dst = appendJSONString(dst, b.ID)
	dst = appendKey(dst, "previous")
	dst = appendJSONString(dst, b.Previous)
	dst = appendKey(dst, "timestamp")
	dst = appendJSONString(dst, b.Timestamp)
	dst = appendKey(dst, "producer")
	dst = appendJSONString(dst, b.Producer)
	dst = appendKey(dst, "transactions")
	if b.Transactions == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range b.Transactions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = c.appendEOSTrx(dst, &b.Transactions[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func (c *Codec) appendEOSTrx(dst []byte, t *EOSTrxJSON) []byte {
	dst = append(dst, `{"status":`...)
	dst = appendJSONString(dst, t.Status)
	dst = append(dst, `,"trx":{"id":`...)
	dst = appendJSONString(dst, t.Trx.ID)
	dst = append(dst, `,"transaction":{"actions":`...)
	if t.Trx.Transaction.Actions == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range t.Trx.Transaction.Actions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = c.appendEOSAction(dst, &t.Trx.Transaction.Actions[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}', '}', '}')
}

func (c *Codec) appendEOSAction(dst []byte, a *EOSActionJSON) []byte {
	dst = append(dst, `{"account":`...)
	dst = appendJSONString(dst, a.Account)
	dst = appendKey(dst, "name")
	dst = appendJSONString(dst, a.Name)
	dst = appendKey(dst, "authorization")
	if a.Authorization == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, m := range a.Authorization {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = c.appendStringMap(dst, m)
		}
		dst = append(dst, ']')
	}
	dst = appendKey(dst, "data")
	dst = c.appendStringMap(dst, a.Data)
	if a.Inline {
		dst = append(dst, `,"inline":true`...)
	}
	return append(dst, '}')
}

// DecodeEOSBlock parses raw into the (typically pooled) block struct,
// reusing its transaction and action capacity. Unknown fields are skipped
// and field order is free, matching encoding/json semantics; payloads the
// fast scanner cannot handle fall back to encoding/json transparently.
func (c *Codec) DecodeEOSBlock(raw []byte, into *EOSBlockJSON) error {
	if err := c.decodeEOSBlock(raw, into); err != nil {
		// Fallback: start from a zero struct (dropping pooled capacity —
		// rare) and let the reflection decoder be the judge, so anything
		// encoding/json accepts (exotic numbers, deep nesting) still
		// decodes with fresh-struct semantics. Its verdict, success or
		// error, is final.
		*into = EOSBlockJSON{}
		return json.Unmarshal(raw, into)
	}
	return nil
}

// Canonical field-name sets, used to detect non-canonically cased keys
// (which must take the stdlib fallback for encoding/json's
// case-insensitive matching).
var (
	eosBlockFields  = []string{"block_num", "id", "previous", "timestamp", "producer", "transactions"}
	eosTrxFields    = []string{"status", "trx"}
	eosInnerFields  = []string{"id", "transaction"}
	eosTxnFields    = []string{"actions"}
	eosActionFields = []string{"account", "name", "inline", "authorization", "data"}
)

func resetEOSBlock(b *EOSBlockJSON) {
	b.BlockNum = 0
	b.ID, b.Previous, b.Timestamp, b.Producer = "", "", "", ""
	b.Transactions = b.Transactions[:0]
}

func (c *Codec) decodeEOSBlock(raw []byte, into *EOSBlockJSON) error {
	l := &c.lex
	l.reset(raw)
	resetEOSBlock(into)
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return l.trailing()
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "block_num":
			if !l.tryNull() {
				n, err := l.readUint32()
				if err != nil {
					return err
				}
				into.BlockNum = n
			}
		case "id":
			if err := c.decodeStr(&into.ID); err != nil {
				return err
			}
		case "previous":
			if err := c.decodeStr(&into.Previous); err != nil {
				return err
			}
		case "timestamp":
			if err := c.decodeStr(&into.Timestamp); err != nil {
				return err
			}
		case "producer":
			if err := c.decodeStr(&into.Producer); err != nil {
				return err
			}
		case "transactions":
			if l.tryNull() {
				break
			}
			if err := l.expect('['); err != nil {
				return err
			}
			if into.Transactions == nil {
				into.Transactions = make([]EOSTrxJSON, 0, 8)
			}
			if !l.tryConsume(']') {
				for {
					var t *EOSTrxJSON
					into.Transactions, t = growEOSTrx(into.Transactions)
					if err := c.decodeEOSTrx(t); err != nil {
						return err
					}
					if l.tryConsume(',') {
						continue
					}
					if err := l.expect(']'); err != nil {
						return err
					}
					break
				}
			}
		default:
			if err := l.foldedField(key, eosBlockFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		}
		if l.tryConsume(',') {
			continue
		}
		if err := l.expect('}'); err != nil {
			return err
		}
		return l.trailing()
	}
}

// growEOSTrx extends s by one element, reviving capacity left by earlier
// uses (the revived element's action slice keeps its backing array).
func growEOSTrx(s []EOSTrxJSON) ([]EOSTrxJSON, *EOSTrxJSON) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
	} else {
		s = append(s, EOSTrxJSON{})
	}
	t := &s[len(s)-1]
	t.Status = ""
	t.Trx.ID = ""
	t.Trx.Transaction.Actions = t.Trx.Transaction.Actions[:0]
	return s, t
}

func (c *Codec) decodeEOSTrx(t *EOSTrxJSON) error {
	l := &c.lex
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "status":
			if err := c.decodeStr(&t.Status); err != nil {
				return err
			}
		case "trx":
			if err := c.decodeEOSTrxInner(t); err != nil {
				return err
			}
		default:
			if err := l.foldedField(key, eosTrxFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

func (c *Codec) decodeEOSTrxInner(t *EOSTrxJSON) error {
	l := &c.lex
	if l.tryNull() {
		return nil
	}
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "id":
			if err := c.decodeStr(&t.Trx.ID); err != nil {
				return err
			}
		case "transaction":
			if err := c.decodeEOSActions(t); err != nil {
				return err
			}
		default:
			if err := l.foldedField(key, eosInnerFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

func (c *Codec) decodeEOSActions(t *EOSTrxJSON) error {
	l := &c.lex
	if l.tryNull() {
		return nil
	}
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		if string(key) != "actions" {
			if err := l.foldedField(key, eosTxnFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		} else if !l.tryNull() {
			if err := l.expect('['); err != nil {
				return err
			}
			if t.Trx.Transaction.Actions == nil {
				t.Trx.Transaction.Actions = make([]EOSActionJSON, 0, 4)
			}
			if !l.tryConsume(']') {
				for {
					var a *EOSActionJSON
					t.Trx.Transaction.Actions, a = growEOSAction(t.Trx.Transaction.Actions)
					if err := c.decodeEOSAction(a); err != nil {
						return err
					}
					if l.tryConsume(',') {
						continue
					}
					if err := l.expect(']'); err != nil {
						return err
					}
					break
				}
			}
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

func growEOSAction(s []EOSActionJSON) ([]EOSActionJSON, *EOSActionJSON) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
	} else {
		s = append(s, EOSActionJSON{})
	}
	a := &s[len(s)-1]
	a.Account, a.Name = "", ""
	a.Inline = false
	a.Authorization = a.Authorization[:0]
	if a.Data != nil {
		clear(a.Data)
	}
	return s, a
}

func (c *Codec) decodeEOSAction(a *EOSActionJSON) error {
	l := &c.lex
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "account":
			if err := c.decodeStr(&a.Account); err != nil {
				return err
			}
		case "name":
			if err := c.decodeStr(&a.Name); err != nil {
				return err
			}
		case "inline":
			if !l.tryNull() {
				v, err := l.readBool()
				if err != nil {
					return err
				}
				a.Inline = v
			}
		case "authorization":
			if l.tryNull() {
				break
			}
			if err := l.expect('['); err != nil {
				return err
			}
			if a.Authorization == nil {
				a.Authorization = make([]map[string]string, 0, 1)
			}
			if !l.tryConsume(']') {
				for i := 0; ; i++ {
					// Revive a map left by an earlier use when capacity
					// allows; decodeStringMap clears it before filling.
					var m map[string]string
					if cap(a.Authorization) > i {
						a.Authorization = a.Authorization[:i+1]
						m = a.Authorization[i]
					}
					m, err := c.decodeStringMap(m)
					if err != nil {
						return err
					}
					if len(a.Authorization) > i {
						a.Authorization[i] = m
					} else {
						a.Authorization = append(a.Authorization, m)
					}
					if l.tryConsume(',') {
						continue
					}
					if err := l.expect(']'); err != nil {
						return err
					}
					break
				}
			}
		case "data":
			m, err := c.decodeStringMapOrNull(a.Data)
			if err != nil {
				return err
			}
			a.Data = m
		default:
			if err := l.foldedField(key, eosActionFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

// decodeStr reads a string (or null) into dst, interned.
func (c *Codec) decodeStr(dst *string) error {
	if c.lex.tryNull() {
		return nil
	}
	b, err := c.lex.readString()
	if err != nil {
		return err
	}
	*dst = c.str(b)
	return nil
}

// decodeStringMap parses an object of string values into m, reusing it when
// non-nil (cleared first).
func (c *Codec) decodeStringMap(m map[string]string) (map[string]string, error) {
	l := &c.lex
	if err := l.expect('{'); err != nil {
		return m, err
	}
	if m == nil {
		m = make(map[string]string, 4)
	} else {
		clear(m)
	}
	if l.tryConsume('}') {
		return m, nil
	}
	for {
		kb, err := l.readString()
		if err != nil {
			return m, err
		}
		k := c.str(kb)
		if err := l.expect(':'); err != nil {
			return m, err
		}
		if l.tryNull() {
			m[k] = ""
		} else {
			vb, err := l.readString()
			if err != nil {
				return m, err
			}
			m[k] = c.str(vb)
		}
		if l.tryConsume(',') {
			continue
		}
		return m, l.expect('}')
	}
}

// decodeStringMapOrNull is decodeStringMap but tolerating a null value: the
// reused map is cleared (a fresh struct keeps nil, matching encoding/json).
func (c *Codec) decodeStringMapOrNull(m map[string]string) (map[string]string, error) {
	if c.lex.tryNull() {
		if m != nil {
			clear(m)
		}
		return m, nil
	}
	return c.decodeStringMap(m)
}
