package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNonCanonicalKeyCasingMatchesStdlib: encoding/json matches field
// names case-insensitively as a fallback; the fast scanner must not
// silently zero such fields, but instead route the payload through the
// stdlib fallback and decode it identically.
func TestNonCanonicalKeyCasingMatchesStdlib(t *testing.T) {
	c := NewCodec()

	var tz TezosBlockJSON
	raw := []byte(`{"Level":7,"hash":"H","operations":[{"Kind":"endorsement","SOURCE":"tz1x"}]}`)
	if err := c.DecodeTezosBlock(raw, &tz); err != nil {
		t.Fatalf("decode: %v", err)
	}
	var want TezosBlockJSON
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if tz.Level != want.Level || tz.Level != 7 {
		t.Fatalf("folded Level lost: got %d, stdlib %d", tz.Level, want.Level)
	}
	if len(tz.Operations) != 1 || tz.Operations[0].Source != "tz1x" {
		t.Fatalf("folded operation fields lost: %+v", tz.Operations)
	}

	var eb EOSBlockJSON
	eraw := []byte(`{"Block_Num":9,"Producer":"prod"}`)
	if err := c.DecodeEOSBlock(eraw, &eb); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if eb.BlockNum != 9 || eb.Producer != "prod" {
		t.Fatalf("folded EOS fields lost: %+v", eb)
	}

	var led XRPLedgerJSON
	xraw := []byte(`{"LEDGER":{"Ledger_Index":3,"transactions":[{"ACCOUNT":"rA","FEE":10}]}}`)
	if err := c.DecodeXRPLedgerResult(xraw, &led); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if led.LedgerIndex != 3 || len(led.Transactions) != 1 || led.Transactions[0].Account != "rA" {
		t.Fatalf("folded XRP fields lost: %+v", led)
	}

	// Genuinely unknown keys still skip without tripping the fold check.
	var tz2 TezosBlockJSON
	if err := c.DecodeTezosBlock([]byte(`{"level":5,"chain_id":"main","metadata":{"a":[1,2]}}`), &tz2); err != nil {
		t.Fatalf("unknown fields must skip cleanly: %v", err)
	}
	if tz2.Level != 5 {
		t.Fatalf("level lost next to unknown fields: %+v", tz2)
	}
}

// TestStrictNumbersMatchStdlib: malformed numbers that encoding/json
// rejects must fail the wire decode too — corruption in an archived
// payload has to surface, not quietly parse.
func TestStrictNumbersMatchStdlib(t *testing.T) {
	c := NewCodec()
	cases := []string{
		`{"level":007}`,            // leading zeros in a decoded field
		`{"level":-}`,              // lone minus
		`{"unknownfield":00}`,      // leading zeros in a skipped field
		`{"unknownfield":1.}`,      // no digits after decimal point
		`{"unknownfield":1e}`,      // no digits in exponent
		`{"unknownfield":1.2e++3}`, // garbage exponent
		`{"unknownfield":-}`,       // lone minus in a skipped field
	}
	for _, raw := range cases {
		var viaStd TezosBlockJSON
		if err := json.Unmarshal([]byte(raw), &viaStd); err == nil {
			t.Fatalf("test premise broken: stdlib accepts %s", raw)
		}
		var tz TezosBlockJSON
		if err := c.DecodeTezosBlock([]byte(raw), &tz); err == nil {
			t.Errorf("wire decode accepted %s, stdlib rejects it", raw)
		}
	}

	// Valid numbers stdlib accepts must keep decoding, including in
	// skipped fields.
	ok := []string{
		`{"level":0}`,
		`{"level":-0}`,
		`{"unknownfield":0.5}`,
		`{"unknownfield":-1.25e-3}`,
		`{"unknownfield":1E+2}`,
	}
	for _, raw := range ok {
		var tz TezosBlockJSON
		if err := c.DecodeTezosBlock([]byte(raw), &tz); err != nil {
			t.Errorf("wire decode rejected valid %s: %v", raw, err)
		}
	}
}

// TestFoldedKeysStayOffHotPath: canonical payloads with skipped envelope
// fields must not pay for the fold check — the envelope decode stays
// allocation-free (the fold comparison itself allocates nothing).
func TestFoldedKeysStayOffHotPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c := NewCodec()
	raw := []byte(`{"ledger":{"ledger_index":1,"close_time_human":"t"},"ledger_index":1,"validated":true}`)
	led := GetXRPLedger()
	defer PutXRPLedger(led)
	if err := c.DecodeXRPLedgerResult(raw, led); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.DecodeXRPLedgerResult(raw, led); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("envelope decode with skipped fields: %.1f allocs/op, want 0", allocs)
	}
}

// TestSurrogateEscapesMatchStdlib pins the unpaired-surrogate re-scan
// behavior: after a failed pair, encoding/json emits one replacement char
// and processes the second escape on its own — so must the lexer.
func TestSurrogateEscapesMatchStdlib(t *testing.T) {
	c := NewCodec()
	cases := []string{
		`"\ud800\ud800\udc00"`, // failed pair, then a valid escaped pair
		`"\ud800\u0041"`,       // high surrogate then plain escape
		`"\udc00\ud800\udc00"`, // lone low surrogate then a valid pair
		`"\ud800"`,             // lone high surrogate at end
		`"\ud800x"`,            // high surrogate then literal byte
		`"\ud800\udc00"`,       // plain valid escaped pair
		`"\udc00\udc00"`,       // two lone low surrogates
	}
	for _, esc := range cases {
		raw := []byte(`{"hash":` + esc + `}`)
		var viaStd TezosBlockJSON
		if err := json.Unmarshal(raw, &viaStd); err != nil {
			t.Fatalf("premise: stdlib rejects %s: %v", esc, err)
		}
		var tz TezosBlockJSON
		if err := c.DecodeTezosBlock(raw, &tz); err != nil {
			t.Fatalf("wire decode of %s failed: %v", esc, err)
		}
		if tz.Hash != viaStd.Hash {
			t.Errorf("%s: wire %q != stdlib %q", esc, tz.Hash, viaStd.Hash)
		}
	}
}

// TestFoldEq pins the ASCII fold used for key matching.
func TestFoldEq(t *testing.T) {
	if !foldEq([]byte("Block_Num"), "block_num") || !foldEq([]byte("ID"), "id") {
		t.Fatal("foldEq must match ASCII case-insensitively")
	}
	if foldEq([]byte("block-num"), "block_num") || foldEq([]byte("blocknum"), "block_num") {
		t.Fatal("foldEq must not match different names")
	}
	if foldEq([]byte(strings.Repeat("a", 3)), "aaaa") {
		t.Fatal("foldEq must respect length")
	}
}
