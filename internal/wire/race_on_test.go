//go:build race

package wire

// raceEnabled skips allocation-count pins under the race detector, whose
// instrumentation perturbs them.
const raceEnabled = true
