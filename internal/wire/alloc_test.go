package wire

import (
	"encoding/json"
	"fmt"
	"testing"
)

// The acceptance bar for the hot path: once a codec's intern table has seen
// a block's strings and the arena struct has grown its slices, decoding
// further blocks of the same shape allocates nothing. These tests are the
// regression gate for that property — any allocation creeping back into
// the steady-state decode or encode path fails them deterministically.

func eosFixture() []byte {
	b := EOSBlockJSON{
		BlockNum: 12345, ID: "00003039abcdef", Previous: "00003038abcdef",
		Timestamp: "2019-10-01T00:00:00.500", Producer: "eosproducer1",
	}
	for i := 0; i < 8; i++ {
		var tx EOSTrxJSON
		tx.Status = "executed"
		tx.Trx.ID = fmt.Sprintf("trx%08d", i)
		tx.Trx.Transaction.Actions = []EOSActionJSON{{
			Account: "eosio.token", Name: "transfer",
			Authorization: []map[string]string{{"actor": "alicealice12", "permission": "active"}},
			Data: map[string]string{
				"from": "alicealice12", "to": "bobbobbob123",
				"quantity": "1.0000 EOS", "memo": "hot path",
			},
		}}
		b.Transactions = append(b.Transactions, tx)
	}
	raw, err := json.Marshal(&b)
	if err != nil {
		panic(err)
	}
	return raw
}

func tezosFixture() []byte {
	b := TezosBlockJSON{
		Level: 654321, Hash: "BLockHash11", Predecessor: "BLockHash10",
		Timestamp: "2019-10-01T00:00:00Z", Baker: "tz1baker",
	}
	for i := 0; i < 16; i++ {
		b.Operations = append(b.Operations, TezosOperationJSON{
			Kind: "endorsement", Source: "tz1endorser", Level: 654320, SlotCount: 2,
		}, TezosOperationJSON{
			Kind: "transaction", Source: "tz1alice", Destination: "tz1bob",
			Amount: 100000, Fee: 1420,
		})
	}
	raw, err := json.Marshal(&b)
	if err != nil {
		panic(err)
	}
	return raw
}

func xrpFixture(envelope bool) []byte {
	l := XRPLedgerJSON{
		LedgerIndex: 50000000, LedgerHash: "LEDGERHASH1", ParentHash: "LEDGERHASH0",
		CloseTime: "2019-10-01T00:00:00Z", TxCount: 8,
	}
	for i := 0; i < 8; i++ {
		l.Transactions = append(l.Transactions, XRPTxJSON{
			Hash: "TXHASH", TransactionType: "Payment", Account: "rAlice",
			Destination: "rBob", DestinationTag: 7, Fee: 10, Sequence: uint32(42),
			Amount: &XRPAmountJSON{Currency: "XRP", Value: 1000000},
			Result: "tesSUCCESS",
		})
	}
	raw, err := json.Marshal(&l)
	if err != nil {
		panic(err)
	}
	if envelope {
		env := struct {
			Ledger      json.RawMessage `json:"ledger"`
			LedgerIndex int64           `json:"ledger_index"`
			Validated   bool            `json:"validated"`
		}{raw, l.LedgerIndex, true}
		raw, err = json.Marshal(env)
		if err != nil {
			panic(err)
		}
	}
	return raw
}

// pinZeroAllocs warms the codec once, then requires exactly zero
// allocations per run.
func pinZeroAllocs(t *testing.T, name string, warm func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	warm()
	if allocs := testing.AllocsPerRun(200, warm); allocs != 0 {
		t.Errorf("%s: %.1f allocs/op in steady state, want 0", name, allocs)
	}
}

func TestDecodeSteadyStateZeroAllocs(t *testing.T) {
	c := NewCodec()

	eosRaw := eosFixture()
	eosBlock := GetEOSBlock()
	defer PutEOSBlock(eosBlock)
	pinZeroAllocs(t, "DecodeEOSBlock", func() {
		if err := c.DecodeEOSBlock(eosRaw, eosBlock); err != nil {
			t.Fatal(err)
		}
	})

	tezosRaw := tezosFixture()
	tezosBlock := GetTezosBlock()
	defer PutTezosBlock(tezosBlock)
	pinZeroAllocs(t, "DecodeTezosBlock", func() {
		if err := c.DecodeTezosBlock(tezosRaw, tezosBlock); err != nil {
			t.Fatal(err)
		}
	})

	xrpRaw := xrpFixture(false)
	ledger := GetXRPLedger()
	defer PutXRPLedger(ledger)
	pinZeroAllocs(t, "DecodeXRPLedger", func() {
		if err := c.DecodeXRPLedger(xrpRaw, ledger); err != nil {
			t.Fatal(err)
		}
	})

	envRaw := xrpFixture(true)
	pinZeroAllocs(t, "DecodeXRPLedgerResult", func() {
		if err := c.DecodeXRPLedgerResult(envRaw, ledger); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEncodeSteadyStateZeroAllocs(t *testing.T) {
	c := NewCodec()

	var eosBlock EOSBlockJSON
	if err := c.DecodeEOSBlock(eosFixture(), &eosBlock); err != nil {
		t.Fatal(err)
	}
	var tezosBlock TezosBlockJSON
	if err := c.DecodeTezosBlock(tezosFixture(), &tezosBlock); err != nil {
		t.Fatal(err)
	}
	var ledger XRPLedgerJSON
	if err := c.DecodeXRPLedger(xrpFixture(false), &ledger); err != nil {
		t.Fatal(err)
	}

	buf := GetBuffer()
	defer PutBuffer(buf)
	pinZeroAllocs(t, "AppendEOSBlock", func() {
		buf.B = c.AppendEOSBlock(buf.B[:0], &eosBlock)
	})
	pinZeroAllocs(t, "AppendTezosBlock", func() {
		buf.B = c.AppendTezosBlock(buf.B[:0], &tezosBlock)
	})
	pinZeroAllocs(t, "AppendXRPLedger", func() {
		buf.B = c.AppendXRPLedger(buf.B[:0], &ledger)
	})
	pinZeroAllocs(t, "AppendXRPLedgerResponse", func() {
		out, ok := c.AppendXRPLedgerResponse(buf.B[:0], 7, &ledger, ledger.LedgerIndex)
		if !ok {
			t.Fatal("fast-path id rejected")
		}
		buf.B = out
	})
}
