package wire

import (
	"fmt"
	"math"
	"unicode/utf16"
	"unicode/utf8"
)

// lexer is a minimal allocation-free JSON scanner over one payload. It
// implements exactly the subset the wire shapes need — objects, arrays,
// strings (with full escape handling), integers, booleans and null — plus a
// generic skipper for unknown fields, so field order and extra fields are
// handled the way encoding/json handles them. Byte views returned by
// readString are valid only until the next readString call (escaped strings
// unescape into a shared scratch buffer); callers must copy (usually via
// the codec's intern table) before the next token.
type lexer struct {
	data    []byte
	pos     int
	scratch []byte
}

func (l *lexer) reset(data []byte) {
	l.data = data
	l.pos = 0
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("wire: offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) skipWS() {
	for l.pos < len(l.data) {
		switch l.data[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

// peek returns the first byte of the next token (0 at EOF).
func (l *lexer) peek() byte {
	l.skipWS()
	if l.pos >= len(l.data) {
		return 0
	}
	return l.data[l.pos]
}

// expect consumes the next token byte, which must be c.
func (l *lexer) expect(c byte) error {
	l.skipWS()
	if l.pos >= len(l.data) || l.data[l.pos] != c {
		return l.errf("expected %q", string(c))
	}
	l.pos++
	return nil
}

// tryConsume consumes c if it is the next token byte.
func (l *lexer) tryConsume(c byte) bool {
	l.skipWS()
	if l.pos < len(l.data) && l.data[l.pos] == c {
		l.pos++
		return true
	}
	return false
}

// lit consumes the literal s (after leading whitespace).
func (l *lexer) lit(s string) error {
	l.skipWS()
	if len(l.data)-l.pos < len(s) || string(l.data[l.pos:l.pos+len(s)]) != s {
		return l.errf("expected %s", s)
	}
	l.pos += len(s)
	return nil
}

// tryNull consumes a null literal if present.
func (l *lexer) tryNull() bool {
	if l.peek() == 'n' {
		return l.lit("null") == nil
	}
	return false
}

// readString returns the next string's bytes: a view into the payload when
// it holds no escapes, or into the lexer's scratch buffer otherwise.
func (l *lexer) readString() ([]byte, error) {
	if err := l.expect('"'); err != nil {
		return nil, err
	}
	start := l.pos
	// Fast path: scan for the closing quote with no escapes.
	for l.pos < len(l.data) {
		c := l.data[l.pos]
		if c == '"' {
			b := l.data[start:l.pos]
			l.pos++
			return b, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		l.pos++
	}
	// Slow path: unescape into scratch.
	l.scratch = l.scratch[:0]
	l.scratch = append(l.scratch, l.data[start:l.pos]...)
	for l.pos < len(l.data) {
		c := l.data[l.pos]
		switch {
		case c == '"':
			l.pos++
			return l.scratch, nil
		case c < 0x20:
			return nil, l.errf("control character in string")
		case c != '\\':
			l.scratch = append(l.scratch, c)
			l.pos++
		default:
			l.pos++
			if l.pos >= len(l.data) {
				return nil, l.errf("truncated escape")
			}
			e := l.data[l.pos]
			l.pos++
			switch e {
			case '"', '\\', '/':
				l.scratch = append(l.scratch, e)
			case 'b':
				l.scratch = append(l.scratch, '\b')
			case 'f':
				l.scratch = append(l.scratch, '\f')
			case 'n':
				l.scratch = append(l.scratch, '\n')
			case 'r':
				l.scratch = append(l.scratch, '\r')
			case 't':
				l.scratch = append(l.scratch, '\t')
			case 'u':
				r, err := l.readHex4()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					// A surrogate may pair with an immediately following
					// \uXXXX. Peek it without consuming: on a failed pair,
					// encoding/json emits one replacement char and
					// re-scans the second escape on its own — consuming it
					// here would decode differently.
					if r2, ok := l.peekEscapedHex4(); ok {
						if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
							l.pos += 6
							r = dec
						} else {
							r = utf8.RuneError
						}
					} else {
						r = utf8.RuneError
					}
				}
				l.scratch = utf8.AppendRune(l.scratch, r)
			default:
				return nil, l.errf("bad escape \\%c", e)
			}
		}
	}
	return nil, l.errf("unterminated string")
}

// peekEscapedHex4 reads a \uXXXX escape starting at pos without consuming
// it, reporting false when the next bytes are not a well-formed escape.
func (l *lexer) peekEscapedHex4() (rune, bool) {
	if len(l.data)-l.pos < 6 || l.data[l.pos] != '\\' || l.data[l.pos+1] != 'u' {
		return 0, false
	}
	var r rune
	for i := 2; i < 6; i++ {
		c := l.data[l.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, false
		}
	}
	return r, true
}

// readHex4 parses four hex digits at pos.
func (l *lexer) readHex4() (rune, error) {
	if len(l.data)-l.pos < 4 {
		return 0, l.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := l.data[l.pos+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, l.errf("bad \\u escape")
		}
	}
	l.pos += 4
	return r, nil
}

// readInt64 parses a plain integer token. Fractional or exponent forms fail
// here exactly as encoding/json fails to unmarshal them into an int64.
func (l *lexer) readInt64() (int64, error) {
	l.skipWS()
	start := l.pos
	neg := false
	if l.pos < len(l.data) && l.data[l.pos] == '-' {
		neg = true
		l.pos++
	}
	// Accumulate in the negative domain so MinInt64 parses.
	var n int64
	digits := 0
	first := l.pos
	for l.pos < len(l.data) {
		c := l.data[l.pos]
		if c < '0' || c > '9' {
			break
		}
		d := int64(c - '0')
		if n < (math.MinInt64+d)/10 {
			return 0, l.errf("integer overflow")
		}
		n = n*10 - d
		digits++
		l.pos++
	}
	if digits == 0 {
		l.pos = start
		return 0, l.errf("expected integer")
	}
	if digits > 1 && l.data[first] == '0' {
		// JSON forbids leading zeros; stay as strict as encoding/json so
		// corrupt payloads fail loudly instead of decoding quietly.
		l.pos = start
		return 0, l.errf("leading zero in number")
	}
	if l.pos < len(l.data) {
		switch l.data[l.pos] {
		case '.', 'e', 'E':
			l.pos = start
			return 0, l.errf("non-integer number")
		}
	}
	if neg {
		return n, nil
	}
	if n == math.MinInt64 {
		return 0, l.errf("integer overflow")
	}
	return -n, nil
}

// readUint32 parses an integer and range-checks it like encoding/json does
// for uint32 fields.
func (l *lexer) readUint32() (uint32, error) {
	n, err := l.readInt64()
	if err != nil {
		return 0, err
	}
	if n < 0 || n > math.MaxUint32 {
		return 0, l.errf("number out of uint32 range")
	}
	return uint32(n), nil
}

// readBool parses true or false.
func (l *lexer) readBool() (bool, error) {
	switch l.peek() {
	case 't':
		return true, l.lit("true")
	case 'f':
		return false, l.lit("false")
	}
	return false, l.errf("expected boolean")
}

// maxSkipDepth bounds skipValue recursion; encoding/json enforces a
// comparable nesting limit.
const maxSkipDepth = 200

// skipValue consumes one JSON value of any shape.
func (l *lexer) skipValue(depth int) error {
	if depth > maxSkipDepth {
		return l.errf("value nested too deeply")
	}
	switch l.peek() {
	case '"':
		_, err := l.readString()
		return err
	case '{':
		l.pos++
		if l.tryConsume('}') {
			return nil
		}
		for {
			if _, err := l.readString(); err != nil {
				return err
			}
			if err := l.expect(':'); err != nil {
				return err
			}
			if err := l.skipValue(depth + 1); err != nil {
				return err
			}
			if l.tryConsume(',') {
				continue
			}
			return l.expect('}')
		}
	case '[':
		l.pos++
		if l.tryConsume(']') {
			return nil
		}
		for {
			if err := l.skipValue(depth + 1); err != nil {
				return err
			}
			if l.tryConsume(',') {
				continue
			}
			return l.expect(']')
		}
	case 't':
		return l.lit("true")
	case 'f':
		return l.lit("false")
	case 'n':
		return l.lit("null")
	case '-', '0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
		return l.skipNumber()
	case 0:
		return l.errf("unexpected end of input")
	default:
		return l.errf("unexpected character %q", string(l.data[l.pos]))
	}
}

// skipNumber consumes a full JSON number token, enforcing the RFC 8259
// grammar (no leading zeros, digits required after '.' and the exponent
// sign) exactly as encoding/json does, so corruption in skipped fields
// still fails the decode.
func (l *lexer) skipNumber() error {
	digits := func() int {
		n := 0
		for l.pos < len(l.data) && l.data[l.pos] >= '0' && l.data[l.pos] <= '9' {
			l.pos++
			n++
		}
		return n
	}
	if l.pos < len(l.data) && l.data[l.pos] == '-' {
		l.pos++
	}
	switch {
	case l.pos >= len(l.data):
		return l.errf("truncated number")
	case l.data[l.pos] == '0':
		l.pos++
	default:
		if digits() == 0 {
			return l.errf("expected number")
		}
	}
	if l.pos < len(l.data) && l.data[l.pos] == '.' {
		l.pos++
		if digits() == 0 {
			return l.errf("digits required after decimal point")
		}
	}
	if l.pos < len(l.data) && (l.data[l.pos] == 'e' || l.data[l.pos] == 'E') {
		l.pos++
		if l.pos < len(l.data) && (l.data[l.pos] == '+' || l.data[l.pos] == '-') {
			l.pos++
		}
		if digits() == 0 {
			return l.errf("digits required in exponent")
		}
	}
	return nil
}

// trailing errors unless only whitespace remains, matching
// encoding/json.Unmarshal's rejection of trailing garbage.
func (l *lexer) trailing() error {
	if l.peek() != 0 {
		return l.errf("trailing data after value")
	}
	return nil
}

// foldEq reports whether key equals name under ASCII case folding.
func foldEq(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		a, b := key[i], name[i]
		if a == b {
			continue
		}
		if 'A' <= a && a <= 'Z' {
			a += 'a' - 'A'
		}
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if a != b {
			return false
		}
	}
	return true
}

// foldedField errors when an unrecognized key is a known field in
// non-canonical casing. encoding/json matches keys case-insensitively as
// a fallback; the fast scanner stays exact-match (the repo's encoders
// always emit canonical keys), and this check routes the rare
// differently-cased payload to the stdlib fallback instead of silently
// zeroing the field.
func (l *lexer) foldedField(key []byte, names []string) error {
	for _, n := range names {
		if foldEq(key, n) {
			return l.errf("non-canonical key casing %q", key)
		}
	}
	return nil
}
