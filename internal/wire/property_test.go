package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The codec's contract is byte-for-byte equivalence with encoding/json in
// both directions: Append* must render exactly what json.Marshal renders,
// and Decode* of any marshaled payload must populate exactly what
// json.Unmarshal populates. testing/quick drives randomized structs —
// including hostile strings (control characters, quotes, non-ASCII) and
// full-range integers — through both paths, the same style of generator
// the xrp package's property tests use for ledger operations.

// checkRoundTrip marshals via both paths and decodes via both paths,
// failing on the first byte or field divergence.
func checkRoundTrip(t *testing.T, v any, encode func() []byte, decodeInto func([]byte) (any, error)) bool {
	t.Helper()
	want, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	got := encode()
	if !bytes.Equal(got, want) {
		t.Logf("encode mismatch:\n wire: %s\n json: %s", got, want)
		return false
	}
	viaWire, err := decodeInto(want)
	if err != nil {
		t.Logf("wire decode failed: %v", err)
		return false
	}
	viaStd := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	if err := json.Unmarshal(want, viaStd); err != nil {
		t.Fatalf("json.Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(viaWire, viaStd) {
		t.Logf("decode mismatch:\n wire: %#v\n json: %#v", viaWire, viaStd)
		return false
	}
	return true
}

func TestEOSBlockRoundTripMatchesStdlib(t *testing.T) {
	c := NewCodec()
	f := func(b EOSBlockJSON) bool {
		return checkRoundTrip(t, &b,
			func() []byte { return c.AppendEOSBlock(nil, &b) },
			func(raw []byte) (any, error) {
				var into EOSBlockJSON
				err := c.DecodeEOSBlock(raw, &into)
				return &into, err
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTezosBlockRoundTripMatchesStdlib(t *testing.T) {
	c := NewCodec()
	f := func(b TezosBlockJSON) bool {
		return checkRoundTrip(t, &b,
			func() []byte { return c.AppendTezosBlock(nil, &b) },
			func(raw []byte) (any, error) {
				var into TezosBlockJSON
				err := c.DecodeTezosBlock(raw, &into)
				return &into, err
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXRPLedgerRoundTripMatchesStdlib(t *testing.T) {
	c := NewCodec()
	f := func(l XRPLedgerJSON) bool {
		return checkRoundTrip(t, &l,
			func() []byte { return c.AppendXRPLedger(nil, &l) },
			func(raw []byte) (any, error) {
				var into XRPLedgerJSON
				err := c.DecodeXRPLedger(raw, &into)
				return &into, err
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestXRPLedgerResultEnvelope checks the collector-side envelope decode
// against the stdlib equivalent.
func TestXRPLedgerResultEnvelope(t *testing.T) {
	c := NewCodec()
	f := func(l XRPLedgerJSON, index int64) bool {
		env := struct {
			Ledger      XRPLedgerJSON `json:"ledger"`
			LedgerIndex int64         `json:"ledger_index"`
			Validated   bool          `json:"validated"`
		}{l, index, true}
		raw, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		var viaWire XRPLedgerJSON
		if err := c.DecodeXRPLedgerResult(raw, &viaWire); err != nil {
			t.Logf("wire envelope decode failed: %v", err)
			return false
		}
		var viaStd struct {
			Ledger XRPLedgerJSON `json:"ledger"`
		}
		if err := json.Unmarshal(raw, &viaStd); err != nil {
			t.Fatal(err)
		}
		return reflect.DeepEqual(&viaWire, &viaStd.Ledger)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeReusedStructs drives many random payloads through one pooled
// struct, proving a revived arena struct decodes indistinguishably from a
// fresh one (no stale transactions, actions, map entries or amounts leak
// between payloads).
func TestDecodeReusedStructs(t *testing.T) {
	c := NewCodec()
	rng := rand.New(rand.NewSource(7))
	reusedEOS := GetEOSBlock()
	defer PutEOSBlock(reusedEOS)
	reusedTezos := GetTezosBlock()
	defer PutTezosBlock(reusedTezos)
	reusedXRP := GetXRPLedger()
	defer PutXRPLedger(reusedXRP)

	for i := 0; i < 300; i++ {
		switch i % 3 {
		case 0:
			v, ok := quick.Value(reflect.TypeOf(EOSBlockJSON{}), rng)
			if !ok {
				t.Fatal("quick.Value failed")
			}
			b := v.Interface().(EOSBlockJSON)
			raw, err := json.Marshal(&b)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.DecodeEOSBlock(raw, reusedEOS); err != nil {
				t.Fatalf("decode: %v", err)
			}
			var fresh EOSBlockJSON
			if err := json.Unmarshal(raw, &fresh); err != nil {
				t.Fatal(err)
			}
			if !equivalentEOS(reusedEOS, &fresh) {
				t.Fatalf("iteration %d: reused EOS decode diverged\n got: %#v\nwant: %#v", i, reusedEOS, &fresh)
			}
		case 1:
			v, _ := quick.Value(reflect.TypeOf(TezosBlockJSON{}), rng)
			b := v.Interface().(TezosBlockJSON)
			raw, err := json.Marshal(&b)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.DecodeTezosBlock(raw, reusedTezos); err != nil {
				t.Fatalf("decode: %v", err)
			}
			var fresh TezosBlockJSON
			if err := json.Unmarshal(raw, &fresh); err != nil {
				t.Fatal(err)
			}
			if !equivalentTezos(reusedTezos, &fresh) {
				t.Fatalf("iteration %d: reused Tezos decode diverged", i)
			}
		default:
			v, _ := quick.Value(reflect.TypeOf(XRPLedgerJSON{}), rng)
			l := v.Interface().(XRPLedgerJSON)
			raw, err := json.Marshal(&l)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.DecodeXRPLedger(raw, reusedXRP); err != nil {
				t.Fatalf("decode: %v", err)
			}
			var fresh XRPLedgerJSON
			if err := json.Unmarshal(raw, &fresh); err != nil {
				t.Fatal(err)
			}
			if !equivalentXRP(reusedXRP, &fresh) {
				t.Fatalf("iteration %d: reused XRP decode diverged", i)
			}
		}
	}
}

// The equivalent* helpers compare semantically: a reused struct may hold an
// empty-but-non-nil slice or map where a fresh decode holds nil.

func equivalentEOS(a, b *EOSBlockJSON) bool {
	if a.BlockNum != b.BlockNum || a.ID != b.ID || a.Previous != b.Previous ||
		a.Timestamp != b.Timestamp || a.Producer != b.Producer ||
		len(a.Transactions) != len(b.Transactions) {
		return false
	}
	for i := range a.Transactions {
		x, y := &a.Transactions[i], &b.Transactions[i]
		if x.Status != y.Status || x.Trx.ID != y.Trx.ID ||
			len(x.Trx.Transaction.Actions) != len(y.Trx.Transaction.Actions) {
			return false
		}
		for j := range x.Trx.Transaction.Actions {
			p, q := &x.Trx.Transaction.Actions[j], &y.Trx.Transaction.Actions[j]
			if p.Account != q.Account || p.Name != q.Name || p.Inline != q.Inline ||
				len(p.Authorization) != len(q.Authorization) || !equalMap(p.Data, q.Data) {
				return false
			}
			for k := range p.Authorization {
				if !equalMap(p.Authorization[k], q.Authorization[k]) {
					return false
				}
			}
		}
	}
	return true
}

func equalMap(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

func equivalentTezos(a, b *TezosBlockJSON) bool {
	if a.Level != b.Level || a.Hash != b.Hash || a.Predecessor != b.Predecessor ||
		a.Timestamp != b.Timestamp || a.Baker != b.Baker ||
		len(a.Operations) != len(b.Operations) {
		return false
	}
	for i := range a.Operations {
		if a.Operations[i] != b.Operations[i] {
			return false
		}
	}
	return true
}

func equivalentXRP(a, b *XRPLedgerJSON) bool {
	if a.LedgerIndex != b.LedgerIndex || a.LedgerHash != b.LedgerHash ||
		a.ParentHash != b.ParentHash || a.CloseTime != b.CloseTime ||
		a.TxCount != b.TxCount || len(a.Transactions) != len(b.Transactions) {
		return false
	}
	for i := range a.Transactions {
		x, y := &a.Transactions[i], &b.Transactions[i]
		if x.Hash != y.Hash || x.TransactionType != y.TransactionType ||
			x.Account != y.Account || x.Destination != y.Destination ||
			x.DestinationTag != y.DestinationTag || x.Fee != y.Fee ||
			x.Sequence != y.Sequence || x.OfferSequence != y.OfferSequence ||
			x.Result != y.Result || x.Executed != y.Executed ||
			x.RestingSequence != y.RestingSequence ||
			!equalAmount(x.Amount, y.Amount) || !equalAmount(x.TakerGets, y.TakerGets) ||
			!equalAmount(x.TakerPays, y.TakerPays) || !equalAmount(x.LimitAmount, y.LimitAmount) ||
			!equalAmount(x.DeliveredAmount, y.DeliveredAmount) {
			return false
		}
	}
	return true
}

func equalAmount(a, b *XRPAmountJSON) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}
