package wire

import "encoding/json"

// AppendTezosBlock renders b as octez-style block JSON, byte-identical to
// encoding/json.Marshal of the same struct, appending to dst.
func (c *Codec) AppendTezosBlock(dst []byte, b *TezosBlockJSON) []byte {
	dst = append(dst, `{"level":`...)
	dst = appendInt(dst, b.Level)
	dst = appendKey(dst, "hash")
	dst = appendJSONString(dst, b.Hash)
	dst = appendKey(dst, "predecessor")
	dst = appendJSONString(dst, b.Predecessor)
	dst = appendKey(dst, "timestamp")
	dst = appendJSONString(dst, b.Timestamp)
	dst = appendKey(dst, "baker")
	dst = appendJSONString(dst, b.Baker)
	dst = appendKey(dst, "operations")
	if b.Operations == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range b.Operations {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendTezosOperation(dst, &b.Operations[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendTezosOperation(dst []byte, op *TezosOperationJSON) []byte {
	dst = append(dst, `{"kind":`...)
	dst = appendJSONString(dst, op.Kind)
	if op.Source != "" {
		dst = appendKey(dst, "source")
		dst = appendJSONString(dst, op.Source)
	}
	if op.Destination != "" {
		dst = appendKey(dst, "destination")
		dst = appendJSONString(dst, op.Destination)
	}
	if op.Amount != 0 {
		dst = appendKey(dst, "amount")
		dst = appendInt(dst, op.Amount)
	}
	if op.Fee != 0 {
		dst = appendKey(dst, "fee")
		dst = appendInt(dst, op.Fee)
	}
	if op.Level != 0 {
		dst = appendKey(dst, "level")
		dst = appendInt(dst, op.Level)
	}
	if op.SlotCount != 0 {
		dst = appendKey(dst, "slot_count")
		dst = appendInt(dst, int64(op.SlotCount))
	}
	if op.Proposal != "" {
		dst = appendKey(dst, "proposal")
		dst = appendJSONString(dst, op.Proposal)
	}
	if op.Ballot != "" {
		dst = appendKey(dst, "ballot")
		dst = appendJSONString(dst, op.Ballot)
	}
	if op.Rolls != 0 {
		dst = appendKey(dst, "rolls")
		dst = appendInt(dst, op.Rolls)
	}
	if op.Delegate != "" {
		dst = appendKey(dst, "delegate")
		dst = appendJSONString(dst, op.Delegate)
	}
	return append(dst, '}')
}

// DecodeTezosBlock parses raw into the (typically pooled) block struct,
// reusing its operation slice capacity; see DecodeEOSBlock for the
// fallback contract.
func (c *Codec) DecodeTezosBlock(raw []byte, into *TezosBlockJSON) error {
	if err := c.decodeTezosBlock(raw, into); err != nil {
		// Zero struct for fresh-struct stdlib semantics; see DecodeEOSBlock.
		*into = TezosBlockJSON{}
		return json.Unmarshal(raw, into)
	}
	return nil
}

// Canonical field-name sets; see the EOS decoder for the fold contract.
var (
	tezosBlockFields = []string{"level", "hash", "predecessor", "timestamp", "baker", "operations"}
	tezosOpFields    = []string{"kind", "source", "destination", "amount", "fee", "level", "slot_count", "proposal", "ballot", "rolls", "delegate"}
)

func resetTezosBlock(b *TezosBlockJSON) {
	b.Level = 0
	b.Hash, b.Predecessor, b.Timestamp, b.Baker = "", "", "", ""
	b.Operations = b.Operations[:0]
}

func (c *Codec) decodeTezosBlock(raw []byte, into *TezosBlockJSON) error {
	l := &c.lex
	l.reset(raw)
	resetTezosBlock(into)
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return l.trailing()
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "level":
			if err := l.decodeInt64(&into.Level); err != nil {
				return err
			}
		case "hash":
			if err := c.decodeStr(&into.Hash); err != nil {
				return err
			}
		case "predecessor":
			if err := c.decodeStr(&into.Predecessor); err != nil {
				return err
			}
		case "timestamp":
			if err := c.decodeStr(&into.Timestamp); err != nil {
				return err
			}
		case "baker":
			if err := c.decodeStr(&into.Baker); err != nil {
				return err
			}
		case "operations":
			if l.tryNull() {
				break
			}
			if err := l.expect('['); err != nil {
				return err
			}
			if into.Operations == nil {
				into.Operations = make([]TezosOperationJSON, 0, 8)
			}
			if !l.tryConsume(']') {
				for {
					var op *TezosOperationJSON
					into.Operations, op = growTezosOp(into.Operations)
					if err := c.decodeTezosOperation(op); err != nil {
						return err
					}
					if l.tryConsume(',') {
						continue
					}
					if err := l.expect(']'); err != nil {
						return err
					}
					break
				}
			}
		default:
			if err := l.foldedField(key, tezosBlockFields); err != nil {
				return err
			}
			if err := l.skipValue(0); err != nil {
				return err
			}
		}
		if l.tryConsume(',') {
			continue
		}
		if err := l.expect('}'); err != nil {
			return err
		}
		return l.trailing()
	}
}

func growTezosOp(s []TezosOperationJSON) ([]TezosOperationJSON, *TezosOperationJSON) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
	} else {
		s = append(s, TezosOperationJSON{})
	}
	op := &s[len(s)-1]
	*op = TezosOperationJSON{}
	return s, op
}

func (c *Codec) decodeTezosOperation(op *TezosOperationJSON) error {
	l := &c.lex
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "kind":
			err = c.decodeStr(&op.Kind)
		case "source":
			err = c.decodeStr(&op.Source)
		case "destination":
			err = c.decodeStr(&op.Destination)
		case "amount":
			err = l.decodeInt64(&op.Amount)
		case "fee":
			err = l.decodeInt64(&op.Fee)
		case "level":
			err = l.decodeInt64(&op.Level)
		case "slot_count":
			err = l.decodeIntField(&op.SlotCount)
		case "proposal":
			err = c.decodeStr(&op.Proposal)
		case "ballot":
			err = c.decodeStr(&op.Ballot)
		case "rolls":
			err = l.decodeInt64(&op.Rolls)
		case "delegate":
			err = c.decodeStr(&op.Delegate)
		default:
			if err = l.foldedField(key, tezosOpFields); err == nil {
				err = l.skipValue(0)
			}
		}
		if err != nil {
			return err
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

// decodeInt64 reads an integer (or null, a no-op) into dst.
func (l *lexer) decodeInt64(dst *int64) error {
	if l.tryNull() {
		return nil
	}
	n, err := l.readInt64()
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

// decodeIntField reads an int-sized integer (or null) into dst.
func (l *lexer) decodeIntField(dst *int) error {
	if l.tryNull() {
		return nil
	}
	n, err := l.readInt64()
	if err != nil {
		return err
	}
	v := int(n)
	if int64(v) != n {
		return l.errf("number out of int range")
	}
	*dst = v
	return nil
}
