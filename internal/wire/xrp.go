package wire

import (
	"encoding/json"
	"math"
)

// AppendXRPLedger renders l as rippled-style ledger JSON, byte-identical to
// encoding/json.Marshal of the same struct, appending to dst.
func (c *Codec) AppendXRPLedger(dst []byte, l *XRPLedgerJSON) []byte {
	dst = append(dst, `{"ledger_index":`...)
	dst = appendInt(dst, l.LedgerIndex)
	dst = appendKey(dst, "ledger_hash")
	dst = appendJSONString(dst, l.LedgerHash)
	dst = appendKey(dst, "parent_hash")
	dst = appendJSONString(dst, l.ParentHash)
	dst = appendKey(dst, "close_time_human")
	dst = appendJSONString(dst, l.CloseTime)
	dst = appendKey(dst, "transaction_count")
	dst = appendInt(dst, int64(l.TxCount))
	if len(l.Transactions) > 0 {
		dst = appendKey(dst, "transactions")
		dst = append(dst, '[')
		for i := range l.Transactions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendXRPTx(dst, &l.Transactions[i])
		}
		dst = append(dst, ']')
	}
	return append(dst, '}')
}

func appendXRPTx(dst []byte, tx *XRPTxJSON) []byte {
	dst = append(dst, `{"hash":`...)
	dst = appendJSONString(dst, tx.Hash)
	dst = appendKey(dst, "TransactionType")
	dst = appendJSONString(dst, tx.TransactionType)
	dst = appendKey(dst, "Account")
	dst = appendJSONString(dst, tx.Account)
	if tx.Destination != "" {
		dst = appendKey(dst, "Destination")
		dst = appendJSONString(dst, tx.Destination)
	}
	if tx.DestinationTag != 0 {
		dst = appendKey(dst, "DestinationTag")
		dst = appendUint(dst, uint64(tx.DestinationTag))
	}
	dst = appendKey(dst, "Fee")
	dst = appendInt(dst, tx.Fee)
	dst = appendKey(dst, "Sequence")
	dst = appendUint(dst, uint64(tx.Sequence))
	dst = appendXRPAmountField(dst, "Amount", tx.Amount)
	dst = appendXRPAmountField(dst, "TakerGets", tx.TakerGets)
	dst = appendXRPAmountField(dst, "TakerPays", tx.TakerPays)
	dst = appendXRPAmountField(dst, "LimitAmount", tx.LimitAmount)
	dst = appendXRPAmountField(dst, "delivered_amount", tx.DeliveredAmount)
	if tx.OfferSequence != 0 {
		dst = appendKey(dst, "OfferSequence")
		dst = appendUint(dst, uint64(tx.OfferSequence))
	}
	dst = appendKey(dst, "meta_TransactionResult")
	dst = appendJSONString(dst, tx.Result)
	if tx.Executed {
		dst = append(dst, `,"executed":true`...)
	}
	if tx.RestingSequence != 0 {
		dst = appendKey(dst, "resting_sequence")
		dst = appendUint(dst, uint64(tx.RestingSequence))
	}
	return append(dst, '}')
}

func appendXRPAmountField(dst []byte, key string, a *XRPAmountJSON) []byte {
	if a == nil {
		return dst
	}
	dst = appendKey(dst, key)
	dst = append(dst, `{"currency":`...)
	dst = appendJSONString(dst, a.Currency)
	if a.Issuer != "" {
		dst = appendKey(dst, "issuer")
		dst = appendJSONString(dst, a.Issuer)
	}
	dst = appendKey(dst, "value")
	dst = appendInt(dst, a.Value)
	return append(dst, '}')
}

// DecodeXRPLedger parses a bare ledger object into the (typically pooled)
// struct; see DecodeEOSBlock for the fallback contract.
func (c *Codec) DecodeXRPLedger(raw []byte, into *XRPLedgerJSON) error {
	c.lex.reset(raw)
	if err := c.decodeXRPLedgerValue(into, true); err != nil {
		// Zero struct for fresh-struct stdlib semantics; see DecodeEOSBlock.
		*into = XRPLedgerJSON{}
		return json.Unmarshal(raw, into)
	}
	return nil
}

// DecodeXRPLedgerResult parses the rippled command envelope
// {"ledger": {...}, ...} the collector receives, extracting the ledger.
func (c *Codec) DecodeXRPLedgerResult(raw []byte, into *XRPLedgerJSON) error {
	if err := c.decodeXRPLedgerResult(raw, into); err != nil {
		*into = XRPLedgerJSON{}
		var res struct {
			Ledger *XRPLedgerJSON `json:"ledger"`
		}
		res.Ledger = into
		return json.Unmarshal(raw, &res)
	}
	return nil
}

// Canonical field-name sets; see the EOS decoder for the fold contract.
var (
	xrpEnvelopeFields = []string{"ledger"}
	xrpLedgerFields   = []string{"ledger_index", "ledger_hash", "parent_hash", "close_time_human", "transaction_count", "transactions"}
	xrpTxFields       = []string{"hash", "TransactionType", "Account", "Destination", "DestinationTag", "Fee", "Sequence", "Amount", "TakerGets", "TakerPays", "LimitAmount", "delivered_amount", "OfferSequence", "meta_TransactionResult", "executed", "resting_sequence"}
	xrpAmountFields   = []string{"currency", "issuer", "value"}
)

func (c *Codec) decodeXRPLedgerResult(raw []byte, into *XRPLedgerJSON) error {
	l := &c.lex
	l.reset(raw)
	c.resetXRPLedger(into)
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return l.trailing()
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		if string(key) == "ledger" {
			if err := c.decodeXRPLedgerValue(into, false); err != nil {
				return err
			}
		} else if err := l.foldedField(key, xrpEnvelopeFields); err != nil {
			return err
		} else if err := l.skipValue(0); err != nil {
			return err
		}
		if l.tryConsume(',') {
			continue
		}
		if err := l.expect('}'); err != nil {
			return err
		}
		return l.trailing()
	}
}

// resetXRPLedger zeroes the ledger for refilling, recycling its transaction
// amount structs into the codec-independent free list.
func (c *Codec) resetXRPLedger(ld *XRPLedgerJSON) {
	ld.LedgerIndex = 0
	ld.LedgerHash, ld.ParentHash, ld.CloseTime = "", "", ""
	ld.TxCount = 0
	ld.Transactions = ld.Transactions[:0]
}

// decodeXRPLedgerValue parses one ledger object. top marks a whole-payload
// decode that must consume trailing input.
func (c *Codec) decodeXRPLedgerValue(into *XRPLedgerJSON, top bool) error {
	l := &c.lex
	if top {
		c.resetXRPLedger(into)
	}
	if !top && l.tryNull() {
		return nil
	}
	if err := l.expect('{'); err != nil {
		return err
	}
	done := func() error {
		if top {
			return l.trailing()
		}
		return nil
	}
	if l.tryConsume('}') {
		return done()
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "ledger_index":
			err = l.decodeInt64(&into.LedgerIndex)
		case "ledger_hash":
			err = c.decodeStr(&into.LedgerHash)
		case "parent_hash":
			err = c.decodeStr(&into.ParentHash)
		case "close_time_human":
			err = c.decodeStr(&into.CloseTime)
		case "transaction_count":
			err = l.decodeIntField(&into.TxCount)
		case "transactions":
			if l.tryNull() {
				break
			}
			if err = l.expect('['); err != nil {
				break
			}
			if into.Transactions == nil {
				into.Transactions = make([]XRPTxJSON, 0, 8)
			}
			if !l.tryConsume(']') {
				for {
					var tx *XRPTxJSON
					into.Transactions, tx = c.growXRPTx(into.Transactions)
					if err = c.decodeXRPTx(tx); err != nil {
						return err
					}
					if l.tryConsume(',') {
						continue
					}
					if err = l.expect(']'); err != nil {
						return err
					}
					break
				}
			}
		default:
			if err = l.foldedField(key, xrpLedgerFields); err == nil {
				err = l.skipValue(0)
			}
		}
		if err != nil {
			return err
		}
		if l.tryConsume(',') {
			continue
		}
		if err := l.expect('}'); err != nil {
			return err
		}
		return done()
	}
}

// growXRPTx extends s by one element, recycling the revived element's
// amount structs into the codec's free list (fields present in the JSON
// take them back; absent fields stay nil, as encoding/json leaves them).
func (c *Codec) growXRPTx(s []XRPTxJSON) ([]XRPTxJSON, *XRPTxJSON) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
	} else {
		s = append(s, XRPTxJSON{})
	}
	tx := &s[len(s)-1]
	c.freeAmount(tx.Amount)
	c.freeAmount(tx.TakerGets)
	c.freeAmount(tx.TakerPays)
	c.freeAmount(tx.LimitAmount)
	c.freeAmount(tx.DeliveredAmount)
	*tx = XRPTxJSON{}
	return s, tx
}

const maxFreeAmounts = 4096

func (c *Codec) freeAmount(a *XRPAmountJSON) {
	if a != nil && len(c.amounts) < maxFreeAmounts {
		c.amounts = append(c.amounts, a)
	}
}

func (c *Codec) getAmount() *XRPAmountJSON {
	if n := len(c.amounts); n > 0 {
		a := c.amounts[n-1]
		c.amounts = c.amounts[:n-1]
		*a = XRPAmountJSON{}
		return a
	}
	return new(XRPAmountJSON)
}

func (c *Codec) decodeXRPTx(tx *XRPTxJSON) error {
	l := &c.lex
	if err := l.expect('{'); err != nil {
		return err
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "hash":
			err = c.decodeStr(&tx.Hash)
		case "TransactionType":
			err = c.decodeStr(&tx.TransactionType)
		case "Account":
			err = c.decodeStr(&tx.Account)
		case "Destination":
			err = c.decodeStr(&tx.Destination)
		case "DestinationTag":
			err = l.decodeUint32(&tx.DestinationTag)
		case "Fee":
			err = l.decodeInt64(&tx.Fee)
		case "Sequence":
			err = l.decodeUint32(&tx.Sequence)
		case "Amount":
			err = c.decodeAmountField(&tx.Amount)
		case "TakerGets":
			err = c.decodeAmountField(&tx.TakerGets)
		case "TakerPays":
			err = c.decodeAmountField(&tx.TakerPays)
		case "LimitAmount":
			err = c.decodeAmountField(&tx.LimitAmount)
		case "delivered_amount":
			err = c.decodeAmountField(&tx.DeliveredAmount)
		case "OfferSequence":
			err = l.decodeUint32(&tx.OfferSequence)
		case "meta_TransactionResult":
			err = c.decodeStr(&tx.Result)
		case "executed":
			if !l.tryNull() {
				var v bool
				if v, err = l.readBool(); err == nil {
					tx.Executed = v
				}
			}
		case "resting_sequence":
			err = l.decodeUint32(&tx.RestingSequence)
		default:
			if err = l.foldedField(key, xrpTxFields); err == nil {
				err = l.skipValue(0)
			}
		}
		if err != nil {
			return err
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

func (l *lexer) decodeUint32(dst *uint32) error {
	if l.tryNull() {
		return nil
	}
	n, err := l.readUint32()
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func (c *Codec) decodeAmountField(dst **XRPAmountJSON) error {
	l := &c.lex
	if l.tryNull() {
		// encoding/json sets pointer fields to nil on null.
		*dst = nil
		return nil
	}
	if err := l.expect('{'); err != nil {
		return err
	}
	a := *dst
	if a == nil {
		a = c.getAmount()
		*dst = a
	} else {
		*a = XRPAmountJSON{}
	}
	if l.tryConsume('}') {
		return nil
	}
	for {
		key, err := l.readString()
		if err != nil {
			return err
		}
		if err := l.expect(':'); err != nil {
			return err
		}
		switch string(key) {
		case "currency":
			err = c.decodeStr(&a.Currency)
		case "issuer":
			err = c.decodeStr(&a.Issuer)
		case "value":
			err = l.decodeInt64(&a.Value)
		default:
			if err = l.foldedField(key, xrpAmountFields); err == nil {
				err = l.skipValue(0)
			}
		}
		if err != nil {
			return err
		}
		if l.tryConsume(',') {
			continue
		}
		return l.expect('}')
	}
}

// AppendXRPLedgerResponse renders the whole rippled WebSocket envelope for
// a successful ledger command — {"id":…,"status":"success","type":
// "response","result":{"ledger":…,"ledger_index":…,"validated":true}} —
// matching what encoding/json produced for the equivalent response struct.
// The reported ok is false when the request id has a shape the fast path
// does not render (caller falls back to reflection).
func (c *Codec) AppendXRPLedgerResponse(dst []byte, id any, l *XRPLedgerJSON, index int64) ([]byte, bool) {
	dst = append(dst, `{"id":`...)
	switch v := id.(type) {
	case nil:
		dst = append(dst, "null"...)
	case string:
		dst = appendJSONString(dst, v)
	case int:
		dst = appendInt(dst, int64(v))
	case int64:
		dst = appendInt(dst, v)
	case json.Number:
		dst = append(dst, v.String()...)
	case float64:
		// Request ids arrive as float64 via encoding/json; integral values
		// render like stdlib. Non-integral ids take the fallback.
		if v != math.Trunc(v) || math.Abs(v) > 1<<53 {
			return dst, false
		}
		dst = appendInt(dst, int64(v))
	default:
		return dst, false
	}
	dst = append(dst, `,"status":"success","type":"response","result":{"ledger":`...)
	dst = c.AppendXRPLedger(dst, l)
	dst = append(dst, `,"ledger_index":`...)
	dst = appendInt(dst, index)
	dst = append(dst, `,"validated":true}}`...)
	return dst, true
}
