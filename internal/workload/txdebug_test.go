package workload

import (
	"fmt"
	"testing"

	"repro/internal/tezos"
)

func TestTxDebug(t *testing.T) {
	s, err := BuildTezos(TezosOptions{Scale: 800, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	bySource := map[tezos.Address]int64{}
	var txs int64
	for lvl := int64(1); lvl <= s.Chain.HeadLevel(); lvl++ {
		for _, op := range s.Chain.GetBlock(lvl).Operations {
			if op.Kind == tezos.KindTransaction {
				txs++
				bySource[op.Source]++
			}
		}
	}
	fmt.Println("blocks:", blocks, "txs:", txs, "rejected:", s.Chain.Rejected)
	fmt.Println("hotwallet:", bySource[s.HotWallet], "airdrop:", bySource[s.Airdropper],
		"third:", bySource[s.FanThird], "moon:", bySource[s.FanMoon], "kt:", bySource[s.KTDistributor])
	var fanTotal int64
	for _, a := range []tezos.Address{s.HotWallet, s.Airdropper, s.FanThird, s.FanMoon, s.KTDistributor} {
		fanTotal += bySource[a]
	}
	fmt.Println("fan total:", fanTotal, "background:", txs-fanTotal)
}
