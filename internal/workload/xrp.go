package workload

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/xrp"
)

// XRPOptions parameterizes the XRP Ledger scenario.
type XRPOptions struct {
	// Scale is the time-dilation divisor S (default 2,000 — about 1,019
	// ledgers and ~75k transactions for the full window).
	Scale      int64
	Seed       int64
	Start, End time.Time
	// SpamAccounts is the size of the payment-spam cluster (the real one
	// had 5,020 accounts; scaled runs shrink it).
	SpamAccounts int
}

// XRPScenario is the built scenario with handles for the explorer and the
// benchmarks.
type XRPScenario struct {
	State         *xrp.State
	Opts          XRPOptions
	LedgersPerDay float64

	// Usernames feeds the explorer directory: registered exchange and
	// gateway accounts, mirroring XRP Scan.
	Usernames map[xrp.Address]string

	// Named actors.
	Ripple, RippleEscrowee            xrp.Address
	Binance, Bithumb, Coinbase, UPbit xrp.Address
	Bittrex, Bitstamp, HuobiGlobal    xrp.Address
	BitGo, Liquid, Uphold, UPK        xrp.Address
	HuobiDeposit                      xrp.Address
	HuobiBots                         []xrp.Address
	MakerBot                          xrp.Address
	SpamHub                           xrp.Address
	SpamCluster                       []xrp.Address
	MyroneIssuer, MyroneBuyer         xrp.Address
	JunkGate                          xrp.Address
	GatehubFifth, BTC2Ripple, NoName  xrp.Address
	retail                            []xrp.Address

	// offerCancelQueue holds resting offer sequences eligible for cancel.
	offerCancelQueue []offerHandle
	// escrowReleases schedules the monthly Ripple treasury events.
	escrowReleases []escrowRelease
	// flags guards calendar events that must fire exactly once.
	flags map[string]bool
	// SetupLedgers is how many ledgers the build phase closed before the
	// observation window; they model pre-window history (gateway
	// issuance, trust lines) and the collector starts after them.
	SetupLedgers int64
}

type offerHandle struct {
	owner xrp.Address
	seq   uint32
}

type escrowRelease struct {
	finishAfter time.Time
	sequence    uint32
	done        bool
}

// Full-scale XRP calendar: ~22,154 ledgers per day (3.9 s close interval).
const xrpFullLedgersPerDay = 86_400.0 / 3.9

// Spam wave windows from Figure 3c/§4.3: late October into early November,
// and a larger one from late November into early December.
var (
	wave1Start = time.Date(2019, time.October, 24, 0, 0, 0, 0, time.UTC)
	wave1End   = time.Date(2019, time.November, 5, 0, 0, 0, 0, time.UTC)
	wave2Start = time.Date(2019, time.November, 24, 0, 0, 0, 0, time.UTC)
	wave2End   = time.Date(2019, time.December, 8, 0, 0, 0, 0, time.UTC)
)

func inWave(t time.Time) bool {
	return (t.After(wave1Start) && t.Before(wave1End)) ||
		(t.After(wave2Start) && t.Before(wave2End))
}

// BuildXRP constructs the ledger, exchange cluster, gateways, spam actors
// and the Myrone accounts.
func BuildXRP(opts XRPOptions) (*XRPScenario, error) {
	if opts.Scale < 1 {
		opts.Scale = 2000
	}
	if opts.Seed == 0 {
		opts.Seed = 44
	}
	if opts.Start.IsZero() {
		opts.Start = chain.ObservationStart
	}
	if opts.End.IsZero() {
		opts.End = chain.ObservationEnd
	}
	if opts.SpamAccounts <= 0 {
		opts.SpamAccounts = int(5020 / opts.Scale)
		// Keep the cluster wide even at coarse scales so no single drone
		// outranks the Huobi offer bots in the Figure 8 top list — on main
		// net the wave volume was spread over 5,020 accounts.
		if opts.SpamAccounts < 40 {
			opts.SpamAccounts = 40
		}
	}
	cfg := xrp.DefaultConfig(opts.Scale)
	cfg.Seed = opts.Seed
	cfg.Start = opts.Start
	st := xrp.New(cfg)

	s := &XRPScenario{
		State:         st,
		Opts:          opts,
		LedgersPerDay: xrpFullLedgersPerDay / float64(opts.Scale),
		Usernames:     make(map[xrp.Address]string),
		flags:         make(map[string]bool),
	}

	named := func(label, username string, drops int64) xrp.Address {
		addr := xrp.NewAddress(label)
		st.Fund(addr, drops)
		if username != "" {
			s.Usernames[addr] = username
		}
		return addr
	}
	const bigXRP = 20_000_000_000 * xrp.DropsPerXRP // 20B XRP treasury-scale

	s.Ripple = named("ripple", "Ripple", 5*bigXRP)
	// The treasury's operational account is part of the Ripple cluster on
	// XRP Scan; Figure 12 attributes its escrow-return payments to Ripple.
	s.RippleEscrowee = named("ripple-escrow-ops", "Ripple", 100*xrp.DropsPerXRP)
	s.State.GetAccount(s.RippleEscrowee).Parent = s.Ripple
	s.Binance = named("binance", "Binance", bigXRP)
	s.Bithumb = named("bithumb", "Bithumb", bigXRP)
	s.Coinbase = named("coinbase", "Coinbase", bigXRP)
	s.UPbit = named("upbit", "UPbit", bigXRP)
	s.Bittrex = named("bittrex", "Bittrex", bigXRP)
	s.Bitstamp = named("bitstamp", "Bitstamp", bigXRP)
	s.HuobiGlobal = named("huobi", "Huobi Global", bigXRP)
	s.BitGo = named("bitgo", "BitGo", bigXRP)
	s.Liquid = named("liquid", "Liquid", bigXRP)
	s.Uphold = named("uphold", "Uphold", bigXRP)
	s.UPK = named("upk", "UPK", bigXRP/10)
	s.GatehubFifth = named("gatehub-fifth", "Gatehub Fifth", bigXRP/100)
	s.BTC2Ripple = named("btc2ripple", "BTC 2 Ripple", bigXRP/100)
	s.NoName = named("noname-issuer", "", bigXRP/100)
	s.JunkGate = named("junk-gateway", "", bigXRP/100)

	// Huobi's deposit account requires destination tags, like all large
	// exchanges.
	s.HuobiDeposit = named("huobi-deposit", "", 1000*xrp.DropsPerXRP)
	s.State.GetAccount(s.HuobiDeposit).Parent = s.HuobiGlobal
	s.State.GetAccount(s.HuobiDeposit).RequireDestTag = true

	// The ten offer-spam bots are Huobi descendants (Figure 8): activated
	// by the Huobi account, so the explorer clusters them as
	// "Huobi Global -- descendant".
	for i := 0; i < 10; i++ {
		bot := xrp.NewAddress(fmt.Sprintf("huobi-bot-%02d", i))
		st.Fund(bot, 1_000_000*xrp.DropsPerXRP)
		st.GetAccount(bot).Parent = s.HuobiGlobal
		s.HuobiBots = append(s.HuobiBots, bot)
	}
	s.MakerBot = named("maker-bot", "", 100_000_000*xrp.DropsPerXRP)

	// Payment-spam cluster: the hub plus its activated drones.
	s.SpamHub = named("spam-hub", "", 2_000_000*xrp.DropsPerXRP)
	for i := 0; i < opts.SpamAccounts; i++ {
		drone := xrp.NewAddress(fmt.Sprintf("spam-drone-%04d", i))
		st.Fund(drone, 200*xrp.DropsPerXRP)
		st.GetAccount(drone).Parent = s.SpamHub
		s.SpamCluster = append(s.SpamCluster, drone)
	}

	// Myrone Bagalay's cluster: the issuer activated by Liquid, the buyer
	// by Uphold (§4.3).
	s.MyroneIssuer = named("myrone-issuer", "", 10_000*xrp.DropsPerXRP)
	st.GetAccount(s.MyroneIssuer).Parent = s.Liquid
	s.MyroneBuyer = named("myrone-buyer", "", 15_000_000_000*xrp.DropsPerXRP)
	st.GetAccount(s.MyroneBuyer).Parent = s.Uphold

	// Retail users.
	for i := 0; i < 40; i++ {
		addr := xrp.NewAddress(fmt.Sprintf("retail-%03d", i))
		st.Fund(addr, 50_000*xrp.DropsPerXRP)
		s.retail = append(s.retail, addr)
	}

	if err := s.setupTrustAndIOUs(); err != nil {
		return nil, err
	}
	s.setupEscrows()
	s.SetupLedgers = st.HeadIndex()
	return s, nil
}

// setupTrustAndIOUs opens the trust lines and issues the IOUs the actors
// move around: worthless hub BTC for the spammers, junk IOUs for retail
// chatter, valuable gateway USD/EUR/CNY, and the BTC IOUs whose rates
// Figure 11a tabulates.
func (s *XRPScenario) setupTrustAndIOUs() error {
	st := s.State
	trust := func(holder xrp.Address, currency string, issuer xrp.Address, limit int64) {
		st.Submit(xrp.Transaction{
			Type: xrp.TxTrustSet, Account: holder,
			LimitAmount: xrp.IOU(currency, issuer, limit),
		})
	}
	// Spam drones trust the hub's BTC.
	for _, d := range s.SpamCluster {
		trust(d, "BTC", s.SpamHub, 1_000_000_000)
	}
	// Retail trusts the junk gateway and the fiat gateways.
	for _, r := range s.retail {
		trust(r, "JNK", s.JunkGate, 1_000_000_000)
		trust(r, "USD", s.Bitstamp, 10_000_000)
		trust(r, "EUR", s.GatehubFifth, 10_000_000)
		trust(r, "CNY", s.HuobiGlobal, 10_000_000)
	}
	// The maker bot holds every BTC flavour to make markets (Figure 11a)
	// and Bitstamp USD for its continuous USD/XRP quotes.
	for _, issuer := range []xrp.Address{s.Bitstamp, s.GatehubFifth, s.BTC2Ripple, s.NoName} {
		trust(s.MakerBot, "BTC", issuer, 1_000_000)
	}
	trust(s.MakerBot, "USD", s.Bitstamp, 100_000_000)
	trust(s.MyroneBuyer, "BTC", s.MyroneIssuer, 1_000_000_000)
	// Huobi bots hold Huobi CNY to quote the CNY/XRP book.
	for _, b := range s.HuobiBots {
		trust(b, "CNY", s.HuobiGlobal, 1_000_000_000)
	}
	st.CloseLedger()

	// Issue the IOUs.
	issue := func(issuer, to xrp.Address, currency string, units int64) {
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: issuer, Destination: to,
			Amount: xrp.IOU(currency, issuer, units),
		})
	}
	for _, d := range s.SpamCluster {
		issue(s.SpamHub, d, "BTC", 1_000_000)
	}
	for _, r := range s.retail {
		issue(s.JunkGate, r, "JNK", 500_000)
		issue(s.Bitstamp, r, "USD", 50_000)
		issue(s.GatehubFifth, r, "EUR", 20_000)
		issue(s.HuobiGlobal, r, "CNY", 100_000)
	}
	for _, issuer := range []xrp.Address{s.Bitstamp, s.GatehubFifth, s.BTC2Ripple, s.NoName} {
		issue(issuer, s.MakerBot, "BTC", 10_000)
	}
	issue(s.Bitstamp, s.MakerBot, "USD", 50_000_000)
	// Note: the Myrone issuer needs no pre-issued BTC — IOU issuers create
	// value out of thin air when they pay or sell their own token.
	for _, b := range s.HuobiBots {
		issue(s.HuobiGlobal, b, "CNY", 100_000_000)
	}
	led := st.CloseLedger()
	for _, tx := range led.Transactions {
		if !tx.Result.Success() {
			return fmt.Errorf("workload: xrp setup tx %s failed: %s", tx.Type, tx.Result)
		}
	}
	return nil
}

// setupEscrows creates the Ripple treasury escrows whose releases punctuate
// the window (1B XRP on the first of each month, ~90 % returned). Amounts
// shrink with the scale divisor so the Figure 12 volume ranking stays
// intact: multiply by S to recover the main-net figures.
func (s *XRPScenario) setupEscrows() {
	st := s.State
	months := []time.Time{
		time.Date(2019, time.October, 2, 0, 0, 0, 0, time.UTC),
		time.Date(2019, time.November, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2019, time.December, 1, 0, 0, 0, 0, time.UTC),
	}
	release := 1_000_000_000 / s.Opts.Scale
	if release < 1000 {
		release = 1000
	}
	for _, m := range months {
		st.Submit(xrp.Transaction{
			Type: xrp.TxEscrowCreate, Account: s.Ripple, Destination: s.RippleEscrowee,
			Amount: xrp.XRP(release), FinishAfter: m,
		})
	}
	led := st.CloseLedger()
	for _, tx := range led.Transactions {
		if tx.Type == xrp.TxEscrowCreate && tx.Result.Success() {
			s.escrowReleases = append(s.escrowReleases, escrowRelease{
				finishAfter: tx.FinishAfter, sequence: tx.Sequence,
			})
		}
	}
}

// Run simulates the window and returns the number of ledgers closed.
func (s *XRPScenario) Run() int {
	st := s.State
	rng := chain.NewRNG(s.Opts.Seed + 1)
	lpd := xrpFullLedgersPerDay

	em := struct {
		hugeBots, midBots, makerOffers, retailOffers        Emitter
		baselinePay, wavePay, valuableXRP, valuableIOU      Emitter
		junkPay, trustSets, cancels, accountSets, pathDry   Emitter
		unfundedOffers, escrowsUser, signerList, regularKey Emitter
		botPayments, fills, rateTrades                      Emitter
	}{
		// Four heavyweight bots place ~5.5 offers/ledger each; six mid
		// bots ~0.75 each (Figure 8's 7.3 % / 1.5 % shares).
		hugeBots:     Emitter{Rate: 4 * 5.5},
		midBots:      Emitter{Rate: 6 * 0.8},
		makerOffers:  Emitter{Rate: 1.3},
		retailOffers: Emitter{Rate: 6.0},
		// Payments: baseline worthless IOU chatter plus the spam waves.
		baselinePay: Emitter{Rate: PerBlock(380_000, lpd)},
		wavePay:     Emitter{Rate: PerBlock(1_300_000, lpd)},
		// Valuable flows: large XRP transfers between exchanges and
		// gateway fiat payments.
		valuableXRP: Emitter{Rate: 1.40},
		valuableIOU: Emitter{Rate: 0.25},
		junkPay:     Emitter{Rate: 0},
		trustSets:   Emitter{Rate: PerBlock(2_825_199.0/92, lpd)},
		cancels:     Emitter{Rate: PerBlock(2_303_023.0/92, lpd)},
		accountSets: Emitter{Rate: PerBlock(119_455.0/92, lpd)},
		signerList:  Emitter{Rate: PerBlock(13_486.0/92, lpd)},
		regularKey:  Emitter{Rate: PerBlock(468.0/92, lpd)},
		escrowsUser: Emitter{Rate: PerBlock(473.0/92, lpd)},
		// Failures: dry payment paths and unfunded offers (10.7 % overall).
		pathDry:        Emitter{Rate: 3.5},
		unfundedOffers: Emitter{Rate: 3.4},
		botPayments:    Emitter{Rate: 0.02}, // rare tagged Huobi sweeps
		fills:          Emitter{Rate: 0.075},
	}
	// The Figure 11a rate-setting trades are discrete December events
	// (~40 across the month at any scale): pace them against the number of
	// ledgers this run will actually close.
	totalLedgers := s.Opts.End.Sub(s.Opts.Start).Hours() / 24 * s.LedgersPerDay
	if totalLedgers < 1 {
		totalLedgers = 1
	}
	em.rateTrades = Emitter{Rate: 48.0 / totalLedgers}

	ledgers := 0
	amendmentDone := false
	for st.Now().Before(s.Opts.End) {
		now := st.Now()
		s.processEscrowReleases(now)
		s.injectOfferSpam(rng, em.hugeBots.Next(), em.midBots.Next())
		s.injectMakerActivity(rng, em.makerOffers.Next(), em.fills.Next())
		s.injectRetailOffers(rng, em.retailOffers.Next())
		s.injectPayments(rng, now, em.baselinePay.Next(), em.wavePay.Next(),
			em.valuableXRP.Next(), em.valuableIOU.Next(), em.junkPay.Next())
		s.injectHousekeeping(rng, em.trustSets.Next(), em.cancels.Next(),
			em.accountSets.Next(), em.signerList.Next(), em.regularKey.Next(), em.escrowsUser.Next())
		s.injectFailures(rng, em.pathDry.Next(), em.unfundedOffers.Next())
		s.injectRateTrades(rng, now, em.rateTrades.Next())
		for i := 0; i < em.botPayments.Next(); i++ {
			bot := chain.Pick(rng, s.HuobiBots)
			st.Submit(xrp.Transaction{
				Type: xrp.TxPayment, Account: bot, Destination: s.HuobiDeposit,
				DestinationTag: 104398, Amount: xrp.XRP(int64(rng.Intn(10_000) + 100)),
			})
		}
		if !amendmentDone && now.After(time.Date(2019, time.November, 15, 0, 0, 0, 0, time.UTC)) {
			st.Submit(xrp.Transaction{Type: xrp.TxEnableAmendment, Account: s.Ripple})
			amendmentDone = true
		}
		s.myroneEvents(now)

		led := st.CloseLedger()
		ledgers++
		// Track resting offers so cancels have something real to target.
		for _, tx := range led.Transactions {
			if tx.Type == xrp.TxOfferCreate && tx.RestingSequence != 0 && len(s.offerCancelQueue) < 4096 {
				s.offerCancelQueue = append(s.offerCancelQueue, offerHandle{tx.Account, tx.RestingSequence})
			}
		}
	}
	return ledgers
}

func (s *XRPScenario) processEscrowReleases(now time.Time) {
	st := s.State
	for i := range s.escrowReleases {
		rel := &s.escrowReleases[i]
		if rel.done || now.Before(rel.finishAfter) {
			continue
		}
		rel.done = true
		release := 1_000_000_000 / s.Opts.Scale
		if release < 1000 {
			release = 1000
		}
		// Finish the escrow, return 90 % to the treasury, spend the rest.
		st.Submit(xrp.Transaction{
			Type: xrp.TxEscrowFinish, Account: s.RippleEscrowee,
			Owner: s.Ripple, OfferSequence: rel.sequence,
		})
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: s.RippleEscrowee, Destination: s.Ripple,
			Amount: xrp.XRP(release * 9 / 10),
		})
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: s.RippleEscrowee, Destination: s.Binance,
			Amount: xrp.XRP(release/10 - 1),
		})
	}
}

// injectOfferSpam places the Huobi bots' off-market CNY/XRP quotes: never
// crossing, pure statistics inflation.
func (s *XRPScenario) injectOfferSpam(rng *chain.RNG, huge, mid int) {
	st := s.State
	place := func(bot xrp.Address) {
		// Ask far above or bid far below any plausible CNY rate.
		if rng.Bool(0.5) {
			st.Submit(xrp.Transaction{
				Type: xrp.TxOfferCreate, Account: bot,
				TakerGets: xrp.IOU("CNY", s.HuobiGlobal, int64(rng.Intn(900)+100)),
				TakerPays: xrp.XRP(int64(rng.Intn(900)+100) * 1000), // absurd ask
			})
		} else {
			st.Submit(xrp.Transaction{
				Type: xrp.TxOfferCreate, Account: bot,
				TakerGets: xrp.Drops(int64(rng.Intn(900)+100) * 1000), // dust bid
				TakerPays: xrp.IOU("CNY", s.HuobiGlobal, int64(rng.Intn(900)+100)*1000),
			})
		}
	}
	for i := 0; i < huge; i++ {
		place(s.HuobiBots[rng.Intn(4)])
	}
	for i := 0; i < mid; i++ {
		place(s.HuobiBots[4+rng.Intn(6)])
	}
}

// injectMakerActivity: the rs9tBK-style market maker quotes continuously
// and occasionally trades against a retail taker, producing the rare
// fulfilled offers.
func (s *XRPScenario) injectMakerActivity(rng *chain.RNG, offers, fills int) {
	st := s.State
	for i := 0; i < offers; i++ {
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: s.MakerBot,
			TakerGets: xrp.IOU("USD", s.Bitstamp, int64(rng.Intn(50)+10)),
			TakerPays: xrp.XRP(int64(float64(rng.Intn(50)+10) * 4.9)),
		})
	}
	for i := 0; i < fills; i++ {
		// A matched pair: maker sells USD at 4.9 XRP, retail buys through.
		units := int64(rng.Intn(20) + 5)
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: s.MakerBot,
			TakerGets: xrp.IOU("USD", s.Bitstamp, units),
			TakerPays: xrp.XRP(int64(float64(units) * 4.9)),
		})
		taker := chain.Pick(rng, s.retail)
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: taker,
			TakerGets: xrp.XRP(int64(float64(units)*4.9) + 1),
			TakerPays: xrp.IOU("USD", s.Bitstamp, units),
		})
	}
}

func (s *XRPScenario) injectRetailOffers(rng *chain.RNG, n int) {
	st := s.State
	for i := 0; i < n; i++ {
		r := chain.Pick(rng, s.retail)
		// Off-market JNK and USD quotes that rest forever.
		if rng.Bool(0.5) {
			st.Submit(xrp.Transaction{
				Type: xrp.TxOfferCreate, Account: r,
				TakerGets: xrp.IOU("JNK", s.JunkGate, int64(rng.Intn(1000)+1)),
				TakerPays: xrp.XRP(int64(rng.Intn(1000)+1) * 100),
			})
		} else {
			st.Submit(xrp.Transaction{
				Type: xrp.TxOfferCreate, Account: r,
				TakerGets: xrp.IOU("USD", s.Bitstamp, int64(rng.Intn(100)+1)),
				TakerPays: xrp.XRP(int64(rng.Intn(100)+1) * 50),
			})
		}
	}
}

func (s *XRPScenario) injectPayments(rng *chain.RNG, now time.Time, baseline, wave, valuableXRP, valuableIOU, junk int) {
	st := s.State
	// Worthless hub-BTC shuffles (§4.3's spam), active mostly in waves.
	spamPayments := baseline / 3
	if inWave(now) {
		spamPayments += wave
	}
	for i := 0; i < spamPayments; i++ {
		from := chain.Pick(rng, s.SpamCluster)
		to := chain.Pick(rng, s.SpamCluster)
		if from == to {
			continue
		}
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: from, Destination: to,
			Amount: xrp.IOU("BTC", s.SpamHub, int64(rng.Intn(100)+1)),
		})
	}
	// Baseline worthless IOU chatter between retail users.
	for i := 0; i < baseline-spamPayments+junk; i++ {
		from := chain.Pick(rng, s.retail)
		to := chain.Pick(rng, s.retail)
		if from == to {
			continue
		}
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: from, Destination: to,
			Amount: xrp.IOU("JNK", s.JunkGate, int64(rng.Intn(500)+1)),
		})
	}
	// Valuable XRP transfers between exchange clusters, sized so the
	// Figure 12 volume ranking holds (Binance on top, Ripple ~10 %).
	exchanges := []struct {
		addr   xrp.Address
		weight float64
	}{
		{s.Binance, 5.2}, {s.Bithumb, 1.8}, {s.Coinbase, 1.5},
		{s.UPbit, 2.0}, {s.Bittrex, 2.5}, {s.Bitstamp, 1.2},
		{s.BitGo, 1.0}, {s.HuobiGlobal, 0.9}, {s.Liquid, 0.5}, {s.UPK, 0.3},
	}
	weights := make([]float64, len(exchanges))
	for i, e := range exchanges {
		weights[i] = e.weight
	}
	for i := 0; i < valuableXRP; i++ {
		from := exchanges[rng.WeightedPick(weights)].addr
		to := exchanges[rng.WeightedPick(weights)].addr
		if from == to {
			to = chain.Pick(rng, s.retail)
		}
		// ~15k XRP per transfer reproduces the 43B XRP / 92-day aggregate
		// at full scale.
		amount := int64(2_000 + rng.Intn(26_000))
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: from, Destination: to,
			Amount: xrp.XRP(amount),
		})
	}
	// Valuable fiat IOU payments (Bitstamp USD, Gatehub EUR, Huobi CNY).
	for i := 0; i < valuableIOU; i++ {
		from := chain.Pick(rng, s.retail)
		to := chain.Pick(rng, s.retail)
		if from == to {
			continue
		}
		switch rng.Intn(4) {
		case 0:
			st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: from, Destination: to,
				Amount: xrp.IOU("USD", s.Bitstamp, int64(rng.Intn(2000)+10))})
		case 1:
			st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: from, Destination: to,
				Amount: xrp.IOU("EUR", s.GatehubFifth, int64(rng.Intn(300)+5))})
		case 2:
			// Cross-currency: pay XRP, deliver Bitstamp USD through the
			// maker's book (the path payments behind PATH_DRY errors).
			units := int64(rng.Intn(20) + 1)
			sendMax := xrp.XRP(units * 6) // ~4.9 XRP/USD plus slippage room
			st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: from, Destination: to,
				Amount: xrp.IOU("USD", s.Bitstamp, units), SendMax: &sendMax})
		default:
			st.Submit(xrp.Transaction{Type: xrp.TxPayment, Account: from, Destination: to,
				Amount: xrp.IOU("CNY", s.HuobiGlobal, int64(rng.Intn(3000)+10))})
		}
	}
}

func (s *XRPScenario) injectHousekeeping(rng *chain.RNG, trusts, cancels, acctSets, signers, regKeys, escrows int) {
	st := s.State
	for i := 0; i < trusts; i++ {
		r := chain.Pick(rng, s.retail)
		st.Submit(xrp.Transaction{
			Type: xrp.TxTrustSet, Account: r,
			LimitAmount: xrp.IOU("JNK", s.JunkGate, int64(rng.Intn(2_000_000)+1000)),
		})
	}
	for i := 0; i < cancels; i++ {
		if len(s.offerCancelQueue) > 0 {
			h := s.offerCancelQueue[0]
			s.offerCancelQueue = s.offerCancelQueue[1:]
			st.Submit(xrp.Transaction{Type: xrp.TxOfferCancel, Account: h.owner, OfferSequence: h.seq})
		} else {
			r := chain.Pick(rng, s.retail)
			st.Submit(xrp.Transaction{Type: xrp.TxOfferCancel, Account: r, OfferSequence: uint32(rng.Intn(1000) + 1)})
		}
	}
	for i := 0; i < acctSets; i++ {
		st.Submit(xrp.Transaction{Type: xrp.TxAccountSet, Account: chain.Pick(rng, s.retail)})
	}
	for i := 0; i < signers; i++ {
		st.Submit(xrp.Transaction{Type: xrp.TxSignerListSet, Account: chain.Pick(rng, s.retail), DestinationTag: 2})
	}
	for i := 0; i < regKeys; i++ {
		r := chain.Pick(rng, s.retail)
		st.Submit(xrp.Transaction{Type: xrp.TxSetRegularKey, Account: r, Destination: chain.Pick(rng, s.retail)})
	}
	for i := 0; i < escrows; i++ {
		r := chain.Pick(rng, s.retail)
		st.Submit(xrp.Transaction{
			Type: xrp.TxEscrowCreate, Account: r, Destination: chain.Pick(rng, s.retail),
			Amount: xrp.XRP(int64(rng.Intn(100) + 25)), FinishAfter: st.Now().Add(24 * time.Hour),
		})
	}
}

// injectFailures produces the dataset's characteristic failures: PATH_DRY
// payments of untrusted IOUs and unfunded offers.
func (s *XRPScenario) injectFailures(rng *chain.RNG, pathDry, unfunded int) {
	st := s.State
	for i := 0; i < pathDry; i++ {
		from := chain.Pick(rng, s.retail)
		// Receiver without a USD line from this issuer: guaranteed dry.
		to := chain.Pick(rng, s.SpamCluster)
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: from, Destination: to,
			Amount: xrp.IOU("USD", s.Bitstamp, int64(rng.Intn(100)+1)),
		})
	}
	for i := 0; i < unfunded; i++ {
		from := chain.Pick(rng, s.retail)
		// Selling Bitstamp BTC they do not hold.
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: from,
			TakerGets: xrp.IOU("BTC", s.Bitstamp, int64(rng.Intn(10)+1)),
			TakerPays: xrp.XRP(int64(rng.Intn(10_000) + 100)),
		})
	}
}

// injectRateTrades generates the December BTC/XRP trades behind Figure 11a:
// each issuer's BTC trading near its published rate.
func (s *XRPScenario) injectRateTrades(rng *chain.RNG, now time.Time, n int) {
	if now.Month() != time.December {
		return
	}
	st := s.State
	rates := []struct {
		issuer xrp.Address
		rate   int64
	}{
		{s.Bitstamp, 36_050},
		{s.GatehubFifth, 35_817},
		{s.BTC2Ripple, 409},
		{s.NoName, 1},
	}
	for i := 0; i < n; i++ {
		r := rates[rng.Intn(len(rates))]
		// Maker sells 1 BTC at the rate; a funded taker crosses it.
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: s.MakerBot,
			TakerGets: xrp.IOU("BTC", r.issuer, 1),
			TakerPays: xrp.XRP(r.rate),
		})
		st.Submit(xrp.Transaction{
			Type: xrp.TxOfferCreate, Account: s.MyroneBuyer,
			TakerGets: xrp.XRP(r.rate + 1),
			TakerPays: xrp.IOU("BTC", r.issuer, 1),
		})
	}
}

// myroneEvents replays §4.3's manipulation: the huge BTC IOU payment, a
// self-trade at 30,500 XRP in mid-December, and the collapse trades near
// the window's end. Events fire on the first ledger at or after their
// calendar date, so coarse scales cannot skip them.
func (s *XRPScenario) myroneEvents(now time.Time) {
	st := s.State
	after := func(month time.Month, day int) bool {
		return !now.Before(time.Date(2019, month, day, 0, 0, 0, 0, time.UTC))
	}
	if after(time.December, 13) && s.flagOnce("myrone-pay") {
		// The 360,222 BTC IOU transfer, scaled by 1/S like every other
		// volume so its XRP-denominated share of Figure 12 stays at the
		// paper's ~25 % of the XRP band.
		amount := 360_222 / s.Opts.Scale
		if amount < 10 {
			amount = 10
		}
		st.Submit(xrp.Transaction{
			Type: xrp.TxPayment, Account: s.MyroneIssuer, Destination: s.MyroneBuyer,
			Amount: xrp.IOU("BTC", s.MyroneIssuer, amount),
		})
	}
	if after(time.December, 14) && s.flagOnce("myrone-30500") {
		s.myroneTrade(300, 30_500)
	}
	if after(time.December, 29) && s.flagOnce("myrone-1") {
		s.myroneTrade(10, 1)
	}
	if after(time.December, 30) && s.flagOnce("myrone-01") {
		s.myroneTrade(100, 0) // 0.1 XRP per BTC: sub-unit rate
	}
}

// myroneTrade executes btc IOUs against XRP at rate (XRP per BTC); rate 0
// means 0.1 XRP. The issuer sells its own IOU (always fundable) and the
// well-funded buyer account crosses it — both controlled by the same
// person, with the price set wherever they like (§4.3).
func (s *XRPScenario) myroneTrade(btc, rate int64) {
	st := s.State
	pays := btc * rate
	if rate == 0 {
		pays = btc / 10
	}
	st.Submit(xrp.Transaction{
		Type: xrp.TxOfferCreate, Account: s.MyroneIssuer,
		TakerGets: xrp.IOU("BTC", s.MyroneIssuer, btc),
		TakerPays: xrp.XRP(pays),
	})
	st.Submit(xrp.Transaction{
		Type: xrp.TxOfferCreate, Account: s.MyroneBuyer,
		TakerGets: xrp.XRP(pays + 1),
		TakerPays: xrp.IOU("BTC", s.MyroneIssuer, btc),
	})
}

func (s *XRPScenario) flagOnce(key string) bool {
	if s.flags[key] {
		return false
	}
	s.flags[key] = true
	return true
}
