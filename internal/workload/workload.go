// Package workload drives the three chain simulators with actor populations
// calibrated to the paper's measurements, so that the analysis pipeline
// re-derives the published statistics from mechanistically generated
// traffic: the EIDOS boomerang flood and WhaleEx wash-trading on EOS,
// endorsement-dominated throughput and the Babylon governance vote on
// Tezos, and the offer-spam, payment-spam and zero-value IOU economies on
// the XRP ledger.
//
// All scenarios accept a Scale divisor S: block intervals stretch by S and
// actor rates stay calibrated per block, so a scaled run carries 1/S of
// main-net traffic with identical shares, rankings and regime changes.
// Per-block arrival rates are scale-invariant: daily rate / blocks per day.
package workload

// Emitter converts a fractional per-block rate into integer event counts
// with deterministic carry, so low-rate actors (0.3 ops per block) still
// emit exactly the right long-run totals.
type Emitter struct {
	Rate float64
	acc  float64
}

// Next returns how many events to emit this block.
func (e *Emitter) Next() int {
	e.acc += e.Rate
	n := int(e.acc)
	e.acc -= float64(n)
	return n
}

// PerBlock converts a full-scale daily rate into a per-block rate given the
// full-scale blocks per day. Both numerator and denominator shrink by the
// same scale factor, so the result is scale-invariant.
func PerBlock(dailyRate, fullScaleBlocksPerDay float64) float64 {
	if fullScaleBlocksPerDay <= 0 {
		return 0
	}
	return dailyRate / fullScaleBlocksPerDay
}
