package workload

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/tezos"
)

// TezosOptions parameterizes the Tezos scenario.
type TezosOptions struct {
	// Scale is the time-dilation divisor S (default 100 — about 1,325
	// blocks and ~33k operations for the full window).
	Scale      int64
	Seed       int64
	Start, End time.Time
	// Bakers is the size of the baker set.
	Bakers int
}

// TezosScenario is the built scenario.
type TezosScenario struct {
	Chain        *tezos.Chain
	Opts         TezosOptions
	BlocksPerDay float64

	// The Figure 6 actor addresses.
	HotWallet, Airdropper, FanThird, FanMoon tezos.Address
	KTDistributor                            tezos.Address
	users                                    []tezos.Address
}

// Full-scale Tezos calendar: 1,440 blocks per day (60 s interval).
const tezosFullBlocksPerDay = 1440

const mutezPerXTZ = int64(1_000_000)

// tezosDailyRates are full-scale operations per day from Figure 1 over 92
// days.
var tezosDailyRates = struct {
	transactions float64
	reveals      float64
	seedNonces   float64
	doubleBaking float64
	delegations  float64
	originations float64
	activations  float64
}{
	transactions: 6_515, // 599,366 / 92
	reveals:      311,   // 28,626 / 92
	seedNonces:   311,
	doubleBaking: 4.0 / 92, // 4 double-baking accusations in the window
	delegations:  159,      // 14,611 / 92
	originations: 22.5,     // 2,073 / 92
	activations:  10.4,     // 960 / 92
}

// Figure 6 sender profiles: full-scale sent counts over the window and the
// average transactions per receiver that shape each sender's fan-out.
var tezosFanOuts = []struct {
	label      string
	totalSent  float64
	avgPerRecv float64
}{
	{"hotwallet", 43_099, 28.58},
	{"airdropper", 38_417, 1.0},
	{"fanthird", 25_631, 46.35},
	{"fanmoon", 21_691, 33.32},
	{"ktdistrib", 19_649, 15.35},
}

// BuildTezos constructs the chain, bakers and actor accounts.
func BuildTezos(opts TezosOptions) (*TezosScenario, error) {
	if opts.Scale < 1 {
		opts.Scale = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 22
	}
	if opts.Start.IsZero() {
		opts.Start = chain.ObservationStart
	}
	if opts.End.IsZero() {
		opts.End = chain.ObservationEnd
	}
	if opts.Bakers <= 0 {
		// Main net had ~450 bakers in late 2019; 150 is enough for the 32
		// endorsement slots to land on ~23 distinct bakers per block, the
		// paper's observed endorsement-operation rate.
		opts.Bakers = 150
	}
	cfg := tezos.DefaultConfig(opts.Scale)
	cfg.Seed = opts.Seed
	cfg.Start = opts.Start
	cfg.EndorsementParticipation = 0.75
	cfg.Governance.BlocksPerPeriod = 32_768 / opts.Scale
	if cfg.Governance.BlocksPerPeriod < 4 {
		cfg.Governance.BlocksPerPeriod = 4
	}
	c := tezos.New(cfg)

	rng := chain.NewRNG(opts.Seed)
	for i := 0; i < opts.Bakers; i++ {
		stake := (10_000 + rng.Int63n(90_000)) * mutezPerXTZ
		if err := c.RegisterBaker(tezos.NewImplicitAddress(fmt.Sprintf("baker-%03d", i)), stake); err != nil {
			return nil, err
		}
	}

	s := &TezosScenario{
		Chain:         c,
		Opts:          opts,
		BlocksPerDay:  float64(tezosFullBlocksPerDay) / float64(opts.Scale),
		HotWallet:     tezos.NewImplicitAddress("hotwallet"),
		Airdropper:    tezos.NewImplicitAddress("airdropper"),
		FanThird:      tezos.NewImplicitAddress("fanthird"),
		FanMoon:       tezos.NewImplicitAddress("fanmoon"),
		KTDistributor: tezos.NewOriginatedAddress("ktdistrib"),
	}
	for _, addr := range []tezos.Address{s.HotWallet, s.Airdropper, s.FanThird, s.FanMoon} {
		acct := c.FundAccount(addr, 5_000_000*mutezPerXTZ)
		acct.Revealed = true
	}
	// The KT1 distributor is an originated contract managed by the hot
	// wallet (4 of the 5 top senders in Figure 6 are regular accounts;
	// this one is the contract).
	kt := c.FundAccount(s.KTDistributor, 5_000_000*mutezPerXTZ)
	kt.Revealed = true
	kt.Manager = s.HotWallet

	for i := 0; i < 60; i++ {
		addr := tezos.NewImplicitAddress(fmt.Sprintf("user-%03d", i))
		acct := c.FundAccount(addr, 50_000*mutezPerXTZ)
		acct.Revealed = true
		s.users = append(s.users, addr)
	}
	return s, nil
}

// Run simulates the window and returns the number of blocks produced.
func (s *TezosScenario) Run() (int, error) {
	c := s.Chain
	rng := chain.NewRNG(s.Opts.Seed + 1)
	bpd := float64(tezosFullBlocksPerDay)

	// Fan-out senders keep their Figure 6 per-receiver averages at any
	// scale by shrinking their receiver pools with their totals.
	totalBlocks := float64(s.Opts.End.Sub(s.Opts.Start)) / float64(60*time.Second) / float64(s.Opts.Scale)
	type fanState struct {
		em     Emitter
		sender tezos.Address
		pool   []tezos.Address
		fresh  int // airdrop mode: always a new receiver
	}
	fans := make([]*fanState, 0, len(tezosFanOuts))
	for _, f := range tezosFanOuts {
		fs := &fanState{
			em:     Emitter{Rate: PerBlock(f.totalSent/92, bpd)},
			sender: s.senderFor(f.label),
		}
		expectedSent := PerBlock(f.totalSent/92, bpd) * totalBlocks
		poolSize := int(expectedSent/f.avgPerRecv + 0.5)
		if f.avgPerRecv <= 1 {
			fs.fresh = 1
		}
		if poolSize < 1 {
			poolSize = 1
		}
		for i := 0; i < poolSize; i++ {
			addr := tezos.NewImplicitAddress(fmt.Sprintf("%s-recv-%05d", f.label, i))
			c.FundAccount(addr, 1*mutezPerXTZ)
			fs.pool = append(fs.pool, addr)
		}
		fans = append(fans, fs)
	}

	em := struct {
		background, reveals, seedNonces, doubleBaking, delegations, originations, activations Emitter
	}{
		background:   Emitter{Rate: PerBlock(tezosDailyRates.transactions-1613, bpd)}, // fan-outs carry 1,613/day
		reveals:      Emitter{Rate: PerBlock(tezosDailyRates.reveals, bpd)},
		seedNonces:   Emitter{Rate: PerBlock(tezosDailyRates.seedNonces, bpd)},
		doubleBaking: Emitter{Rate: PerBlock(tezosDailyRates.doubleBaking, bpd)},
		delegations:  Emitter{Rate: PerBlock(tezosDailyRates.delegations, bpd)},
		originations: Emitter{Rate: PerBlock(tezosDailyRates.originations, bpd)},
		activations:  Emitter{Rate: PerBlock(tezosDailyRates.activations, bpd)},
	}

	freshCounter := 0
	blocks := 0
	for c.Now().Before(s.Opts.End) {
		// Background peer-to-peer transactions.
		for i, n := 0, em.background.Next(); i < n; i++ {
			from := chain.Pick(rng, s.users)
			to := chain.Pick(rng, s.users)
			if from == to {
				continue
			}
			c.Inject(tezos.Operation{
				Kind: tezos.KindTransaction, Source: from, Destination: to,
				Amount: rng.Int63n(100*mutezPerXTZ) + 1, Fee: 1420,
			})
		}
		// Fan-out senders.
		for _, fs := range fans {
			for i, n := 0, fs.em.Next(); i < n; i++ {
				var to tezos.Address
				if fs.fresh == 1 {
					to = tezos.NewImplicitAddress(fmt.Sprintf("fresh-%06d", freshCounter))
					freshCounter++
					c.FundAccount(to, 0)
				} else {
					to = chain.Pick(rng, fs.pool)
				}
				c.Inject(tezos.Operation{
					Kind: tezos.KindTransaction, Source: fs.sender, Destination: to,
					Amount: rng.Int63n(5*mutezPerXTZ) + 1, Fee: 1420,
				})
			}
		}
		// Account lifecycle operations.
		for i, n := 0, em.activations.Next(); i < n; i++ {
			addr := tezos.NewImplicitAddress(fmt.Sprintf("fundraiser-%06d", freshCounter))
			freshCounter++
			c.Inject(tezos.Operation{Kind: tezos.KindActivation, Source: addr, Amount: 1000 * mutezPerXTZ})
		}
		for i, n := 0, em.reveals.Next(); i < n; i++ {
			addr := tezos.NewImplicitAddress(fmt.Sprintf("revealer-%06d", freshCounter))
			freshCounter++
			c.FundAccount(addr, 10*mutezPerXTZ)
			c.Inject(tezos.Operation{Kind: tezos.KindReveal, Source: addr})
		}
		for i, n := 0, em.delegations.Next(); i < n; i++ {
			baker := c.Bakers()[rng.Intn(len(c.Bakers()))].Address
			c.Inject(tezos.Operation{
				Kind: tezos.KindDelegation, Source: chain.Pick(rng, s.users), Delegate: baker,
			})
		}
		for i, n := 0, em.originations.Next(); i < n; i++ {
			kt := tezos.NewOriginatedAddress(fmt.Sprintf("contract-%06d", freshCounter))
			freshCounter++
			c.Inject(tezos.Operation{
				Kind: tezos.KindOrigination, Source: chain.Pick(rng, s.users),
				Destination: kt, Amount: 10 * mutezPerXTZ, Fee: 5000,
			})
		}
		for i, n := 0, em.seedNonces.Next(); i < n; i++ {
			c.Inject(tezos.Operation{
				Kind: tezos.KindSeedNonce, Source: c.Bakers()[rng.Intn(len(c.Bakers()))].Address,
			})
		}
		for i, n := 0, em.doubleBaking.Next(); i < n; i++ {
			c.Inject(tezos.Operation{
				Kind: tezos.KindDoubleBaking, Source: c.Bakers()[rng.Intn(len(c.Bakers()))].Address,
			})
		}
		if _, err := c.ProduceBlock(); err != nil {
			return blocks, err
		}
		blocks++
	}
	return blocks, nil
}

func (s *TezosScenario) senderFor(label string) tezos.Address {
	switch label {
	case "hotwallet":
		return s.HotWallet
	case "airdropper":
		return s.Airdropper
	case "fanthird":
		return s.FanThird
	case "fanmoon":
		return s.FanMoon
	default:
		return s.KTDistributor
	}
}

// GovernanceOptions parameterizes the Babylon 2.0 replay (§4.2, Figure 9).
type GovernanceOptions struct {
	Scale  int64 // default 100
	Seed   int64
	Bakers int // default 100
}

// GovernanceScenario replays the amendment timeline: proposal period from
// July 17, 2019 with Babylon upvotes slowly accumulating and Babylon 2.0
// overtaking after its August 5 release; a nay-free exploration period with
// the foundation abstaining; a silent testing period; and a promotion
// period with ~15 % nay votes after the Ledger breakage.
type GovernanceScenario struct {
	Chain *tezos.Chain
	Opts  GovernanceOptions
}

// Babylon proposal hashes (shortened stand-ins for the real b58 hashes).
const (
	ProposalBabylon  = "PsBABY5nk"
	ProposalBabylon2 = "PsBABY5HQ" // Babylon 2.0, the promoted one
)

// BuildTezosGovernance constructs the chain with a realistic roll
// distribution (one dominant foundation baker, a heavy tail of small ones).
func BuildTezosGovernance(opts GovernanceOptions) (*GovernanceScenario, error) {
	if opts.Scale < 1 {
		opts.Scale = 100
	}
	if opts.Seed == 0 {
		opts.Seed = 33
	}
	if opts.Bakers <= 0 {
		opts.Bakers = 100
	}
	cfg := tezos.DefaultConfig(opts.Scale)
	cfg.Seed = opts.Seed
	cfg.Start = time.Date(2019, time.July, 17, 0, 0, 0, 0, time.UTC)
	// Each voting period lasted roughly 23 days on main net.
	cfg.Governance.BlocksPerPeriod = int64(23*tezosFullBlocksPerDay) / opts.Scale
	if cfg.Governance.BlocksPerPeriod < 8 {
		cfg.Governance.BlocksPerPeriod = 8
	}
	// The quorum at the Babylon exploration vote was below the observed
	// 81 % participation.
	cfg.Governance.InitialQuorum = 0.70
	c := tezos.New(cfg)

	rng := chain.NewRNG(opts.Seed)
	// Foundation baker with ~8k rolls, then a Pareto tail.
	if err := c.RegisterBaker(tezos.NewImplicitAddress("foundation"), 8_000*10_000*mutezPerXTZ); err != nil {
		return nil, err
	}
	for i := 1; i < opts.Bakers; i++ {
		rolls := int64(rng.Pareto(30, 1.3))
		if rolls > 2000 {
			rolls = 2000
		}
		stake := rolls * 10_000 * mutezPerXTZ
		if err := c.RegisterBaker(tezos.NewImplicitAddress(fmt.Sprintf("gov-baker-%03d", i)), stake); err != nil {
			return nil, err
		}
	}
	return &GovernanceScenario{Chain: c, Opts: opts}, nil
}

// Run drives the chain through proposal, exploration, testing and promotion
// and returns the number of blocks produced. The amendment must end
// promoted; an error is returned otherwise.
func (g *GovernanceScenario) Run() (int, error) {
	c := g.Chain
	gov := c.Governance()
	rng := chain.NewRNG(g.Opts.Seed + 7)
	bakers := c.Bakers()
	foundation := bakers[0].Address

	// Participation sets, fixed up front for determinism. The foundation
	// participates in every vote (its policy is to explicitly abstain), and
	// its stake is what carries the roll-weighted quorum.
	proposalVoters := withFoundation(pickFraction(rng, bakers, 0.49), bakers[0]) // ~49 % participation
	babylonEarly := pickFraction(rng, proposalVoters, 0.5)
	explorationVoters := withFoundation(pickFraction(rng, bakers, 0.81), bakers[0]) // ~81 %
	promotionVoters := withFoundation(pickFraction(rng, bakers, 0.80), bakers[0])

	// Promotion nay voters: ~13 % of the non-abstaining rolls, mirroring
	// the post-Ledger-breakage backlash.
	nayVoters := make(map[tezos.Address]bool)
	var votingRolls, nayRolls int64
	for _, b := range promotionVoters {
		if b.Address != foundation {
			votingRolls += b.Rolls()
		}
	}
	for _, b := range promotionVoters {
		if b.Address == foundation {
			continue
		}
		// Never push nay past 16 % of the yay+nay rolls: the amendment
		// still clears the 80 % supermajority, as it did on main net.
		if (nayRolls+b.Rolls())*100 <= votingRolls*16 && nayRolls*100 < votingRolls*13 {
			nayVoters[b.Address] = true
			nayRolls += b.Rolls()
		}
	}

	type pending struct {
		op tezos.Operation
	}
	var queue []pending
	enqueueSpread := func(ops []tezos.Operation) {
		for _, op := range ops {
			queue = append(queue, pending{op: op})
		}
	}

	period := gov.Period()
	blocks := 0
	schedule := func() {
		queue = queue[:0]
		switch gov.Period() {
		case tezos.PeriodProposal:
			var ops []tezos.Operation
			// Babylon first (early voters), Babylon 2.0 after its release
			// gathers everyone including the early voters again.
			for _, b := range babylonEarly {
				ops = append(ops, tezos.Operation{Kind: tezos.KindProposals, Source: b.Address, Proposal: ProposalBabylon})
			}
			for _, b := range proposalVoters {
				ops = append(ops, tezos.Operation{Kind: tezos.KindProposals, Source: b.Address, Proposal: ProposalBabylon2})
			}
			enqueueSpread(ops)
		case tezos.PeriodExploration:
			var ops []tezos.Operation
			for _, b := range explorationVoters {
				vote := tezos.VoteYay
				if b.Address == foundation {
					vote = tezos.VotePass // the foundation always abstains
				}
				ops = append(ops, tezos.Operation{Kind: tezos.KindBallot, Source: b.Address, Proposal: ProposalBabylon2, Ballot: vote})
			}
			enqueueSpread(ops)
		case tezos.PeriodPromotion:
			var ops []tezos.Operation
			for _, b := range promotionVoters {
				vote := tezos.VoteYay
				switch {
				case b.Address == foundation:
					vote = tezos.VotePass
				case nayVoters[b.Address]:
					vote = tezos.VoteNay
				}
				ops = append(ops, tezos.Operation{Kind: tezos.KindBallot, Source: b.Address, Proposal: ProposalBabylon2, Ballot: vote})
			}
			enqueueSpread(ops)
		}
	}
	schedule()

	// Spread each period's votes across roughly 80 % of its blocks so the
	// Figure 9 curves accumulate over time instead of jumping.
	paceFor := func() float64 {
		span := float64(tezos.DefaultGovernanceConfig().BlocksPerPeriod)
		if bp := int64(23*tezosFullBlocksPerDay) / g.Opts.Scale; bp > 0 {
			span = float64(bp)
		}
		if len(queue) == 0 {
			return 0
		}
		return float64(len(queue)) / (span * 0.8)
	}
	pace := Emitter{Rate: paceFor()}

	for i := 0; i < 100_000; i++ {
		if len(gov.Promoted()) > 0 {
			return blocks, nil
		}
		n := pace.Next()
		if n == 0 && len(queue) > 0 && rng.Bool(0.05) {
			n = 1 // keep trickling even at very small scales
		}
		for j := 0; j < n && len(queue) > 0; j++ {
			c.Inject(queue[0].op)
			queue = queue[1:]
		}
		if _, err := c.ProduceBlock(); err != nil {
			return blocks, err
		}
		blocks++
		if p := gov.Period(); p != period {
			period = p
			schedule()
			pace = Emitter{Rate: paceFor()}
		}
	}
	return blocks, fmt.Errorf("workload: governance run did not promote %s", ProposalBabylon2)
}

func pickFraction(rng *chain.RNG, bakers []tezos.Baker, frac float64) []tezos.Baker {
	out := make([]tezos.Baker, 0, len(bakers))
	for _, b := range bakers {
		if rng.Bool(frac) {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, bakers[0])
	}
	return out
}

// withFoundation guarantees the foundation baker appears in a voter set.
func withFoundation(voters []tezos.Baker, foundation tezos.Baker) []tezos.Baker {
	for _, v := range voters {
		if v.Address == foundation.Address {
			return voters
		}
	}
	return append([]tezos.Baker{foundation}, voters...)
}
