package workload

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/eos"
)

// EOSOptions parameterizes the EOS scenario.
type EOSOptions struct {
	// Scale is the time-dilation divisor S (default 20,000 — about 795
	// blocks and ~150k actions for the full window).
	Scale int64
	Seed  int64
	// Start and End bound the simulated window (defaults: the paper's
	// observation window).
	Start, End time.Time
	// Miners is the number of distinct EIDOS mining accounts.
	Miners int
	// GamersWithoutStake is the number of casual accounts that keep playing
	// without staking CPU — the users §4.1 describes being locked out once
	// the network congests.
	GamersWithoutStake int
}

// EOSScenario is the built scenario with handles the benchmarks need.
type EOSScenario struct {
	Chain *eos.Chain
	Opts  EOSOptions
	// BlocksPerDay at the chosen scale.
	BlocksPerDay float64
	// EIDOS is the installed airdrop contract.
	EIDOS *eos.EIDOSContractImpl
}

// Full-scale EOS calendar: 172,800 blocks per day (0.5 s interval).
const eosFullBlocksPerDay = 172_800

// eosDailyRates are full-scale actions per day, derived from the paper's
// Figures 1, 4 and 5 over the 92-day window.
var eosDailyRates = struct {
	tokenTransfers float64 // ordinary eosio.token transfers
	porn           float64 // pornhashbaby
	betdice        float64 // betdicegroup ecosystem
	whaleex        float64 // whaleextrust DEX
	sanguo         float64 // eossanguoone RPG
	mykey          float64 // mykeypostman relayer
	bluebet        float64 // bluebet cluster
	system         map[string]float64
	miningTxs      float64 // EIDOS mining transactions/day after Nov 1
}{
	tokenTransfers: 1_428_000, // 131.4M / 92
	porn:           267_000,   // 24.55M / 92
	betdice:        382_000,   // 35.15M / 92
	whaleex:        98_000,    // 9.05M / 92
	sanguo:         94_500,    // 8.70M / 92
	mykey:          128_000,   // 11.78M / 92
	bluebet:        190_000,   // bluebet* cluster aggregate
	system: map[string]float64{
		"bidname":      2_652, // 243,942 / 92
		"deposit":      2_166,
		"newaccount":   1_247,
		"updateauth":   664,
		"linkauth":     646,
		"delegatebw":   3_961,
		"buyrambytes":  1_772,
		"undelegatebw": 1_700,
		"rentcpu":      1_679,
		"voteproducer": 716,
		"buyram":       6_521,
	},
	miningTxs: 1_400_000, // each carrying minesPerTx boomerangs
}

// minesPerTx is how many mining transfers EIDOS bots batched per
// transaction (each one triggering two inline legs).
const minesPerTx = 8

// BuildEOS constructs the chain, contracts and funded actor accounts.
func BuildEOS(opts EOSOptions) (*EOSScenario, error) {
	if opts.Scale < 1 {
		opts.Scale = 20_000
	}
	if opts.Seed == 0 {
		opts.Seed = 11
	}
	if opts.Start.IsZero() {
		opts.Start = chain.ObservationStart
	}
	if opts.End.IsZero() {
		opts.End = chain.ObservationEnd
	}
	if opts.Miners <= 0 {
		opts.Miners = 40
	}
	if opts.GamersWithoutStake <= 0 {
		opts.GamersWithoutStake = 10
	}

	cfg := eos.DefaultConfig(opts.Scale)
	cfg.Seed = opts.Seed
	cfg.Start = opts.Start
	// Real transfers cost ~1 ms of CPU; with ~220 actions per block during
	// the EIDOS flood that exceeds the 200 ms block budget and flips the
	// network into congestion mode, exactly as in §4.1.
	cfg.CPUMicrosPerAction = 1000
	c := eos.New(cfg)
	s := &EOSScenario{
		Chain:        c,
		Opts:         opts,
		BlocksPerDay: float64(eosFullBlocksPerDay) / float64(opts.Scale),
	}

	// Application contracts from Figures 4/5.
	apps := []struct {
		account eos.Name
		actions []string
	}{
		{eos.PornSite, []string{"record", "login"}},
		{eos.BetDiceTasks, []string{"removetask", "log", "sendhouse", "betrecord", "betpayrecord"}},
		{eos.BetDiceGroup, []string{"dispatch", "payout"}},
		{eos.BetDiceAdmin, []string{"admin"}},
		{eos.BetDiceBacca, []string{"bet", "resolve"}},
		{eos.BetDiceSicbo, []string{"bet", "resolve"}},
		{eos.WhaleExTrust, []string{"verifytrade2", "clearing", "clearsettres", "verifyad", "cancelorder", "neworder"}},
		{eos.SanguoGame, []string{"reveal2", "combat", "deletemat", "sellmat", "makeitem", "quest"}},
		{eos.MyKeyLogic, []string{"forward", "keyaction"}},
		{eos.BlueBetProxy, []string{"proxybet", "relay"}},
		{eos.BlueBetTexas, []string{"holdem"}},
		{eos.BlueBetJacks, []string{"jacks"}},
		{eos.BlueBetBcrat, []string{"bacarrat", "settle"}},
	}
	for _, app := range apps {
		if err := c.SetContract(app.account, eos.NewAppContract(app.account, app.actions...)); err != nil {
			return nil, fmt.Errorf("workload: installing %s: %w", app.account, err)
		}
	}

	// Token contracts: EIDOS and LYNX.
	s.EIDOS = eos.NewEIDOSContract()
	if err := c.SetContract(eos.EIDOSContract, s.EIDOS); err != nil {
		return nil, err
	}
	if err := c.Tokens().Create(eos.EIDOSContract, eos.EIDOSToken, 4, 2_000_000_000_0000); err != nil {
		return nil, err
	}
	if err := c.Tokens().Issue(eos.EIDOSContract, eos.EIDOSContract, chain.NewAsset(100_000_000, 0, 4, eos.EIDOSToken)); err != nil {
		return nil, err
	}
	if err := c.SetContract(eos.LynxToken, &eos.TokenContract{Account: eos.LynxToken}); err != nil {
		return nil, err
	}
	if err := c.Tokens().Create(eos.LynxToken, "LYNX", 4, 1_000_000_000_0000); err != nil {
		return nil, err
	}

	// Actor accounts. Funding and stake come from the system account.
	fund := func(name string, eosRaw int64, stake int64) (eos.Name, error) {
		n, err := eos.ParseName(name)
		if err != nil {
			return 0, err
		}
		if !c.HasAccount(n) {
			if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
				return 0, err
			}
		}
		if eosRaw > 0 {
			if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(eosRaw)); err != nil {
				return 0, err
			}
		}
		if stake > 0 {
			c.Resources().Stake(&c.GetAccount(n).Resources, stake, stake/4)
		}
		return n, nil
	}

	heavyStake := int64(1_000_000_0000) // 100k EOS staked: pro bots
	lightStake := int64(100_000_0000)   // 10k EOS: regular users

	seedAccounts := []struct {
		name  string
		funds int64
		stake int64
	}{
		{"mykeypostman", 50_000_000_0000, heavyStake},
		{"bluebet2user", 10_000_000_0000, heavyStake},
		{"whalebotaaaa", 1_000_000_0000, heavyStake},
		{"whalebotbbbb", 1_000_000_0000, heavyStake},
		{"whalebotcccc", 1_000_000_0000, heavyStake},
		{"whalebotdddd", 1_000_000_0000, heavyStake},
		{"whaleboteeee", 1_000_000_0000, heavyStake},
		{"honesttrader", 100_000_0000, lightStake},
		{"secondtrader", 100_000_0000, lightStake},
	}
	for _, sa := range seedAccounts {
		if _, err := fund(sa.name, sa.funds, sa.stake); err != nil {
			return nil, err
		}
	}
	// The app contracts themselves both send and hold tokens.
	for _, appAcct := range []eos.Name{eos.BetDiceGroup, eos.BlueBetProxy, eos.BlueBetBcrat, eos.PornSite} {
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, appAcct, chain.EOSAsset(10_000_000_0000)); err != nil {
			return nil, err
		}
		c.Resources().Stake(&c.GetAccount(appAcct).Resources, heavyStake, heavyStake/4)
	}
	// Issue LYNX to the bluebet user who pays the token contract.
	if err := c.Tokens().Issue(eos.LynxToken, eos.MustName("bluebet2user"), chain.NewAsset(500_000_000, 0, 4, "LYNX")); err != nil {
		return nil, err
	}

	// Ordinary token holders.
	for i := 0; i < 50; i++ {
		if _, err := fund(userName("usr", i), 100_000_0000, lightStake); err != nil {
			return nil, err
		}
	}
	// EIDOS miners: heavily staked (they rented and staked CPU — the
	// paper's price-spike mechanism).
	for i := 0; i < opts.Miners; i++ {
		if _, err := fund(userName("mine", i), 10_000_0000, heavyStake); err != nil {
			return nil, err
		}
	}
	// Unstaked casual gamers, to be locked out during congestion.
	for i := 0; i < opts.GamersWithoutStake; i++ {
		if _, err := fund(userName("csl", i), 1_000_0000, 0); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// userName derives a valid 12-char EOS name from a prefix and index.
func userName(prefix string, i int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz12345"
	suffix := make([]byte, 0, 8)
	for n := i; ; n /= len(alphabet) {
		suffix = append(suffix, alphabet[n%len(alphabet)])
		if n < len(alphabet) {
			break
		}
	}
	name := prefix + string(suffix)
	for len(name) < 9 {
		name += "a"
	}
	return name
}

// Run simulates the full window, producing every block and injecting actor
// traffic. It returns the number of blocks produced.
func (s *EOSScenario) Run() int {
	c := s.Chain
	rng := chain.NewRNG(s.Opts.Seed)
	em := s.emitters()

	blocks := 0
	for c.Now().Before(s.Opts.End) {
		s.injectBlockTraffic(rng, em)
		c.ProduceBlock()
		blocks++
	}
	return blocks
}

type eosEmitters struct {
	transfers, porn, betdice, whaleex, sanguo, mykey, bluebet Emitter
	system                                                    map[string]*Emitter
	mining                                                    Emitter
	casual                                                    Emitter
}

func (s *EOSScenario) emitters() *eosEmitters {
	bpd := float64(eosFullBlocksPerDay)
	em := &eosEmitters{
		transfers: Emitter{Rate: PerBlock(eosDailyRates.tokenTransfers, bpd)},
		porn:      Emitter{Rate: PerBlock(eosDailyRates.porn, bpd)},
		betdice:   Emitter{Rate: PerBlock(eosDailyRates.betdice, bpd)},
		whaleex:   Emitter{Rate: PerBlock(eosDailyRates.whaleex, bpd)},
		sanguo:    Emitter{Rate: PerBlock(eosDailyRates.sanguo, bpd)},
		mykey:     Emitter{Rate: PerBlock(eosDailyRates.mykey, bpd)},
		bluebet:   Emitter{Rate: PerBlock(eosDailyRates.bluebet, bpd)},
		mining:    Emitter{Rate: PerBlock(eosDailyRates.miningTxs, bpd)},
		casual:    Emitter{Rate: PerBlock(20_000, bpd)},
		system:    make(map[string]*Emitter),
	}
	for name, daily := range eosDailyRates.system {
		em.system[name] = &Emitter{Rate: PerBlock(daily, bpd)}
	}
	return em
}

// injectBlockTraffic queues one block's worth of transactions.
func (s *EOSScenario) injectBlockTraffic(rng *chain.RNG, em *eosEmitters) {
	c := s.Chain
	now := c.Now()
	mining := now.After(chain.EIDOSLaunch) || now.Equal(chain.EIDOSLaunch)

	// Ordinary token transfers between random users.
	for i, n := 0, em.transfers.Next(); i < n; i++ {
		from := userName("usr", rng.Intn(50))
		to := userName("usr", rng.Intn(50))
		if from == to {
			continue
		}
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, eos.MustName(from), map[string]string{
			"from": from, "to": to,
			"quantity": chain.EOSAsset(int64(rng.Intn(50_0000)) + 1).String(),
		}))
	}

	// Porn site bookkeeping: 99.86% record, 0.14% login.
	for i, n := 0, em.porn.Next(); i < n; i++ {
		action := "record"
		if rng.Bool(0.0014) {
			action = "login"
		}
		actor := userName("usr", rng.Intn(50))
		c.PushTransaction(eos.NewAction(eos.PornSite, eos.MustName(action), eos.MustName(actor), nil))
	}

	// BetDice: betdicegroup fans out to its satellites per Figure 5, and
	// the betdicetasks action mix follows Figure 4.
	for i, n := 0, em.betdice.Next(); i < n; i++ {
		roll := rng.Float64()
		switch {
		case roll < 0.689: // betdicetasks, action mix from Figure 4
			action := "removetask"
			ar := rng.Float64()
			switch {
			case ar < 0.1186:
				action = "log"
			case ar < 0.1886:
				action = "sendhouse"
			case ar < 0.2278:
				action = "betrecord"
			case ar < 0.2666:
				action = "betpayrecord"
			}
			c.PushTransaction(eos.NewAction(eos.BetDiceTasks, eos.MustName(action), eos.BetDiceGroup, nil))
		case roll < 0.689+0.1355:
			c.PushTransaction(eos.NewAction(eos.BetDiceGroup, eos.MustName("dispatch"), eos.BetDiceGroup, nil))
		case roll < 0.689+0.1355+0.0515:
			c.PushTransaction(eos.NewAction(eos.BetDiceBacca, eos.MustName("bet"), eos.BetDiceGroup, nil))
		case roll < 0.689+0.1355+0.0515+0.0503:
			c.PushTransaction(eos.NewAction(eos.BetDiceSicbo, eos.MustName("bet"), eos.BetDiceGroup, nil))
		default:
			c.PushTransaction(eos.NewAction(eos.BetDiceAdmin, eos.MustName("admin"), eos.BetDiceGroup, nil))
		}
	}

	// WhaleEx: action mix from Figure 4; verifytrade2 carries buyer/seller
	// and the top five bots wash-trade against themselves ~88 % of the
	// time (§4.1).
	washBots := []string{"whalebotaaaa", "whalebotbbbb", "whalebotcccc", "whalebotdddd", "whaleboteeee"}
	for i, n := 0, em.whaleex.Next(); i < n; i++ {
		ar := rng.Float64()
		switch {
		case ar < 0.2979:
			var buyer, seller string
			if rng.Bool(0.82) { // wash bots dominate trade flow (§4.1: >70 %)
				bot := chain.Pick(rng, washBots)
				buyer = bot
				if rng.Bool(0.9) { // each bot self-trades >85 % of the time
					seller = bot
				} else {
					seller = chain.Pick(rng, washBots)
				}
			} else {
				// Honest flow spreads across the retail population so no
				// single honest account rivals the bots.
				buyer = userName("usr", rng.Intn(50))
				seller = userName("usr", rng.Intn(50))
			}
			cur := chain.Pick(rng, []string{"USDT", "EOS", "WAL", "TPT"})
			qty := fmt.Sprintf("%d.0000 %s", rng.Intn(500)+1, cur)
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("verifytrade2"), eos.MustName(buyer), map[string]string{
				"buyer": buyer, "seller": seller, "quantity": qty,
			}))
		case ar < 0.2979+0.1774:
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("clearing"), eos.MustName("whalebotaaaa"), nil))
		case ar < 0.2979+0.1774+0.1433:
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("clearsettres"), eos.MustName("whalebotaaaa"), nil))
		case ar < 0.2979+0.1774+0.1433+0.1389:
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("verifyad"), eos.MustName("whalebotbbbb"), nil))
		case ar < 0.2979+0.1774+0.1433+0.1389+0.0223:
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("cancelorder"), eos.MustName("honesttrader"), nil))
		default:
			c.PushTransaction(eos.NewAction(eos.WhaleExTrust, eos.MustName("neworder"), eos.MustName("honesttrader"), nil))
		}
	}

	// Sanguo RPG: action mix from Figure 4.
	for i, n := 0, em.sanguo.Next(); i < n; i++ {
		ar := rng.Float64()
		action := "quest"
		switch {
		case ar < 0.2827:
			action = "reveal2"
		case ar < 0.2827+0.1593:
			action = "combat"
		case ar < 0.2827+0.1593+0.1012:
			action = "deletemat"
		case ar < 0.2827+0.1593+0.1012+0.0597:
			action = "sellmat"
		case ar < 0.2827+0.1593+0.1012+0.0597+0.0282:
			action = "makeitem"
		}
		actor := userName("usr", rng.Intn(50))
		c.PushTransaction(eos.NewAction(eos.SanguoGame, eos.MustName(action), eos.MustName(actor), nil))
	}

	// MyKey relayer: 94 % transfers through eosio.token, 6 % logic calls.
	for i, n := 0, em.mykey.Next(); i < n; i++ {
		if rng.Bool(0.94) {
			to := userName("usr", rng.Intn(50))
			c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, eos.MyKeyPostman, map[string]string{
				"from": "mykeypostman", "to": to,
				"quantity": chain.EOSAsset(int64(rng.Intn(10_0000)) + 1).String(),
			}))
		} else {
			c.PushTransaction(eos.NewAction(eos.MyKeyLogic, eos.MustName("forward"), eos.MyKeyPostman, nil))
		}
	}

	// BlueBet cluster: proxy self-calls, LYNX token payments, settlements.
	for i, n := 0, em.bluebet.Next(); i < n; i++ {
		ar := rng.Float64()
		switch {
		case ar < 0.35:
			c.PushTransaction(eos.NewAction(eos.BlueBetProxy, eos.MustName("proxybet"), eos.BlueBetProxy, nil))
		case ar < 0.55:
			c.PushTransaction(eos.NewAction(eos.LynxToken, eos.ActTransfer, eos.MustName("bluebet2user"), map[string]string{
				"from": "bluebet2user", "to": "bluebetproxy",
				"quantity": fmt.Sprintf("%d.0000 LYNX", rng.Intn(100)+1),
			}))
		case ar < 0.75:
			c.PushTransaction(eos.NewAction(eos.BlueBetBcrat, eos.MustName("bacarrat"), eos.BlueBetBcrat, nil))
		case ar < 0.9:
			c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, eos.BlueBetProxy, map[string]string{
				"from": "bluebetproxy", "to": userName("usr", rng.Intn(50)),
				"quantity": chain.EOSAsset(int64(rng.Intn(5_0000)) + 1).String(),
			}))
		default:
			c.PushTransaction(eos.NewAction(eos.BlueBetTexas, eos.MustName("holdem"), eos.BlueBetProxy, nil))
		}
	}

	// System actions at their Figure 1 daily rates.
	for name, em := range em.system {
		for i, n := 0, em.Next(); i < n; i++ {
			s.pushSystemAction(rng, name)
		}
	}

	// EIDOS mining after the launch: each transaction batches minesPerTx
	// tiny transfers, each boomeranged back with an EIDOS payout.
	if mining {
		for i, n := 0, em.mining.Next(); i < n; i++ {
			miner := userName("mine", rng.Intn(s.Opts.Miners))
			actions := make([]eos.Action, 0, minesPerTx)
			for j := 0; j < minesPerTx; j++ {
				actions = append(actions, eos.NewAction(eos.TokenAccount, eos.ActTransfer, eos.MustName(miner), map[string]string{
					"from": miner, "to": eos.EIDOSContract.String(),
					"quantity": "0.0001 EOS",
				}))
			}
			c.PushTransaction(actions...)
		}
	}

	// Casual unstaked gamers keep trying to play; once the network
	// congests these are the transactions that start failing.
	for i, n := 0, em.casual.Next(); i < n; i++ {
		gamer := userName("csl", rng.Intn(s.Opts.GamersWithoutStake))
		c.PushTransaction(eos.NewAction(eos.BetDiceBacca, eos.MustName("bet"), eos.MustName(gamer), nil))
	}
}

func (s *EOSScenario) pushSystemAction(rng *chain.RNG, name string) {
	c := s.Chain
	actor := userName("usr", rng.Intn(50))
	switch name {
	case "newaccount":
		fresh := userName("new", rng.Intn(1_000_000))
		if c.HasAccount(eos.MustName(fresh)) {
			return
		}
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActNewAccount, eos.MustName(actor), map[string]string{
			"name": fresh,
		}))
	case "bidname":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActBidName, eos.MustName(actor), map[string]string{
			"newname": userName("bid", rng.Intn(100)), "bid": chain.EOSAsset(int64(rng.Intn(100_0000)) + 1_0000).String(),
		}))
	case "deposit":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActDeposit, eos.MustName(actor), map[string]string{
			"quantity": chain.EOSAsset(int64(rng.Intn(10_0000)) + 1).String(),
		}))
	case "updateauth":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActUpdateAuth, eos.MustName(actor), nil))
	case "linkauth":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActLinkAuth, eos.MustName(actor), nil))
	case "delegatebw":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActDelegateBW, eos.MustName(actor), map[string]string{
			"receiver":           actor,
			"stake_cpu_quantity": "1.0000 EOS",
			"stake_net_quantity": "0.5000 EOS",
		}))
	case "undelegatebw":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActUndelegateBW, eos.MustName(actor), map[string]string{
			"receiver":           actor,
			"stake_cpu_quantity": "0.5000 EOS",
			"stake_net_quantity": "0.2500 EOS",
		}))
	case "buyram":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActBuyRAM, eos.MustName(actor), map[string]string{
			"receiver": actor, "quant": "1.0000 EOS",
		}))
	case "buyrambytes":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActBuyRAMBytes, eos.MustName(actor), map[string]string{
			"receiver": actor, "bytes": "8192",
		}))
	case "rentcpu":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActRentCPU, eos.MustName(actor), map[string]string{
			"receiver": actor, "payment": "1.0000 EOS",
		}))
	case "voteproducer":
		c.PushTransaction(eos.NewAction(eos.SystemAccount, eos.ActVoteProducer, eos.MustName(actor), nil))
	}
}
