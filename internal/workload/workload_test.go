package workload

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/eos"
	"repro/internal/tezos"
	"repro/internal/xrp"
)

func TestEmitterLongRunAverage(t *testing.T) {
	e := Emitter{Rate: 0.37}
	total := 0
	for i := 0; i < 10_000; i++ {
		total += e.Next()
	}
	if total < 3690 || total > 3710 {
		t.Fatalf("10k blocks at 0.37/block emitted %d", total)
	}
	zero := Emitter{Rate: 0}
	if zero.Next() != 0 {
		t.Fatal("zero-rate emitter emitted")
	}
}

func TestPerBlockScaleInvariance(t *testing.T) {
	if PerBlock(172_800, 172_800) != 1.0 {
		t.Fatal("per-block rate wrong")
	}
	if PerBlock(100, 0) != 0 {
		t.Fatal("zero blocks should yield zero rate")
	}
}

// ---- EOS scenario ----

func buildAndRunEOS(t *testing.T, scale int64) *EOSScenario {
	t.Helper()
	s, err := BuildEOS(EOSOptions{Scale: scale, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Run(); n == 0 {
		t.Fatal("no blocks produced")
	}
	return s
}

func TestEOSScenarioShape(t *testing.T) {
	s := buildAndRunEOS(t, 50_000)
	c := s.Chain

	var transfers, actions int64
	var preActions, postActions int64
	var preBlocks, postBlocks int64
	var boomerangTxs int64
	for num := uint32(1); num <= c.HeadNum(); num++ {
		blk := c.GetBlock(num)
		post := !blk.Timestamp.Before(chain.EIDOSLaunch)
		if post {
			postBlocks++
		} else {
			preBlocks++
		}
		for _, tx := range blk.Transactions {
			hasIn, hasOut := false, false
			for _, act := range tx.Actions {
				actions++
				if post {
					postActions++
				} else {
					preActions++
				}
				if act.ActionName == eos.ActTransfer {
					transfers++
					if act.Data["to"] == eos.EIDOSContract.String() {
						hasIn = true
					}
					if act.Data["from"] == eos.EIDOSContract.String() {
						hasOut = true
					}
				}
			}
			if hasIn && hasOut {
				boomerangTxs++
			}
		}
	}
	if actions == 0 {
		t.Fatal("no actions generated")
	}
	// Paper: 91.6 % of actions are token transfers.
	share := float64(transfers) / float64(actions)
	if share < 0.80 || share > 0.97 {
		t.Fatalf("transfer share = %.3f, want ~0.92", share)
	}
	// Paper: the EIDOS launch multiplied throughput by more than 10×.
	preRate := float64(preActions) / float64(preBlocks)
	postRate := float64(postActions) / float64(postBlocks)
	if postRate < 5*preRate {
		t.Fatalf("EIDOS spike too small: %.1f -> %.1f actions/block", preRate, postRate)
	}
	if boomerangTxs == 0 {
		t.Fatal("no boomerang transactions")
	}
	// Paper §4.1: the network entered congestion mode and casual users got
	// locked out; the CPU rental price spiked.
	if !c.Resources().Congested() {
		t.Fatalf("network not congested (utilization %.2f)", c.Resources().Utilization())
	}
	if c.RejectedCPU == 0 {
		t.Fatal("no transactions rejected for CPU during congestion")
	}
	if idx := c.Resources().RentPriceIndex(); idx < 20 {
		t.Fatalf("rent price index only %.1f", idx)
	}
}

func TestEOSScenarioTopContracts(t *testing.T) {
	s := buildAndRunEOS(t, 50_000)
	c := s.Chain
	received := map[eos.Name]int64{}
	for num := uint32(1); num <= c.HeadNum(); num++ {
		for _, tx := range c.GetBlock(num).Transactions {
			for _, act := range tx.Actions {
				received[act.Account]++
			}
		}
	}
	// eosio.token must dominate; the porn site and betting must rank high.
	if received[eos.TokenAccount] < received[eos.PornSite] {
		t.Fatalf("eosio.token (%d) below pornhashbaby (%d)", received[eos.TokenAccount], received[eos.PornSite])
	}
	if received[eos.PornSite] == 0 || received[eos.BetDiceTasks] == 0 ||
		received[eos.WhaleExTrust] == 0 || received[eos.SanguoGame] == 0 {
		t.Fatalf("expected app traffic missing: %v", received)
	}
	if s.EIDOS.Mines == 0 {
		t.Fatal("EIDOS contract never mined")
	}
}

// ---- Tezos scenario ----

func TestTezosScenarioShape(t *testing.T) {
	s, err := BuildTezos(TezosOptions{Scale: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if blocks == 0 {
		t.Fatal("no blocks")
	}
	kinds := map[tezos.OperationKind]int64{}
	var total int64
	senderCounts := map[tezos.Address]int64{}
	senderReceivers := map[tezos.Address]map[tezos.Address]bool{}
	for lvl := int64(1); lvl <= s.Chain.HeadLevel(); lvl++ {
		for _, op := range s.Chain.GetBlock(lvl).Operations {
			kinds[op.Kind]++
			total++
			if op.Kind == tezos.KindTransaction {
				senderCounts[op.Source]++
				m := senderReceivers[op.Source]
				if m == nil {
					m = map[tezos.Address]bool{}
					senderReceivers[op.Source] = m
				}
				m[op.Destination] = true
			}
		}
	}
	// Paper: endorsements are 81.7 % of operations.
	share := float64(kinds[tezos.KindEndorsement]) / float64(total)
	if share < 0.70 || share > 0.90 {
		t.Fatalf("endorsement share = %.3f, want ~0.82", share)
	}
	txShare := float64(kinds[tezos.KindTransaction]) / float64(total)
	if txShare < 0.08 || txShare > 0.28 {
		t.Fatalf("transaction share = %.3f, want ~0.16", txShare)
	}
	// Figure 6's fan-out patterns: the airdropper touches ~unique
	// receivers per tx, the hot wallet revisits a pool.
	if senderCounts[s.Airdropper] > 0 {
		ratio := float64(len(senderReceivers[s.Airdropper])) / float64(senderCounts[s.Airdropper])
		if ratio < 0.95 {
			t.Fatalf("airdropper receiver/sent ratio = %.2f, want ~1", ratio)
		}
	}
	if senderCounts[s.HotWallet] > 20 {
		avg := float64(senderCounts[s.HotWallet]) / float64(len(senderReceivers[s.HotWallet]))
		if avg < 5 {
			t.Fatalf("hot wallet avg per receiver = %.1f, want ~28", avg)
		}
	}
}

func TestTezosGovernanceReplay(t *testing.T) {
	g, err := BuildTezosGovernance(GovernanceOptions{Scale: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	gov := g.Chain.Governance()
	promoted := gov.Promoted()
	if len(promoted) != 1 || promoted[0] != ProposalBabylon2 {
		t.Fatalf("promoted = %v", promoted)
	}
	// Reconstruct per-period tallies from the records.
	var exploration, promotion *tezos.PeriodRecord
	for i := range gov.Periods() {
		rec := &gov.Periods()[i]
		switch {
		case rec.Kind == tezos.PeriodExploration && rec.Outcome == "advanced":
			exploration = rec
		case rec.Kind == tezos.PeriodPromotion && rec.Outcome == "promoted":
			promotion = rec
		}
	}
	if exploration == nil || promotion == nil {
		t.Fatalf("period records incomplete: %+v", gov.Periods())
	}
	// Paper: zero nays during exploration, the only abstention being the
	// foundation; promotion saw ~15 % nay.
	if exploration.Nay != 0 {
		t.Fatalf("exploration nay rolls = %d, want 0", exploration.Nay)
	}
	if exploration.Pass == 0 {
		t.Fatal("foundation pass missing in exploration")
	}
	nayShare := float64(promotion.Nay) / float64(promotion.Yay+promotion.Nay)
	if nayShare < 0.02 || nayShare > 0.35 {
		t.Fatalf("promotion nay share = %.3f, want ~0.15", nayShare)
	}
	// Both Babylon proposals should appear in history.
	sawBabylon, sawBabylon2 := false, false
	for _, ev := range gov.History() {
		if ev.Proposal == ProposalBabylon {
			sawBabylon = true
		}
		if ev.Proposal == ProposalBabylon2 {
			sawBabylon2 = true
		}
	}
	if !sawBabylon || !sawBabylon2 {
		t.Fatal("both Babylon proposals should gather votes")
	}
}

// ---- XRP scenario ----

func TestXRPScenarioShape(t *testing.T) {
	s, err := BuildXRP(XRPOptions{Scale: 20_000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ledgers := s.Run()
	if ledgers == 0 {
		t.Fatal("no ledgers")
	}
	st := s.State
	byType := map[xrp.TxType]int64{}
	var total, failed int64
	var wavePayments, calmPayments int64
	var waveLedgers, calmLedgers int64
	for i := int64(1); i <= st.HeadIndex(); i++ {
		led := st.GetLedger(i)
		wave := inWave(led.CloseTime)
		if wave {
			waveLedgers++
		} else {
			calmLedgers++
		}
		for _, tx := range led.Transactions {
			total++
			byType[tx.Type]++
			if !tx.Result.Success() {
				failed++
			}
			if tx.Type == xrp.TxPayment {
				if wave {
					wavePayments++
				} else {
					calmPayments++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no transactions")
	}
	payShare := float64(byType[xrp.TxPayment]) / float64(total)
	offerShare := float64(byType[xrp.TxOfferCreate]) / float64(total)
	failShare := float64(failed) / float64(total)
	if payShare < 0.30 || payShare > 0.62 {
		t.Fatalf("payment share = %.3f, want ~0.46", payShare)
	}
	if offerShare < 0.35 || offerShare > 0.65 {
		t.Fatalf("offer share = %.3f, want ~0.50", offerShare)
	}
	if failShare < 0.04 || failShare > 0.20 {
		t.Fatalf("failure share = %.3f, want ~0.107", failShare)
	}
	// The spam waves must lift payment rates visibly.
	if waveLedgers > 0 && calmLedgers > 0 {
		waveRate := float64(wavePayments) / float64(waveLedgers)
		calmRate := float64(calmPayments) / float64(calmLedgers)
		if waveRate < 2*calmRate {
			t.Fatalf("wave payment rate %.1f not elevated over calm %.1f", waveRate, calmRate)
		}
	}
	// DEX activity exists but fulfillment is rare.
	ex := st.Exchanges()
	if len(ex) == 0 {
		t.Fatal("no exchanges recorded")
	}
	fulfillment := float64(len(ex)) / float64(byType[xrp.TxOfferCreate])
	if fulfillment > 0.05 {
		t.Fatalf("fulfillment %.4f too common, want <<1%%", fulfillment)
	}
	// The Myrone manipulation trades exist: a ~30,500 rate on his IOU.
	myroneKey := xrp.AssetKey{Currency: "BTC", Issuer: s.MyroneIssuer}
	sawHigh, sawCollapse := false, false
	for _, e := range ex {
		if e.Base == myroneKey && e.BaseValue > 0 {
			rate := float64(e.CounterValue) / float64(e.BaseValue)
			if rate > 30_000 {
				sawHigh = true
			}
			if rate < 2 {
				sawCollapse = true
			}
		}
	}
	if !sawHigh || !sawCollapse {
		t.Fatalf("Myrone trades missing (high=%v collapse=%v)", sawHigh, sawCollapse)
	}
	// Ripple's escrow releases happened.
	if byType[xrp.TxEscrowFinish] < 3 {
		t.Fatalf("escrow finishes = %d, want >= 3", byType[xrp.TxEscrowFinish])
	}
	// Huobi bots are descendants of the exchange.
	for _, bot := range s.HuobiBots {
		if st.GetAccount(bot).Parent != s.HuobiGlobal {
			t.Fatal("bot parent not Huobi")
		}
	}
}

func TestXRPScenarioDeterminism(t *testing.T) {
	run := func() int64 {
		s, err := BuildXRP(XRPOptions{Scale: 50_000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		var total int64
		for i := int64(1); i <= s.State.HeadIndex(); i++ {
			total += int64(len(s.State.GetLedger(i).Transactions))
		}
		return total
	}
	if run() != run() {
		t.Fatal("same-seed scenario runs diverged")
	}
}
