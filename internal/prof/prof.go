// Package prof wires the standard pprof profilers into CLI flags, so perf
// PRs can attach CPU and heap evidence gathered from real cmd/report and
// cmd/crawl runs instead of micro-benchmarks alone.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and arranges a
// heap profile at memPath (when non-empty). The returned stop function
// finalizes both files and must be called exactly once; it is a no-op when
// neither path was given.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: creating heap profile: %w", err)
			}
			// An up-to-date heap picture, not one stale since the last GC.
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("prof: writing heap profile: %w", werr)
			}
			if cerr != nil {
				return fmt.Errorf("prof: closing heap profile: %w", cerr)
			}
		}
		return nil
	}, nil
}
