// Package s3stub runs an in-process S3-compatible HTTP server for tests:
// path-style PutObject / GetObject (with Range) / HeadObject /
// DeleteObject / ListObjectsV2 with pagination, plus knobs to fail the
// next N requests — enough surface to exercise the blobstore S3 backend,
// its retry loop, and end-to-end archive flows without a network.
package s3stub

import (
	"encoding/xml"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Server is a stub S3 service. Create with New, stop with Close.
type Server struct {
	HTTP *httptest.Server

	// PageSize caps ListObjectsV2 pages (0 = everything in one page); set
	// it low to force continuation-token pagination.
	PageSize int

	mu       sync.Mutex
	objects  map[string][]byte // "bucket/key" → bytes
	requests int64
	failN    int
	failCode int
}

// New starts a stub listening on a local ephemeral port.
func New() *Server {
	s := &Server{objects: make(map[string][]byte)}
	s.HTTP = httptest.NewServer(http.HandlerFunc(s.handle))
	return s
}

// Close shuts the server down.
func (s *Server) Close() { s.HTTP.Close() }

// URL returns the s3:// location for bucket/prefix pointing at this stub,
// ready for blobstore.Resolve.
func (s *Server) URL(bucket, prefix string) string {
	u := "s3://" + bucket
	if prefix = strings.Trim(prefix, "/"); prefix != "" {
		u += "/" + prefix
	}
	return u + "?endpoint=" + url.QueryEscape(s.HTTP.URL)
}

// FailNext makes the next n requests answer with the given HTTP status
// before any are served normally again.
func (s *Server) FailNext(n, code int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failN, s.failCode = n, code
}

// Requests reports how many requests the stub has served (including
// injected failures).
func (s *Server) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// Len reports how many objects the stub holds.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

type listEntry struct {
	Key  string `xml:"Key"`
	Size int    `xml:"Size"`
}

type listResponse struct {
	XMLName               xml.Name    `xml:"ListBucketResult"`
	IsTruncated           bool        `xml:"IsTruncated"`
	NextContinuationToken string      `xml:"NextContinuationToken,omitempty"`
	Contents              []listEntry `xml:"Contents"`
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.requests++
	if s.failN > 0 {
		s.failN--
		code := s.failCode
		s.mu.Unlock()
		http.Error(w, "injected failure", code)
		return
	}
	s.mu.Unlock()

	// Path-style: /bucket[/key...]. A bucket-only GET is ListObjectsV2.
	parts := strings.SplitN(strings.TrimPrefix(r.URL.Path, "/"), "/", 2)
	bucket := parts[0]
	key := ""
	if len(parts) == 2 {
		key = parts[1]
	}
	if bucket == "" {
		http.Error(w, "missing bucket", http.StatusBadRequest)
		return
	}
	if key == "" && r.Method == http.MethodGet {
		s.list(w, r, bucket)
		return
	}
	obj := bucket + "/" + key

	switch r.Method {
	case http.MethodPut:
		body := make([]byte, 0, r.ContentLength)
		buf := make([]byte, 32*1024)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		s.mu.Lock()
		s.objects[obj] = body
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)

	case http.MethodGet, http.MethodHead:
		s.mu.Lock()
		data, ok := s.objects[obj]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "NoSuchKey", http.StatusNotFound)
			return
		}
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.WriteHeader(http.StatusOK)
			return
		}
		if rng := r.Header.Get("Range"); rng != "" {
			from, to, ok := parseRange(rng, len(data))
			if !ok {
				http.Error(w, "InvalidRange", http.StatusRequestedRangeNotSatisfiable)
				return
			}
			w.Header().Set("Content-Range",
				fmt.Sprintf("bytes %d-%d/%d", from, to, len(data)))
			w.WriteHeader(http.StatusPartialContent)
			w.Write(data[from : to+1])
			return
		}
		w.Write(data)

	case http.MethodDelete:
		s.mu.Lock()
		delete(s.objects, obj)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "MethodNotAllowed", http.StatusMethodNotAllowed)
	}
}

// parseRange handles the "bytes=from-[to]" forms the blobstore client
// sends; returns inclusive offsets.
func parseRange(h string, size int) (from, to int, ok bool) {
	spec, found := strings.CutPrefix(h, "bytes=")
	if !found {
		return 0, 0, false
	}
	lo, hi, found := strings.Cut(spec, "-")
	if !found {
		return 0, 0, false
	}
	from, err := strconv.Atoi(lo)
	if err != nil || from < 0 || from >= size {
		return 0, 0, false
	}
	if hi == "" {
		return from, size - 1, true
	}
	to, err = strconv.Atoi(hi)
	if err != nil || to < from {
		return 0, 0, false
	}
	if to >= size {
		to = size - 1
	}
	return from, to, true
}

// list implements ListObjectsV2 with prefix filtering and
// continuation-token pagination (the token is the last key of the
// previous page).
func (s *Server) list(w http.ResponseWriter, r *http.Request, bucket string) {
	q := r.URL.Query()
	prefix := q.Get("prefix")
	token := q.Get("continuation-token")

	s.mu.Lock()
	var keys []string
	base := bucket + "/"
	for k := range s.objects {
		if rel, found := strings.CutPrefix(k, base); found && strings.HasPrefix(rel, prefix) {
			keys = append(keys, rel)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)

	if token != "" {
		i := sort.SearchStrings(keys, token)
		if i < len(keys) && keys[i] == token {
			i++
		}
		keys = keys[i:]
	}

	resp := listResponse{}
	limit := len(keys)
	if s.PageSize > 0 && limit > s.PageSize {
		limit = s.PageSize
		resp.IsTruncated = true
		resp.NextContinuationToken = keys[limit-1]
	}
	for _, k := range keys[:limit] {
		resp.Contents = append(resp.Contents, listEntry{Key: k})
	}

	w.Header().Set("Content-Type", "application/xml")
	out, _ := xml.Marshal(resp)
	w.Write(out)
}
