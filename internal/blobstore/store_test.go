package blobstore_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/blobstore/s3stub"
)

// backends returns one instance of every readable backend, each freshly
// scoped, plus a cleanup. The same contract suite runs over all of them.
func backends(t *testing.T) map[string]blobstore.Store {
	t.Helper()
	stub := s3stub.New()
	t.Cleanup(stub.Close)
	s3, err := blobstore.Resolve(stub.URL("bkt", "base"))
	if err != nil {
		t.Fatalf("resolve s3 stub: %v", err)
	}
	return map[string]blobstore.Store{
		"file": blobstore.NewFile(t.TempDir()),
		"mem":  blobstore.NewMemory(),
		"s3":   s3,
	}
}

func TestStoreContract(t *testing.T) {
	ctx := context.Background()
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// Missing keys: fs.ErrNotExist from Get, GetRange, Stat.
			if _, err := st.Get(ctx, "absent"); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("Get absent: got %v, want fs.ErrNotExist", err)
			}
			if _, err := st.GetRange(ctx, "absent", 0, 4); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("GetRange absent: got %v, want fs.ErrNotExist", err)
			}
			if _, err := st.Stat(ctx, "absent"); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("Stat absent: got %v, want fs.ErrNotExist", err)
			}

			// Round-trip, including a nested key.
			data := []byte("hello blob world")
			for _, key := range []string{"manifest.json", "eos/segment-000001.gz"} {
				if err := st.Put(ctx, key, data); err != nil {
					t.Fatalf("Put %s: %v", key, err)
				}
				got, err := st.Get(ctx, key)
				if err != nil || string(got) != string(data) {
					t.Fatalf("Get %s: %q, %v", key, got, err)
				}
				if n, err := st.Stat(ctx, key); err != nil || n != int64(len(data)) {
					t.Fatalf("Stat %s: %d, %v", key, n, err)
				}
			}

			// Ranged gets: interior, suffix (n<0), and out-of-bounds.
			if got, err := st.GetRange(ctx, "manifest.json", 6, 4); err != nil || string(got) != "blob" {
				t.Errorf("GetRange interior: %q, %v", got, err)
			}
			if got, err := st.GetRange(ctx, "manifest.json", 11, -1); err != nil || string(got) != "world" {
				t.Errorf("GetRange suffix: %q, %v", got, err)
			}
			if _, err := st.GetRange(ctx, "manifest.json", 5, 100); err == nil {
				t.Errorf("GetRange out of bounds: want error, got nil")
			}

			// Overwrite replaces.
			if err := st.Put(ctx, "manifest.json", []byte("v2")); err != nil {
				t.Fatalf("overwrite: %v", err)
			}
			if got, _ := st.Get(ctx, "manifest.json"); string(got) != "v2" {
				t.Errorf("after overwrite: %q", got)
			}

			// List: sorted, prefix-filtered.
			keys, err := st.List(ctx, "")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			want := []string{"eos/segment-000001.gz", "manifest.json"}
			if !reflect.DeepEqual(keys, want) {
				t.Errorf("List: got %v, want %v", keys, want)
			}
			keys, err = st.List(ctx, "eos/")
			if err != nil || !reflect.DeepEqual(keys, []string{"eos/segment-000001.gz"}) {
				t.Errorf("List eos/: got %v, %v", keys, err)
			}

			// Delete: removes, and is idempotent.
			if err := st.Delete(ctx, "manifest.json"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := st.Get(ctx, "manifest.json"); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("Get deleted: got %v, want fs.ErrNotExist", err)
			}
			if err := st.Delete(ctx, "manifest.json"); err != nil {
				t.Errorf("Delete absent: %v, want nil", err)
			}

			// Invalid keys rejected before hitting the backend.
			for _, bad := range []string{"", "/abs", "trail/", "a//b", "../up", "a/./b"} {
				if err := st.Put(ctx, bad, data); err == nil {
					t.Errorf("Put %q: want error", bad)
				}
			}
		})
	}
}

func TestNullStore(t *testing.T) {
	ctx := context.Background()
	n := blobstore.NewNull()
	if err := n.Put(ctx, "seg.gz", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := n.Get(ctx, "seg.gz"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Get: got %v, want fs.ErrNotExist", err)
	}
	if keys, err := n.List(ctx, ""); err != nil || len(keys) != 0 {
		t.Errorf("List: %v, %v", keys, err)
	}
	if n.Puts() != 1 {
		t.Errorf("Puts: %d, want 1", n.Puts())
	}
}

// TestFilePutAtomic hammers one key with concurrent writers while a
// reader polls: every observed value must be one of the complete payloads,
// never a splice or a truncation.
func TestFilePutAtomic(t *testing.T) {
	ctx := context.Background()
	st := blobstore.NewFile(t.TempDir())

	payload := func(i int) []byte {
		return []byte(strings.Repeat(fmt.Sprintf("writer-%02d|", i), 512))
	}
	valid := make(map[string]bool)
	for i := 0; i < 8; i++ {
		valid[string(payload(i))] = true
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := st.Put(ctx, "contested", payload(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(i)
	}
	go func() { wg.Wait(); close(stop) }()

	for {
		select {
		case <-stop:
			return
		default:
		}
		got, err := st.Get(ctx, "contested")
		if errors.Is(err, fs.ErrNotExist) {
			continue // not yet published
		}
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !valid[string(got)] {
			t.Fatalf("observed torn object (%d bytes)", len(got))
		}
	}
}

// TestFileSweep verifies stray .tmp files (a crash mid-Put) are invisible
// to List and removed by Sweep.
func TestFileSweep(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st := blobstore.NewFile(dir)
	if err := st.Put(ctx, "kept.gz", []byte("x")); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "crashed.gz.tmp")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := st.List(ctx, "")
	if err != nil || !reflect.DeepEqual(keys, []string{"kept.gz"}) {
		t.Fatalf("List with stray tmp: %v, %v", keys, err)
	}
	if err := st.Sweep(); err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray tmp survived sweep")
	}
	if got, err := st.Get(ctx, "kept.gz"); err != nil || string(got) != "x" {
		t.Errorf("kept object after sweep: %q, %v", got, err)
	}
}

// TestFileListMissingRoot: a root that was never created reports
// fs.ErrNotExist (Discover relies on distinguishing this from empty).
func TestFileListMissingRoot(t *testing.T) {
	st := blobstore.NewFile(filepath.Join(t.TempDir(), "never-created"))
	if _, err := st.List(context.Background(), ""); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("List missing root: got %v, want fs.ErrNotExist", err)
	}
}

// TestMemoryCounters: the op/byte counters that range-replay tests lean on.
func TestMemoryCounters(t *testing.T) {
	ctx := context.Background()
	m := blobstore.NewMemory()
	if err := m.Put(ctx, "a", []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.GetRange(ctx, "a", 2, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Ops(blobstore.OpPut); got != 1 {
		t.Errorf("put ops: %d", got)
	}
	if got := m.Ops(blobstore.OpGet); got != 1 {
		t.Errorf("get ops: %d", got)
	}
	if got := m.Ops(blobstore.OpGetRange); got != 1 {
		t.Errorf("getrange ops: %d", got)
	}
	in, out := m.Bytes()
	if in != 8 || out != 11 {
		t.Errorf("bytes: in=%d out=%d, want 8/11", in, out)
	}
	m.ResetOps()
	if got := m.Ops(blobstore.OpGet); got != 0 {
		t.Errorf("ops after reset: %d", got)
	}
	if m.Len() != 1 {
		t.Errorf("Len after reset: %d, want 1 (objects survive)", m.Len())
	}
}

// TestMemoryDefensiveCopies: mutating a slice handed to Put or returned
// from Get must not corrupt the stored object.
func TestMemoryDefensiveCopies(t *testing.T) {
	ctx := context.Background()
	m := blobstore.NewMemory()
	buf := []byte("original")
	if err := m.Put(ctx, "k", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	got, _ := m.Get(ctx, "k")
	got[1] = 'Y'
	again, _ := m.Get(ctx, "k")
	if string(again) != "original" {
		t.Fatalf("stored object mutated: %q", again)
	}
}
