package blobstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"
)

// AWS Signature Version 4, the subset an S3 client needs: every request
// carries x-amz-date and x-amz-content-sha256, the canonical request is
// hashed into a string-to-sign, and a key derived from the secret through
// the date/region/service HMAC chain signs it. Implemented from the
// documented algorithm against the standard library only.

// sha256Of returns the lowercase hex SHA-256 of body (the payload hash
// every SigV4 request embeds; nil hashes like the empty string).
func sha256Of(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

func hmacSHA256(key, data []byte) []byte {
	h := hmac.New(sha256.New, key)
	h.Write(data)
	return h.Sum(nil)
}

// awsEscape percent-encodes s per SigV4's canonical rules: unreserved
// characters (A-Za-z0-9, '-', '.', '_', '~') pass through, everything else
// becomes %XX with uppercase hex. When isPath, '/' also passes through.
func awsEscape(s string, isPath bool) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		case c == '/' && isPath:
			b.WriteByte(c)
		default:
			const hexUpper = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hexUpper[c>>4])
			b.WriteByte(hexUpper[c&0xf])
		}
	}
	return b.String()
}

// awsEscapePath canonically encodes an object key for the request path.
func awsEscapePath(key string) string { return awsEscape(key, true) }

// awsEncodeQuery renders query parameters in SigV4 canonical form: keys
// sorted, both keys and values awsEscape'd, joined with '&'. Using it to
// build the actual request URL too keeps the signed string and the wire
// bytes trivially identical.
func awsEncodeQuery(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			parts = append(parts, awsEscape(k, false)+"="+awsEscape(v, false))
		}
	}
	return strings.Join(parts, "&")
}

// signV4 signs req in place for the s3 service: it sets X-Amz-Date,
// X-Amz-Content-Sha256 (and X-Amz-Security-Token when session is set),
// then computes the Authorization header over the canonical request.
func signV4(req *http.Request, payloadHash, access, secret, session, region string, now time.Time) {
	amzDate := now.Format("20060102T150405Z")
	dateStamp := now.Format("20060102")

	req.Header.Set("X-Amz-Date", amzDate)
	req.Header.Set("X-Amz-Content-Sha256", payloadHash)
	if session != "" {
		req.Header.Set("X-Amz-Security-Token", session)
	}

	// Canonical headers: the signed set is fixed — host plus the x-amz-*
	// headers this client sends — lowercase, sorted, trimmed.
	type hdr struct{ name, value string }
	canon := []hdr{
		{"host", req.Host},
		{"x-amz-content-sha256", payloadHash},
		{"x-amz-date", amzDate},
	}
	if req.Host == "" {
		canon[0].value = req.URL.Host
	}
	if session != "" {
		canon = append(canon, hdr{"x-amz-security-token", session})
	}
	sort.Slice(canon, func(i, j int) bool { return canon[i].name < canon[j].name })

	var canonHeaders, signedList strings.Builder
	for i, h := range canon {
		canonHeaders.WriteString(h.name + ":" + strings.TrimSpace(h.value) + "\n")
		if i > 0 {
			signedList.WriteByte(';')
		}
		signedList.WriteString(h.name)
	}
	signedHeaders := signedList.String()

	canonPath := req.URL.EscapedPath()
	if canonPath == "" {
		canonPath = "/"
	}
	canonQuery := awsEncodeQuery(req.URL.Query())

	canonicalRequest := strings.Join([]string{
		req.Method,
		canonPath,
		canonQuery,
		canonHeaders.String(),
		signedHeaders,
		payloadHash,
	}, "\n")

	scope := dateStamp + "/" + region + "/s3/aws4_request"
	stringToSign := strings.Join([]string{
		"AWS4-HMAC-SHA256",
		amzDate,
		scope,
		sha256Of([]byte(canonicalRequest)),
	}, "\n")

	kDate := hmacSHA256([]byte("AWS4"+secret), []byte(dateStamp))
	kRegion := hmacSHA256(kDate, []byte(region))
	kService := hmacSHA256(kRegion, []byte("s3"))
	kSigning := hmacSHA256(kService, []byte("aws4_request"))
	signature := hex.EncodeToString(hmacSHA256(kSigning, []byte(stringToSign)))

	req.Header.Set("Authorization",
		"AWS4-HMAC-SHA256 Credential="+access+"/"+scope+
			", SignedHeaders="+signedHeaders+
			", Signature="+signature)
}
