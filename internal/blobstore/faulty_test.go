package blobstore_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/blobstore"
)

func TestFaultyInjection(t *testing.T) {
	ctx := context.Background()
	base := blobstore.NewMemory()
	f := blobstore.NewFaulty(base)
	boom := errors.New("disk on fire")

	if err := f.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Break: every call of the op fails until cleared; other ops pass.
	f.Break(blobstore.OpGet, boom)
	if _, err := f.Get(ctx, "k"); !errors.Is(err, boom) {
		t.Fatalf("broken Get: %v", err)
	}
	if _, err := f.Stat(ctx, "k"); err != nil {
		t.Fatalf("Stat while Get broken: %v", err)
	}
	f.Break(blobstore.OpGet, nil)
	if got, err := f.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get after clear: %q, %v", got, err)
	}

	// BreakAfter: N successes, M failures, then recovery.
	f.BreakAfter(blobstore.OpGet, 1, 2, boom)
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("call 1 (allowed): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Get(ctx, "k"); !errors.Is(err, boom) {
			t.Fatalf("call %d (faulted): %v", i+2, err)
		}
	}
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("call 4 (recovered): %v", err)
	}

	if n := f.Calls(blobstore.OpGet); n != 6 {
		t.Errorf("Get calls: %d, want 6", n)
	}
}

func TestFaultyDelay(t *testing.T) {
	f := blobstore.NewFaulty(blobstore.NewMemory())
	f.Delay(30 * time.Millisecond)
	start := time.Now()
	_ = f.Put(context.Background(), "k", nil)
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delayed Put took %v, want >= 30ms", d)
	}
	f.Clear()
	start = time.Now()
	_ = f.Put(context.Background(), "k", nil)
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("Put after Clear took %v", d)
	}
}
