package blobstore_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/blobstore"
)

func TestFaultyInjection(t *testing.T) {
	ctx := context.Background()
	base := blobstore.NewMemory()
	f := blobstore.NewFaulty(base)
	boom := errors.New("disk on fire")

	if err := f.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Break: every call of the op fails until cleared; other ops pass.
	f.Break(blobstore.OpGet, boom)
	if _, err := f.Get(ctx, "k"); !errors.Is(err, boom) {
		t.Fatalf("broken Get: %v", err)
	}
	if _, err := f.Stat(ctx, "k"); err != nil {
		t.Fatalf("Stat while Get broken: %v", err)
	}
	f.Break(blobstore.OpGet, nil)
	if got, err := f.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("Get after clear: %q, %v", got, err)
	}

	// BreakAfter: N successes, M failures, then recovery.
	f.BreakAfter(blobstore.OpGet, 1, 2, boom)
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("call 1 (allowed): %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := f.Get(ctx, "k"); !errors.Is(err, boom) {
			t.Fatalf("call %d (faulted): %v", i+2, err)
		}
	}
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("call 4 (recovered): %v", err)
	}

	if n := f.Calls(blobstore.OpGet); n != 6 {
		t.Errorf("Get calls: %d, want 6", n)
	}
}

func TestFaultyChaosDeterministicFromSeed(t *testing.T) {
	ctx := context.Background()
	run := func(seed int64) []bool {
		f := blobstore.NewFaulty(blobstore.NewMemory())
		f.Chaos(seed, 0.3)
		var faults []bool
		for i := 0; i < 200; i++ {
			err := f.Put(ctx, "k", []byte("v"))
			if err != nil && !errors.Is(err, blobstore.ErrInjected) {
				t.Fatalf("chaos fault is not ErrInjected: %v", err)
			}
			faults = append(faults, err != nil)
		}
		return faults
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
	injected := 0
	for _, hit := range a {
		if hit {
			injected++
		}
	}
	// 200 draws at p=0.3: expect ~60; any count far outside says the
	// probability is not being applied.
	if injected < 20 || injected > 120 {
		t.Errorf("injected %d/200 faults at p=0.3", injected)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical fault sequences")
	}
}

func TestFaultyChaosScopedToOps(t *testing.T) {
	ctx := context.Background()
	f := blobstore.NewFaulty(blobstore.NewMemory())
	f.Chaos(1, 1, blobstore.OpGet) // every Get fails; nothing else does
	if err := f.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put under get-only chaos: %v", err)
	}
	if _, err := f.Get(ctx, "k"); !errors.Is(err, blobstore.ErrInjected) {
		t.Fatalf("Get under p=1 chaos: %v", err)
	}
	if _, err := f.Stat(ctx, "k"); err != nil {
		t.Fatalf("Stat under get-only chaos: %v", err)
	}
	f.Chaos(1, 0) // disarm
	if _, err := f.Get(ctx, "k"); err != nil {
		t.Fatalf("Get after disarm: %v", err)
	}
}

func TestFaultyOpLog(t *testing.T) {
	ctx := context.Background()
	f := blobstore.NewFaulty(blobstore.NewMemory())
	boom := errors.New("boom")
	if err := f.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	f.Break(blobstore.OpGet, boom)
	_, _ = f.Get(ctx, "a")
	f.Break(blobstore.OpGet, nil)
	if _, err := f.List(ctx, "pre/"); err != nil {
		t.Fatal(err)
	}

	log := f.Log()
	want := []struct {
		op, key string
		faulted bool
	}{
		{blobstore.OpPut, "a", false},
		{blobstore.OpGet, "a", true},
		{blobstore.OpList, "pre/", false},
	}
	if len(log) != len(want) {
		t.Fatalf("log has %d entries, want %d: %+v", len(log), len(want), log)
	}
	for i, w := range want {
		rec := log[i]
		if rec.Op != w.op || rec.Key != w.key || (rec.Err != nil) != w.faulted {
			t.Errorf("log[%d] = %+v, want {%s %s faulted=%v}", i, rec, w.op, w.key, w.faulted)
		}
	}
	if !errors.Is(log[1].Err, boom) {
		t.Errorf("log[1].Err = %v, want the armed error", log[1].Err)
	}

	f.ResetLog()
	if got := f.Log(); len(got) != 0 {
		t.Errorf("log after reset: %+v", got)
	}
}

func TestFaultyDelay(t *testing.T) {
	f := blobstore.NewFaulty(blobstore.NewMemory())
	f.Delay(30 * time.Millisecond)
	start := time.Now()
	_ = f.Put(context.Background(), "k", nil)
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delayed Put took %v, want >= 30ms", d)
	}
	f.Clear()
	start = time.Now()
	_ = f.Put(context.Background(), "k", nil)
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Errorf("Put after Clear took %v", d)
	}
}
