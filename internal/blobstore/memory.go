package blobstore

import (
	"context"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// Memory is the in-process backend: a mutex-guarded key→bytes map that
// additionally counts every operation and byte moved. The counters are
// the backend's whole point beyond speed — tests and benches assert fetch
// locality ("this range replay issued exactly two gets") instead of
// guessing at it.
//
// mem://NAME URLs resolve through a process-wide registry, so a writer
// and a reader resolving the same URL in one process share one namespace
// (and one set of counters).
type Memory struct {
	url string

	mu       sync.Mutex
	objects  map[string][]byte
	ops      map[string]int64
	bytesIn  int64
	bytesOut int64
}

// memRegistry backs mem://NAME resolution: same name, same store.
var memRegistry = struct {
	sync.Mutex
	stores map[string]*Memory
	anon   int
}{stores: make(map[string]*Memory)}

// OpenMemory returns the process-wide memory store registered under name,
// creating it on first use.
func OpenMemory(name string) *Memory {
	memRegistry.Lock()
	defer memRegistry.Unlock()
	st, ok := memRegistry.stores[name]
	if !ok {
		st = &Memory{url: "mem://" + name, objects: make(map[string][]byte), ops: make(map[string]int64)}
		memRegistry.stores[name] = st
	}
	return st
}

// NewMemory returns a fresh anonymous memory store (registered under a
// unique name so its URL still round-trips through Resolve).
func NewMemory() *Memory {
	memRegistry.Lock()
	memRegistry.anon++
	name := fmt.Sprintf("anon-%d", memRegistry.anon)
	memRegistry.Unlock()
	return OpenMemory(name)
}

// URL returns the store's mem:// location.
func (m *Memory) URL() string { return m.url }

func (m *Memory) count(op string, in, out int64) {
	m.ops[op]++
	m.bytesIn += in
	m.bytesOut += out
}

func (m *Memory) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count(OpPut, int64(len(data)), 0)
	m.objects[key] = cp
	return nil
}

func (m *Memory) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("mem: %s: %w", key, fs.ErrNotExist)
	}
	m.count(OpGet, 0, int64(len(data)))
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

func (m *Memory) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("mem: negative offset %d for %s", off, key)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("mem: %s: %w", key, fs.ErrNotExist)
	}
	size := int64(len(data))
	if n < 0 {
		n = size - off
	}
	if off > size || off+n > size || n < 0 {
		return nil, fmt.Errorf("mem: range [%d, %d) exceeds %s (%d bytes)", off, off+n, key, size)
	}
	m.count(OpGetRange, 0, n)
	cp := make([]byte, n)
	copy(cp, data[off:off+n])
	return cp, nil
}

func (m *Memory) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count(OpList, 0, 0)
	keys := make([]string, 0, len(m.objects))
	for k := range m.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

func (m *Memory) Stat(ctx context.Context, key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count(OpStat, 0, 0)
	data, ok := m.objects[key]
	if !ok {
		return 0, fmt.Errorf("mem: %s: %w", key, fs.ErrNotExist)
	}
	return int64(len(data)), nil
}

func (m *Memory) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count(OpDelete, 0, 0)
	delete(m.objects, key)
	return nil
}

// Ops reports how many times op has run since the last ResetOps.
func (m *Memory) Ops(op string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops[op]
}

// Bytes reports total bytes written to (in) and read from (out) the store
// since the last ResetOps.
func (m *Memory) Bytes() (in, out int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesIn, m.bytesOut
}

// ResetOps zeroes the op and byte counters (the objects stay).
func (m *Memory) ResetOps() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ops = make(map[string]int64)
	m.bytesIn, m.bytesOut = 0, 0
}

// Len reports how many objects the store holds.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.objects)
}
