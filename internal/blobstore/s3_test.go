package blobstore

import (
	"context"
	"errors"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blobstore/s3stub"
)

// stubS3 resolves an S3 store against a stub with test-friendly backoff.
func stubS3(t *testing.T, stub *s3stub.Server, bucket, prefix string) *S3 {
	t.Helper()
	st, err := newS3(stub.URL(bucket, prefix))
	if err != nil {
		t.Fatal(err)
	}
	st.backoff = time.Millisecond
	return st
}

func TestS3RetryOn500(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	st := stubS3(t, stub, "bkt", "")
	ctx := context.Background()

	if err := st.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := stub.Requests()

	// Two failures, then success: the client must retry through them.
	stub.FailNext(2, http.StatusInternalServerError)
	got, err := st.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get through 500s: %q, %v", got, err)
	}
	if n := stub.Requests() - before; n != 3 {
		t.Errorf("request count: %d, want 3 (2 failures + success)", n)
	}

	// More failures than attempts: gives up with the last error.
	stub.FailNext(10, http.StatusServiceUnavailable)
	_, err = st.Get(ctx, "k")
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("exhausted retries: %v", err)
	}
	stub.FailNext(0, 0)
}

func TestS3NoRetryOn404(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	st := stubS3(t, stub, "bkt", "")

	before := stub.Requests()
	_, err := st.Get(context.Background(), "absent")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Get absent: %v, want fs.ErrNotExist", err)
	}
	if n := stub.Requests() - before; n != 1 {
		t.Errorf("404 retried: %d requests, want 1", n)
	}
}

func TestS3ContextCancelDuringBackoff(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	st := stubS3(t, stub, "bkt", "")
	st.backoff = 10 * time.Second // force a long sleep after the first failure

	stub.FailNext(10, http.StatusInternalServerError)
	defer stub.FailNext(0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := st.Get(ctx, "k")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and enter backoff
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Get: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get did not return after cancel — backoff ignored the context")
	}
}

func TestS3ListPagination(t *testing.T) {
	stub := s3stub.New()
	defer stub.Close()
	stub.PageSize = 3
	st := stubS3(t, stub, "bkt", "arch")
	ctx := context.Background()

	want := []string{"a.gz", "b.gz", "c.gz", "d.gz", "e.gz", "f.gz", "g.gz"}
	for _, k := range want {
		if err := st.Put(ctx, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := st.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(want) {
		t.Fatalf("List over pages: got %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}

// TestS3Signing: with env creds, requests carry a well-formed SigV4
// Authorization header whose signature matches a pinned golden value for a
// fixed request (guards against silent drift in the canonicalization).
func TestS3Signing(t *testing.T) {
	var auth, amzDate, contentSHA atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		auth.Store(r.Header.Get("Authorization"))
		amzDate.Store(r.Header.Get("X-Amz-Date"))
		contentSHA.Store(r.Header.Get("X-Amz-Content-Sha256"))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	t.Setenv("AWS_ACCESS_KEY_ID", "AKIDEXAMPLE")
	t.Setenv("AWS_SECRET_ACCESS_KEY", "wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY")
	t.Setenv("AWS_SESSION_TOKEN", "")
	st, err := newS3("s3://bkt/pre?endpoint=" + url.QueryEscape(srv.URL) + "&region=us-east-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(context.Background(), "obj.gz", []byte("payload")); err != nil {
		t.Fatal(err)
	}

	a, _ := auth.Load().(string)
	if !strings.HasPrefix(a, "AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/") {
		t.Fatalf("Authorization: %q", a)
	}
	if !strings.Contains(a, "/us-east-1/s3/aws4_request") {
		t.Errorf("scope missing region/service: %q", a)
	}
	if !strings.Contains(a, "SignedHeaders=host;x-amz-content-sha256;x-amz-date") {
		t.Errorf("signed headers: %q", a)
	}
	if got, _ := contentSHA.Load().(string); got != sha256Of([]byte("payload")) {
		t.Errorf("content sha: %q", got)
	}
	if got, _ := amzDate.Load().(string); len(got) != 16 || got[8] != 'T' {
		t.Errorf("x-amz-date: %q", got)
	}
}

// TestSigV4Golden pins the signature for a fully fixed request so any
// change to canonicalization is a visible diff, not a silent behavior
// change against real services.
func TestSigV4Golden(t *testing.T) {
	req, err := http.NewRequest(http.MethodPut, "http://localhost:9000/bkt/pre/seg%20one.gz?x=a&b=2", strings.NewReader("data"))
	if err != nil {
		t.Fatal(err)
	}
	when := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	signV4(req, sha256Of([]byte("data")), "AKIDEXAMPLE", "secretkey", "", "us-east-1", when)

	if got := req.Header.Get("X-Amz-Date"); got != "20260102T030405Z" {
		t.Errorf("X-Amz-Date: %q", got)
	}
	const want = "AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/20260102/us-east-1/s3/aws4_request" +
		", SignedHeaders=host;x-amz-content-sha256;x-amz-date" +
		", Signature=98feaf23916fe286cf3b5e7113e12f810879defe5afc421821f27e5c55d76f27"
	if got := req.Header.Get("Authorization"); got != want {
		t.Errorf("Authorization drifted:\n got %s\nwant %s", got, want)
	}
}

func TestAWSEscape(t *testing.T) {
	cases := []struct {
		in     string
		isPath bool
		want   string
	}{
		{"simple-key_1.gz~", true, "simple-key_1.gz~"},
		{"a/b c", true, "a/b%20c"},
		{"a/b c", false, "a%2Fb%20c"},
		{"pct%25", false, "pct%2525"},
	}
	for _, c := range cases {
		if got := awsEscape(c.in, c.isPath); got != c.want {
			t.Errorf("awsEscape(%q, %v) = %q, want %q", c.in, c.isPath, got, c.want)
		}
	}
}
