package blobstore

import (
	"context"
	"fmt"
	"io/fs"
	"sync/atomic"
)

// Null is the discard backend: every Put succeeds and vanishes, every
// read reports absence. It exists for perf probes — archiving a crawl to
// null:// measures the full tee/segment/compress pipeline with the
// storage cost subtracted — and keeps a put counter so tests can assert
// the writer actually drove it.
type Null struct {
	puts atomic.Int64
}

// NewNull returns the discard store.
func NewNull() *Null { return &Null{} }

// URL returns the store's null:// location.
func (n *Null) URL() string { return "null://" }

func (n *Null) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	n.puts.Add(1)
	return nil
}

func (n *Null) Get(ctx context.Context, key string) ([]byte, error) {
	return nil, fmt.Errorf("null: %s: %w", key, fs.ErrNotExist)
}

func (n *Null) GetRange(ctx context.Context, key string, off, nbytes int64) ([]byte, error) {
	return nil, fmt.Errorf("null: %s: %w", key, fs.ErrNotExist)
}

func (n *Null) List(ctx context.Context, prefix string) ([]string, error) {
	return nil, nil
}

func (n *Null) Stat(ctx context.Context, key string) (int64, error) {
	return 0, fmt.Errorf("null: %s: %w", key, fs.ErrNotExist)
}

func (n *Null) Delete(ctx context.Context, key string) error { return nil }

// Puts reports how many objects have been discarded.
func (n *Null) Puts() int64 { return n.puts.Load() }
