// Package blobstore abstracts the archive's storage into a small blob
// Store contract with several interchangeable backends, so crawl archives
// can outgrow one machine's disk without the archive layer knowing or
// caring where its bytes live.
//
// A Store is a flat namespace of immutable-ish objects addressed by
// slash-separated keys. The contract is deliberately tiny — put with
// atomic publish, whole and ranged gets, list, stat, delete — which is
// exactly what the segment-file archive format needs and what every real
// blob service (S3 and its clones, local filesystems, memory) can honor:
//
//   - Put publishes an object atomically: a concurrent reader observes
//     either the whole object or its absence, never a partial write. The
//     file backend implements this as write-to-temp + fsync + rename (the
//     durability dance the archive Writer used to do inline); object
//     stores give it away for free.
//   - Get/GetRange/Stat report a missing key with an error satisfying
//     errors.Is(err, fs.ErrNotExist), so callers distinguish absence from
//     failure without knowing the backend.
//   - List returns the keys under a prefix in sorted order.
//   - Delete is idempotent: deleting an absent key is not an error.
//
// Backends resolve from URLs (see Resolve): file://PATH (or a bare path),
// mem://NAME[/PREFIX], s3://BUCKET[/PREFIX]?endpoint=..., and null://.
// The memory backend counts every operation and byte, which is how tests
// prove fetch-locality properties (e.g. that a range replay touches only
// covering segments); Faulty wraps any backend with injectable per-op
// errors and latency for failure-path tests.
package blobstore

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
)

// Op names one Store operation, as counted by the memory backend and
// targeted by Faulty fault injection.
const (
	OpPut      = "put"
	OpGet      = "get"
	OpGetRange = "getrange"
	OpList     = "list"
	OpStat     = "stat"
	OpDelete   = "delete"
)

// Store is the blob contract the archive rides. Keys are slash-separated
// relative paths ("manifest.json", "eos/segment-000001.gz"); backends map
// them onto their native namespace. Implementations are safe for
// concurrent use.
type Store interface {
	// Put atomically publishes key holding data: no concurrent reader
	// ever observes a partial object. An existing key is replaced.
	Put(ctx context.Context, key string, data []byte) error
	// Get fetches the whole object. A missing key satisfies
	// errors.Is(err, fs.ErrNotExist).
	Get(ctx context.Context, key string) ([]byte, error)
	// GetRange fetches n bytes starting at off (n < 0 means through the
	// end). A range extending past the object is an error.
	GetRange(ctx context.Context, key string, off, n int64) ([]byte, error)
	// List returns the keys under prefix, sorted. A store with nothing
	// under prefix returns an empty slice, not an error — except a file
	// root that does not exist at all, which is fs.ErrNotExist.
	List(ctx context.Context, prefix string) ([]string, error)
	// Stat returns the object's size in bytes. A missing key satisfies
	// errors.Is(err, fs.ErrNotExist).
	Stat(ctx context.Context, key string) (int64, error)
	// Delete removes key; deleting an absent key is not an error.
	Delete(ctx context.Context, key string) error
	// URL names the store for error messages and re-resolution:
	// Resolve(URL()) opens the same store (same in-process namespace for
	// mem://).
	URL() string
}

// validKey rejects keys that would escape a backend's namespace or map
// ambiguously onto it.
func validKey(key string) error {
	if key == "" {
		return fmt.Errorf("blobstore: empty key")
	}
	if strings.HasPrefix(key, "/") || strings.HasSuffix(key, "/") {
		return fmt.Errorf("blobstore: key %q must be a relative slash path", key)
	}
	for _, part := range strings.Split(key, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("blobstore: key %q contains an invalid path element", key)
		}
	}
	return nil
}

// Join appends path elements to a store location: URL-aware for
// scheme://-style locations (elements land in the path, ahead of any
// query), plain filepath.Join for bare paths. It is how callers derive
// per-stage or per-chain sub-archives from one configured base location.
func Join(base string, elems ...string) string {
	scheme, rest, ok := strings.Cut(base, "://")
	if !ok {
		return filepath.Join(append([]string{base}, elems...)...)
	}
	query := ""
	if i := strings.IndexByte(rest, '?'); i >= 0 {
		rest, query = rest[:i], rest[i:]
	}
	rest = strings.TrimSuffix(rest, "/")
	for _, e := range elems {
		if e = strings.Trim(e, "/"); e != "" {
			if rest == "" {
				rest = e
			} else {
				rest += "/" + e
			}
		}
	}
	return scheme + "://" + rest + query
}
