package blobstore

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/retry"
)

// S3 talks to an S3-compatible service over plain net/http — no SDK, so
// the repo's only dependency stays the standard library. It covers
// exactly the Store contract: PutObject, GetObject (whole and ranged),
// HeadObject, DeleteObject and ListObjectsV2 (paginated). Requests are
// SigV4-signed when credentials are present in the environment
// (AWS_ACCESS_KEY_ID / AWS_SECRET_ACCESS_KEY / AWS_SESSION_TOKEN) and
// sent unsigned otherwise, which is what local stubs and anonymous
// buckets want.
//
// Transient failures — transport errors, 429 and 5xx responses — retry
// with exponential backoff and full jitter, honoring context
// cancellation between attempts. Permanent failures (403, 404, …) fail
// immediately; a 404 maps to fs.ErrNotExist like every other backend.
//
// URLs: s3://BUCKET[/PREFIX]?endpoint=http://HOST:PORT&region=REGION.
// With an explicit endpoint (a MinIO or test stub), requests are
// path-style (endpoint/bucket/key); without one, the store targets
// https://BUCKET.s3.REGION.amazonaws.com virtual-host style.
type S3 struct {
	rawURL   string
	endpoint string // "" = AWS virtual-host style
	bucket   string
	prefix   string // "" or slash-terminated
	region   string

	access, secret, session string

	client   *http.Client
	attempts int
	backoff  time.Duration
}

// s3Defaults are overridable in tests via struct fields.
const (
	s3DefaultAttempts = 4
	s3DefaultBackoff  = 50 * time.Millisecond
)

// newS3 builds a store from a parsed s3:// URL.
func newS3(raw string) (*S3, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("blobstore: parsing %s: %v", raw, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("blobstore: %s names no bucket (want s3://bucket[/prefix])", raw)
	}
	q := u.Query()
	region := q.Get("region")
	if region == "" {
		region = os.Getenv("AWS_REGION")
	}
	if region == "" {
		region = "us-east-1"
	}
	prefix := strings.Trim(u.Path, "/")
	if prefix != "" {
		prefix += "/"
	}
	s := &S3{
		rawURL:   raw,
		endpoint: strings.TrimSuffix(q.Get("endpoint"), "/"),
		bucket:   u.Host,
		prefix:   prefix,
		region:   region,
		access:   os.Getenv("AWS_ACCESS_KEY_ID"),
		secret:   os.Getenv("AWS_SECRET_ACCESS_KEY"),
		session:  os.Getenv("AWS_SESSION_TOKEN"),
		client:   &http.Client{Timeout: 60 * time.Second},
		attempts: s3DefaultAttempts,
		backoff:  s3DefaultBackoff,
	}
	return s, nil
}

// URL returns the store's s3:// location as configured.
func (s *S3) URL() string { return s.rawURL }

// objectURL builds the request URL for key ("" addresses the bucket, for
// listing). The key is percent-encoded segment by segment.
func (s *S3) objectURL(key string, query url.Values) string {
	path := ""
	if key != "" {
		path = awsEscapePath(s.prefix + key)
	}
	var base string
	if s.endpoint != "" {
		base = s.endpoint + "/" + s.bucket
	} else {
		base = "https://" + s.bucket + ".s3." + s.region + ".amazonaws.com"
	}
	u := base + "/" + path
	if len(query) > 0 {
		u += "?" + awsEncodeQuery(query)
	}
	return u
}

// retryable reports whether a response status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// do sends one S3 request under the shared retry policy: transport
// errors and retryable statuses (429, 5xx) back off with full jitter and
// try again; everything else returns on the first attempt. The returned
// response's body is fully read into memory and the connection closed;
// resp.Body is replaced by the buffered bytes.
func (s *S3) do(ctx context.Context, method, key string, query url.Values, header http.Header, body []byte) (*http.Response, []byte, error) {
	target := s.objectURL(key, query)
	var (
		resp     *http.Response
		respBody []byte
	)
	policy := retry.Policy{Attempts: s.attempts, Base: s.backoff}
	err := policy.Do(ctx, fmt.Sprintf("s3: %s %s", method, key), func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, method, target, bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		for k, vs := range header {
			req.Header[k] = vs
		}
		if body != nil {
			req.ContentLength = int64(len(body))
		}
		if s.access != "" {
			signV4(req, sha256Of(body), s.access, s.secret, s.session, s.region, time.Now().UTC())
		}
		r, err := s.client.Do(req)
		if err != nil {
			return err // transport failure: transient
		}
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return err // torn body: transient
		}
		if retryable(r.StatusCode) {
			return fmt.Errorf("%s (%s)", r.Status, firstLine(b))
		}
		resp, respBody = r, b
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// firstLine abbreviates an error body for messages.
func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// statusErr maps a non-2xx response to an error; 404 satisfies
// errors.Is(err, fs.ErrNotExist).
func (s *S3) statusErr(op, key string, resp *http.Response, body []byte) error {
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("s3: %s %s/%s%s: %w", op, s.bucket, s.prefix, key, fs.ErrNotExist)
	}
	return fmt.Errorf("s3: %s %s/%s%s: %s (%s)", op, s.bucket, s.prefix, key, resp.Status, firstLine(body))
}

func (s *S3) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	resp, body, err := s.do(ctx, http.MethodPut, key, nil, nil, data)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return s.statusErr("put", key, resp, body)
	}
	return nil
}

func (s *S3) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	resp, body, err := s.do(ctx, http.MethodGet, key, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, s.statusErr("get", key, resp, body)
	}
	return body, nil
}

func (s *S3) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("s3: negative offset %d for %s", off, key)
	}
	hdr := http.Header{}
	if n < 0 {
		hdr.Set("Range", fmt.Sprintf("bytes=%d-", off))
	} else {
		hdr.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
	}
	resp, body, err := s.do(ctx, http.MethodGet, key, nil, hdr, nil)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusPartialContent:
		if n >= 0 && int64(len(body)) != n {
			return nil, fmt.Errorf("s3: range [%d, %d) of %s returned %d bytes", off, off+n, key, len(body))
		}
		return body, nil
	case http.StatusOK:
		// The service ignored Range; slice locally.
		size := int64(len(body))
		if n < 0 {
			n = size - off
		}
		if off+n > size || n < 0 {
			return nil, fmt.Errorf("s3: range [%d, %d) exceeds %s (%d bytes)", off, off+n, key, size)
		}
		return body[off : off+n], nil
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, fmt.Errorf("s3: range [%d, +%d) exceeds %s", off, n, key)
	default:
		return nil, s.statusErr("getrange", key, resp, body)
	}
}

func (s *S3) Stat(ctx context.Context, key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	resp, body, err := s.do(ctx, http.MethodHead, key, nil, nil, nil)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, s.statusErr("stat", key, resp, body)
	}
	return strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
}

func (s *S3) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	resp, body, err := s.do(ctx, http.MethodDelete, key, nil, nil, nil)
	if err != nil {
		return err
	}
	// S3 DeleteObject is idempotent (204 even for absent keys); tolerate
	// stubs answering 200 or 404.
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent, http.StatusNotFound:
		return nil
	}
	return s.statusErr("delete", key, resp, body)
}

// listResult is the subset of ListObjectsV2's XML the store consumes.
type listResult struct {
	IsTruncated           bool   `xml:"IsTruncated"`
	NextContinuationToken string `xml:"NextContinuationToken"`
	Contents              []struct {
		Key  string `xml:"Key"`
		Size int64  `xml:"Size"`
	} `xml:"Contents"`
}

func (s *S3) List(ctx context.Context, prefix string) ([]string, error) {
	var keys []string
	token := ""
	for {
		q := url.Values{}
		q.Set("list-type", "2")
		q.Set("prefix", s.prefix+prefix)
		if token != "" {
			q.Set("continuation-token", token)
		}
		resp, body, err := s.do(ctx, http.MethodGet, "", q, nil, nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, s.statusErr("list", prefix, resp, body)
		}
		var res listResult
		if err := xml.Unmarshal(body, &res); err != nil {
			return nil, fmt.Errorf("s3: decoding list response: %v", err)
		}
		for _, c := range res.Contents {
			keys = append(keys, strings.TrimPrefix(c.Key, s.prefix))
		}
		if !res.IsTruncated || res.NextContinuationToken == "" {
			break
		}
		token = res.NextContinuationToken
	}
	sort.Strings(keys)
	return keys, nil
}
