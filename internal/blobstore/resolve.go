package blobstore

import (
	"context"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Schemes lists the store locations Resolve understands, for error
// messages and flag docs.
const Schemes = "file://PATH (or a bare path), mem://NAME[/PREFIX], s3://BUCKET[/PREFIX]?endpoint=URL&region=R, null://, faulty+URL?fault=P&fault-seed=N[&fault-ops=put,get,...]"

// Resolve opens the store a location names:
//
//	/var/archives            local filesystem (bare paths keep working)
//	file:///var/archives     local filesystem, explicit
//	mem://crawl1/eos         in-process memory store "crawl1", keys under eos/
//	s3://bucket/prefix       S3-compatible service (endpoint=, region= in query)
//	null://                  discard sink
//
// Resolving the same mem:// name twice in one process yields the same
// namespace, so a writer and a later reader see each other's objects.
func Resolve(rawurl string) (Store, error) {
	if inner, ok := strings.CutPrefix(rawurl, "faulty+"); ok {
		return resolveFaulty(inner)
	}
	scheme, rest, ok := strings.Cut(rawurl, "://")
	if !ok {
		if rawurl == "" {
			return nil, fmt.Errorf("blobstore: empty store location")
		}
		return NewFile(rawurl), nil
	}
	switch scheme {
	case "file":
		if rest == "" {
			return nil, fmt.Errorf("blobstore: file:// needs a path")
		}
		return NewFile(rest), nil
	case "mem":
		name, prefix, _ := strings.Cut(rest, "/")
		if name == "" {
			return nil, fmt.Errorf("blobstore: mem:// needs a name (mem://NAME[/PREFIX])")
		}
		st := OpenMemory(name)
		if prefix = strings.Trim(prefix, "/"); prefix != "" {
			return &prefixed{base: st, prefix: prefix + "/", url: "mem://" + name + "/" + prefix}, nil
		}
		return st, nil
	case "s3":
		return newS3(rawurl)
	case "null":
		return NewNull(), nil
	default:
		return nil, fmt.Errorf("blobstore: unsupported scheme %s:// in %s (supported: %s)", scheme, rawurl, Schemes)
	}
}

// resolveFaulty opens the store named by inner (a normal Resolve
// location) and wraps it in a chaos-armed Faulty. The fault parameters
// ride in the query string and are stripped before the inner store sees
// it, so they compose with backends that take query parameters of their
// own (s3's endpoint= and region=):
//
//	faulty+mem://chaos?fault=0.05&fault-seed=7
//	faulty+file:///data/shards?fault=0.1&fault-seed=3&fault-ops=put,get
//	faulty+s3://bucket?endpoint=http://stub:9000&fault=0.02&fault-seed=1
//
// fault is the per-op failure probability (required, 0 < P ≤ 1),
// fault-seed the deterministic seed (default 1), fault-ops the comma-
// separated ops to fault (default: every op). The chaos-run driver uses
// these URLs to hand workers a flaky store through an ordinary -store
// flag.
func resolveFaulty(inner string) (Store, error) {
	base, query, _ := strings.Cut(inner, "?")
	q, err := url.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("blobstore: faulty+%s: parsing query: %v", inner, err)
	}
	rawP := q.Get("fault")
	if rawP == "" {
		return nil, fmt.Errorf("blobstore: faulty+%s needs fault=P (0 < P <= 1)", inner)
	}
	p, err := strconv.ParseFloat(rawP, 64)
	if err != nil || p <= 0 || p > 1 {
		return nil, fmt.Errorf("blobstore: faulty+%s: fault=%q is not a probability in (0, 1]", inner, rawP)
	}
	seed := int64(1)
	if rawSeed := q.Get("fault-seed"); rawSeed != "" {
		seed, err = strconv.ParseInt(rawSeed, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("blobstore: faulty+%s: fault-seed=%q is not an integer", inner, rawSeed)
		}
	}
	var ops []string
	if rawOps := q.Get("fault-ops"); rawOps != "" {
		for _, op := range strings.Split(rawOps, ",") {
			op = strings.TrimSpace(op)
			switch op {
			case OpPut, OpGet, OpGetRange, OpList, OpStat, OpDelete:
				ops = append(ops, op)
			default:
				return nil, fmt.Errorf("blobstore: faulty+%s: unknown op %q in fault-ops", inner, op)
			}
		}
	}
	q.Del("fault")
	q.Del("fault-seed")
	q.Del("fault-ops")
	if len(q) > 0 {
		base += "?" + q.Encode()
	}
	st, err := Resolve(base)
	if err != nil {
		return nil, err
	}
	f := NewFaulty(st)
	f.Chaos(seed, p, ops...)
	return f, nil
}

// prefixed scopes a store to a key prefix; mem://NAME/PREFIX resolves to
// one (the S3 backend carries its prefix natively).
type prefixed struct {
	base   Store
	prefix string // slash-terminated
	url    string
}

func (p *prefixed) URL() string { return p.url }

func (p *prefixed) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	return p.base.Put(ctx, p.prefix+key, data)
}

func (p *prefixed) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	return p.base.Get(ctx, p.prefix+key)
}

func (p *prefixed) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	return p.base.GetRange(ctx, p.prefix+key, off, n)
}

func (p *prefixed) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := p.base.List(ctx, p.prefix+prefix)
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if strings.HasPrefix(k, p.prefix) {
			out = append(out, strings.TrimPrefix(k, p.prefix))
		}
	}
	return out, nil
}

func (p *prefixed) Stat(ctx context.Context, key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	return p.base.Stat(ctx, p.prefix+key)
}

func (p *prefixed) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	return p.base.Delete(ctx, p.prefix+key)
}
