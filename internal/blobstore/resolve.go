package blobstore

import (
	"context"
	"fmt"
	"strings"
)

// Schemes lists the store locations Resolve understands, for error
// messages and flag docs.
const Schemes = "file://PATH (or a bare path), mem://NAME[/PREFIX], s3://BUCKET[/PREFIX]?endpoint=URL&region=R, null://"

// Resolve opens the store a location names:
//
//	/var/archives            local filesystem (bare paths keep working)
//	file:///var/archives     local filesystem, explicit
//	mem://crawl1/eos         in-process memory store "crawl1", keys under eos/
//	s3://bucket/prefix       S3-compatible service (endpoint=, region= in query)
//	null://                  discard sink
//
// Resolving the same mem:// name twice in one process yields the same
// namespace, so a writer and a later reader see each other's objects.
func Resolve(rawurl string) (Store, error) {
	scheme, rest, ok := strings.Cut(rawurl, "://")
	if !ok {
		if rawurl == "" {
			return nil, fmt.Errorf("blobstore: empty store location")
		}
		return NewFile(rawurl), nil
	}
	switch scheme {
	case "file":
		if rest == "" {
			return nil, fmt.Errorf("blobstore: file:// needs a path")
		}
		return NewFile(rest), nil
	case "mem":
		name, prefix, _ := strings.Cut(rest, "/")
		if name == "" {
			return nil, fmt.Errorf("blobstore: mem:// needs a name (mem://NAME[/PREFIX])")
		}
		st := OpenMemory(name)
		if prefix = strings.Trim(prefix, "/"); prefix != "" {
			return &prefixed{base: st, prefix: prefix + "/", url: "mem://" + name + "/" + prefix}, nil
		}
		return st, nil
	case "s3":
		return newS3(rawurl)
	case "null":
		return NewNull(), nil
	default:
		return nil, fmt.Errorf("blobstore: unsupported scheme %s:// in %s (supported: %s)", scheme, rawurl, Schemes)
	}
}

// prefixed scopes a store to a key prefix; mem://NAME/PREFIX resolves to
// one (the S3 backend carries its prefix natively).
type prefixed struct {
	base   Store
	prefix string // slash-terminated
	url    string
}

func (p *prefixed) URL() string { return p.url }

func (p *prefixed) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	return p.base.Put(ctx, p.prefix+key, data)
}

func (p *prefixed) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	return p.base.Get(ctx, p.prefix+key)
}

func (p *prefixed) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	return p.base.GetRange(ctx, p.prefix+key, off, n)
}

func (p *prefixed) List(ctx context.Context, prefix string) ([]string, error) {
	keys, err := p.base.List(ctx, p.prefix+prefix)
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		if strings.HasPrefix(k, p.prefix) {
			out = append(out, strings.TrimPrefix(k, p.prefix))
		}
	}
	return out, nil
}

func (p *prefixed) Stat(ctx context.Context, key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	return p.base.Stat(ctx, p.prefix+key)
}

func (p *prefixed) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	return p.base.Delete(ctx, p.prefix+key)
}
