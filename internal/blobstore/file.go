package blobstore

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is the local-filesystem backend: keys map to files under a root
// directory. Put preserves the durability semantics the archive Writer
// established on one machine — write to a .tmp sibling, fsync, rename
// into place, fsync the directory — so a crash mid-Put never publishes a
// torn object and loses nothing already published.
type File struct {
	root string
}

// NewFile opens (lazily — the directory is created on first Put) a file
// store rooted at root.
func NewFile(root string) *File { return &File{root: root} }

// URL returns the store's file:// location.
func (f *File) URL() string { return "file://" + f.root }

// path maps a key onto the root.
func (f *File) path(key string) string {
	return filepath.Join(f.root, filepath.FromSlash(key))
}

// Put implements Store with tmp + fsync + rename + dir-fsync atomicity.
func (f *File) Put(ctx context.Context, key string, data []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	dst := f.path(key)
	dir := filepath.Dir(dst)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Unique tmp per Put: concurrent writers to one key must not stomp a
	// shared scratch file between each other's write and rename.
	tmp, err := os.CreateTemp(dir, filepath.Base(dst)+".*.tmp")
	if err != nil {
		return err
	}
	// CreateTemp's 0600 would make archives unreadable to other users.
	_ = tmp.Chmod(0o644)
	if err := writeSyncClose(tmp, data); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

func (f *File) Get(ctx context.Context, key string) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return os.ReadFile(f.path(key))
}

func (f *File) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := validKey(key); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if off < 0 {
		return nil, fmt.Errorf("blobstore: negative offset %d for %s", off, key)
	}
	fh, err := os.Open(f.path(key))
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if n < 0 {
		n = size - off
	}
	if off+n > size || n < 0 {
		return nil, fmt.Errorf("blobstore: range [%d, %d) exceeds %s (%d bytes)", off, off+n, key, size)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(io.NewSectionReader(fh, off, n), buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// List walks the root, returning published keys (in-flight .tmp files are
// invisible, exactly as un-renamed segments always were) sorted. A root
// that does not exist reports fs.ErrNotExist.
func (f *File) List(ctx context.Context, prefix string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var keys []string
	err := filepath.WalkDir(f.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(f.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}

func (f *File) Stat(ctx context.Context, key string) (int64, error) {
	if err := validKey(key); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	st, err := os.Stat(f.path(key))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (f *File) Delete(ctx context.Context, key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := os.Remove(f.path(key)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Sweep removes stray .tmp files left by a crash mid-Put. They were never
// published (the rename never happened), so they are garbage; the archive
// Writer calls this on open, matching its historical stray-segment sweep.
func (f *File) Sweep() error {
	err := filepath.WalkDir(f.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			return os.Remove(path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// writeSyncClose writes data to an open file and fsyncs it before closing.
func writeSyncClose(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames into it are durable. Directory
// fsync support varies by platform and the rename is atomic regardless, so
// a failed sync on an opened directory is not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
