package blobstore

import (
	"context"
	"sync"
	"time"
)

// Faulty wraps any Store with injectable failures and latency, so tests
// can drive the archive's error paths — a Put that dies mid-crawl, a
// segment fetch that flakes during replay — against every backend without
// touching a real network or filesystem.
type Faulty struct {
	base Store

	mu    sync.Mutex
	errs  map[string]*fault
	delay time.Duration
	calls map[string]int64
}

// fault is one armed failure: fire err on every call once `after` more
// successful calls have passed, `times` times (times < 0 = forever).
type fault struct {
	err   error
	after int
	times int
}

// NewFaulty wraps base.
func NewFaulty(base Store) *Faulty {
	return &Faulty{base: base, errs: make(map[string]*fault), calls: make(map[string]int64)}
}

// Break arms op (an Op* constant) to fail with err on every call until
// Clear. Break(op, nil) clears it.
func (f *Faulty) Break(op string, err error) { f.BreakAfter(op, 0, -1, err) }

// BreakAfter arms op to succeed `after` more times, then fail with err
// `times` times (times < 0 = forever), then recover.
func (f *Faulty) BreakAfter(op string, after, times int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.errs, op)
		return
	}
	f.errs[op] = &fault{err: err, after: after, times: times}
}

// Clear disarms every fault and zeroes the delay.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errs = make(map[string]*fault)
	f.delay = 0
}

// Delay makes every operation sleep d before running (0 disables).
func (f *Faulty) Delay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Calls reports how many times op has been invoked (including faulted
// calls).
func (f *Faulty) Calls(op string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// check counts the call, applies any delay, and returns the armed error
// if the fault fires.
func (f *Faulty) check(op string) error {
	f.mu.Lock()
	f.calls[op]++
	d := f.delay
	var err error
	if ft, ok := f.errs[op]; ok {
		if ft.after > 0 {
			ft.after--
		} else if ft.times != 0 {
			if ft.times > 0 {
				ft.times--
			}
			err = ft.err
		}
	}
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

func (f *Faulty) URL() string { return f.base.URL() }

func (f *Faulty) Put(ctx context.Context, key string, data []byte) error {
	if err := f.check(OpPut); err != nil {
		return err
	}
	return f.base.Put(ctx, key, data)
}

func (f *Faulty) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.check(OpGet); err != nil {
		return nil, err
	}
	return f.base.Get(ctx, key)
}

func (f *Faulty) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := f.check(OpGetRange); err != nil {
		return nil, err
	}
	return f.base.GetRange(ctx, key, off, n)
}

func (f *Faulty) List(ctx context.Context, prefix string) ([]string, error) {
	if err := f.check(OpList); err != nil {
		return nil, err
	}
	return f.base.List(ctx, prefix)
}

func (f *Faulty) Stat(ctx context.Context, key string) (int64, error) {
	if err := f.check(OpStat); err != nil {
		return 0, err
	}
	return f.base.Stat(ctx, key)
}

func (f *Faulty) Delete(ctx context.Context, key string) error {
	if err := f.check(OpDelete); err != nil {
		return err
	}
	return f.base.Delete(ctx, key)
}
