package blobstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the error chaos-mode faults fire with; chaos harnesses
// assert errors.Is(err, ErrInjected) to tell injected failures from real
// ones, and retry classification treats it like any transient fault.
var ErrInjected = errors.New("blobstore: injected fault")

// OpRecord is one entry in a Faulty op-log: the operation, the key it
// addressed (the prefix, for list), and the injected error if the call
// was faulted (nil means it passed through to the base store).
type OpRecord struct {
	Op  string
	Key string
	Err error
}

// Faulty wraps any Store with injectable failures and latency, so tests
// can drive the archive's error paths — a Put that dies mid-crawl, a
// segment fetch that flakes during replay — against every backend without
// touching a real network or filesystem. Faults come in two flavours:
// deterministic armed faults (Break/BreakAfter: the Nth call fails) and
// seeded-random chaos (Chaos: each call fails with probability p, the
// sequence reproducible from the seed). Every call is appended to an
// op-log for post-mortem assertions.
type Faulty struct {
	base Store

	mu    sync.Mutex
	errs  map[string]*fault
	delay time.Duration
	calls map[string]int64

	chaosRand *rand.Rand
	chaosP    float64
	chaosOps  map[string]bool // nil = every op

	log []OpRecord
}

// fault is one armed failure: fire err on every call once `after` more
// successful calls have passed, `times` times (times < 0 = forever).
type fault struct {
	err   error
	after int
	times int
}

// NewFaulty wraps base.
func NewFaulty(base Store) *Faulty {
	return &Faulty{base: base, errs: make(map[string]*fault), calls: make(map[string]int64)}
}

// Break arms op (an Op* constant) to fail with err on every call until
// Clear. Break(op, nil) clears it.
func (f *Faulty) Break(op string, err error) { f.BreakAfter(op, 0, -1, err) }

// BreakAfter arms op to succeed `after` more times, then fail with err
// `times` times (times < 0 = forever), then recover.
func (f *Faulty) BreakAfter(op string, after, times int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.errs, op)
		return
	}
	f.errs[op] = &fault{err: err, after: after, times: times}
}

// Chaos arms seeded-random fault injection: each listed op (every op when
// none are listed) fails with probability p per call, the error wrapping
// ErrInjected and naming the op and key. The failure sequence is a pure
// function of the seed and the order calls reach the store, so a
// single-goroutine run replays identically; concurrent runs stay
// reproducible in aggregate (same fault count for the same call count)
// even when scheduling reorders which call draws which number.
// Chaos(seed, 0) disarms.
func (f *Faulty) Chaos(seed int64, p float64, ops ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p <= 0 {
		f.chaosRand, f.chaosP, f.chaosOps = nil, 0, nil
		return
	}
	f.chaosRand = rand.New(rand.NewSource(seed))
	f.chaosP = p
	f.chaosOps = nil
	if len(ops) > 0 {
		f.chaosOps = make(map[string]bool, len(ops))
		for _, op := range ops {
			f.chaosOps[op] = true
		}
	}
}

// Log returns a copy of the op-log: every call since construction (or the
// last ResetLog), in arrival order, with the injected error when the call
// was faulted.
func (f *Faulty) Log() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]OpRecord, len(f.log))
	copy(out, f.log)
	return out
}

// ResetLog discards the op-log.
func (f *Faulty) ResetLog() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.log = nil
}

// Clear disarms every fault — armed and chaos — and zeroes the delay.
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errs = make(map[string]*fault)
	f.delay = 0
	f.chaosRand, f.chaosP, f.chaosOps = nil, 0, nil
}

// Delay makes every operation sleep d before running (0 disables).
func (f *Faulty) Delay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Calls reports how many times op has been invoked (including faulted
// calls).
func (f *Faulty) Calls(op string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[op]
}

// check counts the call, applies any delay, logs the op, and returns the
// armed or chaos-drawn error if a fault fires. Armed faults win over
// chaos, and a chaos draw happens only on calls no armed fault claimed,
// so BreakAfter schedules stay exact under chaos.
func (f *Faulty) check(op, key string) error {
	f.mu.Lock()
	f.calls[op]++
	d := f.delay
	var err error
	if ft, ok := f.errs[op]; ok {
		if ft.after > 0 {
			ft.after--
		} else if ft.times != 0 {
			if ft.times > 0 {
				ft.times--
			}
			err = ft.err
		}
	}
	if err == nil && f.chaosRand != nil && (f.chaosOps == nil || f.chaosOps[op]) {
		if f.chaosRand.Float64() < f.chaosP {
			err = fmt.Errorf("%w: %s %s", ErrInjected, op, key)
		}
	}
	f.log = append(f.log, OpRecord{Op: op, Key: key, Err: err})
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return err
}

func (f *Faulty) URL() string { return f.base.URL() }

func (f *Faulty) Put(ctx context.Context, key string, data []byte) error {
	if err := f.check(OpPut, key); err != nil {
		return err
	}
	return f.base.Put(ctx, key, data)
}

func (f *Faulty) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.check(OpGet, key); err != nil {
		return nil, err
	}
	return f.base.Get(ctx, key)
}

func (f *Faulty) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	if err := f.check(OpGetRange, key); err != nil {
		return nil, err
	}
	return f.base.GetRange(ctx, key, off, n)
}

func (f *Faulty) List(ctx context.Context, prefix string) ([]string, error) {
	if err := f.check(OpList, prefix); err != nil {
		return nil, err
	}
	return f.base.List(ctx, prefix)
}

func (f *Faulty) Stat(ctx context.Context, key string) (int64, error) {
	if err := f.check(OpStat, key); err != nil {
		return 0, err
	}
	return f.base.Stat(ctx, key)
}

func (f *Faulty) Delete(ctx context.Context, key string) error {
	if err := f.check(OpDelete, key); err != nil {
		return err
	}
	return f.base.Delete(ctx, key)
}
