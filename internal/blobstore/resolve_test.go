package blobstore_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blobstore"
)

func TestResolveSchemes(t *testing.T) {
	cases := []struct {
		in      string
		wantURL string
		wantErr string
	}{
		{in: "/var/archives", wantURL: "file:///var/archives"},
		{in: "file:///var/archives", wantURL: "file:///var/archives"},
		{in: "mem://crawl1", wantURL: "mem://crawl1"},
		{in: "mem://crawl1/eos", wantURL: "mem://crawl1/eos"},
		{in: "null://", wantURL: "null://"},
		{in: "s3://bucket/prefix?endpoint=http://localhost:9000", wantURL: "s3://bucket/prefix?endpoint=http://localhost:9000"},
		{in: "", wantErr: "empty store location"},
		{in: "file://", wantErr: "needs a path"},
		{in: "mem://", wantErr: "needs a name"},
		{in: "s3://", wantErr: "names no bucket"},
		{in: "gopher://hole", wantErr: "unsupported scheme"},
	}
	for _, c := range cases {
		st, err := blobstore.Resolve(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Resolve(%q): err %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Resolve(%q): %v", c.in, err)
			continue
		}
		if st.URL() != c.wantURL {
			t.Errorf("Resolve(%q).URL() = %q, want %q", c.in, st.URL(), c.wantURL)
		}
	}
	// The unsupported-scheme error names the alternatives.
	_, err := blobstore.Resolve("gopher://hole")
	if err == nil || !strings.Contains(err.Error(), "mem://") || !strings.Contains(err.Error(), "s3://") {
		t.Errorf("unsupported-scheme error should list schemes: %v", err)
	}
}

// TestResolveMemorySharing: the same mem:// name is the same namespace;
// a prefix scopes keys but shares the underlying store and counters.
func TestResolveMemorySharing(t *testing.T) {
	ctx := context.Background()
	a, err := blobstore.Resolve("mem://shared-test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := blobstore.Resolve("mem://shared-test")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, err := b.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("second resolution sees different namespace: %q, %v", got, err)
	}

	// Prefixed view over the same store.
	p, err := blobstore.Resolve("mem://shared-test/sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Put(ctx, "inner", []byte("pv")); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Get(ctx, "sub/inner"); err != nil || string(got) != "pv" {
		t.Fatalf("prefixed write invisible at base: %q, %v", got, err)
	}
	keys, err := p.List(ctx, "")
	if err != nil || len(keys) != 1 || keys[0] != "inner" {
		t.Fatalf("prefixed List: %v, %v", keys, err)
	}
}

// TestResolveFaulty: faulty+URL wraps the inner store in seeded chaos,
// stripping the fault parameters before the inner backend parses its own.
func TestResolveFaulty(t *testing.T) {
	ctx := context.Background()
	st, err := blobstore.Resolve("faulty+mem://resolve-faulty-test?fault=1&fault-seed=3&fault-ops=get")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := st.(*blobstore.Faulty)
	if !ok {
		t.Fatalf("Resolve returned %T, want *Faulty", st)
	}
	// Only get is armed, at p=1: puts pass, every get fails injected.
	if err := f.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("Put under get-only chaos: %v", err)
	}
	if _, err := f.Get(ctx, "k"); !errors.Is(err, blobstore.ErrInjected) {
		t.Fatalf("Get under p=1 chaos: %v", err)
	}
	// The write really landed on the shared inner namespace.
	inner, err := blobstore.Resolve("mem://resolve-faulty-test")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := inner.Get(ctx, "k"); err != nil || string(got) != "v" {
		t.Fatalf("inner store missing the faulty-wrapped write: %q, %v", got, err)
	}

	for _, c := range []struct{ in, wantErr string }{
		{"faulty+mem://x", "needs fault=P"},
		{"faulty+mem://x?fault=1.5", "not a probability"},
		{"faulty+mem://x?fault=zero", "not a probability"},
		{"faulty+mem://x?fault=0.5&fault-seed=pi", "not an integer"},
		{"faulty+mem://x?fault=0.5&fault-ops=teleport", "unknown op"},
		{"faulty+gopher://hole?fault=0.5", "unsupported scheme"},
	} {
		if _, err := blobstore.Resolve(c.in); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Resolve(%q): err %v, want containing %q", c.in, err, c.wantErr)
		}
	}
}

func TestJoin(t *testing.T) {
	cases := []struct{ base, elem, want string }{
		{"/var/archives", "eos", filepath.Join("/var/archives", "eos")},
		{"file:///var/archives", "eos", "file:///var/archives/eos"},
		{"file:///var/archives/", "eos", "file:///var/archives/eos"},
		{"mem://crawl1", "eos", "mem://crawl1/eos"},
		{"s3://bkt/pre?endpoint=http://h:9", "eos", "s3://bkt/pre/eos?endpoint=http://h:9"},
		{"null://", "eos", "null://eos"},
	}
	for _, c := range cases {
		if got := blobstore.Join(c.base, c.elem); got != c.want {
			t.Errorf("Join(%q, %q) = %q, want %q", c.base, c.elem, got, c.want)
		}
	}
	if got := blobstore.Join("s3://bkt?endpoint=e", "a", "b"); got != "s3://bkt/a/b?endpoint=e" {
		t.Errorf("multi-elem Join: %q", got)
	}
}
