package retry

import (
	"context"
	"testing"
)

// BenchmarkRetryDo measures the policy's overhead on the path that
// matters: an operation that succeeds first try. Every retried blob-store
// and fetch call in the tree pays this per invocation.
func BenchmarkRetryDo(b *testing.B) {
	p := Policy{Attempts: 4}
	ctx := context.Background()
	fn := func(context.Context) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Do(ctx, "bench", fn); err != nil {
			b.Fatal(err)
		}
	}
}
