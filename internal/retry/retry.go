// Package retry is the one spelling of "try again" in the repo: a
// context-aware retry policy with exponential backoff, full jitter, an
// optional per-attempt timeout and bounded attempts, plus the
// transient-vs-permanent error classification the callers share.
//
// Before this package existed the S3 blob-store client, the crawler's
// per-block fetch loop and its head resolution each hand-rolled the same
// loop with subtly different semantics (one jittered, two did not; one
// honoured Retry-After, two did not; all three classified errors ad hoc).
// They now all run on Policy.Do, as does the shard coordinator's
// worker-relaunch loop (internal/coord), so the classification rules and
// the jitter math are written once and unit-tested once.
//
// Classification contract:
//
//   - An error wrapped by Permanent — or any error for which the policy's
//     Retryable func returns false — fails immediately, with no further
//     attempts. The default classifier treats context cancellation,
//     deadline expiry and fs.ErrNotExist as permanent and everything else
//     as transient (a blob store's 404 will never heal by retrying; its
//     500 very often does).
//   - An error implementing AfterHinter (e.g. a rate-limit response
//     carrying Retry-After) raises the next delay to at least its hint,
//     so a polite throttle is never hammered on the policy's own shorter
//     schedule.
//   - Context cancellation always wins: between attempts the backoff
//     sleep aborts immediately, and the returned error satisfies
//     errors.Is(err, ctx.Err()) while still naming the last real failure.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"time"
)

// Policy bounds and paces one class of retryable operation. The zero
// value is usable: 4 attempts, 50 ms base backoff, default
// classification. Policies are value types; deriving one from another is
// plain struct copying.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (default 4; values < 1 mean the default).
	Attempts int
	// Base is the backoff before the second attempt (default 50 ms). The
	// un-jittered backoff doubles each further attempt.
	Base time.Duration
	// Cap, when > 0, bounds the un-jittered backoff however many
	// attempts have failed.
	Cap time.Duration
	// PerAttempt, when > 0, wraps each attempt's context with its own
	// deadline, so one hung call cannot eat the whole retry budget. The
	// expiry of a per-attempt deadline is classified transient (the next
	// attempt gets a fresh one) unless the parent context expired too.
	PerAttempt time.Duration
	// Retryable classifies errors: return false to fail immediately
	// (permanent), true to keep trying. Nil means DefaultRetryable.
	// Errors wrapped by Permanent are final regardless of Retryable.
	Retryable func(error) bool
	// OnRetry, when set, observes every scheduled retry: the attempt that
	// just failed (1-based), the error, and the delay before the next
	// attempt. Callers use it for retry counters and diagnostics.
	OnRetry func(attempt int, err error, delay time.Duration)
	// Rand supplies jitter; nil uses the package-level locked source.
	// Tests inject a seeded *rand.Rand for deterministic schedules.
	Rand *rand.Rand
}

const (
	defaultAttempts = 4
	defaultBase     = 50 * time.Millisecond
)

// AfterHinter is implemented by errors that carry the server's own
// pacing hint (a Retry-After header, a rate-limit window). When the hint
// exceeds the policy's computed delay, the hint wins.
type AfterHinter interface {
	RetryAfter() time.Duration
}

// permanentError marks its wrapped error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as final: Policy.Do returns it without further
// attempts. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked by
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// DefaultRetryable is the classification Do applies when
// Policy.Retryable is nil: context cancellation and deadline expiry are
// permanent (the caller is gone), fs.ErrNotExist is permanent (absence
// does not heal), Permanent-marked errors are permanent, and everything
// else — transport resets, 5xx-mapped errors, injected chaos faults —
// is transient.
func DefaultRetryable(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, fs.ErrNotExist),
		IsPermanent(err):
		return false
	}
	return true
}

// ErrAttemptTimeout marks an attempt that hit the policy's PerAttempt
// deadline while the caller's own context was still live. It is a plain
// transient error — deliberately NOT unwrapping to
// context.DeadlineExceeded, which the default classification would read
// as the caller being gone — so the next attempt runs under a fresh
// deadline.
var ErrAttemptTimeout = errors.New("retry: attempt timed out")

// ExhaustedError reports that every attempt failed with a retryable
// error. It unwraps to the last attempt's error, so errors.Is/As reach
// through it.
type ExhaustedError struct {
	// Op names the operation for the message ("s3: GET key", "shard 2/3").
	Op string
	// Attempts is how many tries were made.
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *ExhaustedError) Error() string {
	if e.Op == "" {
		return fmt.Sprintf("giving up after %d attempts: %v", e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s: giving up after %d attempts: %v", e.Op, e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// jitterMu guards the package-level jitter source; policies without
// their own Rand share it.
var (
	jitterMu  sync.Mutex
	jitterSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// Delay computes the backoff before attempt+1 (attempt is 1-based: pass
// 1 after the first failure): the doubled, capped base with full jitter,
// landing anywhere in [base/2, 3·base/2). Exposed so callers that cannot
// run under Do (e.g. loops owning their own select) still pace
// identically.
func (p Policy) Delay(attempt int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = defaultBase
	}
	for i := 1; i < attempt; i++ {
		base *= 2
		if p.Cap > 0 && base >= p.Cap {
			base = p.Cap
			break
		}
	}
	if p.Cap > 0 && base > p.Cap {
		base = p.Cap
	}
	var j int64
	if p.Rand != nil {
		j = p.Rand.Int63n(int64(base))
	} else {
		jitterMu.Lock()
		j = jitterSrc.Int63n(int64(base))
		jitterMu.Unlock()
	}
	return time.Duration(j) + base/2
}

// Do runs fn under the policy: up to Attempts tries, backoff with full
// jitter between them, immediate failure on permanent errors, context
// cancellation honoured both during attempts and during backoff sleeps.
// op names the operation in the terminal errors ("s3: GET key"); an
// empty op leaves the wrapped errors bare.
//
// The terminal error is one of:
//   - nil — some attempt succeeded;
//   - the attempt's own error — it was classified permanent;
//   - *ExhaustedError wrapping the last error — attempts ran out;
//   - an error satisfying errors.Is(err, ctx.Err()) naming the last
//     attempt error — the caller's context ended first.
func (p Policy) Do(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = defaultAttempts
	}
	retryable := p.Retryable
	if retryable == nil {
		retryable = DefaultRetryable
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return ctxError(op, err, lastErr)
		}
		lastErr = p.attempt(ctx, fn)
		if lastErr == nil {
			return nil
		}
		// The parent context ending is terminal whatever the classifier
		// says; a per-attempt deadline alone is not (the next attempt
		// gets a fresh one).
		if ctx.Err() != nil {
			return ctxError(op, ctx.Err(), lastErr)
		}
		if !retryable(lastErr) || IsPermanent(lastErr) {
			return lastErr
		}
		if attempt >= attempts {
			return &ExhaustedError{Op: op, Attempts: attempts, Err: lastErr}
		}
		delay := p.Delay(attempt)
		var hinter AfterHinter
		if errors.As(lastErr, &hinter) {
			if hint := hinter.RetryAfter(); hint > delay {
				delay = hint
			}
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, lastErr, delay)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctxError(op, ctx.Err(), lastErr)
		case <-t.C:
		}
	}
}

// attempt runs fn once under the per-attempt deadline, if any. An error
// attributable to that deadline (it fired; the parent is still live) is
// relabelled ErrAttemptTimeout so classification keeps it transient.
func (p Policy) attempt(ctx context.Context, fn func(ctx context.Context) error) error {
	if p.PerAttempt <= 0 {
		return fn(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.PerAttempt)
	defer cancel()
	err := fn(actx)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		return fmt.Errorf("%w after %v: %v", ErrAttemptTimeout, p.PerAttempt, err)
	}
	return err
}

// ctxError formats a context-terminated retry: errors.Is finds ctxErr,
// and the last real failure (if any) stays visible in the message.
func ctxError(op string, ctxErr, lastErr error) error {
	switch {
	case lastErr == nil && op == "":
		return ctxErr
	case lastErr == nil:
		return fmt.Errorf("%s: %w", op, ctxErr)
	case op == "":
		return fmt.Errorf("%w (last error: %v)", ctxErr, lastErr)
	}
	return fmt.Errorf("%s: %w (last error: %v)", op, ctxErr, lastErr)
}
