package retry

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"testing"
	"time"
)

// fastPolicy keeps test sleeps in the microsecond range.
func fastPolicy() Policy {
	return Policy{Attempts: 4, Base: 10 * time.Microsecond, Rand: rand.New(rand.NewSource(1))}
}

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p := fastPolicy()
	calls := 0
	err := p.Do(context.Background(), "op", func(context.Context) error {
		if calls++; calls < 3 {
			return errors.New("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := fastPolicy()
	calls := 0
	base := errors.New("still broken")
	err := p.Do(context.Background(), "fetch block 7", func(context.Context) error {
		calls++
		return base
	})
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("error %v, want *ExhaustedError", err)
	}
	if ex.Attempts != 4 || ex.Op != "fetch block 7" {
		t.Errorf("ExhaustedError = %+v", ex)
	}
	if !errors.Is(err, base) {
		t.Errorf("exhausted error does not unwrap to the last failure: %v", err)
	}
	if want := "fetch block 7: giving up after 4 attempts: still broken"; err.Error() != want {
		t.Errorf("message %q, want %q", err.Error(), want)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := fastPolicy()
	calls := 0
	perm := Permanent(errors.New("bad request"))
	err := p.Do(context.Background(), "op", func(context.Context) error {
		calls++
		return perm
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, perm) || !IsPermanent(err) {
		t.Fatalf("error = %v, want the permanent error back", err)
	}
}

func TestDefaultRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{errors.New("transport reset"), true},
		{fmt.Errorf("wrapped: %w", errors.New("x")), true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("get: %w", fs.ErrNotExist), false},
		{Permanent(errors.New("403")), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := DefaultRetryable(c.err); got != c.want {
			t.Errorf("DefaultRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestDoCustomClassifier(t *testing.T) {
	p := fastPolicy()
	p.Retryable = func(err error) bool { return err.Error() == "again" }
	calls := 0
	err := p.Do(context.Background(), "", func(context.Context) error {
		calls++
		if calls == 1 {
			return errors.New("again")
		}
		return errors.New("fatal")
	})
	if calls != 2 || err == nil || err.Error() != "fatal" {
		t.Fatalf("calls=%d err=%v, want 2 calls ending on the permanent error", calls, err)
	}
}

func TestDoCancelDuringBackoff(t *testing.T) {
	p := fastPolicy()
	p.Base = 10 * time.Second // force a long sleep after the first failure
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, "get k", func(context.Context) error { return errors.New("boom") })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error %v, want context.Canceled", err)
		}
		// The last real failure must stay visible for diagnosis.
		if got := err.Error(); got != "get k: context canceled (last error: boom)" {
			t.Errorf("message %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do ignored cancellation during backoff")
	}
}

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := fastPolicy().Do(ctx, "", func(context.Context) error { calls++; return nil })
	if calls != 0 {
		t.Fatalf("cancelled context still attempted: %d calls", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}

func TestDoPerAttemptTimeoutIsTransient(t *testing.T) {
	p := fastPolicy()
	p.PerAttempt = 5 * time.Millisecond
	calls := 0
	err := p.Do(context.Background(), "slow", func(ctx context.Context) error {
		calls++
		if calls < 2 {
			<-ctx.Done() // hang until the per-attempt deadline fires
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v (a per-attempt timeout must not kill the whole budget)", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestDoParentDeadlineIsTerminal(t *testing.T) {
	p := fastPolicy()
	p.PerAttempt = time.Minute
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	calls := 0
	err := p.Do(ctx, "", func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (parent deadline must stop the loop)", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
}

// hintedError carries a server pacing hint.
type hintedError struct{ after time.Duration }

func (e hintedError) Error() string             { return "rate limited" }
func (e hintedError) RetryAfter() time.Duration { return e.after }

func TestDoHonoursRetryAfterHint(t *testing.T) {
	p := fastPolicy()
	var delays []time.Duration
	p.OnRetry = func(_ int, _ error, d time.Duration) { delays = append(delays, d) }
	calls := 0
	err := p.Do(context.Background(), "", func(context.Context) error {
		if calls++; calls == 1 {
			return hintedError{after: 30 * time.Millisecond}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] < 30*time.Millisecond {
		t.Fatalf("delays = %v, want the 30ms Retry-After hint to win over the µs backoff", delays)
	}
}

func TestDelayDoublesWithJitterAndCap(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: 400 * time.Millisecond, Rand: rand.New(rand.NewSource(42))}
	for attempt, base := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 400 * time.Millisecond, // capped
		9: 400 * time.Millisecond, // stays capped, no overflow from repeated doubling
	} {
		for i := 0; i < 100; i++ {
			d := p.Delay(attempt)
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("Delay(%d) = %v outside [%v, %v)", attempt, d, base/2, base+base/2)
			}
		}
	}
}

func TestDelayDeterministicWithSeededRand(t *testing.T) {
	a := Policy{Base: time.Second, Rand: rand.New(rand.NewSource(7))}
	b := Policy{Base: time.Second, Rand: rand.New(rand.NewSource(7))}
	for i := 1; i <= 8; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("Delay(%d): %v vs %v — same seed must give the same schedule", i, da, db)
		}
	}
}

func TestOnRetryObservesEveryRetry(t *testing.T) {
	p := fastPolicy()
	var attempts []int
	p.OnRetry = func(attempt int, err error, _ time.Duration) { attempts = append(attempts, attempt) }
	_ = p.Do(context.Background(), "", func(context.Context) error { return errors.New("x") })
	// 4 attempts = 3 scheduled retries, observed as attempts 1..3.
	if len(attempts) != 3 || attempts[0] != 1 || attempts[2] != 3 {
		t.Fatalf("OnRetry attempts = %v, want [1 2 3]", attempts)
	}
}

func TestPermanentNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error classified permanent")
	}
}
