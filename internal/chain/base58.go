package chain

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// base58 implements the Bitcoin-style base58check encoding used for Tezos
// (tz1…, KT1…) and, in a variant alphabet, XRP (r…) addresses. The simulators
// derive addresses deterministically from seeds, so round-trip fidelity is
// what matters here, not key management.

const btcAlphabet = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"

// XRP uses a permuted alphabet beginning with 'r'.
const xrpAlphabet = "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz"

var (
	errChecksum = errors.New("chain: base58check checksum mismatch")
	errAlphabet = errors.New("chain: invalid base58 character")
)

func b58Encode(input []byte, alphabet string) string {
	x := new(big.Int).SetBytes(input)
	base := big.NewInt(58)
	mod := new(big.Int)
	var out []byte
	for x.Sign() > 0 {
		x.DivMod(x, base, mod)
		out = append(out, alphabet[mod.Int64()])
	}
	// Leading zero bytes become leading "zero digit" characters.
	for _, b := range input {
		if b != 0 {
			break
		}
		out = append(out, alphabet[0])
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return string(out)
}

func b58Decode(s string, alphabet string) ([]byte, error) {
	idx := make(map[byte]int64, 58)
	for i := 0; i < len(alphabet); i++ {
		idx[alphabet[i]] = int64(i)
	}
	x := new(big.Int)
	base := big.NewInt(58)
	for i := 0; i < len(s); i++ {
		v, ok := idx[s[i]]
		if !ok {
			return nil, fmt.Errorf("%w: %q", errAlphabet, s[i])
		}
		x.Mul(x, base)
		x.Add(x, big.NewInt(v))
	}
	out := x.Bytes()
	// Restore leading zeros.
	for i := 0; i < len(s) && s[i] == alphabet[0]; i++ {
		out = append([]byte{0}, out...)
	}
	return out, nil
}

func checksum(payload []byte) []byte {
	h1 := sha256.Sum256(payload)
	h2 := sha256.Sum256(h1[:])
	return h2[:4]
}

// Base58Check encodes prefix||payload with a 4-byte double-SHA256 checksum
// using the Bitcoin alphabet (Tezos convention).
func Base58Check(prefix, payload []byte) string {
	full := append(append([]byte{}, prefix...), payload...)
	full = append(full, checksum(full)...)
	return b58Encode(full, btcAlphabet)
}

// DecodeBase58Check reverses Base58Check, returning the payload after
// stripping prefix and validating the checksum.
func DecodeBase58Check(s string, prefix []byte) ([]byte, error) {
	raw, err := b58Decode(s, btcAlphabet)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(prefix)+4 {
		return nil, fmt.Errorf("chain: base58check payload too short (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	if string(checksum(body)) != string(sum) {
		return nil, errChecksum
	}
	for i := range prefix {
		if body[i] != prefix[i] {
			return nil, fmt.Errorf("chain: base58check prefix mismatch")
		}
	}
	return body[len(prefix):], nil
}

// XRPBase58Check encodes payload with version byte 0 using the XRP alphabet,
// producing classic r… addresses.
func XRPBase58Check(payload []byte) string {
	full := append([]byte{0}, payload...)
	full = append(full, checksum(full)...)
	return b58Encode(full, xrpAlphabet)
}

// DecodeXRPBase58Check reverses XRPBase58Check.
func DecodeXRPBase58Check(s string) ([]byte, error) {
	raw, err := b58Decode(s, xrpAlphabet)
	if err != nil {
		return nil, err
	}
	if len(raw) < 5 {
		return nil, fmt.Errorf("chain: xrp address too short")
	}
	body, sum := raw[:len(raw)-4], raw[len(raw)-4:]
	if string(checksum(body)) != string(sum) {
		return nil, errChecksum
	}
	if body[0] != 0 {
		return nil, fmt.Errorf("chain: xrp address version %d != 0", body[0])
	}
	return body[1:], nil
}
