package chain

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

var tz1Prefix = []byte{6, 161, 159} // Tezos ed25519 public key hash prefix

func TestBase58CheckRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 20)
	s := Base58Check(tz1Prefix, payload)
	if !strings.HasPrefix(s, "tz1") {
		t.Fatalf("tz1 prefix bytes produced %q", s)
	}
	got, err := DecodeBase58Check(s, tz1Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %x vs %x", got, payload)
	}
}

func TestBase58CheckDetectsCorruption(t *testing.T) {
	s := Base58Check(tz1Prefix, bytes.Repeat([]byte{1}, 20))
	// Flip one character to another alphabet character.
	var corrupted string
	for i := len(s) - 1; i >= 0; i-- {
		repl := byte('2')
		if s[i] == repl {
			repl = '3'
		}
		corrupted = s[:i] + string(repl) + s[i+1:]
		break
	}
	if _, err := DecodeBase58Check(corrupted, tz1Prefix); err == nil {
		t.Fatal("corrupted base58check string decoded successfully")
	}
}

func TestXRPAddressShape(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 20)
	addr := XRPBase58Check(payload)
	if !strings.HasPrefix(addr, "r") {
		t.Fatalf("XRP address %q does not start with r", addr)
	}
	got, err := DecodeXRPBase58Check(addr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %x vs %x", got, payload)
	}
}

func TestXRPAddressRejectsBitcoinAlphabet(t *testing.T) {
	// 'l' is absent from the Bitcoin alphabet but present in XRP's; '0' and
	// 'O' are in neither.
	if _, err := DecodeXRPBase58Check("r0O"); err == nil {
		t.Fatal("decoded address containing illegal characters")
	}
}

func TestBase58LeadingZeros(t *testing.T) {
	payload := append([]byte{0, 0, 0}, 0x7f)
	s := b58Encode(payload, btcAlphabet)
	got, err := b58Decode(s, btcAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("leading zeros lost: %x vs %x", got, payload)
	}
}

func TestBase58CheckRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		s := Base58Check(tz1Prefix, payload)
		got, err := DecodeBase58Check(s, tz1Prefix)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXRPBase58RoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 64 {
			payload = payload[:64]
		}
		s := XRPBase58Check(payload)
		got, err := DecodeXRPBase58Check(s)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
