package chain

import (
	"fmt"
	"strconv"
	"strings"
)

// Asset is a fixed-point amount of a named token, mirroring the EOS asset
// representation ("1.0000 EOS" = Amount 10000, Precision 4, Symbol "EOS").
// XRP drops and Tezos mutez fit the same shape with precision 6.
type Asset struct {
	Amount    int64  // raw integer amount, scaled by 10^Precision
	Precision uint8  // number of decimal places
	Symbol    string // ticker, e.g. "EOS", "XTZ", "XRP", "EIDOS"
}

// NewAsset builds an Asset from a whole-unit float-free pair: units and the
// fractional raw remainder are combined as units*10^precision + frac.
func NewAsset(units int64, frac int64, precision uint8, symbol string) Asset {
	return Asset{Amount: units*pow10(precision) + frac, Precision: precision, Symbol: symbol}
}

func pow10(p uint8) int64 {
	n := int64(1)
	for i := uint8(0); i < p; i++ {
		n *= 10
	}
	return n
}

// EOSAsset returns an EOS-denominated asset with the canonical 4 decimals.
func EOSAsset(raw int64) Asset { return Asset{Amount: raw, Precision: 4, Symbol: "EOS"} }

// XTZAsset returns a Tezos asset denominated in mutez (6 decimals).
func XTZAsset(mutez int64) Asset { return Asset{Amount: mutez, Precision: 6, Symbol: "XTZ"} }

// XRPAsset returns an XRP asset denominated in drops (6 decimals).
func XRPAsset(drops int64) Asset { return Asset{Amount: drops, Precision: 6, Symbol: "XRP"} }

// Add returns a + b. It panics if symbols or precisions differ: adding
// unrelated tokens is always a programming error in the simulators.
func (a Asset) Add(b Asset) Asset {
	a.mustMatch(b)
	a.Amount += b.Amount
	return a
}

// Sub returns a - b, with the same compatibility rules as Add.
func (a Asset) Sub(b Asset) Asset {
	a.mustMatch(b)
	a.Amount -= b.Amount
	return a
}

// Neg returns the negation of a.
func (a Asset) Neg() Asset { a.Amount = -a.Amount; return a }

// IsNegative reports whether the amount is below zero.
func (a Asset) IsNegative() bool { return a.Amount < 0 }

// IsZero reports whether the amount is exactly zero.
func (a Asset) IsZero() bool { return a.Amount == 0 }

// Cmp returns -1, 0 or +1 comparing a to b (which must be compatible).
func (a Asset) Cmp(b Asset) int {
	a.mustMatch(b)
	switch {
	case a.Amount < b.Amount:
		return -1
	case a.Amount > b.Amount:
		return 1
	}
	return 0
}

// MulRat scales the amount by num/den using integer arithmetic, truncating
// toward zero. den must be positive.
func (a Asset) MulRat(num, den int64) Asset {
	if den <= 0 {
		panic("chain: MulRat with non-positive denominator")
	}
	a.Amount = a.Amount * num / den
	return a
}

// Float returns the amount in whole display units (e.g. 1.5 EOS).
func (a Asset) Float() float64 {
	return float64(a.Amount) / float64(pow10(a.Precision))
}

func (a Asset) mustMatch(b Asset) {
	if a.Symbol != b.Symbol || a.Precision != b.Precision {
		panic(fmt.Sprintf("chain: incompatible assets %s and %s", a, b))
	}
}

// String renders the asset in EOS style: "1.0000 EOS".
func (a Asset) String() string {
	scale := pow10(a.Precision)
	units := a.Amount / scale
	frac := a.Amount % scale
	sign := ""
	if a.Amount < 0 {
		sign, units, frac = "-", -units, -frac
		if a.Amount > -scale { // e.g. -0.5: units is 0, keep explicit sign
			units = 0
		}
	}
	if a.Precision == 0 {
		return fmt.Sprintf("%s%d %s", sign, units, a.Symbol)
	}
	return fmt.Sprintf("%s%d.%0*d %s", sign, units, a.Precision, frac, a.Symbol)
}

// ParseAsset parses the EOS-style rendering produced by String.
func ParseAsset(s string) (Asset, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return Asset{}, fmt.Errorf("chain: asset %q must be \"<amount> <symbol>\"", s)
	}
	num, sym := fields[0], fields[1]
	neg := strings.HasPrefix(num, "-")
	num = strings.TrimPrefix(num, "-")
	intPart := num
	fracPart := ""
	if i := strings.IndexByte(num, '.'); i >= 0 {
		intPart, fracPart = num[:i], num[i+1:]
	}
	if intPart == "" {
		intPart = "0"
	}
	units, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return Asset{}, fmt.Errorf("chain: bad asset integer part %q: %w", intPart, err)
	}
	precision := uint8(len(fracPart))
	var frac int64
	if fracPart != "" {
		frac, err = strconv.ParseInt(fracPart, 10, 64)
		if err != nil {
			return Asset{}, fmt.Errorf("chain: bad asset fraction %q: %w", fracPart, err)
		}
	}
	a := Asset{Amount: units*pow10(precision) + frac, Precision: precision, Symbol: sym}
	if neg {
		a.Amount = -a.Amount
	}
	return a, nil
}
