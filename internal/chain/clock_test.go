package chain

import (
	"testing"
	"time"
)

func TestClockTick(t *testing.T) {
	c := NewClock(ObservationStart, 500*time.Millisecond)
	if !c.Now().Equal(ObservationStart) {
		t.Fatalf("clock starts at %v", c.Now())
	}
	c.Tick()
	c.Tick()
	want := ObservationStart.Add(time.Second)
	if !c.Now().Equal(want) {
		t.Fatalf("after 2 ticks clock = %v, want %v", c.Now(), want)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(ObservationStart, time.Second)
	c.Advance(6 * time.Hour)
	if !c.Now().Equal(ObservationStart.Add(6 * time.Hour)) {
		t.Fatalf("advance landed at %v", c.Now())
	}
}

func TestClockRejectsBadSteps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-step clock did not panic")
		}
	}()
	NewClock(ObservationStart, 0)
}

func TestObservationWindowMatchesPaper(t *testing.T) {
	// The paper's window is Oct 1 — Dec 31 2019: 92 days.
	days := ObservationEnd.Sub(ObservationStart).Hours() / 24
	if days < 91.9 || days > 92.1 {
		t.Fatalf("observation window is %.2f days, want ~92", days)
	}
	if !EIDOSLaunch.After(ObservationStart) || !EIDOSLaunch.Before(ObservationEnd) {
		t.Fatal("EIDOS launch outside the observation window")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	g := NewRNG(1)
	f1 := g.Fork("alice")
	f2 := g.Fork("bob")
	same := 0
	for i := 0; i < 50; i++ {
		if f1.Int63() == f2.Int63() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("forked RNGs produced %d/50 identical draws", same)
	}
}

func TestWeightedPickDistribution(t *testing.T) {
	g := NewRNG(42)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[g.WeightedPick([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
	frac := float64(counts[2]) / 30000
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("weight-7 bucket got %.3f of draws, want ~0.7", frac)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	g := NewRNG(3)
	over := 0
	for i := 0; i < 10000; i++ {
		v := g.Pareto(1, 1.2)
		if v < 1 {
			t.Fatalf("Pareto draw %f below minimum", v)
		}
		if v > 100 {
			over++
		}
	}
	if over == 0 {
		t.Fatal("Pareto produced no tail draws above 100× minimum")
	}
}
