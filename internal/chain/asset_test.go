package chain

import (
	"testing"
	"testing/quick"
)

func TestAssetString(t *testing.T) {
	cases := []struct {
		asset Asset
		want  string
	}{
		{EOSAsset(10000), "1.0000 EOS"},
		{EOSAsset(1), "0.0001 EOS"},
		{EOSAsset(0), "0.0000 EOS"},
		{EOSAsset(-10000), "-1.0000 EOS"},
		{EOSAsset(-1), "-0.0001 EOS"},
		{XRPAsset(1_000_000), "1.000000 XRP"},
		{XTZAsset(10_000_000_000), "10000.000000 XTZ"},
		{Asset{Amount: 5, Precision: 0, Symbol: "VOTE"}, "5 VOTE"},
	}
	for _, c := range cases {
		if got := c.asset.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.asset, got, c.want)
		}
	}
}

func TestParseAsset(t *testing.T) {
	a, err := ParseAsset("1.0000 EOS")
	if err != nil {
		t.Fatal(err)
	}
	if a != EOSAsset(10000) {
		t.Fatalf("parsed %+v", a)
	}
	if _, err := ParseAsset("nonsense"); err == nil {
		t.Fatal("ParseAsset accepted garbage")
	}
	if _, err := ParseAsset("1.2.3 EOS"); err == nil {
		t.Fatal("ParseAsset accepted double dot")
	}
}

func TestAssetArithmetic(t *testing.T) {
	a := EOSAsset(10000)
	b := EOSAsset(2500)
	if got := a.Add(b); got.Amount != 12500 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got.Amount != 7500 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.MulRat(1, 10000); got.Amount != 1 {
		t.Fatalf("MulRat(1/10000) = %v", got) // the EIDOS 0.01% payout rule
	}
	if !a.Sub(EOSAsset(20000)).IsNegative() {
		t.Fatal("negative result not detected")
	}
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
}

func TestAssetIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("adding EOS to XRP did not panic")
		}
	}()
	EOSAsset(1).Add(XRPAsset(1))
}

func TestAssetStringRoundTripProperty(t *testing.T) {
	f := func(raw int64) bool {
		// Limit to the range the simulators use; String/Parse are not meant
		// for amounts that overflow display scaling.
		raw %= 1_000_000_000_000_000
		a := EOSAsset(raw)
		parsed, err := ParseAsset(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssetAddSubInverseProperty(t *testing.T) {
	f := func(x, y int64) bool {
		x %= 1 << 40
		y %= 1 << 40
		a, b := EOSAsset(x), EOSAsset(y)
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
