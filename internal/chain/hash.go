// Package chain provides primitives shared by the EOS, Tezos and XRP ledger
// simulators: content hashes, a simulated block clock, deterministic
// randomness, fixed-point asset arithmetic and base58 encoding.
package chain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Hash is a 32-byte content hash used for block and transaction identifiers
// on all three simulated chains.
type Hash [32]byte

// HashBytes returns the SHA-256 digest of data.
func HashBytes(data []byte) Hash {
	return Hash(sha256.Sum256(data))
}

// HashOf hashes the concatenation of the string representations of parts.
// It is a convenience for deriving deterministic identifiers from structured
// fields without defining a serialization for every type.
func HashOf(parts ...any) Hash {
	h := sha256.New()
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h.Write([]byte(v))
		case []byte:
			h.Write(v)
		case uint64:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		case int64:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		case int:
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		case uint32:
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], v)
			h.Write(buf[:])
		case Hash:
			h.Write(v[:])
		default:
			fmt.Fprintf(h, "%v", v)
		}
		h.Write([]byte{0}) // field separator so ("ab","c") != ("a","bc")
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// String returns the lowercase hex encoding of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 12 hex characters, enough for log readability.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

// IsZero reports whether the hash is all zero bytes.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes a 64-character hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 64 {
		return h, fmt.Errorf("chain: hash must be 64 hex chars, got %d", len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("chain: invalid hash %q: %w", s, err)
	}
	copy(h[:], b)
	return h, nil
}
