package chain

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHashBytesDeterministic(t *testing.T) {
	a := HashBytes([]byte("hello"))
	b := HashBytes([]byte("hello"))
	if a != b {
		t.Fatalf("same input hashed differently: %s vs %s", a, b)
	}
	c := HashBytes([]byte("hello!"))
	if a == c {
		t.Fatalf("different inputs collided: %s", a)
	}
}

func TestHashOfFieldSeparation(t *testing.T) {
	// The field separator must make ("ab","c") differ from ("a","bc").
	if HashOf("ab", "c") == HashOf("a", "bc") {
		t.Fatal("HashOf does not separate fields")
	}
	if HashOf("a", "b") == HashOf("a", "b", "") {
		t.Fatal("HashOf ignores trailing empty field")
	}
}

func TestHashOfMixedTypes(t *testing.T) {
	h1 := HashOf("block", uint64(42), int64(-1))
	h2 := HashOf("block", uint64(42), int64(-1))
	if h1 != h2 {
		t.Fatal("mixed-type HashOf not deterministic")
	}
	if HashOf("block", uint64(42)) == HashOf("block", uint64(43)) {
		t.Fatal("uint64 field not hashed")
	}
}

func TestHashStringRoundTrip(t *testing.T) {
	h := HashBytes([]byte("round trip"))
	parsed, err := ParseHash(h.String())
	if err != nil {
		t.Fatalf("ParseHash(%q): %v", h.String(), err)
	}
	if parsed != h {
		t.Fatalf("round trip mismatch: %s vs %s", parsed, h)
	}
}

func TestParseHashRejectsBadInput(t *testing.T) {
	cases := []string{"", "abcd", strings.Repeat("g", 64), strings.Repeat("a", 63)}
	for _, c := range cases {
		if _, err := ParseHash(c); err == nil {
			t.Errorf("ParseHash(%q) unexpectedly succeeded", c)
		}
	}
}

func TestHashShortAndZero(t *testing.T) {
	var z Hash
	if !z.IsZero() {
		t.Fatal("zero hash not reported as zero")
	}
	h := HashBytes([]byte("x"))
	if h.IsZero() {
		t.Fatal("non-zero hash reported zero")
	}
	if len(h.Short()) != 12 {
		t.Fatalf("Short() length = %d, want 12", len(h.Short()))
	}
	if !strings.HasPrefix(h.String(), h.Short()) {
		t.Fatal("Short() is not a prefix of String()")
	}
}

func TestHashRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		h := HashBytes(data)
		parsed, err := ParseHash(h.String())
		return err == nil && parsed == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
