package chain

import (
	"fmt"
	"time"
)

// ObservationStart and ObservationEnd bracket the paper's measurement window
// (October 1, 2019 through December 31, 2019, UTC).
var (
	ObservationStart = time.Date(2019, time.October, 1, 0, 0, 0, 0, time.UTC)
	ObservationEnd   = time.Date(2019, time.December, 31, 23, 59, 59, 0, time.UTC)
	// EIDOSLaunch is when the EIDOS airdrop started flooding EOS (Nov 1, 2019).
	EIDOSLaunch = time.Date(2019, time.November, 1, 0, 0, 0, 0, time.UTC)
)

// Clock is a simulated wall clock that blockchains advance one block interval
// at a time. It decouples the simulation from the host clock so that three
// months of ledger history can be generated deterministically in seconds.
type Clock struct {
	now  time.Time
	step time.Duration
}

// NewClock returns a clock positioned at start that advances by step.
func NewClock(start time.Time, step time.Duration) *Clock {
	if step <= 0 {
		panic(fmt.Sprintf("chain: non-positive clock step %v", step))
	}
	return &Clock{now: start, step: step}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Step returns the clock's block interval.
func (c *Clock) Step() time.Duration { return c.step }

// Tick advances the clock by one block interval and returns the new time.
func (c *Clock) Tick() time.Time {
	c.now = c.now.Add(c.step)
	return c.now
}

// Advance moves the clock forward by d (which must not be negative).
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic("chain: cannot advance clock backwards")
	}
	c.now = c.now.Add(d)
	return c.now
}
