package chain

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded math/rand source so that every simulation run is
// reproducible. All workload generators draw from an RNG derived from a
// top-level scenario seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator labeled by name. Forked
// generators let concurrent actors draw randomness without sharing state
// while preserving determinism of the whole run.
func (g *RNG) Fork(name string) *RNG {
	h := HashOf("rng-fork", name, g.r.Int63())
	seed := int64(h[0])<<56 | int64(h[1])<<48 | int64(h[2])<<40 | int64(h[3])<<32 |
		int64(h[4])<<24 | int64(h[5])<<16 | int64(h[6])<<8 | int64(h[7])
	return NewRNG(seed)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Int63n returns a uniform int64 in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1).
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Pareto returns a Pareto-distributed value with minimum xm and shape alpha.
// Heavy-tailed draws model the extreme skew of per-account activity that the
// paper observes (18 accounts producing half of all XRP traffic).
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Shuffle permutes the n elements indexed by swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](g *RNG, xs []T) T {
	return xs[g.Intn(len(xs))]
}

// WeightedPick returns an index in [0, len(weights)) chosen proportionally to
// weights. Zero or negative weights are treated as zero. It panics if the
// total weight is not positive.
func (g *RNG) WeightedPick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("chain: WeightedPick with non-positive total weight")
	}
	x := g.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
