package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepUntilCancelled blocks until ctx is done (or a generous deadline) and
// reports whether cancellation arrived.
func sleepUntilCancelled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	case <-time.After(5 * time.Second):
		return false
	}
}

func TestSchedulerRunsIndependentStagesConcurrently(t *testing.T) {
	var running, peak int32
	stage := func(name string) Stage {
		return Stage{Name: name, Run: func(ctx context.Context) (StageStats, error) {
			n := atomic.AddInt32(&running, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			atomic.AddInt32(&running, -1)
			return StageStats{}, nil
		}}
	}
	_, err := RunStages(context.Background(), []Stage{stage("a"), stage("b"), stage("c")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak)
	}
}

func TestSchedulerHonoursMaxParallel(t *testing.T) {
	var running, peak int32
	stage := func(name string) Stage {
		return Stage{Name: name, Run: func(ctx context.Context) (StageStats, error) {
			n := atomic.AddInt32(&running, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			atomic.AddInt32(&running, -1)
			return StageStats{}, nil
		}}
	}
	_, err := RunStages(context.Background(), []Stage{stage("a"), stage("b"), stage("c"), stage("d")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 1 {
		t.Fatalf("peak concurrency = %d, want 1 (sequential)", peak)
	}
}

func TestSchedulerDependencyOrdering(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(name string) Stage {
		return Stage{Name: name, Run: func(ctx context.Context) (StageStats, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return StageStats{}, nil
		}}
	}
	a := record("a")
	b := record("b")
	b.After = []string{"a"}
	c := record("c")
	c.After = []string{"b"}
	metrics, err := RunStages(context.Background(), []Stage{c, b, a}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("execution order %v, want [a b c]", order)
	}
	// Metrics keep registration order regardless of execution order.
	if metrics[0].Name != "c" || metrics[2].Name != "a" {
		t.Fatalf("metric order: %+v", metrics)
	}
}

func TestSchedulerGraphValidation(t *testing.T) {
	noop := func(ctx context.Context) (StageStats, error) { return StageStats{}, nil }
	for name, stages := range map[string][]Stage{
		"duplicate": {{Name: "x", Run: noop}, {Name: "x", Run: noop}},
		"unknown":   {{Name: "x", After: []string{"ghost"}, Run: noop}},
		"self":      {{Name: "x", After: []string{"x"}, Run: noop}},
		"unnamed":   {{Run: noop}},
		"norun":     {{Name: "x"}},
		"cycle":     {{Name: "a", After: []string{"b"}, Run: noop}, {Name: "b", After: []string{"a"}, Run: noop}},
	} {
		if _, err := RunStages(context.Background(), stages, 0); err == nil {
			t.Errorf("%s graph accepted", name)
		}
	}
}

// TestSchedulerFirstErrorCancelsInFlight injects a failing stage next to a
// long-running one: the failure must be captured as the run's error and the
// in-flight stage must see prompt context cancellation.
func TestSchedulerFirstErrorCancelsInFlight(t *testing.T) {
	boom := errors.New("stage exploded")
	var slowCancelled, skippedRan atomic.Bool
	stages := []Stage{
		{Name: "slow", Run: func(ctx context.Context) (StageStats, error) {
			slowCancelled.Store(sleepUntilCancelled(ctx))
			return StageStats{}, ctx.Err()
		}},
		{Name: "failing", Run: func(ctx context.Context) (StageStats, error) {
			time.Sleep(10 * time.Millisecond)
			return StageStats{}, boom
		}},
		{Name: "dependent", After: []string{"failing"}, Run: func(ctx context.Context) (StageStats, error) {
			skippedRan.Store(true)
			return StageStats{}, nil
		}},
	}
	start := time.Now()
	metrics, err := RunStages(context.Background(), stages, 0)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected stage error", err)
	}
	if !strings.Contains(err.Error(), "failing stage") {
		t.Errorf("error %q does not name the failing stage", err)
	}
	if !slowCancelled.Load() {
		t.Error("in-flight stage never saw cancellation")
	}
	if skippedRan.Load() {
		t.Error("dependent of the failing stage was started")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("error propagation took %s, want prompt cancellation", elapsed)
	}
	var found bool
	for _, m := range metrics {
		if m.Name == "dependent" {
			found = true
			if !m.Skipped {
				t.Error("dependent stage not marked skipped")
			}
		}
	}
	if !found {
		t.Fatalf("metrics missing dependent stage: %+v", metrics)
	}
}

// TestSchedulerParentCancellationStopsStages cancels the parent context and
// expects every in-flight stage to stop promptly.
func TestSchedulerParentCancellationStopsStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var cancelled int32
	stage := func(name string) Stage {
		return Stage{Name: name, Run: func(ctx context.Context) (StageStats, error) {
			if sleepUntilCancelled(ctx) {
				atomic.AddInt32(&cancelled, 1)
			}
			return StageStats{}, ctx.Err()
		}}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunStages(ctx, []Stage{stage("a"), stage("b"), stage("c")}, 0)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&cancelled); got != 3 {
		t.Fatalf("%d of 3 stages saw cancellation", got)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

// TestRunInjectedFailingStage exercises first-error capture through the
// public Run entry point: an extra stage that fails immediately must abort
// the whole pipeline, cancelling the built-in chain stages mid-flight.
func TestRunInjectedFailingStage(t *testing.T) {
	boom := errors.New("injected failure")
	opts := DefaultOptions()
	opts.ExtraStages = []Stage{{
		Name: "injected",
		Run: func(ctx context.Context) (StageStats, error) {
			return StageStats{}, boom
		},
	}}
	start := time.Now()
	res, err := Run(context.Background(), opts)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected error", err)
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	// The injected stage fails instantly, so the heavyweight chain stages
	// must be cancelled long before they would complete naturally.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("pipeline took %s after instant failure; cancellation not propagating", elapsed)
	}
}

// TestRunCancelledParentContext aborts the full pipeline mid-run.
func TestRunCancelledParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := Run(ctx, DefaultOptions()); err == nil {
		t.Fatal("cancelled pipeline reported success")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

// TestRunSurfacesStageMetrics checks the orchestrator's accounting on a
// successful run: every built-in stage reports a metric with crawl volume.
func TestRunSurfacesStageMetrics(t *testing.T) {
	r := testResult(t)
	want := map[string]bool{"eos": false, "tezos": false, "xrp": false, "governance": false}
	for _, m := range r.StageMetrics {
		if _, ok := want[m.Name]; !ok {
			t.Errorf("unexpected stage %q", m.Name)
			continue
		}
		want[m.Name] = true
		if m.Skipped {
			t.Errorf("stage %s skipped on a successful run", m.Name)
		}
		if m.Elapsed <= 0 {
			t.Errorf("stage %s has no wall-clock", m.Name)
		}
		if m.Blocks == 0 || m.Transactions == 0 {
			t.Errorf("stage %s reported no volume: %+v", m.Name, m)
		}
		if m.TPS <= 0 {
			t.Errorf("stage %s TPS = %f", m.Name, m.TPS)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("stage %s missing from metrics", name)
		}
	}
}
