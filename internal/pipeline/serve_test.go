package pipeline

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
)

// recordingSink is a SummarySink that records registrations and releases,
// safe for the concurrent Register calls the stage graph makes.
type recordingSink struct {
	mu        sync.Mutex
	summarize map[string]func() core.ChainSummary
	windows   map[string]core.Window
	released  map[string]bool
	failOn    string
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		summarize: make(map[string]func() core.ChainSummary),
		windows:   make(map[string]core.Window),
		released:  make(map[string]bool),
	}
}

func (s *recordingSink) Register(chain string, w core.Window, summarize func() core.ChainSummary) (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if chain == s.failOn {
		return nil, fmt.Errorf("sink: refusing %q", chain)
	}
	if _, dup := s.summarize[chain]; dup {
		return nil, fmt.Errorf("sink: duplicate %q", chain)
	}
	s.summarize[chain] = summarize
	s.windows[chain] = w
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.released[chain] = true
	}, nil
}

func TestServeFeedWiring(t *testing.T) {
	agg := core.NewEOSAggregator(chain.ObservationStart, 6*time.Hour)
	base := core.Decoder(core.EOSDecoder{Agg: agg})
	summarize := func() core.ChainSummary { return core.SummarizeEOS(agg) }
	window := core.Window{Origin: chain.ObservationStart, Bucket: 6 * time.Hour}

	t.Run("no sink passes through", func(t *testing.T) {
		var o Options
		dec, release, err := o.serveFeed("eos", window, summarize, base)
		if err != nil {
			t.Fatal(err)
		}
		if dec != base {
			t.Fatal("decoder changed without a sink")
		}
		release() // must be a safe no-op
	})

	t.Run("sink wraps and releases", func(t *testing.T) {
		sink := newRecordingSink()
		o := Options{Serve: sink}
		dec, release, err := o.serveFeed("eos", window, summarize, base)
		if err != nil {
			t.Fatal(err)
		}
		if dec == base {
			t.Fatal("decoder not wrapped for periodic merges")
		}
		// The wrapped decoder must keep the sharded + arena-recycling
		// surfaces the ingest pool type-asserts for.
		if _, ok := dec.(core.ShardedDecoder); !ok {
			t.Fatal("wrapped decoder lost ShardedDecoder")
		}
		if _, ok := dec.(core.BatchReleaser); !ok {
			t.Fatal("wrapped decoder lost BatchReleaser")
		}
		if sink.summarize["eos"] == nil {
			t.Fatal("summarize hook not registered")
		}
		if got := sink.windows["eos"]; !got.Equal(window) {
			t.Fatalf("registered window = %s, want %s", got, window)
		}
		release()
		if !sink.released["eos"] {
			t.Fatal("release not forwarded to the sink")
		}
	})

	t.Run("sink error fails the stage", func(t *testing.T) {
		sink := newRecordingSink()
		sink.failOn = "eos"
		o := Options{Serve: sink}
		if _, _, err := o.serveFeed("eos", window, summarize, base); err == nil {
			t.Fatal("sink error not propagated")
		}
	})
}

// TestPipelineServesAllStages runs a small pipeline with a serving sink and
// checks every stage registered, drained, and left a summarize hook whose
// figures match the stage's own aggregator — the pipeline-side contract the
// serving layer's snapshots build on.
func TestPipelineServesAllStages(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	sink := newRecordingSink()
	opts := DefaultOptions()
	opts.EOS.Scale = 400_000
	opts.Tezos.Scale = 6_400
	opts.XRP.Scale = 80_000
	opts.SkipGovernance = true
	opts.Serve = sink

	r, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, name := range []string{"eos", "tezos", "xrp"} {
		if sink.summarize[name] == nil {
			t.Fatalf("stage %q never registered", name)
		}
		if !sink.released[name] {
			t.Fatalf("stage %q never released (drained)", name)
		}
	}
	want := map[string]core.ChainSummary{
		"eos":   core.SummarizeEOS(r.EOS),
		"tezos": core.SummarizeTezos(r.Tezos),
		"xrp":   core.SummarizeXRP(r.XRP),
	}
	for name, w := range want {
		if got := sink.summarize[name]().Render(); got != w.Render() {
			t.Errorf("%s: served figures diverge from the stage aggregator's", name)
		}
	}
}
