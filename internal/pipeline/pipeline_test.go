package pipeline

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/xrp"
)

// sharedResult runs the full pipeline once per test binary; the integration
// assertions below all read from it.
var (
	resultOnce sync.Once
	sharedRes  *Result
	sharedErr  error
)

func testResult(t *testing.T) *Result {
	t.Helper()
	resultOnce.Do(func() {
		opts := DefaultOptions()
		// Keep integration runs quick: coarser scales than the defaults.
		opts.EOS.Scale = 100_000
		opts.Tezos.Scale = 1_600
		opts.XRP.Scale = 40_000
		opts.Gov.Scale = 800
		if testing.Short() {
			// The quick edit loop trades convergence for speed: the
			// paper's shares are scale-invariant, so the shape assertions
			// below still hold at coarser scales. XRP keeps its scale —
			// its stage is cheap and the offer-fulfillment assertion
			// needs the traffic.
			opts.EOS.Scale = 200_000
			opts.Tezos.Scale = 3_200
			opts.Gov.Scale = 1_600
		}
		sharedRes, sharedErr = Run(context.Background(), opts)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedRes
}

func TestPipelineEndToEndShares(t *testing.T) {
	r := testResult(t)

	// Figure 1 shapes. Paper: EOS transfers 91.6 % of actions.
	if share := r.EOS.TransferShare(); share < 0.80 || share > 0.97 {
		t.Errorf("EOS transfer share = %.3f, want ~0.92", share)
	}
	// Tezos endorsements 81.7 %.
	if share := r.Tezos.EndorsementShare(); share < 0.70 || share > 0.90 {
		t.Errorf("Tezos endorsement share = %.3f, want ~0.82", share)
	}
	// XRP: OfferCreate ~50.4 %, Payment ~46.2 %.
	offer := float64(r.XRP.TxByType["OfferCreate"]) / float64(r.XRP.Transactions)
	pay := float64(r.XRP.TxByType["Payment"]) / float64(r.XRP.Transactions)
	if offer < 0.35 || offer > 0.65 {
		t.Errorf("XRP offer share = %.3f, want ~0.50", offer)
	}
	if pay < 0.30 || pay > 0.62 {
		t.Errorf("XRP payment share = %.3f, want ~0.46", pay)
	}
}

func TestPipelineXRPValueDecomposition(t *testing.T) {
	r := testResult(t)
	d := r.XRP.Decompose()
	// Paper: 10.7 % failed.
	if d.FailedShare < 0.04 || d.FailedShare > 0.20 {
		t.Errorf("failed share = %.3f, want ~0.107", d.FailedShare)
	}
	// Paper: only ~2.3 % of throughput carries economic value.
	if d.EconomicShare > 0.15 {
		t.Errorf("economic share = %.3f, want small (~0.023)", d.EconomicShare)
	}
	if d.EconomicShare <= 0 {
		t.Error("economic share should not be zero: valuable flows exist")
	}
	// Paper: valuable payments are ~1 in 19 successful payments.
	if d.ValuablePaymentRate <= 0 || d.ValuablePaymentRate > 0.30 {
		t.Errorf("valuable payment rate = %.3f, want ~0.055", d.ValuablePaymentRate)
	}
	// Paper: merely 0.2 % of offers are ever fulfilled.
	if d.OfferFulfillmentRate > 0.05 {
		t.Errorf("offer fulfillment = %.4f, want ~0.002", d.OfferFulfillmentRate)
	}
}

func TestPipelineEOSCaseStudies(t *testing.T) {
	r := testResult(t)
	if r.EOS.BoomerangTransactions() == 0 {
		t.Error("no EIDOS boomerang transactions detected from crawled data")
	}
	rep := r.EOS
	wash := len(rep.Trades)
	if wash == 0 {
		t.Fatal("no WhaleEx trades crawled")
	}
	analysis := core.AnalyzeWashTrades(rep.Trades, 5)
	if analysis.SelfTradeShare < 0.5 {
		t.Errorf("self-trade share = %.2f, want high", analysis.SelfTradeShare)
	}
	if analysis.Top5Share < 0.6 {
		t.Errorf("top-5 trade involvement = %.2f, want >0.7", analysis.Top5Share)
	}
}

func TestPipelineGovernanceReplay(t *testing.T) {
	r := testResult(t)
	if r.Gov == nil {
		t.Fatal("governance aggregator missing")
	}
	if len(r.Gov.Votes) == 0 {
		t.Fatal("no governance votes crawled")
	}
	var proposalEvents, ballotEvents int
	var nayRolls int64
	for _, v := range r.Gov.Votes {
		switch v.Kind {
		case "proposals":
			proposalEvents++
		case "ballot":
			ballotEvents++
			if v.Ballot == "nay" {
				nayRolls += v.Rolls
			}
		}
	}
	if proposalEvents == 0 || ballotEvents == 0 {
		t.Fatalf("governance events: %d proposals, %d ballots", proposalEvents, ballotEvents)
	}
	if nayRolls == 0 {
		t.Error("promotion period nay votes missing")
	}
}

func TestPipelineEndpointShortlist(t *testing.T) {
	r := testResult(t)
	if len(r.EndpointScores) != r.Opts.EOSEndpoints {
		t.Fatalf("probed %d endpoints, want %d", len(r.EndpointScores), r.Opts.EOSEndpoints)
	}
	if len(r.Shortlisted) == 0 || len(r.Shortlisted) > r.Opts.EOSShortlist {
		t.Fatalf("shortlist size %d", len(r.Shortlisted))
	}
	// The shortlist must outperform the rejected endpoints.
	worstShort := r.Shortlisted[len(r.Shortlisted)-1].Throughput()
	for _, s := range r.EndpointScores {
		inShort := false
		for _, sl := range r.Shortlisted {
			if sl.URL == s.URL {
				inShort = true
			}
		}
		if !inShort && s.Reachable && s.Throughput() > worstShort {
			t.Errorf("endpoint %s outperforms shortlist but was rejected", s.URL)
		}
	}
}

func TestPipelineCrawlAccounting(t *testing.T) {
	r := testResult(t)
	for name, crawl := range map[string]struct {
		blocks, gzip int64
	}{
		"eos":   {r.EOSCrawl.Blocks, r.EOSCrawl.GzipBytes},
		"tezos": {r.TezosCrawl.Blocks, r.TezosCrawl.GzipBytes},
		"xrp":   {r.XRPCrawl.Blocks, r.XRPCrawl.GzipBytes},
	} {
		if crawl.blocks == 0 {
			t.Errorf("%s: no blocks crawled", name)
		}
		if crawl.gzip <= 0 {
			t.Errorf("%s: gzip accounting empty", name)
		}
	}
	// Dataset ordering from Figure 2: EOS is the biggest corpus, Tezos the
	// smallest — the shape must survive scaling.
	if r.EOSCrawl.RawBytes < r.TezosCrawl.RawBytes {
		t.Error("EOS dataset smaller than Tezos dataset")
	}
}

func TestPipelineRates(t *testing.T) {
	r := testResult(t)
	rates := r.XRP.IssuerRates("BTC")
	if len(rates) < 3 {
		t.Fatalf("BTC issuer rates: %d, want several issuers", len(rates))
	}
	// Figure 11a shape: orders of magnitude between the top gateway and
	// the junk issuers.
	if rates[0].Rate < 1000*rates[len(rates)-1].Rate {
		t.Errorf("rate spread too small: %.1f vs %.1f", rates[0].Rate, rates[len(rates)-1].Rate)
	}
	if rates[0].Rate < 20_000 || rates[0].Rate > 50_000 {
		t.Errorf("top BTC rate = %.0f, want ~36,050", rates[0].Rate)
	}
}

func TestPipelineValueFlow(t *testing.T) {
	r := testResult(t)
	flow := r.XRP.ValueFlow(r.ClusterFunc(), 10)
	if flow.TotalXRPVolume <= 0 {
		t.Fatal("no value flow measured")
	}
	names := map[string]bool{}
	for _, e := range flow.Senders {
		names[e.Name] = true
	}
	if !names["Binance"] && !names["Ripple"] {
		t.Errorf("expected exchange clusters in top senders, got %v", flow.Senders)
	}
	// XRP must dominate the currency mix.
	if len(flow.Currencies) == 0 || flow.Currencies[0].Name != "XRP" {
		t.Errorf("currencies: %+v", flow.Currencies)
	}
}

func TestPipelineTopXRPAccountsAreHuobiBots(t *testing.T) {
	r := testResult(t)
	top := r.XRP.TopAccounts(4)
	for _, p := range top {
		cluster := r.Dir.ClusterName(xrp.Address(p.Account))
		if !strings.Contains(cluster, "Huobi") {
			t.Errorf("top account %s cluster %q, want Huobi descendant", p.Account, cluster)
		}
		if p.OfferShare < 0.90 {
			t.Errorf("top account %s offer share %.2f, want >0.98-ish", p.Account, p.OfferShare)
		}
	}
}

func TestFullReportRenders(t *testing.T) {
	r := testResult(t)
	report := FullReport(r)
	for _, want := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Figure 11",
		"Figure 12", "Headline TPS", "WhaleEx", "EIDOS",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if len(report) < 2000 {
		t.Fatalf("report suspiciously short: %d bytes", len(report))
	}
}

func TestPipelineSpamClusterExtension(t *testing.T) {
	r := testResult(t)
	out := SpamClusters(r)
	if !strings.Contains(out, "hub ") {
		t.Fatalf("no spam cluster detected:\n%s", out)
	}
	// The detected hub must be the scenario's spam hub (unregistered
	// address, so the cluster name is the raw address).
	if !strings.Contains(out, string(r.XRPScenario.SpamHub)) {
		t.Fatalf("wrong hub detected:\n%s", out)
	}
}

func TestPipelineEIDOSRegimeShift(t *testing.T) {
	r := testResult(t)
	shift, ok := stats.DetectRegimeShift(stats.TotalValues(r.EOS.Series), 8)
	if !ok {
		t.Fatal("no regime shift in the EOS series")
	}
	// The shift must land near November 1 and be large.
	when := r.EOS.Series.BucketStart(shift.Bucket)
	launch := chain.EIDOSLaunch
	if when.Before(launch.AddDate(0, 0, -5)) || when.After(launch.AddDate(0, 0, 5)) {
		t.Fatalf("shift at %s, want ~%s", when, launch)
	}
	if shift.Ratio < 5 {
		t.Fatalf("shift ratio = %.1f, want >10-ish", shift.Ratio)
	}
}
