package pipeline

import (
	"context"
	"time"
)

// Stage is one node in the pipeline's stage graph. The built-in stages —
// the EOS, Tezos and XRP reproductions plus the Babylon governance replay —
// are independent (each binds its own ephemeral loopback ports and writes
// its own Result fields), so the scheduler may run them concurrently.
// Additional scenarios register through Options.ExtraStages without
// touching the scheduler.
type Stage struct {
	// Name identifies the stage in metrics and error messages. Names must
	// be unique within one graph.
	Name string
	// After lists the names of stages that must complete successfully
	// before this one starts. Stages with no ordering constraint run
	// concurrently, bounded by the scheduler's worker pool.
	After []string
	// Run executes the stage. Implementations must honour ctx promptly:
	// the scheduler cancels it as soon as any stage fails. A stage must
	// only touch state no concurrent stage touches.
	Run func(ctx context.Context) (StageStats, error)
}

// StageStats is what a stage reports about the workload it processed; the
// scheduler combines it with the measured wall-clock into a StageMetric.
type StageStats struct {
	// Blocks is how many blocks (or ledgers) the stage crawled.
	Blocks int64
	// Transactions is how many transactions (or operations) the stage
	// aggregated.
	Transactions int64
}

// StageMetric records one stage's scheduling outcome: wall-clock, crawl
// volume and effective throughput. Run surfaces these in Result in the
// same order the stages were registered.
type StageMetric struct {
	Name    string
	Elapsed time.Duration

	Blocks       int64
	Transactions int64

	// TPS is aggregated transactions per wall-clock second of the stage —
	// the pipeline-side throughput, not the simulated chain's TPS.
	TPS float64

	// Skipped marks stages that never started because an earlier stage
	// failed or the context was cancelled first.
	Skipped bool
}
