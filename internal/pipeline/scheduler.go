package pipeline

import (
	"context"
	"fmt"
	"time"
)

// RunStages executes a stage graph: every stage whose After dependencies
// have completed is eligible, and at most maxParallel stages run at once
// (maxParallel <= 0 means no bound beyond the graph itself; 1 reproduces a
// sequential pipeline). The first stage error cancels the context passed to
// all in-flight stages, prevents new launches, and is returned after the
// in-flight stages drain. The returned metrics are ordered like stages;
// stages that never started are marked Skipped.
func RunStages(parent context.Context, stages []Stage, maxParallel int) ([]StageMetric, error) {
	byName := make(map[string]int, len(stages))
	for i, s := range stages {
		if s.Name == "" {
			return nil, fmt.Errorf("pipeline: stage %d has no name", i)
		}
		if s.Run == nil {
			return nil, fmt.Errorf("pipeline: stage %q has no run function", s.Name)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("pipeline: duplicate stage %q", s.Name)
		}
		byName[s.Name] = i
	}
	indeg := make([]int, len(stages))
	dependents := make([][]int, len(stages))
	for i, s := range stages {
		for _, dep := range s.After {
			j, ok := byName[dep]
			if !ok {
				return nil, fmt.Errorf("pipeline: stage %q depends on unknown stage %q", s.Name, dep)
			}
			if j == i {
				return nil, fmt.Errorf("pipeline: stage %q depends on itself", s.Name)
			}
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	if maxParallel <= 0 || maxParallel > len(stages) {
		maxParallel = len(stages)
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	type completion struct {
		idx    int
		metric StageMetric
		err    error
	}
	done := make(chan completion)

	var ready []int
	for i := range stages {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}

	metrics := make([]StageMetric, len(stages))
	started := make([]bool, len(stages))
	var firstErr error
	inFlight, finished := 0, 0

	launch := func(i int) {
		started[i] = true
		inFlight++
		s := stages[i]
		go func() {
			start := time.Now()
			stats, err := s.Run(ctx)
			m := StageMetric{
				Name:         s.Name,
				Elapsed:      time.Since(start),
				Blocks:       stats.Blocks,
				Transactions: stats.Transactions,
			}
			if secs := m.Elapsed.Seconds(); secs > 0 {
				m.TPS = float64(stats.Transactions) / secs
			}
			done <- completion{idx: i, metric: m, err: err}
		}()
	}

	for finished < len(stages) {
		for firstErr == nil && len(ready) > 0 && inFlight < maxParallel {
			next := ready[0]
			ready = ready[1:]
			launch(next)
		}
		if inFlight == 0 {
			break
		}
		c := <-done
		inFlight--
		finished++
		metrics[c.idx] = c.metric
		if c.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("pipeline: %s stage: %w", stages[c.idx].Name, c.err)
			cancel()
		}
		for _, d := range dependents[c.idx] {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
			}
		}
	}

	for i := range stages {
		if !started[i] {
			metrics[i] = StageMetric{Name: stages[i].Name, Skipped: true}
		}
	}
	if firstErr == nil && finished < len(stages) {
		return metrics, fmt.Errorf("pipeline: stage graph has a dependency cycle (%d stages unreachable)", len(stages)-finished)
	}
	if firstErr == nil {
		firstErr = parent.Err()
	}
	return metrics, firstErr
}
