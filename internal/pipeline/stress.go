package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/rpcserve"
	"repro/internal/workload"
)

// EIDOSStressStage builds a fifth scenario for the stage graph, registered
// through Options.ExtraStages: it replays the EOS workload over the EIDOS
// airdrop week at a hotter arrival rate (the scale divisor is cut to a
// quarter of the EOS stage's default, i.e. roughly 4x the per-block
// traffic), serves it over the nodeos RPC, and drives the whole history
// through the streaming ingestion API — collect.Stream into
// core.EOSDecoder under core.IngestStream. Its wall-clock and pipeline TPS
// land in Result.StageMetrics next to the built-in stages, so the stress
// replay's throughput is tracked by the same StageTimings table.
//
// The stage composes the two extension points this package exposes: the
// scheduler knows nothing about it (ExtraStages), and the measurement side
// reuses the chain-agnostic Ingestor/Decoder contract. It takes the full
// pipeline Options so its crawl honours the same knobs as the built-in
// stages — Workers, Buffer, IngestWorkers, Batch, and (when Options.Pool
// is set, as cmd/report -stress does) the shared fetch pool, keeping the
// documented total fetch-concurrency bound intact.
func EIDOSStressStage(o StageOptions, opts Options) Stage {
	return Stage{
		Name: "eidos-stress",
		Run: func(ctx context.Context) (StageStats, error) {
			opts = opts.withDefaults()
			scale := o.Scale
			if scale <= 0 {
				scale = DefaultOptions().EOS.Scale / 4
			}
			seed := o.Seed
			if seed == 0 {
				seed = DefaultOptions().EOS.Seed
			}
			scenario, err := workload.BuildEOS(workload.EOSOptions{
				Scale: scale, Seed: seed,
				// The EIDOS airdrop week: the hottest regime the paper
				// observed, when mining traffic quintupled EOS throughput.
				Start: chain.EIDOSLaunch,
				End:   chain.EIDOSLaunch.AddDate(0, 0, 7),
			})
			if err != nil {
				return StageStats{}, err
			}
			scenario.Run()

			url, stop, err := serve(rpcserve.NewEOSServer(scenario.Chain))
			if err != nil {
				return StageStats{}, err
			}
			defer stop()

			agg := core.NewEOSAggregator(chain.EIDOSLaunch, 6*time.Hour)
			crawl, err := crawlInto(ctx, collect.NewEOSClient(url), collect.CrawlConfig{
				Workers: opts.Workers, Pool: opts.Pool, Buffer: opts.Buffer,
			}, core.EOSDecoder{Agg: agg}, opts.ingestConfig())
			if err != nil {
				return StageStats{}, err
			}
			if agg.Transactions == 0 {
				return StageStats{}, fmt.Errorf("stress replay aggregated no transactions")
			}
			return StageStats{Blocks: crawl.Blocks, Transactions: agg.Transactions}, nil
		},
	}
}
