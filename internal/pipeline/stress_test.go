package pipeline

import (
	"context"
	"strings"
	"testing"

	"repro/internal/collect"
)

// TestPipelineEIDOSStressStage: the fifth scenario registers through
// Options.ExtraStages, runs on the streaming ingestion API, and surfaces in
// StageMetrics alongside the built-in stages.
func TestPipelineEIDOSStressStage(t *testing.T) {
	opts := DefaultOptions()
	// Only the stress stage matters here; keep the built-ins coarse and
	// skip the governance replay.
	opts.EOS.Scale = 400_000
	opts.Tezos.Scale = 8_000
	opts.XRP.Scale = 200_000
	opts.SkipGovernance = true
	stressScale := int64(100_000)
	if testing.Short() {
		stressScale = 200_000
	}
	// Share one fetch pool between the built-ins and the stress stage, as
	// cmd/report -stress does.
	opts.Pool = collect.NewPool(opts.Workers)
	opts.ExtraStages = append(opts.ExtraStages,
		EIDOSStressStage(StageOptions{Scale: stressScale, Seed: 1}, opts))

	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	var stress *StageMetric
	for i := range res.StageMetrics {
		if res.StageMetrics[i].Name == "eidos-stress" {
			stress = &res.StageMetrics[i]
		}
	}
	if stress == nil {
		t.Fatalf("eidos-stress missing from StageMetrics: %+v", res.StageMetrics)
	}
	if stress.Skipped {
		t.Fatal("eidos-stress was skipped")
	}
	if stress.Blocks == 0 || stress.Transactions == 0 {
		t.Fatalf("eidos-stress processed nothing: %+v", *stress)
	}
	if stress.TPS <= 0 {
		t.Fatalf("eidos-stress TPS = %f", stress.TPS)
	}
	// The stage renders in the same report table as the built-ins.
	if table := StageTimings(res); !strings.Contains(table, "eidos-stress") {
		t.Fatalf("StageTimings omits the stress stage:\n%s", table)
	}
}
