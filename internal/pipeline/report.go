package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/xrp"
)

// Paper-reported reference values, used in the rendered tables so every
// output can be eyeballed against the original.
var paperFigure1 = map[string]map[string]float64{
	"eos":   {"transfer": 91.6, "others": 8.3},
	"tezos": {"endorsement": 81.7, "transaction": 16.2},
	"xrp":   {"OfferCreate": 50.4, "Payment": 46.2, "TrustSet": 1.9, "OfferCancel": 1.5},
}

func table(fn func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fn(w)
	w.Flush()
	return sb.String()
}

// Figure1 renders the transaction-type distribution for all three chains.
func Figure1(r *Result) string {
	out := "Figure 1 — Distribution of transaction types per blockchain\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "chain\ttype\tcount\tshare\tpaper")
		emit := func(chain, name string, count, total int64) {
			share := 100 * float64(count) / float64(total)
			ref := ""
			if p, ok := paperFigure1[chain][name]; ok {
				ref = fmt.Sprintf("%.1f%%", p)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.1f%%\t%s\n", chain, name, count, share, ref)
		}
		for _, row := range sortedCounts(r.EOS.ActionsByName) {
			emit("eos", row.name, row.count, r.EOS.Actions)
		}
		for _, row := range sortedCounts(r.Tezos.OpsByKind) {
			emit("tezos", row.name, row.count, r.Tezos.Operations)
		}
		for _, row := range sortedCounts(r.XRP.TxByType) {
			emit("xrp", row.name, row.count, r.XRP.Transactions)
		}
	})
	return out
}

type countRow struct {
	name  string
	count int64
}

func sortedCounts(m map[string]int64) []countRow {
	rows := make([]countRow, 0, len(m))
	for k, v := range m {
		rows = append(rows, countRow{k, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// Figure2 renders the dataset characterization, scaled and extrapolated.
func Figure2(r *Result) string {
	out := "Figure 2 — Characterizing the datasets (scaled run; ×scale ≈ main net)\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "chain\tscale\tblocks\ttxs\tgzip bytes\tblocks ×scale\ttxs ×scale\tpaper blocks\tpaper txs")
		fmt.Fprintf(w, "EOS\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t16,299,999\t376,819,512\n",
			r.Opts.EOS.Scale, r.EOSCrawl.Blocks, r.EOS.Transactions, r.EOSCrawl.GzipBytes,
			float64(r.EOSCrawl.Blocks)*float64(r.Opts.EOS.Scale),
			float64(r.EOS.Transactions)*float64(r.Opts.EOS.Scale))
		fmt.Fprintf(w, "Tezos\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t131,801\t3,345,019\n",
			r.Opts.Tezos.Scale, r.TezosCrawl.Blocks, r.Tezos.Operations, r.TezosCrawl.GzipBytes,
			float64(r.TezosCrawl.Blocks)*float64(r.Opts.Tezos.Scale),
			float64(r.Tezos.Operations)*float64(r.Opts.Tezos.Scale))
		fmt.Fprintf(w, "XRP\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t2,031,069\t151,324,595\n",
			r.Opts.XRP.Scale, r.XRPCrawl.Blocks, r.XRP.Transactions, r.XRPCrawl.GzipBytes,
			float64(r.XRPCrawl.Blocks)*float64(r.Opts.XRP.Scale),
			float64(r.XRP.Transactions)*float64(r.Opts.XRP.Scale))
	})
	return out
}

// sparkline renders per-bucket totals as a compact ASCII series.
func sparkline(ts *stats.TimeSeries, label string) string {
	rows := ts.Rows()
	if len(rows) == 0 {
		return "(empty)"
	}
	var max int64 = 1
	for _, row := range rows {
		if v := row.Counts[label]; v > max {
			max = v
		}
	}
	marks := []rune(" .:-=+*#%@")
	var sb strings.Builder
	for _, row := range rows {
		idx := int(row.Counts[label] * int64(len(marks)-1) / max)
		sb.WriteRune(marks[idx])
	}
	return sb.String()
}

// Figure3 renders the three throughput-over-time panels.
func Figure3(r *Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — Throughput across time (one char per bucket, height ∝ count)\n")
	sb.WriteString("(a) EOS by app category:\n")
	for _, label := range r.EOS.Series.Labels() {
		sb.WriteString(fmt.Sprintf("  %-12s |%s| total %d\n", label, sparkline(r.EOS.Series, label), r.EOS.Series.Total(label)))
	}
	if shift, ok := stats.DetectRegimeShift(stats.TotalValues(r.EOS.Series), 8); ok {
		sb.WriteString(fmt.Sprintf("  regime shift at bucket %d (%s): %.0f -> %.0f actions/bucket, ×%.1f (paper: >10× at Nov 1)\n",
			shift.Bucket, r.EOS.Series.BucketStart(shift.Bucket).Format("2006-01-02"), shift.Before, shift.After, shift.Ratio))
	}
	sb.WriteString("(b) Tezos by operation group:\n")
	for _, label := range r.Tezos.Series.Labels() {
		sb.WriteString(fmt.Sprintf("  %-12s |%s| total %d\n", label, sparkline(r.Tezos.Series, label), r.Tezos.Series.Total(label)))
	}
	sb.WriteString("(c) XRP by transaction outcome:\n")
	for _, label := range r.XRP.Series.Labels() {
		sb.WriteString(fmt.Sprintf("  %-15s |%s| total %d\n", label, sparkline(r.XRP.Series, label), r.XRP.Series.Total(label)))
	}
	return sb.String()
}

// Figure4 renders the EOS top applications.
func Figure4(r *Result) string {
	out := "Figure 4 — EOS top applications by received actions\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "contract\tcategory\treceived\ttop actions")
		for _, p := range r.EOS.TopReceivers(8) {
			var actions []string
			for i, a := range p.Actions {
				if i == 3 {
					break
				}
				actions = append(actions, fmt.Sprintf("%s %.1f%%", a.Name, 100*float64(a.Count)/float64(p.Total)))
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%s\n", p.Contract, p.Label, p.Total, strings.Join(actions, ", "))
		}
	})
	return out
}

// Figure5 renders the EOS top sender→receiver pairs.
func Figure5(r *Result) string {
	out := "Figure 5 — EOS account pairs with the highest number of sent actions\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "sender\tsent\tunique receivers\ttop receivers")
		for _, p := range r.EOS.TopSenderPairs(6, 3) {
			var recvs []string
			for _, rc := range p.Receivers {
				recvs = append(recvs, fmt.Sprintf("%s %.1f%%", rc.Receiver, 100*float64(rc.Count)/float64(p.Sent)))
			}
			fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", p.Sender, p.Sent, p.UniqueReceivers, strings.Join(recvs, ", "))
		}
	})
	return out
}

// Figure6 renders the Tezos top senders with fan-out statistics.
func Figure6(r *Result) string {
	out := "Figure 6 — Tezos accounts with the highest number of sent transactions\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "sender\tsent\tunique receivers\tavg/receiver\tstdev")
		for _, p := range r.Tezos.TopSenders(6) {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\n",
				shorten(p.Sender), p.Sent, p.UniqueReceivers, p.AvgPerReceiver, p.StdevPerReceiver)
		}
	})
	return out
}

func shorten(addr string) string {
	if len(addr) > 18 {
		return addr[:18] + "…"
	}
	return addr
}

// Figure7 renders the XRP value decomposition.
func Figure7(r *Result) string {
	d := r.XRP.Decompose()
	var sb strings.Builder
	sb.WriteString("Figure 7 — XRP throughput decomposition (measured | paper)\n")
	rows := []struct {
		name     string
		measured float64
		paper    float64
	}{
		{"failed", d.FailedShare, 0.107},
		{"successful", d.SuccessfulShare, 0.893},
		{"payments with value", d.PaymentsWithValue, 0.021},
		{"payments no value", d.PaymentsNoValue, 0.360},
		{"offers exchanged", d.OffersExchanged, 0.001},
		{"offers no exchange", d.OffersNoExchange, 0.494},
		{"others successful", d.OthersSuccessful, 0.017},
		{"economic share", d.EconomicShare, 0.023},
	}
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("  %-22s %6.2f%% | %5.1f%%\n", row.name, 100*row.measured, 100*row.paper))
	}
	sb.WriteString(fmt.Sprintf("  %-22s %6.2f%% | %5.1f%%\n", "offer fulfillment", 100*d.OfferFulfillmentRate, 0.2))
	sb.WriteString(fmt.Sprintf("  %-22s %6.2f%% | %5.1f%%  (\"1 in 19\")\n", "valuable payments", 100*d.ValuablePaymentRate, 5.5))
	return sb.String()
}

// Figure8 renders the most active XRP accounts.
func Figure8(r *Result) string {
	out := "Figure 8 — Most active accounts on the XRP ledger\n"
	out += table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "account\tcluster\ttotal\toffer share\tdest tag")
		for _, p := range r.XRP.TopAccounts(10) {
			cluster := r.Dir.ClusterName(xrp.Address(p.Account))
			tag := ""
			if p.DominantDestTag != 0 {
				tag = fmt.Sprintf("%d", p.DominantDestTag)
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%.1f%%\t%s\n",
				shorten(p.Account), cluster, p.Total, 100*p.OfferShare, tag)
		}
	})
	shares := r.XRP.TrafficShares()
	conc := core.Concentration(shares, 18)
	out += fmt.Sprintf("  top-18 accounts carry %.0f%% of traffic (paper: ~50%%), Gini %.2f, %d accounts\n",
		100*conc.TopKShare, conc.Gini, conc.Accounts)
	return out
}

// Figure9 renders the Babylon governance vote series.
func Figure9(r *Result) string {
	if r.Gov == nil {
		return "Figure 9 — (governance replay skipped)\n"
	}
	var sb strings.Builder
	sb.WriteString("Figure 9 — Tezos Babylon amendment votes (rolls, cumulative by day)\n")
	day := 24 * time.Hour
	prop := r.Gov.VoteSeries("proposals", day)
	sb.WriteString("(a) proposal period upvotes:\n")
	for _, label := range prop.Labels() {
		sb.WriteString(fmt.Sprintf("  %-10s |%s| total %d rolls\n", label, sparkline(prop, label), prop.Total(label)))
	}
	ballots := r.Gov.VoteSeries("ballot", day)
	sb.WriteString("(b/c) exploration + promotion ballots:\n")
	for _, label := range ballots.Labels() {
		sb.WriteString(fmt.Sprintf("  %-10s |%s| total %d rolls\n", label, sparkline(ballots, label), ballots.Total(label)))
	}
	return sb.String()
}

// Figure11 renders the IOU rate tables.
func Figure11(r *Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 11a — Average XRP rate of BTC IOUs by issuer (December)\n")
	for _, ir := range r.XRP.IssuerRates("BTC") {
		name := r.Dir.ClusterName(xrp.Address(ir.Issuer))
		sb.WriteString(fmt.Sprintf("  %-28s %12.1f XRP  (%d trades)\n", name, ir.Rate, ir.Trades))
	}
	sb.WriteString("Figure 11b — Same-issuer BTC IOU rate over time (Myrone):\n")
	if r.XRPScenario != nil {
		key := xrp.AssetKey{Currency: "BTC", Issuer: r.XRPScenario.MyroneIssuer}
		for _, row := range r.XRP.RateSeries(key) {
			sb.WriteString(fmt.Sprintf("  %s  %10.1f XRP\n",
				row.Start.Format("2006-01-02"), float64(row.Counts["rate_millis"])/1000))
		}
	}
	sb.WriteString("  (paper: 30,500 XRP on 2019-12-14 collapsing to 0.1 within a month)\n")
	return sb.String()
}

// Figure12 renders the value-flow aggregation.
func Figure12(r *Result) string {
	flow := r.XRP.ValueFlow(r.ClusterFunc(), 8)
	var sb strings.Builder
	scale := float64(r.Opts.XRP.Scale)
	sb.WriteString(fmt.Sprintf("Figure 12 — XRP value flow (scaled run; ×%d ≈ main net)\n", r.Opts.XRP.Scale))
	sb.WriteString(fmt.Sprintf("  total volume: %.3g XRP scaled (≈ %.3g full-scale; paper: 43B XRP + IOU flows)\n",
		flow.TotalXRPVolume, flow.TotalXRPVolume*scale))
	sb.WriteString("  top senders:\n")
	for _, e := range flow.Senders {
		sb.WriteString(fmt.Sprintf("    %-28s %14.0f XRP (%.1f%%)\n", e.Name, e.XRPVolume, 100*e.XRPVolume/flow.TotalXRPVolume))
	}
	sb.WriteString("  top receivers:\n")
	for _, e := range flow.Receivers {
		sb.WriteString(fmt.Sprintf("    %-28s %14.0f XRP (%.1f%%)\n", e.Name, e.XRPVolume, 100*e.XRPVolume/flow.TotalXRPVolume))
	}
	sb.WriteString("  currencies:\n")
	for _, e := range flow.Currencies {
		sb.WriteString(fmt.Sprintf("    %-8s %14.0f XRP-equivalent\n", e.Name, e.XRPVolume))
	}
	return sb.String()
}

// HeadlineTPS renders the §3 throughput summary.
func HeadlineTPS(r *Result) string {
	var sb strings.Builder
	sb.WriteString("Headline TPS (full-scale estimate | paper)\n")
	eos := core.EstimatedFullScaleTPS(r.EOS.Transactions, r.EOS.FirstBlockTime, r.EOS.LastBlockTime, r.Opts.EOS.Scale)
	tez := core.EstimatedFullScaleTPS(r.Tezos.Operations, r.Tezos.FirstBlockTime, r.Tezos.LastBlockTime, r.Opts.Tezos.Scale)
	xrpTPS := core.EstimatedFullScaleTPS(r.XRP.Transactions, r.XRP.FirstLedgerTime, r.XRP.LastLedgerTime, r.Opts.XRP.Scale)
	sb.WriteString(fmt.Sprintf("  EOS   %8.1f tx/s | ~47 tx/s incl. EIDOS era (headline 20)\n", eos))
	sb.WriteString(fmt.Sprintf("  Tezos %8.2f op/s | 0.42 op/s total ops; headline 0.08 TPS for transactions\n", tez))
	sb.WriteString(fmt.Sprintf("  XRP   %8.1f tx/s | ~19 tx/s\n", xrpTPS))
	return sb.String()
}

// CaseStudies renders the §4.1 findings.
func CaseStudies(r *Result) string {
	var sb strings.Builder
	sb.WriteString("§4.1 — WhaleEx wash trading\n")
	rep := core.AnalyzeWashTrades(r.EOS.Trades, 5)
	sb.WriteString(fmt.Sprintf("  settled trades: %d, self-trade share %.1f%% (top-5 involvement %.1f%%, paper >70%%)\n",
		rep.TotalTrades, 100*rep.SelfTradeShare, 100*rep.Top5Share))
	for _, w := range rep.TopAccounts {
		sb.WriteString(fmt.Sprintf("    %-14s trades %6d  self %.1f%% (paper: >85%%)\n", w.Account, w.Trades, 100*w.SelfTradeShare))
	}
	for _, bc := range rep.BalanceChanges {
		sb.WriteString(fmt.Sprintf("    %-14s %d/%d currencies with ~zero net balance change\n",
			bc.Account, bc.UnchangedCurrencies, bc.Currencies))
	}
	sb.WriteString("§4.1 — EIDOS boomerang and congestion\n")
	sb.WriteString(fmt.Sprintf("  boomerang transactions: %d (%.1f%% of txs)\n",
		r.EOS.BoomerangTransactions(), 100*float64(r.EOS.BoomerangTransactions())/float64(r.EOS.Transactions)))
	sb.WriteString(fmt.Sprintf("  EIDOS-touching actions: %.1f%% of all actions (paper: 95%% of txs EIDOS-driven)\n",
		100*r.EOS.EIDOSShare()))
	if eosVol := r.EOS.VolumeBySymbol["EOS"]; eosVol > 0 {
		sb.WriteString(fmt.Sprintf("  EOS financial volume: %.0f EOS moved, %.1f%% of it boomerang legs with no net transfer\n",
			eosVol, 100*r.EOS.BoomerangVolume/eosVol))
	}
	if r.EOSScenario != nil {
		c := r.EOSScenario.Chain
		sb.WriteString(fmt.Sprintf("  network congested: %v (utilization %.2f), CPU-rejected txs: %d, rent index %.0f× (paper: 10,000%% spike)\n",
			c.Resources().Congested(), c.Resources().Utilization(), c.RejectedCPU, c.Resources().RentPriceIndex()))
	}
	return sb.String()
}

// SpamClusters renders the extension analysis: self-contained payment
// mills detected from activation parentage plus payment flows (the
// generalization of §4.3's rpJZ5Wy incident).
func SpamClusters(r *Result) string {
	det := core.NewSpamClusterDetector()
	// Parentage comes from the explorer, exactly like the paper's use of
	// XRP Scan account metadata.
	for _, p := range r.XRP.TopAccounts(1 << 20) {
		info := r.Dir.Lookup(xrp.Address(p.Account))
		if info.Parent != "" {
			acct := r.XRPScenario.State.GetAccount(xrp.Address(p.Account))
			when := time.Time{}
			if acct != nil {
				when = acct.Activated
			}
			det.ObserveActivation(string(info.Parent), p.Account, when)
		}
	}
	clusters := det.Detect(r.XRP.PaymentViews())
	var sb strings.Builder
	sb.WriteString("Extension — spam-cluster detection (generalized §4.3)\n")
	if len(clusters) == 0 {
		sb.WriteString("  no self-contained payment mills detected\n")
		return sb.String()
	}
	for _, c := range clusters {
		name := r.Dir.ClusterName(xrp.Address(c.Parent))
		sb.WriteString(fmt.Sprintf("  hub %-28s members=%d internal=%d (%.0f%%) zero-value=%.0f%% activation span=%s\n",
			name, c.Members, c.InternalPayments, 100*c.InternalShare,
			100*c.ZeroValueShare, c.ActivationSpan.Round(time.Hour)))
	}
	sb.WriteString("  (paper: one account activated 5,020 children in a week for meaningless mutual payments)\n")
	return sb.String()
}

// EndpointReport renders the §3.1 endpoint short-listing.
func EndpointReport(r *Result) string {
	var sb strings.Builder
	sb.WriteString("§3.1 — EOS endpoint probing and shortlist\n")
	for _, s := range r.EndpointScores {
		mark := " "
		for _, sl := range r.Shortlisted {
			if sl.URL == s.URL {
				mark = "*"
			}
		}
		sb.WriteString(fmt.Sprintf("  %s %-28s reachable=%v latency=%v success=%.0f%%\n",
			mark, s.URL, s.Reachable, s.Latency.Round(time.Microsecond), 100*s.SuccessRate))
	}
	sb.WriteString(fmt.Sprintf("  shortlisted %d of %d (paper: 6 of 32)\n", len(r.Shortlisted), len(r.EndpointScores)))
	return sb.String()
}

// StageTimings renders the orchestrator's per-stage wall-clock, crawl
// volume and pipeline-side throughput.
func StageTimings(r *Result) string {
	var sb strings.Builder
	sb.WriteString("Stage timings — orchestrator wall-clock per stage\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "stage\twall-clock\tblocks\ttransactions\tpipeline TPS")
		for _, m := range r.StageMetrics {
			if m.Skipped {
				fmt.Fprintf(w, "%s\t(skipped)\t-\t-\t-\n", m.Name)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.0f\n",
				m.Name, m.Elapsed.Round(time.Millisecond), m.Blocks, m.Transactions, m.TPS)
		}
	}))
	return sb.String()
}

// FullReport renders every table and figure.
func FullReport(r *Result) string {
	sections := []string{
		StageTimings(r),
		EndpointReport(r),
		Figure1(r),
		Figure2(r),
		Figure3(r),
		Figure4(r),
		Figure5(r),
		Figure6(r),
		Figure7(r),
		Figure8(r),
		Figure9(r),
		Figure11(r),
		Figure12(r),
		HeadlineTPS(r),
		CaseStudies(r),
		SpamClusters(r),
	}
	return strings.Join(sections, "\n")
}
