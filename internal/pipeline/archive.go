package pipeline

import (
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/collect"
)

// stageArchiveDir is the per-stage archive location under Options.ArchiveDir
// ("" when archiving is off). ArchiveDir may be a blob-store URL; the
// stage lands under its path either way.
func (o Options) stageArchiveDir(stage string) string {
	if o.ArchiveDir == "" {
		return ""
	}
	return blobstore.Join(o.ArchiveDir, stage)
}

// replayReader resolves a stage's archive to a replay fetcher.
//
//   - no ArchiveDir, or no manifest yet: (nil, nil) — crawl live.
//   - a manifest covering [from, to] for the right chain: the Reader.
//   - anything else — wrong chain, corruption, partial coverage: an error,
//     because replaying a subset or appending to an archive written under
//     different scenario parameters would silently skew every figure.
func (o Options) replayReader(stage, chain string, from, to int64) (*archive.Reader, error) {
	dir := o.stageArchiveDir(stage)
	if dir == "" {
		return nil, nil
	}
	rd, err := archive.Open(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage %s archive: %w", stage, err)
	}
	if rd.Chain() != chain {
		return nil, fmt.Errorf("pipeline: stage %s archive %s holds chain %q, want %q", stage, dir, rd.Chain(), chain)
	}
	// The archive must be exactly the stage's range, not a superset: a
	// changed scale moves the simulated head, and replaying a stale
	// archive's subset would quietly measure the wrong scenario.
	if rd.From() != from || rd.To() != to || !rd.Covers(from, to) {
		return nil, fmt.Errorf("pipeline: stage %s archive %s covers [%d, %d] (%d blocks) but the stage needs exactly [%d, %d] — delete the archive directory to recrawl",
			stage, dir, rd.From(), rd.To(), rd.Blocks(), from, to)
	}
	return rd, nil
}

// archiveWriter opens the write-through archive for a live stage crawl
// (nil when archiving is off). It is only called when replayReader
// returned neither a reader nor an error, i.e. on a fresh archive
// directory.
func (o Options) archiveWriter(stage, chain string) (*archive.Writer, error) {
	dir := o.stageArchiveDir(stage)
	if dir == "" {
		return nil, nil
	}
	w, err := archive.NewWriter(archive.WriterConfig{Dir: dir, Chain: chain})
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage %s archive: %w", stage, err)
	}
	return w, nil
}

// finishArchive closes the write-through archive after a stage crawl,
// joining a finalization failure with the crawl's own error so neither is
// lost — a stage whose crawl failed AND whose archive could not finalize
// must report both (the unfinalized archive is why the next run will
// demand a recrawl).
func finishArchive(w *archive.Writer, crawlErr error) error {
	if w == nil {
		return crawlErr
	}
	if err := w.Close(); err != nil {
		return errors.Join(crawlErr, fmt.Errorf("pipeline: finalizing archive: %w", err))
	}
	return crawlErr
}

// stageCollect resolves one stage's collection source: the archive replay
// reader when the stage archive exactly covers [from, to], otherwise the
// live fetcher built by live() — teed into a fresh write-through archive
// when archiving is on. live() runs only on the live path (a replay skips
// serving and probing entirely) and returns its own teardown; the caller
// must defer the returned cleanup and pass the returned sink to
// finishArchive after the crawl.
func (o Options) stageCollect(stage, chain string, from, to int64, ccfg *collect.CrawlConfig, live func() (collect.BlockFetcher, func(), error)) (collect.BlockFetcher, *archive.Writer, func(), error) {
	noop := func() {}
	rd, err := o.replayReader(stage, chain, from, to)
	if err != nil {
		return nil, nil, noop, err
	}
	if rd != nil {
		return rd, nil, noop, nil
	}
	fetcher, cleanup, err := live()
	if cleanup == nil {
		cleanup = noop
	}
	if err != nil {
		return nil, nil, cleanup, err
	}
	sink, err := o.archiveWriter(stage, chain)
	if err != nil {
		return nil, nil, cleanup, err
	}
	if sink != nil {
		ccfg.Tee = sink.Append
	}
	return fetcher, sink, cleanup, nil
}
