package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io/fs"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/collect"
)

// stageArchiveDir is the per-stage archive location under Options.ArchiveDir
// ("" when archiving is off). ArchiveDir may be a blob-store URL; the
// stage lands under its path either way.
func (o Options) stageArchiveDir(stage string) string {
	if o.ArchiveDir == "" {
		return ""
	}
	return blobstore.Join(o.ArchiveDir, stage)
}

// replayReader resolves a stage's archive to a replay fetcher.
//
//   - no ArchiveDir, or no manifest yet: (nil, false, nil) — crawl live.
//   - a manifest covering [from, to] for the right chain: the Reader,
//     partial false.
//   - with Options.ResumeArchives, a manifest whose blocks all lie INSIDE
//     [from, to] but don't cover it — a run killed mid-crawl: the Reader,
//     partial true; stageCollect serves archived blocks from it and
//     crawls only the rest live, extending the archive to full coverage.
//   - anything else — wrong chain, corruption, blocks outside the range
//     (a scale/seed change since the archive was written): an error,
//     because replaying a subset or appending to an archive written under
//     different scenario parameters would silently skew every figure.
func (o Options) replayReader(stage, chain string, from, to int64) (rd *archive.Reader, partial bool, err error) {
	dir := o.stageArchiveDir(stage)
	if dir == "" {
		return nil, false, nil
	}
	rd, err = archive.Open(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: stage %s archive: %w", stage, err)
	}
	if rd.Chain() != chain {
		return nil, false, fmt.Errorf("pipeline: stage %s archive %s holds chain %q, want %q", stage, dir, rd.Chain(), chain)
	}
	if rd.From() == from && rd.To() == to && rd.Covers(from, to) {
		return rd, false, nil
	}
	// Incomplete coverage whose every block still belongs to the stage's
	// range is exactly what a crash mid-crawl leaves behind — resumable
	// when the operator opted in. Blocks OUTSIDE the range can never come
	// from this scenario (a changed scale moves the simulated head), so
	// they always refuse loudly.
	if o.ResumeArchives && rd.From() >= from && rd.To() <= to {
		return rd, true, nil
	}
	return nil, false, fmt.Errorf("pipeline: stage %s archive %s covers [%d, %d] (%d blocks) but the stage needs exactly [%d, %d] — delete the archive directory to recrawl",
		stage, dir, rd.From(), rd.To(), rd.Blocks(), from, to)
}

// archiveWriter opens the write-through archive for a live stage crawl
// (nil when archiving is off). It is only called when replayReader
// returned neither a reader nor an error, i.e. on a fresh archive
// directory.
func (o Options) archiveWriter(stage, chain string) (*archive.Writer, error) {
	dir := o.stageArchiveDir(stage)
	if dir == "" {
		return nil, nil
	}
	w, err := archive.NewWriter(archive.WriterConfig{Dir: dir, Chain: chain})
	if err != nil {
		return nil, fmt.Errorf("pipeline: stage %s archive: %w", stage, err)
	}
	return w, nil
}

// finishArchive closes the write-through archive after a stage crawl,
// joining a finalization failure with the crawl's own error so neither is
// lost — a stage whose crawl failed AND whose archive could not finalize
// must report both (the unfinalized archive is why the next run will
// demand a recrawl).
func finishArchive(w *archive.Writer, crawlErr error) error {
	if w == nil {
		return crawlErr
	}
	if err := w.Close(); err != nil {
		return errors.Join(crawlErr, fmt.Errorf("pipeline: finalizing archive: %w", err))
	}
	return crawlErr
}

// stageCollect resolves one stage's collection source: the archive replay
// reader when the stage archive exactly covers [from, to], otherwise the
// live fetcher built by live() — teed into a fresh write-through archive
// when archiving is on, or composed with a partial archive (resume) so
// only the missing blocks are fetched live. live() runs only when live
// fetches are possible (a full replay skips serving and probing entirely)
// and returns its own teardown; the caller must defer the returned
// cleanup and pass the returned sink to finishArchive after the crawl.
func (o Options) stageCollect(stage, chain string, from, to int64, ccfg *collect.CrawlConfig, live func() (collect.BlockFetcher, func(), error)) (collect.BlockFetcher, *archive.Writer, func(), error) {
	noop := func() {}
	rd, partial, err := o.replayReader(stage, chain, from, to)
	if err != nil {
		return nil, nil, noop, err
	}
	if rd != nil && !partial {
		return rd, nil, noop, nil
	}
	fetcher, cleanup, err := live()
	if cleanup == nil {
		cleanup = noop
	}
	if err != nil {
		return nil, nil, cleanup, err
	}
	sink, err := o.archiveWriter(stage, chain)
	if err != nil {
		return nil, nil, cleanup, err
	}
	if rd != nil {
		// Crash recovery: archived blocks replay from storage, the rest
		// fetch live and are teed by the composite itself — never through
		// ccfg.Tee, which would re-archive the replayed blocks too and
		// duplicate them in the manifest.
		return &resumeFetcher{rd: rd, live: fetcher, sink: sink}, sink, cleanup, nil
	}
	if sink != nil {
		ccfg.Tee = sink.Append
	}
	return fetcher, sink, cleanup, nil
}

// resumeFetcher extends an interrupted stage's archive: blocks the
// partial archive holds are served from it (zero network calls), every
// other block is fetched live and appended to the archive, so one
// resumed run leaves full coverage behind and folds every block —
// archived or live — into the same aggregate exactly once.
type resumeFetcher struct {
	rd   *archive.Reader
	live collect.BlockFetcher
	sink *archive.Writer
}

func (f *resumeFetcher) Head(ctx context.Context) (int64, error) { return f.live.Head(ctx) }

func (f *resumeFetcher) FetchBlock(ctx context.Context, num int64) ([]byte, error) {
	if f.rd.Covers(num, num) {
		return f.rd.FetchBlock(ctx, num)
	}
	raw, err := f.live.FetchBlock(ctx, num)
	if err != nil {
		return nil, err
	}
	if f.sink != nil {
		if err := f.sink.Append(num, raw); err != nil {
			return nil, err
		}
	}
	return raw, nil
}

// OwnsRaw holds only when both sources guarantee caller-owned buffers.
func (f *resumeFetcher) OwnsRaw() bool {
	rr, ok := f.live.(interface{ OwnsRaw() bool })
	return ok && rr.OwnsRaw() && f.rd.OwnsRaw()
}
