package pipeline

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/blobstore"
	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/eos"
	"repro/internal/rpcserve"
)

// resumeFixture is a small EOS chainsim behind a counting HTTP server.
type resumeFixture struct {
	srv *httptest.Server

	mu      sync.Mutex
	fetched map[int64]int
}

func newResumeFixture(t *testing.T, nBlocks int) *resumeFixture {
	t.Helper()
	c := eos.New(eos.DefaultConfig(1000))
	alice, bob := eos.MustName("alice"), eos.MustName("bob")
	for _, n := range []eos.Name{alice, bob} {
		if err := c.CreateAccount(n, eos.SystemAccount); err != nil {
			t.Fatal(err)
		}
		if err := c.Tokens().Transfer(eos.TokenAccount, eos.SystemAccount, n, chain.EOSAsset(1_000_0000)); err != nil {
			t.Fatal(err)
		}
		c.Resources().Stake(&c.GetAccount(n).Resources, 100_0000, 100_0000)
	}
	for i := 0; i < nBlocks; i++ {
		c.PushTransaction(eos.NewAction(eos.TokenAccount, eos.ActTransfer, alice, map[string]string{
			"from": "alice", "to": "bob", "quantity": "0.0001 EOS",
		}))
		c.ProduceBlock()
	}

	f := &resumeFixture{fetched: make(map[int64]int)}
	inner := rpcserve.NewEOSServer(c)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/get_block") {
			body, _ := io.ReadAll(r.Body)
			var req struct {
				Num json.Number `json:"block_num_or_id"`
			}
			json.Unmarshal(body, &req)
			num, _ := req.Num.Int64()
			f.mu.Lock()
			f.fetched[num]++
			f.mu.Unlock()
			r.Body = io.NopCloser(strings.NewReader(string(body)))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *resumeFixture) resetCounts() {
	f.mu.Lock()
	f.fetched = make(map[int64]int)
	f.mu.Unlock()
}

func (f *resumeFixture) hits(num int64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fetched[num]
}

// crawlFigures runs [from, to] through the given fetcher into a fresh kit
// and renders the figures.
func crawlFigures(t *testing.T, fetcher collect.BlockFetcher, ccfg collect.CrawlConfig) string {
	t.Helper()
	kit, err := core.NewStatsKit("eos", chain.ObservationStart, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.IngestCrawl(context.Background(), fetcher, ccfg, kit.Decoder, core.IngestConfig{}); err != nil {
		t.Fatalf("crawl: %v", err)
	}
	return kit.Summarize().Render()
}

// TestStageCollectResumesPartialArchive: a stage archive holding only a
// suffix of the range — what a crash mid-crawl leaves, since segments
// commit to the manifest incrementally — is refused by default but, with
// ResumeArchives, resumed: archived blocks replay from storage (never
// refetched), missing blocks crawl live and extend the archive, figures
// match an all-live crawl, and the NEXT run replays entirely from the
// now-complete archive.
func TestStageCollectResumesPartialArchive(t *testing.T) {
	const total = 20
	fx := newResumeFixture(t, total)
	dir := t.TempDir()
	client := collect.NewEOSClient(fx.srv.URL)

	want := crawlFigures(t, client, collect.CrawlConfig{From: 1, To: total, Workers: 2})
	fx.resetCounts()

	// Seed the partial archive: blocks [11, 20] only, as if the teeing
	// crawl died halfway down its reverse-chronological pass.
	w, err := archive.NewWriter(archive.WriterConfig{Dir: blobstore.Join(dir, "eos"), Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(11); num <= total; num++ {
		raw, err := client.FetchBlock(context.Background(), num)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(num, raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fx.resetCounts()

	// Default: partial coverage is a loud error, never a silent recrawl.
	strict := DefaultOptions()
	strict.ArchiveDir = dir
	ccfg := collect.CrawlConfig{From: 1, To: total, Workers: 2}
	if _, _, cleanup, err := strict.stageCollect("eos", "eos", 1, total, &ccfg, func() (collect.BlockFetcher, func(), error) {
		return client, nil, nil
	}); err == nil || !strings.Contains(err.Error(), "delete the archive") {
		cleanup()
		t.Fatalf("partial archive without ResumeArchives: %v", err)
	}

	// Resume: archived blocks come from storage, the rest live.
	opts := strict
	opts.ResumeArchives = true
	ccfg = collect.CrawlConfig{From: 1, To: total, Workers: 2}
	fetcher, sink, cleanup, err := opts.stageCollect("eos", "eos", 1, total, &ccfg, func() (collect.BlockFetcher, func(), error) {
		return client, nil, nil
	})
	defer cleanup()
	if err != nil {
		t.Fatal(err)
	}
	got := crawlFigures(t, fetcher, ccfg)
	if err := finishArchive(sink, nil); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("resumed figures differ from all-live crawl\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	for num := int64(11); num <= total; num++ {
		if n := fx.hits(num); n != 0 {
			t.Errorf("resumed run refetched archived block %d (%d times)", num, n)
		}
	}
	for num := int64(1); num <= 10; num++ {
		if n := fx.hits(num); n != 1 {
			t.Errorf("missing block %d fetched %d times, want exactly once", num, n)
		}
	}

	// The archive now covers everything: the next run is a pure replay.
	fx.resetCounts()
	ccfg = collect.CrawlConfig{From: 1, To: total, Workers: 2}
	fetcher, sink, cleanup, err = opts.stageCollect("eos", "eos", 1, total, &ccfg, func() (collect.BlockFetcher, func(), error) {
		t.Fatal("full archive still built a live fetcher")
		return nil, nil, nil
	})
	defer cleanup()
	if err != nil {
		t.Fatal(err)
	}
	if sink != nil {
		t.Fatal("pure replay opened a write-through archive")
	}
	if got := crawlFigures(t, fetcher, ccfg); got != want {
		t.Errorf("replay figures differ from all-live crawl\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	fx.mu.Lock()
	live := len(fx.fetched)
	fx.mu.Unlock()
	if live != 0 {
		t.Errorf("pure replay still hit the network for %d blocks", live)
	}
}

// TestReplayReaderRefusesForeignBlocks: an archive whose blocks lie
// outside the stage's range (scale or seed changed since it was written)
// refuses loudly even in resume mode — resuming it would measure a
// different scenario.
func TestReplayReaderRefusesForeignBlocks(t *testing.T) {
	const total = 12
	fx := newResumeFixture(t, total)
	dir := t.TempDir()
	client := collect.NewEOSClient(fx.srv.URL)

	w, err := archive.NewWriter(archive.WriterConfig{Dir: blobstore.Join(dir, "eos"), Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	for num := int64(8); num <= total; num++ {
		raw, err := client.FetchBlock(context.Background(), num)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(num, raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.ArchiveDir = dir
	opts.ResumeArchives = true
	// The stage now wants [1, 10]: archived blocks 11 and 12 are from a
	// bigger scenario.
	if _, _, err := opts.replayReader("eos", "eos", 1, 10); err == nil || !strings.Contains(err.Error(), "delete the archive") {
		t.Fatalf("archive with out-of-range blocks resumed: %v", err)
	}
}
