// Package pipeline wires the full reproduction together: it builds the
// calibrated workloads, runs the three chain simulators over the
// observation window, serves their histories through the same network APIs
// the paper crawled (EOS HTTP RPC behind rate-limited endpoints, Tezos REST,
// XRP WebSocket plus the explorer's Data API), collects everything with the
// reverse-chronological crawler, and feeds the crawled wire data into the
// measurement aggregators.
package pipeline

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/explorer"
	"repro/internal/rpcserve"
	"repro/internal/workload"
	"repro/internal/xrp"
)

// Options selects the scale divisors and crawl parallelism.
type Options struct {
	// EOSScale, TezosScale, XRPScale and GovScale are the per-chain scale
	// divisors (the paper's shares and rankings are scale-invariant; see
	// DESIGN.md). Zero selects fast defaults suitable for tests.
	EOSScale, TezosScale, XRPScale, GovScale int64
	Seed                                     int64
	// Workers is the crawl concurrency per chain.
	Workers int
	// Bucket is the throughput time-series bucket (paper: 6 hours).
	Bucket time.Duration
	// EOSEndpoints is how many EOS endpoints to expose for probing; the
	// crawler shortlists the best EOSShortlist of them, as the paper
	// shortlisted 6 of 32.
	EOSEndpoints int
	EOSShortlist int
	// SkipGovernance disables the Babylon replay when only the main
	// window is needed.
	SkipGovernance bool
}

// DefaultOptions returns bench-friendly scales.
func DefaultOptions() Options {
	return Options{
		EOSScale:     50_000,
		TezosScale:   800,
		XRPScale:     20_000,
		GovScale:     400,
		Seed:         1,
		Workers:      4,
		Bucket:       6 * time.Hour,
		EOSEndpoints: 8,
		EOSShortlist: 3,
	}
}

// Result carries every aggregate the report renderers need.
type Result struct {
	Opts Options

	EOS   *core.EOSAggregator
	Tezos *core.TezosAggregator
	Gov   *core.TezosAggregator
	XRP   *core.XRPAggregator

	Dir *explorer.Directory

	EOSCrawl, TezosCrawl, XRPCrawl collect.CrawlResult

	// EndpointScores are the probe results behind the EOS shortlist.
	EndpointScores []collect.EndpointScore
	Shortlisted    []collect.EndpointScore

	// XRPScenario exposes actor addresses for case-study lookups.
	XRPScenario *workload.XRPScenario
	// EOSScenario exposes the EOS chain for case-study lookups.
	EOSScenario *workload.EOSScenario
}

// ClusterFunc returns the Figure 12 clustering function backed by the
// explorer directory.
func (r *Result) ClusterFunc() core.ClusterFunc {
	return func(addr string) string { return r.Dir.ClusterName(xrp.Address(addr)) }
}

// Run executes the whole reproduction.
func Run(ctx context.Context, opts Options) (*Result, error) {
	def := DefaultOptions()
	if opts.EOSScale <= 0 {
		opts.EOSScale = def.EOSScale
	}
	if opts.TezosScale <= 0 {
		opts.TezosScale = def.TezosScale
	}
	if opts.XRPScale <= 0 {
		opts.XRPScale = def.XRPScale
	}
	if opts.GovScale <= 0 {
		opts.GovScale = def.GovScale
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.Workers <= 0 {
		opts.Workers = def.Workers
	}
	if opts.Bucket <= 0 {
		opts.Bucket = def.Bucket
	}
	if opts.EOSEndpoints <= 0 {
		opts.EOSEndpoints = def.EOSEndpoints
	}
	if opts.EOSShortlist <= 0 {
		opts.EOSShortlist = def.EOSShortlist
	}

	res := &Result{Opts: opts}
	if err := res.runEOS(ctx, opts); err != nil {
		return nil, fmt.Errorf("pipeline: EOS stage: %w", err)
	}
	if err := res.runTezos(ctx, opts); err != nil {
		return nil, fmt.Errorf("pipeline: Tezos stage: %w", err)
	}
	if err := res.runXRP(ctx, opts); err != nil {
		return nil, fmt.Errorf("pipeline: XRP stage: %w", err)
	}
	if !opts.SkipGovernance {
		if err := res.runGovernance(ctx, opts); err != nil {
			return nil, fmt.Errorf("pipeline: governance stage: %w", err)
		}
	}
	return res, nil
}

// serve starts an HTTP server on a loopback port and returns its base URL
// and a shutdown function.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

func (r *Result) runEOS(ctx context.Context, opts Options) error {
	scenario, err := workload.BuildEOS(workload.EOSOptions{Scale: opts.EOSScale, Seed: opts.Seed})
	if err != nil {
		return err
	}
	scenario.Run()
	r.EOSScenario = scenario

	// Expose several endpoints with varying generosity, probe them, and
	// crawl through the shortlist — the paper's §3.1 methodology.
	handler := rpcserve.NewEOSServer(scenario.Chain)
	profiles := make([]rpcserve.EndpointProfile, opts.EOSEndpoints)
	for i := range profiles {
		switch i % 4 {
		case 0: // generous
			profiles[i] = rpcserve.EndpointProfile{}
		case 1:
			profiles[i] = rpcserve.EndpointProfile{RatePerSec: 5000, Burst: 500}
		case 2: // stingy rate limit
			profiles[i] = rpcserve.EndpointProfile{RatePerSec: 20, Burst: 5}
		default: // slow
			profiles[i] = rpcserve.EndpointProfile{Latency: 5 * time.Millisecond}
		}
	}
	urls := make([]string, 0, len(profiles))
	for _, p := range profiles {
		url, stop, err := serve(p.Middleware(handler))
		if err != nil {
			return err
		}
		defer stop()
		urls = append(urls, url)
	}
	for _, u := range urls {
		r.EndpointScores = append(r.EndpointScores, collect.ProbeEndpoint(ctx, u, collect.NewEOSClient(u), 6))
	}
	r.Shortlisted = collect.Shortlist(r.EndpointScores, opts.EOSShortlist)
	fetchers := make([]collect.BlockFetcher, 0, len(r.Shortlisted))
	for _, s := range r.Shortlisted {
		fetchers = append(fetchers, collect.NewEOSClient(s.URL))
	}
	if len(fetchers) == 0 {
		return fmt.Errorf("no EOS endpoints survived probing")
	}
	multi := &collect.MultiFetcher{Fetchers: fetchers}

	agg := core.NewEOSAggregator(chain.ObservationStart, opts.Bucket)
	crawl, err := collect.Crawl(ctx, multi, collect.CrawlConfig{
		Workers: opts.Workers, MaxRetries: 8, Backoff: 5 * time.Millisecond,
	}, func(num int64, raw []byte) error {
		blk, err := collect.DecodeEOSBlock(raw)
		if err != nil {
			return err
		}
		return agg.IngestBlock(blk)
	})
	if err != nil {
		return err
	}
	r.EOS = agg
	r.EOSCrawl = crawl
	return nil
}

func (r *Result) runTezos(ctx context.Context, opts Options) error {
	scenario, err := workload.BuildTezos(workload.TezosOptions{Scale: opts.TezosScale, Seed: opts.Seed})
	if err != nil {
		return err
	}
	if _, err := scenario.Run(); err != nil {
		return err
	}
	url, stop, err := serve(rpcserve.NewTezosServer(scenario.Chain))
	if err != nil {
		return err
	}
	defer stop()

	agg := core.NewTezosAggregator(chain.ObservationStart, opts.Bucket)
	crawl, err := collect.Crawl(ctx, collect.NewTezosClient(url), collect.CrawlConfig{
		Workers: opts.Workers,
	}, func(num int64, raw []byte) error {
		blk, err := collect.DecodeTezosBlock(raw)
		if err != nil {
			return err
		}
		return agg.IngestBlock(blk)
	})
	if err != nil {
		return err
	}
	r.Tezos = agg
	r.TezosCrawl = crawl
	return nil
}

func (r *Result) runGovernance(ctx context.Context, opts Options) error {
	g, err := workload.BuildTezosGovernance(workload.GovernanceOptions{Scale: opts.GovScale, Seed: opts.Seed})
	if err != nil {
		return err
	}
	if _, err := g.Run(); err != nil {
		return err
	}
	url, stop, err := serve(rpcserve.NewTezosServer(g.Chain))
	if err != nil {
		return err
	}
	defer stop()

	// The governance replay starts in July; anchor its series there.
	agg := core.NewTezosAggregator(time.Date(2019, time.July, 17, 0, 0, 0, 0, time.UTC), 24*time.Hour)
	if _, err := collect.Crawl(ctx, collect.NewTezosClient(url), collect.CrawlConfig{
		Workers: opts.Workers,
	}, func(num int64, raw []byte) error {
		blk, err := collect.DecodeTezosBlock(raw)
		if err != nil {
			return err
		}
		return agg.IngestBlock(blk)
	}); err != nil {
		return err
	}
	r.Gov = agg
	return nil
}

func (r *Result) runXRP(ctx context.Context, opts Options) error {
	scenario, err := workload.BuildXRP(workload.XRPOptions{Scale: opts.XRPScale, Seed: opts.Seed})
	if err != nil {
		return err
	}
	scenario.Run()
	r.XRPScenario = scenario

	// The ledger API over WebSocket.
	wsURL, stopWS, err := serve(rpcserve.NewXRPServer(scenario.State))
	if err != nil {
		return err
	}
	defer stopWS()
	wsURL = "ws" + strings.TrimPrefix(wsURL, "http")

	// The explorer (XRP Scan + Data API): usernames and trade records.
	dir := explorer.NewDirectory(scenario.State)
	for addr, username := range scenario.Usernames {
		dir.Register(addr, username)
	}
	oracle := explorer.NewRateOracle(scenario.State)
	exURL, stopEx, err := serve(explorer.NewServer(dir, oracle))
	if err != nil {
		return err
	}
	defer stopEx()
	r.Dir = dir

	agg := core.NewXRPAggregator(chain.ObservationStart, opts.Bucket)
	client := collect.NewXRPClient(wsURL)
	defer client.Close()
	crawl, err := collect.Crawl(ctx, client, collect.CrawlConfig{
		// The build phase's ledgers stand in for pre-window history
		// (gateway issuance, trust lines); the paper's window starts at
		// October 1, so the crawl does too.
		From:    scenario.SetupLedgers + 1,
		Workers: 1, // the WebSocket protocol is sequential per connection
	}, func(num int64, raw []byte) error {
		led, err := collect.DecodeXRPLedger(raw)
		if err != nil {
			return err
		}
		return agg.IngestLedger(led)
	})
	if err != nil {
		return err
	}
	// Pull trade records from the Data API, as the paper did for rates.
	exchanges, err := explorer.FetchExchanges(exURL)
	if err != nil {
		return err
	}
	agg.AddExchanges(exchanges)
	r.XRP = agg
	r.XRPCrawl = crawl
	return nil
}
