// Package pipeline wires the full reproduction together: it builds the
// calibrated workloads, runs the three chain simulators over the
// observation window, serves their histories through the same network APIs
// the paper crawled (EOS HTTP RPC behind rate-limited endpoints, Tezos REST,
// XRP WebSocket plus the explorer's Data API), collects everything with the
// reverse-chronological crawler, and feeds the crawled wire data into the
// measurement aggregators.
//
// The stages are independent chain reproductions, so Run executes them as a
// stage graph under a bounded scheduler (see Stage and RunStages) rather
// than sequentially; per-stage wall-clocks surface in Result.StageMetrics.
package pipeline

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/explorer"
	"repro/internal/rpcserve"
	"repro/internal/workload"
	"repro/internal/xrp"
)

// StageOptions are the per-stage scenario knobs. Every chain reproduction
// carries its own scale divisor and seed so scenarios can be re-run or
// extended independently without touching the scheduler.
type StageOptions struct {
	// Scale is the scale divisor (the paper's shares and rankings are
	// scale-invariant; see DESIGN.md). Zero selects a fast default
	// suitable for tests.
	Scale int64
	// Seed makes the stage's workload deterministic. Zero selects the
	// default seed.
	Seed int64
}

// Options selects the per-stage scales, crawl parallelism and scheduling.
type Options struct {
	// EOS, Tezos, XRP and Gov configure the built-in stages.
	EOS, Tezos, XRP, Gov StageOptions

	// Workers sizes the crawl worker pool shared by every stage: it bounds
	// in-flight block fetches across all concurrent crawls.
	Workers int
	// Pool, when set, is the shared fetch pool the stages crawl through;
	// nil lets Run create one sized by Workers. Expose it when extra
	// stages built outside Run (e.g. EIDOSStressStage) should share the
	// same fetch budget instead of bringing their own.
	Pool *collect.Pool
	// Buffer is each stage's stream channel capacity: how many fetched
	// blocks may sit between crawl workers and the decode pool before the
	// fetch side blocks (backpressure).
	Buffer int
	// IngestWorkers sizes each stage's decode/ingest pool — decoding runs
	// off the crawl workers.
	IngestWorkers int
	// Batch is how many decoded blocks each ingest worker folds into its
	// aggregator per lock acquisition.
	Batch int
	// StageWorkers bounds how many stages run concurrently. Zero means
	// every ready stage runs in parallel; 1 reproduces the old sequential
	// pipeline.
	StageWorkers int
	// Bucket is the throughput time-series bucket (paper: 6 hours).
	Bucket time.Duration
	// EOSEndpoints is how many EOS endpoints to expose for probing; the
	// crawler shortlists the best EOSShortlist of them, as the paper
	// shortlisted 6 of 32.
	EOSEndpoints int
	EOSShortlist int
	// SkipGovernance disables the Babylon replay when only the main
	// window is needed.
	SkipGovernance bool

	// ArchiveDir makes the producer side of every stage durable. It may be
	// a plain directory path or a blob-store URL (file://, mem://,
	// s3://bucket/prefix?endpoint=..., null:// — see blobstore.Resolve).
	// When set, each stage keeps its raw block archive under a per-stage
	// sub-location (ArchiveDir/eos, …): a live crawl tees its stream into
	// a fresh archive as it fetches, and a rerun whose archive already
	// covers the stage's block range replays it from storage instead —
	// no endpoints served, no probing, zero fetcher network calls. An
	// archive that exists but does not cover the requested range (an
	// interrupted run, or a scale/seed change since it was written) fails
	// the stage with instructions to delete it, because silently mixing
	// archived blocks from different scenario parameters would corrupt
	// the measurement.
	ArchiveDir string

	// ResumeArchives makes a partial stage archive — what a run killed
	// mid-crawl leaves behind — a resume point instead of an error:
	// archived blocks replay from storage, only the missing ones are
	// fetched live (and appended), and the rerun still renders the full
	// figures while leaving complete archive coverage behind. An archive
	// holding blocks outside the stage's range (a scale or seed change)
	// stays a loud error either way.
	ResumeArchives bool

	// ExtraStages are appended to the built-in stage graph. They may
	// depend on built-in stage names ("eos", "tezos", "xrp",
	// "governance") via Stage.After. Note that SkipGovernance removes
	// the "governance" stage from the graph, so depending on it then is
	// a graph-validation error.
	ExtraStages []Stage

	// Serve, when set, turns every measurement stage into a serving feed:
	// the stage registers its aggregator's summarize hook before crawling
	// and releases it (marking the chain drained) when the crawl returns,
	// and its ingest path merges worker shards periodically instead of
	// only at drain, so the sink can snapshot mid-crawl figures. The
	// serving layer's Publisher (internal/serve) implements this.
	Serve SummarySink
}

// SummarySink is the serving layer's registration surface, kept as a local
// interface so the pipeline does not depend on internal/serve. Register
// adds a named chain feed anchored at the given aggregation window and
// returns an idempotent release function that marks the feed drained (its
// figures final). The sink may reject a duplicate chain name, and must
// reject one whose window differs from the first registration.
type SummarySink interface {
	Register(chain string, w core.Window, summarize func() core.ChainSummary) (release func(), err error)
}

// DefaultOptions returns bench-friendly scales. The decode/ingest pool
// scales with the CPU count (floor 2): since the aggregators went
// mergeable-sharded the decode workers never contend on a lock, so on
// multicore the stages get real CPU parallelism out of the box while the
// single-CPU reference container keeps its old sizing.
func DefaultOptions() Options {
	ingest := runtime.GOMAXPROCS(0)
	if ingest < 2 {
		ingest = 2
	}
	return Options{
		EOS:           StageOptions{Scale: 50_000, Seed: 1},
		Tezos:         StageOptions{Scale: 800, Seed: 1},
		XRP:           StageOptions{Scale: 20_000, Seed: 1},
		Gov:           StageOptions{Scale: 400, Seed: 1},
		Workers:       4,
		Buffer:        64,
		IngestWorkers: ingest,
		Batch:         16,
		Bucket:        6 * time.Hour,
		EOSEndpoints:  8,
		EOSShortlist:  3,
	}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	norm := func(s, d StageOptions) StageOptions {
		if s.Scale <= 0 {
			s.Scale = d.Scale
		}
		if s.Seed == 0 {
			s.Seed = d.Seed
		}
		return s
	}
	o.EOS = norm(o.EOS, def.EOS)
	o.Tezos = norm(o.Tezos, def.Tezos)
	o.XRP = norm(o.XRP, def.XRP)
	o.Gov = norm(o.Gov, def.Gov)
	if o.Workers <= 0 {
		o.Workers = def.Workers
	}
	if o.Buffer <= 0 {
		o.Buffer = def.Buffer
	}
	if o.IngestWorkers <= 0 {
		o.IngestWorkers = def.IngestWorkers
	}
	if o.Batch <= 0 {
		o.Batch = def.Batch
	}
	if o.Bucket <= 0 {
		o.Bucket = def.Bucket
	}
	if o.EOSEndpoints <= 0 {
		o.EOSEndpoints = def.EOSEndpoints
	}
	if o.EOSShortlist <= 0 {
		o.EOSShortlist = def.EOSShortlist
	}
	return o
}

// Result carries every aggregate the report renderers need.
type Result struct {
	Opts Options

	EOS   *core.EOSAggregator
	Tezos *core.TezosAggregator
	Gov   *core.TezosAggregator
	XRP   *core.XRPAggregator

	Dir *explorer.Directory

	EOSCrawl, TezosCrawl, XRPCrawl collect.CrawlResult

	// EndpointScores are the probe results behind the EOS shortlist.
	EndpointScores []collect.EndpointScore
	Shortlisted    []collect.EndpointScore

	// XRPScenario exposes actor addresses for case-study lookups.
	XRPScenario *workload.XRPScenario
	// EOSScenario exposes the EOS chain for case-study lookups.
	EOSScenario *workload.EOSScenario

	// StageMetrics records each stage's wall-clock, crawl volume and
	// pipeline-side TPS, ordered like the stage graph.
	StageMetrics []StageMetric
}

// ClusterFunc returns the Figure 12 clustering function backed by the
// explorer directory.
func (r *Result) ClusterFunc() core.ClusterFunc {
	return func(addr string) string { return r.Dir.ClusterName(xrp.Address(addr)) }
}

// Run executes the whole reproduction as a stage graph: the EOS, Tezos,
// XRP and governance stages run concurrently (bounded by
// Options.StageWorkers) over a shared crawl worker pool. The first stage
// failure cancels the others and is returned.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Opts: opts}
	pool := opts.Pool
	if pool == nil {
		pool = collect.NewPool(opts.Workers)
	}

	stages := []Stage{
		{Name: "eos", Run: func(ctx context.Context) (StageStats, error) {
			return res.runEOS(ctx, opts, pool)
		}},
		{Name: "tezos", Run: func(ctx context.Context) (StageStats, error) {
			return res.runTezos(ctx, opts, pool)
		}},
		{Name: "xrp", Run: func(ctx context.Context) (StageStats, error) {
			return res.runXRP(ctx, opts, pool)
		}},
	}
	if !opts.SkipGovernance {
		stages = append(stages, Stage{Name: "governance", Run: func(ctx context.Context) (StageStats, error) {
			return res.runGovernance(ctx, opts, pool)
		}})
	}
	stages = append(stages, opts.ExtraStages...)

	metrics, err := RunStages(ctx, stages, opts.StageWorkers)
	res.StageMetrics = metrics
	if err != nil {
		return nil, err
	}
	return res, nil
}

// crawlInto runs one stage's collection→measurement path on the streaming
// API: collect.Stream fetches raw blocks into a bounded channel and
// core.IngestStream decodes and batch-ingests them off the crawl workers
// (see core.IngestCrawl for the wiring).
func crawlInto(ctx context.Context, f collect.BlockFetcher, ccfg collect.CrawlConfig, dec core.Decoder, icfg core.IngestConfig) (collect.CrawlResult, error) {
	res, _, err := core.IngestCrawl(ctx, f, ccfg, dec, icfg)
	return res, err
}

// ingestConfig derives each stage's decode/ingest pool sizing from the
// pipeline options.
func (o Options) ingestConfig() core.IngestConfig {
	return core.IngestConfig{Workers: o.IngestWorkers, Batch: o.Batch}
}

// serveFeed wires one stage into the serving sink (when configured):
// registers the summarize hook under the stage's chain name and switches
// the stage's decoder to periodic shard merges so the sink's snapshots see
// the crawl in epoch-sized increments. Without a sink the decoder passes
// through untouched and the release is a no-op.
func (o Options) serveFeed(name string, w core.Window, summarize func() core.ChainSummary, dec core.Decoder) (core.Decoder, func(), error) {
	if o.Serve == nil {
		return dec, func() {}, nil
	}
	release, err := o.Serve.Register(name, w, summarize)
	if err != nil {
		return nil, nil, err
	}
	return core.PeriodicMerge(dec, 0), release, nil
}

// serve starts an HTTP server on a loopback port and returns its base URL
// and a shutdown function.
func serve(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

func (r *Result) runEOS(ctx context.Context, opts Options, pool *collect.Pool) (StageStats, error) {
	scenario, err := workload.BuildEOS(workload.EOSOptions{Scale: opts.EOS.Scale, Seed: opts.EOS.Seed})
	if err != nil {
		return StageStats{}, err
	}
	scenario.Run()
	r.EOSScenario = scenario
	to := int64(scenario.Chain.HeadNum())

	ccfg := collect.CrawlConfig{
		From: 1, To: to,
		Workers: opts.Workers, Pool: pool, Buffer: opts.Buffer,
		MaxRetries: 8, Backoff: 5 * time.Millisecond,
	}
	fetcher, sink, cleanup, err := opts.stageCollect("eos", "eos", 1, to, &ccfg, func() (collect.BlockFetcher, func(), error) {
		// Live crawl: expose several endpoints with varying generosity,
		// probe them, and crawl through the shortlist — the paper's §3.1
		// methodology. A replay skips all of it: the archive is the
		// endpoint.
		handler := rpcserve.NewEOSServer(scenario.Chain)
		profiles := make([]rpcserve.EndpointProfile, opts.EOSEndpoints)
		for i := range profiles {
			switch i % 4 {
			case 0: // generous
				profiles[i] = rpcserve.EndpointProfile{}
			case 1:
				profiles[i] = rpcserve.EndpointProfile{RatePerSec: 5000, Burst: 500}
			case 2: // stingy rate limit
				profiles[i] = rpcserve.EndpointProfile{RatePerSec: 20, Burst: 5}
			default: // slow
				profiles[i] = rpcserve.EndpointProfile{Latency: 5 * time.Millisecond}
			}
		}
		var stops []func()
		stopAll := func() {
			for _, stop := range stops {
				stop()
			}
		}
		urls := make([]string, 0, len(profiles))
		for _, p := range profiles {
			url, stop, err := serve(p.Middleware(handler))
			if err != nil {
				return nil, stopAll, err
			}
			stops = append(stops, stop)
			urls = append(urls, url)
		}
		for _, u := range urls {
			r.EndpointScores = append(r.EndpointScores, collect.ProbeEndpoint(ctx, u, collect.NewEOSClient(u), 6))
		}
		r.Shortlisted = collect.Shortlist(r.EndpointScores, opts.EOSShortlist)
		fetchers := make([]collect.BlockFetcher, 0, len(r.Shortlisted))
		for _, s := range r.Shortlisted {
			fetchers = append(fetchers, collect.NewEOSClient(s.URL))
		}
		if len(fetchers) == 0 {
			return nil, stopAll, fmt.Errorf("no EOS endpoints survived probing")
		}
		return &collect.MultiFetcher{Fetchers: fetchers}, stopAll, nil
	})
	defer cleanup()
	if err != nil {
		return StageStats{}, err
	}

	agg := core.NewEOSAggregator(chain.ObservationStart, opts.Bucket)
	dec, releaseFeed, err := opts.serveFeed("eos", core.Window{Origin: chain.ObservationStart, Bucket: opts.Bucket},
		func() core.ChainSummary { return core.SummarizeEOS(agg) }, core.EOSDecoder{Agg: agg})
	if err != nil {
		return StageStats{}, err
	}
	defer releaseFeed()
	crawl, err := crawlInto(ctx, fetcher, ccfg, dec, opts.ingestConfig())
	if err = finishArchive(sink, err); err != nil {
		return StageStats{}, err
	}
	r.EOS = agg
	r.EOSCrawl = crawl
	return StageStats{Blocks: crawl.Blocks, Transactions: agg.Transactions}, nil
}

func (r *Result) runTezos(ctx context.Context, opts Options, pool *collect.Pool) (StageStats, error) {
	scenario, err := workload.BuildTezos(workload.TezosOptions{Scale: opts.Tezos.Scale, Seed: opts.Tezos.Seed})
	if err != nil {
		return StageStats{}, err
	}
	if _, err := scenario.Run(); err != nil {
		return StageStats{}, err
	}
	to := scenario.Chain.HeadLevel()

	ccfg := collect.CrawlConfig{
		From: 1, To: to,
		Workers: opts.Workers, Pool: pool, Buffer: opts.Buffer,
	}
	fetcher, sink, cleanup, err := opts.stageCollect("tezos", "tezos", 1, to, &ccfg, func() (collect.BlockFetcher, func(), error) {
		url, stop, err := serve(rpcserve.NewTezosServer(scenario.Chain))
		if err != nil {
			return nil, nil, err
		}
		return collect.NewTezosClient(url), stop, nil
	})
	defer cleanup()
	if err != nil {
		return StageStats{}, err
	}

	agg := core.NewTezosAggregator(chain.ObservationStart, opts.Bucket)
	dec, releaseFeed, err := opts.serveFeed("tezos", core.Window{Origin: chain.ObservationStart, Bucket: opts.Bucket},
		func() core.ChainSummary { return core.SummarizeTezos(agg) }, core.TezosDecoder{Agg: agg})
	if err != nil {
		return StageStats{}, err
	}
	defer releaseFeed()
	crawl, err := crawlInto(ctx, fetcher, ccfg, dec, opts.ingestConfig())
	if err = finishArchive(sink, err); err != nil {
		return StageStats{}, err
	}
	r.Tezos = agg
	r.TezosCrawl = crawl
	return StageStats{Blocks: crawl.Blocks, Transactions: agg.Operations}, nil
}

func (r *Result) runGovernance(ctx context.Context, opts Options, pool *collect.Pool) (StageStats, error) {
	g, err := workload.BuildTezosGovernance(workload.GovernanceOptions{Scale: opts.Gov.Scale, Seed: opts.Gov.Seed})
	if err != nil {
		return StageStats{}, err
	}
	if _, err := g.Run(); err != nil {
		return StageStats{}, err
	}
	to := g.Chain.HeadLevel()

	ccfg := collect.CrawlConfig{
		From: 1, To: to,
		Workers: opts.Workers, Pool: pool, Buffer: opts.Buffer,
	}
	fetcher, sink, cleanup, err := opts.stageCollect("governance", "tezos", 1, to, &ccfg, func() (collect.BlockFetcher, func(), error) {
		url, stop, err := serve(rpcserve.NewTezosServer(g.Chain))
		if err != nil {
			return nil, nil, err
		}
		return collect.NewTezosClient(url), stop, nil
	})
	defer cleanup()
	if err != nil {
		return StageStats{}, err
	}

	// The governance replay starts in July; anchor its series there. Its
	// window legitimately differs from the 6h chains — the sink's window
	// validation is per chain name, so this registers cleanly.
	govWindow := core.Window{Origin: time.Date(2019, time.July, 17, 0, 0, 0, 0, time.UTC), Bucket: 24 * time.Hour}
	agg := core.NewTezosAggregator(govWindow.Origin, govWindow.Bucket)
	dec, releaseFeed, err := opts.serveFeed("governance", govWindow,
		func() core.ChainSummary { return core.SummarizeTezos(agg) }, core.TezosDecoder{Agg: agg})
	if err != nil {
		return StageStats{}, err
	}
	defer releaseFeed()
	crawl, err := crawlInto(ctx, fetcher, ccfg, dec, opts.ingestConfig())
	if err = finishArchive(sink, err); err != nil {
		return StageStats{}, err
	}
	r.Gov = agg
	return StageStats{Blocks: crawl.Blocks, Transactions: agg.Operations}, nil
}

func (r *Result) runXRP(ctx context.Context, opts Options, pool *collect.Pool) (StageStats, error) {
	scenario, err := workload.BuildXRP(workload.XRPOptions{Scale: opts.XRP.Scale, Seed: opts.XRP.Seed})
	if err != nil {
		return StageStats{}, err
	}
	scenario.Run()
	r.XRPScenario = scenario
	// The build phase's ledgers stand in for pre-window history (gateway
	// issuance, trust lines); the paper's window starts at October 1, so
	// the crawl does too.
	from, to := scenario.SetupLedgers+1, scenario.State.HeadIndex()

	// The explorer (XRP Scan + Data API): usernames and trade records. It
	// serves even on replay — exchange records come from the Data API, not
	// the crawled ledger stream.
	dir := explorer.NewDirectory(scenario.State)
	for addr, username := range scenario.Usernames {
		dir.Register(addr, username)
	}
	oracle := explorer.NewRateOracle(scenario.State)
	exURL, stopEx, err := serve(explorer.NewServer(dir, oracle))
	if err != nil {
		return StageStats{}, err
	}
	defer stopEx()
	r.Dir = dir

	ccfg := collect.CrawlConfig{
		From: from, To: to,
		Workers: opts.Workers,
		Pool:    pool,
		Buffer:  opts.Buffer,
	}
	fetcher, sink, cleanup, err := opts.stageCollect("xrp", "xrp", from, to, &ccfg, func() (collect.BlockFetcher, func(), error) {
		// The ledger API over WebSocket.
		wsURL, stopWS, err := serve(rpcserve.NewXRPServer(scenario.State))
		if err != nil {
			return nil, nil, err
		}
		wsURL = "ws" + strings.TrimPrefix(wsURL, "http")
		client := collect.NewXRPClient(wsURL)
		ccfg.Workers = 1 // the WebSocket protocol is sequential per connection
		return client, func() { client.Close(); stopWS() }, nil
	})
	defer cleanup()
	if err != nil {
		return StageStats{}, err
	}

	agg := core.NewXRPAggregator(chain.ObservationStart, opts.Bucket)
	dec, releaseFeed, err := opts.serveFeed("xrp", core.Window{Origin: chain.ObservationStart, Bucket: opts.Bucket},
		func() core.ChainSummary { return core.SummarizeXRP(agg) }, core.XRPDecoder{Agg: agg})
	if err != nil {
		return StageStats{}, err
	}
	defer releaseFeed()
	crawl, err := crawlInto(ctx, fetcher, ccfg, dec, opts.ingestConfig())
	if err = finishArchive(sink, err); err != nil {
		return StageStats{}, err
	}
	// Pull trade records from the Data API, as the paper did for rates.
	exchanges, err := explorer.FetchExchanges(exURL)
	if err != nil {
		return StageStats{}, err
	}
	agg.AddExchanges(exchanges)
	r.XRP = agg
	r.XRPCrawl = crawl
	return StageStats{Blocks: crawl.Blocks, Transactions: agg.Transactions}, nil
}
