package pipeline

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/core"
)

// archiveTestOptions keeps the live-then-replay double run quick.
func archiveTestOptions(dir string) Options {
	opts := DefaultOptions()
	opts.EOS.Scale = 400_000
	opts.Tezos.Scale = 6_400
	opts.XRP.Scale = 80_000
	opts.Gov.Scale = 3_200
	opts.ArchiveDir = dir
	return opts
}

// TestPipelineArchiveReplayReproducesFigures is the acceptance path at the
// pipeline layer: a live run with ArchiveDir set tees every stage's raw
// blocks to disk, and a second run over the same directory replays from
// the archives — no endpoints, no probing — and renders byte-identical
// figures.
func TestPipelineArchiveReplayReproducesFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("double pipeline run")
	}
	dir := t.TempDir()
	opts := archiveTestOptions(dir)

	live, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"eos", "tezos", "xrp", "governance"} {
		rd, err := archive.Open(filepath.Join(dir, stage))
		if err != nil {
			t.Fatalf("stage %s archived nothing: %v", stage, err)
		}
		if rd.Blocks() == 0 {
			t.Fatalf("stage %s archive is empty", stage)
		}
	}
	if len(live.EndpointScores) == 0 {
		t.Fatal("live run probed no endpoints")
	}

	replay, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Replay skips serving and probing entirely; the archive is the
	// endpoint.
	if len(replay.EndpointScores) != 0 {
		t.Fatalf("replay run probed %d endpoints; it should not touch the network", len(replay.EndpointScores))
	}
	if replay.EOSCrawl.Blocks != live.EOSCrawl.Blocks ||
		replay.TezosCrawl.Blocks != live.TezosCrawl.Blocks ||
		replay.XRPCrawl.Blocks != live.XRPCrawl.Blocks {
		t.Fatalf("replay crawl volumes differ: eos %d/%d tezos %d/%d xrp %d/%d",
			replay.EOSCrawl.Blocks, live.EOSCrawl.Blocks,
			replay.TezosCrawl.Blocks, live.TezosCrawl.Blocks,
			replay.XRPCrawl.Blocks, live.XRPCrawl.Blocks)
	}

	// Figure-for-figure equality over everything derived from the block
	// stream (endpoint probing is legitimately absent from a replay).
	renderers := map[string]func(*Result) string{
		"Figure1":     Figure1,
		"Figure3":     Figure3,
		"Figure4":     Figure4,
		"Figure5":     Figure5,
		"Figure6":     Figure6,
		"Figure7":     Figure7,
		"Figure9":     Figure9,
		"HeadlineTPS": HeadlineTPS,
		"CaseStudies": CaseStudies,
	}
	for name, render := range renderers {
		if a, b := render(live), render(replay); a != b {
			t.Errorf("%s differs between live and replay:\n--- live ---\n%s\n--- replay ---\n%s", name, a, b)
		}
	}

	// The deterministic summaries the CI archive job diffs.
	for name, pair := range map[string][2]string{
		"eos":   {core.SummarizeEOS(live.EOS).Render(), core.SummarizeEOS(replay.EOS).Render()},
		"tezos": {core.SummarizeTezos(live.Tezos).Render(), core.SummarizeTezos(replay.Tezos).Render()},
		"xrp":   {core.SummarizeXRP(live.XRP).Render(), core.SummarizeXRP(replay.XRP).Render()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s summary differs:\n%s\nvs\n%s", name, pair[0], pair[1])
		}
	}
}

// TestPipelineArchiveRangeMismatchFails: an archive written under different
// scenario parameters must fail the stage loudly instead of replaying the
// wrong blocks.
func TestPipelineArchiveRangeMismatchFails(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	dir := t.TempDir()
	// Fabricate a "stale" EOS archive that cannot cover the stage's range.
	w, err := archive.NewWriter(archive.WriterConfig{Dir: filepath.Join(dir, "eos"), Chain: "eos"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte(`{"block_num":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	opts := archiveTestOptions(dir)
	opts.SkipGovernance = true
	_, err = Run(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), "delete the archive") {
		t.Fatalf("stale archive not rejected: %v", err)
	}

	// A chain mismatch is rejected the same way. Fresh directory: the
	// cancelled run above legitimately finalized partial archives for the
	// stages that were in flight when the EOS stage failed.
	dir = t.TempDir()
	opts = archiveTestOptions(dir)
	opts.SkipGovernance = true
	w2, err := archive.NewWriter(archive.WriterConfig{Dir: filepath.Join(dir, "eos"), Chain: "tezos"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(1, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), opts)
	if err == nil || !strings.Contains(err.Error(), `holds chain "tezos"`) {
		t.Fatalf("chain mismatch not rejected: %v", err)
	}
}
