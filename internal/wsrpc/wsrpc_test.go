package wsrpc

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{FIN: true, Opcode: OpText, Payload: []byte("hello")},
		{FIN: false, Opcode: OpBinary, Payload: bytes.Repeat([]byte{7}, 200)},   // 16-bit length
		{FIN: true, Opcode: OpBinary, Payload: bytes.Repeat([]byte{9}, 70_000)}, // 64-bit length
		{FIN: true, Opcode: OpPing, Payload: []byte("ping")},
		{FIN: true, Opcode: OpClose},
		{FIN: true, Opcode: OpText, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: []byte("masked payload")},
	}
	for _, f := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%+v): %v", f.Opcode, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame(%+v): %v", f.Opcode, err)
		}
		if got.FIN != f.FIN || got.Opcode != f.Opcode || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: sent %+v got %+v", f, got)
		}
		if got.Masked != f.Masked {
			t.Fatalf("mask flag lost")
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, masked bool, keySeed uint32) bool {
		fr := Frame{FIN: true, Opcode: OpBinary, Masked: masked, Payload: payload}
		if masked {
			fr.MaskKey = [4]byte{byte(keySeed), byte(keySeed >> 8), byte(keySeed >> 16), byte(keySeed >> 24)}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		return err == nil && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControlFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrame(&buf, Frame{FIN: true, Opcode: OpPing, Payload: bytes.Repeat([]byte{0}, 126)})
	if !errors.Is(err, ErrBadControlFrame) {
		t.Fatalf("oversized ping: %v", err)
	}
	err = WriteFrame(&buf, Frame{FIN: false, Opcode: OpClose})
	if !errors.Is(err, ErrBadControlFrame) {
		t.Fatalf("fragmented close: %v", err)
	}
}

func TestReadFrameRejectsReservedBits(t *testing.T) {
	raw := []byte{0xC1, 0x00} // FIN + RSV1, opcode text, empty
	_, err := ReadFrame(bytes.NewReader(raw))
	if !errors.Is(err, ErrReservedBits) {
		t.Fatalf("reserved bits: %v", err)
	}
}

func TestReadFrameRejectsNonMinimalLength(t *testing.T) {
	// 16-bit extended length used for a 5-byte payload.
	raw := []byte{0x82, 126, 0x00, 0x05, 1, 2, 3, 4, 5}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadLengthEncoding) {
		t.Fatalf("non-minimal 16-bit length: %v", err)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	if got := acceptKey("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("acceptKey = %q", got)
	}
}

// echoServer upgrades and echoes every message back.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			op, data, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, data); err != nil {
				return
			}
		}
	}))
}

func wsURL(s *httptest.Server) string {
	return "ws" + strings.TrimPrefix(s.URL, "http")
}

func TestClientServerEcho(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, msg := range []string{"first", "second", strings.Repeat("big", 50_000)} {
		if err := conn.WriteMessage(OpText, []byte(msg)); err != nil {
			t.Fatal(err)
		}
		op, data, err := conn.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != OpText || string(data) != msg {
			t.Fatalf("echo mismatch: %d bytes", len(data))
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	type req struct {
		Command     string `json:"command"`
		LedgerIndex int64  `json:"ledger_index"`
	}
	sent := req{Command: "ledger", LedgerIndex: 52_431_069}
	if err := conn.WriteJSON(sent); err != nil {
		t.Fatal(err)
	}
	var got req
	if err := conn.ReadJSON(&got); err != nil {
		t.Fatal(err)
	}
	if got != sent {
		t.Fatalf("json round trip: %+v", got)
	}
}

func TestPingPongTransparent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		// Server pings, then sends the real message.
		if err := conn.Ping([]byte("are you there")); err != nil {
			return
		}
		_ = conn.WriteMessage(OpText, []byte("after-ping"))
		// Wait for the client's message; the pong must already have been
		// answered transparently by the client's read loop.
		_, _, _ = conn.ReadMessage()
	}))
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, data, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "after-ping" {
		t.Fatalf("got %q", data)
	}
	if err := conn.WriteMessage(OpText, []byte("done")); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := conn.WriteMessage(OpText, []byte("concurrent")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for received < writers*perWriter {
			_, data, err := conn.ReadMessage()
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if string(data) != "concurrent" {
				t.Errorf("corrupted frame: %q", data)
				return
			}
			received++
		}
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d echoes received", received, writers*perWriter)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := conn.WriteMessage(OpText, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}

func TestDialRejectsNonWebSocketServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain http", http.StatusOK)
	}))
	defer srv.Close()
	if _, err := Dial(wsURL(srv)); err == nil {
		t.Fatal("handshake against plain HTTP succeeded")
	}
}

func TestUpgradeRejectsPlainGET(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("upgrade of plain GET succeeded")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusSwitchingProtocols {
		t.Fatal("server switched protocols for plain GET")
	}
}

func TestDialBadURL(t *testing.T) {
	if _, err := Dial("http://example.com"); err == nil {
		t.Fatal("http scheme accepted")
	}
	if _, err := Dial("://bad"); err == nil {
		t.Fatal("garbage URL accepted")
	}
}

func TestFragmentedMessageReassembly(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("fragmented-payload-"), 1000)
	if err := conn.WriteFragmented(OpBinary, msg, 256); err != nil {
		t.Fatal(err)
	}
	op, data, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpBinary || !bytes.Equal(data, msg) {
		t.Fatalf("reassembly mismatch: %d bytes, op %d", len(data), op)
	}
}

func TestFragmentedEmptyAndTiny(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A message smaller than the chunk degenerates to a single frame.
	if err := conn.WriteFragmented(OpText, []byte("x"), 256); err != nil {
		t.Fatal(err)
	}
	_, data, err := conn.ReadMessage()
	if err != nil || string(data) != "x" {
		t.Fatalf("tiny fragmented message: %q %v", data, err)
	}
	if err := conn.WriteFragmented(OpText, nil, 1); err != nil {
		t.Fatal(err)
	}
	_, data, err = conn.ReadMessage()
	if err != nil || len(data) != 0 {
		t.Fatalf("empty fragmented message: %q %v", data, err)
	}
}

func TestWriteFragmentedValidation(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteFragmented(OpPing, []byte("x"), 1); err == nil {
		t.Fatal("control frames cannot be fragmented")
	}
	if err := conn.WriteFragmented(OpText, []byte("x"), 0); err == nil {
		t.Fatal("zero chunk accepted")
	}
}

func BenchmarkFrameEncodeDecode(b *testing.B) {
	payload := bytes.Repeat([]byte("ledger-json"), 100) // ~1.1 kB frame
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, Frame{FIN: true, Opcode: OpText, Payload: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

func BenchmarkMaskedFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte("ledger-json"), 100)
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		f := Frame{FIN: true, Opcode: OpBinary, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: payload}
		if err := WriteFrame(&buf, f); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(payload)))
}

func BenchmarkEchoRoundTrip(b *testing.B) {
	srv := echoServer(&testing.T{})
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("x"), 512)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := conn.WriteMessage(OpBinary, msg); err != nil {
			b.Fatal(err)
		}
		if _, _, err := conn.ReadMessage(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(msg)))
}

// TestPingBetweenFragments: RFC 6455 allows control frames to interleave
// with a fragmented message; the reader must answer the ping and still
// reassemble the data message.
func TestPingBetweenFragments(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		// Hand-roll: first fragment, ping, final fragment.
		if err := conn.writeFrame(Frame{FIN: false, Opcode: OpText, Payload: []byte("first-")}); err != nil {
			return
		}
		if err := conn.writeFrame(Frame{FIN: true, Opcode: OpPing, Payload: []byte("mid")}); err != nil {
			return
		}
		if err := conn.writeFrame(Frame{FIN: true, Opcode: OpContinuation, Payload: []byte("second")}); err != nil {
			return
		}
		// Expect the pong (read loop handles it) and then the client's ack.
		_, _, _ = conn.ReadMessage()
	}))
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	op, data, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if op != OpText || string(data) != "first-second" {
		t.Fatalf("reassembled %q (op %d)", data, op)
	}
	conn.WriteMessage(OpText, []byte("ack"))
}

// TestInterleavedDataFramesRejected: a second data frame while assembling
// fragments is a protocol violation.
func TestInterleavedDataFramesRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		conn.writeFrame(Frame{FIN: false, Opcode: OpText, Payload: []byte("a")})
		conn.writeFrame(Frame{FIN: true, Opcode: OpText, Payload: []byte("b")}) // violation
		_, _, _ = conn.ReadMessage()
	}))
	defer srv.Close()
	conn, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := conn.ReadMessage(); err == nil {
		t.Fatal("interleaved data frames accepted")
	}
}
